package repro

// The benchmark harness: one benchmark per experiment in DESIGN.md's
// experiment index (E1–E16). Each benchmark measures the cost of
// regenerating its experiment and, on first run, prints the same rows the
// corresponding section of EXPERIMENTS.md records, so
//
//	go test -bench=. -benchmem
//
// reproduces every table/series in one command.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/biblio"
	"repro/internal/cn"
	"repro/internal/diary"
	"repro/internal/ethno"
	"repro/internal/focusgroup"
	"repro/internal/graph"
	"repro/internal/ixp"
	"repro/internal/par"
	"repro/internal/positionality"
	"repro/internal/qualcode"
	"repro/internal/rng"
	"repro/internal/standards"
	"repro/internal/stats"
	"repro/internal/survey"
)

var printOnce sync.Map

// printTable emits a table exactly once per experiment across all bench
// iterations and -cpu runs.
func printTable(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

func BenchmarkE1Circumvention(b *testing.B) {
	var rows []ixp.CircumventionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ixp.CircumventionSweep(6, 0.6, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E1", func() {
		fmt.Fprintln(os.Stderr, "\nE1 — Mandatory peering vs ASN circumvention (Telmex case, §3)")
		fmt.Fprintln(os.Stderr, "scenario                 shells  sessions  locality  incumbent-locality")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-24s %6d  %8d  %8.3f  %18.3f\n",
				r.Mode, r.Shells, r.IXPSessions, r.DomesticShare, r.IncumbentLocal)
		}
	})
}

func BenchmarkE2IXPGravity(b *testing.B) {
	presences := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	var rows []ixp.GravityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ixp.GravitySweep(60, 6, presences, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E2", func() {
		fmt.Fprintln(os.Stderr, "\nE2 — Giant-IXP gravity vs local content presence (DE-CIX case, §3)")
		fmt.Fprintln(os.Stderr, "content-presence  giant-share  local-share  transit-share  remote-peered")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%16.2f  %11.3f  %11.3f  %13.3f  %13d\n",
				r.ContentPresence, r.GiantIXPShare, r.LocalIXPShare, r.TransitShare, r.RemotePeered)
		}
	})
}

func BenchmarkE3Congestion(b *testing.B) {
	cfg := cn.SimConfig{
		Members: 30, HeavyFrac: 0.2, CapacityFactor: 0.6,
		Epochs: 300, Seed: 42,
	}
	var rows []cn.SimResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cn.CompareSchedulers(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E3", func() {
		fmt.Fprintln(os.Stderr, "\nE3 — Community congestion management (CPR credits vs baselines, §4)")
		fmt.Fprintln(os.Stderr, "scheduler      light-protected  light-sat  burst-sat  heavy-sat  utilization")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-13s %15.3f  %9.3f  %9.3f  %9.3f  %11.3f\n",
				r.Scheduler, r.LightProtected, r.LightSatisfaction, r.BurstSatisfaction,
				r.HeavySatisfaction, r.Utilization)
		}
	})
}

func BenchmarkE4Discovery(b *testing.B) {
	cfg := par.DefaultDiscoveryConfig()
	var rows []par.DiscoveryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = par.RunDiscovery(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E4", func() {
		fmt.Fprintln(os.Stderr, "\nE4 — Problem discovery: data-driven vs participatory (§1, §2)")
		fmt.Fprintln(os.Stderr, "pipeline        marginal-share  marginal-pop  mean-impact  impact-captured")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-14s %14.3f  %12.3f  %11.3f  %15.3f\n",
				r.Pipeline, r.MarginalShare, r.MarginalPopShare, r.MeanAgendaImpact, r.ImpactCaptured)
		}
	})
}

func BenchmarkE5Concentration(b *testing.B) {
	cfg := biblio.DefaultGenConfig()
	cfg.Papers = 2000
	cfg.Authors = 1200
	var rows []biblio.E5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = biblio.RunE5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E5", func() {
		fmt.Fprintln(os.Stderr, "\nE5 — Who is in the room: concentration & method mix (§1, §6.3)")
		fmt.Fprintln(os.Stderr, "venue      papers  qual-share  classified-qual  affil-gini  top10-share  south-share")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-9s %7d  %10.3f  %15.3f  %10.3f  %11.3f  %11.3f\n",
				r.Venue, r.Papers, r.QualitativeShare, r.ClassifiedQual,
				r.AffiliationGini, r.Top10AffilShare, r.SouthAuthorShare)
		}
	})
}

func BenchmarkE6Reliability(b *testing.B) {
	var rows []qualcode.ReliabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = qualcode.ReliabilityCurve(6, 3, 0.55, 0.45, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E6", func() {
		fmt.Fprintln(os.Stderr, "\nE6 — Inter-rater reliability vs codebook refinement (§5.2)")
		fmt.Fprintln(os.Stderr, "iteration  accuracy  mean-kappa  fleiss  kripp-alpha  agreement")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%9d  %8.3f  %10.3f  %6.3f  %11.3f  %9.3f\n",
				r.Iteration, r.CoderAccuracy, r.MeanKappa, r.FleissKappa, r.KrippAlpha, r.Agreement)
		}
	})
}

func BenchmarkE7Patchwork(b *testing.B) {
	cfg := ethno.DefaultE7Config()
	var rows []ethno.E7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ethno.RunE7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E7", func() {
		fmt.Fprintln(os.Stderr, "\nE7 — Fieldwork scheduling under a fixed budget (§3)")
		fmt.Fprintln(os.Stderr, "strategy    visits  insight  insight/day  sites  reflections  travel-overhead")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-11s %6d  %7.1f  %11.3f  %5d  %11d  %15.3f\n",
				r.Strategy, r.Visits, r.Insight, r.InsightPerDay, r.SitesCovered,
				r.Reflections, r.TravelOverhead)
		}
	})
}

func BenchmarkE8Sampling(b *testing.B) {
	cfg := survey.DefaultE8Config()
	var rows []survey.E8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = survey.RunE8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E8", func() {
		fmt.Fprintln(os.Stderr, "\nE8 — Survey reach into hard-to-reach strata (§6.2 fn.3)")
		fmt.Fprintln(os.Stderr, "design      contacted  respondents  response-rate  marginal-share  marginal-pop  bias")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-11s %9d  %11d  %13.3f  %14.3f  %12.3f  %+.3f\n",
				r.Design, r.Contacted, r.Respondents, r.ResponseRate,
				r.MarginalShare, r.MarginalPop, r.Bias)
		}
	})
}

func BenchmarkE9Lens(b *testing.B) {
	cfg := positionality.DefaultLensConfig()
	var rows []positionality.LensRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = positionality.RunLens(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E9", func() {
		fmt.Fprintln(os.Stderr, "\nE9 — Agenda divergence vs lens strength (§5.3)")
		fmt.Fprintln(os.Stderr, "strength  divergence  contested-prop  contested-skep")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%8.2f  %10.3f  %14.3f  %14.3f\n",
				r.Strength, r.Divergence, r.ContestedShareProponent, r.ContestedShareSkeptic)
		}
	})
}

func BenchmarkE10Iteration(b *testing.B) {
	cfg := par.DefaultIterateConfig()
	var rows []par.IterateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = par.RunIteration(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E10", func() {
		fmt.Fprintln(os.Stderr, "\nE10 — Iterative co-design vs one-shot design (§2)")
		fmt.Fprintln(os.Stderr, "iteration  iterative-fit  one-shot-fit")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%9d  %13.3f  %12.3f\n", r.Iteration, r.IterativeFit, r.OneShotFit)
		}
	})
}

func BenchmarkE11Standards(b *testing.B) {
	shares := []float64{0, 0.15, 0.3, 0.45, 0.6}
	var rows []standards.E11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = standards.Sweep(shares, standards.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E11", func() {
		fmt.Fprintln(os.Stderr, "\nE11 — Practitioner engagement in the standards process (§2)")
		fmt.Fprintln(os.Stderr, "process                rfcs  rounds-to-rfc  final-fit  deploy-any  deploy-per-rfc")
		for _, r := range rows {
			name := fmt.Sprintf("open (practitioners %.2f)", r.PractitionerShare)
			if r.Closed {
				name = "closed consortium"
			}
			fmt.Fprintf(os.Stderr, "%-22s %5d  %13.1f  %9.3f  %10.3f  %14.3f\n",
				name, r.RFCs, r.MeanRoundsToRFC, r.MeanFinalFit, r.DeploymentShare, r.MeanDeployPerRFC)
		}
	})
}

func BenchmarkE12Diary(b *testing.B) {
	var daily, sc diary.Coverage
	var weekly []float64
	for i := 0; i < b.N; i++ {
		cfg := diary.DefaultConfig()
		cfg.Days = 42
		ds, err := diary.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		daily = diary.Reconcile(cfg, ds)
		weekly = diary.WeeklyDiaryCoverage(cfg, ds)

		cfg.Prompting = diary.SignalContingent
		ds2, err := diary.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sc = diary.Reconcile(cfg, ds2)
	}
	printTable("E12", func() {
		fmt.Fprintln(os.Stderr, "\nE12 — Diaries + technology probes (§6.1, ref [7])")
		fmt.Fprintln(os.Stderr, "prompting          diary-cov  probe-cov  combined  non-instr-diary")
		fmt.Fprintf(os.Stderr, "%-17s %10.3f  %9.3f  %8.3f  %15.3f\n",
			"daily", daily.DiaryOnly, daily.ProbeOnly, daily.Combined, daily.NonInstrumentableDiary)
		fmt.Fprintf(os.Stderr, "%-17s %10.3f  %9.3f  %8.3f  %15.3f\n",
			"signal-contingent", sc.DiaryOnly, sc.ProbeOnly, sc.Combined, sc.NonInstrumentableDiary)
		fmt.Fprintf(os.Stderr, "weekly diary coverage (compliance decay): %.3f\n", weekly)
	})
}

func BenchmarkE13FocusGroup(b *testing.B) {
	var rows []focusgroup.Result
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = focusgroup.Compare(focusgroup.DefaultParticipants(), 150, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E13", func() {
		fmt.Fprintln(os.Stderr, "\nE13 — Focus-group facilitation (§6.1)")
		fmt.Fprintln(os.Stderr, "strategy     speaking-jain  insight-cov  quiet-cov  interventions")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-12s %13.3f  %11.3f  %9.3f  %13d\n",
				r.Strategy, r.SpeakingJain, r.InsightCoverage, r.QuietCoverage, r.Interventions)
		}
	})
}

func BenchmarkE14RouteLeak(b *testing.B) {
	var rows []bgpsim.LeakRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bgpsim.RunLeakSweep(8, 20, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E14", func() {
		fmt.Fprintln(os.Stderr, "\nE14 — Route-leak blast radius vs leaker position (§6.2.2)")
		fmt.Fprintln(os.Stderr, "leaker  asn   providers  affected  affected-share")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-6s  %-4d  %9d  %8d  %14.3f\n",
				r.LeakerKind, r.LeakerASN, r.Providers, r.Affected, r.AffectedShare)
		}
	})
}

// BenchmarkA1TopologyGap is the placement ablation: the near/far max-min
// rate gap under an arbitrary vs the 1-median gateway (see EXPERIMENTS.md
// "Ablations").
func BenchmarkA1TopologyGap(b *testing.B) {
	var rows []cn.TopoGapRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cn.TopoGapExperiment(30, 0.35, 1, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("A1", func() {
		fmt.Fprintln(os.Stderr, "\nA1 — Gateway placement vs near/far rate gap (ablation)")
		fmt.Fprintln(os.Stderr, "placement  quartile  mean-hops  mean-rate")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-9s  %8d  %9.2f  %9.4f\n", r.Placement, r.Quartile, r.MeanHops, r.MeanRate)
		}
		fmt.Fprintf(os.Stderr, "gap: default %.2fx, optimized %.2fx\n",
			cn.NearFarGap(rows, "default"), cn.NearFarGap(rows, "optimized"))
	})
}

func BenchmarkE15CFPDynamics(b *testing.B) {
	var locked, blind, intervention []biblio.CFPYear
	for i := 0; i < b.N; i++ {
		var err error
		cfg := biblio.DefaultCFPConfig()
		locked, err = biblio.RunCFP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.QualWeight = 1
		blind, err = biblio.RunCFP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg = biblio.DefaultCFPConfig()
		cfg.Years = 40
		cfg.InterventionYear = 20
		intervention, err = biblio.RunCFP(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E15", func() {
		fmt.Fprintln(os.Stderr, "\nE15 — CFP dynamics: method-mix lock-in and recovery (§6.4)")
		fmt.Fprintf(os.Stderr, "settled accepted qualitative share: biased venue %.3f, method-blind %.3f\n",
			biblio.FinalQualShare(locked, 5), biblio.FinalQualShare(blind, 5))
		fmt.Fprintln(os.Stderr, "intervention run (CFP change at year 20): accepted qual share by year")
		for _, r := range intervention {
			if r.Year%4 == 0 || r.Year == 20 || r.Year == 21 {
				fmt.Fprintf(os.Stderr, "  year %2d (w=%.2f): %.3f\n", r.Year, r.QualWeightInEffect, r.AcceptedQualShare)
			}
		}
	})
}

func BenchmarkE16Hijack(b *testing.B) {
	var rows []bgpsim.HijackRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bgpsim.RunHijackSweep(8, 20, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E16", func() {
		fmt.Fprintln(os.Stderr, "\nE16 — Exact-prefix hijack capture vs attacker position (§6.2.2)")
		fmt.Fprintln(os.Stderr, "attacker  asn   captured  captured-share")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "%-8s  %-4d  %8d  %14.3f\n",
				r.AttackerKind, r.AttackerASN, r.Captured, r.CapturedShare)
		}
	})
}

// BenchmarkA2CPRRollover is the credit-scheme memory ablation: light users'
// burst satisfaction as the rollover cap grows.
func BenchmarkA2CPRRollover(b *testing.B) {
	caps := []float64{1, 2, 3, 5, 8}
	results := make([]cn.SimResult, len(caps))
	cfg := cn.SimConfig{
		Members: 30, HeavyFrac: 0.2, CapacityFactor: 0.6,
		Epochs: 300, Seed: 42,
	}
	for i := 0; i < b.N; i++ {
		for j, cap := range caps {
			res, err := cn.Simulate(cfg, &cn.CPR{RolloverCap: cap})
			if err != nil {
				b.Fatal(err)
			}
			results[j] = res
		}
	}
	printTable("A2", func() {
		fmt.Fprintln(os.Stderr, "\nA2 — CPR rollover-cap ablation")
		fmt.Fprintln(os.Stderr, "rollover-cap  burst-sat  light-protected")
		for j, cap := range caps {
			fmt.Fprintf(os.Stderr, "%12.0f  %9.3f  %15.3f\n",
				cap, results[j].BurstSatisfaction, results[j].LightProtected)
		}
	})
}

// BenchmarkA3ReflectionCrossover is the patchwork-mechanism ablation on a
// single site: the reflection gain at which split visits beat one stay.
func BenchmarkA3ReflectionCrossover(b *testing.B) {
	gains := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3}
	ratios := make([]float64, len(gains))
	for i := 0; i < b.N; i++ {
		for j, g := range gains {
			cfg := ethno.DefaultE7Config()
			cfg.Sites = 1
			cfg.Params.ReflectGain = g
			rows, err := ethno.RunE7(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ratios[j] = rows[1].Insight / rows[0].Insight
		}
	}
	printTable("A3", func() {
		fmt.Fprintln(os.Stderr, "\nA3 — Reflection-gain crossover, single site (patchwork/continuous insight)")
		for j, g := range gains {
			marker := ""
			if ratios[j] > 1 {
				marker = "  <- patchwork wins"
			}
			fmt.Fprintf(os.Stderr, "  gain=%.2f  ratio=%.2f%s\n", g, ratios[j], marker)
		}
	})
}

// --- Parallel engine benchmarks -------------------------------------------
//
// The Serial/Parallel pairs below measure the internal/parallel fan-out on
// the hot analysis paths. Results are bit-identical across worker counts
// (see internal/parallel's package doc), so the pairs differ only in time.

func benchGraph() *graph.Graph {
	return graph.BarabasiAlbert(600, 3, rng.New(1))
}

func BenchmarkBetweennessSerial(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BetweennessCentralityWorkers(1)
	}
}

func BenchmarkBetweennessParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BetweennessCentralityWorkers(0)
	}
}

func BenchmarkClosenessSerial(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ClosenessCentralityWorkers(1)
	}
}

func BenchmarkClosenessParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ClosenessCentralityWorkers(0)
	}
}

func benchBootstrapData() []float64 {
	r := rng.New(7)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.5)
	}
	return xs
}

func BenchmarkBootstrapCISerial(b *testing.B) {
	xs := benchBootstrapData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(42)
		_, _ = stats.BootstrapCIWorkers(xs, stats.Median, 2000, 0.95, r, 1)
	}
}

func BenchmarkBootstrapCIParallel(b *testing.B) {
	xs := benchBootstrapData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(42)
		_, _ = stats.BootstrapCIWorkers(xs, stats.Median, 2000, 0.95, r, 0)
	}
}
