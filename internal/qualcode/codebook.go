// Package qualcode implements the qualitative-coding engine the paper's §5.2
// calls for ("If there is a significant corpus, these conversations can be
// formally coded"): hierarchical codebooks, segment-level annotation by
// multiple coders, the standard inter-rater reliability statistics (Cohen's
// kappa, Fleiss' kappa, Krippendorff's alpha), code co-occurrence and theme
// extraction, quote extraction with privacy redaction, and code-saturation
// curves.
//
// A synthetic transcript generator and simulated coders (synth.go) let the
// whole pipeline be exercised and benchmarked without human subjects, per
// the substitution rule in DESIGN.md.
package qualcode

import (
	"errors"
	"fmt"
	"sort"
)

// Code is one entry in a codebook. Codes form a forest via Parent.
type Code struct {
	ID         string
	Parent     string // empty for top-level codes
	Name       string
	Definition string
}

// Codebook is a hierarchical set of codes. The zero value is empty and
// usable.
type Codebook struct {
	codes map[string]*Code
}

// Errors returned by codebook operations.
var (
	ErrDuplicateCode = errors.New("qualcode: duplicate code")
	ErrUnknownCode   = errors.New("qualcode: unknown code")
	ErrCodeCycle     = errors.New("qualcode: code hierarchy cycle")
)

// NewCodebook returns an empty codebook.
func NewCodebook() *Codebook {
	return &Codebook{codes: make(map[string]*Code)}
}

// Add inserts a code. The parent, when non-empty, must already exist.
func (cb *Codebook) Add(c Code) error {
	if c.ID == "" {
		return fmt.Errorf("qualcode: code needs an ID")
	}
	if _, ok := cb.codes[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateCode, c.ID)
	}
	if c.Parent != "" {
		if _, ok := cb.codes[c.Parent]; !ok {
			return fmt.Errorf("%w: parent %s of %s", ErrUnknownCode, c.Parent, c.ID)
		}
	}
	cp := c
	cb.codes[c.ID] = &cp
	return nil
}

// Get returns a code by ID.
func (cb *Codebook) Get(id string) (Code, bool) {
	c, ok := cb.codes[id]
	if !ok {
		return Code{}, false
	}
	return *c, true
}

// Has reports whether the code exists.
func (cb *Codebook) Has(id string) bool { _, ok := cb.codes[id]; return ok }

// Len returns the number of codes.
func (cb *Codebook) Len() int { return len(cb.codes) }

// IDs returns all code IDs sorted.
func (cb *Codebook) IDs() []string {
	out := make([]string, 0, len(cb.codes))
	for id := range cb.codes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Children returns the direct children of id, sorted.
func (cb *Codebook) Children(id string) []string {
	var out []string
	for cid, c := range cb.codes {
		if c.Parent == id {
			out = append(out, cid)
		}
	}
	sort.Strings(out)
	return out
}

// Ancestors returns the chain of ancestors of id from parent to root.
func (cb *Codebook) Ancestors(id string) []string {
	var out []string
	seen := map[string]bool{id: true}
	c, ok := cb.codes[id]
	for ok && c.Parent != "" {
		if seen[c.Parent] {
			break // defensive: Add prevents cycles, but never loop forever
		}
		seen[c.Parent] = true
		out = append(out, c.Parent)
		c, ok = cb.codes[c.Parent]
	}
	return out
}

// Depth returns 0 for top-level codes, 1 for their children, and so on;
// -1 for unknown codes.
func (cb *Codebook) Depth(id string) int {
	if !cb.Has(id) {
		return -1
	}
	return len(cb.Ancestors(id))
}

// Roots returns the top-level codes, sorted.
func (cb *Codebook) Roots() []string {
	var out []string
	for id, c := range cb.codes {
		if c.Parent == "" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
