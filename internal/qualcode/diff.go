package qualcode

import (
	"sort"
)

// CodebookDiff describes how a codebook changed between refinement
// iterations — the artifact a coding team reviews when negotiating
// definitions (§5.2's iterated formal coding made inspectable).
type CodebookDiff struct {
	Added     []string // codes in new but not old
	Removed   []string // codes in old but not new
	Redefined []string // same ID, different Definition
	Moved     []string // same ID, different Parent
}

// Empty reports whether nothing changed.
func (d CodebookDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.Redefined) == 0 && len(d.Moved) == 0
}

// DiffCodebooks compares two codebooks by code ID.
func DiffCodebooks(old, new *Codebook) CodebookDiff {
	var d CodebookDiff
	for _, id := range new.IDs() {
		nc, _ := new.Get(id)
		oc, ok := old.Get(id)
		if !ok {
			d.Added = append(d.Added, id)
			continue
		}
		if oc.Definition != nc.Definition {
			d.Redefined = append(d.Redefined, id)
		}
		if oc.Parent != nc.Parent {
			d.Moved = append(d.Moved, id)
		}
	}
	for _, id := range old.IDs() {
		if !new.Has(id) {
			d.Removed = append(d.Removed, id)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Redefined)
	sort.Strings(d.Moved)
	return d
}

// MergeCodebooks returns a new codebook containing every code from both
// inputs. On ID conflicts the preferred codebook's definition and parent
// win. Parent references are re-validated; a code whose parent exists in
// neither book becomes top-level.
func MergeCodebooks(preferred, other *Codebook) *Codebook {
	out := NewCodebook()
	// Collect the union, preferred winning.
	union := make(map[string]Code)
	for _, id := range other.IDs() {
		c, _ := other.Get(id)
		union[id] = c
	}
	for _, id := range preferred.IDs() {
		c, _ := preferred.Get(id)
		union[id] = c
	}
	// Topological insertion: parents before children; orphans become roots.
	ids := make([]string, 0, len(union))
	for id := range union {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for len(ids) > 0 {
		var next []string
		placed := 0
		for _, id := range ids {
			c := union[id]
			if c.Parent != "" && !out.Has(c.Parent) {
				if _, known := union[c.Parent]; known {
					next = append(next, id)
					continue
				}
				c.Parent = "" // orphan: promote to root
			}
			_ = out.Add(c)
			placed++
		}
		if placed == 0 {
			// Cycle among remaining codes: break it by promoting all to
			// roots deterministically.
			for _, id := range next {
				c := union[id]
				c.Parent = ""
				_ = out.Add(c)
			}
			break
		}
		ids = next
	}
	return out
}
