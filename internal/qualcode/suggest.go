package qualcode

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/textproc"
)

// Suggester is a multinomial naive-Bayes model trained on a coder's
// existing annotations that proposes codes for new segments — the
// "computational grounded theory" assistant pattern: the machine suggests,
// the human decides. It never annotates on its own.
type Suggester struct {
	codes []string
	// logPrior[c] and logLik[c][term] in natural log; unseen terms fall
	// back to the Laplace-smoothed floor per code.
	logPrior map[string]float64
	logLik   map[string]map[string]float64
	floor    map[string]float64
	vocab    map[string]bool
}

// TrainSuggester fits the model on every segment the given coder annotated
// (a segment contributes once per code applied, using its primary code
// only for multinomial simplicity). Returns an error if the coder has no
// annotations.
func TrainSuggester(p *Project, coder string) (*Suggester, error) {
	type doc struct {
		code   string
		tokens []string
	}
	var docs []doc
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		for _, seg := range d.Segments {
			codes := p.CodesFor(docID, seg.ID, coder)
			if len(codes) == 0 {
				continue
			}
			docs = append(docs, doc{
				code:   codes[0],
				tokens: textproc.StemAll(textproc.TokenizeFiltered(seg.Text)),
			})
		}
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("qualcode: coder %q has no annotations to learn from", coder)
	}

	s := &Suggester{
		logPrior: make(map[string]float64),
		logLik:   make(map[string]map[string]float64),
		floor:    make(map[string]float64),
		vocab:    make(map[string]bool),
	}
	counts := make(map[string]map[string]float64) // code → term → count
	totals := make(map[string]float64)            // code → token count
	classN := make(map[string]float64)
	for _, d := range docs {
		if counts[d.code] == nil {
			counts[d.code] = make(map[string]float64)
		}
		classN[d.code]++
		for _, t := range d.tokens {
			counts[d.code][t]++
			totals[d.code]++
			s.vocab[t] = true
		}
	}
	v := float64(len(s.vocab))
	n := float64(len(docs))
	for code, cn := range classN {
		s.codes = append(s.codes, code)
		s.logPrior[code] = math.Log(cn / n)
		s.logLik[code] = make(map[string]float64, len(counts[code]))
		denom := totals[code] + v
		for term, c := range counts[code] {
			s.logLik[code][term] = math.Log((c + 1) / denom)
		}
		s.floor[code] = math.Log(1 / denom)
	}
	sort.Strings(s.codes)
	return s, nil
}

// Suggestion is one scored code proposal.
type Suggestion struct {
	CodeID string
	// Confidence is the posterior probability among the trained codes.
	Confidence float64
}

// Suggest scores the text against every trained code and returns the top-k
// proposals by posterior, ties broken by code ID.
func (s *Suggester) Suggest(text string, k int) []Suggestion {
	tokens := textproc.StemAll(textproc.TokenizeFiltered(text))
	logs := make([]float64, len(s.codes))
	for i, code := range s.codes {
		lp := s.logPrior[code]
		for _, t := range tokens {
			if !s.vocab[t] {
				continue // out-of-vocabulary tokens carry no signal
			}
			if l, ok := s.logLik[code][t]; ok {
				lp += l
			} else {
				lp += s.floor[code]
			}
		}
		logs[i] = lp
	}
	// Softmax for calibrated-ish confidences.
	maxLog := math.Inf(-1)
	for _, l := range logs {
		if l > maxLog {
			maxLog = l
		}
	}
	var z float64
	exps := make([]float64, len(logs))
	for i, l := range logs {
		exps[i] = math.Exp(l - maxLog)
		z += exps[i]
	}
	out := make([]Suggestion, len(s.codes))
	for i, code := range s.codes {
		out[i] = Suggestion{CodeID: code, Confidence: exps[i] / z}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].CodeID < out[b].CodeID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// EvaluateSuggester measures top-1 accuracy of the suggester against the
// latent truth over every segment of the project (including segments it
// trained on; pass a held-out project for generalization numbers).
func EvaluateSuggester(s *Suggester, p *Project, truth Truth) float64 {
	var total, hit float64
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		for _, seg := range d.Segments {
			want := truth.Code(docID, seg.ID)
			if want == "" {
				continue
			}
			total++
			got := s.Suggest(seg.Text, 1)
			if len(got) > 0 && got[0].CodeID == want {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}
