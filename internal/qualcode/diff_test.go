package qualcode

import (
	"strings"
	"testing"
)

func cbFrom(t *testing.T, codes ...Code) *Codebook {
	t.Helper()
	cb := NewCodebook()
	for _, c := range codes {
		if err := cb.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	return cb
}

func TestDiffCodebooks(t *testing.T) {
	old := cbFrom(t,
		Code{ID: "a", Definition: "old def"},
		Code{ID: "b"},
		Code{ID: "c", Parent: "a"},
		Code{ID: "gone"},
	)
	new_ := cbFrom(t,
		Code{ID: "a", Definition: "new def"},
		Code{ID: "b"},
		Code{ID: "c"}, // moved to root
		Code{ID: "fresh"},
	)
	d := DiffCodebooks(old, new_)
	if strings.Join(d.Added, ",") != "fresh" {
		t.Errorf("added = %v", d.Added)
	}
	if strings.Join(d.Removed, ",") != "gone" {
		t.Errorf("removed = %v", d.Removed)
	}
	if strings.Join(d.Redefined, ",") != "a" {
		t.Errorf("redefined = %v", d.Redefined)
	}
	if strings.Join(d.Moved, ",") != "c" {
		t.Errorf("moved = %v", d.Moved)
	}
	if d.Empty() {
		t.Error("diff should not be empty")
	}
	if !DiffCodebooks(old, old).Empty() {
		t.Error("self diff should be empty")
	}
}

func TestMergeCodebooksPreferredWins(t *testing.T) {
	a := cbFrom(t, Code{ID: "x", Definition: "A's x"}, Code{ID: "onlyA"})
	b := cbFrom(t, Code{ID: "x", Definition: "B's x"}, Code{ID: "onlyB"})
	m := MergeCodebooks(a, b)
	if m.Len() != 3 {
		t.Fatalf("merged size = %d", m.Len())
	}
	got, _ := m.Get("x")
	if got.Definition != "A's x" {
		t.Errorf("conflict resolution wrong: %q", got.Definition)
	}
	if !m.Has("onlyA") || !m.Has("onlyB") {
		t.Error("union incomplete")
	}
}

func TestMergeCodebooksHierarchy(t *testing.T) {
	a := cbFrom(t, Code{ID: "parent"}, Code{ID: "child", Parent: "parent"})
	b := cbFrom(t, Code{ID: "parent"}, Code{ID: "zchild2", Parent: "parent"})
	m := MergeCodebooks(a, b)
	if m.Depth("child") != 1 || m.Depth("zchild2") != 1 {
		t.Errorf("hierarchy lost: depths %d/%d", m.Depth("child"), m.Depth("zchild2"))
	}
}

func TestMergeCodebooksIdempotent(t *testing.T) {
	a := cbFrom(t, Code{ID: "p"}, Code{ID: "c", Parent: "p", Definition: "d"})
	m := MergeCodebooks(a, a)
	if m.Len() != 2 || m.Depth("c") != 1 {
		t.Errorf("self-merge wrong: len=%d depth=%d", m.Len(), m.Depth("c"))
	}
	if !DiffCodebooks(a, m).Empty() {
		t.Error("self-merge changed the codebook")
	}
}
