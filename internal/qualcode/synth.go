package qualcode

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// SynthConfig controls synthetic transcript generation. Each segment has one
// latent "true" code; its text is drawn from that code's vocabulary plus
// filler, so downstream text analysis can recover the structure.
type SynthConfig struct {
	Docs       int
	SegsPerDoc int
	Speakers   int
	// Vocabulary maps a code ID to its characteristic words. Keys define
	// the set of latent codes.
	Vocabulary map[string][]string
	// Companions optionally pairs a code with one that tends to co-occur
	// (applied together with probability CompanionProb by accurate coders).
	Companions    map[string]string
	CompanionProb float64
}

// DefaultVocabulary returns the method-flavoured vocabulary used by tests
// and the E6 experiment: codes a networking-methods study would plausibly
// develop.
func DefaultVocabulary() map[string][]string {
	return map[string][]string{
		"access":      {"coverage", "afford", "subscribe", "signal", "village", "plan"},
		"maintenance": {"repair", "antenna", "climb", "roof", "replace", "volunteer"},
		"governance":  {"meeting", "vote", "committee", "rule", "decide", "conflict"},
		"billing":     {"payment", "credit", "topup", "invoice", "cost", "subsidy"},
		"performance": {"slow", "latency", "buffer", "outage", "speed", "peak"},
		"trust":       {"privacy", "data", "share", "consent", "worry", "safe"},
	}
}

// Truth records the latent code of every generated segment.
type Truth map[string]map[int]string // doc → segment → code

// Code returns the latent code of a segment ("" when absent).
func (t Truth) Code(doc string, seg int) string { return t[doc][seg] }

// GenerateCorpus builds a project populated with synthetic transcripts and
// returns it with the latent truth. The codebook is built from the
// vocabulary keys (flat hierarchy).
func GenerateCorpus(cfg SynthConfig, r *rng.Rand) (*Project, Truth, error) {
	if cfg.Docs <= 0 || cfg.SegsPerDoc <= 0 {
		return nil, nil, fmt.Errorf("qualcode: synth needs docs and segments, got %d/%d", cfg.Docs, cfg.SegsPerDoc)
	}
	if len(cfg.Vocabulary) == 0 {
		cfg.Vocabulary = DefaultVocabulary()
	}
	if cfg.Speakers <= 0 {
		cfg.Speakers = 6
	}
	cb := NewCodebook()
	codes := make([]string, 0, len(cfg.Vocabulary))
	for id := range cfg.Vocabulary {
		codes = append(codes, id)
	}
	sort.Strings(codes)
	for _, id := range codes {
		if err := cb.Add(Code{ID: id, Name: id, Definition: "synthetic code " + id}); err != nil {
			return nil, nil, err
		}
	}
	p := NewProject(cb)
	truth := make(Truth)

	filler := []string{"well", "you", "know", "really", "think", "maybe", "because", "here"}
	for d := 0; d < cfg.Docs; d++ {
		docID := fmt.Sprintf("doc-%03d", d)
		truth[docID] = make(map[int]string)
		doc := Document{ID: docID, Title: fmt.Sprintf("Interview %d", d)}
		for s := 0; s < cfg.SegsPerDoc; s++ {
			code := codes[r.Intn(len(codes))]
			truth[docID][s] = code
			vocab := cfg.Vocabulary[code]
			words := make([]string, 0, 12)
			for w := 0; w < 12; w++ {
				if r.Bool(0.55) {
					words = append(words, vocab[r.Intn(len(vocab))])
				} else {
					words = append(words, filler[r.Intn(len(filler))])
				}
			}
			doc.Segments = append(doc.Segments, Segment{
				ID:      s,
				Speaker: fmt.Sprintf("S%d", r.Intn(cfg.Speakers)+1),
				Text:    strings.Join(words, " "),
			})
		}
		if err := p.AddDocument(doc); err != nil {
			return nil, nil, err
		}
	}
	return p, truth, nil
}

// SimulatedCoder annotates segments with the latent code at the configured
// accuracy, otherwise with a uniformly random wrong code — the standard
// noisy-rater model used to study inter-rater statistics.
type SimulatedCoder struct {
	Name     string
	Accuracy float64
}

// CodeProject annotates every segment of every document in p. Companion
// codes from cfg are co-applied on correct annotations with
// cfg.CompanionProb.
func (sc SimulatedCoder) CodeProject(p *Project, truth Truth, cfg SynthConfig, r *rng.Rand) error {
	codes := p.Codebook.IDs()
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		for _, s := range d.Segments {
			trueCode := truth.Code(docID, s.ID)
			applied := trueCode
			if !r.Bool(sc.Accuracy) {
				// Pick a wrong code uniformly.
				for {
					applied = codes[r.Intn(len(codes))]
					if applied != trueCode || len(codes) == 1 {
						break
					}
				}
			}
			if err := p.Annotate(Annotation{DocID: docID, SegmentID: s.ID, CodeID: applied, Coder: sc.Name}); err != nil {
				return err
			}
			if applied == trueCode && cfg.Companions != nil {
				if comp, ok := cfg.Companions[trueCode]; ok && r.Bool(cfg.CompanionProb) {
					if err := p.Annotate(Annotation{DocID: docID, SegmentID: s.ID, CodeID: comp, Coder: sc.Name}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// ReliabilityRow is one iteration of the E6 codebook-refinement experiment.
type ReliabilityRow struct {
	Iteration     int
	CoderAccuracy float64
	MeanKappa     float64
	FleissKappa   float64 // averaged over codes
	KrippAlpha    float64
	Agreement     float64 // mean pairwise percent agreement
}

// ReliabilityCurve runs E6: with each codebook-refinement iteration coder
// accuracy improves (clearer definitions shrink the error rate by gain), and
// every reliability statistic is recomputed on a fresh coding pass. The
// paper's claim is that formalized, iterated coding converges on reliable,
// analyzable data.
func ReliabilityCurve(iterations, coders int, baseAccuracy, gain float64, seed uint64) ([]ReliabilityRow, error) {
	r := rng.New(seed)
	cfg := SynthConfig{Docs: 8, SegsPerDoc: 12}
	var rows []ReliabilityRow
	for it := 0; it < iterations; it++ {
		acc := 1 - (1-baseAccuracy)*pow(1-gain, it)
		p, truth, err := GenerateCorpus(cfg, r.Split())
		if err != nil {
			return nil, err
		}
		coderRNG := r.Split()
		for c := 0; c < coders; c++ {
			sc := SimulatedCoder{Name: fmt.Sprintf("coder%d", c+1), Accuracy: acc}
			if err := sc.CodeProject(p, truth, cfg, coderRNG); err != nil {
				return nil, err
			}
		}
		row := ReliabilityRow{
			Iteration:     it,
			CoderAccuracy: acc,
			MeanKappa:     p.MeanPairwiseKappa(),
			KrippAlpha:    p.KrippendorffAlpha(),
		}
		// Fleiss averaged over codes.
		var fsum float64
		var fcnt int
		for _, code := range p.Codebook.IDs() {
			f := p.FleissKappa(code)
			if !isNaN(f) {
				fsum += f
				fcnt++
			}
		}
		if fcnt > 0 {
			row.FleissKappa = fsum / float64(fcnt)
		}
		cs := p.Coders()
		var asum float64
		var acnt int
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				asum += p.PercentAgreement(cs[i], cs[j])
				acnt++
			}
		}
		if acnt > 0 {
			row.Agreement = asum / float64(acnt)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

func isNaN(x float64) bool { return x != x }
