package qualcode

import (
	"strings"
	"testing"
)

func FuzzReadFrom(f *testing.F) {
	f.Add(`{"codes":[{"ID":"x"}],"documents":[{"ID":"d","Segments":[{"ID":0}]}],"annotations":[]}`)
	f.Add(`{}`)
	f.Add(`{"codes":[{"ID":"a","Parent":"b"},{"ID":"b"}]}`)
	f.Add(`not json at all`)
	f.Add(`{"codes":[{"ID":"a","Parent":"a"}]}`)
	f.Add(`{"annotations":[{"DocID":"ghost","SegmentID":1,"CodeID":"x","Coder":"c"}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		// Must never panic; on success the project must be internally
		// consistent (every annotation resolvable).
		p, err := ReadFrom(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, a := range p.Annotations() {
			if !p.Codebook.Has(a.CodeID) {
				t.Fatalf("imported annotation with unknown code %q", a.CodeID)
			}
			if _, ok := p.Document(a.DocID); !ok {
				t.Fatalf("imported annotation with unknown doc %q", a.DocID)
			}
		}
	})
}
