package qualcode

import (
	"math"
	"sort"
)

// CohenKappa returns Cohen's kappa for two coders on the binary decision
// "did the coder apply codeID to the segment", over every segment in the
// project. Returns NaN when there are no units or when both marginals are
// degenerate in the same direction (no disagreement possible).
func (p *Project) CohenKappa(coder1, coder2, codeID string) float64 {
	units := p.units()
	n := len(units)
	if n == 0 {
		return math.NaN()
	}
	var both, only1, only2, neither float64
	for _, u := range units {
		a := p.index[u.doc][u.seg][coder1][codeID]
		b := p.index[u.doc][u.seg][coder2][codeID]
		switch {
		case a && b:
			both++
		case a:
			only1++
		case b:
			only2++
		default:
			neither++
		}
	}
	nf := float64(n)
	po := (both + neither) / nf
	pYes1 := (both + only1) / nf
	pYes2 := (both + only2) / nf
	pe := pYes1*pYes2 + (1-pYes1)*(1-pYes2)
	if pe == 1 {
		if po == 1 {
			return 1
		}
		return math.NaN()
	}
	return (po - pe) / (1 - pe)
}

// MeanPairwiseKappa averages CohenKappa over all coder pairs and all codes
// in the codebook, skipping NaN cells. Returns NaN when nothing is
// computable.
func (p *Project) MeanPairwiseKappa() float64 {
	coders := p.Coders()
	codes := p.Codebook.IDs()
	var sum float64
	var cnt int
	for i := 0; i < len(coders); i++ {
		for j := i + 1; j < len(coders); j++ {
			for _, code := range codes {
				k := p.CohenKappa(coders[i], coders[j], code)
				if !math.IsNaN(k) {
					sum += k
					cnt++
				}
			}
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}

// FleissKappa returns Fleiss' kappa over all coders for the binary decision
// "code applied to segment", treating each segment as a subject rated by
// every coder. Returns NaN with fewer than two coders or no units.
func (p *Project) FleissKappa(codeID string) float64 {
	coders := p.Coders()
	m := len(coders)
	units := p.units()
	if m < 2 || len(units) == 0 {
		return math.NaN()
	}
	mf := float64(m)
	var sumPi, totalYes float64
	for _, u := range units {
		yes := 0.0
		for _, c := range coders {
			if p.index[u.doc][u.seg][c][codeID] {
				yes++
			}
		}
		no := mf - yes
		pi := (yes*(yes-1) + no*(no-1)) / (mf * (mf - 1))
		sumPi += pi
		totalYes += yes
	}
	nf := float64(len(units))
	pBar := sumPi / nf
	pYes := totalYes / (nf * mf)
	peBar := pYes*pYes + (1-pYes)*(1-pYes)
	if peBar == 1 {
		if pBar == 1 {
			return 1
		}
		return math.NaN()
	}
	return (pBar - peBar) / (1 - peBar)
}

// KrippendorffAlpha computes Krippendorff's alpha for nominal data where
// each coder assigns at most one primary code per segment (the first code in
// sorted order is used when a coder applied several). Segments with fewer
// than two ratings are ignored, which is alpha's standard missing-data
// handling. Returns NaN when no unit has two ratings.
func (p *Project) KrippendorffAlpha() float64 {
	coders := p.Coders()
	units := p.units()

	// values[u] = multiset of nominal values for unit u.
	var valueSets [][]string
	for _, u := range units {
		var vals []string
		for _, c := range coders {
			codes := p.CodesFor(u.doc, u.seg, c)
			if len(codes) > 0 {
				vals = append(vals, codes[0])
			}
		}
		if len(vals) >= 2 {
			valueSets = append(valueSets, vals)
		}
	}
	if len(valueSets) == 0 {
		return math.NaN()
	}

	// Observed disagreement: within-unit pairs with different values,
	// weighted per Krippendorff (each unit contributes pairs/(m_u - 1)).
	var do, totalPairsNorm float64
	freq := make(map[string]float64)
	var totalValues float64
	for _, vals := range valueSets {
		mu := float64(len(vals))
		disagree := 0.0
		for i := 0; i < len(vals); i++ {
			freq[vals[i]]++
			totalValues++
			for j := 0; j < len(vals); j++ {
				if i != j && vals[i] != vals[j] {
					disagree++
				}
			}
		}
		do += disagree / (mu - 1)
		totalPairsNorm += mu
	}
	do /= totalPairsNorm

	// Expected disagreement from pooled value frequencies.
	if totalValues < 2 {
		return math.NaN()
	}
	// Sum in sorted value order; float accumulation over map order would
	// wobble the low bits of alpha run-to-run.
	vkeys := make([]string, 0, len(freq))
	for v := range freq {
		vkeys = append(vkeys, v)
	}
	sort.Strings(vkeys)
	var same float64
	for _, v := range vkeys {
		same += freq[v] * (freq[v] - 1)
	}
	de := 1 - same/(totalValues*(totalValues-1))
	if de == 0 {
		if do == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - do/de
}

// PercentAgreement returns the raw fraction of segments on which the two
// coders' full code sets are identical.
func (p *Project) PercentAgreement(coder1, coder2 string) float64 {
	units := p.units()
	if len(units) == 0 {
		return math.NaN()
	}
	agree := 0
	for _, u := range units {
		a := p.CodesFor(u.doc, u.seg, coder1)
		b := p.CodesFor(u.doc, u.seg, coder2)
		if len(a) == len(b) {
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if same {
				agree++
			}
		}
	}
	return float64(agree) / float64(len(units))
}
