package qualcode

import (
	"fmt"
	"sort"
)

// Segment is one coded unit of a transcript: a turn, sentence, or paragraph.
type Segment struct {
	ID      int
	Speaker string
	Text    string
}

// Document is one transcript (interview, field-note file, meeting record).
type Document struct {
	ID       string
	Title    string
	Segments []Segment
}

// Annotation applies one code to one segment by one coder.
type Annotation struct {
	DocID     string
	SegmentID int
	CodeID    string
	Coder     string
}

// Project binds a codebook, a document corpus, and the annotations made
// against them. It validates referential integrity on every mutation.
type Project struct {
	Codebook *Codebook
	docs     map[string]*Document
	anns     []Annotation
	memos    []Memo
	// index: doc → segment → coder → set of codes
	index map[string]map[int]map[string]map[string]bool
}

// NewProject returns a project over the given codebook.
func NewProject(cb *Codebook) *Project {
	return &Project{
		Codebook: cb,
		docs:     make(map[string]*Document),
		index:    make(map[string]map[int]map[string]map[string]bool),
	}
}

// AddDocument registers a transcript. Segment IDs must be unique within the
// document.
func (p *Project) AddDocument(d Document) error {
	if d.ID == "" {
		return fmt.Errorf("qualcode: document needs an ID")
	}
	if _, ok := p.docs[d.ID]; ok {
		return fmt.Errorf("qualcode: duplicate document %s", d.ID)
	}
	seen := make(map[int]bool, len(d.Segments))
	for _, s := range d.Segments {
		if seen[s.ID] {
			return fmt.Errorf("qualcode: duplicate segment %d in %s", s.ID, d.ID)
		}
		seen[s.ID] = true
	}
	cp := d
	cp.Segments = append([]Segment(nil), d.Segments...)
	p.docs[d.ID] = &cp
	return nil
}

// Document returns a transcript by ID.
func (p *Project) Document(id string) (Document, bool) {
	d, ok := p.docs[id]
	if !ok {
		return Document{}, false
	}
	return *d, true
}

// DocumentIDs returns all document IDs sorted.
func (p *Project) DocumentIDs() []string {
	out := make([]string, 0, len(p.docs))
	for id := range p.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Annotate applies a code to a segment. The document, segment, and code must
// exist. Re-applying an identical annotation is a no-op.
func (p *Project) Annotate(a Annotation) error {
	d, ok := p.docs[a.DocID]
	if !ok {
		return fmt.Errorf("qualcode: unknown document %s", a.DocID)
	}
	found := false
	for _, s := range d.Segments {
		if s.ID == a.SegmentID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("qualcode: unknown segment %d in %s", a.SegmentID, a.DocID)
	}
	if !p.Codebook.Has(a.CodeID) {
		return fmt.Errorf("%w: %s", ErrUnknownCode, a.CodeID)
	}
	if a.Coder == "" {
		return fmt.Errorf("qualcode: annotation needs a coder")
	}
	segIdx, ok := p.index[a.DocID]
	if !ok {
		segIdx = make(map[int]map[string]map[string]bool)
		p.index[a.DocID] = segIdx
	}
	coderIdx, ok := segIdx[a.SegmentID]
	if !ok {
		coderIdx = make(map[string]map[string]bool)
		segIdx[a.SegmentID] = coderIdx
	}
	codes, ok := coderIdx[a.Coder]
	if !ok {
		codes = make(map[string]bool)
		coderIdx[a.Coder] = codes
	}
	if codes[a.CodeID] {
		return nil
	}
	codes[a.CodeID] = true
	p.anns = append(p.anns, a)
	return nil
}

// Annotations returns a copy of all annotations.
func (p *Project) Annotations() []Annotation {
	return append([]Annotation(nil), p.anns...)
}

// Coders returns every coder who annotated anything, sorted.
func (p *Project) Coders() []string {
	set := make(map[string]bool)
	for _, a := range p.anns {
		set[a.Coder] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CodesFor returns the codes coder applied to the given segment, sorted.
func (p *Project) CodesFor(docID string, segID int, coder string) []string {
	codes := p.index[docID][segID][coder]
	out := make([]string, 0, len(codes))
	for c := range codes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// unit identifies one codable segment.
type unit struct {
	doc string
	seg int
}

// units returns every segment of every document, in deterministic order.
func (p *Project) units() []unit {
	var out []unit
	for _, docID := range p.DocumentIDs() {
		d := p.docs[docID]
		segs := append([]Segment(nil), d.Segments...)
		sort.Slice(segs, func(i, j int) bool { return segs[i].ID < segs[j].ID })
		for _, s := range segs {
			out = append(out, unit{doc: docID, seg: s.ID})
		}
	}
	return out
}

// CodeCounts returns, for each code, the number of (segment, coder) pairs it
// was applied to.
func (p *Project) CodeCounts() map[string]int {
	out := make(map[string]int)
	for _, a := range p.anns {
		out[a.CodeID]++
	}
	return out
}
