package qualcode

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func newTestCodebook(t *testing.T, ids ...string) *Codebook {
	t.Helper()
	cb := NewCodebook()
	for _, id := range ids {
		if err := cb.Add(Code{ID: id, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	return cb
}

func TestCodebookHierarchy(t *testing.T) {
	cb := NewCodebook()
	if err := cb.Add(Code{ID: "methods", Name: "Methods"}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Add(Code{ID: "interview", Parent: "methods"}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Add(Code{ID: "semi-structured", Parent: "interview"}); err != nil {
		t.Fatal(err)
	}
	if cb.Depth("methods") != 0 || cb.Depth("interview") != 1 || cb.Depth("semi-structured") != 2 {
		t.Error("depths wrong")
	}
	anc := cb.Ancestors("semi-structured")
	if len(anc) != 2 || anc[0] != "interview" || anc[1] != "methods" {
		t.Errorf("ancestors = %v", anc)
	}
	if kids := cb.Children("methods"); len(kids) != 1 || kids[0] != "interview" {
		t.Errorf("children = %v", kids)
	}
	if roots := cb.Roots(); len(roots) != 1 || roots[0] != "methods" {
		t.Errorf("roots = %v", roots)
	}
}

func TestCodebookValidation(t *testing.T) {
	cb := NewCodebook()
	if err := cb.Add(Code{}); err == nil {
		t.Error("empty ID accepted")
	}
	_ = cb.Add(Code{ID: "a"})
	if err := cb.Add(Code{ID: "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := cb.Add(Code{ID: "b", Parent: "missing"}); err == nil {
		t.Error("unknown parent accepted")
	}
	if cb.Depth("missing") != -1 {
		t.Error("depth of unknown should be -1")
	}
}

func newTestProject(t *testing.T) *Project {
	t.Helper()
	cb := newTestCodebook(t, "x", "y", "z")
	p := NewProject(cb)
	if err := p.AddDocument(Document{
		ID: "d1",
		Segments: []Segment{
			{ID: 0, Speaker: "Alice", Text: "segment zero"},
			{ID: 1, Speaker: "Bob", Text: "segment one"},
			{ID: 2, Speaker: "Alice", Text: "segment two"},
			{ID: 3, Speaker: "Cara", Text: "segment three"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProjectValidation(t *testing.T) {
	p := newTestProject(t)
	if err := p.AddDocument(Document{ID: "d1"}); err == nil {
		t.Error("duplicate document accepted")
	}
	if err := p.AddDocument(Document{ID: "d2", Segments: []Segment{{ID: 0}, {ID: 0}}}); err == nil {
		t.Error("duplicate segment IDs accepted")
	}
	if err := p.Annotate(Annotation{DocID: "nope", SegmentID: 0, CodeID: "x", Coder: "c"}); err == nil {
		t.Error("unknown document accepted")
	}
	if err := p.Annotate(Annotation{DocID: "d1", SegmentID: 99, CodeID: "x", Coder: "c"}); err == nil {
		t.Error("unknown segment accepted")
	}
	if err := p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "nope", Coder: "c"}); err == nil {
		t.Error("unknown code accepted")
	}
	if err := p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x"}); err == nil {
		t.Error("empty coder accepted")
	}
}

func TestAnnotateIdempotent(t *testing.T) {
	p := newTestProject(t)
	a := Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"}
	if err := p.Annotate(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Annotate(a); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Annotations()); got != 1 {
		t.Errorf("annotations = %d, want 1", got)
	}
}

func TestCodesForSorted(t *testing.T) {
	p := newTestProject(t)
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "y", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	got := p.CodesFor("d1", 0, "c1")
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("codes = %v", got)
	}
}

func TestCohenKappaZeroWhenChanceLevel(t *testing.T) {
	p := newTestProject(t)
	// c1: x on {0,1}; c2: x on {0,2}. po=0.5, pe=0.5 → kappa = 0.
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c2"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 2, CodeID: "x", Coder: "c2"})
	if k := p.CohenKappa("c1", "c2", "x"); math.Abs(k) > 1e-9 {
		t.Errorf("kappa = %g, want 0", k)
	}
}

func TestCohenKappaPerfect(t *testing.T) {
	p := newTestProject(t)
	for _, c := range []string{"c1", "c2"} {
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: c})
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 2, CodeID: "x", Coder: c})
	}
	if k := p.CohenKappa("c1", "c2", "x"); math.Abs(k-1) > 1e-9 {
		t.Errorf("kappa = %g, want 1", k)
	}
}

func TestCohenKappaDegenerate(t *testing.T) {
	p := newTestProject(t)
	// Neither coder ever applies "z": po=1, pe=1 → defined as 1.
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c2"})
	if k := p.CohenKappa("c1", "c2", "z"); k != 1 {
		t.Errorf("degenerate kappa = %g, want 1", k)
	}
}

func TestFleissKappaPerfectAndPoor(t *testing.T) {
	p := newTestProject(t)
	for _, c := range []string{"c1", "c2", "c3"} {
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: c})
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "y", Coder: c})
	}
	if k := p.FleissKappa("x"); math.Abs(k-1) > 1e-9 {
		t.Errorf("perfect fleiss = %g, want 1", k)
	}
	// One coder: NaN.
	p2 := newTestProject(t)
	_ = p2.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "solo"})
	if !math.IsNaN(p2.FleissKappa("x")) {
		t.Error("single-coder fleiss should be NaN")
	}
}

func TestKrippendorffPerfect(t *testing.T) {
	p := newTestProject(t)
	for _, c := range []string{"c1", "c2"} {
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: c})
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "y", Coder: c})
		_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 2, CodeID: "z", Coder: c})
	}
	if a := p.KrippendorffAlpha(); math.Abs(a-1) > 1e-9 {
		t.Errorf("perfect alpha = %g, want 1", a)
	}
}

func TestKrippendorffSystematicDisagreement(t *testing.T) {
	p := newTestProject(t)
	// Coders never agree.
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "y", Coder: "c2"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "y", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "x", Coder: "c2"})
	if a := p.KrippendorffAlpha(); a > 0 {
		t.Errorf("alpha = %g, want <= 0 for systematic disagreement", a)
	}
}

func TestKrippendorffNoRatedUnits(t *testing.T) {
	p := newTestProject(t)
	if !math.IsNaN(p.KrippendorffAlpha()) {
		t.Error("alpha with no ratings should be NaN")
	}
}

func TestPercentAgreement(t *testing.T) {
	p := newTestProject(t)
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c2"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "y", Coder: "c1"})
	// Segments 2,3 both uncoded (agree); segment 1 disagrees.
	if got := p.PercentAgreement("c1", "c2"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("agreement = %g, want 0.75", got)
	}
}

func TestCooccurrence(t *testing.T) {
	p := newTestProject(t)
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "y", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "y", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "z", Coder: "c2"})
	co := p.Cooccurrence()
	if co[[2]string{"x", "y"}] != 2 {
		t.Errorf("x|y co-occurrence = %d, want 2", co[[2]string{"x", "y"}])
	}
	if co[[2]string{"x", "z"}] != 0 {
		t.Errorf("cross-coder co-occurrence should not count")
	}
}

func TestThemesClusterCompanionCodes(t *testing.T) {
	cb := newTestCodebook(t, "a1", "a2", "b1", "b2", "lone")
	p := NewProject(cb)
	segs := make([]Segment, 20)
	for i := range segs {
		segs[i] = Segment{ID: i, Speaker: "S", Text: "t"}
	}
	if err := p.AddDocument(Document{ID: "d", Segments: segs}); err != nil {
		t.Fatal(err)
	}
	// a1+a2 co-occur on 8 segments, b1+b2 on 8 others.
	for i := 0; i < 8; i++ {
		_ = p.Annotate(Annotation{DocID: "d", SegmentID: i, CodeID: "a1", Coder: "c"})
		_ = p.Annotate(Annotation{DocID: "d", SegmentID: i, CodeID: "a2", Coder: "c"})
		_ = p.Annotate(Annotation{DocID: "d", SegmentID: i + 10, CodeID: "b1", Coder: "c"})
		_ = p.Annotate(Annotation{DocID: "d", SegmentID: i + 10, CodeID: "b2", Coder: "c"})
	}
	themes := p.Themes(2, rng.New(1))
	if len(themes) != 2 {
		t.Fatalf("themes = %+v, want 2 clusters", themes)
	}
	for _, th := range themes {
		if len(th.Codes) != 2 {
			t.Errorf("theme = %+v", th)
		}
		joined := strings.Join(th.Codes, ",")
		if joined != "a1,a2" && joined != "b1,b2" {
			t.Errorf("unexpected theme %q", joined)
		}
		if th.Support != 8 {
			t.Errorf("support = %d, want 8", th.Support)
		}
	}
}

func TestQuotesRedaction(t *testing.T) {
	p := newTestProject(t)
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 2, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "x", Coder: "c1"})
	quotes := p.Quotes("x", 1, true)
	if len(quotes) != 3 {
		t.Fatalf("quotes = %d, want 3", len(quotes))
	}
	// Alice appears at segments 0 and 2; pseudonyms must be stable.
	if quotes[0].Speaker != "P1" || quotes[2].Speaker != "P1" {
		t.Errorf("pseudonyms not stable: %v / %v", quotes[0].Speaker, quotes[2].Speaker)
	}
	if quotes[1].Speaker != "P2" {
		t.Errorf("second speaker = %v, want P2", quotes[1].Speaker)
	}
	plain := p.Quotes("x", 1, false)
	if plain[0].Speaker != "Alice" {
		t.Errorf("unredacted speaker = %v", plain[0].Speaker)
	}
}

func TestQuotesMinCoders(t *testing.T) {
	p := newTestProject(t)
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c1"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 0, CodeID: "x", Coder: "c2"})
	_ = p.Annotate(Annotation{DocID: "d1", SegmentID: 1, CodeID: "x", Coder: "c1"})
	if got := p.Quotes("x", 2, false); len(got) != 1 || got[0].SegmentID != 0 {
		t.Errorf("minCoders quotes = %+v", got)
	}
}

func TestSaturationCurveMonotone(t *testing.T) {
	cb := newTestCodebook(t, "x", "y", "z")
	p := NewProject(cb)
	for i, codes := range [][]string{{"x"}, {"x", "y"}, {"y"}, {"z"}} {
		docID := string(rune('a' + i))
		_ = p.AddDocument(Document{ID: docID, Segments: []Segment{{ID: 0}}})
		for _, c := range codes {
			_ = p.Annotate(Annotation{DocID: docID, SegmentID: 0, CodeID: c, Coder: "c"})
		}
	}
	curve := p.SaturationCurve()
	want := []int{1, 2, 2, 3}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	p, truth, err := GenerateCorpus(SynthConfig{Docs: 5, SegsPerDoc: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DocumentIDs()) != 5 {
		t.Fatalf("docs = %d", len(p.DocumentIDs()))
	}
	if p.Codebook.Len() != len(DefaultVocabulary()) {
		t.Errorf("codebook size = %d", p.Codebook.Len())
	}
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		if len(d.Segments) != 10 {
			t.Fatalf("segments = %d", len(d.Segments))
		}
		for _, s := range d.Segments {
			if truth.Code(docID, s.ID) == "" {
				t.Fatalf("segment %s/%d has no latent code", docID, s.ID)
			}
			if s.Text == "" {
				t.Fatal("empty segment text")
			}
		}
	}
}

func TestGenerateCorpusValidation(t *testing.T) {
	if _, _, err := GenerateCorpus(SynthConfig{Docs: 0, SegsPerDoc: 5}, rng.New(1)); err == nil {
		t.Error("zero docs accepted")
	}
}

func TestSimulatedCoderAccuracyOne(t *testing.T) {
	cfg := SynthConfig{Docs: 3, SegsPerDoc: 8}
	p, truth, err := GenerateCorpus(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "perfect", Accuracy: 1}
	if err := sc.CodeProject(p, truth, cfg, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		for _, s := range d.Segments {
			got := p.CodesFor(docID, s.ID, "perfect")
			if len(got) != 1 || got[0] != truth.Code(docID, s.ID) {
				t.Fatalf("perfect coder wrong at %s/%d: %v", docID, s.ID, got)
			}
		}
	}
}

func TestE6ReliabilityImprovesWithIterations(t *testing.T) {
	rows, err := ReliabilityCurve(5, 3, 0.55, 0.45, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if !(last.MeanKappa > first.MeanKappa) {
		t.Errorf("kappa did not improve: %g -> %g", first.MeanKappa, last.MeanKappa)
	}
	if !(last.KrippAlpha > first.KrippAlpha) {
		t.Errorf("alpha did not improve: %g -> %g", first.KrippAlpha, last.KrippAlpha)
	}
	if !(last.Agreement > first.Agreement) {
		t.Errorf("agreement did not improve: %g -> %g", first.Agreement, last.Agreement)
	}
	if last.MeanKappa < 0.75 {
		t.Errorf("final kappa %g should indicate substantial agreement", last.MeanKappa)
	}
	if first.KrippAlpha > 0.5 {
		t.Errorf("initial alpha %g should be low for noisy coders", first.KrippAlpha)
	}
	for _, row := range rows {
		if row.CoderAccuracy < 0.55 || row.CoderAccuracy > 1 {
			t.Errorf("accuracy = %g out of range", row.CoderAccuracy)
		}
	}
}

func TestE6Deterministic(t *testing.T) {
	a, err := ReliabilityCurve(3, 2, 0.6, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReliabilityCurve(3, 2, 0.6, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func BenchmarkReliabilityCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReliabilityCurve(3, 3, 0.6, 0.4, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKrippendorffAlpha(b *testing.B) {
	cfg := SynthConfig{Docs: 10, SegsPerDoc: 15}
	p, truth, err := GenerateCorpus(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for c := 0; c < 3; c++ {
		sc := SimulatedCoder{Name: string(rune('a' + c)), Accuracy: 0.8}
		if err := sc.CodeProject(p, truth, cfg, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.KrippendorffAlpha()
	}
}
