package qualcode

import (
	"encoding/json"
	"fmt"
	"io"
)

// ProjectJSON is the on-disk interchange format for a coding project: the
// codebook, documents, and annotations a team would exchange or archive
// alongside a paper (the "research artifact" of §5.2).
type ProjectJSON struct {
	Codes       []Code       `json:"codes"`
	Documents   []Document   `json:"documents"`
	Annotations []Annotation `json:"annotations"`
	Memos       []Memo       `json:"memos,omitempty"`
}

// Export serializes the project.
func (p *Project) Export() ProjectJSON {
	out := ProjectJSON{Annotations: p.Annotations()}
	for _, id := range p.Codebook.IDs() {
		c, _ := p.Codebook.Get(id)
		out.Codes = append(out.Codes, c)
	}
	for _, id := range p.DocumentIDs() {
		d, _ := p.Document(id)
		out.Documents = append(out.Documents, d)
	}
	out.Memos = p.Memos("")
	return out
}

// WriteJSON writes the project as indented JSON.
func (p *Project) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Export())
}

// Import reconstructs a project from its interchange form, validating every
// reference. Codes must be ordered so parents precede children (Export
// emits IDs sorted; for hierarchies whose parent IDs do not sort before
// their children, Import retries placement until it converges).
func Import(pj ProjectJSON) (*Project, error) {
	cb := NewCodebook()
	pending := append([]Code(nil), pj.Codes...)
	for len(pending) > 0 {
		placed := 0
		var next []Code
		for _, c := range pending {
			if c.Parent == "" || cb.Has(c.Parent) {
				if err := cb.Add(c); err != nil {
					return nil, err
				}
				placed++
			} else {
				next = append(next, c)
			}
		}
		if placed == 0 {
			return nil, fmt.Errorf("qualcode: unresolvable code parents (cycle or missing): %d left", len(next))
		}
		pending = next
	}
	p := NewProject(cb)
	for _, d := range pj.Documents {
		if err := p.AddDocument(d); err != nil {
			return nil, err
		}
	}
	for _, a := range pj.Annotations {
		if err := p.Annotate(a); err != nil {
			return nil, err
		}
	}
	for _, m := range pj.Memos {
		if _, err := p.AddMemo(m); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ReadFrom parses a project from JSON.
func ReadFrom(r io.Reader) (*Project, error) {
	var pj ProjectJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("qualcode: decode: %w", err)
	}
	return Import(pj)
}
