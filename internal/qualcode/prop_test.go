package qualcode_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/proptest"
	"repro/internal/qualcode"
	"repro/internal/rng"
)

// Property suite for the qualitative-coding layer: inter-rater statistics
// stay in their theoretical ranges and are symmetric in the coders, and the
// consensus "negotiated agreement" coder never invents a code nobody voted
// for.

// synthProject draws a small coded corpus: 2-3 simulated coders with random
// accuracies annotate a generated transcript set.
func synthProject(g *proptest.G) (*qualcode.Project, qualcode.Truth, []string, error) {
	cfg := qualcode.SynthConfig{
		Docs:       g.IntRange(1, 3),
		SegsPerDoc: g.IntRange(2, 8),
		Speakers:   g.IntRange(1, 4),
	}
	r := rng.New(g.Uint64())
	p, truth, err := qualcode.GenerateCorpus(cfg, r)
	if err != nil {
		return nil, nil, nil, err
	}
	nCoders := g.IntRange(2, 3)
	names := make([]string, nCoders)
	for i := range names {
		names[i] = fmt.Sprintf("coder-%d", i+1)
		sc := qualcode.SimulatedCoder{Name: names[i], Accuracy: g.Float64Range(0.2, 1)}
		if err := sc.CodeProject(p, truth, cfg, r); err != nil {
			return nil, nil, nil, err
		}
	}
	return p, truth, names, nil
}

func TestPropReliabilityBoundsAndSymmetry(t *testing.T) {
	proptest.Run(t, 401, 60, func(g *proptest.G) error {
		p, _, names, err := synthProject(g)
		if err != nil {
			return err
		}
		const tol = 1e-9
		for _, code := range p.Codebook.IDs() {
			k12 := p.CohenKappa(names[0], names[1], code)
			k21 := p.CohenKappa(names[1], names[0], code)
			if !proptest.SameFloat(k12, k21) {
				return fmt.Errorf("CohenKappa(%s) asymmetric: %v vs %v", code, k12, k21)
			}
			if !math.IsNaN(k12) && (k12 < -1-tol || k12 > 1+tol) {
				return fmt.Errorf("CohenKappa(%s) = %v out of [-1,1]", code, k12)
			}
			if fk := p.FleissKappa(code); !math.IsNaN(fk) && fk > 1+tol {
				return fmt.Errorf("FleissKappa(%s) = %v > 1", code, fk)
			}
		}
		pa := p.PercentAgreement(names[0], names[1])
		if !proptest.SameFloat(pa, p.PercentAgreement(names[1], names[0])) {
			return fmt.Errorf("PercentAgreement asymmetric")
		}
		if !math.IsNaN(pa) && (pa < -tol || pa > 1+tol) {
			return fmt.Errorf("PercentAgreement = %v out of [0,1]", pa)
		}
		if alpha := p.KrippendorffAlpha(); !math.IsNaN(alpha) && alpha > 1+tol {
			return fmt.Errorf("KrippendorffAlpha = %v > 1", alpha)
		}
		if mk := p.MeanPairwiseKappa(); !math.IsNaN(mk) && (mk < -1-tol || mk > 1+tol) {
			return fmt.Errorf("MeanPairwiseKappa = %v out of [-1,1]", mk)
		}
		return nil
	})
}

func TestPropPerfectAgreementScoresOne(t *testing.T) {
	proptest.Run(t, 402, 40, func(g *proptest.G) error {
		cfg := qualcode.SynthConfig{
			Docs:       g.IntRange(1, 3),
			SegsPerDoc: g.IntRange(2, 8),
			Speakers:   2,
		}
		r := rng.New(g.Uint64())
		p, truth, err := qualcode.GenerateCorpus(cfg, r)
		if err != nil {
			return err
		}
		// Two perfectly accurate coders agree everywhere by construction.
		for _, name := range []string{"exact-a", "exact-b"} {
			sc := qualcode.SimulatedCoder{Name: name, Accuracy: 1}
			if err := sc.CodeProject(p, truth, cfg, r); err != nil {
				return err
			}
		}
		if pa := p.PercentAgreement("exact-a", "exact-b"); !proptest.ApproxEq(pa, 1, 1e-12) {
			return fmt.Errorf("perfect coders disagree: PercentAgreement = %v", pa)
		}
		if alpha := p.KrippendorffAlpha(); !proptest.ApproxEq(alpha, 1, 1e-12) {
			return fmt.Errorf("perfect coders: KrippendorffAlpha = %v, want 1", alpha)
		}
		return nil
	})
}

func TestPropConsensusSubsetOfVotes(t *testing.T) {
	proptest.Run(t, 403, 50, func(g *proptest.G) error {
		p, _, names, err := synthProject(g)
		if err != nil {
			return err
		}
		minVotes := g.IntRange(1, len(names))
		const consensus = "consensus"
		if err := p.BuildConsensus(consensus, minVotes); err != nil {
			return err
		}
		for _, docID := range p.DocumentIDs() {
			doc, _ := p.Document(docID)
			for _, seg := range doc.Segments {
				voted := make(map[string]int)
				for _, c := range names {
					for _, code := range p.CodesFor(docID, seg.ID, c) {
						voted[code]++
					}
				}
				for _, code := range p.CodesFor(docID, seg.ID, consensus) {
					n, ok := voted[code]
					if !ok {
						return fmt.Errorf("consensus adopted %q on %s/%d with zero votes", code, docID, seg.ID)
					}
					// A code below the vote threshold may only appear via
					// the deterministic empty-segment fallback, which adopts
					// exactly one code.
					if n < minVotes && len(p.CodesFor(docID, seg.ID, consensus)) != 1 {
						return fmt.Errorf("consensus adopted %q on %s/%d with %d < %d votes alongside others",
							code, docID, seg.ID, n, minVotes)
					}
				}
			}
		}
		return nil
	})
}
