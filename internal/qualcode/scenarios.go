package qualcode

import (
	"context"

	"repro/internal/experiment"
)

// Scenario registration for E6: inter-rater reliability under codebook
// refinement.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E6",
		Title: "Inter-rater reliability vs codebook refinement",
		Claim: "Codebook-refinement iterations raise coder accuracy, and every reliability statistic (kappa, Fleiss, Krippendorff alpha, agreement) climbs with it.",
		Seed:  7,
		Params: experiment.Schema{
			{Name: "iterations", Kind: experiment.Int, Default: 6, Doc: "codebook refinement iterations"},
			{Name: "coders", Kind: experiment.Int, Default: 3, Doc: "independent coders"},
			{Name: "base-accuracy", Kind: experiment.Float, Default: 0.55, Doc: "iteration-0 coder accuracy"},
			{Name: "gain", Kind: experiment.Float, Default: 0.45, Doc: "error-rate shrink factor per iteration"},
		},
		Run: runE6,
	})
}

// runE6 produces the reliability curve.
func runE6(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	rows, err := ReliabilityCurve(p.Int("iterations"), p.Int("coders"),
		p.Float("base-accuracy"), p.Float("gain"), seed)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E6", "Inter-rater reliability vs codebook refinement",
		"iteration", "accuracy", "mean-kappa", "fleiss", "kripp-alpha", "agreement")
	for _, r := range rows {
		t.AddRow(experiment.I(r.Iteration), experiment.F3(r.CoderAccuracy), experiment.F3(r.MeanKappa),
			experiment.F3(r.FleissKappa), experiment.F3(r.KrippAlpha), experiment.F3(r.Agreement))
	}
	return res, nil
}
