package qualcode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestExportImportRoundTrip(t *testing.T) {
	cfg := SynthConfig{Docs: 3, SegsPerDoc: 5}
	p, truth, err := GenerateCorpus(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "c1", Accuracy: 0.9}
	if err := sc.CodeProject(p, truth, cfg, rng.New(2)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Codebook.Len() != p.Codebook.Len() {
		t.Errorf("codebook size %d vs %d", p2.Codebook.Len(), p.Codebook.Len())
	}
	if len(p2.DocumentIDs()) != len(p.DocumentIDs()) {
		t.Errorf("documents differ")
	}
	if len(p2.Annotations()) != len(p.Annotations()) {
		t.Errorf("annotations %d vs %d", len(p2.Annotations()), len(p.Annotations()))
	}
	// Reliability statistics must survive the round trip exactly.
	for _, docID := range p.DocumentIDs() {
		d, _ := p.Document(docID)
		for _, s := range d.Segments {
			a := p.CodesFor(docID, s.ID, "c1")
			b := p2.CodesFor(docID, s.ID, "c1")
			if strings.Join(a, ",") != strings.Join(b, ",") {
				t.Fatalf("codes differ at %s/%d", docID, s.ID)
			}
		}
	}
}

func TestImportHierarchyOutOfOrder(t *testing.T) {
	pj := ProjectJSON{
		Codes: []Code{
			{ID: "zchild", Parent: "aparent"},
			{ID: "aparent"},
		},
		Documents: []Document{{ID: "d", Segments: []Segment{{ID: 0}}}},
	}
	p, err := Import(pj)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codebook.Depth("zchild") != 1 {
		t.Error("hierarchy not reconstructed")
	}
}

func TestImportRejectsCycle(t *testing.T) {
	pj := ProjectJSON{
		Codes: []Code{
			{ID: "a", Parent: "b"},
			{ID: "b", Parent: "a"},
		},
	}
	if _, err := Import(pj); err == nil {
		t.Error("cycle accepted")
	}
}

func TestImportRejectsBadAnnotation(t *testing.T) {
	pj := ProjectJSON{
		Codes:       []Code{{ID: "x"}},
		Documents:   []Document{{ID: "d", Segments: []Segment{{ID: 0}}}},
		Annotations: []Annotation{{DocID: "d", SegmentID: 5, CodeID: "x", Coder: "c"}},
	}
	if _, err := Import(pj); err == nil {
		t.Error("dangling annotation accepted")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMemosSurviveRoundTrip(t *testing.T) {
	p := newTestProject(t)
	if _, err := p.AddMemo(Memo{
		Author: "lead", Text: "insight", Codes: []string{"x"},
		Segments: []SegmentRef{{DocID: "d1", SegmentID: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	memos := p2.Memos("")
	if len(memos) != 1 || memos[0].Text != "insight" || len(memos[0].Segments) != 1 {
		t.Errorf("memos = %+v", memos)
	}
}
