package qualcode

import (
	"fmt"
	"sort"
)

// Memo is an analytic note — the grounded-theory practice of writing down
// emerging interpretations and linking them to the codes and segments that
// prompted them. Memos are how "informal, personal, and ad-hoc" insight
// (§5.2) is kept analyzable instead of lost.
type Memo struct {
	ID     int
	Author string
	Text   string
	// Codes this memo interprets (must exist in the codebook).
	Codes []string
	// Segments this memo cites, as (DocID, SegmentID) pairs.
	Segments []SegmentRef
}

// SegmentRef points at one segment.
type SegmentRef struct {
	DocID     string
	SegmentID int
}

// AddMemo validates and stores a memo, returning its assigned ID.
func (p *Project) AddMemo(m Memo) (int, error) {
	if m.Author == "" || m.Text == "" {
		return 0, fmt.Errorf("qualcode: memo needs an author and text")
	}
	for _, c := range m.Codes {
		if !p.Codebook.Has(c) {
			return 0, fmt.Errorf("%w: %s in memo", ErrUnknownCode, c)
		}
	}
	for _, ref := range m.Segments {
		d, ok := p.docs[ref.DocID]
		if !ok {
			return 0, fmt.Errorf("qualcode: memo cites unknown document %s", ref.DocID)
		}
		found := false
		for _, s := range d.Segments {
			if s.ID == ref.SegmentID {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("qualcode: memo cites unknown segment %s/%d", ref.DocID, ref.SegmentID)
		}
	}
	m.ID = len(p.memos)
	p.memos = append(p.memos, m)
	return m.ID, nil
}

// Memos returns all memos, optionally filtered to those touching codeID
// ("" for all).
func (p *Project) Memos(codeID string) []Memo {
	var out []Memo
	for _, m := range p.memos {
		if codeID == "" {
			out = append(out, m)
			continue
		}
		for _, c := range m.Codes {
			if c == codeID {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// MemoTrail renders the memos for a code in ID order as a Markdown
// fragment, with their cited evidence — the audit trail from data to
// interpretation.
func (p *Project) MemoTrail(codeID string) string {
	memos := p.Memos(codeID)
	if len(memos) == 0 {
		return fmt.Sprintf("No memos for %q.\n", codeID)
	}
	sort.Slice(memos, func(i, j int) bool { return memos[i].ID < memos[j].ID })
	out := fmt.Sprintf("### Memo trail: %s\n\n", codeID)
	for _, m := range memos {
		out += fmt.Sprintf("- **memo %d** (%s): %s\n", m.ID, m.Author, m.Text)
		for _, ref := range m.Segments {
			d := p.docs[ref.DocID]
			for _, s := range d.Segments {
				if s.ID == ref.SegmentID {
					out += fmt.Sprintf("  - evidence [%s/%d]: %q\n", ref.DocID, ref.SegmentID, s.Text)
				}
			}
		}
	}
	return out
}
