package qualcode

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Cooccurrence returns, for each unordered code pair applied by the same
// coder to the same segment, the number of such (segment, coder) incidences.
// Keys are "codeA|codeB" with codeA < codeB.
func (p *Project) Cooccurrence() map[[2]string]int {
	out := make(map[[2]string]int)
	for docID, segIdx := range p.index {
		_ = docID
		for _, coderIdx := range segIdx {
			for _, codes := range coderIdx {
				ids := make([]string, 0, len(codes))
				for c := range codes {
					ids = append(ids, c)
				}
				sort.Strings(ids)
				for i := 0; i < len(ids); i++ {
					for j := i + 1; j < len(ids); j++ {
						out[[2]string{ids[i], ids[j]}]++
					}
				}
			}
		}
	}
	return out
}

// Theme is a cluster of codes that systematically co-occur, with the
// incidence counts that support it.
type Theme struct {
	Codes   []string
	Support int // total co-occurrence weight inside the theme
}

// Themes clusters the code co-occurrence graph with label propagation and
// returns the multi-code clusters sorted by support (descending), then by
// first code ID. minSupport drops co-occurrence edges below the threshold.
func (p *Project) Themes(minSupport int, r *rng.Rand) []Theme {
	co := p.Cooccurrence()
	ids := p.Codebook.IDs()
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	g := graph.New(len(ids), false)
	for pair, cnt := range co {
		if cnt < minSupport {
			continue
		}
		_ = g.AddEdge(idx[pair[0]], idx[pair[1]], float64(cnt))
	}
	label, count := g.LabelPropagation(r, 50)
	clusters := make([][]string, count)
	for i, l := range label {
		clusters[l] = append(clusters[l], ids[i])
	}
	var themes []Theme
	for _, codes := range clusters {
		if len(codes) < 2 {
			continue
		}
		sort.Strings(codes)
		inSet := make(map[string]bool, len(codes))
		for _, c := range codes {
			inSet[c] = true
		}
		support := 0
		for pair, cnt := range co {
			if inSet[pair[0]] && inSet[pair[1]] {
				support += cnt
			}
		}
		themes = append(themes, Theme{Codes: codes, Support: support})
	}
	sort.Slice(themes, func(i, j int) bool {
		if themes[i].Support != themes[j].Support {
			return themes[i].Support > themes[j].Support
		}
		return themes[i].Codes[0] < themes[j].Codes[0]
	})
	return themes
}

// Quote is an extracted, optionally redacted, segment supporting a code.
type Quote struct {
	DocID     string
	SegmentID int
	Speaker   string // pseudonym when redacted
	Text      string
	Coders    []string
}

// Quotes returns every segment to which codeID was applied by at least
// minCoders coders. With redact set, speakers are replaced by stable
// pseudonyms ("P1", "P2", ...) assigned in order of first appearance —
// the privacy practice §5.2 recommends for direct quotes.
func (p *Project) Quotes(codeID string, minCoders int, redact bool) []Quote {
	if minCoders < 1 {
		minCoders = 1
	}
	pseudonyms := make(map[string]string)
	pseudo := func(speaker string) string {
		if !redact {
			return speaker
		}
		if name, ok := pseudonyms[speaker]; ok {
			return name
		}
		name := fmt.Sprintf("P%d", len(pseudonyms)+1)
		pseudonyms[speaker] = name
		return name
	}
	var out []Quote
	for _, docID := range p.DocumentIDs() {
		d := p.docs[docID]
		segs := append([]Segment(nil), d.Segments...)
		sort.Slice(segs, func(i, j int) bool { return segs[i].ID < segs[j].ID })
		for _, s := range segs {
			var coders []string
			for coder, codes := range p.index[docID][s.ID] {
				if codes[codeID] {
					coders = append(coders, coder)
				}
			}
			if len(coders) < minCoders {
				continue
			}
			sort.Strings(coders)
			out = append(out, Quote{
				DocID:     docID,
				SegmentID: s.ID,
				Speaker:   pseudo(s.Speaker),
				Text:      s.Text,
				Coders:    coders,
			})
		}
	}
	return out
}

// SaturationCurve returns, for documents processed in sorted-ID order, the
// cumulative number of distinct codes applied after each document — the
// standard evidence that data collection reached code saturation.
func (p *Project) SaturationCurve() []int {
	seen := make(map[string]bool)
	var curve []int
	for _, docID := range p.DocumentIDs() {
		for _, coderIdx := range p.index[docID] {
			for _, codes := range coderIdx {
				for c := range codes {
					seen[c] = true
				}
			}
		}
		curve = append(curve, len(seen))
	}
	return curve
}
