package qualcode

import (
	"testing"

	"repro/internal/rng"
)

func TestBuildConsensusValidation(t *testing.T) {
	cb := newTestCodebook(t, "x")
	p := NewProject(cb)
	if err := p.BuildConsensus("c", 2); err == nil {
		t.Error("consensus without coders accepted")
	}
	_ = p.AddDocument(Document{ID: "d", Segments: []Segment{{ID: 0}}})
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 0, CodeID: "x", Coder: "a"})
	if err := p.BuildConsensus("", 2); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.BuildConsensus("a", 2); err == nil {
		t.Error("existing coder name accepted")
	}
}

func TestConsensusMajorityVote(t *testing.T) {
	cb := newTestCodebook(t, "x", "y", "z")
	p := NewProject(cb)
	_ = p.AddDocument(Document{ID: "d", Segments: []Segment{{ID: 0}, {ID: 1}, {ID: 2}}})
	// Segment 0: 2x "x", 1x "y" → consensus x.
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 0, CodeID: "x", Coder: "a"})
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 0, CodeID: "x", Coder: "b"})
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 0, CodeID: "y", Coder: "c"})
	// Segment 1: all different → discussion picks lexicographically first
	// among equal support.
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 1, CodeID: "z", Coder: "a"})
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 1, CodeID: "y", Coder: "b"})
	_ = p.Annotate(Annotation{DocID: "d", SegmentID: 1, CodeID: "x", Coder: "c"})
	// Segment 2: uncoded → stays uncoded.
	if err := p.BuildConsensus("consensus", 2); err != nil {
		t.Fatal(err)
	}
	if got := p.CodesFor("d", 0, "consensus"); len(got) != 1 || got[0] != "x" {
		t.Errorf("segment 0 consensus = %v", got)
	}
	if got := p.CodesFor("d", 1, "consensus"); len(got) != 1 || got[0] != "x" {
		t.Errorf("segment 1 consensus = %v (ties resolve to smallest)", got)
	}
	if got := p.CodesFor("d", 2, "consensus"); len(got) != 0 {
		t.Errorf("segment 2 consensus = %v, want empty", got)
	}
}

func TestConsensusBeatsIndividualCoders(t *testing.T) {
	cfg := SynthConfig{Docs: 12, SegsPerDoc: 12}
	r := rng.New(31)
	p, truth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	coderRNG := r.Split()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		sc := SimulatedCoder{Name: n, Accuracy: 0.75}
		if err := sc.CodeProject(p, truth, cfg, coderRNG); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.BuildConsensus("consensus", 2); err != nil {
		t.Fatal(err)
	}
	var indivSum float64
	for _, n := range names {
		indivSum += p.AccuracyAgainst(truth, n)
	}
	indiv := indivSum / float64(len(names))
	cons := p.AccuracyAgainst(truth, "consensus")
	if !(cons > indiv+0.05) {
		t.Errorf("consensus accuracy %g should clearly beat individual mean %g", cons, indiv)
	}
	if cons < 0.85 {
		t.Errorf("consensus accuracy %g unexpectedly low", cons)
	}
}

func TestAccuracyAgainstPerfectCoder(t *testing.T) {
	cfg := SynthConfig{Docs: 4, SegsPerDoc: 8}
	p, truth, err := GenerateCorpus(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "perfect", Accuracy: 1}
	if err := sc.CodeProject(p, truth, cfg, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	if acc := p.AccuracyAgainst(truth, "perfect"); acc != 1 {
		t.Errorf("perfect accuracy = %g", acc)
	}
	if acc := p.AccuracyAgainst(truth, "nobody"); acc != 0 {
		t.Errorf("absent coder accuracy = %g", acc)
	}
}
