package qualcode

import (
	"strings"
	"testing"
)

func TestAddMemoValidation(t *testing.T) {
	p := newTestProject(t)
	if _, err := p.AddMemo(Memo{Text: "t"}); err == nil {
		t.Error("authorless memo accepted")
	}
	if _, err := p.AddMemo(Memo{Author: "a"}); err == nil {
		t.Error("textless memo accepted")
	}
	if _, err := p.AddMemo(Memo{Author: "a", Text: "t", Codes: []string{"ghost"}}); err == nil {
		t.Error("unknown code accepted")
	}
	if _, err := p.AddMemo(Memo{Author: "a", Text: "t", Segments: []SegmentRef{{DocID: "nope", SegmentID: 0}}}); err == nil {
		t.Error("unknown document accepted")
	}
	if _, err := p.AddMemo(Memo{Author: "a", Text: "t", Segments: []SegmentRef{{DocID: "d1", SegmentID: 99}}}); err == nil {
		t.Error("unknown segment accepted")
	}
}

func TestMemosFilteredByCode(t *testing.T) {
	p := newTestProject(t)
	id0, err := p.AddMemo(Memo{Author: "a", Text: "about x", Codes: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddMemo(Memo{Author: "a", Text: "about y", Codes: []string{"y"}}); err != nil {
		t.Fatal(err)
	}
	if id0 != 0 {
		t.Errorf("first memo ID = %d", id0)
	}
	if got := p.Memos(""); len(got) != 2 {
		t.Errorf("all memos = %d", len(got))
	}
	got := p.Memos("x")
	if len(got) != 1 || got[0].Text != "about x" {
		t.Errorf("x memos = %+v", got)
	}
	if got := p.Memos("z"); len(got) != 0 {
		t.Errorf("z memos = %+v", got)
	}
}

func TestMemoTrailRendersEvidence(t *testing.T) {
	p := newTestProject(t)
	if _, err := p.AddMemo(Memo{
		Author: "lead",
		Text:   "billing confusion and trust co-occur",
		Codes:  []string{"x"},
		Segments: []SegmentRef{
			{DocID: "d1", SegmentID: 0},
		},
	}); err != nil {
		t.Fatal(err)
	}
	trail := p.MemoTrail("x")
	for _, want := range []string{"Memo trail: x", "billing confusion and trust co-occur", "segment zero", "[d1/0]"} {
		if !strings.Contains(trail, want) {
			t.Errorf("trail missing %q:\n%s", want, trail)
		}
	}
	if !strings.Contains(p.MemoTrail("y"), "No memos") {
		t.Error("empty trail should say so")
	}
}
