package qualcode

import (
	"testing"

	"repro/internal/rng"
)

func TestTrainSuggesterValidation(t *testing.T) {
	cb := newTestCodebook(t, "x")
	p := NewProject(cb)
	if _, err := TrainSuggester(p, "nobody"); err == nil {
		t.Error("training on empty coder accepted")
	}
}

func TestSuggesterLearnsVocabulary(t *testing.T) {
	cfg := SynthConfig{Docs: 10, SegsPerDoc: 12}
	r := rng.New(41)
	p, truth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	// A fairly accurate human coder provides training labels.
	sc := SimulatedCoder{Name: "human", Accuracy: 0.9}
	if err := sc.CodeProject(p, truth, cfg, r.Split()); err != nil {
		t.Fatal(err)
	}
	s, err := TrainSuggester(p, "human")
	if err != nil {
		t.Fatal(err)
	}
	// In-sample accuracy should comfortably beat chance (1/6) and approach
	// the label quality.
	acc := EvaluateSuggester(s, p, truth)
	if acc < 0.6 {
		t.Errorf("suggester accuracy = %g, want well above chance", acc)
	}
}

func TestSuggesterGeneralizesToHeldOut(t *testing.T) {
	cfg := SynthConfig{Docs: 14, SegsPerDoc: 12}
	r := rng.New(43)
	train, trainTruth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "human", Accuracy: 0.9}
	if err := sc.CodeProject(train, trainTruth, cfg, r.Split()); err != nil {
		t.Fatal(err)
	}
	s, err := TrainSuggester(train, "human")
	if err != nil {
		t.Fatal(err)
	}
	// Fresh, never-seen corpus from the same vocabulary.
	heldCfg := SynthConfig{Docs: 6, SegsPerDoc: 12}
	held, heldTruth, err := GenerateCorpus(heldCfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	acc := EvaluateSuggester(s, held, heldTruth)
	if acc < 0.55 {
		t.Errorf("held-out accuracy = %g, want well above chance (1/6)", acc)
	}
}

func TestSuggestConfidencesSumToOne(t *testing.T) {
	cfg := SynthConfig{Docs: 6, SegsPerDoc: 8}
	r := rng.New(47)
	p, truth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "h", Accuracy: 1}
	if err := sc.CodeProject(p, truth, cfg, r.Split()); err != nil {
		t.Fatal(err)
	}
	s, err := TrainSuggester(p, "h")
	if err != nil {
		t.Fatal(err)
	}
	all := s.Suggest("repair antenna climb roof", len(DefaultVocabulary()))
	sum := 0.0
	for _, sg := range all {
		if sg.Confidence < 0 || sg.Confidence > 1 {
			t.Fatalf("confidence %g out of range", sg.Confidence)
		}
		sum += sg.Confidence
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("confidences sum to %g", sum)
	}
	if all[0].CodeID != "maintenance" {
		t.Errorf("top suggestion = %s, want maintenance for repair vocabulary", all[0].CodeID)
	}
	// Top-k truncation.
	if got := s.Suggest("repair antenna", 2); len(got) != 2 {
		t.Errorf("k=2 returned %d", len(got))
	}
}

func TestSuggestUnknownTextStillRanks(t *testing.T) {
	cfg := SynthConfig{Docs: 4, SegsPerDoc: 6}
	r := rng.New(53)
	p, truth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	sc := SimulatedCoder{Name: "h", Accuracy: 1}
	_ = sc.CodeProject(p, truth, cfg, r.Split())
	s, err := TrainSuggester(p, "h")
	if err != nil {
		t.Fatal(err)
	}
	got := s.Suggest("zzz qqq completely novel words", 3)
	if len(got) == 0 {
		t.Fatal("no suggestions for OOV text")
	}
}

func BenchmarkSuggest(b *testing.B) {
	cfg := SynthConfig{Docs: 10, SegsPerDoc: 12}
	r := rng.New(1)
	p, truth, err := GenerateCorpus(cfg, r.Split())
	if err != nil {
		b.Fatal(err)
	}
	sc := SimulatedCoder{Name: "h", Accuracy: 0.9}
	if err := sc.CodeProject(p, truth, cfg, r.Split()); err != nil {
		b.Fatal(err)
	}
	s, err := TrainSuggester(p, "h")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Suggest("volunteer repair climb roof meeting vote", 3)
	}
}
