package qualcode

import (
	"fmt"
	"sort"
)

// BuildConsensus adds a synthetic coder whose annotations are the majority
// vote of the existing coders on every segment: the "negotiated agreement"
// step of a formal coding process, where the team meets to resolve
// disagreements. A code is adopted when at least minVotes coders applied
// it; ties and near-misses are resolved deterministically (lexicographically
// smallest qualifying code wins when a segment would otherwise end up
// empty but had annotations). The consensus coder's name must be unused.
func (p *Project) BuildConsensus(name string, minVotes int) error {
	if name == "" {
		return fmt.Errorf("qualcode: consensus coder needs a name")
	}
	for _, c := range p.Coders() {
		if c == name {
			return fmt.Errorf("qualcode: coder %q already exists", name)
		}
	}
	if minVotes < 1 {
		minVotes = 1
	}
	coders := p.Coders()
	if len(coders) == 0 {
		return fmt.Errorf("qualcode: no coders to build consensus from")
	}
	for _, u := range p.units() {
		votes := make(map[string]int)
		for _, c := range coders {
			for _, code := range p.CodesFor(u.doc, u.seg, c) {
				votes[code]++
			}
		}
		if len(votes) == 0 {
			continue
		}
		var adopted []string
		for code, n := range votes {
			if n >= minVotes {
				adopted = append(adopted, code)
			}
		}
		if len(adopted) == 0 {
			// The team discusses and settles on the most-supported code;
			// deterministic tie-break by code ID.
			type cv struct {
				code string
				n    int
			}
			var all []cv
			for code, n := range votes {
				all = append(all, cv{code, n})
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].n != all[j].n {
					return all[i].n > all[j].n
				}
				return all[i].code < all[j].code
			})
			adopted = []string{all[0].code}
		}
		sort.Strings(adopted)
		for _, code := range adopted {
			if err := p.Annotate(Annotation{
				DocID: u.doc, SegmentID: u.seg, CodeID: code, Coder: name,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// AccuracyAgainst returns the fraction of segments on which the coder's
// primary code (first in sorted order) matches the latent truth. Segments
// the coder left uncoded count as misses; segments without truth are
// skipped.
func (p *Project) AccuracyAgainst(truth Truth, coder string) float64 {
	var total, hit float64
	for _, u := range p.units() {
		want := truth.Code(u.doc, u.seg)
		if want == "" {
			continue
		}
		total++
		got := p.CodesFor(u.doc, u.seg, coder)
		if len(got) > 0 && got[0] == want {
			hit++
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}
