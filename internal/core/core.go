// Package core is the toolkit's primary contribution: a mixed-methods study
// container that makes the paper's three recommendations (§5) first-class,
// checkable artifacts of a networking research project:
//
//  1. include and document partnerships (§5.1) — Partnership records with
//     formation stories and per-phase influence;
//  2. detail informative conversations (§5.2) — Conversation records with
//     consent-aware quoting, linkable to formal coding in qualcode;
//  3. reflect on positionality (§5.3) — researcher statements and a
//     relevance audit against the study's claims.
//
// A Study composes the PAR engagement matrix (internal/par), field study
// (internal/ethno), coding project (internal/qualcode), and researcher
// positionality (internal/positionality), compiles a deterministic
// Markdown methods appendix, and scores the study against a checklist.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ethno"
	"repro/internal/par"
	"repro/internal/positionality"
	"repro/internal/qualcode"
)

// Partnership documents one research partnership per §5.1: who, how it
// formed, and which lifecycle phases it influenced.
type Partnership struct {
	Partner string
	// Formed tells the story of how the partnership came to be.
	Formed string
	// Influenced lists the phases the partner shaped.
	Influenced []par.Phase
}

// Conversation documents one informative conversation per §5.2 — the "work
// before the work".
type Conversation struct {
	With    string
	Context string
	Summary string
	Day     float64
	// Quotes are verbatim lines; they are only reproduced in the appendix
	// when ConsentToQuote is set, otherwise the summary paraphrases.
	Quotes         []string
	ConsentToQuote bool
	// OpenQuestions records what remained unresolved.
	OpenQuestions []string
}

// Study is a mixed-methods networking study.
type Study struct {
	Title string

	PAR         *par.Project
	Field       *ethno.Study
	Coding      *qualcode.Project
	Researchers []positionality.Researcher

	Partnerships  []Partnership
	Conversations []Conversation
	// Claims are the study's main claims, used by the positionality
	// relevance audit.
	Claims []positionality.Claim
}

// NewStudy returns a study with the given title and empty components.
func NewStudy(title string) *Study {
	return &Study{
		Title: title,
		PAR:   par.NewProject(title),
		Field: ethno.NewStudy(),
	}
}

// AddPartnership appends a partnership record; partner and formation story
// are required (documenting *how* partnerships formed is the point).
func (s *Study) AddPartnership(p Partnership) error {
	if p.Partner == "" || p.Formed == "" {
		return fmt.Errorf("core: partnership needs a partner and a formation story")
	}
	s.Partnerships = append(s.Partnerships, p)
	return nil
}

// AddConversation appends a conversation record; a summary is required.
func (s *Study) AddConversation(c Conversation) error {
	if c.With == "" || c.Summary == "" {
		return fmt.Errorf("core: conversation needs an interlocutor and a summary")
	}
	s.Conversations = append(s.Conversations, c)
	return nil
}

// Checklist scores the study against the paper's recommendations.
type Checklist struct {
	PartnershipsDocumented  bool // >= 1 partnership with formation story
	ConversationsDocumented bool // >= 1 conversation record
	PositionalityProvided   bool // every researcher discloses something
	ParticipationFull       bool // PAR coverage score == 1
	EthicsClean             bool // PAR audit returns no findings
	PositionalityGaps       int  // relevant-but-undisclosed attributes
}

// Score returns how many of the five binary checklist items pass.
func (c Checklist) Score() int {
	n := 0
	for _, ok := range []bool{
		c.PartnershipsDocumented,
		c.ConversationsDocumented,
		c.PositionalityProvided,
		c.ParticipationFull,
		c.EthicsClean,
	} {
		if ok {
			n++
		}
	}
	return n
}

// Check evaluates the checklist.
func (s *Study) Check() Checklist {
	c := Checklist{
		PartnershipsDocumented:  len(s.Partnerships) > 0,
		ConversationsDocumented: len(s.Conversations) > 0,
	}
	if len(s.Researchers) > 0 {
		c.PositionalityProvided = true
		for _, r := range s.Researchers {
			disclosed := false
			for _, a := range r.Attributes {
				if a.Disclosed {
					disclosed = true
					break
				}
			}
			if !disclosed {
				c.PositionalityProvided = false
				break
			}
		}
	}
	if s.PAR != nil {
		c.ParticipationFull = s.PAR.CoverageScore() == 1
		c.EthicsClean = len(s.PAR.Audit()) == 0
	}
	for _, r := range s.Researchers {
		c.PositionalityGaps += len(positionality.DisclosureGaps(
			positionality.RelevanceAudit(r, s.Claims)))
	}
	return c
}

// MethodsAppendix compiles the study's human-methods documentation into a
// deterministic Markdown document suitable for a paper appendix or an
// artifact README.
func (s *Study) MethodsAppendix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Methods Appendix: %s\n\n", s.Title)

	b.WriteString("## Partnerships\n\n")
	if len(s.Partnerships) == 0 {
		b.WriteString("No partnerships documented.\n\n")
	}
	for _, p := range s.Partnerships {
		fmt.Fprintf(&b, "- **%s** — formed: %s.", p.Partner, p.Formed)
		if len(p.Influenced) > 0 {
			names := make([]string, len(p.Influenced))
			for i, ph := range p.Influenced {
				names[i] = ph.String()
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " Influenced: %s.", strings.Join(names, ", "))
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")

	b.WriteString("## Formative conversations\n\n")
	if len(s.Conversations) == 0 {
		b.WriteString("No conversations documented.\n\n")
	}
	for i, c := range s.Conversations {
		fmt.Fprintf(&b, "### Conversation %d (%s, day %.0f)\n\n", i+1, c.Context, c.Day)
		fmt.Fprintf(&b, "%s\n\n", c.Summary)
		if c.ConsentToQuote {
			for _, q := range c.Quotes {
				fmt.Fprintf(&b, "> %q — %s\n", q, c.With)
			}
			if len(c.Quotes) > 0 {
				b.WriteString("\n")
			}
		} else if len(c.Quotes) > 0 {
			b.WriteString("_Direct quotes withheld (no consent to quote); paraphrased above._\n\n")
		}
		for _, q := range c.OpenQuestions {
			fmt.Fprintf(&b, "- Open question: %s\n", q)
		}
		if len(c.OpenQuestions) > 0 {
			b.WriteString("\n")
		}
	}

	if s.Coding != nil && len(s.Coding.Coders()) > 0 {
		b.WriteString("## Coded corpus\n\n")
		fmt.Fprintf(&b, "%d documents coded by %d coder(s) against %d codes.\n",
			len(s.Coding.DocumentIDs()), len(s.Coding.Coders()), s.Coding.Codebook.Len())
		if k := s.Coding.MeanPairwiseKappa(); !isNaN(k) {
			fmt.Fprintf(&b, "Mean pairwise Cohen kappa: %.3f.\n", k)
		}
		if a := s.Coding.KrippendorffAlpha(); !isNaN(a) {
			fmt.Fprintf(&b, "Krippendorff alpha: %.3f.\n", a)
		}
		counts := s.Coding.CodeCounts()
		ids := s.Coding.Codebook.IDs()
		b.WriteString("\n| Code | Applications |\n|---|---|\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "| %s | %d |\n", id, counts[id])
		}
		b.WriteString("\n")
	}

	b.WriteString("## Positionality\n\n")
	if len(s.Researchers) == 0 {
		b.WriteString("No positionality statements provided.\n\n")
	}
	for _, r := range s.Researchers {
		fmt.Fprintf(&b, "- %s\n", r.Statement())
	}
	if len(s.Researchers) > 0 {
		b.WriteString("\n")
	}

	if s.PAR != nil {
		b.WriteString("## Participation matrix\n\n")
		fmt.Fprintf(&b, "Coverage score: %.2f (phases with a collaborating-or-above partner).\n\n", s.PAR.CoverageScore())
		b.WriteString("| Phase | Stakeholder | Level |\n|---|---|---|\n")
		for _, ph := range par.Phases() {
			for _, id := range s.PAR.StakeholderIDs() {
				lvl := s.PAR.LevelAt(ph, id)
				if lvl == par.NotInvolved {
					continue
				}
				fmt.Fprintf(&b, "| %s | %s | %s |\n", ph, id, lvl)
			}
		}
		b.WriteString("\n")

		findings := s.PAR.Audit()
		b.WriteString("## Ethics & participation audit\n\n")
		if len(findings) == 0 {
			b.WriteString("No findings.\n")
		}
		for _, f := range findings {
			if f.Subject == "participation" || f.Subject == "reflexivity" {
				fmt.Fprintf(&b, "- [%s] %s: %s\n", f.Phase, f.Subject, f.Problem)
			} else {
				fmt.Fprintf(&b, "- [stakeholder %s] %s\n", f.Subject, f.Problem)
			}
		}
	}
	return b.String()
}

// TriangulationReport joins the field study's notes against measured
// anomalies and renders the result with the coding project's themes (when a
// coding project is attached), giving the mixed-methods narrative §6.1
// gestures at.
func (s *Study) TriangulationReport(anomalies []ethno.Anomaly, windowDays float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Triangulation: %s\n\n", s.Title)
	notes := s.Field.Notes("")
	res := ethno.Triangulate(notes, anomalies, windowDays)
	fmt.Fprintf(&b, "%d/%d anomalies explained by field notes (%.0f%%).\n\n",
		res.Explained, res.Anomalies, 100*res.ExplainedShare())
	for i, a := range anomalies {
		fmt.Fprintf(&b, "- day %.0f %s: ", a.Day, a.Label)
		ms := res.Matches[i]
		if len(ms) == 0 {
			b.WriteString("unexplained\n")
			continue
		}
		var frags []string
		for _, ni := range ms {
			n := notes[ni]
			frags = append(frags, fmt.Sprintf("%s (%s, day %.0f)", n.Text, n.Kind, n.Day))
		}
		b.WriteString(strings.Join(frags, "; ") + "\n")
	}
	return b.String()
}

func isNaN(x float64) bool { return x != x }
