package core

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSpec = `{
  "title": "Rural LTE Study",
  "stakeholders": [
    {"id": "coop", "name": "Valley Cooperative", "marginal": true, "consent_recorded": true}
  ],
  "engagements": [
    {"stakeholder": "coop", "phase": "problem-formation", "level": "community-led"},
    {"stakeholder": "coop", "phase": "solution-design", "level": "collaborating"},
    {"stakeholder": "coop", "phase": "implementation", "level": "collaborating"},
    {"stakeholder": "coop", "phase": "evaluation", "level": "collaborating"},
    {"stakeholder": "coop", "phase": "publication", "level": "consulted"}
  ],
  "reflections": [
    {"phase": "problem-formation", "note": "researchers also act as network operators"}
  ],
  "partnerships": [
    {"partner": "Valley Cooperative", "formed": "via the county broadband task force", "influenced": ["problem-formation", "evaluation"]}
  ],
  "conversations": [
    {"With": "coop treasurer", "Context": "monthly meeting", "Summary": "billing is the main churn driver", "Day": 14, "ConsentToQuote": false}
  ],
  "researchers": [
    {"name": "Lead", "attributes": [
      {"kind": "expertise", "value": "wireless networking", "topics": ["lte"], "disclosed": true}
    ]}
  ],
  "claims": [
    {"ID": "c1", "Text": "cooperative billing reduces churn", "Topics": ["billing"]}
  ],
  "field_sites": [
    {"ID": "valley", "MaxInsight": 50, "Tau": 10, "TravelDays": 1}
  ],
  "field_notes": [
    {"SiteID": "valley", "Day": 3, "Kind": 0, "Text": "tower install with volunteers"}
  ]
}`

func TestReadStudy(t *testing.T) {
	s, err := ReadStudy(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Title != "Rural LTE Study" {
		t.Errorf("title = %q", s.Title)
	}
	c := s.Check()
	if !c.PartnershipsDocumented || !c.ConversationsDocumented || !c.PositionalityProvided {
		t.Errorf("checklist = %+v", c)
	}
	// Publication phase is only "consulted" → not full participation.
	if c.ParticipationFull {
		t.Error("participation should not be full")
	}
	md := s.MethodsAppendix()
	if !strings.Contains(md, "county broadband task force") {
		t.Error("appendix missing partnership")
	}
	if len(s.Field.Notes("")) != 1 {
		t.Error("field notes not loaded")
	}
}

func TestReadStudyRejectsBadEnums(t *testing.T) {
	bad := []string{
		`{"title": "x", "stakeholders": [{"id": "a"}], "engagements": [{"stakeholder": "a", "phase": "nope", "level": "informed"}]}`,
		`{"title": "x", "stakeholders": [{"id": "a"}], "engagements": [{"stakeholder": "a", "phase": "evaluation", "level": "nope"}]}`,
		`{"title": "x", "researchers": [{"name": "r", "attributes": [{"kind": "nope", "value": "v"}]}]}`,
		`{"stakeholders": []}`,
		`not json`,
	}
	for i, src := range bad {
		if _, err := ReadStudy(strings.NewReader(src)); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestStudySpecRoundTrip(t *testing.T) {
	s1, err := ReadStudy(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.WriteStudy(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadStudy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s1.MethodsAppendix() != s2.MethodsAppendix() {
		t.Error("round-tripped study renders a different appendix")
	}
	if s1.Check() != s2.Check() {
		t.Errorf("checklists differ: %+v vs %+v", s1.Check(), s2.Check())
	}
}
