package core

import (
	"strings"
	"testing"

	"repro/internal/ethno"
	"repro/internal/par"
	"repro/internal/positionality"
	"repro/internal/qualcode"
	"repro/internal/rng"
)

func fullStudy(t *testing.T) *Study {
	t.Helper()
	s := NewStudy("Community LTE Deployment")
	if err := s.PAR.AddStakeholder(par.Stakeholder{
		ID: "scn", Name: "Seattle Community Network", Marginal: true, ConsentRecorded: true,
	}); err != nil {
		t.Fatal(err)
	}
	for _, ph := range par.Phases() {
		if err := s.PAR.Engage(par.Engagement{StakeholderID: "scn", Phase: ph, Level: par.Collaborating}); err != nil {
			t.Fatal(err)
		}
		s.PAR.Reflect(ph, "researcher holds both network-lead and research-lead roles")
	}
	if err := s.AddPartnership(Partnership{
		Partner:    "Seattle Community Network",
		Formed:     "introduced through the municipal digital-equity coalition",
		Influenced: []par.Phase{par.ProblemFormation, par.Evaluation},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddConversation(Conversation{
		With:           "volunteer operator",
		Context:        "site visit",
		Summary:        "billing confusion drives churn more than coverage gaps",
		Day:            12,
		Quotes:         []string{"people leave because the top-up flow is confusing"},
		ConsentToQuote: true,
		OpenQuestions:  []string{"does confusion correlate with language?"},
	}); err != nil {
		t.Fatal(err)
	}
	s.Researchers = []positionality.Researcher{{
		Name: "Lead",
		Attributes: []positionality.Attribute{
			{Kind: positionality.Expertise, Value: "network engineer", Topics: []string{"lte"}, Disclosed: true},
			{Kind: positionality.Belief, Value: "community ownership matters", Topics: []string{"governance"}, Disclosed: true},
		},
	}}
	s.Claims = []positionality.Claim{
		{ID: "c1", Text: "community governance improves sustainability", Topics: []string{"governance"}},
	}
	if err := s.Field.AddSite(ethno.Site{ID: "village", MaxInsight: 10, Tau: 5, TravelDays: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Field.Record(ethno.FieldNote{SiteID: "village", Day: 11, Kind: ethno.Observation, Text: "storm took down the relay"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddValidation(t *testing.T) {
	s := NewStudy("x")
	if err := s.AddPartnership(Partnership{Partner: "p"}); err == nil {
		t.Error("partnership without formation story accepted")
	}
	if err := s.AddConversation(Conversation{With: "y"}); err == nil {
		t.Error("conversation without summary accepted")
	}
}

func TestChecklistFullStudyPasses(t *testing.T) {
	s := fullStudy(t)
	c := s.Check()
	if c.Score() != 5 {
		t.Errorf("score = %d, checklist = %+v", c.Score(), c)
	}
	if c.PositionalityGaps != 0 {
		t.Errorf("gaps = %d", c.PositionalityGaps)
	}
}

func TestChecklistDetectsGaps(t *testing.T) {
	s := fullStudy(t)
	// Hide the relevant belief.
	s.Researchers[0].Attributes[1].Disclosed = false
	c := s.Check()
	if c.PositionalityGaps != 1 {
		t.Errorf("gaps = %d, want 1", c.PositionalityGaps)
	}
	// Remove engagement in one phase.
	s2 := NewStudy("partial")
	_ = s2.PAR.AddStakeholder(par.Stakeholder{ID: "p"})
	_ = s2.PAR.Engage(par.Engagement{StakeholderID: "p", Phase: par.ProblemFormation, Level: par.Collaborating})
	if s2.Check().ParticipationFull {
		t.Error("partial participation reported as full")
	}
}

func TestChecklistEmptyStudy(t *testing.T) {
	s := NewStudy("empty")
	c := s.Check()
	if c.PartnershipsDocumented || c.ConversationsDocumented || c.PositionalityProvided {
		t.Errorf("empty study checklist = %+v", c)
	}
	// Empty PAR: coverage 0, but audit also empty (no phases active, no
	// stakeholders) — EthicsClean may hold; participation must not.
	if c.ParticipationFull {
		t.Error("empty study reported full participation")
	}
}

func TestMethodsAppendixContent(t *testing.T) {
	s := fullStudy(t)
	md := s.MethodsAppendix()
	for _, want := range []string{
		"# Methods Appendix: Community LTE Deployment",
		"## Partnerships",
		"municipal digital-equity coalition",
		"Influenced: evaluation, problem-formation",
		"## Formative conversations",
		"top-up flow is confusing",
		"Open question: does confusion correlate with language?",
		"## Positionality",
		"network engineer",
		"## Participation matrix",
		"Coverage score: 1.00",
		"| problem-formation | scn | collaborating |",
		"## Ethics & participation audit",
		"No findings.",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("appendix missing %q", want)
		}
	}
}

func TestMethodsAppendixWithholdsQuotesWithoutConsent(t *testing.T) {
	s := fullStudy(t)
	s.Conversations[0].ConsentToQuote = false
	md := s.MethodsAppendix()
	if strings.Contains(md, "top-up flow is confusing") {
		t.Error("quote leaked without consent")
	}
	if !strings.Contains(md, "Direct quotes withheld") {
		t.Error("missing withholding notice")
	}
}

func TestMethodsAppendixDeterministic(t *testing.T) {
	s := fullStudy(t)
	if s.MethodsAppendix() != s.MethodsAppendix() {
		t.Error("appendix not deterministic")
	}
}

func TestMethodsAppendixEmptySections(t *testing.T) {
	s := NewStudy("bare")
	md := s.MethodsAppendix()
	for _, want := range []string{"No partnerships documented", "No conversations documented", "No positionality statements"} {
		if !strings.Contains(md, want) {
			t.Errorf("bare appendix missing %q", want)
		}
	}
}

func TestMethodsAppendixSurfacesAuditFindings(t *testing.T) {
	s := NewStudy("audited")
	_ = s.PAR.AddStakeholder(par.Stakeholder{ID: "m", Marginal: true})
	_ = s.PAR.Engage(par.Engagement{StakeholderID: "m", Phase: par.ProblemFormation, Level: par.Collaborating})
	md := s.MethodsAppendix()
	if !strings.Contains(md, "without recorded consent") {
		t.Error("audit finding missing from appendix")
	}
}

func TestTriangulationReport(t *testing.T) {
	s := fullStudy(t)
	report := s.TriangulationReport([]ethno.Anomaly{
		{Day: 10, Label: "throughput collapse"},
		{Day: 40, Label: "latency shift"},
	}, 2)
	if !strings.Contains(report, "1/2 anomalies explained") {
		t.Errorf("report = %s", report)
	}
	if !strings.Contains(report, "storm took down the relay") {
		t.Error("matched note missing")
	}
	if !strings.Contains(report, "unexplained") {
		t.Error("unexplained anomaly missing")
	}
}

func TestMethodsAppendixIncludesCodedCorpus(t *testing.T) {
	s := fullStudy(t)
	cfg := qualcode.SynthConfig{Docs: 3, SegsPerDoc: 6}
	project, truth, err := qualcode.GenerateCorpus(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"c1", "c2"} {
		sc := qualcode.SimulatedCoder{Name: name, Accuracy: 0.85}
		if err := sc.CodeProject(project, truth, cfg, rng.New(4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Coding = project
	md := s.MethodsAppendix()
	for _, want := range []string{"## Coded corpus", "Krippendorff alpha", "Mean pairwise Cohen kappa", "| Code | Applications |"} {
		if !strings.Contains(md, want) {
			t.Errorf("appendix missing %q", want)
		}
	}
	// Without coders, the section is omitted.
	s.Coding = qualcode.NewProject(qualcode.NewCodebook())
	if strings.Contains(s.MethodsAppendix(), "## Coded corpus") {
		t.Error("empty coding project should not produce a section")
	}
}
