package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ethno"
	"repro/internal/par"
	"repro/internal/positionality"
)

// StudySpec is the on-disk description of a study that cmd/methodsaudit
// consumes: everything needed to compile a methods appendix and run the
// recommendations checklist.
type StudySpec struct {
	Title        string            `json:"title"`
	Stakeholders []StakeholderSpec `json:"stakeholders"`
	Engagements  []EngagementSpec  `json:"engagements"`
	Reflections  []ReflectionSpec  `json:"reflections,omitempty"`

	Partnerships  []PartnershipSpec     `json:"partnerships"`
	Conversations []Conversation        `json:"conversations"`
	Researchers   []ResearcherSpec      `json:"researchers"`
	Claims        []positionality.Claim `json:"claims,omitempty"`

	FieldSites []ethno.Site      `json:"field_sites,omitempty"`
	FieldNotes []ethno.FieldNote `json:"field_notes,omitempty"`
}

// StakeholderSpec mirrors par.Stakeholder for JSON.
type StakeholderSpec struct {
	ID              string `json:"id"`
	Name            string `json:"name"`
	Role            string `json:"role,omitempty"`
	Marginal        bool   `json:"marginal,omitempty"`
	ConsentRecorded bool   `json:"consent_recorded,omitempty"`
}

// EngagementSpec names phases and levels by string for readable JSON.
type EngagementSpec struct {
	StakeholderID string `json:"stakeholder"`
	Phase         string `json:"phase"`
	Level         string `json:"level"`
	Notes         string `json:"notes,omitempty"`
}

// ReflectionSpec is one recorded reflection.
type ReflectionSpec struct {
	Phase string `json:"phase"`
	Note  string `json:"note"`
}

// PartnershipSpec mirrors Partnership with string phases.
type PartnershipSpec struct {
	Partner    string   `json:"partner"`
	Formed     string   `json:"formed"`
	Influenced []string `json:"influenced,omitempty"`
}

// ResearcherSpec mirrors positionality.Researcher with string kinds.
type ResearcherSpec struct {
	Name       string          `json:"name"`
	Attributes []AttributeSpec `json:"attributes"`
}

// AttributeSpec is one positionality attribute in JSON form.
type AttributeSpec struct {
	Kind      string   `json:"kind"`
	Value     string   `json:"value"`
	Topics    []string `json:"topics,omitempty"`
	Disclosed bool     `json:"disclosed"`
}

// parsePhase maps a phase name to its value.
func parsePhase(s string) (par.Phase, error) {
	for _, ph := range par.Phases() {
		if ph.String() == s {
			return ph, nil
		}
	}
	return 0, fmt.Errorf("core: unknown phase %q", s)
}

// parseLevel maps a level name to its value.
func parseLevel(s string) (par.Level, error) {
	for _, l := range []par.Level{par.NotInvolved, par.Informed, par.Consulted, par.Collaborating, par.CommunityLed} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown level %q", s)
}

// parseKind maps an attribute-kind name to its value.
func parseKind(s string) (positionality.AttrKind, error) {
	for _, k := range []positionality.AttrKind{
		positionality.Location, positionality.Affiliation, positionality.Belief,
		positionality.Membership, positionality.Expertise,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown attribute kind %q", s)
}

// BuildStudy materializes a StudySpec into a Study, validating every
// reference and enum.
func BuildStudy(spec StudySpec) (*Study, error) {
	if spec.Title == "" {
		return nil, fmt.Errorf("core: study needs a title")
	}
	s := NewStudy(spec.Title)
	for _, st := range spec.Stakeholders {
		if err := s.PAR.AddStakeholder(par.Stakeholder{
			ID: st.ID, Name: st.Name, Role: st.Role,
			Marginal: st.Marginal, ConsentRecorded: st.ConsentRecorded,
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range spec.Engagements {
		ph, err := parsePhase(e.Phase)
		if err != nil {
			return nil, err
		}
		lvl, err := parseLevel(e.Level)
		if err != nil {
			return nil, err
		}
		if err := s.PAR.Engage(par.Engagement{
			StakeholderID: e.StakeholderID, Phase: ph, Level: lvl, Notes: e.Notes,
		}); err != nil {
			return nil, err
		}
	}
	for _, rf := range spec.Reflections {
		ph, err := parsePhase(rf.Phase)
		if err != nil {
			return nil, err
		}
		s.PAR.Reflect(ph, rf.Note)
	}
	for _, p := range spec.Partnerships {
		var phases []par.Phase
		for _, name := range p.Influenced {
			ph, err := parsePhase(name)
			if err != nil {
				return nil, err
			}
			phases = append(phases, ph)
		}
		if err := s.AddPartnership(Partnership{Partner: p.Partner, Formed: p.Formed, Influenced: phases}); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Conversations {
		if err := s.AddConversation(c); err != nil {
			return nil, err
		}
	}
	for _, r := range spec.Researchers {
		res := positionality.Researcher{Name: r.Name}
		for _, a := range r.Attributes {
			kind, err := parseKind(a.Kind)
			if err != nil {
				return nil, err
			}
			res.Attributes = append(res.Attributes, positionality.Attribute{
				Kind: kind, Value: a.Value, Topics: a.Topics, Disclosed: a.Disclosed,
			})
		}
		s.Researchers = append(s.Researchers, res)
	}
	s.Claims = spec.Claims
	for _, site := range spec.FieldSites {
		if err := s.Field.AddSite(site); err != nil {
			return nil, err
		}
	}
	for _, n := range spec.FieldNotes {
		if err := s.Field.Record(n); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReadStudy parses and builds a study from JSON.
func ReadStudy(r io.Reader) (*Study, error) {
	var spec StudySpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decode study: %w", err)
	}
	return BuildStudy(spec)
}

// ExportSpec converts a Study back to its JSON-serializable spec, the
// inverse of BuildStudy (field notes and sites included; the coding project
// has its own interchange format in qualcode).
func (s *Study) ExportSpec() StudySpec {
	spec := StudySpec{Title: s.Title, Claims: s.Claims, Conversations: s.Conversations}
	if s.PAR != nil {
		for _, id := range s.PAR.StakeholderIDs() {
			st, _ := s.PAR.Stakeholder(id)
			spec.Stakeholders = append(spec.Stakeholders, StakeholderSpec{
				ID: st.ID, Name: st.Name, Role: st.Role,
				Marginal: st.Marginal, ConsentRecorded: st.ConsentRecorded,
			})
		}
		for _, e := range s.PAR.Engagements() {
			spec.Engagements = append(spec.Engagements, EngagementSpec{
				StakeholderID: e.StakeholderID,
				Phase:         e.Phase.String(),
				Level:         e.Level.String(),
				Notes:         e.Notes,
			})
		}
		for _, ph := range par.Phases() {
			for _, note := range s.PAR.Reflections(ph) {
				spec.Reflections = append(spec.Reflections, ReflectionSpec{Phase: ph.String(), Note: note})
			}
		}
	}
	for _, p := range s.Partnerships {
		ps := PartnershipSpec{Partner: p.Partner, Formed: p.Formed}
		for _, ph := range p.Influenced {
			ps.Influenced = append(ps.Influenced, ph.String())
		}
		spec.Partnerships = append(spec.Partnerships, ps)
	}
	for _, r := range s.Researchers {
		rs := ResearcherSpec{Name: r.Name}
		for _, a := range r.Attributes {
			rs.Attributes = append(rs.Attributes, AttributeSpec{
				Kind: a.Kind.String(), Value: a.Value, Topics: a.Topics, Disclosed: a.Disclosed,
			})
		}
		spec.Researchers = append(spec.Researchers, rs)
	}
	if s.Field != nil {
		for _, id := range s.Field.SiteIDs() {
			site, _ := s.Field.Site(id)
			spec.FieldSites = append(spec.FieldSites, site)
		}
		spec.FieldNotes = s.Field.Notes("")
	}
	return spec
}

// WriteStudy writes the study spec as indented JSON.
func (s *Study) WriteStudy(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.ExportSpec())
}
