package serve

import (
	"sync/atomic"
	"time"
)

// latencyBucketsUS are the upper bounds (microseconds) of the /run latency
// histogram; the final implicit bucket is +Inf. Log-spaced so one table
// spans LRU hits (tens of µs) through cold scenario executions (seconds).
var latencyBucketsUS = [...]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// metrics is the server's counter set. Everything is atomic: handlers touch
// it concurrently and /metrics reads it without stopping the world.
type metrics struct {
	requests  atomic.Int64 // every HTTP request, any endpoint
	runOK     atomic.Int64 // /run 200s
	lruHits   atomic.Int64 // /run responses served from the in-memory LRU
	bad       atomic.Int64 // /run 400s (malformed id/seed/params)
	notFound  atomic.Int64 // /run 404s (unknown scenario)
	shedQueue atomic.Int64 // /run 429s (admission queue full)
	shedWait  atomic.Int64 // /run 503s (queue deadline expired)
	failed    atomic.Int64 // /run 500s (scenario or render failure)

	latency [len(latencyBucketsUS) + 1]atomic.Int64
	latSum  atomic.Int64 // total observed latency, microseconds
}

// observe records one /run latency in the histogram.
func (m *metrics) observe(d time.Duration) {
	us := d.Microseconds()
	m.latSum.Add(us)
	for i, ub := range latencyBucketsUS {
		if us <= ub {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBucketsUS)].Add(1)
}

// LatencyBucket is one histogram row in the /metrics response.
type LatencyBucket struct {
	// LEUS is the bucket's inclusive upper bound in microseconds; 0 marks
	// the +Inf overflow bucket.
	LEUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// Snapshot is the /metrics response body: request counters, cache-tier hit
// counts with ratios, and the /run latency histogram. Field order is the
// serialization order, so equal states render to equal bytes.
type Snapshot struct {
	Requests int64 `json:"requests"`
	RunOK    int64 `json:"run_ok"`

	// Cache tiers, outermost first: an LRU hit never reaches the disk
	// cache, a disk hit never executes, and Coalesced callers shared
	// another request's in-flight execution. Executed counts actual
	// scenario runs — the number the "zero re-execution" acceptance check
	// reads.
	LRUHits   int64 `json:"lru_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Coalesced int64 `json:"coalesced"`
	Executed  int64 `json:"executed"`

	LRUHitRatio  float64 `json:"lru_hit_ratio"`
	DiskHitRatio float64 `json:"disk_hit_ratio"`
	ExecRatio    float64 `json:"exec_ratio"`

	BadRequest  int64           `json:"bad_request"`
	NotFound    int64           `json:"not_found"`
	ShedQueue   int64           `json:"shed_queue_full"`
	ShedWait    int64           `json:"shed_wait_timeout"`
	Failed      int64           `json:"failed"`
	LRUSize     int             `json:"lru_size"`
	LRUBytes    int64           `json:"lru_bytes"`
	LatSumUS    int64           `json:"latency_sum_us"`
	LatencyHist []LatencyBucket `json:"latency_hist"`
}

// ratio is a safe division for hit-rate reporting.
func ratio(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
