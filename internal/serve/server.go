// Package serve turns the experiment registry and its hardened
// content-addressed cache into an HTTP scenario-serving daemon — the warm
// path behind cmd/humnetd. It layers, outermost first:
//
//   - a bounded in-memory LRU of rendered /run responses (lru.go), so the
//     popular head of a skewed workload never touches the disk cache;
//   - request coalescing via the experiment Runner's singleflight: all
//     concurrent requests for one cache key share a single scenario
//     execution;
//   - the disk cache: any (id, params, seed) triple executes at most once
//     per cache lifetime, however many requests ask for it;
//   - graceful shedding: a bounded admission queue with a per-request wait
//     deadline answers 429 (queue full) or 503 (wait timed out) with a
//     Retry-After hint instead of letting load collapse the process.
//
// Responses are pure functions of the request: equal (id, params, seed)
// yield byte-identical bodies across requests, cache tiers, and process
// restarts, which is what makes the service load-testable by digest
// (cmd/humnetload). The package takes its clock as a value (Config.Now)
// rather than reading time.Now, matching the repo-wide wildrand rule.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
)

// Config sizes one Server. The zero value of each knob picks a sensible
// production default; tests override them to force shedding and eviction.
type Config struct {
	// Registry resolves scenario IDs; nil means experiment.Default.
	Registry *experiment.Registry
	// Cache is the content-addressed disk cache; nil serves from memory
	// only (LRU + coalescing still apply).
	Cache *experiment.Cache
	// LRUSize bounds the in-memory response cache (entries); <= 0 disables
	// it.
	LRUSize int
	// LRUBytes bounds the LRU's resident response bytes; time-series
	// responses dwarf scalar ones, so the entry bound alone does not cap the
	// footprint. A body larger than the whole budget is served but never
	// cached. <= 0 means no byte bound.
	LRUBytes int64
	// MaxInFlight bounds concurrently-executing /run requests; <= 0 means
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; once the
	// queue is full further requests are answered 429 immediately. < 0
	// means no queueing at all.
	MaxQueue int
	// QueueTimeout is how long a queued request waits for a slot before
	// being answered 503; <= 0 means 2s.
	QueueTimeout time.Duration
	// RetryAfter is the hint stamped on 429/503 responses; <= 0 means 1s.
	RetryAfter time.Duration
	// ScenarioWorkers is the per-scenario sweep parallelism hint; output is
	// bit-identical for any value.
	ScenarioWorkers int
	// Now supplies the wall clock for latency metrics. cmd/humnetd passes
	// time.Now; nil records every latency as zero (the histogram still
	// counts requests).
	Now func() time.Time
}

// Server is the HTTP scenario-serving daemon state.
type Server struct {
	cfg    Config
	reg    *experiment.Registry
	runner *experiment.Runner
	now    func() time.Time

	mu  sync.Mutex
	lru *lru

	slots  chan struct{}
	queued atomic.Int64
	met    metrics
}

// New builds a Server from cfg, applying defaults for zero-valued knobs.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = experiment.Default
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	now := cfg.Now
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	return &Server{
		cfg: cfg,
		reg: reg,
		runner: &experiment.Runner{
			ScenarioWorkers: cfg.ScenarioWorkers,
			Cache:           cfg.Cache,
			Coalesce:        true,
		},
		now:   now,
		lru:   newLRU(cfg.LRUSize, cfg.LRUBytes),
		slots: make(chan struct{}, cfg.MaxInFlight),
	}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /run", s.handleRun)
	mux.HandleFunc("GET /list", s.handleList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is the JSON shape of every non-200 response.
func errorBody(msg string) []byte {
	data, err := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	if err != nil {
		return []byte(`{"error":"internal"}`)
	}
	return append(data, '\n')
}

// writeJSON writes one response; a failed write means the client is gone,
// which is not the server's error to handle.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// parseRun resolves a /run query into (scenario, param overrides, seed).
// A non-zero status reports the client error to answer with.
func (s *Server) parseRun(q url.Values) (sc experiment.Scenario, over experiment.Values, seed uint64, status int, msg string) {
	id := q.Get("id")
	if id == "" {
		return nil, nil, 0, http.StatusBadRequest, "missing required query param id"
	}
	sc, ok := s.reg.Get(id)
	if !ok {
		return nil, nil, 0, http.StatusNotFound, fmt.Sprintf("unknown scenario %q (see /list)", id)
	}
	seed = sc.DefaultSeed()
	if raw := q.Get("seed"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return nil, nil, 0, http.StatusBadRequest, fmt.Sprintf("bad seed %q: %v", raw, err)
		}
		seed = v
	}
	schema := sc.Params()
	over = make(experiment.Values)
	names := make([]string, 0, len(q))
	for name := range q {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == "id" || name == "seed" {
			continue
		}
		vals := q[name]
		if len(vals) != 1 {
			return nil, nil, 0, http.StatusBadRequest, fmt.Sprintf("param %q given %d times, want exactly one value", name, len(vals))
		}
		spec, ok := schema.Lookup(name)
		if !ok {
			return nil, nil, 0, http.StatusBadRequest, fmt.Sprintf("scenario %s has no param %q (see /list)", sc.ID(), name)
		}
		v, err := spec.Parse(vals[0])
		if err != nil {
			return nil, nil, 0, http.StatusBadRequest, err.Error()
		}
		over[name] = v
	}
	return sc, over, seed, 0, ""
}

// acquire admits one /run request into the bounded execution stage. It
// returns a release func on success, or the shed status (429 when the queue
// is full, 503 when the slot wait timed out or the client gave up).
func (s *Server) acquire(r *http.Request) (func(), int) {
	release := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, 0
	default:
	}
	if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return release, 0
	case <-timer.C:
		return nil, http.StatusServiceUnavailable
	case <-r.Context().Done():
		return nil, http.StatusServiceUnavailable
	}
}

// shed answers a 429/503 with the configured Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		s.met.shedQueue.Add(1)
	} else {
		s.met.shedWait.Add(1)
	}
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, errorBody(http.StatusText(status)+"; retry later"))
}

// handleRun serves one scenario execution: LRU, then admission, then the
// coalescing runner over the disk cache, executing only on a full miss.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	s.met.requests.Add(1)

	sc, over, seed, status, msg := s.parseRun(r.URL.Query())
	if status != 0 {
		if status == http.StatusNotFound {
			s.met.notFound.Add(1)
		} else {
			s.met.bad.Add(1)
		}
		writeJSON(w, status, errorBody(msg))
		return
	}
	merged, err := sc.Params().Merge(over)
	if err != nil {
		s.met.bad.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	key := experiment.CacheKey(sc.ID(), merged, seed)

	s.mu.Lock()
	entry, ok := s.lru.get(key)
	s.mu.Unlock()
	if ok {
		s.met.lruHits.Add(1)
		s.finishRun(w, start, entry.body)
		return
	}

	release, shedStatus := s.acquire(r)
	if shedStatus != 0 {
		s.shed(w, shedStatus)
		return
	}
	defer release()

	res, err := s.runner.RunOne(r.Context(), experiment.Job{Scenario: sc, Params: over, Seed: seed})
	if err != nil {
		s.met.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody(err.Error()))
		return
	}
	body, err := experiment.RenderOneJSON(res)
	if err != nil {
		s.met.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody(err.Error()))
		return
	}
	s.mu.Lock()
	s.lru.add(key, body)
	s.mu.Unlock()
	s.finishRun(w, start, body)
}

// finishRun stamps success metrics and writes the response body.
func (s *Server) finishRun(w http.ResponseWriter, start time.Time, body []byte) {
	s.met.runOK.Add(1)
	s.met.observe(s.now().Sub(start))
	writeJSON(w, http.StatusOK, body)
}

// ListParam is one schema entry in the /list response.
type ListParam struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Default string `json:"default"`
	Doc     string `json:"doc,omitempty"`
}

// ListScenario is one registry entry in the /list response.
type ListScenario struct {
	ID          string      `json:"id"`
	Title       string      `json:"title"`
	Claim       string      `json:"claim,omitempty"`
	DefaultSeed uint64      `json:"default_seed"`
	Aux         bool        `json:"aux,omitempty"`
	Params      []ListParam `json:"params"`
}

// handleList serves the full registry in registry order — the machine-
// readable version of reportgen -list.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.met.requests.Add(1)
	all := s.reg.All()
	out := make([]ListScenario, len(all))
	for i, sc := range all {
		schema := sc.Params()
		params := make([]ListParam, len(schema))
		for pi, spec := range schema {
			params[pi] = ListParam{
				Name:    spec.Name,
				Kind:    spec.Kind.String(),
				Default: experiment.FormatValue(spec.Default),
				Doc:     spec.Doc,
			}
		}
		out[i] = ListScenario{
			ID:          sc.ID(),
			Title:       sc.Title(),
			Claim:       sc.Claim(),
			DefaultSeed: sc.DefaultSeed(),
			Aux:         s.reg.IsAux(sc.ID()),
			Params:      params,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody(err.Error()))
		return
	}
	writeJSON(w, http.StatusOK, append(data, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.met.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// Metrics returns the current counter snapshot; /metrics renders it as JSON.
func (s *Server) Metrics() Snapshot {
	st := s.runner.Stats()
	s.mu.Lock()
	lruLen, lruBytes := s.lru.len(), s.lru.size()
	s.mu.Unlock()

	snap := Snapshot{
		Requests:  s.met.requests.Load(),
		RunOK:     s.met.runOK.Load(),
		LRUHits:   s.met.lruHits.Load(),
		DiskHits:  st.Hits,
		Coalesced: st.Shared,
		Executed:  st.Misses,

		BadRequest: s.met.bad.Load(),
		NotFound:   s.met.notFound.Load(),
		ShedQueue:  s.met.shedQueue.Load(),
		ShedWait:   s.met.shedWait.Load(),
		Failed:     s.met.failed.Load(),
		LRUSize:    lruLen,
		LRUBytes:   lruBytes,
		LatSumUS:   s.met.latSum.Load(),
	}
	snap.LRUHitRatio = ratio(snap.LRUHits, snap.RunOK)
	snap.DiskHitRatio = ratio(snap.DiskHits, snap.RunOK)
	snap.ExecRatio = ratio(snap.Executed, snap.RunOK)
	snap.LatencyHist = make([]LatencyBucket, 0, len(latencyBucketsUS)+1)
	for i, ub := range latencyBucketsUS {
		snap.LatencyHist = append(snap.LatencyHist, LatencyBucket{LEUS: ub, Count: s.met.latency[i].Load()})
	}
	snap.LatencyHist = append(snap.LatencyHist, LatencyBucket{LEUS: 0, Count: s.met.latency[len(latencyBucketsUS)].Load()})
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.met.requests.Add(1)
	data, err := json.MarshalIndent(s.Metrics(), "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody(err.Error()))
		return
	}
	writeJSON(w, http.StatusOK, append(data, '\n'))
}
