package serve

import "container/list"

// lruEntry is one cached response: the decoded Result's rendered body plus
// the cache key it lives under. The body is what /run writes, so an LRU hit
// skips param re-merging, disk I/O, and JSON re-rendering entirely.
type lruEntry struct {
	key  string
	body []byte
}

// lru is a bounded most-recently-used response cache in front of the disk
// cache. It is not safe for concurrent use; the Server guards it with its
// own mutex so lookup+insert pairs stay atomic.
type lru struct {
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

// newLRU returns a cache bounded to capacity entries; capacity <= 0 means
// the cache is disabled (every get misses, every add is dropped).
func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the entry under key, promoting it to most-recently-used.
func (l *lru) get(key string) (*lruEntry, bool) {
	el, ok := l.m[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry), true
}

// add inserts or refreshes key's entry, evicting the least-recently-used
// entry when the cache is over capacity.
func (l *lru) add(key string, body []byte) {
	if l.cap <= 0 {
		return
	}
	if el, ok := l.m[key]; ok {
		el.Value.(*lruEntry).body = body
		l.ll.MoveToFront(el)
		return
	}
	l.m[key] = l.ll.PushFront(&lruEntry{key: key, body: body})
	for l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.m, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (l *lru) len() int { return l.ll.Len() }
