package serve

import "container/list"

// lruEntry is one cached response: the decoded Result's rendered body plus
// the cache key it lives under. The body is what /run writes, so an LRU hit
// skips param re-merging, disk I/O, and JSON re-rendering entirely.
type lruEntry struct {
	key  string
	body []byte
}

// lru is a bounded most-recently-used response cache in front of the disk
// cache, limited both by entry count and by resident body bytes — time-series
// responses (E17–E19 and larger temporal replays) are orders of magnitude
// bigger than scalar-table ones, so counting entries alone would let a few
// temporal responses balloon the cache far past its intended footprint. It is
// not safe for concurrent use; the Server guards it with its own mutex so
// lookup+insert pairs stay atomic.
type lru struct {
	cap      int
	maxBytes int64
	bytes    int64
	ll       *list.List
	m        map[string]*list.Element
}

// newLRU returns a cache bounded to capacity entries and maxBytes total body
// bytes; capacity <= 0 disables the cache (every get misses, every add is
// dropped) and maxBytes <= 0 means no byte bound.
func newLRU(capacity int, maxBytes int64) *lru {
	return &lru{cap: capacity, maxBytes: maxBytes, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the entry under key, promoting it to most-recently-used.
func (l *lru) get(key string) (*lruEntry, bool) {
	el, ok := l.m[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry), true
}

// add inserts or refreshes key's entry, evicting least-recently-used entries
// while the cache is over its entry or byte bound. A body larger than the
// whole byte budget is never cached — admitting it would flush everything
// else and then still leave the cache over budget.
func (l *lru) add(key string, body []byte) {
	if l.cap <= 0 {
		return
	}
	if l.maxBytes > 0 && int64(len(body)) > l.maxBytes {
		return
	}
	if el, ok := l.m[key]; ok {
		e := el.Value.(*lruEntry)
		l.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		l.ll.MoveToFront(el)
	} else {
		l.m[key] = l.ll.PushFront(&lruEntry{key: key, body: body})
		l.bytes += int64(len(body))
	}
	for l.ll.Len() > l.cap || (l.maxBytes > 0 && l.bytes > l.maxBytes) {
		oldest := l.ll.Back()
		e := oldest.Value.(*lruEntry)
		l.ll.Remove(oldest)
		delete(l.m, e.key)
		l.bytes -= int64(len(e.body))
	}
}

// len reports the current entry count.
func (l *lru) len() int { return l.ll.Len() }

// size reports the resident body bytes.
func (l *lru) size() int64 { return l.bytes }
