package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/rng"
)

// testDef is a cheap deterministic scenario for server tests; its table is a
// pure function of (params, seed).
func testDef(id string) experiment.Def {
	return experiment.Def{
		ID:    id,
		Title: "synthetic " + id,
		Claim: "serve test scenario",
		Seed:  7,
		Params: experiment.Schema{
			{Name: "rows", Kind: experiment.Int, Default: 3, Doc: "table rows"},
			{Name: "label", Kind: experiment.String, Default: "x", Doc: "row label"},
		},
		Run: func(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
			res := &experiment.Result{}
			tb := res.AddTable(id, "synthetic", "label", "value")
			r := rng.New(seed)
			for i := 0; i < p.Int("rows"); i++ {
				tb.AddRow(experiment.S(fmt.Sprintf("%s%d", p.String("label"), i)), experiment.F3(r.Float64()))
			}
			return res, nil
		},
	}
}

// newTestServer builds a Server over a fresh registry holding T1 and T2,
// with any config overrides applied by mod.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg := experiment.NewRegistry()
	for _, id := range []string{"T1", "T2"} {
		if err := reg.Register(testDef(id)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: reg, Cache: cache, LRUSize: 64}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// get fetches path and returns (status, body).
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestRunServesDeterministicBodyAcrossTiers(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	status, first := get(t, ts, "/run?id=T1&seed=9&rows=4")
	if status != http.StatusOK {
		t.Fatalf("first /run status = %d, body %s", status, first)
	}
	// Same triple in a different query spelling: LRU hit, identical body.
	status, second := get(t, ts, "/run?rows=4&seed=9&id=T1&label=x")
	if status != http.StatusOK || string(second) != string(first) {
		t.Fatalf("re-request differs: status %d\nfirst:  %s\nsecond: %s", status, first, second)
	}
	m := srv.Metrics()
	if m.Executed != 1 || m.LRUHits != 1 {
		t.Fatalf("metrics = %+v, want 1 executed / 1 LRU hit", m)
	}

	// Fresh server over the same disk cache: disk hit, identical body.
	srv2 := New(Config{Registry: srv.reg, Cache: srv.cfg.Cache, LRUSize: 64})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	status, third := get(t, ts2, "/run?id=T1&seed=9&rows=4")
	if status != http.StatusOK || string(third) != string(first) {
		t.Fatalf("disk-cache body differs: status %d body %s", status, third)
	}
	if m := srv2.Metrics(); m.DiskHits != 1 || m.Executed != 0 {
		t.Fatalf("fresh-server metrics = %+v, want a pure disk hit", m)
	}

	// The body decodes as a single result object with the right identity.
	var decoded struct {
		ID   string `json:"id"`
		Seed uint64 `json:"seed"`
	}
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("response is not a JSON object: %v\n%s", err, first)
	}
	if decoded.ID != "T1" || decoded.Seed != 9 {
		t.Fatalf("response identity = %+v, want T1 seed 9", decoded)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	cases := []struct {
		path string
		want int
	}{
		{"/run", http.StatusBadRequest},                                 // no id
		{"/run?id=NOPE", http.StatusNotFound},                           // unknown scenario
		{"/run?id=T1&seed=abc", http.StatusBadRequest},                  // bad seed
		{"/run?id=T1&rows=many", http.StatusBadRequest},                 // mistyped param
		{"/run?id=T1&bogus=1", http.StatusBadRequest},                   // unknown param
		{"/run?id=T1&rows=1&rows=2", http.StatusBadRequest},             // repeated param
		{"/run?id=T1&seed=18446744073709551616", http.StatusBadRequest}, // uint64 overflow
	}
	for _, c := range cases {
		status, body := get(t, ts, c.path)
		if status != c.want {
			t.Errorf("GET %s = %d, want %d (body %s)", c.path, status, c.want, body)
		}
	}
	m := srv.Metrics()
	if m.NotFound != 1 || m.BadRequest != 6 {
		t.Fatalf("metrics = %+v, want 1 not-found / 6 bad-request", m)
	}
	if m.Executed != 0 {
		t.Fatal("a rejected request executed a scenario")
	}
}

func TestListHealthzMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)

	status, body := get(t, ts, "/list")
	if status != http.StatusOK {
		t.Fatalf("/list status = %d", status)
	}
	var scenarios []ListScenario
	if err := json.Unmarshal(body, &scenarios); err != nil {
		t.Fatalf("/list is not JSON: %v", err)
	}
	if len(scenarios) != 2 || scenarios[0].ID != "T1" || scenarios[1].ID != "T2" {
		t.Fatalf("/list = %+v, want T1,T2 in registry order", scenarios)
	}
	if len(scenarios[0].Params) != 2 || scenarios[0].Params[0].Name != "rows" {
		t.Fatalf("/list params = %+v, want schema order", scenarios[0].Params)
	}

	status, body = get(t, ts, "/healthz")
	if status != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", status, body)
	}

	status, body = get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Requests < 3 {
		t.Fatalf("metrics snapshot = %+v, want >= 3 requests counted", snap)
	}
	if len(snap.LatencyHist) != len(latencyBucketsUS)+1 {
		t.Fatalf("latency histogram has %d buckets, want %d", len(snap.LatencyHist), len(latencyBucketsUS)+1)
	}
}

// blockingDef returns a scenario that parks in Run until release closes,
// signalling each entry on entered.
func blockingDef(id string, entered chan<- struct{}, release <-chan struct{}) experiment.Def {
	d := testDef(id)
	inner := d.Run
	d.Run = func(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
		entered <- struct{}{}
		<-release
		return inner(ctx, p, seed)
	}
	return d
}

func TestRunCoalescesConcurrentIdenticalRequests(t *testing.T) {
	const followers = 6
	entered := make(chan struct{}, 1)
	release := make(chan struct{})

	reg := experiment.NewRegistry()
	var execs atomic.Int64
	d := blockingDef("T1", entered, release)
	inner := d.Run
	d.Run = func(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
		execs.Add(1)
		return inner(ctx, p, seed)
	}
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg, LRUSize: 8, MaxInFlight: followers + 1, MaxQueue: followers + 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][]byte, followers+1)
	statuses := make([]int, followers+1)
	var wg sync.WaitGroup
	fetch := func(i int) {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/run?id=T1")
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		statuses[i] = resp.StatusCode
		bodies[i], _ = io.ReadAll(resp.Body)
		_ = resp.Body.Close()
	}
	wg.Add(1)
	go fetch(0)
	<-entered // leader is inside Run

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go fetch(i)
	}
	// Followers park on the runner's flight; release once they are all
	// there. Bounded yield loop instead of a wall-clock deadline — the
	// wildrand rule keeps time.Now out of internal packages.
	for i := 0; srv.runner.Waiting() < followers; i++ {
		if i > 500_000_000 {
			t.Fatalf("only %d followers joined the flight", srv.runner.Waiting())
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d status = %d (%s)", i, st, bodies[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d body differs from leader", i)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("scenario executed %d times under %d concurrent identical requests, want 1", n, followers+1)
	}
	if m := srv.Metrics(); m.Executed != 1 || m.Coalesced != followers {
		t.Fatalf("metrics = %+v, want 1 executed / %d coalesced", m, followers)
	}
}

func TestRunShedsWhenSaturated(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	reg := experiment.NewRegistry()
	if err := reg.Register(blockingDef("T1", entered, release)); err != nil {
		t.Fatal(err)
	}
	// One slot, no queue: a second distinct request sheds 429 immediately.
	srv := New(Config{Registry: reg, LRUSize: 0, MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/run?id=T1&seed=1")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}()
	<-entered // occupant holds the only slot

	resp, err := http.Get(ts.URL + "/run?id=T1&seed=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}
	close(release)
	<-done
	if m := srv.Metrics(); m.ShedQueue != 1 {
		t.Fatalf("metrics = %+v, want 1 queue-full shed", m)
	}
}

func TestRunShedsOnQueueTimeout(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	reg := experiment.NewRegistry()
	if err := reg.Register(blockingDef("T1", entered, release)); err != nil {
		t.Fatal(err)
	}
	// One slot, one queue seat, tiny wait deadline: the queued request
	// times out with 503 while the occupant blocks.
	srv := New(Config{Registry: reg, LRUSize: 0, MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/run?id=T1&seed=1")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/run?id=T1&seed=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	<-done
	if m := srv.Metrics(); m.ShedWait != 1 {
		t.Fatalf("metrics = %+v, want 1 wait-timeout shed", m)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := newLRU(2, 0)
	l.add("a", []byte("A"))
	l.add("b", []byte("B"))
	if _, ok := l.get("a"); !ok {
		t.Fatal("a missing before capacity exceeded")
	}
	l.add("c", []byte("C")) // evicts b (a was just touched)
	if _, ok := l.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := l.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if _, ok := l.get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	if l.len() != 2 {
		t.Fatalf("len = %d, want 2", l.len())
	}

	disabled := newLRU(0, 0)
	disabled.add("a", []byte("A"))
	if _, ok := disabled.get("a"); ok || disabled.len() != 0 {
		t.Fatal("disabled LRU stored an entry")
	}
}

func TestLRUByteBound(t *testing.T) {
	l := newLRU(100, 10)
	l.add("a", []byte("aaaa")) // 4 bytes
	l.add("b", []byte("bbbb")) // 8 bytes total
	if l.len() != 2 || l.size() != 8 {
		t.Fatalf("len/size = %d/%d, want 2/8", l.len(), l.size())
	}

	// A third small body pushes the total past 10: the oldest entry goes,
	// even though the entry bound (100) is nowhere near exceeded.
	l.add("c", []byte("cccc"))
	if _, ok := l.get("a"); ok {
		t.Fatal("a survived a byte-bound eviction")
	}
	if l.len() != 2 || l.size() != 8 {
		t.Fatalf("after byte eviction len/size = %d/%d, want 2/8", l.len(), l.size())
	}

	// A body larger than the whole budget is never admitted — caching it
	// would flush every other entry and still leave the cache over budget.
	l.add("huge", []byte("0123456789ABCDEF"))
	if _, ok := l.get("huge"); ok {
		t.Fatal("over-budget body was cached")
	}
	if _, ok := l.get("b"); !ok {
		t.Fatal("resident entry flushed by a rejected over-budget body")
	}

	// Refreshing an entry with a bigger body re-accounts its bytes and
	// evicts colder entries as needed.
	l.get("c") // promote c; b is now coldest
	l.add("c", []byte("cccccccc"))
	if _, ok := l.get("b"); ok {
		t.Fatal("b survived a refresh that exceeded the byte budget")
	}
	if l.len() != 1 || l.size() != 8 {
		t.Fatalf("after refresh len/size = %d/%d, want 1/8", l.len(), l.size())
	}
}

// temporalDef mimics a timeline scenario: a multi-table time-series Result
// whose rendered body grows with the tick count — the response shape that
// made an entry-counted LRU balloon past its intended footprint.
func temporalDef(id string) experiment.Def {
	return experiment.Def{
		ID:    id,
		Title: "synthetic temporal " + id,
		Claim: "serve test time series",
		Seed:  7,
		Params: experiment.Schema{
			{Name: "ticks", Kind: experiment.Int, Default: 256, Doc: "time-series rows"},
		},
		Run: func(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
			res := &experiment.Result{}
			tb := res.AddTable(id, "per-tick series", "tick", "value", "share")
			r := rng.New(seed)
			for i := 0; i < p.Int("ticks"); i++ {
				tb.AddRow(experiment.I(i), experiment.F3(r.Float64()), experiment.F3(r.Float64()))
			}
			sum := res.AddTable(id+"-totals", "series totals", "ticks")
			sum.AddRow(experiment.I(p.Int("ticks")))
			return res, nil
		},
	}
}

func TestRunLargeTemporalResponseRespectsByteBudget(t *testing.T) {
	reg := experiment.NewRegistry()
	if err := reg.Register(temporalDef("TS")); err != nil {
		t.Fatal(err)
	}
	cache, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg, Cache: cache, LRUSize: 64, LRUBytes: 4 << 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The 256-tick response is far over the 4 KiB budget: it must be served
	// intact (twice, byte-identically via the disk cache) while the LRU stays
	// empty — before byte bounding, one of these pinned the whole cache.
	status, big := get(t, ts, "/run?id=TS&ticks=256")
	if status != http.StatusOK {
		t.Fatalf("large /run status = %d", status)
	}
	if len(big) <= 4<<10 {
		t.Fatalf("test response only %d bytes; grow ticks so it exceeds the budget", len(big))
	}
	status, again := get(t, ts, "/run?id=TS&ticks=256")
	if status != http.StatusOK || string(again) != string(big) {
		t.Fatalf("repeat of uncached response differs: status %d", status)
	}
	m := srv.Metrics()
	if m.LRUSize != 0 || m.LRUBytes != 0 {
		t.Fatalf("over-budget response entered the LRU: size %d, bytes %d", m.LRUSize, m.LRUBytes)
	}
	if m.LRUHits != 0 || m.DiskHits != 1 || m.Executed != 1 {
		t.Fatalf("metrics = %+v, want 0 LRU hits / 1 disk hit / 1 execution", m)
	}

	// A short series fits: it is cached, counted in lru_bytes, and the next
	// request is a pure LRU hit.
	status, small := get(t, ts, "/run?id=TS&ticks=4")
	if status != http.StatusOK {
		t.Fatalf("small /run status = %d", status)
	}
	if status, rep := get(t, ts, "/run?id=TS&ticks=4"); status != http.StatusOK || string(rep) != string(small) {
		t.Fatalf("cached small response differs: status %d", status)
	}
	m = srv.Metrics()
	if m.LRUSize != 1 || m.LRUBytes != int64(len(small)) {
		t.Fatalf("LRU size/bytes = %d/%d, want 1/%d", m.LRUSize, m.LRUBytes, len(small))
	}
	if m.LRUHits != 1 {
		t.Fatalf("LRU hits = %d, want 1", m.LRUHits)
	}
}

func TestMetricsHistogramBuckets(t *testing.T) {
	var m metrics
	m.observe(10 * time.Microsecond)  // bucket 0 (<= 50us)
	m.observe(700 * time.Microsecond) // <= 1000us
	m.observe(20 * time.Second)       // +Inf
	if got := m.latency[0].Load(); got != 1 {
		t.Fatalf("bucket[<=50us] = %d, want 1", got)
	}
	if got := m.latency[4].Load(); got != 1 {
		t.Fatalf("bucket[<=1ms] = %d, want 1", got)
	}
	if got := m.latency[len(latencyBucketsUS)].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	if m.latSum.Load() != 10+700+20_000_000 {
		t.Fatalf("latency sum = %d", m.latSum.Load())
	}
}
