package serve

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/rng"
)

// TraceSpec describes a deterministic synthetic workload: a universe of
// (scenario, seed) variants ranked by Zipf popularity, sampled into a
// request sequence. Equal specs build byte-identical traces, which is what
// lets cmd/humnetload assert byte-identical service responses across runs.
type TraceSpec struct {
	// IDs are the scenario IDs in the universe; order matters (it feeds the
	// deterministic rank shuffle).
	IDs []string
	// Registry resolves IDs; nil means experiment.Default.
	Registry *experiment.Registry
	// Requests is the trace length.
	Requests int
	// Variants is the number of distinct seeds per scenario (>= 1); the
	// universe holds len(IDs) * Variants unique (id, seed) triples.
	Variants int
	// ZipfS is the popularity skew exponent: rank r is sampled with weight
	// (r+1)^-ZipfS, so 0 is uniform and ~1.1 is web-like skew.
	ZipfS float64
	// Seed drives rank assignment, sampling, and query-form jitter.
	Seed uint64
	// ParamEcho is the probability a request spells out the scenario's
	// default params explicitly (in randomized order) instead of relying on
	// server-side defaults — same cache key, different URL, exercising the
	// canonicalization path.
	ParamEcho float64
}

// TraceRequest is one request of a built trace.
type TraceRequest struct {
	// ScenarioID and Seed identify the unique triple (params are always the
	// scenario defaults).
	ScenarioID string
	Seed       uint64
	// Query is the encoded /run query string, e.g. "id=E7&seed=9".
	Query string
}

// variant is one universe entry: a scenario at one seed.
type variant struct {
	sc   experiment.Scenario
	seed uint64
}

// BuildTrace samples spec into a request sequence. distinct is the number
// of unique (id, seed) triples that actually appear in the trace — the
// exact number of scenario executions a correctly coalescing, caching
// server performs when replaying it cold.
func BuildTrace(spec TraceSpec) (reqs []TraceRequest, distinct int, err error) {
	reg := spec.Registry
	if reg == nil {
		reg = experiment.Default
	}
	if len(spec.IDs) == 0 {
		return nil, 0, fmt.Errorf("serve: trace with no scenario IDs")
	}
	if spec.Requests < 0 || spec.ZipfS < 0 || spec.ParamEcho < 0 || spec.ParamEcho > 1 {
		return nil, 0, fmt.Errorf("serve: invalid trace spec %+v", spec)
	}
	variants := spec.Variants
	if variants < 1 {
		variants = 1
	}
	universe := make([]variant, 0, len(spec.IDs)*variants)
	for _, id := range spec.IDs {
		sc, ok := reg.Get(id)
		if !ok {
			return nil, 0, fmt.Errorf("serve: unknown scenario %q in trace spec", id)
		}
		for v := 0; v < variants; v++ {
			universe = append(universe, variant{sc: sc, seed: sc.DefaultSeed() + uint64(v)})
		}
	}

	r := rng.New(spec.Seed)
	// Rank assignment: shuffle so popularity is spread across scenarios
	// rather than front-loading the first ID's variants.
	for i := len(universe) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		universe[i], universe[j] = universe[j], universe[i]
	}
	// Zipf CDF over ranks.
	cum := make([]float64, len(universe))
	total := 0.0
	for i := range universe {
		total += zipfWeight(i, spec.ZipfS)
		cum[i] = total
	}

	reqs = make([]TraceRequest, spec.Requests)
	seen := make([]bool, len(universe))
	for i := range reqs {
		idx := sort.SearchFloat64s(cum, r.Float64()*total)
		if idx >= len(universe) {
			idx = len(universe) - 1
		}
		if !seen[idx] {
			seen[idx] = true
			distinct++
		}
		v := universe[idx]
		reqs[i] = TraceRequest{
			ScenarioID: v.sc.ID(),
			Seed:       v.seed,
			Query:      buildQuery(r, v, spec.ParamEcho),
		}
	}
	return reqs, distinct, nil
}

// zipfWeight is rank idx's unnormalized popularity, 1/(idx+1)^s.
func zipfWeight(idx int, s float64) float64 {
	if s == 0 {
		return 1
	}
	return 1 / math.Pow(float64(idx+1), s)
}

// buildQuery renders the request's query string. With probability echo the
// scenario's default params are appended explicitly in a deterministically
// shuffled order — the server must canonicalize them back onto the same
// cache key.
func buildQuery(r *rng.Rand, v variant, echo float64) string {
	q := "id=" + url.QueryEscape(v.sc.ID()) + "&seed=" + strconv.FormatUint(v.seed, 10)
	if echo <= 0 || !r.Bool(echo) {
		return q
	}
	schema := v.sc.Params()
	order := make([]int, len(schema))
	for i := range order {
		order[i] = i
	}
	for i := len(order) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for _, pi := range order {
		spec := schema[pi]
		q += "&" + url.QueryEscape(spec.Name) + "=" + url.QueryEscape(experiment.FormatValue(spec.Default))
	}
	return q
}
