package serve

import (
	"net/url"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/experiment"
)

func traceRegistry(t *testing.T) *experiment.Registry {
	t.Helper()
	reg := experiment.NewRegistry()
	for _, id := range []string{"T1", "T2", "T3"} {
		if err := reg.Register(testDef(id)); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestBuildTraceIsDeterministic(t *testing.T) {
	reg := traceRegistry(t)
	spec := TraceSpec{
		IDs: []string{"T1", "T2", "T3"}, Registry: reg,
		Requests: 500, Variants: 4, ZipfS: 1.1, Seed: 42, ParamEcho: 0.3,
	}
	a, da, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, db, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if da != db || !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs built different traces")
	}
	if len(a) != 500 {
		t.Fatalf("trace length = %d, want 500", len(a))
	}
	if da < 1 || da > 12 {
		t.Fatalf("distinct = %d, want within the 12-entry universe", da)
	}

	// A different seed reorders the trace.
	spec2 := spec
	spec2.Seed = 43
	c, _, err := BuildTrace(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds built identical traces")
	}
}

func TestBuildTraceDistinctCountsSampledTriples(t *testing.T) {
	reg := traceRegistry(t)
	// Heavy skew over a big universe and a short trace: distinct must count
	// only triples that actually appear, not the whole universe.
	reqs, distinct, err := BuildTrace(TraceSpec{
		IDs: []string{"T1", "T2", "T3"}, Registry: reg,
		Requests: 20, Variants: 50, ZipfS: 2.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[string]bool{}
	for _, r := range reqs {
		uniq[r.ScenarioID+"/"+strconv.FormatUint(r.Seed, 10)] = true
	}
	if distinct != len(uniq) {
		t.Fatalf("distinct = %d, but trace holds %d unique triples", distinct, len(uniq))
	}
	if distinct > 150 {
		t.Fatalf("distinct = %d exceeds universe", distinct)
	}
}

func TestBuildTraceQueriesParseAndCanonicalize(t *testing.T) {
	reg := traceRegistry(t)
	reqs, _, err := BuildTrace(TraceSpec{
		IDs: []string{"T1", "T2"}, Registry: reg,
		Requests: 200, Variants: 2, ZipfS: 1.0, Seed: 9, ParamEcho: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg})
	sawEcho := false
	for i, r := range reqs {
		q, err := url.ParseQuery(r.Query)
		if err != nil {
			t.Fatalf("request %d query %q: %v", i, r.Query, err)
		}
		sc, over, seed, status, msg := srv.parseRun(q)
		if status != 0 {
			t.Fatalf("request %d rejected: %d %s", i, status, msg)
		}
		if sc.ID() != r.ScenarioID || seed != r.Seed {
			t.Fatalf("request %d parsed to (%s, %d), want (%s, %d)", i, sc.ID(), seed, r.ScenarioID, r.Seed)
		}
		if len(over) > 0 {
			sawEcho = true
			// Echoed defaults must canonicalize onto the defaults-only key.
			merged, err := sc.Params().Merge(over)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := sc.Params().Merge(nil)
			if err != nil {
				t.Fatal(err)
			}
			if experiment.CacheKey(sc.ID(), merged, seed) != experiment.CacheKey(sc.ID(), plain, seed) {
				t.Fatalf("request %d: echoed defaults changed the cache key (query %q)", i, r.Query)
			}
		}
	}
	if !sawEcho {
		t.Fatal("ParamEcho=1.0 produced no echoed-param requests")
	}
}

func TestBuildTraceRejectsBadSpecs(t *testing.T) {
	reg := traceRegistry(t)
	cases := []TraceSpec{
		{IDs: nil, Registry: reg, Requests: 1},
		{IDs: []string{"NOPE"}, Registry: reg, Requests: 1},
		{IDs: []string{"T1"}, Registry: reg, Requests: -1},
		{IDs: []string{"T1"}, Registry: reg, Requests: 1, ZipfS: -1},
		{IDs: []string{"T1"}, Registry: reg, Requests: 1, ParamEcho: 2},
	}
	for i, spec := range cases {
		if _, _, err := BuildTrace(spec); err == nil {
			t.Errorf("case %d: bad spec %+v accepted", i, spec)
		}
	}
}

func TestBuildTraceZipfSkewsPopularity(t *testing.T) {
	reg := traceRegistry(t)
	reqs, _, err := BuildTrace(TraceSpec{
		IDs: []string{"T1", "T2", "T3"}, Registry: reg,
		Requests: 10_000, Variants: 8, ZipfS: 1.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.ScenarioID+"/"+strconv.FormatUint(r.Seed, 10)]++
	}
	top := 0
	for _, n := range counts {
		if n > top {
			top = n
		}
	}
	// Under Zipf(1.2) over 24 ranks the head rank draws >20% of traffic;
	// uniform would give ~4.2%.
	if top < len(reqs)/6 {
		t.Fatalf("head triple drew %d/%d requests — no Zipf skew visible", top, len(reqs))
	}
}
