package experiment

import (
	"fmt"
	"strconv"
)

// CellKind discriminates the typed cell variants.
type CellKind string

const (
	CellString CellKind = "string"
	CellInt    CellKind = "int"
	CellFloat  CellKind = "float"
)

// Cell is one typed table value. The zero-value JSON omissions keep cached
// Results compact while preserving an exact round-trip: strings verbatim,
// ints as int64, floats as float64 (encoding/json emits the shortest
// representation that parses back bit-identically).
type Cell struct {
	Kind CellKind `json:"kind"`
	Str  string   `json:"str,omitempty"`
	Int  int64    `json:"int,omitempty"`
	F    float64  `json:"f,omitempty"`
	// Prec is the number of fixed decimals a float cell renders with.
	Prec int `json:"prec,omitempty"`
	// Plus forces an explicit sign on a float cell (E8's bias column).
	Plus bool `json:"plus,omitempty"`
}

// S builds a string cell.
func S(s string) Cell { return Cell{Kind: CellString, Str: s} }

// I builds an int cell.
func I(v int) Cell { return Cell{Kind: CellInt, Int: int64(v)} }

// I64 builds an int cell from an int64.
func I64(v int64) Cell { return Cell{Kind: CellInt, Int: v} }

// F3 builds a float cell with three fixed decimals — the repo's default
// precision for shares and rates.
func F3(v float64) Cell { return Cell{Kind: CellFloat, F: v, Prec: 3} }

// FP builds a float cell with prec fixed decimals.
func FP(v float64, prec int) Cell { return Cell{Kind: CellFloat, F: v, Prec: prec} }

// FSigned builds a float cell with prec fixed decimals and a forced sign.
func FSigned(v float64, prec int) Cell {
	return Cell{Kind: CellFloat, F: v, Prec: prec, Plus: true}
}

// Format renders the cell deterministically; every renderer goes through it.
func (c Cell) Format() string {
	switch c.Kind {
	case CellString:
		return c.Str
	case CellInt:
		return strconv.FormatInt(c.Int, 10)
	case CellFloat:
		if c.Plus {
			return fmt.Sprintf("%+.*f", c.Prec, c.F)
		}
		return fmt.Sprintf("%.*f", c.Prec, c.F)
	}
	return fmt.Sprintf("?%v", c.Kind)
}

// Numeric reports whether the cell right-aligns in the text renderer.
func (c Cell) Numeric() bool { return c.Kind == CellInt || c.Kind == CellFloat }

// Table is one rendered section of an experiment: an ID ("E1", "E2b"), a
// title, ordered columns, and rows of typed cells.
type Table struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
}

// AddRow appends one row. The cell count must match the column count; a
// mismatch is a scenario programming error and panics with the table ID.
func (t *Table) AddRow(cells ...Cell) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: table %s row has %d cells for %d columns", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Result is a scenario execution's complete, renderable output. ID, Title,
// Claim, Seed, and Params are stamped by the Runner so scenarios only build
// Tables; a Result survives a JSON round-trip (the on-disk cache) with
// bit-identical rendering.
type Result struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Claim  string            `json:"claim,omitempty"`
	Seed   uint64            `json:"seed"`
	Params map[string]string `json:"params,omitempty"`
	Tables []*Table          `json:"tables"`
}

// AddTable appends an empty table with the given identity and columns and
// returns it for row-filling.
func (r *Result) AddTable(id, title string, columns ...string) *Table {
	t := &Table{ID: id, Title: title, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}
