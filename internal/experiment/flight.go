package experiment

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent executions keyed by cache key: while one
// caller (the leader) runs fn, every other caller with the same key parks
// and receives the leader's result instead of re-running the scenario. The
// zero value is ready to use. Scenario runs are pure functions of their key,
// so sharing the leader's *Result is semantically identical to re-running —
// callers must treat shared Results as read-only, which is already the
// package-wide contract.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution; done closes when res/err are set.
type flightCall struct {
	done    chan struct{}
	waiting int
	res     *Result
	err     error
}

// do executes fn once per key among concurrent callers. The leader returns
// shared=false; followers park until the leader finishes (or their own
// context ends) and return shared=true. The key is removed before done is
// closed, so a caller arriving after completion starts a fresh flight — the
// group coalesces concurrency, it does not cache.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiting++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}

// waiters reports how many followers are currently parked on key. Tests use
// it to release a blocked leader only once every concurrent caller has
// joined the flight, making coalescing assertions deterministic.
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiting
	}
	return 0
}

// totalWaiters sums parked followers across every in-flight key.
func (g *flightGroup) totalWaiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.m {
		n += c.waiting
	}
	return n
}
