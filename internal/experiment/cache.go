package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
)

// cacheSchemaVersion versions the cached Result encoding itself. Bump it
// whenever the Result JSON shape or cell formatting semantics change, so
// stale entries miss instead of decoding into the wrong shape.
const cacheSchemaVersion = 1

// moduleVersion identifies the code that produced a cached entry. Release
// builds get the module version; source builds get the VCS revision when the
// build recorded one, else "(devel)". It is part of every cache key, so a
// rebuilt binary with different code never serves another build's results
// unless the build metadata genuinely matches.
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return bi.Main.Version + "+" + s.Value
		}
	}
	return bi.Main.Version
}

// CacheKey is the content address of one scenario execution:
// hash(schema version, module version, scenario ID, seed, canonical params).
// Equal inputs — and only equal inputs — share a key, so a warm cache is
// safe to reuse across runs of the same build.
func CacheKey(scenarioID string, p Values, seed uint64) string {
	var b strings.Builder
	b.WriteString("v")
	b.WriteString(strconv.Itoa(cacheSchemaVersion))
	b.WriteByte('\n')
	b.WriteString(moduleVersion())
	b.WriteByte('\n')
	b.WriteString(scenarioID)
	b.WriteByte('\n')
	b.WriteString(strconv.FormatUint(seed, 10))
	b.WriteByte('\n')
	b.WriteString(p.Canonical())
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Cache is a content-addressed on-disk Result store: one JSON file per key.
// Writes are atomic (temp file + rename), so a crashed run never leaves a
// half-written entry, and any unreadable or undecodable entry is treated as
// a miss and overwritten by the next Put.
type Cache struct {
	dir string
}

// OpenCache creates dir if needed and returns a cache rooted there.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiment: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the Result stored under key. Any failure — absent, unreadable,
// or corrupt entry — is reported as a miss; the cache self-heals on the next
// Put.
func (c *Cache) Get(key string) (*Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Put stores res under key atomically.
func (c *Cache) Put(key string, res *Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("experiment: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("experiment: cache put: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("experiment: cache put: %w", werr)
		}
		return fmt.Errorf("experiment: cache put: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("experiment: cache put: %w", err)
	}
	return nil
}
