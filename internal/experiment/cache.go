package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
)

// cacheSchemaVersion versions the cached Result encoding and the key
// derivation itself. Bump it whenever the Result JSON shape, the cell
// formatting semantics, or the canonical param encoding change, so stale
// entries miss instead of decoding into the wrong shape (or worse, hitting
// under a colliding key).
//
// v2: Values.Canonical() became injective (length-prefixed records) and the
// key's own fields became length-prefixed; v1 entries miss cleanly.
const cacheSchemaVersion = 2

// moduleVersion identifies the code that produced a cached entry. Release
// builds get the module version; source builds get the VCS revision when the
// build recorded one, else "(devel)". It is part of every cache key, so a
// rebuilt binary with different code never serves another build's results
// unless the build metadata genuinely matches. debug.ReadBuildInfo walks the
// whole build-settings table, so the value is computed once — CacheKey is on
// humnetd's per-request hot path.
var moduleVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return bi.Main.Version + "+" + s.Value
		}
	}
	return bi.Main.Version
})

// writeField appends one length-prefixed key ingredient. The prefix makes
// field boundaries part of the encoding, so an ingredient containing the
// separator byte can never alias a neighbouring field.
func writeField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
	b.WriteByte('\n')
}

// CacheKey is the content address of one scenario execution:
// hash(schema version, module version, scenario ID, seed, canonical params),
// every ingredient length-prefixed. Equal inputs — and only equal inputs —
// share a key, so a warm cache is safe to reuse across runs of the same
// build.
func CacheKey(scenarioID string, p Values, seed uint64) string {
	var b strings.Builder
	writeField(&b, "v"+strconv.Itoa(cacheSchemaVersion))
	writeField(&b, moduleVersion())
	writeField(&b, scenarioID)
	writeField(&b, strconv.FormatUint(seed, 10))
	writeField(&b, p.Canonical())
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Cache is a content-addressed on-disk Result store: one JSON file per key.
// Writes are atomic (temp file + rename), so a crashed run never leaves a
// half-written entry, and any unreadable or undecodable entry is treated as
// a miss and overwritten by the next Put.
type Cache struct {
	dir string
}

// OpenCache creates dir if needed and returns a cache rooted there.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiment: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the Result stored under key and verifies it actually belongs to
// scenario wantID. Any failure — absent, unreadable, or corrupt entry, or a
// well-formed entry whose Result.ID names a different scenario (a renamed or
// hand-edited file) — is reported as a miss; the cache self-heals on the
// next Put. Without the ID check, any well-formed JSON at the right path
// would be served verbatim, so a stray rename could hand one scenario
// another scenario's tables.
func (c *Cache) Get(key, wantID string) (*Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	if res.ID != wantID {
		return nil, false
	}
	return &res, true
}

// Put stores res under key atomically.
func (c *Cache) Put(key string, res *Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("experiment: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("experiment: cache put: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("experiment: cache put: %w", werr)
		}
		return fmt.Errorf("experiment: cache put: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("experiment: cache put: %w", err)
	}
	return nil
}
