package experiment

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/proptest"
)

// TestPropRunnerWorkerInvariance is the package's determinism contract run
// dynamically: for a randomly drawn batch of jobs (scenario mix, per-job
// parameter overrides, seeds), the batch runner renders bit-identical output
// for every worker count, including the scenario-internal worker hint.
func TestPropRunnerWorkerInvariance(t *testing.T) {
	scenarios := []Scenario{
		def{synthDef("P1")},
		def{synthDef("P2")},
		def{synthDef("P3")},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	proptest.Run(t, 0xe19a, 40, func(g *proptest.G) error {
		n := g.IntRange(1, 8)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				Scenario: scenarios[g.Intn(len(scenarios))],
				Seed:     g.Uint64() % 1000,
				Params: Values{
					"rows":  g.IntRange(0, 6),
					"scale": g.Float64Range(0, 10),
				},
			}
		}

		var baseline string
		for _, w := range workerCounts {
			r := &Runner{Workers: w, ScenarioWorkers: w}
			results, err := r.Run(context.Background(), jobs)
			if err != nil {
				return fmt.Errorf("workers=%d: %v", w, err)
			}
			md := RenderMarkdown(results)
			js, err := RenderJSON(results)
			if err != nil {
				return fmt.Errorf("workers=%d: RenderJSON: %v", w, err)
			}
			rendered := md + "\x00" + string(js)
			if w == workerCounts[0] {
				baseline = rendered
				continue
			}
			if rendered != baseline {
				return fmt.Errorf("workers=%d renders differently from workers=%d over %d jobs",
					w, workerCounts[0], n)
			}
		}
		return nil
	})
}

// TestPropCacheRoundTrip checks the cache leg of the same contract: for any
// drawn job, running cold through a cache and re-running warm yields
// bit-identical renderings, with the warm run executing nothing.
func TestPropCacheRoundTrip(t *testing.T) {
	sc := def{synthDef("P1")}
	dir := t.TempDir()

	proptest.Run(t, 0xcac4e, 25, func(g *proptest.G) error {
		cache, err := OpenCache(fmt.Sprintf("%s/c%d", dir, g.Uint64()%1_000_000))
		if err != nil {
			return err
		}
		job := Job{
			Scenario: sc,
			Seed:     g.Uint64() % 1000,
			Params: Values{
				"rows":  g.IntRange(0, 6),
				"scale": g.Float64Range(0, 10),
			},
		}
		cold := &Runner{Cache: cache}
		coldRes, err := cold.RunOne(context.Background(), job)
		if err != nil {
			return err
		}
		warm := &Runner{Cache: cache}
		warmRes, err := warm.RunOne(context.Background(), job)
		if err != nil {
			return err
		}
		if st := warm.Stats(); st.Hits != 1 || st.Misses != 0 {
			return fmt.Errorf("warm stats = %+v, want pure hit", st)
		}
		coldJSON, err := RenderJSON([]*Result{coldRes})
		if err != nil {
			return err
		}
		warmJSON, err := RenderJSON([]*Result{warmRes})
		if err != nil {
			return err
		}
		if string(coldJSON) != string(warmJSON) {
			return fmt.Errorf("cached rendering differs from cold run (seed %d)", job.Seed)
		}
		if RenderMarkdown([]*Result{coldRes}) != RenderMarkdown([]*Result{warmRes}) {
			return fmt.Errorf("cached Markdown differs from cold run (seed %d)", job.Seed)
		}
		return nil
	})
}
