package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind is the type of one scenario parameter.
type Kind int

const (
	Int Kind = iota
	Uint
	Float
	Bool
	String
)

// String names the kind the way it appears in -list output and errors.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Uint:
		return "uint"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec declares one parameter: its name, type, default, and documentation.
type Spec struct {
	Name    string
	Kind    Kind
	Default any
	Doc     string
}

// check reports whether v's dynamic type matches the spec's kind.
func (s Spec) check(v any) error {
	ok := false
	switch s.Kind {
	case Int:
		_, ok = v.(int)
	case Uint:
		_, ok = v.(uint64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	case String:
		_, ok = v.(string)
	}
	if !ok {
		return fmt.Errorf("param %q wants %s, got %T (%v)", s.Name, s.Kind, v, v)
	}
	return nil
}

// Parse converts flag-style text into the spec's typed value.
func (s Spec) Parse(text string) (any, error) {
	switch s.Kind {
	case Int:
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("param %q: %w", s.Name, err)
		}
		return v, nil
	case Uint:
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("param %q: %w", s.Name, err)
		}
		return v, nil
	case Float:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("param %q: %w", s.Name, err)
		}
		return v, nil
	case Bool:
		v, err := strconv.ParseBool(text)
		if err != nil {
			return nil, fmt.Errorf("param %q: %w", s.Name, err)
		}
		return v, nil
	case String:
		return text, nil
	}
	return nil, fmt.Errorf("param %q: unknown kind %v", s.Name, s.Kind)
}

// FormatValue renders a typed parameter value canonically: the same value
// always formats to the same text, and floats use the shortest
// representation that round-trips exactly.
func FormatValue(v any) string {
	switch x := v.(type) {
	case int:
		return strconv.Itoa(x)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return x
	}
	return fmt.Sprintf("%v", v)
}

// Schema is the ordered parameter declaration of one scenario.
type Schema []Spec

// validate checks the schema itself: unique names, non-empty names, and
// defaults whose dynamic type matches the declared kind.
func (sch Schema) validate(scenarioID string) error {
	seen := make(map[string]bool, len(sch))
	for _, s := range sch {
		if s.Name == "" {
			return fmt.Errorf("experiment: scenario %s has a param with an empty name", scenarioID)
		}
		if seen[s.Name] {
			return fmt.Errorf("experiment: scenario %s declares param %q twice", scenarioID, s.Name)
		}
		seen[s.Name] = true
		if s.Default == nil {
			return fmt.Errorf("experiment: scenario %s param %q has no default", scenarioID, s.Name)
		}
		if err := s.check(s.Default); err != nil {
			return fmt.Errorf("experiment: scenario %s default: %w", scenarioID, err)
		}
	}
	return nil
}

// Lookup finds the spec named name.
func (sch Schema) Lookup(name string) (Spec, bool) {
	for _, s := range sch {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Defaults returns a fresh Values holding every parameter's default.
func (sch Schema) Defaults() Values {
	v := make(Values, len(sch))
	for _, s := range sch {
		v[s.Name] = s.Default
	}
	return v
}

// Validate rejects unknown parameter names and values whose dynamic type
// does not match the declared kind. A nil or empty Values is valid.
func (sch Schema) Validate(v Values) error {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec, ok := sch.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown param %q", name)
		}
		if err := spec.check(v[name]); err != nil {
			return err
		}
	}
	return nil
}

// Merge validates over against the schema and returns the defaults overlaid
// with it: the complete, typed parameter set a scenario runs with.
func (sch Schema) Merge(over Values) (Values, error) {
	if err := sch.Validate(over); err != nil {
		return nil, err
	}
	merged := sch.Defaults()
	for name, v := range over {
		merged[name] = v
	}
	return merged, nil
}

// Values is a validated parameter assignment. The dynamic types are exactly
// int, uint64, float64, bool, and string, matching the Kind constants.
type Values map[string]any

// get fetches a value, panicking with a precise message on misuse: scenarios
// only ever see schema-merged Values, so a miss is a programming error, not
// an input error.
func (v Values) get(name string) any {
	x, ok := v[name]
	if !ok {
		panic(fmt.Sprintf("experiment: param %q not set (missing from schema?)", name))
	}
	return x
}

// Int returns the int parameter name.
func (v Values) Int(name string) int {
	x, ok := v.get(name).(int)
	if !ok {
		panic(fmt.Sprintf("experiment: param %q is %T, not int", name, v[name]))
	}
	return x
}

// Uint returns the uint64 parameter name.
func (v Values) Uint(name string) uint64 {
	x, ok := v.get(name).(uint64)
	if !ok {
		panic(fmt.Sprintf("experiment: param %q is %T, not uint64", name, v[name]))
	}
	return x
}

// Float returns the float64 parameter name.
func (v Values) Float(name string) float64 {
	x, ok := v.get(name).(float64)
	if !ok {
		panic(fmt.Sprintf("experiment: param %q is %T, not float64", name, v[name]))
	}
	return x
}

// Bool returns the bool parameter name.
func (v Values) Bool(name string) bool {
	x, ok := v.get(name).(bool)
	if !ok {
		panic(fmt.Sprintf("experiment: param %q is %T, not bool", name, v[name]))
	}
	return x
}

// String returns the string parameter name.
func (v Values) String(name string) string {
	x, ok := v.get(name).(string)
	if !ok {
		panic(fmt.Sprintf("experiment: param %q is %T, not string", name, v[name]))
	}
	return x
}

// Canonical renders the values as a stable, injective encoding used by the
// cache key: keys sorted, each record length-prefixed as
// "<len(name)>:<name>=<len(value)>:<value>\n" with the value in its canonical
// text form. The length prefixes make the encoding a prefix code — a decoder
// reads the digits up to ':', takes exactly that many bytes, and repeats — so
// no name or value content (including '=', ':', or '\n' inside string
// params) can make two different assignments encode to the same bytes. The
// old unprefixed "name=value\n" form collided on exactly those characters;
// cacheSchemaVersion was bumped when the encoding changed so old entries
// miss cleanly.
func (v Values) Canonical() string {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		val := FormatValue(v[name])
		b.WriteString(strconv.Itoa(len(name)))
		b.WriteByte(':')
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(len(val)))
		b.WriteByte(':')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	return b.String()
}

// Formatted returns the values as display strings keyed by name, the form
// embedded in Result.Params (and therefore in the cache and JSON output).
func (v Values) Formatted() map[string]string {
	out := make(map[string]string, len(v))
	for name, x := range v {
		out[name] = FormatValue(x)
	}
	return out
}

// ParseFloats parses a comma-separated float list — the encoding used by
// sweep-style list parameters such as E2's content-presence levels.
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list element %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty float list %q", s)
	}
	return out, nil
}
