package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCanonicalInjective is the collision regression test: under the old
// unprefixed "name=value\n" encoding each pair below rendered to identical
// bytes, so two different parameter assignments shared one cache key and
// silently served each other's results. The length-prefixed encoding must
// keep them distinct — in Canonical() and in the derived CacheKey.
func TestCanonicalInjective(t *testing.T) {
	pairs := []struct {
		name string
		a, b Values
	}{
		{
			// Old encoding of both: "a=x\nb=y\n" — a newline inside a
			// string value forges a second record.
			name: "newline in value forges a record",
			a:    Values{"a": "x\nb=y"},
			b:    Values{"a": "x", "b": "y"},
		},
		{
			// Old encoding of both: "a=b=c\n" — '=' is ambiguous between
			// name and value.
			name: "equals sign ambiguity",
			a:    Values{"a": "b=c"},
			b:    Values{"a=b": "c"},
		},
		{
			// Old encoding of both: "a=1\nb=2\n".
			name: "value swallows following param",
			a:    Values{"a": "1\nb=2"},
			b:    Values{"a": "1", "b": "2"},
		},
	}
	for _, p := range pairs {
		if p.a.Canonical() == p.b.Canonical() {
			t.Errorf("%s: Canonical() collides:\n%v\n%v\nencoding %q",
				p.name, p.a, p.b, p.a.Canonical())
		}
		if CacheKey("T1", p.a, 7) == CacheKey("T1", p.b, 7) {
			t.Errorf("%s: CacheKey collides for %v and %v", p.name, p.a, p.b)
		}
	}
}

// oldCacheKeyV1 reproduces the pre-fix key derivation (schema v1, unprefixed
// fields and params) so the schema-bump test can plant an entry exactly
// where the old code would have looked it up.
func oldCacheKeyV1(scenarioID string, p Values, seed uint64) string {
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("v1\n")
	b.WriteString(moduleVersion())
	b.WriteByte('\n')
	b.WriteString(scenarioID)
	b.WriteByte('\n')
	b.WriteString(strconv.FormatUint(seed, 10))
	b.WriteByte('\n')
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(FormatValue(p[name]))
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TestOldFormatEntriesMissCleanly plants a well-formed entry under the v1
// key of a job and asserts the hardened runner never sees it: the schema
// bump moved every key, so old-format entries are unreachable rather than
// wrongly decodable.
func TestOldFormatEntriesMissCleanly(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := def{synthDef("T1")}
	merged := mustMerge(t, sc, nil)
	seed := sc.DefaultSeed()

	oldKey := oldCacheKeyV1(sc.ID(), merged, seed)
	newKey := CacheKey(sc.ID(), merged, seed)
	if oldKey == newKey {
		t.Fatal("schema bump did not move the cache key")
	}
	poisoned := &Result{ID: sc.ID(), Title: "stale v1 entry", Seed: seed}
	if err := cache.Put(oldKey, poisoned); err != nil {
		t.Fatal(err)
	}

	r := &Runner{Cache: cache}
	res, err := r.RunOne(context.Background(), NewJob(sc))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want a clean miss past the v1 entry", st)
	}
	if res.Title == poisoned.Title {
		t.Fatal("runner served the stale v1 entry")
	}
}

// TestCacheGetRejectsMismatchedID: a well-formed entry whose Result.ID names
// another scenario (a renamed or hand-edited file) must read as a miss, both
// at the Cache layer and through the Runner.
func TestCacheGetRejectsMismatchedID(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := def{synthDef("T1")}
	merged := mustMerge(t, sc, nil)
	key := CacheKey(sc.ID(), merged, sc.DefaultSeed())

	alien := &Result{ID: "T2", Title: "someone else's table", Seed: 1}
	if err := cache.Put(key, alien); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key, sc.ID()); ok {
		t.Fatal("Get served an entry whose Result.ID names a different scenario")
	}
	if res, ok := cache.Get(key, "T2"); !ok || res.Title != alien.Title {
		t.Fatal("Get with the matching ID should still decode the entry")
	}

	r := &Runner{Cache: cache}
	res, err := r.RunOne(context.Background(), NewJob(sc))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the mismatched entry treated as a miss", st)
	}
	if res.ID != sc.ID() || res.Title == alien.Title {
		t.Fatalf("runner served the mismatched entry: %+v", res)
	}
	// The miss path must have healed the entry with the real result.
	if healed, ok := cache.Get(key, sc.ID()); !ok || healed.ID != sc.ID() {
		t.Fatal("mismatched entry not overwritten after the re-run")
	}
}

// TestCacheConcurrentPutSameKey races N writers on one key: the atomic
// temp+rename contract means a concurrent reader sees either a miss or one
// writer's complete entry — never a torn file.
func TestCacheConcurrentPutSameKey(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{ID: "T1", Title: "concurrent", Seed: 9}
	res.AddTable("T1", "t", "a").AddRow(I(1))
	key := CacheKey("T1", Values{"rows": 1}, 9)

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cache.Put(key, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, ok := cache.Get(key, "T1")
	if !ok {
		t.Fatal("entry unreadable after concurrent Puts")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("entry torn by concurrent Puts:\ngot  %+v\nwant %+v", got, res)
	}
}

// TestCacheGetDuringPut overlaps a reader loop with a writer loop on one
// key: every successful Get must decode a complete, ID-matching entry.
func TestCacheGetDuringPut(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{ID: "T1", Title: "overlap", Seed: 3}
	res.AddTable("T1", "t", "a", "b").AddRow(I(1), F3(0.5))
	key := CacheKey("T1", Values{"rows": 2}, 3)
	// Seed the entry so the reader is guaranteed at least one hit even if
	// it outpaces the writer goroutine's first Put.
	if err := cache.Put(key, res); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := cache.Put(key, res); err != nil {
				writeErr = err
				return
			}
		}
	}()

	hits := 0
	for i := 0; i < 500; i++ {
		got, ok := cache.Get(key, "T1")
		if !ok {
			continue // a miss is legal mid-rename; a torn read is not
		}
		hits++
		if !reflect.DeepEqual(got, res) {
			close(stop)
			wg.Wait()
			t.Fatalf("Get observed a torn entry at iteration %d: %+v", i, got)
		}
	}
	close(stop)
	wg.Wait()
	if writeErr != nil {
		t.Fatalf("writer failed: %v", writeErr)
	}
	if hits == 0 {
		t.Fatal("reader never observed a complete entry")
	}
}

// TestRunnerCoalescesConcurrentIdenticalJobs is the runner-level coalescing
// contract: N identical concurrent jobs execute the scenario exactly once.
// The scenario blocks until every follower has parked on the flight, so the
// assertion is deterministic rather than timing-dependent.
func TestRunnerCoalescesConcurrentIdenticalJobs(t *testing.T) {
	const followers = 7

	var execs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	d := synthDef("T1")
	inner := d.Run
	d.Run = func(ctx context.Context, p Values, seed uint64) (*Result, error) {
		if execs.Add(1) == 1 {
			close(entered)
		}
		<-release
		return inner(ctx, p, seed)
	}
	sc := def{d}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Cache: cache, Coalesce: true}
	job := NewJob(sc)
	key := CacheKey(sc.ID(), mustMerge(t, sc, nil), job.Seed)

	results := make([]*Result, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = r.RunOne(context.Background(), job)
	}()
	<-entered // the leader is inside Run and holds the flight

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.RunOne(context.Background(), job)
		}(i)
	}
	// Release the leader only once every follower is parked on the flight;
	// waiters() makes that observable without sleeps.
	for r.flight.waiters(key) < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("scenario executed %d times for %d identical concurrent jobs, want exactly 1", n, followers+1)
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Shared != followers {
		t.Fatalf("stats = %+v, want 1 miss / 0 hits / %d shared", st, followers)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("caller %d got a different result than the leader", i)
		}
	}
	// A later identical job coalesces with nothing and hits the disk cache.
	if _, err := r.RunOne(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 1 || st.Misses != 1 || st.Shared != followers {
		t.Fatalf("post-flight stats = %+v, want the late job to be a disk hit", st)
	}
}

// TestRunnerCoalesceFollowerHonoursContext: a parked follower whose context
// is cancelled returns promptly with the context error instead of waiting
// for the leader.
func TestRunnerCoalesceFollowerHonoursContext(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	d := synthDef("T1")
	inner := d.Run
	d.Run = func(ctx context.Context, p Values, seed uint64) (*Result, error) {
		close(entered)
		<-release
		return inner(ctx, p, seed)
	}
	sc := def{d}
	r := &Runner{Coalesce: true}
	job := NewJob(sc)
	key := CacheKey(sc.ID(), mustMerge(t, sc, nil), job.Seed)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := r.RunOne(context.Background(), job); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := r.RunOne(ctx, job)
		followerErr <- err
	}()
	for r.flight.waiters(key) < 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-followerErr; err != context.Canceled {
		t.Fatalf("cancelled follower returned %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

// BenchmarkCacheKey is the humnetd hot-path cost of one key derivation.
// Memoizing moduleVersion removed a debug.ReadBuildInfo walk from every
// call — BenchmarkModuleVersionUnmemoized prices what that walk cost
// (~1.5µs, 1184 B, 7 allocs per call on the reference box, more than the
// entire memoized key derivation at ~1.2µs/14 allocs).
func BenchmarkCacheKey(b *testing.B) {
	p := Values{"rows": 4, "scale": 1.5, "label": "x"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CacheKey("E7", p, uint64(i))
	}
}

// BenchmarkModuleVersionUnmemoized measures what every CacheKey call paid
// before the sync.Once fix — kept as the comparison baseline for the
// memoized path exercised by BenchmarkCacheKey.
func BenchmarkModuleVersionUnmemoized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			b.Fatal("no build info")
		}
		v := bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v = bi.Main.Version + "+" + s.Value
			}
		}
		_ = v
	}
}
