package experiment

import "flag"

// BindFlags registers one typed flag per schema spec on fs (name, default,
// and doc all come from the spec) and returns a collector that, called after
// fs.Parse, assembles the parsed values into a complete Values. This is how
// the thin CLI dispatchers map command-line flags onto a scenario's Params
// schema without any per-scenario flag code.
func BindFlags(fs *flag.FlagSet, sch Schema) func() Values {
	getters := make([]func() any, len(sch))
	for i, spec := range sch {
		switch spec.Kind {
		case Int:
			p := fs.Int(spec.Name, spec.Default.(int), spec.Doc)
			getters[i] = func() any { return *p }
		case Uint:
			p := fs.Uint64(spec.Name, spec.Default.(uint64), spec.Doc)
			getters[i] = func() any { return *p }
		case Float:
			p := fs.Float64(spec.Name, spec.Default.(float64), spec.Doc)
			getters[i] = func() any { return *p }
		case Bool:
			p := fs.Bool(spec.Name, spec.Default.(bool), spec.Doc)
			getters[i] = func() any { return *p }
		case String:
			p := fs.String(spec.Name, spec.Default.(string), spec.Doc)
			getters[i] = func() any { return *p }
		}
	}
	return func() Values {
		v := make(Values, len(sch))
		for i, spec := range sch {
			if getters[i] != nil {
				v[spec.Name] = getters[i]()
			}
		}
		return v
	}
}
