// Package cli is the shared thin dispatcher behind the scenario CLIs
// (ixpsim, cnsim, biblioscan): resolve a scenario by ID from the registry
// the binary linked in, bind the scenario's Params schema onto real
// command-line flags, run it through an experiment.Runner, and print the
// rendered Result.
//
// The binaries keep no per-experiment code at all — their experiment
// surface is exactly the registry contents, so adding a scenario to a
// domain package adds it to every CLI that links the package.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// Config describes one scenario CLI.
type Config struct {
	// Tool is the binary name used in flag error output.
	Tool string
	// DefaultScenario is run when -scenario is not given.
	DefaultScenario string
	// Intro is printed above the scenario list in -list output.
	Intro string
}

// Main implements the dispatcher: parse args, resolve the scenario, run,
// render. It returns the process exit code — 0 on success, 1 on execution
// failure, 2 on usage errors — and writes only to stdout/stderr, so the
// binaries stay a one-line main and tests can capture everything.
func Main(cfg Config, args []string, stdout, stderr io.Writer) int {
	id := preScanScenario(args, cfg.DefaultScenario)
	sc, known := experiment.Get(id)
	if !known {
		// An unknown scenario still must support -list; resolve against the
		// default so flag parsing can proceed, then fail after -list had its
		// chance.
		var ok bool
		sc, ok = experiment.Get(cfg.DefaultScenario)
		if !ok {
			errf(stderr, "%s: default scenario %q not registered\n", cfg.Tool, cfg.DefaultScenario)
			return 2
		}
	}

	fs := flag.NewFlagSet(cfg.Tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioFlag := fs.String("scenario", cfg.DefaultScenario, "scenario ID to run (see -list)")
	list := fs.Bool("list", false, "list every registered scenario with its params and exit")
	jsonOut := fs.Bool("json", false, "render the result as JSON instead of a text table")
	workers := fs.Int("workers", 0, "worker goroutines for scenario sweeps (0 = GOMAXPROCS); output is identical for any value")
	seed := fs.Uint64("seed", sc.DefaultSeed(), "scenario seed")
	collect := experiment.BindFlags(fs, sc.Params())
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		if _, err := io.WriteString(stdout, cfg.Intro+experiment.RenderList(experiment.All())); err != nil {
			errf(stderr, "%s: %v\n", cfg.Tool, err)
			return 1
		}
		return 0
	}
	if !known || *scenarioFlag != id {
		// !known: the pre-scanned ID is not registered. Flag mismatch happens
		// only on malformed input where the pre-scan and flag.Parse disagree.
		errf(stderr, "%s: unknown scenario %q (known: %s)\n", cfg.Tool, *scenarioFlag, strings.Join(knownIDs(), ", "))
		return 2
	}

	runner := &experiment.Runner{Workers: 1, ScenarioWorkers: *workers}
	res, err := runner.RunOne(context.Background(), experiment.Job{
		Scenario: sc, Params: collect(), Seed: *seed,
	})
	if err != nil {
		errf(stderr, "%s: %v\n", cfg.Tool, err)
		return 1
	}
	var out string
	if *jsonOut {
		data, err := experiment.RenderJSON([]*experiment.Result{res})
		if err != nil {
			errf(stderr, "%s: %v\n", cfg.Tool, err)
			return 1
		}
		out = string(data)
	} else {
		out = experiment.RenderText(res)
	}
	if _, err := io.WriteString(stdout, out); err != nil {
		errf(stderr, "%s: %v\n", cfg.Tool, err)
		return 1
	}
	return 0
}

// errf writes a diagnostic to the dispatcher's stderr. stderr is the last
// resort for reporting failures, so a failed write has no further recourse
// and the error is deliberately dropped.
func errf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// preScanScenario extracts the -scenario value before real flag parsing, so
// the chosen scenario's schema can be bound as flags first. It accepts the
// same spellings the flag package does.
func preScanScenario(args []string, fallback string) string {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			break
		}
		name, val, eq := splitFlag(a)
		if name != "scenario" {
			continue
		}
		if eq {
			return val
		}
		if i+1 < len(args) {
			return args[i+1]
		}
	}
	return fallback
}

// splitFlag decomposes "-name=value" / "--name" into its parts.
func splitFlag(a string) (name, value string, hasValue bool) {
	if len(a) < 2 || a[0] != '-' {
		return "", "", false
	}
	a = a[1:]
	if len(a) > 0 && a[0] == '-' {
		a = a[1:]
	}
	if i := strings.IndexByte(a, '='); i >= 0 {
		return a[:i], a[i+1:], true
	}
	return a, "", false
}

// knownIDs lists the registered scenario IDs in registry order.
func knownIDs() []string {
	all := experiment.All()
	ids := make([]string, len(all))
	for i, s := range all {
		ids[i] = s.ID()
	}
	return ids
}
