package experiment

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCacheKeySensitivity(t *testing.T) {
	p := Values{"rows": 4, "scale": 1.5}
	base := CacheKey("T1", p, 7)
	if base != CacheKey("T1", Values{"scale": 1.5, "rows": 4}, 7) {
		t.Fatal("key depends on params map construction order")
	}
	for name, other := range map[string]string{
		"scenario ID": CacheKey("T2", p, 7),
		"seed":        CacheKey("T1", p, 8),
		"params":      CacheKey("T1", Values{"rows": 5, "scale": 1.5}, 7),
	} {
		if other == base {
			t.Fatalf("key ignores %s", name)
		}
	}
}

// TestCacheHitIsByteIdentical is the core warm-cache contract: a hit must
// yield a Result whose every rendering equals the cold run's bit-for-bit,
// and the runner counters must show the second run executed nothing.
func TestCacheHitIsByteIdentical(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := def{synthDef("T1")}
	job := Job{Scenario: sc, Params: Values{"rows": 3}, Seed: 9}

	cold := &Runner{Cache: cache}
	coldRes, err := cold.RunOne(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cold stats = %+v, want 0 hits / 1 miss", st)
	}

	warm := &Runner{Cache: cache}
	warmRes, err := warm.RunOne(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 1 hit / 0 misses (scenario must not re-execute)", st)
	}

	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatalf("cached Result differs from cold run:\ncold: %+v\nwarm: %+v", coldRes, warmRes)
	}
	if RenderMarkdown([]*Result{coldRes}) != RenderMarkdown([]*Result{warmRes}) {
		t.Fatal("Markdown rendering of cached Result differs from cold run")
	}
	coldJSON, err := RenderJSON([]*Result{coldRes})
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := RenderJSON([]*Result{warmRes})
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("JSON rendering of cached Result differs from cold run")
	}
	if RenderText(coldRes) != RenderText(warmRes) {
		t.Fatal("text rendering of cached Result differs from cold run")
	}
}

func TestCacheMissOnDifferentInputs(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Cache: cache}
	ctx := context.Background()
	sc := def{synthDef("T1")}
	if _, err := r.RunOne(ctx, Job{Scenario: sc, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunOne(ctx, Job{Scenario: sc, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunOne(ctx, Job{Scenario: sc, Seed: 1, Params: Values{"rows": 5}}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 3 misses (seed and params must be part of the key)", st)
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := def{synthDef("T1")}
	job := NewJob(sc)
	r := &Runner{Cache: cache}
	if _, err := r.RunOne(context.Background(), job); err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected exactly one cache entry, got %v (err %v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := &Runner{Cache: cache}
	res, err := r2.RunOne(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats after corruption = %+v, want a self-healing miss", st)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("re-run after corrupt entry produced no result")
	}
	// The Put on the miss path must have replaced the corrupt entry.
	if _, ok := cache.Get(CacheKey(sc.ID(), mustMerge(t, sc, nil), job.Seed), sc.ID()); !ok {
		t.Fatal("corrupt entry not rewritten after the re-run")
	}
}

func TestOpenCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Fatal("OpenCache(\"\") succeeded")
	}
}

func mustMerge(t *testing.T, s Scenario, over Values) Values {
	t.Helper()
	v, err := s.Params().Merge(over)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
