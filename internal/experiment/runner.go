package experiment

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
)

// Job names one scenario execution: the scenario, parameter overrides (nil
// means pure defaults; partial overrides are merged over them), and the seed.
type Job struct {
	Scenario Scenario
	Params   Values
	Seed     uint64
}

// NewJob is the standard-report job for s: default params, default seed.
func NewJob(s Scenario) Job {
	return Job{Scenario: s, Seed: s.DefaultSeed()}
}

// CacheStats counts a runner's cache traffic. Misses counts scenario
// executions, so with a nil cache every job is a miss. Shared counts
// coalesced calls: concurrent identical jobs that received another caller's
// in-flight result without executing or touching the disk cache themselves.
type CacheStats struct {
	Hits   int64
	Misses int64
	Shared int64
}

// Runner executes jobs — concurrently, deterministically, and optionally
// through a content-addressed result cache. Results land at their job index
// via internal/parallel, so the output slice is bit-identical for any
// Workers value; scenarios promise the same for ScenarioWorkers.
type Runner struct {
	// Workers bounds concurrently-running scenarios (<= 0 means GOMAXPROCS).
	Workers int
	// ScenarioWorkers is the worker hint handed to each scenario's context
	// for its internal sweeps (<= 0 means GOMAXPROCS).
	ScenarioWorkers int
	// Cache, when non-nil, is consulted before and filled after every run.
	Cache *Cache
	// Coalesce, when set, deduplicates concurrent identical jobs: callers
	// whose cache key matches an in-flight execution share its result
	// instead of running the scenario again (or racing on the cache).
	// Results handed to coalesced callers are shared pointers and must be
	// treated as read-only, which is already the package contract.
	Coalesce bool

	hits   atomic.Int64
	misses atomic.Int64
	shared atomic.Int64
	flight flightGroup
}

// Stats returns the cache counters accumulated so far.
func (r *Runner) Stats() CacheStats {
	return CacheStats{Hits: r.hits.Load(), Misses: r.misses.Load(), Shared: r.shared.Load()}
}

// Waiting reports how many coalesced callers are currently parked on
// in-flight executions — a live-load observability signal (and the hook
// that lets tests release a blocked leader only after every concurrent
// caller has joined its flight).
func (r *Runner) Waiting() int { return r.flight.totalWaiters() }

// Run executes every job and returns the results in job order. The first
// failing job (by index) aborts the batch, matching internal/parallel's
// deterministic error contract.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]*Result, error) {
	return parallel.Map(ctx, len(jobs), r.Workers, func(i int) (*Result, error) {
		return r.RunOne(ctx, jobs[i])
	})
}

// RunOne executes one job: merge params against the schema, consult the
// cache, run on a miss, stamp the result's identity fields, and store it.
// With Coalesce set, concurrent calls that resolve to the same cache key
// share one execution.
func (r *Runner) RunOne(ctx context.Context, job Job) (*Result, error) {
	s := job.Scenario
	if s == nil {
		return nil, fmt.Errorf("experiment: job with nil scenario")
	}
	merged, err := s.Params().Merge(job.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.ID(), err)
	}
	key := CacheKey(s.ID(), merged, job.Seed)
	if !r.Coalesce {
		return r.runKeyed(ctx, s, merged, job.Seed, key)
	}
	res, shared, err := r.flight.do(ctx, key, func() (*Result, error) {
		return r.runKeyed(ctx, s, merged, job.Seed, key)
	})
	if shared {
		r.shared.Add(1)
	}
	return res, err
}

// runKeyed is the uncoalesced execution path: cache lookup, scenario run on
// a miss, identity stamping, and write-back.
func (r *Runner) runKeyed(ctx context.Context, s Scenario, merged Values, seed uint64, key string) (*Result, error) {
	if r.Cache != nil {
		if res, ok := r.Cache.Get(key, s.ID()); ok {
			r.hits.Add(1)
			return res, nil
		}
	}
	res, err := s.Run(WithWorkers(ctx, r.ScenarioWorkers), merged, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.ID(), err)
	}
	if res == nil {
		return nil, fmt.Errorf("scenario %s returned no result", s.ID())
	}
	res.ID = s.ID()
	res.Title = s.Title()
	res.Claim = s.Claim()
	res.Seed = seed
	res.Params = merged.Formatted()
	r.misses.Add(1)
	if r.Cache != nil {
		if err := r.Cache.Put(key, res); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.ID(), err)
		}
	}
	return res, nil
}
