package experiment

import "encoding/json"

// jsonTable mirrors Table with formatted cells: consumers get the exact
// strings the Markdown and text renderers print, so every renderer agrees on
// the displayed values byte-for-byte.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// jsonResult mirrors Result for the -json renderer.
type jsonResult struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Claim  string            `json:"claim,omitempty"`
	Seed   uint64            `json:"seed"`
	Params map[string]string `json:"params,omitempty"`
	Tables []jsonTable       `json:"tables"`
}

// jsonResultOf converts one Result to its formatted-cell JSON mirror.
func jsonResultOf(res *Result) jsonResult {
	jr := jsonResult{
		ID:     res.ID,
		Title:  res.Title,
		Claim:  res.Claim,
		Seed:   res.Seed,
		Params: res.Params,
		Tables: make([]jsonTable, len(res.Tables)),
	}
	for ti, t := range res.Tables {
		jt := jsonTable{
			ID:      t.ID,
			Title:   t.Title,
			Columns: t.Columns,
			Rows:    make([][]string, len(t.Rows)),
		}
		for ri, row := range t.Rows {
			cells := make([]string, len(row))
			for ci, c := range row {
				cells[ci] = c.Format()
			}
			jt.Rows[ri] = cells
		}
		jr.Tables[ti] = jt
	}
	return jr
}

// RenderJSON renders results as indented JSON with formatted cell strings.
// encoding/json sorts map keys, so equal results render to equal bytes.
func RenderJSON(results []*Result) ([]byte, error) {
	out := make([]jsonResult, len(results))
	for i, res := range results {
		out[i] = jsonResultOf(res)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RenderOneJSON renders a single result as an indented JSON object — the
// body humnetd's /run endpoint serves. Equal Results render to equal bytes,
// which is what makes served responses byte-identical across runs.
func RenderOneJSON(res *Result) ([]byte, error) {
	data, err := json.MarshalIndent(jsonResultOf(res), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
