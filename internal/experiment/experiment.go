// Package experiment makes the repository's measured experiments (E1–E16
// and the auxiliary CLI scenarios) first-class data instead of main-function
// prose: a Scenario is a named, self-describing, deterministic computation
// from (Params, seed) to a Result of typed tables, registered once by its
// owning domain package and resolved by ID everywhere else.
//
// The package provides four layers:
//
//   - Scenario / Def: the runnable-scenario contract. A scenario declares a
//     typed parameter schema (Schema) with defaults and validation, a default
//     seed, and a Run function producing a *Result. Domain packages register
//     their scenarios in init() via Register, so any binary that links the
//     package can resolve them by ID.
//   - Result / Table / Cell: the deterministic output model. Tables carry
//     ordered columns and rows of typed cells (string, int, float with a fixed
//     precision), so every renderer — Markdown, JSON, aligned text — produces
//     byte-identical output for equal Results, and Results survive a JSON
//     round-trip (the cache) bit-exactly.
//   - Registry: ordered, duplicate-rejecting scenario lookup. E-numbered
//     scenarios sort numerically (E2 before E10); auxiliary scenarios sort
//     after them by name and are excluded from the standard report.
//   - Runner + Cache: the batch executor. Scenarios fan out over
//     internal/parallel (results land at their job index, so output is
//     bit-identical for any worker count) with an optional content-addressed
//     on-disk cache keyed by hash(scenario ID, canonical params, seed, module
//     version); a warm re-run of an unchanged report skips scenario execution
//     entirely.
//
// Determinism contract: Run must be a pure function of (Params, seed) plus
// the worker hint carried by the context — never of worker count, wall-clock
// time, map iteration order, or global mutable state. The humnetlint rules
// (wildrand, rangemap, paraccum) enforce this mechanically; the property
// suite in prop_test.go checks it dynamically.
package experiment

import (
	"context"
	"fmt"
)

// Scenario is one registered experiment: a named, claim-bearing,
// deterministic computation from (Params, seed) to a Result.
type Scenario interface {
	// ID is the registry key, e.g. "E14" or "cn-topology".
	ID() string
	// Title is the human-readable experiment name.
	Title() string
	// Claim is the one-line paper claim the experiment measures.
	Claim() string
	// Params describes the accepted parameters with defaults.
	Params() Schema
	// DefaultSeed is the seed the standard report runs with.
	DefaultSeed() uint64
	// Run executes the scenario. p has been validated against Params and
	// filled with defaults; the context may carry a worker hint
	// (WorkersFrom) for internal sweeps, which must not change the output.
	Run(ctx context.Context, p Values, seed uint64) (*Result, error)
}

// Def is the declarative form of a Scenario that domain packages register.
type Def struct {
	ID    string
	Title string
	// Claim is the paper claim the experiment reproduces in shape.
	Claim string
	// Seed is the default seed used by the standard report.
	Seed uint64
	// Aux marks auxiliary scenarios (CLI-only studies) that are resolvable
	// by ID but excluded from the standard report.
	Aux    bool
	Params Schema
	Run    func(ctx context.Context, p Values, seed uint64) (*Result, error)
}

// validate reports why the definition is unusable, or nil.
func (d Def) validate() error {
	if d.ID == "" {
		return fmt.Errorf("experiment: Def with empty ID (title %q)", d.Title)
	}
	if d.Run == nil {
		return fmt.Errorf("experiment: scenario %s has no Run function", d.ID)
	}
	return d.Params.validate(d.ID)
}

// def adapts a Def to the Scenario interface.
type def struct{ d Def }

func (s def) ID() string    { return s.d.ID }
func (s def) Title() string { return s.d.Title }
func (s def) Claim() string { return s.d.Claim }

// Params returns a copy of the schema: callers (renderers, CLI listing)
// must not be able to reorder or edit the registered parameter specs.
func (s def) Params() Schema      { return append(s.d.Params[:0:0], s.d.Params...) }
func (s def) DefaultSeed() uint64 { return s.d.Seed }
func (s def) Run(ctx context.Context, p Values, seed uint64) (*Result, error) {
	return s.d.Run(ctx, p, seed)
}

// workersKey carries the per-scenario worker hint through contexts.
type workersKey struct{}

// WithWorkers returns a context carrying a worker-count hint for scenario
// internals (sweeps fan out over internal/parallel). The hint bounds
// goroutines only; scenario output is bit-identical for any value.
func WithWorkers(ctx context.Context, workers int) context.Context {
	return context.WithValue(ctx, workersKey{}, workers)
}

// WorkersFrom extracts the worker hint, or 0 (meaning GOMAXPROCS) when the
// context carries none.
func WorkersFrom(ctx context.Context) int {
	if v, ok := ctx.Value(workersKey{}).(int); ok {
		return v
	}
	return 0
}
