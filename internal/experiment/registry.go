package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Registry is an ordered, duplicate-rejecting collection of scenarios.
// Domain packages register into the package-level Default registry from
// init(); tests construct their own.
type Registry struct {
	mu   sync.Mutex
	defs map[string]Def
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]Def)}
}

// Register validates d and adds it, returning an error on an invalid
// definition or a duplicate ID.
func (r *Registry) Register(d Def) error {
	if err := d.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[d.ID]; dup {
		return fmt.Errorf("experiment: scenario %s registered twice", d.ID)
	}
	r.defs[d.ID] = d
	return nil
}

// MustRegister is Register for init() use: a bad definition is a programming
// error, so it panics.
func (r *Registry) MustRegister(d Def) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Get resolves a scenario by ID.
func (r *Registry) Get(id string) (Scenario, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.defs[id]
	if !ok {
		return nil, false
	}
	return def{d}, true
}

// IsAux reports whether id names a registered auxiliary scenario.
func (r *Registry) IsAux(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.defs[id]
	return ok && d.Aux
}

// All returns every registered scenario in registry order: E-numbered IDs
// first, numerically (E2 before E10, suffixes break ties), then everything
// else alphabetically.
func (r *Registry) All() []Scenario {
	r.mu.Lock()
	ds := make([]Def, 0, len(r.defs))
	for _, d := range r.defs {
		ds = append(ds, d)
	}
	r.mu.Unlock()
	sort.Slice(ds, func(i, j int) bool { return idLess(ds[i].ID, ds[j].ID) })
	out := make([]Scenario, len(ds))
	for i, d := range ds {
		out[i] = def{d}
	}
	return out
}

// Report returns the non-auxiliary scenarios in registry order — the set the
// standard report renders.
func (r *Registry) Report() []Scenario {
	all := r.All()
	out := all[:0]
	for _, s := range all {
		if !r.IsAux(s.ID()) {
			out = append(out, s)
		}
	}
	return out
}

// idKey decomposes an ID for ordering: E-numbered scenarios sort before
// auxiliary ones and among themselves by number then suffix.
func idKey(id string) (group int, num int, rest string) {
	if len(id) > 1 && id[0] == 'E' {
		i := 1
		for i < len(id) && id[i] >= '0' && id[i] <= '9' {
			i++
		}
		if i > 1 {
			n, err := strconv.Atoi(id[1:i])
			if err == nil {
				return 0, n, id[i:]
			}
		}
	}
	return 1, 0, id
}

// idLess is the registry ordering over scenario IDs.
func idLess(a, b string) bool {
	ga, na, ra := idKey(a)
	gb, nb, rb := idKey(b)
	if ga != gb {
		return ga < gb
	}
	if na != nb {
		return na < nb
	}
	return ra < rb
}

// Default is the process-wide registry that domain packages register into.
var Default = NewRegistry()

// Register adds d to the Default registry, panicking on an invalid
// definition or duplicate ID — both are init-time programming errors.
func Register(d Def) { Default.MustRegister(d) }

// Get resolves id in the Default registry.
func Get(id string) (Scenario, bool) { return Default.Get(id) }

// All lists the Default registry in registry order.
func All() []Scenario { return Default.All() }

// Report lists the Default registry's non-auxiliary scenarios.
func Report() []Scenario { return Default.Report() }
