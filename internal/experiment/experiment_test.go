package experiment

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

// synthDef returns a cheap, fully deterministic scenario for harness tests:
// its single table is a pure function of (params, seed), so two runs agree
// bit-exactly and different inputs disagree.
func synthDef(id string) Def {
	return Def{
		ID:    id,
		Title: "synthetic " + id,
		Claim: "harness test scenario",
		Seed:  7,
		Params: Schema{
			{Name: "rows", Kind: Int, Default: 4, Doc: "table rows"},
			{Name: "scale", Kind: Float, Default: 1.5, Doc: "value scale"},
			{Name: "label", Kind: String, Default: "x", Doc: "row label"},
		},
		Run: func(ctx context.Context, p Values, seed uint64) (*Result, error) {
			res := &Result{}
			tb := res.AddTable(id, "synthetic", "label", "n", "value")
			r := rng.New(seed)
			for i := 0; i < p.Int("rows"); i++ {
				tb.AddRow(
					S(fmt.Sprintf("%s%d", p.String("label"), i)),
					I(i),
					F3(p.Float("scale")*r.Float64()),
				)
			}
			return res, nil
		},
	}
}

func TestRegistryRejectsDuplicatesAndInvalidDefs(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(synthDef("T1")); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := r.Register(synthDef("T1")); err == nil {
		t.Fatal("duplicate ID registered without error")
	}
	if err := r.Register(Def{Title: "no id", Run: synthDef("x").Run}); err == nil {
		t.Fatal("empty-ID Def registered without error")
	}
	if err := r.Register(Def{ID: "T2"}); err == nil {
		t.Fatal("Run-less Def registered without error")
	}
	bad := synthDef("T3")
	bad.Params = append(Schema{}, bad.Params...)
	bad.Params[0].Default = "four" // Int spec with a string default
	if err := r.Register(bad); err == nil {
		t.Fatal("Def with mistyped param default registered without error")
	}
}

func TestRegistryOrdering(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of order; All must sort E-numbered IDs
	// numerically (E2 before E10), suffixes as tie-breaks, and auxiliary
	// names after all E-numbers, alphabetically.
	for _, id := range []string{"zz-aux", "E10", "E2b", "E1", "E2", "aa-aux"} {
		d := synthDef(id)
		if id == "zz-aux" || id == "aa-aux" {
			d.Aux = true
		}
		if err := r.Register(d); err != nil {
			t.Fatalf("Register(%s): %v", id, err)
		}
	}
	var got []string
	for _, s := range r.All() {
		got = append(got, s.ID())
	}
	want := []string{"E1", "E2", "E2b", "E10", "aa-aux", "zz-aux"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("All() order = %v, want %v", got, want)
	}

	var report []string
	for _, s := range r.Report() {
		report = append(report, s.ID())
	}
	wantReport := []string{"E1", "E2", "E2b", "E10"}
	if strings.Join(report, ",") != strings.Join(wantReport, ",") {
		t.Fatalf("Report() = %v, want %v (aux scenarios must be excluded)", report, wantReport)
	}
	if !r.IsAux("zz-aux") || r.IsAux("E1") {
		t.Fatal("IsAux misclassifies scenarios")
	}
}

func TestDefaultRegistryHasUniqueOrderedIDs(t *testing.T) {
	// The Default registry enforces uniqueness at Register time; here we
	// check the ordering invariant over whatever the linked packages added.
	all := All()
	for i := 1; i < len(all); i++ {
		if !idLess(all[i-1].ID(), all[i].ID()) {
			t.Fatalf("All() not strictly ordered: %q before %q", all[i-1].ID(), all[i].ID())
		}
	}
}

func TestSchemaValidateRejectsUnknownAndMistyped(t *testing.T) {
	sch := synthDef("T").Params

	if err := sch.Validate(Values{"rows": 3}); err != nil {
		t.Fatalf("valid override rejected: %v", err)
	}
	if err := sch.Validate(Values{"bogus": 1}); err == nil {
		t.Fatal("unknown param accepted")
	}
	if err := sch.Validate(Values{"rows": "three"}); err == nil {
		t.Fatal("string value accepted for Int param")
	}
	if err := sch.Validate(Values{"scale": 2}); err == nil {
		t.Fatal("int value accepted for Float param")
	}

	merged, err := sch.Merge(Values{"rows": 2})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if merged.Int("rows") != 2 || merged.Float("scale") != 1.5 || merged.String("label") != "x" {
		t.Fatalf("Merge did not overlay defaults correctly: %v", merged)
	}
}

func TestValuesCanonicalIsSorted(t *testing.T) {
	v := Values{"b": 2, "a": 1.5, "c": "z"}
	want := "1:a=3:1.5\n1:b=1:2\n1:c=1:z\n"
	if got := v.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}

func TestSpecParseRoundTrips(t *testing.T) {
	cases := []struct {
		spec Spec
		text string
		want any
	}{
		{Spec{Name: "i", Kind: Int, Default: 0}, "-3", -3},
		{Spec{Name: "u", Kind: Uint, Default: uint64(0)}, "9", uint64(9)},
		{Spec{Name: "f", Kind: Float, Default: 0.0}, "0.25", 0.25},
		{Spec{Name: "b", Kind: Bool, Default: false}, "true", true},
		{Spec{Name: "s", Kind: String, Default: ""}, "hi", "hi"},
	}
	for _, c := range cases {
		got, err := c.spec.Parse(c.text)
		if err != nil {
			t.Fatalf("Parse(%q) as %s: %v", c.text, c.spec.Kind, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) as %s = %v, want %v", c.text, c.spec.Kind, got, c.want)
		}
		if back := FormatValue(got); back != c.text {
			t.Fatalf("FormatValue(%v) = %q, want round-trip %q", got, back, c.text)
		}
	}
	if _, err := (Spec{Name: "i", Kind: Int, Default: 0}).Parse("x"); err == nil {
		t.Fatal("Parse accepted garbage int")
	}
}

func TestRunnerStampsIdentityAndOrder(t *testing.T) {
	jobs := []Job{
		{Scenario: def{synthDef("T2")}, Seed: 11},
		{Scenario: def{synthDef("T1")}, Params: Values{"rows": 2}, Seed: 5},
	}
	r := &Runner{Workers: 2}
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 2 || results[0].ID != "T2" || results[1].ID != "T1" {
		t.Fatalf("results not in job order: %+v", results)
	}
	res := results[1]
	if res.Title != "synthetic T1" || res.Claim == "" || res.Seed != 5 {
		t.Fatalf("identity fields not stamped: %+v", res)
	}
	if res.Params["rows"] != "2" || res.Params["scale"] != "1.5" || res.Params["label"] != "x" {
		t.Fatalf("params not recorded as formatted defaults+overrides: %v", res.Params)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", res.Tables)
	}
}

func TestRunnerErrors(t *testing.T) {
	boom := Def{
		ID: "boom", Title: "boom", Seed: 1,
		Run: func(context.Context, Values, uint64) (*Result, error) {
			return nil, fmt.Errorf("kaboom")
		},
	}
	r := &Runner{}
	if _, err := r.Run(context.Background(), []Job{{Scenario: def{boom}, Seed: 1}}); err == nil {
		t.Fatal("scenario error not propagated")
	}
	if _, err := r.RunOne(context.Background(), Job{}); err == nil {
		t.Fatal("nil scenario accepted")
	}
	if _, err := r.RunOne(context.Background(), Job{
		Scenario: def{synthDef("T")}, Params: Values{"bogus": 1},
	}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestRenderMarkdownShape(t *testing.T) {
	res, err := (&Runner{}).RunOne(context.Background(), NewJob(def{synthDef("T1")}))
	if err != nil {
		t.Fatal(err)
	}
	md := RenderMarkdown([]*Result{res})
	for _, want := range []string{
		"# humnet experiment report",
		"\n## T1 — synthetic\n",
		"| label | n | value |",
		"| --- | --- | --- |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("RenderMarkdown missing %q in:\n%s", want, md)
		}
	}
}

// TestParamsReturnsACopy pins the aliasret remediation: mutating the schema
// a Scenario hands out must not corrupt the registered definition.
func TestParamsReturnsACopy(t *testing.T) {
	s := def{d: synthDef("copy-check")}
	got := s.Params()
	if len(got) == 0 {
		t.Fatal("empty schema")
	}
	got[0].Name = "mutated"
	got[0].Default = -1
	if again := s.Params(); again[0].Name != "rows" || again[0].Default != 4 {
		t.Errorf("registered schema was mutated through the returned copy: %+v", again[0])
	}
}
