// Package all links every experiment scenario into the importing binary.
// Each domain package registers its scenarios in init(), so a blank import
// of this package is how cmd/reportgen (and anything else that wants the
// full registry) pulls in E1–E19 plus the auxiliary scenarios.
package all

import (
	_ "repro/internal/bgpsim"
	_ "repro/internal/biblio"
	_ "repro/internal/cn"
	_ "repro/internal/diary"
	_ "repro/internal/ethno"
	_ "repro/internal/focusgroup"
	_ "repro/internal/ixp"
	_ "repro/internal/par"
	_ "repro/internal/positionality"
	_ "repro/internal/qualcode"
	_ "repro/internal/standards"
	_ "repro/internal/survey"
	_ "repro/internal/timeline"
)
