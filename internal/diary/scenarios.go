package diary

import (
	"context"

	"repro/internal/experiment"
)

// Scenario registration for E12: diary studies triangulated with technology
// probes, under daily and signal-contingent prompting.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E12",
		Title: "Diaries + technology probes",
		Claim: "Probes and diaries cover complementary slices of ground truth; signal-contingent prompting slows compliance decay, and non-instrumentable activities reach the record only through diaries.",
		Seed:  1,
		Params: experiment.Schema{
			{Name: "days", Kind: experiment.Int, Default: 42, Doc: "study length in days"},
			{Name: "participants", Kind: experiment.Int, Default: 24, Doc: "study participants"},
			{Name: "base-adherence", Kind: experiment.Float, Default: 0.9, Doc: "day-1 probability of writing when prompted"},
			{Name: "adherence-decay", Kind: experiment.Float, Default: 0.97, Doc: "per-day multiplicative compliance decay"},
			{Name: "prompt-boost", Kind: experiment.Float, Default: 1.25, Doc: "adherence multiplier on signal-contingent prompted days"},
		},
		Run: runE12,
	})
}

// runE12 simulates both prompting regimes and reconciles each against
// ground truth.
func runE12(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	cfg := DefaultConfig()
	cfg.Days = p.Int("days")
	cfg.Participants = p.Int("participants")
	cfg.BaseAdherence = p.Float("base-adherence")
	cfg.AdherenceDecay = p.Float("adherence-decay")
	cfg.PromptBoost = p.Float("prompt-boost")
	cfg.Seed = seed

	res := &experiment.Result{}
	t := res.AddTable("E12", "Diaries + technology probes",
		"prompting", "diary-cov", "probe-cov", "combined", "human-only-via-diary")
	for _, prompting := range []struct {
		name string
		mode Prompting
	}{{"daily", DailyPrompt}, {"signal-contingent", SignalContingent}} {
		c := cfg
		c.Prompting = prompting.mode
		ds, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		cov := Reconcile(c, ds)
		t.AddRow(experiment.S(prompting.name), experiment.F3(cov.DiaryOnly), experiment.F3(cov.ProbeOnly),
			experiment.F3(cov.Combined), experiment.F3(cov.NonInstrumentableDiary))
	}
	return res, nil
}
