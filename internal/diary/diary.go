// Package diary implements the diary-study and technology-probe methods the
// paper's §6.1 points to ("analyzing user diaries and technology probes to
// recreate and understand user interactions", ref [7]): participants keep
// self-reported diaries with realistic compliance decay and recall noise,
// instrumented probes log a subset of activity kinds objectively, and a
// reconciliation pass measures how much of the ground-truth experience each
// source — and their combination — recovers.
//
// The package also models prompting strategies: fixed daily prompts versus
// signal-contingent prompts triggered by probe events, the standard
// experience-sampling refinement.
package diary

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Activity is one kind of network experience a participant can have.
type Activity struct {
	Kind string
	// DailyProb is the chance a participant experiences it on a given day.
	DailyProb float64
	// Instrumentable marks whether a technology probe can observe it
	// (outages and app usage are; frustration and workarounds are not).
	Instrumentable bool
	// Salience is the chance the participant remembers to report it in a
	// diary entry they do write.
	Salience float64
}

// DefaultActivities returns the activity mix used by the experiment: a mix
// of probe-visible events and human-only experiences.
func DefaultActivities() []Activity {
	return []Activity{
		{Kind: "video-call-failure", DailyProb: 0.15, Instrumentable: true, Salience: 0.9},
		{Kind: "streaming-buffering", DailyProb: 0.25, Instrumentable: true, Salience: 0.5},
		{Kind: "hotspot-workaround", DailyProb: 0.10, Instrumentable: false, Salience: 0.8},
		{Kind: "gave-up-on-task", DailyProb: 0.12, Instrumentable: false, Salience: 0.7},
		{Kind: "late-night-upload", DailyProb: 0.08, Instrumentable: true, Salience: 0.3},
	}
}

// Prompting selects how participants are reminded to write.
type Prompting int

// Prompting strategies.
const (
	// DailyPrompt reminds everyone every day.
	DailyPrompt Prompting = iota
	// SignalContingent prompts only on days the participant's probe fired,
	// concentrating effort on eventful days.
	SignalContingent
)

// String returns the strategy name.
func (p Prompting) String() string {
	if p == SignalContingent {
		return "signal-contingent"
	}
	return "daily"
}

// Entry is one diary record: the activities the participant reported.
type Entry struct {
	Participant int
	Day         int
	Reported    []string
}

// ProbeEvent is one objective log record.
type ProbeEvent struct {
	Participant int
	Day         int
	Kind        string
}

// Config parameterizes a diary study simulation.
type Config struct {
	Participants int
	Days         int
	Activities   []Activity
	// BaseAdherence is the day-1 probability of writing when prompted.
	BaseAdherence float64
	// AdherenceDecay is the per-day multiplicative compliance decay — the
	// classic diary-study failure mode.
	AdherenceDecay float64
	// PromptBoost multiplies adherence on prompted days under
	// SignalContingent (prompts feel relevant, so compliance is higher).
	PromptBoost float64
	Prompting   Prompting
	Seed        uint64
}

// DefaultConfig returns the configuration used by tests and the harness.
func DefaultConfig() Config {
	return Config{
		Participants:   24,
		Days:           28,
		Activities:     DefaultActivities(),
		BaseAdherence:  0.9,
		AdherenceDecay: 0.97,
		PromptBoost:    1.25,
		Prompting:      DailyPrompt,
		Seed:           1,
	}
}

// Dataset is the simulated study output plus its ground truth.
type Dataset struct {
	Entries []Entry
	Probes  []ProbeEvent
	// Truth[(participant,day)] = set of activity kinds experienced.
	Truth map[[2]int]map[string]bool
}

// Simulate runs the study: each day each participant experiences
// activities, probes log the instrumentable ones, and the participant may
// write a diary entry subject to compliance and recall.
func Simulate(cfg Config) (*Dataset, error) {
	if cfg.Participants <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("diary: need participants and days")
	}
	if len(cfg.Activities) == 0 {
		cfg.Activities = DefaultActivities()
	}
	r := rng.New(cfg.Seed)
	ds := &Dataset{Truth: make(map[[2]int]map[string]bool)}
	for p := 0; p < cfg.Participants; p++ {
		adherence := cfg.BaseAdherence
		for d := 0; d < cfg.Days; d++ {
			key := [2]int{p, d}
			experienced := make(map[string]bool)
			probeFired := false
			for _, a := range cfg.Activities {
				if !r.Bool(a.DailyProb) {
					continue
				}
				experienced[a.Kind] = true
				if a.Instrumentable {
					ds.Probes = append(ds.Probes, ProbeEvent{Participant: p, Day: d, Kind: a.Kind})
					probeFired = true
				}
			}
			if len(experienced) > 0 {
				ds.Truth[key] = experienced
			}
			// Write a diary entry?
			prompted := cfg.Prompting == DailyPrompt || (cfg.Prompting == SignalContingent && probeFired)
			if prompted {
				writeProb := adherence
				if cfg.Prompting == SignalContingent {
					writeProb *= cfg.PromptBoost
					if writeProb > 1 {
						writeProb = 1
					}
				}
				if r.Bool(writeProb) {
					var reported []string
					for _, a := range cfg.Activities {
						if experienced[a.Kind] && r.Bool(a.Salience) {
							reported = append(reported, a.Kind)
						}
					}
					sort.Strings(reported)
					ds.Entries = append(ds.Entries, Entry{Participant: p, Day: d, Reported: reported})
				}
			}
			adherence *= cfg.AdherenceDecay
		}
	}
	return ds, nil
}

// Coverage reports what fraction of ground-truth (participant, day,
// activity) triples a source recovered.
type Coverage struct {
	DiaryOnly float64
	ProbeOnly float64
	Combined  float64
	// NonInstrumentable restricts coverage to activities probes cannot
	// see — where diaries are the only instrument.
	NonInstrumentableDiary float64
	// TruthTriples is the ground-truth denominator.
	TruthTriples int
}

// Reconcile computes coverage of the ground truth by diaries, probes, and
// their union — the "recreate and understand user interactions" measure.
func Reconcile(cfg Config, ds *Dataset) Coverage {
	instr := make(map[string]bool, len(cfg.Activities))
	for _, a := range cfg.Activities {
		instr[a.Kind] = a.Instrumentable
	}
	diary := make(map[[2]int]map[string]bool)
	for _, e := range ds.Entries {
		key := [2]int{e.Participant, e.Day}
		m, ok := diary[key]
		if !ok {
			m = make(map[string]bool)
			diary[key] = m
		}
		for _, k := range e.Reported {
			m[k] = true
		}
	}
	probe := make(map[[2]int]map[string]bool)
	for _, e := range ds.Probes {
		key := [2]int{e.Participant, e.Day}
		m, ok := probe[key]
		if !ok {
			m = make(map[string]bool)
			probe[key] = m
		}
		m[e.Kind] = true
	}

	var total, dHit, pHit, cHit float64
	var niTotal, niDiary float64
	for key, kinds := range ds.Truth {
		for k := range kinds {
			total++
			d := diary[key][k]
			p := probe[key][k]
			if d {
				dHit++
			}
			if p {
				pHit++
			}
			if d || p {
				cHit++
			}
			if !instr[k] {
				niTotal++
				if d {
					niDiary++
				}
			}
		}
	}
	cov := Coverage{TruthTriples: int(total)}
	if total > 0 {
		cov.DiaryOnly = dHit / total
		cov.ProbeOnly = pHit / total
		cov.Combined = cHit / total
	}
	if niTotal > 0 {
		cov.NonInstrumentableDiary = niDiary / niTotal
	}
	return cov
}

// WeeklyDiaryCoverage returns per-week diary coverage of ground truth,
// exposing compliance decay.
func WeeklyDiaryCoverage(cfg Config, ds *Dataset) []float64 {
	weeks := (cfg.Days + 6) / 7
	hit := make([]float64, weeks)
	total := make([]float64, weeks)
	diary := make(map[[2]int]map[string]bool)
	for _, e := range ds.Entries {
		key := [2]int{e.Participant, e.Day}
		m, ok := diary[key]
		if !ok {
			m = make(map[string]bool)
			diary[key] = m
		}
		for _, k := range e.Reported {
			m[k] = true
		}
	}
	for key, kinds := range ds.Truth {
		w := key[1] / 7
		for k := range kinds {
			total[w]++
			if diary[key][k] {
				hit[w]++
			}
		}
	}
	out := make([]float64, weeks)
	for w := range out {
		if total[w] > 0 {
			out[w] = hit[w] / total[w]
		}
	}
	return out
}
