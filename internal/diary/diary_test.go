package diary

import (
	"testing"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestSimulateShape(t *testing.T) {
	ds, err := Simulate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) == 0 || len(ds.Probes) == 0 || len(ds.Truth) == 0 {
		t.Fatalf("degenerate dataset: %d entries, %d probes, %d truth days",
			len(ds.Entries), len(ds.Probes), len(ds.Truth))
	}
	cfg := DefaultConfig()
	for _, e := range ds.Entries {
		if e.Participant < 0 || e.Participant >= cfg.Participants || e.Day < 0 || e.Day >= cfg.Days {
			t.Fatalf("entry out of range: %+v", e)
		}
	}
}

func TestProbesOnlyLogInstrumentable(t *testing.T) {
	cfg := DefaultConfig()
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instr := map[string]bool{}
	for _, a := range cfg.Activities {
		instr[a.Kind] = a.Instrumentable
	}
	for _, p := range ds.Probes {
		if !instr[p.Kind] {
			t.Fatalf("probe logged non-instrumentable %q", p.Kind)
		}
	}
}

func TestDiaryEntriesOnlyReportExperienced(t *testing.T) {
	cfg := DefaultConfig()
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Entries {
		truth := ds.Truth[[2]int{e.Participant, e.Day}]
		for _, k := range e.Reported {
			if !truth[k] {
				t.Fatalf("participant %d reported unexperienced %q on day %d", e.Participant, k, e.Day)
			}
		}
	}
}

func TestReconcileCombinedBeatsEither(t *testing.T) {
	cfg := DefaultConfig()
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := Reconcile(cfg, ds)
	if cov.TruthTriples == 0 {
		t.Fatal("no ground truth")
	}
	// The ref-[7] claim: combining diaries and probes recreates more of the
	// experience than either source alone.
	if !(cov.Combined > cov.DiaryOnly && cov.Combined > cov.ProbeOnly) {
		t.Errorf("combined %g should beat diary %g and probe %g",
			cov.Combined, cov.DiaryOnly, cov.ProbeOnly)
	}
	// Probes see nothing of the human-only experiences; diaries do.
	if !(cov.NonInstrumentableDiary > 0.3) {
		t.Errorf("diary coverage of non-instrumentable = %g, want substantial", cov.NonInstrumentableDiary)
	}
	// Probes are perfect on what they can see, so probe coverage equals the
	// instrumentable share of truth (roughly): sanity bounds.
	if cov.ProbeOnly <= 0.3 || cov.ProbeOnly >= 0.9 {
		t.Errorf("probe coverage = %g out of expected band", cov.ProbeOnly)
	}
}

func TestComplianceDecayShowsInWeeklyCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 56
	cfg.AdherenceDecay = 0.93
	ds, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	weekly := WeeklyDiaryCoverage(cfg, ds)
	if len(weekly) != 8 {
		t.Fatalf("weeks = %d", len(weekly))
	}
	if !(weekly[len(weekly)-1] < weekly[0]) {
		t.Errorf("coverage did not decay: week1 %g vs last %g", weekly[0], weekly[len(weekly)-1])
	}
}

func TestSignalContingentConcentratesOnEventfulDays(t *testing.T) {
	base := DefaultConfig()
	base.Days = 42
	base.AdherenceDecay = 0.95

	daily := base
	daily.Prompting = DailyPrompt
	dsDaily, err := Simulate(daily)
	if err != nil {
		t.Fatal(err)
	}

	sc := base
	sc.Prompting = SignalContingent
	dsSC, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Signal-contingent writes fewer entries (only probe-fired days)...
	if !(len(dsSC.Entries) < len(dsDaily.Entries)) {
		t.Errorf("signal-contingent entries %d should be fewer than daily %d",
			len(dsSC.Entries), len(dsDaily.Entries))
	}
	// ...but each entry is at least as informative on average (eventful
	// days + prompt boost): reported activities per entry.
	perEntry := func(ds *Dataset) float64 {
		if len(ds.Entries) == 0 {
			return 0
		}
		n := 0
		for _, e := range ds.Entries {
			n += len(e.Reported)
		}
		return float64(n) / float64(len(ds.Entries))
	}
	if !(perEntry(dsSC) >= perEntry(dsDaily)) {
		t.Errorf("signal-contingent yield/entry %g should match or beat daily %g",
			perEntry(dsSC), perEntry(dsDaily))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(DefaultConfig())
	b, _ := Simulate(DefaultConfig())
	if len(a.Entries) != len(b.Entries) || len(a.Probes) != len(b.Probes) {
		t.Fatal("nondeterministic dataset sizes")
	}
	for i := range a.Entries {
		if a.Entries[i].Participant != b.Entries[i].Participant || a.Entries[i].Day != b.Entries[i].Day {
			t.Fatal("nondeterministic entries")
		}
	}
}

func TestPromptingString(t *testing.T) {
	if DailyPrompt.String() != "daily" || SignalContingent.String() != "signal-contingent" {
		t.Error("prompting strings wrong")
	}
}

func BenchmarkSimulateReconcile(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		ds, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = Reconcile(cfg, ds)
	}
}
