package analysis

import (
	"path/filepath"
	"testing"
)

// fixtureBasenames lists the base names of the files the loader picked up.
func fixtureBasenames(t *testing.T, opts LoadOpts) map[string]bool {
	t.Helper()
	_, pkg := loadFixturePkg(t, "atomicmix", opts)
	out := make(map[string]bool, len(pkg.Filenames))
	for _, f := range pkg.Filenames {
		out[filepath.Base(f)] = true
	}
	return out
}

func TestLoaderExcludesTestFilesByDefault(t *testing.T) {
	names := fixtureBasenames(t, LoadOpts{})
	if names["plain_test.go"] {
		t.Error("default load picked up plain_test.go")
	}
	for _, want := range []string{"hit.go", "miss.go", "suppress.go"} {
		if !names[want] {
			t.Errorf("default load missing %s (got %v)", want, names)
		}
	}
}

func TestLoaderIncludeTestsAddsInPackageTestFiles(t *testing.T) {
	names := fixtureBasenames(t, LoadOpts{IncludeTests: true})
	if !names["plain_test.go"] {
		t.Errorf("IncludeTests load missing plain_test.go (got %v)", names)
	}
}

// TestLoaderIncludeTestsModuleWide loads the real module with test files and
// checks the analysis package itself gained its _test.go files — the
// whole-module path the humnetlint -tests flag takes.
func TestLoaderIncludeTestsModuleWide(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoaderOpts(root, LoadOpts{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/internal/parallel")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range pkg.Filenames {
		if filepath.Base(f) == "parallel_test.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("IncludeTests module load did not pick up parallel_test.go: %v", pkg.Filenames)
	}
}
