package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AliasRet enforces the copy contract documented on RoutingTables.Route:
// an exported function or method must not return a slice or map that aliases
// unexported mutable state (a receiver's unexported field or an unexported
// package-level variable), because the caller can then mutate internals —
// or observe later internal mutation — without any visible write. The check
// follows one level of helper calls through the interprocedural summaries:
// an exported wrapper returning a private helper's alias is flagged at the
// wrapper. Returns that alias the caller's own parameters are fine (the
// memory was theirs already), as are provably fresh values (composite
// literals, make, append onto a fresh base).
//
// Slice findings whose returned expression is side-effect-free carry a
// suggested fix: return append(E[:0:0], E...) — a copy into a fresh backing
// array that the analyzer itself recognises as fresh, so the fix is
// idempotent by construction.
var AliasRet = &Analyzer{
	Name: "aliasret",
	Doc:  "exported functions must not return aliases of unexported mutable state; return a copy",
	Run:  runAliasRet,
}

func runAliasRet(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkAliasReturns(pass, fd, fn)
		}
	}
}

func checkAliasReturns(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pass.Pkg.Info.ObjectOf(fd.Recv.List[0].Names[0])
	}
	params := paramIndex(pass.Pkg, fd)
	// Only the declaration's own returns: a nested closure's return value is
	// not the exported function's return value.
	walkOwnReturns(fd.Body, func(ret *ast.ReturnStmt) {
		for _, res := range ret.Results {
			t := pass.Pkg.Info.TypeOf(res)
			if t == nil || !isSliceOrMap(t) {
				continue
			}
			for _, src := range aliasSources(pass.Pkg, recvObj, params, res) {
				reportAliasSource(pass, fd, res, t, src)
			}
		}
	})
}

// walkOwnReturns visits the return statements of body, skipping nested
// function literals.
func walkOwnReturns(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(t)
		}
		return true
	})
}

func reportAliasSource(pass *Pass, fd *ast.FuncDecl, res ast.Expr, t types.Type, src string) {
	switch {
	case src == "recv":
		pass.reportAliasWithFix(res, t,
			"exported %s returns %s, an alias of unexported receiver state; callers can mutate internals — return a copy",
			fd.Name.Name, exprString(res))
	case strings.HasPrefix(src, "var."):
		pass.reportAliasWithFix(res, t,
			"exported %s returns %s, an alias of unexported package state; callers can mutate internals — return a copy",
			fd.Name.Name, exprString(res))
	case strings.HasPrefix(src, "call."):
		// One level of helper indirection: resolve the callee's own summary.
		rest := strings.TrimPrefix(src, "call.")
		dot := strings.LastIndex(rest, ".")
		if dot < 0 {
			return
		}
		calleeID, resIdx := rest[:dot], rest[dot+1:]
		sum := pass.Facts.Lookup(calleeID)
		if sum == nil {
			return
		}
		for _, inner := range sum.AliasReturns[resIdx] {
			if inner == "recv" || strings.HasPrefix(inner, "var.") {
				pass.Reportf(res.Pos(),
					"exported %s returns %s, which aliases unexported mutable state inside %s; copy in one of the two layers",
					fd.Name.Name, exprString(res), baseName(calleeID))
				return
			}
		}
	}
	// param.* sources are the caller's own memory: not hidden state.
}

// reportAliasWithFix reports a direct aliasing return, attaching the
// copy-on-return fix when it is safe: the result is a slice (append works)
// and the expression is side-effect-free (it appears twice in the rewrite).
func (p *Pass) reportAliasWithFix(res ast.Expr, t types.Type, format string, args ...interface{}) {
	var fix *SuggestedFix
	if _, isSlice := t.Underlying().(*types.Slice); isSlice && sideEffectFree(res) {
		src := exprString(res)
		fix = &SuggestedFix{
			Message: "copy on return: append(" + src + "[:0:0], " + src + "...)",
			Edits: []TextEdit{{
				Start: p.offsetOf(res.Pos()),
				End:   p.offsetOf(res.End()),
				New:   "append(" + src + "[:0:0], " + src + "...)",
			}},
		}
	}
	p.ReportFixf(res.Pos(), fix, format, args...)
}

// offsetOf maps a token position to its byte offset in its file.
func (p *Pass) offsetOf(pos token.Pos) int {
	return p.Fset.Position(pos).Offset
}

// sideEffectFree reports whether e can be duplicated safely: identifier,
// selector, deref, and index chains over other side-effect-free expressions.
func sideEffectFree(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return sideEffectFree(t.X)
	case *ast.SelectorExpr:
		return sideEffectFree(t.X)
	case *ast.StarExpr:
		return sideEffectFree(t.X)
	case *ast.IndexExpr:
		return sideEffectFree(t.X) && sideEffectFree(t.Index)
	}
	return false
}
