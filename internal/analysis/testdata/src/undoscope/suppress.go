package undoscopefix

// Seed initialises a fresh engine before any undo log exists; the write is
// outside the recording path by design.
func Seed(e *engine) {
	//humnet:allow undoscope -- fixture: pre-log initialisation of a freshly built engine
	e.count = 42
}
