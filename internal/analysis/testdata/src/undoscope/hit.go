// Package undoscopefix exercises the undoscope analyzer against a miniature
// state machine: engine is the protected state, Apply/Revert are the
// recording roots (see the fixture config in fixtures_test.go).
package undoscopefix

// engine is the protected state type.
type engine struct {
	vals  []int
	m     map[string]int
	count int
}

// Rogue writes protected state but is not reachable from any root: the
// mutation bypasses undo recording.
func Rogue(e *engine) {
	e.vals[0] = 1 // want "mutates engine state outside the undo-recorded path"
}

// Bump mutates through IncDec.
func Bump(e *engine) {
	e.count++ // want "mutates engine state outside the undo-recorded path"
}

// Drop mutates through the delete builtin.
func Drop(e *engine, k string) {
	delete(e.m, k) // want "mutates engine state outside the undo-recorded path"
}

// Overwrite mutates through the copy builtin.
func Overwrite(e *engine, src []int) {
	copy(e.vals, src) // want "mutates engine state outside the undo-recorded path"
}
