package undoscopefix

// Apply is a recording root: its writes are undo-logged by construction.
func Apply(e *engine, v int) {
	e.vals = append(e.vals, v)
	record(e, v)
}

// Revert is the other root.
func Revert(e *engine) {
	e.count = 0
}

// record is reachable from Apply over the static call graph, so its writes
// ride the recording path.
func record(e *engine, v int) {
	e.count++
	e.m["last"] = v
}

// scratch is unprotected: writes to it are free anywhere.
type scratch struct {
	tmp []int
}

// Reset writes only unprotected state.
func Reset(s *scratch) {
	s.tmp = s.tmp[:0]
}

// Rebind only writes bare locals: rebinds are not shared-state mutation.
func Rebind(e *engine) int {
	total := 0
	for _, v := range e.vals {
		total += v
	}
	return total
}
