// Package atomicmixfix exercises the atomicmix analyzer.
package atomicmixfix

import "sync/atomic"

// counter mixes atomic and plain access to the same field.
type counter struct {
	n    int64
	name string
}

// Inc is the atomic side of the race.
func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read is the plain side: it races with Inc.
func (c *counter) Read() int64 {
	return c.n // want "accessed with sync/atomic elsewhere"
}

// Reset writes the field plainly, racing with Inc.
func (c *counter) Reset() {
	c.n = 0 // want "accessed with sync/atomic elsewhere"
}

// hits is a package-level variable touched atomically below.
var hits int64

// CountHit is the atomic side for the package variable.
func CountHit() {
	atomic.AddInt64(&hits, 1)
}

// Hits reads the package variable bare, racing with CountHit.
func Hits() int64 {
	return hits // want "accessed with sync/atomic elsewhere"
}
