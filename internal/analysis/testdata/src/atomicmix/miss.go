package atomicmixfix

import "sync/atomic"

// gauge is accessed atomically everywhere: consistent, so clean.
type gauge struct {
	v int64
}

// Set stores atomically.
func (g *gauge) Set(v int64) {
	atomic.StoreInt64(&g.v, v)
}

// Get loads atomically.
func (g *gauge) Get() int64 {
	return atomic.LoadInt64(&g.v)
}

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct {
	n int64
}

// Bump is single-goroutine arithmetic on a never-atomic field.
func (p *plainOnly) Bump() {
	p.n++
}

// Name reads a non-atomic-operable field of the mixed struct: only the
// atomic field is protected.
func (c *counter) Name() string {
	return c.name
}

// NewCounter initialises via a composite literal: keys are field names, not
// accesses, and initialisation precedes sharing.
func NewCounter(n int64) *counter {
	return &counter{n: n, name: "fixture"}
}
