package atomicmixfix

// assertHits is test-only code that reads the atomically-written package
// variable plainly: invisible without -tests, racy all the same. (The file
// deliberately avoids importing "testing" so the fixture loads through the
// source importer.)
func assertHits(want int64) bool {
	return hits == want // want "accessed with sync/atomic elsewhere"
}
