package atomicmixfix

// Snapshot reads the counter plainly after all writers have joined; the
// happens-before edge is documented where the linter cannot see it.
func (c *counter) Snapshot() int64 {
	//humnet:allow atomicmix -- fixture: called after Wait(), all writers have joined
	return c.n
}
