package rangemapfix

// Malformed suppression comments are findings themselves: a suppression
// without a reason (or naming an unknown rule) must not silently succeed.
func MalformedNoReason(m map[string]int) int {
	n := 0
	for range m {
		//humnet:allow rangemap without the reason separator // want "malformed suppression comment"
		n++
	}
	return n
}

func MalformedUnknownRule() {
	//humnet:allow notarule -- the rule name does not exist // want "suppression names unknown rule"
	_ = 0
}
