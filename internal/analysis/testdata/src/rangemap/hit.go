// Package rangemapfix exercises the rangemap analyzer: positive hits,
// sorted-key negatives, and suppression comments.
package rangemapfix

import (
	"fmt"
	"os"
	"strings"
)

// AppendNoSort leaks map iteration order into the returned slice.
func AppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside iteration over map m"
	}
	return keys
}

// FloatAccum sums floats in map order: the low bits differ run-to-run.
func FloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation into sum"
	}
	return sum
}

// PrintOrder serializes entries in map order to stdout.
func PrintOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output written inside iteration over map m"
	}
}

// FprintOrder serializes entries in map order to an outer writer.
func FprintOrder(m map[string]int, w *os.File) {
	for k := range m {
		fmt.Fprintln(w, k) // want "output written inside iteration over map m"
	}
}

// BuilderOrder bakes map order into an outer builder.
func BuilderOrder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "output written inside iteration over map m"
	}
	return b.String()
}
