package rangemapfix

// Suppressed violations are documented, not silent: the comment names the
// rule and carries a reason.
func Suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//humnet:allow rangemap -- fixture: the caller sorts before any ordered consumption
		keys = append(keys, k)
	}
	return keys
}

// SuppressedSameLine uses the trailing-comment form.
func SuppressedSameLine(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //humnet:allow rangemap -- fixture: sum feeds an order-insensitive threshold test
	}
	return sum
}
