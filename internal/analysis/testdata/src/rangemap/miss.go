package rangemapfix

import (
	"fmt"
	"sort"
	"strings"
)

// CollectThenSort is the sanctioned idiom: order is re-established.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortSliceAfter re-establishes order with a comparator sort.
func SortSliceAfter(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeyedWrites touch each key exactly once; order cannot escape.
func KeyedWrites(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	for k := range m {
		out[k] /= 2
	}
	return out
}

// KeyedAppend lands each value in its own keyed slot.
func KeyedAppend(m map[string]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

// IntCount is associative; only float accumulation is order-sensitive.
func IntCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// LocalBuffer builds a per-iteration string that lands in a keyed slot.
func LocalBuffer(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		b.WriteString(fmt.Sprintf("%s=%d", k, v))
		out[k] = b.String()
	}
	return out
}

// LoopLocalSlice never outlives one iteration.
func LoopLocalSlice(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var dup []int
		dup = append(dup, vs...)
		total += len(dup)
	}
	return total
}
