// Package aliasretfix exercises the aliasret analyzer.
package aliasretfix

// store holds unexported mutable state behind an exported API.
type store struct {
	items []int
	index map[string]int
}

// Items leaks the receiver's backing array: callers can mutate internals.
func (s *store) Items() []int {
	return s.items // want "alias of unexported receiver state"
}

// Index leaks the receiver's map (no fix is suggested for maps, but the
// finding is still reported).
func (s *store) Index() map[string]int {
	return s.index // want "alias of unexported receiver state"
}

// registry is unexported package-level mutable state.
var registry = []string{"a", "b"}

// Registry leaks the package variable's backing array.
func Registry() []string {
	return registry // want "alias of unexported package state"
}

// view is the private helper an exported wrapper leaks through.
func view() []string {
	return registry
}

// View aliases unexported state one call level down; the interprocedural
// summary of view carries the alias to this wrapper.
func View() []string {
	return view() // want "aliases unexported mutable state inside view"
}
