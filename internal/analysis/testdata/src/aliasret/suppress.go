package aliasretfix

// graphlike mimics the read-view idiom: a documented no-modify contract.
type graphlike struct {
	adj []int
}

// Adj returns a zero-copy read view; the exception is documented.
func (g *graphlike) Adj() []int {
	//humnet:allow aliasret -- fixture: zero-copy read view with a documented no-modify contract
	return g.adj
}
