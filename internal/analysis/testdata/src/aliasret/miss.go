package aliasretfix

// pool has both exported and unexported fields.
type pool struct {
	buf []int
	// Hot is exported: callers already own access to it, so returning it
	// leaks nothing they could not reach themselves.
	Hot []int
}

// Copy returns a fresh backing array; append onto a zero-cap reslice is the
// canonical copy-on-return and must not be flagged (the fix must be
// idempotent).
func (p *pool) Copy() []int {
	return append(p.buf[:0:0], p.buf...)
}

// Exported returns an exported field: not hidden state.
func (p *pool) Exported() []int {
	return p.Hot
}

// Fresh returns provably fresh values.
func Fresh(n int) []int {
	out := make([]int, n)
	return out
}

// Literal returns a composite literal.
func Literal() []string {
	return []string{"x"}
}

// Echo returns the caller's own parameter: the memory was theirs already.
func Echo(in []int) []int {
	return in
}

// internalView is unexported, so callers are package-internal and trusted
// with aliases.
func internalView(p *pool) []int {
	return p.buf
}
