// Package ctxflowfix exercises the ctxflow analyzer.
package ctxflowfix

import "context"

// waitCtx is a context-taking callee; passing it a literal Background drops
// the caller's cancellation.
func waitCtx(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// DropDeadline holds a context but passes a fresh Background down (rule 1).
func DropDeadline(ctx context.Context) error {
	return waitCtx(context.Background()) // want "passed to waitCtx while ctx is in scope"
}

// DropTODO does the same with context.TODO.
func DropTODO(ctx context.Context) error {
	return waitCtx(context.TODO()) // want "passed to waitCtx while ctx is in scope"
}

// blockAmbient takes no context but blocks on Background inside: the
// summaries mark it as an ambient blocker.
func blockAmbient() error {
	return waitCtx(context.Background())
}

// blockTransitive blocks ambiently one more frame down; the fact fixpoint
// propagates the mark through the call graph.
func blockTransitive() error {
	return blockAmbient()
}

// HiddenGap holds a context but calls a context-less ambient blocker
// (rule 2): the cancellation gap is hidden one frame down.
func HiddenGap(ctx context.Context) error {
	return blockAmbient() // want "blocks on context.Background.. internally but takes no context"
}

// HiddenGapDeep is the transitive variant of HiddenGap.
func HiddenGapDeep(ctx context.Context) error {
	return blockTransitive() // want "blocks on context.Background.. internally but takes no context"
}

// OrphanGoroutine spawns ambient-blocking work that neither receives nor
// captures the context (rule 3): it outlives the request.
func OrphanGoroutine(ctx context.Context) {
	go blockAmbient() // want "goroutine calls blockAmbient"
}

// OrphanClosure wraps the same gap in a function literal.
func OrphanClosure(ctx context.Context) {
	go func() { // want "goroutine neither receives nor captures"
		_ = blockAmbient()
	}()
}
