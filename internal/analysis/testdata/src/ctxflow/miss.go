package ctxflowfix

import "context"

// Forward threads its context: the canonical good citizen.
func Forward(ctx context.Context) error {
	return waitCtx(ctx)
}

// NoContext holds no context, so a literal Background is its only honest
// choice; rule 1 is scoped to context-holding functions.
func NoContext() error {
	return waitCtx(context.Background())
}

// pure takes no context and never blocks: calling it from a context-holding
// function is fine.
func pure(n int) int { return n * 2 }

// CallsPure calls a non-blocking context-less helper.
func CallsPure(ctx context.Context, n int) int {
	return pure(n)
}

// CapturedClosure mentions ctx inside the goroutine: the capture is
// deliberate, so the spawn is clean.
func CapturedClosure(ctx context.Context) {
	go func() {
		_ = waitCtx(ctx)
	}()
}

// OwnContext hands the goroutine its own context parameter.
func OwnContext(ctx context.Context) {
	go func(c context.Context) {
		_ = waitCtx(c)
	}(ctx)
}

// DerivedOK derives from the in-scope context rather than minting a fresh
// root; only literal Background/TODO are flagged.
func DerivedOK(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return waitCtx(sub)
}
