package ctxflowfix

import "context"

// Detached documents an intentional lifetime split: audit writes must
// complete even when the request is cancelled.
func Detached(ctx context.Context) error {
	//humnet:allow ctxflow -- fixture: audit write must outlive the request by design
	return waitCtx(context.Background())
}
