// Package wildrandfix exercises the wildrand analyzer. The harness loads it
// under an internal/ import path so the simulation-package gate applies.
package wildrandfix

import (
	"math/rand" // want "import of math/rand"
	"os"
	"time"
)

// Jitter draws from the global generator and the wall clock.
func Jitter() float64 {
	return rand.Float64() + float64(time.Now().UnixNano()) // want "time.Now injects ambient state"
}

// Elapsed reads the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since injects ambient state"
}

// Env reads ambient configuration.
func Env() string {
	return os.Getenv("HOME") // want "os.Getenv injects ambient state"
}
