package wildrandfix

import "os"

// DebugKnob documents an accepted exception: the value never reaches a
// simulation result.
func DebugKnob() string {
	//humnet:allow wildrand -- fixture: debug-only knob, never read inside simulations
	return os.Getenv("HUMNET_DEBUG")
}
