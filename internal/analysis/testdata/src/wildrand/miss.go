package wildrandfix

import (
	"time"

	"repro/internal/rng"
)

// SeededDraw is the sanctioned pattern: randomness from an explicit seed.
func SeededDraw(r *rng.Rand) float64 { return r.Float64() }

// Horizon works with injected timestamps; the time package itself is fine,
// only Now/Since are ambient.
func Horizon(now time.Time, d time.Duration) time.Time { return now.Add(d) }
