// Package errdropfix exercises the errdrop analyzer.
package errdropfix

import (
	"fmt"
	"io"
	"os"
)

// Drop discards os.Remove's error.
func Drop(path string) {
	os.Remove(path) // want "error that is discarded"
}

// DropFprintf writes to an arbitrary writer, which can fail.
func DropFprintf(w io.Writer) {
	fmt.Fprintf(w, "hello\n") // want "error that is discarded"
}

func failing() error { return nil }

// DropLocal discards a local function's error.
func DropLocal() {
	failing() // want "error that is discarded"
}

type closer struct{}

func (closer) Close() error { return nil }

// DropMethod discards a method's error.
func DropMethod(c closer) {
	c.Close() // want "error that is discarded"
}
