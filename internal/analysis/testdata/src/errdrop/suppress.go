package errdropfix

import "os"

// BestEffortCleanup documents an accepted discard.
func BestEffortCleanup(dir string) {
	//humnet:allow errdrop -- fixture: cleanup is best-effort, the dir may already be gone
	os.RemoveAll(dir)
}
