package errdropfix

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Handled propagates the error.
func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

// Explicit acknowledges the discard; that is the documented escape hatch.
func Explicit(path string) {
	_ = os.Remove(path)
}

// PrintFamily: stdout/stderr prints and never-failing builders are exempt,
// matching errcheck's defaults.
func PrintFamily(b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("stdout is best-effort")
	fmt.Fprintf(os.Stderr, "stderr too\n")
	fmt.Fprintf(b, "builders never fail\n")
	fmt.Fprintf(buf, "nor buffers\n")
	b.WriteString("x")
	buf.WriteString("y")
}

// NoError calls a function with no error result.
func NoError() int { return len("x") }
