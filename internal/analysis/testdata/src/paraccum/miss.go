package paraccumfix

import (
	"context"

	"repro/internal/parallel"
)

// OwnIndex is the sanctioned pattern: each task writes only its own slot.
func OwnIndex(xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(context.Background(), len(xs), 0, func(i int) error {
		out[i] = xs[i] * 2
		return nil
	})
	return out
}

type cell struct{ v float64 }

// OwnField writes a field of the task's own element.
func OwnField(n int) []cell {
	out := make([]cell, n)
	_ = parallel.ForEach(context.Background(), n, 0, func(i int) error {
		out[i].v = float64(i)
		return nil
	})
	return out
}

// Locals are task-private; defining and mutating them is fine.
func Locals(xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(context.Background(), len(xs), 0, func(i int) error {
		acc := 0.0
		for j := 0; j < 3; j++ {
			acc += xs[i]
		}
		out[i] = acc
		return nil
	})
	return out
}

// OrderedSum is what ReduceOrdered exists for: shared accumulation runs on
// one goroutine in index order and stays bit-identical.
func OrderedSum(xs []float64) float64 {
	var sum float64
	_ = parallel.ReduceOrdered(context.Background(), len(xs), 0,
		func(i int) (float64, error) { return xs[i], nil },
		func(_ int, v float64) error { sum += v; return nil })
	return sum
}
