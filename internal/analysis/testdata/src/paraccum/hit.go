// Package paraccumfix exercises the paraccum analyzer against the real
// repro/internal/parallel API.
package paraccumfix

import (
	"context"

	"repro/internal/parallel"
)

// SharedAccum races on a captured scalar and depends on scheduling order.
func SharedAccum(xs []float64) float64 {
	var sum float64
	_ = parallel.ForEach(context.Background(), len(xs), 4, func(i int) error {
		sum += xs[i] // want "write to sum captured by the closure"
		return nil
	})
	return sum
}

// SharedAppend's element order is the workers' finish order.
func SharedAppend(n int) []int {
	var out []int
	_ = parallel.ForEach(context.Background(), n, 0, func(i int) error {
		out = append(out, i*i) // want "write to out captured by the closure"
		return nil
	})
	return out
}

// SharedMapWrite races on the map's internals even though the key mentions
// the index parameter.
func SharedMapWrite(n int) map[int]bool {
	seen := make(map[int]bool)
	_, _ = parallel.Map(context.Background(), n, 2, func(i int) (int, error) {
		seen[i%3] = true // want "write to seen"
		return i, nil
	})
	return seen
}

// SharedFixedSlot writes every task into element zero.
func SharedFixedSlot(xs []float64) float64 {
	out := make([]float64, 1)
	_ = parallel.ForEach(context.Background(), len(xs), 0, func(i int) error {
		out[0] = xs[i] // want "write to out"
		return nil
	})
	return out[0]
}
