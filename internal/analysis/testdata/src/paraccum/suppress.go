package paraccumfix

import (
	"context"

	"repro/internal/parallel"
)

// Batched writes disjoint index ranges — safe, but beyond the analyzer's
// reasoning; the suppression documents the ownership argument.
func Batched(xs []float64, batch int) []float64 {
	out := make([]float64, len(xs))
	nb := (len(xs) + batch - 1) / batch
	_ = parallel.ForEach(context.Background(), nb, 0, func(b int) error {
		for i := b * batch; i < len(xs) && i < (b+1)*batch; i++ {
			//humnet:allow paraccum -- fixture: batch b owns the disjoint range [b*batch,(b+1)*batch)
			out[i] = xs[i] * xs[i]
		}
		return nil
	})
	return out
}
