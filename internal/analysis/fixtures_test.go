package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe matches a `// want "regex"` expectation marker inside a comment.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}

// runFixture loads testdata/src/<rule> as a pseudo-internal package, runs
// the single analyzer over it through the full driver (so suppression
// comments are exercised too), and diffs findings against `// want`
// markers: every want must be matched by a finding on its line, and every
// finding must be expected.
func runFixture(t *testing.T, an *Analyzer) {
	t.Helper()
	runFixtureOpts(t, an, an.Name, LoadOpts{})
}

// runFixtureOpts is runFixture with the fixture directory and loader options
// explicit, for analyzers that need a fixture-scoped configuration
// (undoscope) or in-package test files (atomicmix with IncludeTests).
func runFixtureOpts(t *testing.T, an *Analyzer, fixture string, opts LoadOpts) {
	t.Helper()
	root := moduleRoot(t)
	l, err := NewLoaderOpts(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", fixture)
	path := "repro/internal/" + fixture + "fix"
	l.AddDir(path, dir)
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(l.Fset, []*Package{pkg}, []*Analyzer{an})

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[key][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := l.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, f := range res.Findings {
		k := key{f.File, f.Line}
		ok := false
		for _, w := range wants[k] {
			if w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matching %q", filepath.Base(k.file), k.line, w.re)
			}
		}
	}
	if res.Suppressed == 0 {
		t.Errorf("fixture exercised no suppression; suppress.go should trigger at least one")
	}
}

func TestRangeMapFixtures(t *testing.T) { runFixture(t, RangeMap) }
func TestWildRandFixtures(t *testing.T) { runFixture(t, WildRand) }
func TestErrDropFixtures(t *testing.T)  { runFixture(t, ErrDrop) }
func TestParAccumFixtures(t *testing.T) { runFixture(t, ParAccum) }
func TestAliasRetFixtures(t *testing.T) { runFixture(t, AliasRet) }
func TestCtxFlowFixtures(t *testing.T)  { runFixture(t, CtxFlow) }

// TestAtomicMixFixtures loads the fixture with in-package test files so the
// plain access in plain_test.go is visible (the -tests flag path).
func TestAtomicMixFixtures(t *testing.T) {
	runFixtureOpts(t, AtomicMix, AtomicMix.Name, LoadOpts{IncludeTests: true})
}

// TestUndoScopeFixtures scopes the rule to the fixture's miniature state
// machine instead of the production bgpsim configuration.
func TestUndoScopeFixtures(t *testing.T) {
	runFixtureOpts(t, NewUndoScope(UndoScopeConfig{
		PkgSuffix:  "/internal/undoscopefix",
		StateTypes: []string{"engine"},
		Roots:      []string{"Apply", "Revert"},
	}), "undoscope", LoadOpts{})
}
