package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RangeMap flags map iterations whose body lets iteration order escape:
// appending to a slice declared outside the loop (unless the slice is sorted
// afterwards — the collect-keys-then-sort idiom), accumulating floats into an
// outer variable (float addition is not associative, so order changes bits),
// or writing output to an outer writer. Any of these makes a result depend
// on Go's randomized map iteration order, which breaks the repo's
// bit-identical-across-runs-and-worker-counts contract.
var RangeMap = &Analyzer{
	Name: "rangemap",
	Doc:  "map iteration must not leak order: no unsorted appends, float accumulation, or output writes in the loop body",
	Run:  runRangeMap,
}

func runRangeMap(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		reported := make(map[token.Pos]bool)
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, enclosingFunc(stack), reported)
			return true
		})
	}
}

// enclosingFunc returns the innermost function body on the node stack (the
// last element is the node currently being visited).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn
		case *ast.FuncLit:
			return fn
		}
	}
	return nil
}

// checkMapRange scans one map-range body for order-leaking statements.
// Nested map ranges are scanned again on their own visit; the reported set
// dedupes hazards that sit inside several nested map loops.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, encl ast.Node, reported map[token.Pos]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, rs, encl, s, reported)
		case *ast.CallExpr:
			checkRangeOutput(pass, rs, s, reported)
		}
		return true
	})
}

func checkRangeAssign(pass *Pass, rs *ast.RangeStmt, encl ast.Node, s *ast.AssignStmt, reported map[token.Pos]bool) {
	switch s.Tok {
	case token.ASSIGN:
		if len(s.Lhs) != len(s.Rhs) {
			return
		}
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !pass.isBuiltinAppend(call) {
				continue
			}
			target := s.Lhs[i]
			if pass.declaredWithin(target, rs.Pos(), rs.End()) {
				continue // loop-local slice; order cannot outlive the loop
			}
			if idx, ok := target.(*ast.IndexExpr); ok && pass.mentionsRangeVar(idx.Index, rs) {
				continue // keyed write: each map key is touched exactly once
			}
			if sortedAfter(pass, encl, rs, target) {
				continue // collect-then-sort idiom
			}
			if !reported[s.Pos()] {
				reported[s.Pos()] = true
				pass.Reportf(s.Pos(),
					"append to %s inside iteration over map %s leaks map order; sort %s afterwards or iterate sorted keys",
					exprString(target), exprString(rs.X), exprString(target))
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		target := s.Lhs[0]
		if idx, ok := target.(*ast.IndexExpr); ok && pass.mentionsRangeVar(idx.Index, rs) {
			return // keyed write: each map key is touched exactly once
		}
		t := pass.Pkg.Info.TypeOf(target)
		if t == nil || !isFloat(t) {
			return
		}
		if pass.declaredWithin(target, rs.Pos(), rs.End()) {
			return
		}
		if !reported[s.Pos()] {
			reported[s.Pos()] = true
			pass.Reportf(s.Pos(),
				"floating-point accumulation into %s inside iteration over map %s is order-sensitive; iterate sorted keys",
				exprString(target), exprString(rs.X))
		}
	}
}

// writeMethods are writer-mutating method names that serialize data in call
// order; calling them per map iteration bakes map order into the output.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func checkRangeOutput(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr, reported map[token.Pos]bool) {
	fn := pass.calleeFunc(call)
	if fn == nil {
		return
	}
	var sink ast.Expr // the writer that must be loop-local to be safe
	switch {
	case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(hasPrefix(fn.Name(), "Print") || hasPrefix(fn.Name(), "Fprint")):
		if hasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			sink = call.Args[0]
		}
		// Print/Printf/Println write to the process-global stdout: never
		// loop-local, always flagged.
	case writeMethods[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			sink = sel.X
		}
	default:
		return
	}
	if sink != nil && pass.declaredWithin(sink, rs.Pos(), rs.End()) {
		return // per-iteration buffer; its contents land somewhere keyed
	}
	if !reported[call.Pos()] {
		reported[call.Pos()] = true
		pass.Reportf(call.Pos(),
			"output written inside iteration over map %s follows map order; iterate sorted keys",
			exprString(rs.X))
	}
}

// sortedAfter reports whether, later in the enclosing function, target is
// passed to a sort call — the collect-keys-then-sort idiom. The scan is a
// deliberate over-approximation (any later sort in the function counts);
// it can only hide a finding, never invent one.
func sortedAfter(pass *Pass, encl ast.Node, rs *ast.RangeStmt, target ast.Expr) bool {
	if encl == nil {
		return false
	}
	want := exprString(target)
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if pass.isSortCall(call) && len(call.Args) > 0 && exprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortFuncs lists the stdlib sorters recognized as establishing order.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Slice": true, "SliceStable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func (p *Pass) isSortCall(call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names := sortFuncs[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsRangeVar reports whether e references the key or value variable of
// the range statement.
func (p *Pass) mentionsRangeVar(e ast.Expr, rs *ast.RangeStmt) bool {
	var objs []types.Object
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if o := p.Pkg.Info.ObjectOf(id); o != nil {
				objs = append(objs, o)
			}
		}
	}
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := p.Pkg.Info.ObjectOf(id)
		for _, want := range objs {
			if o == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
