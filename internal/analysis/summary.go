package analysis

// Interprocedural substrate. Every declared function gets a Summary — a
// serializable fact record covering what the four cross-function analyzers
// (aliasret, ctxflow, atomicmix, undoscope) need to see across call
// boundaries: which results alias which inputs or hidden state, whether a
// context parameter is forwarded or dropped, which struct fields are touched
// with sync/atomic versus plain loads/stores, which named types the body
// writes to, and the static intra-module call edges. Summaries are a pure
// function of one package's syntax and types, so they cache per package,
// content-addressed by file hash (factcache.go); the cross-function
// propagation (transitive ambient blocking, call-graph reachability) is
// recomputed cheaply from the merged summaries on every run.

import (
	"context"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/parallel"
)

// Summary is the interprocedural fact record of one declared function or
// method. Fields are ordered and slice-valued so the JSON encoding (and with
// it the on-disk fact cache) is deterministic.
type Summary struct {
	// ID names the function: "pkgpath.Func" or "pkgpath.(Recv).Method".
	ID       string `json:"id"`
	Exported bool   `json:"exported,omitempty"`

	// CtxParam is the index of the first context.Context parameter, or -1.
	CtxParam int `json:"ctx_param"`
	// ForwardsCtx reports that some call in the body receives the context
	// parameter (directly or inside a derived expression).
	ForwardsCtx bool `json:"forwards_ctx,omitempty"`
	// AmbientBlock reports that the body hands a literal context.Background()
	// or context.TODO() to a context-taking callee — the body blocks on work
	// that a caller-supplied context could have cancelled.
	AmbientBlock bool `json:"ambient_block,omitempty"`

	// MutatesRecv reports an assignment through the receiver.
	MutatesRecv bool `json:"mutates_recv,omitempty"`

	// AliasReturns maps a result index (decimal string, for stable JSON) to
	// the alias sources that result may share memory with: "recv" (a
	// receiver's unexported field), "var.<name>" (an unexported package-level
	// variable), "param.<i>", or "call.<FuncID>.<k>" (result k of a callee,
	// resolved one level deep by aliasret). Fresh results are absent.
	AliasReturns map[string][]string `json:"alias_returns,omitempty"`

	// AtomicFields and PlainFields record struct fields (or package-level
	// vars) touched via sync/atomic calls and via plain loads/stores of
	// atomic-operable integer kinds, keyed "pkgpath.Type.field" / "var.pkgpath.name".
	AtomicFields []string `json:"atomic_fields,omitempty"`
	PlainFields  []string `json:"plain_fields,omitempty"`

	// WritesTypes lists the named types ("pkgpath.Name") whose values the
	// body assigns into (including copy/delete builtin targets).
	WritesTypes []string `json:"writes_types,omitempty"`

	// Calls lists static intra-module callees by FuncID, sorted and deduped.
	Calls []string `json:"calls,omitempty"`
}

// Facts is the merged module-wide view over every package's summaries plus
// the derived cross-function closures.
type Facts struct {
	byID    map[string]*Summary
	atomic  map[string]bool // union of every Summary.AtomicFields
	ambient map[string]bool // transitive closure of AmbientBlock over Calls
}

// Lookup returns the summary for a FuncID, or nil.
func (f *Facts) Lookup(id string) *Summary {
	if f == nil {
		return nil
	}
	return f.byID[id]
}

// ForFunc returns the summary of a resolved function object, or nil.
func (f *Facts) ForFunc(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return f.Lookup(FuncID(fn))
}

// AtomicField reports whether any function in the module touches the given
// field key through sync/atomic.
func (f *Facts) AtomicField(key string) bool {
	return f != nil && f.atomic[key]
}

// AmbientBlocker reports whether the function (or anything it transitively
// calls inside the module) blocks on a literal context.Background()/TODO().
func (f *Facts) AmbientBlocker(id string) bool {
	return f != nil && f.ambient[id]
}

// Reachable returns the set of FuncIDs reachable from roots over the static
// call graph, roots included.
func (f *Facts) Reachable(roots []string) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if s := f.Lookup(id); s != nil {
			queue = append(queue, s.Calls...)
		}
	}
	return seen
}

// BuildFacts summarizes every package (fanned across at most workers
// goroutines; summaries land at their package index, so the result is
// bit-identical for any worker count) and merges the result.
func BuildFacts(pkgs []*Package, workers int) *Facts {
	sums, err := parallel.Map(context.Background(), len(pkgs), workers, func(i int) ([]Summary, error) {
		return PackageSummaries(pkgs[i]), nil
	})
	if err != nil {
		panic(err) // tasks never fail and the context never ends: panics only
	}
	return MergeFacts(sums)
}

// MergeFacts folds per-package summary lists (in package order) into the
// module-wide fact index and computes the derived closures.
func MergeFacts(perPkg [][]Summary) *Facts {
	f := &Facts{
		byID:    make(map[string]*Summary),
		atomic:  make(map[string]bool),
		ambient: make(map[string]bool),
	}
	for _, sums := range perPkg {
		for i := range sums {
			s := &sums[i]
			f.byID[s.ID] = s
			for _, key := range s.AtomicFields {
				f.atomic[key] = true
			}
			if s.AmbientBlock {
				f.ambient[s.ID] = true
			}
		}
	}
	// Transitive ambient blocking: a caller of a blocker is itself a blocker.
	// Iterate to a fixpoint; the graph is small and the lattice is boolean,
	// so this terminates after at most the call-graph depth.
	for changed := true; changed; {
		changed = false
		for id, s := range f.byID {
			if f.ambient[id] {
				continue
			}
			for _, callee := range s.Calls {
				if f.ambient[callee] {
					f.ambient[id] = true
					changed = true
					break
				}
			}
		}
	}
	return f
}

// FuncID names fn as "pkgpath.Func" or "pkgpath.(Recv).Method"; "" when the
// function has no package (builtins).
func FuncID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		name := "?"
		if n, isNamed := t.(*types.Named); isNamed {
			name = n.Obj().Name()
		}
		return fn.Pkg().Path() + ".(" + name + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// baseName returns the bare function or method name of a FuncID.
func baseName(id string) string {
	if i := strings.LastIndex(id, "."); i >= 0 {
		return id[i+1:]
	}
	return id
}

// moduleRootOf returns the leading path segment of an import path — the
// coarse "same module" test used to keep stdlib callees out of summaries.
func moduleRootOf(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request — handlers hold
// their request context through it.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// ctxParamIndex returns the index of the first context.Context parameter of
// sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isAmbientCtxCall reports whether e is a literal context.Background() or
// context.TODO() call.
func isAmbientCtxCall(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "context" && (obj.Name() == "Background" || obj.Name() == "TODO")
}

// atomicOpField resolves a call to a sync/atomic function into the field (or
// package-level var) key its pointer argument addresses, or "" when the call
// is not a function-style atomic access. Typed atomics (atomic.Int64 fields)
// need no rule: the type system already forbids plain access.
func atomicOpField(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	name := obj.Name()
	switch {
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
		strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"):
	default:
		return ""
	}
	if len(call.Args) == 0 {
		return ""
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok {
		return ""
	}
	return accessKey(pkg, unary.X)
}

// accessKey names a field selector or package-level var access:
// "pkgpath.Type.field" or "var.pkgpath.name"; "" for anything else.
func accessKey(pkg *Package, e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		selInfo, ok := pkg.Info.Selections[t]
		if !ok {
			return ""
		}
		field, ok := selInfo.Obj().(*types.Var)
		if !ok || !field.IsField() {
			return ""
		}
		recv := selInfo.Recv()
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	case *ast.Ident:
		obj, ok := pkg.Info.ObjectOf(t).(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return ""
		}
		// Package-level only: the object's parent scope is the package scope.
		if obj.Parent() != obj.Pkg().Scope() {
			return ""
		}
		return "var." + obj.Pkg().Path() + "." + obj.Name()
	}
	return ""
}

// atomicOperable reports whether t is one of the integer kinds sync/atomic
// can address function-style.
func atomicOperable(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// PackageSummaries computes the summary of every declared function in pkg, in
// file and declaration order (stable: Loader sorts file names).
func PackageSummaries(pkg *Package) []Summary {
	var out []Summary
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, summarize(pkg, fd, fn))
		}
	}
	return out
}

// summarize walks one function body (nested closures attributed to the
// declaration — a fact established by a closure holds for its host).
func summarize(pkg *Package, fd *ast.FuncDecl, fn *types.Func) Summary {
	sig := fn.Type().(*types.Signature)
	sum := Summary{
		ID:       FuncID(fn),
		Exported: fd.Name.IsExported(),
		CtxParam: ctxParamIndex(sig),
	}
	root := moduleRootOf(pkg.Path)

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pkg.Info.ObjectOf(fd.Recv.List[0].Names[0])
	}
	var ctxObj types.Object
	if sum.CtxParam >= 0 {
		ctxObj = sig.Params().At(sum.CtxParam)
	}
	params := paramIndex(pkg, fd)

	calls := map[string]bool{}
	atomicF := map[string]bool{}
	plainF := map[string]bool{}
	writes := map[string]bool{}
	aliases := map[string]map[string]bool{}
	atomicArgs := atomicArgSpans(pkg, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if key := atomicOpField(pkg, t); key != "" {
				atomicF[key] = true
			}
			callee := calleeOf(pkg, t)
			if callee != nil && callee.Pkg() != nil {
				cp := callee.Pkg().Path()
				if cp == pkg.Path || strings.HasPrefix(cp, root+"/") {
					calls[FuncID(callee)] = true
				}
				if csig, ok := callee.Type().(*types.Signature); ok {
					if k := ctxParamIndex(csig); k >= 0 && k < len(t.Args) {
						if isAmbientCtxCall(pkg, t.Args[k]) {
							sum.AmbientBlock = true
						}
					}
				}
			}
			if ctxObj != nil {
				for _, arg := range t.Args {
					if mentionsObject(pkg, arg, ctxObj) {
						sum.ForwardsCtx = true
						break
					}
				}
			}
			if fun, ok := ast.Unparen(t.Fun).(*ast.Ident); ok {
				if b, isB := pkg.Info.ObjectOf(fun).(*types.Builtin); isB &&
					(b.Name() == "copy" || b.Name() == "delete") && len(t.Args) > 0 {
					collectWrittenTypes(pkg, t.Args[0], writes)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				collectWrittenTypes(pkg, lhs, writes)
				if recvObj != nil && rootObjectOf(pkg, lhs) == recvObj {
					sum.MutatesRecv = true
				}
				notePlainAccess(pkg, lhs, plainF, atomicArgs)
			}
		case *ast.IncDecStmt:
			collectWrittenTypes(pkg, t.X, writes)
			if recvObj != nil && rootObjectOf(pkg, t.X) == recvObj {
				sum.MutatesRecv = true
			}
			notePlainAccess(pkg, t.X, plainF, atomicArgs)
		case *ast.SelectorExpr:
			notePlainAccess(pkg, t, plainF, atomicArgs)
			return true
		case *ast.ReturnStmt:
			noteAliasReturns(pkg, recvObj, params, sig, t, aliases)
		}
		return true
	})

	sum.Calls = sortedKeys(calls)
	sum.AtomicFields = sortedKeys(atomicF)
	sum.PlainFields = sortedKeys(plainF)
	sum.WritesTypes = sortedKeys(writes)
	if len(aliases) > 0 {
		sum.AliasReturns = make(map[string][]string, len(aliases))
		for idx, srcs := range aliases {
			sum.AliasReturns[idx] = sortedKeys(srcs)
		}
	}
	return sum
}

// paramIndex maps parameter objects of fd to their positional index.
func paramIndex(pkg *Package, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	i := 0
	for _, fl := range fd.Type.Params.List {
		if len(fl.Names) == 0 {
			i++
			continue
		}
		for _, name := range fl.Names {
			if obj := pkg.Info.ObjectOf(name); obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// calleeOf resolves the static callee of a call, or nil for builtins,
// conversions, and calls through values.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootObjectOf strips selectors/indexes/derefs and returns the base object.
func rootObjectOf(pkg *Package, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return pkg.Info.ObjectOf(id)
}

// mentionsObject reports whether the subtree references obj anywhere.
func mentionsObject(pkg *Package, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// span is a half-open source range.
type span struct{ lo, hi int }

// atomicArgSpans records the source spans of sync/atomic call arguments so
// plain-access detection can skip the &x.f inside atomic.AddInt64(&x.f, 1).
func atomicArgSpans(pkg *Package, fd *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if atomicOpField(pkg, call) != "" {
			out = append(out, span{int(call.Pos()), int(call.End())})
		}
		return true
	})
	return out
}

// inSpans reports whether pos falls inside any recorded span.
func inSpans(spans []span, pos int) bool {
	for _, s := range spans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}

// notePlainAccess records a plain load/store of an atomic-operable integer
// field or package var, outside any sync/atomic call.
func notePlainAccess(pkg *Package, e ast.Expr, plain map[string]bool, atomicArgs []span) {
	e = ast.Unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if inSpans(atomicArgs, int(e.Pos())) {
		return
	}
	t := pkg.Info.TypeOf(e)
	if t == nil || !atomicOperable(t) {
		return
	}
	if key := accessKey(pkg, e); key != "" {
		plain[key] = true
	}
	_ = sel
}

// collectWrittenTypes adds the named types reachable in any subexpression of
// a write target (pointers dereferenced) to the set, "pkgpath.Name"-keyed.
func collectWrittenTypes(pkg *Package, e ast.Expr, out map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(ex)
		if t == nil {
			return true
		}
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			out[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = true
		}
		return true
	})
}

// noteAliasReturns classifies every slice- or map-typed returned expression.
func noteAliasReturns(pkg *Package, recvObj types.Object, params map[types.Object]int,
	sig *types.Signature, ret *ast.ReturnStmt, out map[string]map[string]bool) {
	if len(ret.Results) == 0 {
		return
	}
	record := func(idx int, srcs []string) {
		if len(srcs) == 0 {
			return
		}
		key := strconv.Itoa(idx)
		if out[key] == nil {
			out[key] = make(map[string]bool)
		}
		for _, s := range srcs {
			out[key][s] = true
		}
	}
	if len(ret.Results) == 1 && sig.Results().Len() > 1 {
		// return f() forwarding a multi-result callee: every result aliases
		// the callee's corresponding result.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if fn := calleeOf(pkg, call); fn != nil {
				for i := 0; i < sig.Results().Len(); i++ {
					if isSliceOrMap(sig.Results().At(i).Type()) {
						record(i, []string{"call." + FuncID(fn) + "." + strconv.Itoa(i)})
					}
				}
			}
		}
		return
	}
	for i, res := range ret.Results {
		t := pkg.Info.TypeOf(res)
		if t == nil || !isSliceOrMap(t) {
			continue
		}
		record(i, aliasSources(pkg, recvObj, params, res))
	}
}

// isSliceOrMap reports whether t's underlying type has slice/map aliasing
// semantics — the types whose return the copy contract covers.
func isSliceOrMap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// aliasSources classifies where a returned reference value may share memory:
// nil means provably (for this analysis) fresh. One level of call
// indirection is recorded symbolically as "call.<id>.<k>" for the rule to
// resolve against the callee's summary.
func aliasSources(pkg *Package, recvObj types.Object, params map[types.Object]int, e ast.Expr) []string {
	e = ast.Unparen(e)
	switch t := e.(type) {
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(t.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.ObjectOf(fun).(*types.Builtin); isB {
				if b.Name() == "append" && len(t.Args) > 0 && !freshBase(pkg, t.Args[0]) {
					// append reuses the base array when capacity allows.
					return aliasSources(pkg, recvObj, params, t.Args[0])
				}
				return nil // make, or append onto a fresh base
			}
		}
		if tv, ok := pkg.Info.Types[t.Fun]; ok && tv.IsType() {
			// Conversions preserve aliasing between like reference kinds
			// (named slice <-> slice); string<->[]byte copies, but both sides
			// being slice/map is the conservative aliasing test.
			if len(t.Args) == 1 {
				if at := pkg.Info.TypeOf(t.Args[0]); at != nil && isSliceOrMap(at) {
					return aliasSources(pkg, recvObj, params, t.Args[0])
				}
			}
			return nil
		}
		if fn := calleeOf(pkg, t); fn != nil {
			return []string{"call." + FuncID(fn) + ".0"}
		}
		return nil
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil {
			return nil
		}
		switch {
		case recvObj != nil && obj == recvObj:
			if hasUnexportedSelector(pkg, e) {
				return []string{"recv"}
			}
		case obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
			if v, isVar := obj.(*types.Var); isVar && !v.Exported() {
				return []string{"var." + v.Name()}
			}
		default:
			if i, isParam := params[obj]; isParam {
				return []string{"param." + strconv.Itoa(i)}
			}
		}
		return nil
	}
	return nil
}

// freshBase reports whether an append base is provably fresh: nil, a
// composite literal, a make call, or the canonical zero-capacity reslice
// x[:0:0] that the aliasret autofix emits.
func freshBase(pkg *Package, e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return t.Name == "nil"
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(t.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.ObjectOf(fun).(*types.Builtin); isB && b.Name() == "make" {
				return true
			}
		}
		// A conversion of nil or of a fresh value: []T(nil).
		if tv, ok := pkg.Info.Types[t.Fun]; ok && tv.IsType() && len(t.Args) == 1 {
			return freshBase(pkg, t.Args[0])
		}
		return false
	case *ast.SliceExpr:
		return t.Slice3 && isZeroIntLit(t.High) && isZeroIntLit(t.Max)
	}
	return false
}

// isZeroIntLit reports whether e is the literal 0.
func isZeroIntLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// hasUnexportedSelector reports whether the selector chain of e passes
// through at least one unexported field — the "unexported mutable state"
// half of the aliasret contract (exported fields are caller-reachable
// anyway).
func hasUnexportedSelector(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if s, isSel := pkg.Info.Selections[sel]; isSel {
			if v, isVar := s.Obj().(*types.Var); isVar && v.IsField() && !v.Exported() {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedKeys returns the set's keys sorted — the canonical slice encoding of
// every summary set, keeping cached facts byte-stable.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
