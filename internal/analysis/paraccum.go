package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ParAccum flags shared-state writes inside closures handed to the
// internal/parallel primitives other than ReduceOrdered. Those primitives
// run the closure concurrently in scheduling order, so the only write that
// preserves the bit-identical-for-any-worker-count contract is one the task
// owns: an element indexed by the task's own index parameter. Anything else
// — appending to a captured slice, accumulating into a captured scalar,
// writing a captured map — is a data race or a scheduling-order dependence;
// ordered accumulation belongs in ReduceOrdered.
var ParAccum = &Analyzer{
	Name: "paraccum",
	Doc:  "closures passed to internal/parallel must write only through their own index; ordered accumulation uses ReduceOrdered",
	Run:  runParAccum,
}

const parallelPkgSuffix = "/internal/parallel"

func runParAccum(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.calleeFunc(call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), parallelPkgSuffix) {
				return true
			}
			if fn.Name() == "ReduceOrdered" {
				return true // reduction runs on one goroutine in index order
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkClosure(pass, fn.Name(), fl)
				}
			}
			return true
		})
	}
}

// checkClosure walks a task closure's body looking for writes whose target
// is captured from the enclosing scope and not owned via the index param.
func checkClosure(pass *Pass, prim string, fl *ast.FuncLit) {
	idx := indexParam(pass, fl)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if s != fl {
				return false // a nested closure is not the task body
			}
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // definitions create task-locals
			}
			for _, lhs := range s.Lhs {
				reportCapturedWrite(pass, prim, fl, idx, lhs)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, prim, fl, idx, s.X)
		}
		return true
	})
}

// indexParam returns the object of the closure's index parameter (the first
// parameter, by the internal/parallel calling convention), or nil.
func indexParam(pass *Pass, fl *ast.FuncLit) types.Object {
	params := fl.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pass.Pkg.Info.ObjectOf(params.List[0].Names[0])
}

// reportCapturedWrite flags target unless it is a task-local or an element
// indexed (at some level of the selector/index chain) by the index param.
func reportCapturedWrite(pass *Pass, prim string, fl *ast.FuncLit, idx types.Object, target ast.Expr) {
	e := target
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			// A slice/array element indexed by the task's own index is the
			// one write a task owns. A map element never is: concurrent map
			// writes race on the map's shared internals regardless of key.
			if idx != nil && mentionsObj(pass, t.Index, idx) && !isMapIndex(pass, t) {
				return // task-owned element: out[i], out[i].field, grid[i][j]
			}
			e = t.X
		case *ast.Ident:
			if t.Name == "_" {
				return
			}
			obj := pass.Pkg.Info.ObjectOf(t)
			if obj == nil || (obj.Pos() >= fl.Pos() && obj.Pos() < fl.End()) {
				return // task-local
			}
			pass.Reportf(target.Pos(),
				"write to %s captured by the closure passed to parallel.%s depends on scheduling order; write through index %s or use ReduceOrdered",
				exprString(target), prim, idxName(idx))
			return
		default:
			return // unknown shape: stay silent rather than guess
		}
	}
}

func idxName(idx types.Object) string {
	if idx == nil {
		return "parameter 0"
	}
	return idx.Name()
}

// isMapIndex reports whether the index expression indexes a map.
func isMapIndex(pass *Pass, idx *ast.IndexExpr) bool {
	t := pass.Pkg.Info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mentionsObj reports whether expression e references obj.
func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
