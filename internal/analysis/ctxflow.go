package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation in functions that hold one: a
// function with a context.Context parameter (or an *http.Request, whose
// Context carries the request lifetime) must not
//
//  1. pass a literal context.Background()/context.TODO() to a
//     context-taking callee — the caller's deadline and cancellation are
//     silently dropped at that call (fixable: forward the in-scope
//     context);
//  2. call a module-internal callee that takes no context but, per the
//     interprocedural summaries, transitively blocks on
//     context.Background() inside — the cancellation gap is hidden one or
//     more frames down (not auto-fixable: the callee needs a context
//     parameter threaded through);
//  3. spawn a goroutine that neither receives nor captures the context yet
//     runs such ambient-blocking work — it outlives the request
//     unconditionally.
//
// The serve layer's admission and coalescing paths are the motivating
// targets: a dropped context there turns graceful shedding into unbounded
// queueing.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context-holding functions must forward their context to cancellable callees and goroutines",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			srcObj, srcExpr := ctxSource(pass, fd)
			if srcObj == nil {
				continue
			}
			checkCtxFlow(pass, fd, srcObj, srcExpr)
		}
	}
}

// ctxSource returns the object holding fd's context — the first named
// context.Context parameter, else the first named *http.Request parameter —
// plus the source expression a fix should forward ("ctx" or "r.Context()").
// Blank-named parameters cannot be referenced and yield no source.
func ctxSource(pass *Pass, fd *ast.FuncDecl) (types.Object, string) {
	var reqObj types.Object
	var reqName string
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Pkg.Info.ObjectOf(name)
			if obj == nil {
				continue
			}
			if isContextType(obj.Type()) {
				return obj, name.Name
			}
			if reqObj == nil && isHTTPRequestPtr(obj.Type()) {
				reqObj, reqName = obj, name.Name
			}
		}
	}
	if reqObj != nil {
		return reqObj, reqName + ".Context()"
	}
	return nil, ""
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl, srcObj types.Object, srcExpr string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.GoStmt:
			// Goroutine launches are wholly rule 3's domain: descending
			// further would re-flag the same gap per call site inside the
			// spawned work.
			checkGoStmt(pass, t, srcObj)
			return false
		case *ast.CallExpr:
			checkCall(pass, t, srcObj, srcExpr)
		}
		return true
	})
}

// checkCall applies rules 1 and 2 to one call site.
func checkCall(pass *Pass, call *ast.CallExpr, srcObj types.Object, srcExpr string) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	if k := ctxParamIndex(sig); k >= 0 {
		if k < len(call.Args) && isAmbientCtxCall(pass.Pkg, call.Args[k]) {
			arg := call.Args[k]
			fix := &SuggestedFix{
				Message: "forward " + srcExpr,
				Edits: []TextEdit{{
					Start: pass.offsetOf(arg.Pos()),
					End:   pass.offsetOf(arg.End()),
					New:   srcExpr,
				}},
			}
			pass.ReportFixf(arg.Pos(), fix,
				"%s passed to %s while %s is in scope; the caller's cancellation and deadline are dropped here",
				exprString(arg), exprString(call.Fun), srcExpr)
		}
		return // the callee takes a context: threading is the caller's choice per-arg
	}
	// Rule 2: context-less module callee that blocks ambiently inside.
	callee := calleeOf(pass.Pkg, call)
	if callee == nil || !moduleInternal(pass, callee) || takesRequest(callee) {
		return
	}
	id := FuncID(callee)
	if pass.Facts.AmbientBlocker(id) {
		pass.Reportf(call.Pos(),
			"%s blocks on context.Background() internally but takes no context; thread %s through (add a ctx parameter or a Ctx variant)",
			exprString(call.Fun), srcExpr)
	}
}

// checkGoStmt applies rule 3 to one goroutine launch.
func checkGoStmt(pass *Pass, g *ast.GoStmt, srcObj types.Object) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if mentionsObject(pass.Pkg, fun.Body, srcObj) {
			return // the closure captured the context deliberately
		}
		if funcLitTakesCtx(pass, fun) {
			return
		}
		if litCallsAmbient(pass, fun) {
			pass.Reportf(g.Pos(),
				"goroutine neither receives nor captures the function's context but runs ambient-blocking work; it outlives the request")
		}
	default:
		callee := calleeOf(pass.Pkg, g.Call)
		if callee == nil || !moduleInternal(pass, callee) || takesRequest(callee) {
			return
		}
		if sig, ok := callee.Type().(*types.Signature); ok && ctxParamIndex(sig) >= 0 {
			return // context flows (or rule 1 already flagged a Background arg)
		}
		if pass.Facts.AmbientBlocker(FuncID(callee)) {
			pass.Reportf(g.Pos(),
				"goroutine calls %s, which blocks on context.Background() internally, without the function's context; it outlives the request",
				exprString(g.Call.Fun))
		}
	}
}

// funcLitTakesCtx reports whether the literal declares its own context
// parameter.
func funcLitTakesCtx(pass *Pass, lit *ast.FuncLit) bool {
	sig, ok := pass.Pkg.Info.TypeOf(lit).(*types.Signature)
	return ok && ctxParamIndex(sig) >= 0
}

// litCallsAmbient reports whether the literal's body calls a module-internal
// ambient blocker without a context of its own.
func litCallsAmbient(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		callee := calleeOf(pass.Pkg, call)
		if callee != nil && moduleInternal(pass, callee) {
			if sig, isSig := callee.Type().(*types.Signature); isSig && ctxParamIndex(sig) < 0 {
				if pass.Facts.AmbientBlocker(FuncID(callee)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callSignature returns the signature of whatever the call invokes, static
// or through a value; nil for conversions and builtins.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.Pkg.Info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// moduleInternal reports whether fn is declared inside this module (coarse
// leading-segment test, matching the summary builder's call edges).
func moduleInternal(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	cp := fn.Pkg().Path()
	return cp == pass.Pkg.Path || strings.HasPrefix(cp, moduleRootOf(pass.Pkg.Path)+"/")
}

// takesRequest reports whether fn's signature carries an *http.Request — a
// context source of its own.
func takesRequest(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isHTTPRequestPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
