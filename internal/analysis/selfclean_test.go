package analysis

import "testing"

// TestRepoIsLintClean is the self-audit: the tree that ships the linters
// must itself be clean under them. Every intentional exception carries a
// reasoned //humnet:allow comment (counted as suppressed below) instead of
// silently passing.
func TestRepoIsLintClean(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; the module scan is broken", len(pkgs))
	}
	res := Run(l.Fset, pkgs, All())
	for _, f := range res.Findings {
		t.Errorf("lint finding: %s", f)
	}
	t.Logf("self-audit: %d packages clean, %d documented suppressions", len(pkgs), res.Suppressed)
}
