package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis. By
// default only non-test files are loaded: the determinism invariants guard
// production code paths, and test-only helpers are free to trade hermeticity
// for convenience. LoadOpts.IncludeTests pulls in-package _test.go files
// into the same unit (external foo_test packages are still dropped — they
// are a different package and would collide), so rules like atomicmix can
// see test-only plain reads of production state.
type Package struct {
	Path      string   // import path, e.g. "repro/internal/bgpsim"
	Dir       string   // absolute directory the files were read from
	Filenames []string // absolute source file paths, sorted (fact-cache key input)
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// LoadOpts configures package discovery.
type LoadOpts struct {
	// IncludeTests loads in-package _test.go files alongside production
	// files (external *_test packages are skipped). Off by default: the
	// linters guard production paths, and mixed cmd/ packages would
	// otherwise drag test-only dependencies into every run.
	IncludeTests bool
}

// Loader discovers, parses, and type-checks every package of a Go module
// using only the standard library: go/parser for syntax, go/types for
// semantics, and the stdlib "source" importer for dependencies outside the
// module. There is no golang.org/x/tools dependency, so the linter builds
// and runs on an offline toolchain.
type Loader struct {
	Fset    *token.FileSet
	Root    string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	dirs     map[string]string // import path -> absolute dir
	pkgs     map[string]*Package
	checking map[string]bool
	std      types.Importer
	opts     LoadOpts
}

// NewLoader scans the module rooted at root (the directory containing
// go.mod) and registers every directory holding non-test Go files. Packages
// are type-checked lazily by Load/All. Directories named testdata or vendor
// and dot/underscore directories are skipped, so analyzer fixtures do not
// count as module packages.
func NewLoader(root string) (*Loader, error) {
	return NewLoaderOpts(root, LoadOpts{})
}

// NewLoaderOpts is NewLoader with explicit discovery options.
func NewLoaderOpts(root string, opts LoadOpts) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		Root:     abs,
		ModPath:  modPath,
		dirs:     make(map[string]string),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
		std:      importer.ForCompiler(fset, "source", nil),
		opts:     opts,
	}
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		// Discovery keys off non-test files: a directory holding only tests
		// is not a production package even when IncludeTests is set.
		if len(goFiles(path, false)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// goFiles returns the sorted .go file paths in dir; _test.go files only when
// includeTests is set.
func goFiles(dir string, includeTests bool) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out
}

// AddDir registers an extra directory under the given import path, outside
// the module walk. The fixture test harness uses it to type-check
// testdata/src packages as if they lived inside the module.
func (l *Loader) AddDir(importPath, dir string) {
	l.dirs[importPath] = dir
}

// Paths returns the sorted import paths of every registered package.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Load parses and type-checks the package with the given import path
// (memoized). Module-internal imports resolve through the loader itself;
// everything else falls back to the stdlib source importer.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s is not part of module %s", importPath, l.ModPath)
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	var files []*ast.File
	var filenames []string
	for _, fname := range goFiles(dir, l.opts.IncludeTests) {
		f, err := parser.ParseFile(l.Fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		filenames = append(filenames, fname)
	}
	if l.opts.IncludeTests {
		files, filenames = dropExternalTestFiles(files, filenames)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Filenames: filenames, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// dropExternalTestFiles removes files belonging to an external *_test
// package: they declare a different package name and cannot be type-checked
// in the same unit. The production package name is taken from the first
// file whose name does not end in "_test"; when only external test files
// exist the directory keeps them (it was only discoverable via AddDir).
func dropExternalTestFiles(files []*ast.File, filenames []string) ([]*ast.File, []string) {
	prodName := ""
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			prodName = f.Name.Name
			break
		}
	}
	if prodName == "" {
		return files, filenames
	}
	var outF []*ast.File
	var outN []string
	for i, f := range files {
		if f.Name.Name != prodName {
			continue
		}
		outF = append(outF, f)
		outN = append(outN, filenames[i])
	}
	return outF, outN
}

// Import implements types.Importer so that a Loader can serve as the
// importer of its own type-checking passes.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// All loads every registered package in sorted import-path order.
func (l *Loader) All() ([]*Package, error) {
	var out []*Package
	for _, p := range l.Paths() {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
