package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// UndoScope guards the invariant the incremental engine's sparse undo log
// silently depends on: every mutation of the compiled routing state
// (engine, entry, RoutingTables, nodeArena in internal/bgpsim) must happen
// on the recording path — reachable, over the static call graph in the
// interprocedural summaries, from the Converge*/Apply/applyScoped/Revert
// roots. A write reached any other way bypasses undo recording, and the
// next Revert restores a world that never existed. Writes to bare local
// variables are rebinds, not shared-state mutation, and are out of scope;
// the rule looks at selector/index/deref stores, IncDec, and the copy/delete
// builtins whose target's type chain includes a protected named type.
//
// The rule is configuration-driven (NewUndoScope) so fixture suites can
// exercise it against a miniature state machine without colliding with the
// real bgpsim package. The production instance carries one scope per
// protected package: bgpsim's undo log, and the composition layer's cascade
// bookkeeping (fired/pending/injected in Composition), which the same
// argument protects — a Composition mutated outside Compose/Replay replays
// a cascade history that never happened.
var UndoScope = NewUndoScope(
	UndoScopeConfig{
		PkgSuffix:  "/internal/bgpsim",
		StateTypes: []string{"engine", "entry", "RoutingTables", "nodeArena"},
		Roots: []string{
			"Converge", "ConvergeWorkers", "ConvergeState", "ConvergeStateCtx",
			"Apply", "applyScoped", "Revert",
		},
	},
	UndoScopeConfig{
		PkgSuffix:  "/internal/timeline",
		StateTypes: []string{"Composition"},
		Roots:      []string{"Compose", "ReplayCtx", "Replay"},
	},
)

// UndoScopeConfig scopes the rule to one package, its protected state
// types, and the entry points of the recording path (bare declaration
// names; both free functions and methods match).
type UndoScopeConfig struct {
	PkgSuffix  string   // rule applies to packages with this import-path suffix
	StateTypes []string // named types (declared in that package) whose values are protected
	Roots      []string // functions the recording path starts from
}

// NewUndoScope builds an undoscope analyzer for the given configurations —
// one scope per protected package; each pass runs the scope (if any) whose
// package suffix matches. The production instance is UndoScope; tests build
// fixture-scoped ones.
func NewUndoScope(cfgs ...UndoScopeConfig) *Analyzer {
	return &Analyzer{
		Name: "undoscope",
		Doc:  "engine state writes must be reachable from the undo-recording path (applyDelta/Revert)",
		Run: func(pass *Pass) {
			for _, cfg := range cfgs {
				runUndoScope(pass, cfg)
			}
		},
	}
}

func runUndoScope(pass *Pass, cfg UndoScopeConfig) {
	if pass.Facts == nil || !strings.HasSuffix(pass.Pkg.Path, cfg.PkgSuffix) {
		return
	}
	stateSet := make(map[string]bool, len(cfg.StateTypes))
	for _, t := range cfg.StateTypes {
		stateSet[pass.Pkg.Path+"."+t] = true
	}
	rootNames := make(map[string]bool, len(cfg.Roots))
	for _, r := range cfg.Roots {
		rootNames[r] = true
	}

	var roots []string
	decls := packageFuncDecls(pass.Pkg)
	for _, d := range decls {
		if rootNames[d.fd.Name.Name] {
			roots = append(roots, FuncID(d.fn))
		}
	}
	sort.Strings(roots)
	reach := pass.Facts.Reachable(roots)

	for _, d := range decls {
		if reach[FuncID(d.fn)] {
			continue
		}
		reportStateWrites(pass, d.fd, stateSet)
	}
}

type funcDecl struct {
	fd *ast.FuncDecl
	fn *types.Func
}

// packageFuncDecls lists every declared function with a body, in file order.
func packageFuncDecls(pkg *Package) []funcDecl {
	var out []funcDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func); isFn {
				out = append(out, funcDecl{fd, fn})
			}
		}
	}
	return out
}

// reportStateWrites flags every protected-state write inside fd.
func reportStateWrites(pass *Pass, fd *ast.FuncDecl, stateSet map[string]bool) {
	report := func(target ast.Expr) {
		pass.Reportf(target.Pos(),
			"write to %s mutates %s state outside the undo-recorded path; route it through Apply/Revert or extend the roots",
			exprString(target), stateTypeOf(pass, target, stateSet))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				if isProtectedWrite(pass, lhs, stateSet) {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			if isProtectedWrite(pass, t.X, stateSet) {
				report(t.X)
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && len(t.Args) > 0 {
				if b, isB := pass.Pkg.Info.ObjectOf(fun).(*types.Builtin); isB &&
					(b.Name() == "copy" || b.Name() == "delete") {
					if isProtectedWrite(pass, t.Args[0], stateSet) {
						report(t.Args[0])
					}
				}
			}
		}
		return true
	})
}

// isProtectedWrite reports whether the write target reaches into a protected
// named type. Bare identifiers are local/parameter rebinds and never count;
// anything deeper (selector, index, deref) counts when some subexpression's
// type — pointers dereferenced — is protected.
func isProtectedWrite(pass *Pass, target ast.Expr, stateSet map[string]bool) bool {
	if _, bare := ast.Unparen(target).(*ast.Ident); bare {
		return false
	}
	return stateTypeOf(pass, target, stateSet) != ""
}

// stateTypeOf returns the name of the first protected named type found in
// the target's subexpressions, or "".
func stateTypeOf(pass *Pass, target ast.Expr, stateSet map[string]bool) string {
	found := ""
	ast.Inspect(target, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.TypeOf(ex)
		if t == nil {
			return true
		}
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if stateSet[key] {
				found = named.Obj().Name()
			}
		}
		return true
	})
	return found
}
