// Package analysis is a small stdlib-only static-analysis framework plus the
// repo-specific analyzers behind cmd/humnetlint. The analyzers enforce the
// determinism invariants that the reproduction's parallel engine depends on:
// bit-identical output for any worker count requires that no hot path leaks
// map iteration order, wall-clock time, ambient randomness, or racy shared
// accumulation (see DESIGN.md, "Determinism invariants").
//
// Findings can be suppressed at the offending line (or the line directly
// above it) with an explicit, reasoned comment:
//
//	//humnet:allow <rule>[,<rule>...] -- <reason>
//
// The reason is mandatory: an intentional order-insensitive loop gets
// documented instead of silently skipped. Malformed suppression comments are
// themselves reported under the rule name "suppression".
package analysis

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/parallel"
)

// Finding is one rule violation at a source position. Fix, when present, is
// a machine-applicable remedy (see fix.go for the safety rules).
type Finding struct {
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Col     int           `json:"col"`
	Rule    string        `json:"rule"`
	Message string        `json:"message"`
	Fix     *SuggestedFix `json:"fix,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one named rule: a documented check over a type-checked package.
type Analyzer struct {
	Name string // rule name used in output and suppression comments
	Doc  string // one-line explanation of the rule
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package. Facts holds the
// module-wide interprocedural summaries (nil when the driver ran without
// them; the interprocedural rules then stay quiet or degrade to their
// intraprocedural half).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Facts    *Facts
	report   func(pos token.Pos, msg string, fix *SuggestedFix)
}

// Reportf records a finding at pos. Suppressed findings are counted but not
// returned.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...), nil)
}

// ReportFixf records a finding carrying a suggested fix (which may be nil
// when no safe rewrite exists for this instance).
func (p *Pass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...), fix)
}

// All returns every analyzer in the suite, in stable order: the four
// AST-local rules from PR 3, then the four interprocedural rules built on
// the summary substrate.
func All() []*Analyzer {
	return []*Analyzer{RangeMap, WildRand, ErrDrop, ParAccum, AliasRet, CtxFlow, AtomicMix, UndoScope}
}

// Result is the outcome of running analyzers over packages.
type Result struct {
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// suppressRe matches a well-formed suppression comment. The comment must be
// a line comment starting exactly with "humnet:allow", name one or more
// known rules, and carry a reason after " -- ".
var suppressRe = regexp.MustCompile(`^//humnet:allow\s+([a-zA-Z0-9_,\s]+?)\s+--\s+(\S.*)$`)

// suppressKey locates a suppression: a rule allowed at a file line.
type suppressKey struct {
	file string
	line int
	rule string
}

// knownRules returns the set of rule names suppression comments may name.
func knownRules(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// collectSuppressions indexes every //humnet:allow comment in pkg and
// reports malformed ones (bad syntax, unknown rule, missing reason) as
// findings under the "suppression" rule.
func collectSuppressions(fset *token.FileSet, pkg *Package, known map[string]bool, bad func(Finding)) map[suppressKey]bool {
	idx := make(map[suppressKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//humnet:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := suppressRe.FindStringSubmatch(text)
				if m == nil {
					bad(Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule:    "suppression",
						Message: "malformed suppression comment; want //humnet:allow <rule> -- <reason>",
					})
					continue
				}
				for _, rule := range strings.Split(m[1], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					if !known[rule] {
						bad(Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    "suppression",
							Message: fmt.Sprintf("suppression names unknown rule %q", rule),
						})
						continue
					}
					idx[suppressKey{pos.Filename, pos.Line, rule}] = true
				}
			}
		}
	}
	return idx
}

// Options configures a driver run.
type Options struct {
	// Workers bounds the fan-out across packages (and across packages during
	// fact building). <= 0 means GOMAXPROCS; 1 runs serially. Findings are
	// bit-identical for every value: each package's findings land at its
	// index and the merged list is fully sorted.
	Workers int
	// Facts supplies precomputed interprocedural summaries; nil builds them
	// from the packages (through Cache when set).
	Facts *Facts
	// Cache, when set and Facts is nil, serves per-package summaries
	// content-addressed by file hash instead of recomputing them.
	Cache *FactCache
}

// Run executes the analyzers over the packages serially with freshly built
// facts — the PR 3 entry point, kept for tests and simple callers.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	return RunOpts(fset, pkgs, analyzers, Options{Workers: 1})
}

// RunOpts executes the analyzers over the packages, applies suppression
// comments, and returns the surviving findings sorted by position. Packages
// are analyzed on at most opt.Workers goroutines; the result is
// bit-identical for any worker count.
func RunOpts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opt Options) Result {
	facts := opt.Facts
	if facts == nil {
		perPkg, err := parallel.Map(context.Background(), len(pkgs), opt.Workers, func(i int) ([]Summary, error) {
			return CachedPackageSummaries(opt.Cache, pkgs[i]), nil
		})
		if err != nil {
			panic(err) // summary building never errors; only task panics arrive here
		}
		facts = MergeFacts(perPkg)
	}
	known := knownRules(analyzers)
	type pkgResult struct {
		findings   []Finding
		suppressed int
	}
	outs, err := parallel.Map(context.Background(), len(pkgs), opt.Workers, func(i int) (pkgResult, error) {
		var pr pkgResult
		pkg := pkgs[i]
		sup := collectSuppressions(fset, pkg, known, func(f Finding) {
			pr.findings = append(pr.findings, f)
		})
		for _, an := range analyzers {
			pass := &Pass{Analyzer: an, Fset: fset, Pkg: pkg, Facts: facts}
			pass.report = func(pos token.Pos, msg string, fix *SuggestedFix) {
				p := fset.Position(pos)
				if sup[suppressKey{p.Filename, p.Line, an.Name}] ||
					sup[suppressKey{p.Filename, p.Line - 1, an.Name}] {
					pr.suppressed++
					return
				}
				pr.findings = append(pr.findings, Finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Rule: an.Name, Message: msg, Fix: fix,
				})
			}
			an.Run(pass)
		}
		return pr, nil
	})
	if err != nil {
		panic(err) // analyzers never return errors; only task panics arrive here
	}
	var res Result
	for _, pr := range outs {
		res.Findings = append(res.Findings, pr.findings...)
		res.Suppressed += pr.suppressed
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return res
}

// --- shared AST helpers used by several analyzers ---

// rootIdent strips parens, selectors, index expressions, and derefs down to
// the base identifier of an lvalue or receiver expression (nil when the
// expression does not bottom out at an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object bound to the root identifier of
// e was declared inside the source span [pos, end). A nil object (package
// names, struct fields without objects) counts as outside.
func (p *Pass) declaredWithin(e ast.Expr, pos, end token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := p.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= pos && obj.Pos() < end
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions, and indirect calls through values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprString renders an expression compactly for messages and for matching
// a sort call's argument against an append target.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
