// Package analysis is a small stdlib-only static-analysis framework plus the
// repo-specific analyzers behind cmd/humnetlint. The analyzers enforce the
// determinism invariants that the reproduction's parallel engine depends on:
// bit-identical output for any worker count requires that no hot path leaks
// map iteration order, wall-clock time, ambient randomness, or racy shared
// accumulation (see DESIGN.md, "Determinism invariants").
//
// Findings can be suppressed at the offending line (or the line directly
// above it) with an explicit, reasoned comment:
//
//	//humnet:allow <rule>[,<rule>...] -- <reason>
//
// The reason is mandatory: an intentional order-insensitive loop gets
// documented instead of silently skipped. Malformed suppression comments are
// themselves reported under the rule name "suppression".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one named rule: a documented check over a type-checked package.
type Analyzer struct {
	Name string // rule name used in output and suppression comments
	Doc  string // one-line explanation of the rule
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	report   func(pos token.Pos, msg string)
}

// Reportf records a finding at pos. Suppressed findings are counted but not
// returned.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{RangeMap, WildRand, ErrDrop, ParAccum}
}

// Result is the outcome of running analyzers over packages.
type Result struct {
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// suppressRe matches a well-formed suppression comment. The comment must be
// a line comment starting exactly with "humnet:allow", name one or more
// known rules, and carry a reason after " -- ".
var suppressRe = regexp.MustCompile(`^//humnet:allow\s+([a-zA-Z0-9_,\s]+?)\s+--\s+(\S.*)$`)

// suppressKey locates a suppression: a rule allowed at a file line.
type suppressKey struct {
	file string
	line int
	rule string
}

// knownRules returns the set of rule names suppression comments may name.
func knownRules(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// collectSuppressions indexes every //humnet:allow comment in pkg and
// reports malformed ones (bad syntax, unknown rule, missing reason) as
// findings under the "suppression" rule.
func collectSuppressions(fset *token.FileSet, pkg *Package, known map[string]bool, bad func(Finding)) map[suppressKey]bool {
	idx := make(map[suppressKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//humnet:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := suppressRe.FindStringSubmatch(text)
				if m == nil {
					bad(Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Rule:    "suppression",
						Message: "malformed suppression comment; want //humnet:allow <rule> -- <reason>",
					})
					continue
				}
				for _, rule := range strings.Split(m[1], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					if !known[rule] {
						bad(Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Rule:    "suppression",
							Message: fmt.Sprintf("suppression names unknown rule %q", rule),
						})
						continue
					}
					idx[suppressKey{pos.Filename, pos.Line, rule}] = true
				}
			}
		}
	}
	return idx
}

// Run executes the analyzers over the packages, applies suppression
// comments, and returns the surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	known := knownRules(analyzers)
	for _, pkg := range pkgs {
		sup := collectSuppressions(fset, pkg, known, func(f Finding) {
			res.Findings = append(res.Findings, f)
		})
		for _, an := range analyzers {
			pass := &Pass{Analyzer: an, Fset: fset, Pkg: pkg}
			pass.report = func(pos token.Pos, msg string) {
				p := fset.Position(pos)
				if sup[suppressKey{p.Filename, p.Line, an.Name}] ||
					sup[suppressKey{p.Filename, p.Line - 1, an.Name}] {
					res.Suppressed++
					return
				}
				res.Findings = append(res.Findings, Finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Rule: an.Name, Message: msg,
				})
			}
			an.Run(pass)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return res
}

// --- shared AST helpers used by several analyzers ---

// rootIdent strips parens, selectors, index expressions, and derefs down to
// the base identifier of an lvalue or receiver expression (nil when the
// expression does not bottom out at an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object bound to the root identifier of
// e was declared inside the source span [pos, end). A nil object (package
// names, struct fields without objects) counts as outside.
func (p *Pass) declaredWithin(e ast.Expr, pos, end token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := p.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= pos && obj.Pos() < end
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions, and indirect calls through values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprString renders an expression compactly for messages and for matching
// a sort call's argument against an append target.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
