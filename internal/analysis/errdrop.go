package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags calls whose error result is silently discarded: a call used
// as a bare expression statement even though the callee returns an error.
// Errors must be handled or explicitly acknowledged with `_ =`; deferred
// cleanup calls are out of scope (conventionally best-effort). Print-style
// writes to stderr/stdout and writes into strings.Builder/bytes.Buffer
// (documented to never fail) are exempt, matching errcheck's defaults.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error results must be handled or explicitly discarded with _ =",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || exemptErrDrop(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s includes an error that is discarded; handle it or assign to _",
				exprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	t := pass.Pkg.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// neverFails lists receiver types whose Write* methods are documented to
// always return a nil error.
var neverFails = map[string]bool{
	"*strings.Builder": true, "strings.Builder": true,
	"*bytes.Buffer": true, "bytes.Buffer": true,
}

func exemptErrDrop(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.calleeFunc(call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return neverFails[types.TypeString(sig.Recv().Type(), nil)]
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	if hasPrefix(fn.Name(), "Print") {
		return true // stdout convention, matching errcheck defaults
	}
	if hasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		arg := call.Args[0]
		if t := pass.Pkg.Info.TypeOf(arg); t != nil && neverFails[types.TypeString(t, nil)] {
			return true
		}
		// Writes to the process-standard streams follow the Print rule.
		if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
			if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}
