package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// loadFixturePkg loads one testdata/src fixture as a pseudo-internal
// package for white-box fact assertions.
func loadFixturePkg(t *testing.T, fixture string, opts LoadOpts) (*Loader, *Package) {
	t.Helper()
	root := moduleRoot(t)
	l, err := NewLoaderOpts(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := "repro/internal/" + fixture + "fix"
	l.AddDir(path, filepath.Join(root, "internal", "analysis", "testdata", "src", fixture))
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, pkg
}

func TestSummariesCtxFacts(t *testing.T) {
	_, pkg := loadFixturePkg(t, "ctxflow", LoadOpts{})
	facts := BuildFacts([]*Package{pkg}, 1)
	prefix := pkg.Path + "."

	waits := facts.Lookup(prefix + "waitCtx")
	if waits == nil || waits.CtxParam < 0 {
		t.Fatalf("waitCtx summary = %+v, want a context parameter index", waits)
	}
	// Direct ambient blocker: passes a literal Background to waitCtx.
	if !facts.AmbientBlocker(prefix + "blockAmbient") {
		t.Error("blockAmbient not marked as ambient blocker")
	}
	// Transitive: the merge fixpoint must carry the mark one frame up.
	if !facts.AmbientBlocker(prefix + "blockTransitive") {
		t.Error("blockTransitive not marked as ambient blocker (fixpoint broken)")
	}
	// Forwarding its own context does not make a function ambient.
	if facts.AmbientBlocker(prefix + "Forward") {
		t.Error("Forward forwards ctx but is marked ambient")
	}
	if facts.AmbientBlocker(prefix + "pure") {
		t.Error("pure never blocks but is marked ambient")
	}
}

func TestSummariesAliasAndAtomicFacts(t *testing.T) {
	_, aliasPkg := loadFixturePkg(t, "aliasret", LoadOpts{})
	facts := BuildFacts([]*Package{aliasPkg}, 1)
	view := facts.Lookup(aliasPkg.Path + ".view")
	if view == nil {
		t.Fatal("no summary for view")
	}
	want := []string{"var.registry"}
	if got := view.AliasReturns["0"]; !reflect.DeepEqual(got, want) {
		t.Errorf("view.AliasReturns[0] = %v, want %v", got, want)
	}

	_, atomicPkg := loadFixturePkg(t, "atomicmix", LoadOpts{})
	afacts := BuildFacts([]*Package{atomicPkg}, 1)
	if !afacts.AtomicField(atomicPkg.Path + ".counter.n") {
		t.Error("counter.n not in the atomic field set")
	}
	if afacts.AtomicField(atomicPkg.Path + ".counter.name") {
		t.Error("counter.name wrongly in the atomic field set")
	}
	if !afacts.AtomicField("var." + atomicPkg.Path + ".hits") {
		t.Error("package var hits not in the atomic field set")
	}
}

func TestReachableFollowsCallGraph(t *testing.T) {
	_, pkg := loadFixturePkg(t, "undoscope", LoadOpts{})
	facts := BuildFacts([]*Package{pkg}, 1)
	prefix := pkg.Path + "."
	reach := facts.Reachable([]string{prefix + "Apply", prefix + "Revert"})
	for _, id := range []string{"Apply", "Revert", "record"} {
		if !reach[prefix+id] {
			t.Errorf("%s not reachable from the roots", id)
		}
	}
	for _, id := range []string{"Rogue", "Bump", "Seed"} {
		if reach[prefix+id] {
			t.Errorf("%s wrongly reachable from the roots", id)
		}
	}
}

func TestBuildFactsWorkerCountInvariant(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	summariesJSON := func(workers int) []byte {
		facts := BuildFacts(pkgs, workers)
		ids := make([]string, 0, len(facts.byID))
		for id := range facts.byID {
			ids = append(ids, id)
		}
		b, err := json.Marshal(struct {
			N       int
			Ambient []string
		}{len(ids), sortedKeys(facts.ambient)})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := summariesJSON(1)
	parallelJSON := summariesJSON(4)
	if string(serial) != string(parallelJSON) {
		t.Errorf("facts differ across worker counts:\n-1-\n%s\n-4-\n%s", serial, parallelJSON)
	}
}

func TestFactCacheRoundTrip(t *testing.T) {
	_, pkg := loadFixturePkg(t, "ctxflow", LoadOpts{})
	cache, err := OpenFactCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := FactKey(pkg)
	if err != nil {
		t.Fatal(err)
	}

	cold := PackageSummaries(pkg)
	if len(cold) == 0 {
		t.Fatal("no summaries computed")
	}
	if _, ok := cache.Get(key, pkg.Path); ok {
		t.Fatal("Get hit on an empty cache")
	}
	warm := CachedPackageSummaries(cache, pkg) // miss: computes and stores
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cold-path summaries differ from direct computation")
	}
	got, ok := cache.Get(key, pkg.Path)
	if !ok {
		t.Fatal("Get miss after CachedPackageSummaries stored the entry")
	}
	if !reflect.DeepEqual(got, cold) {
		t.Errorf("cached summaries differ from computed:\n%+v\nvs\n%+v", got, cold)
	}
	// A warm re-read through the same helper is byte-identical.
	rewarm := CachedPackageSummaries(cache, pkg)
	a, _ := json.Marshal(warm)
	b, _ := json.Marshal(rewarm)
	if string(a) != string(b) {
		t.Errorf("warm summaries not byte-identical to cold:\n%s\nvs\n%s", a, b)
	}
	// The entry must not resolve under a different package path.
	if _, ok := cache.Get(key, "repro/internal/otherpkg"); ok {
		t.Error("Get returned an entry recorded for a different package path")
	}
}

func TestFactKeyTracksFileContent(t *testing.T) {
	root := moduleRoot(t)
	src := filepath.Join(root, "internal", "analysis", "testdata", "src", "ctxflow")

	// Copy the fixture into a scratch dir so we can mutate a file.
	scratch := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	load := func() *Package {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		path := "repro/internal/ctxflowfix"
		l.AddDir(path, scratch)
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		return pkg
	}
	before, err := FactKey(load())
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(scratch, "hit.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := FactKey(load())
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Error("FactKey unchanged after file content changed")
	}
}
