package analysis

// Suggested fixes. A fix is a set of byte-offset text edits confined to the
// finding's own file. Safety rules (see DESIGN.md §9): a fix must be
// semantics-preserving for the non-aliased reading of the code, must not
// require new imports, and must be idempotent — re-running the analyzers
// over fixed source produces no finding and therefore no further edit.
// aliasret's copy-on-return rewrites `return E` to
// `return append(E[:0:0], E...)` (the zero-capacity reslice forces a fresh
// backing array and is itself recognised as fresh by the analyzer);
// ctxflow's context threading replaces a literal context.Background()/TODO()
// argument with the in-scope context expression. Everything subtler is
// reported without a fix.

import (
	"fmt"
	"os"
	"sort"
)

// TextEdit replaces the half-open byte range [Start, End) of the finding's
// file with New.
type TextEdit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// SuggestedFix is an optional machine-applicable remedy attached to a
// Finding. All edits apply to the finding's File.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes applies every suggested fix in findings to the files on disk.
// Edits are grouped per file, sorted by offset, and applied back-to-front so
// earlier offsets stay valid; when two edits overlap, the one starting
// earlier wins and the other is skipped (deterministically, since findings
// arrive position-sorted). Returns the number of edits applied and the
// files rewritten.
func ApplyFixes(findings []Finding) (edits, files int, err error) {
	type fileEdit struct {
		TextEdit
		order int
	}
	byFile := make(map[string][]fileEdit)
	order := 0
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[f.File] = append(byFile[f.File], fileEdit{e, order})
			order++
		}
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		es := byFile[path]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Start != es[j].Start {
				return es[i].Start < es[j].Start
			}
			return es[i].order < es[j].order
		})
		// Drop overlapping or out-of-order edits: keep the first of any
		// overlapping pair.
		kept := es[:1]
		for _, e := range es[1:] {
			if e.Start < kept[len(kept)-1].End {
				continue
			}
			kept = append(kept, e)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return edits, files, fmt.Errorf("analysis: apply fixes: %w", rerr)
		}
		out := make([]byte, 0, len(data))
		prev := 0
		ok := true
		for _, e := range kept {
			if e.Start < prev || e.End > len(data) || e.Start > e.End {
				ok = false
				break
			}
			out = append(out, data[prev:e.Start]...)
			out = append(out, e.New...)
			prev = e.End
		}
		if !ok {
			return edits, files, fmt.Errorf("analysis: apply fixes: stale edit offsets in %s", path)
		}
		out = append(out, data[prev:]...)
		mode := os.FileMode(0o644)
		if st, serr := os.Stat(path); serr == nil {
			mode = st.Mode().Perm()
		}
		if werr := os.WriteFile(path, out, mode); werr != nil {
			return edits, files, fmt.Errorf("analysis: apply fixes: %w", werr)
		}
		edits += len(kept)
		files++
	}
	return edits, files, nil
}
