package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// factSchemaVersion versions both the Summary JSON shape and the key
// derivation. Bump it whenever a Summary field changes meaning, so stale
// entries miss instead of decoding into the wrong facts.
const factSchemaVersion = 1

// writeFactField appends one length-prefixed key ingredient — the same
// injective encoding internal/experiment's cache key uses: the prefix makes
// field boundaries part of the encoding, so no ingredient can alias a
// neighbouring one.
func writeFactField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
	b.WriteByte('\n')
}

// FactKey is the content address of one package's summaries:
// hash(schema version, import path, per source file: base name + content
// hash). Summaries are a pure function of the package's source, so equal
// keys — and only equal keys — may share cached facts. Import-path changes
// and file renames change the key even when contents do not.
func FactKey(pkg *Package) (string, error) {
	var b strings.Builder
	writeFactField(&b, "v"+strconv.Itoa(factSchemaVersion))
	writeFactField(&b, pkg.Path)
	for _, fname := range pkg.Filenames {
		data, err := os.ReadFile(fname)
		if err != nil {
			return "", fmt.Errorf("analysis: fact key for %s: %w", pkg.Path, err)
		}
		sum := sha256.Sum256(data)
		writeFactField(&b, filepath.Base(fname))
		writeFactField(&b, hex.EncodeToString(sum[:]))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// factEntry is the on-disk encoding of one package's cached summaries. Path
// is stored redundantly and verified on Get, mirroring the experiment
// cache's ID check: a renamed or hand-edited entry misses instead of serving
// one package facts computed for another.
type factEntry struct {
	Version   int       `json:"version"`
	Path      string    `json:"path"`
	Summaries []Summary `json:"summaries"`
}

// FactCache is a content-addressed on-disk store of per-package summaries:
// one JSON file per key. Writes are atomic (temp file + rename); unreadable
// or corrupt entries are treated as misses and overwritten by the next Put.
type FactCache struct {
	dir string
}

// OpenFactCache creates dir if needed and returns a cache rooted there.
func OpenFactCache(dir string) (*FactCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("analysis: empty fact cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: open fact cache: %w", err)
	}
	return &FactCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *FactCache) Dir() string { return c.dir }

// path maps a key to its entry file.
func (c *FactCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the summaries stored under key, verifying schema version and
// import path. Any failure is a miss.
func (c *FactCache) Get(key, wantPath string) ([]Summary, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e factEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != factSchemaVersion || e.Path != wantPath {
		return nil, false
	}
	return e.Summaries, true
}

// Put stores a package's summaries under key atomically.
func (c *FactCache) Put(key string, pkgPath string, sums []Summary) error {
	data, err := json.Marshal(factEntry{Version: factSchemaVersion, Path: pkgPath, Summaries: sums})
	if err != nil {
		return fmt.Errorf("analysis: encode fact entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("analysis: fact cache put: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("analysis: fact cache put: %w", werr)
		}
		return fmt.Errorf("analysis: fact cache put: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("analysis: fact cache put: %w", err)
	}
	return nil
}

// CachedPackageSummaries returns pkg's summaries through the cache: a hit
// returns the stored facts; a miss computes, stores (best effort — a failed
// Put degrades to cold behaviour), and returns them.
func CachedPackageSummaries(cache *FactCache, pkg *Package) []Summary {
	if cache == nil {
		return PackageSummaries(pkg)
	}
	key, err := FactKey(pkg)
	if err != nil {
		return PackageSummaries(pkg)
	}
	if sums, ok := cache.Get(key, pkg.Path); ok {
		return sums
	}
	sums := PackageSummaries(pkg)
	// A failed Put degrades to cold analysis on the next run, never to wrong
	// facts, so the error is deliberately not fatal.
	_ = cache.Put(key, pkg.Path, sums)
	return sums
}
