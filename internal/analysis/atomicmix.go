package analysis

import (
	"go/ast"
)

// AtomicMix flags mixed access disciplines on one memory location: a struct
// field (or package-level variable) that some function in the module
// addresses through sync/atomic while another function loads or stores it
// plainly. The plain access races with the atomic one — the /metrics
// counters are the motivating case. The atomic side comes from the
// module-wide interprocedural summaries, so the two sides may live in
// different packages (or in a test file, when the loader includes tests).
// Typed atomics (atomic.Int64 et al.) need no rule: the type system already
// forbids plain access to them. Composite-literal field keys are
// initialization, not access, and are exempt.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		spans := fileAtomicSpans(pass.Pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if inSpans(spans, int(t.Pos())) {
					return true
				}
				key := accessKey(pass.Pkg, t)
				if key != "" && pass.Facts.AtomicField(key) {
					pass.Reportf(t.Pos(),
						"%s is accessed with sync/atomic elsewhere; this plain access races with it — use atomic operations consistently",
						key)
				}
			case *ast.Ident:
				// Package-level variables accessed bare. Only uses count:
				// the declaration itself and composite-literal keys are not
				// accesses.
				if pass.Pkg.Info.Uses[t] == nil || inSpans(spans, int(t.Pos())) {
					return true
				}
				key := accessKey(pass.Pkg, t)
				if key != "" && pass.Facts.AtomicField(key) {
					pass.Reportf(t.Pos(),
						"%s is accessed with sync/atomic elsewhere; this plain access races with it — use atomic operations consistently",
						key)
				}
			}
			return true
		})
	}
}

// fileAtomicSpans records the spans of every sync/atomic call in the file so
// the &x.f inside atomic.AddInt64(&x.f, 1) is not itself a plain access.
func fileAtomicSpans(pkg *Package, file *ast.File) []span {
	var out []span
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "sync/atomic" {
				out = append(out, span{int(call.Pos()), int(call.End())})
			}
		}
		return true
	})
	return out
}
