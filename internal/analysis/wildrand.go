package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// WildRand flags ambient nondeterminism in internal simulation packages:
// math/rand (seeded from global state), time.Now/time.Since (wall clock),
// and os.Getenv (environment). Every stochastic component must draw from an
// explicitly seeded *rng.Rand and every timing-like quantity must be an
// injected value, or results stop being reproducible from a seed alone.
// internal/rng is exempt: it is the sanctioned home of randomness.
var WildRand = &Analyzer{
	Name: "wildrand",
	Doc:  "simulation packages must not use math/rand, time.Now/Since, or os.Getenv; randomness flows through internal/rng",
	Run:  runWildRand,
}

// wildCalls maps package path -> forbidden top-level names.
var wildCalls = map[string]map[string]bool{
	"time": {"Now": true, "Since": true},
	"os":   {"Getenv": true},
}

func runWildRand(pass *Pass) {
	path := pass.Pkg.Path
	if !strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal/rng") {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a simulation package; use the seedable repro/internal/rng instead", p)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if names := wildCalls[obj.Pkg().Path()]; names != nil && names[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"%s.%s injects ambient state into a simulation package; take the value as a parameter instead",
					obj.Pkg().Path(), obj.Name())
			}
			return true
		})
	}
}
