package bgpsim

import (
	"context"

	"repro/internal/experiment"
)

// Scenario registrations for the routing-security experiments: E14
// (route-leak blast radius) and E16 (exact-prefix hijack capture), both over
// the generated provider hierarchy and the compiled routing engine.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E14",
		Title: "Route-leak blast radius",
		Claim: "A single mid-tier misconfiguration propagates through valley-free routing to a large share of the reachable ASes; stub leaks stay contained.",
		Seed:  5,
		Params: experiment.Schema{
			{Name: "mids", Kind: experiment.Int, Default: 8, Doc: "mid-tier AS count in the generated hierarchy"},
			{Name: "stubs", Kind: experiment.Int, Default: 20, Doc: "stub AS count in the generated hierarchy"},
		},
		Run: runE14,
	})
	experiment.Register(experiment.Def{
		ID:    "E16",
		Title: "Exact-prefix hijack capture",
		Claim: "MOAS hijack capture depends on the attacker's topological position: well-connected mids capture most of the table, stubs only their cone.",
		Seed:  5,
		Params: experiment.Schema{
			{Name: "mids", Kind: experiment.Int, Default: 8, Doc: "mid-tier AS count in the generated hierarchy"},
			{Name: "stubs", Kind: experiment.Int, Default: 20, Doc: "stub AS count in the generated hierarchy"},
		},
		Run: runE16,
	})
}

// runE14 measures leak blast radii across leaker positions.
func runE14(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	rows, err := RunLeakSweepCtx(ctx, p.Int("mids"), p.Int("stubs"), seed, experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E14", "Route-leak blast radius",
		"leaker", "asn", "providers", "affected", "affected-share")
	for _, r := range rows {
		t.AddRow(experiment.S(r.LeakerKind), experiment.I64(int64(r.LeakerASN)), experiment.I(r.Providers),
			experiment.I(r.Affected), experiment.F3(r.AffectedShare))
	}
	return res, nil
}

// runE16 measures hijack capture across attacker positions.
func runE16(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	rows, err := RunHijackSweepCtx(ctx, p.Int("mids"), p.Int("stubs"), seed, experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E16", "Exact-prefix hijack capture",
		"attacker", "asn", "captured", "captured-share")
	for _, r := range rows {
		t.AddRow(experiment.S(r.AttackerKind), experiment.I64(int64(r.AttackerASN)),
			experiment.I(r.Captured), experiment.F3(r.CapturedShare))
	}
	return res, nil
}
