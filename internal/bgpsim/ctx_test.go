package bgpsim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// TestSweepCtxMatchesWorkers pins the ctxflow remediation: the Ctx sweep
// variants with a Background context return exactly the rows the Workers
// entry points do.
func TestSweepCtxMatchesWorkers(t *testing.T) {
	wantLeak, err := RunLeakSweepWorkers(8, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotLeak, err := RunLeakSweepCtx(context.Background(), 8, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLeak, wantLeak) {
		t.Errorf("leak rows differ between Ctx(Background) and Workers")
	}

	wantHijack, err := RunHijackSweepWorkers(8, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotHijack, err := RunHijackSweepCtx(context.Background(), 8, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHijack, wantHijack) {
		t.Errorf("hijack rows differ between Ctx(Background) and Workers")
	}
}

// TestSweepCtxCancelled checks the sweeps stop between events and surface
// ctx.Err() rather than returning partial rows.
func TestSweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rows, err := RunLeakSweepCtx(ctx, 8, 20, 5, 1); err == nil {
		t.Errorf("RunLeakSweepCtx on a cancelled context returned %d rows, want error", len(rows))
	}
	if rows, err := RunHijackSweepCtx(ctx, 8, 20, 5, 1); err == nil {
		t.Errorf("RunHijackSweepCtx on a cancelled context returned %d rows, want error", len(rows))
	}
}

// TestConvergeCtxMatchesWorkers pins Topology.ConvergeCtx to the cold
// convergence oracle, serially and in parallel.
func TestConvergeCtxMatchesWorkers(t *testing.T) {
	h, err := BuildHierarchy(rng.New(9), 6, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := h.Topo.ConvergeWorkers(1)
	for _, workers := range []int{1, 3} {
		got, err := h.Topo.ConvergeCtx(context.Background(), workers)
		if err != nil {
			t.Fatalf("ConvergeCtx(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ConvergeCtx(workers=%d) tables differ from ConvergeWorkers(1)", workers)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Topo.ConvergeCtx(ctx, 1); err == nil {
		t.Error("ConvergeCtx on a cancelled context returned tables, want error")
	}
}
