package bgpsim

import (
	"strings"
	"testing"
)

const sampleTopo = `# three-tier sample
as 1 Tier1-A
as 2 Tier1-B
as 100 Mid
as 1000 Stub
peer 1 2
p2c 1 100
p2c 2 100
p2c 100 1000
origin 1000 pfx-1000
leaker 100
`

func TestParseTopologySample(t *testing.T) {
	topo, err := ParseTopologyString(sampleTopo)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ASNs()); got != 4 {
		t.Fatalf("parsed %d ASes, want 4", got)
	}
	if !topo.HasPeer(1, 2) {
		t.Error("peer 1 2 not applied")
	}
	if !topo.IsLeaker(100) {
		t.Error("leaker 100 not applied")
	}
	rt := topo.Converge()
	if !rt.Reachable(1, "pfx-1000") {
		t.Error("converged topology cannot reach the stub prefix")
	}
}

func TestParseTopologyRoundTrip(t *testing.T) {
	topo, err := ParseTopologyString(sampleTopo)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTopology(topo)
	topo2, err := ParseTopologyString(text)
	if err != nil {
		t.Fatalf("re-parsing formatted topology: %v\n%s", err, text)
	}
	if FormatTopology(topo2) != text {
		t.Fatalf("format/parse/format not stable:\n--- first ---\n%s\n--- second ---\n%s",
			text, FormatTopology(topo2))
	}
	ref1 := topo.convergeReference()
	ref2 := topo2.convergeReference()
	for n, tbl := range ref1 {
		for pfx, want := range tbl {
			if !routesEqual(ref2[n][pfx], want) {
				t.Fatalf("round-tripped topology routes differently at AS %d prefix %s", n, pfx)
			}
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frob 1 2\n",
		"bad ASN":           "as x\n",
		"negative ASN":      "as -3\n",
		"huge ASN":          "as 99999999999999999999\n",
		"duplicate AS":      "as 1\nas 1\n",
		"p2c unknown AS":    "as 1\np2c 1 2\n",
		"peer arity":        "as 1\npeer 1\n",
		"origin arity":      "as 1\norigin 1\n",
		"leaker unknown":    "leaker 7\n",
		"long line":         "as 1 " + strings.Repeat("x", 4096) + "\n",
	}
	for name, in := range cases {
		if _, err := ParseTopologyString(in); err == nil {
			t.Errorf("%s: ParseTopologyString(%q) succeeded, want error", name, in)
		}
	}
}

func TestParseTopologyCommentsAndBlanks(t *testing.T) {
	topo, err := ParseTopologyString("\n# comment only\n  \nas 5 # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ASNs()); got != 1 {
		t.Fatalf("parsed %d ASes, want 1", got)
	}
}

// FuzzParseTopology drives the parser with arbitrary text; whenever a
// topology parses, the compiled engine must match the reference fixpoint on
// it — the parser doubles as a topology generator for the engine-equivalence
// oracle. Seeds include shapes the property suite's generators produce
// (multihoming, lateral peering, leakers).
func FuzzParseTopology(f *testing.F) {
	f.Add(sampleTopo)
	f.Add("as 1\n")
	f.Add("as 1\nas 2\npeer 1 2\norigin 1 p\norigin 2 p\n")
	f.Add("as 1\nas 2\nas 3\np2c 1 2\np2c 2 3\np2c 1 3\norigin 3 pfx\nleaker 2\n")
	f.Add("as 0\norigin 0 pfx-0\n")
	f.Add("# comment\n\nas 10 name\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 2048 {
			return // bound convergence cost, not parser coverage
		}
		topo, err := ParseTopologyString(text)
		if err != nil {
			return
		}
		rt := topo.Converge()
		ref := topo.convergeReference()
		for _, n := range topo.ASNs() {
			for pfx := range ref[n] {
				if !routesEqual(rt.Route(n, pfx), ref[n][pfx]) {
					t.Fatalf("engine diverges from reference at AS %d prefix %q on:\n%s", n, pfx, text)
				}
			}
		}
		// The format must re-parse to an identically-routing topology.
		topo2, err := ParseTopologyString(FormatTopology(topo))
		if err != nil {
			t.Fatalf("formatted topology does not re-parse: %v\n%s", err, FormatTopology(topo))
		}
		ref2 := topo2.convergeReference()
		for n, tbl := range ref {
			for pfx, want := range tbl {
				if !routesEqual(ref2[n][pfx], want) {
					t.Fatalf("round-trip changes routing at AS %d prefix %q on:\n%s", n, pfx, text)
				}
			}
		}
	})
}
