package bgpsim

import (
	"strings"
	"testing"
)

const sampleTopo = `# three-tier sample
as 1 Tier1-A
as 2 Tier1-B
as 100 Mid
as 1000 Stub
peer 1 2
p2c 1 100
p2c 2 100
p2c 100 1000
origin 1000 pfx-1000
leaker 100
`

const sampleScenario = sampleTopo + `# events
withdraw 1000 pfx-1000
announce 2 pfx-1000
link- p2c 100 1000
link+ peer 100 1000
leak 100
leak 100
`

func TestParseScenarioSample(t *testing.T) {
	topo, events, err := ParseScenarioString(sampleScenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(events))
	}
	// The returned topology is the base: events are not pre-applied.
	if !topo.hasOrigin(1000, "pfx-1000") {
		t.Fatal("base topology missing pre-event origin")
	}
	if !topo.HasProviderCustomer(100, 1000) {
		t.Fatal("base topology missing pre-event transit edge")
	}
	// Replaying the validated sequence through the incremental engine must
	// succeed and stay bit-identical to cold convergence at every step.
	c := topo.ConvergeState(1)
	for i, d := range events {
		if _, err := c.Apply(d); err != nil {
			t.Fatalf("replaying event %d (%s): %v", i, formatDelta(d), err)
		}
		assertTablesMatchCold(t, formatDelta(d), c)
	}
	if !c.Topology().HasPeer(100, 1000) {
		t.Error("link+ peer event not applied on replay")
	}
	// The base marks 100 as a leaker; two toggles restore that flag.
	if !c.Topology().IsLeaker(100) {
		t.Error("double leak toggle should restore the base leaker flag")
	}
}

func TestParseScenarioRoundTrip(t *testing.T) {
	topo, events, err := ParseScenarioString(sampleScenario)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatScenario(topo, events)
	topo2, events2, err := ParseScenarioString(text)
	if err != nil {
		t.Fatalf("re-parsing formatted scenario: %v\n%s", err, text)
	}
	if got := FormatScenario(topo2, events2); got != text {
		t.Fatalf("format/parse/format not stable:\n--- first ---\n%s\n--- second ---\n%s", text, got)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	base := "as 1\nas 2\npeer 1 2\norigin 1 p\n"
	cases := map[string]string{
		"base as after event":     base + "leak 1\nas 3\n",
		"base edge after event":   base + "withdraw 1 p\np2c 1 2\n",
		"base origin after event": base + "leak 1\norigin 2 q\n",
		"withdraw absent prefix":  base + "withdraw 2 p\n",
		"withdraw unknown AS":     base + "withdraw 9 p\n",
		"announce duplicate":      base + "announce 1 p\n",
		"link+ existing edge":     base + "link+ peer 1 2\n",
		"link+ self":              base + "link+ p2c 1 1\n",
		"link- missing edge":      base + "link- p2c 1 2\n",
		"link- wrong flavor":      base + "link- p2c 2 1\n",
		"leak unknown AS":         base + "leak 9\n",
		"link bad mode":           base + "link+ sibling 1 2\n",
		"link arity":              base + "link+ p2c 1\n",
		"withdraw arity":          base + "withdraw 1\n",
		"leak arity":              base + "leak\n",
		"event out of order":      base + "withdraw 1 p\nwithdraw 1 p\n",
	}
	for name, in := range cases {
		if _, _, err := ParseScenarioString(in); err == nil {
			t.Errorf("%s: ParseScenarioString(%q) succeeded, want error", name, in)
		}
	}
	// ParseTopology stays strict: event directives are unknown to it.
	for _, in := range []string{"as 1\norigin 1 p\nwithdraw 1 p\n", "as 1\nleak 1\n"} {
		if _, err := ParseTopologyString(in); err == nil {
			t.Errorf("ParseTopologyString(%q) accepted an event line", in)
		}
	}
	// A valid scenario re-checked: the same text parses via ParseScenario.
	if _, _, err := ParseScenarioString(base + "withdraw 1 p\nannounce 1 p\n"); err != nil {
		t.Errorf("inverse event pair should parse: %v", err)
	}
}

func TestParseTopologySample(t *testing.T) {
	topo, err := ParseTopologyString(sampleTopo)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ASNs()); got != 4 {
		t.Fatalf("parsed %d ASes, want 4", got)
	}
	if !topo.HasPeer(1, 2) {
		t.Error("peer 1 2 not applied")
	}
	if !topo.IsLeaker(100) {
		t.Error("leaker 100 not applied")
	}
	rt := topo.Converge()
	if !rt.Reachable(1, "pfx-1000") {
		t.Error("converged topology cannot reach the stub prefix")
	}
}

func TestParseTopologyRoundTrip(t *testing.T) {
	topo, err := ParseTopologyString(sampleTopo)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTopology(topo)
	topo2, err := ParseTopologyString(text)
	if err != nil {
		t.Fatalf("re-parsing formatted topology: %v\n%s", err, text)
	}
	if FormatTopology(topo2) != text {
		t.Fatalf("format/parse/format not stable:\n--- first ---\n%s\n--- second ---\n%s",
			text, FormatTopology(topo2))
	}
	ref1 := topo.convergeReference()
	ref2 := topo2.convergeReference()
	for n, tbl := range ref1 {
		for pfx, want := range tbl {
			if !routesEqual(ref2[n][pfx], want) {
				t.Fatalf("round-tripped topology routes differently at AS %d prefix %s", n, pfx)
			}
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frob 1 2\n",
		"bad ASN":           "as x\n",
		"negative ASN":      "as -3\n",
		"huge ASN":          "as 99999999999999999999\n",
		"duplicate AS":      "as 1\nas 1\n",
		"p2c unknown AS":    "as 1\np2c 1 2\n",
		"peer arity":        "as 1\npeer 1\n",
		"origin arity":      "as 1\norigin 1\n",
		"leaker unknown":    "leaker 7\n",
		"long line":         "as 1 " + strings.Repeat("x", 4096) + "\n",
	}
	for name, in := range cases {
		if _, err := ParseTopologyString(in); err == nil {
			t.Errorf("%s: ParseTopologyString(%q) succeeded, want error", name, in)
		}
	}
}

func TestParseTopologyCommentsAndBlanks(t *testing.T) {
	topo, err := ParseTopologyString("\n# comment only\n  \nas 5 # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ASNs()); got != 1 {
		t.Fatalf("parsed %d ASes, want 1", got)
	}
}

// FuzzParseTopology drives the parser with arbitrary text; whenever a
// document parses, the compiled engine must match the reference fixpoint on
// the base topology, and any event lines must replay through the incremental
// engine bit-identically to cold convergence after every delta — the parser
// doubles as a scenario generator for both oracles. Seeds include shapes the
// property suite's generators produce (multihoming, lateral peering,
// leakers) plus event sequences over them.
func FuzzParseTopology(f *testing.F) {
	f.Add(sampleTopo)
	f.Add(sampleScenario)
	f.Add("as 1\n")
	f.Add("as 1\nas 2\npeer 1 2\norigin 1 p\norigin 2 p\n")
	f.Add("as 1\nas 2\nas 3\np2c 1 2\np2c 2 3\np2c 1 3\norigin 3 pfx\nleaker 2\n")
	f.Add("as 0\norigin 0 pfx-0\n")
	f.Add("# comment\n\nas 10 name\n")
	f.Add("as 1\nas 2\np2c 1 2\norigin 2 p\nwithdraw 2 p\nannounce 1 p\nlink- p2c 1 2\nlink+ peer 1 2\n")
	f.Add("as 1\nas 2\nas 3\np2c 1 2\np2c 1 3\norigin 3 q\nleak 2\nleak 3\nleak 2\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 2048 {
			return // bound convergence cost, not parser coverage
		}
		topo, events, err := ParseScenarioString(text)
		if err != nil {
			return
		}
		rt := topo.Converge()
		ref := topo.convergeReference()
		for _, n := range topo.ASNs() {
			for pfx := range ref[n] {
				if !routesEqual(rt.Route(n, pfx), ref[n][pfx]) {
					t.Fatalf("engine diverges from reference at AS %d prefix %q on:\n%s", n, pfx, text)
				}
			}
		}
		// The format must re-parse to an identically-routing topology.
		topo2, err := ParseTopologyString(FormatTopology(topo))
		if err != nil {
			t.Fatalf("formatted topology does not re-parse: %v\n%s", err, FormatTopology(topo))
		}
		ref2 := topo2.convergeReference()
		for n, tbl := range ref {
			for pfx, want := range tbl {
				if !routesEqual(ref2[n][pfx], want) {
					t.Fatalf("round-trip changes routing at AS %d prefix %q on:\n%s", n, pfx, text)
				}
			}
		}
		if len(events) == 0 {
			return
		}
		// Event sequences replay through the incremental engine; after each
		// delta the live tables must be bit-identical to a cold convergence
		// of the mutated topology (the incremental oracle).
		c := topo.Clone().ConvergeState(1)
		for i, d := range events {
			if _, err := c.Apply(d); err != nil {
				t.Fatalf("event %d (%s) failed on replay after parse validated it: %v\n%s",
					i, formatDelta(d), err, text)
			}
			if err := tablesEqualCold(c); err != nil {
				t.Fatalf("after event %d (%s): %v\n%s", i, formatDelta(d), err, text)
			}
		}
		// And the whole scenario round-trips through its formatter.
		text2 := FormatScenario(topo, events)
		topo3, events3, err := ParseScenarioString(text2)
		if err != nil {
			t.Fatalf("formatted scenario does not re-parse: %v\n%s", err, text2)
		}
		if got := FormatScenario(topo3, events3); got != text2 {
			t.Fatalf("scenario format not stable:\n--- first ---\n%s\n--- second ---\n%s", text2, got)
		}
	})
}
