package bgpsim

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func mustAS(t *testing.T, topo *Topology, n ASN, info ASInfo) {
	t.Helper()
	if err := topo.AddAS(n, info); err != nil {
		t.Fatal(err)
	}
}

func mustPC(t *testing.T, topo *Topology, p, c ASN) {
	t.Helper()
	if err := topo.AddProviderCustomer(p, c); err != nil {
		t.Fatal(err)
	}
}

func mustPeer(t *testing.T, topo *Topology, a, b ASN) {
	t.Helper()
	if err := topo.AddPeer(a, b); err != nil {
		t.Fatal(err)
	}
}

func pathEq(a []ASN, b ...ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAddASValidation(t *testing.T) {
	topo := NewTopology()
	mustAS(t, topo, 1, ASInfo{})
	if err := topo.AddAS(1, ASInfo{}); err == nil {
		t.Error("duplicate AS accepted")
	}
	if err := topo.AddProviderCustomer(1, 99); err == nil {
		t.Error("link to unknown AS accepted")
	}
	if err := topo.AddPeer(1, 1); err == nil {
		t.Error("self peering accepted")
	}
}

func TestOriginRoute(t *testing.T) {
	topo := NewTopology()
	mustAS(t, topo, 10, ASInfo{})
	if err := topo.Originate(10, "p1"); err != nil {
		t.Fatal(err)
	}
	rt := topo.Converge()
	r := rt.Route(10, "p1")
	if r == nil || r.Learned != Origin || !pathEq(r.Path, 10) {
		t.Fatalf("origin route = %+v", r)
	}
}

func TestCustomerChainPropagation(t *testing.T) {
	// 1 (tier1) → 2 (regional) → 3 (stub). Prefix at 3.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	mustPC(t, topo, 2, 3)
	_ = topo.Originate(3, "p")
	rt := topo.Converge()
	if !pathEq(rt.Path(1, "p"), 1, 2, 3) {
		t.Errorf("tier1 path = %v", rt.Path(1, "p"))
	}
	if !pathEq(rt.Path(2, "p"), 2, 3) {
		t.Errorf("regional path = %v", rt.Path(2, "p"))
	}
}

func TestProviderRoutePropagatesDown(t *testing.T) {
	// Prefix at tier1; stub learns it through its provider chain.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	mustPC(t, topo, 2, 3)
	_ = topo.Originate(1, "up")
	rt := topo.Converge()
	if !pathEq(rt.Path(3, "up"), 3, 2, 1) {
		t.Errorf("stub path = %v", rt.Path(3, "up"))
	}
	if rt.Route(3, "up").Learned != FromProvider {
		t.Errorf("learned = %v, want provider", rt.Route(3, "up").Learned)
	}
}

func TestPeeringUpPeerDown(t *testing.T) {
	// C1 ← A peers B → C2. C1 reaches C2's prefix via up-peer-down.
	topo := NewTopology()
	for _, n := range []ASN{100, 200, 1, 2} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 100, 1) // A=100 provider of C1=1
	mustPC(t, topo, 200, 2) // B=200 provider of C2=2
	mustPeer(t, topo, 100, 200)
	_ = topo.Originate(2, "c2")
	rt := topo.Converge()
	if !pathEq(rt.Path(1, "c2"), 1, 100, 200, 2) {
		t.Errorf("path = %v, want [1 100 200 2]", rt.Path(1, "c2"))
	}
}

func TestNoValleyThroughPeerChain(t *testing.T) {
	// A peers B, B peers C. A-originated prefix must NOT reach C via B
	// (peer routes are not exported to peers).
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPeer(t, topo, 1, 2)
	mustPeer(t, topo, 2, 3)
	_ = topo.Originate(1, "a")
	rt := topo.Converge()
	if rt.Reachable(3, "a") {
		t.Errorf("valley path leaked: %v", rt.Path(3, "a"))
	}
	if !rt.Reachable(2, "a") {
		t.Error("direct peer should reach prefix")
	}
}

func TestNoTransitThroughCustomerValley(t *testing.T) {
	// Two providers 1 and 2 share customer 3. A prefix at 1 must not reach 2
	// through the shared customer (customer does not export provider routes
	// to its other provider).
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 3)
	mustPC(t, topo, 2, 3)
	_ = topo.Originate(1, "p1")
	rt := topo.Converge()
	if rt.Reachable(2, "p1") {
		t.Errorf("valley through customer leaked: %v", rt.Path(2, "p1"))
	}
	if !rt.Reachable(3, "p1") {
		t.Error("customer should reach provider prefix")
	}
}

func TestPreferCustomerOverPeerEvenIfLonger(t *testing.T) {
	// AS 10 can reach prefix via a direct peer (short) or via a customer
	// chain (longer). Gao–Rexford prefers the customer route.
	topo := NewTopology()
	for _, n := range []ASN{10, 20, 30, 40} {
		mustAS(t, topo, n, ASInfo{})
	}
	// Customer chain: 10 → 30 → 40 (40 originates).
	mustPC(t, topo, 10, 30)
	mustPC(t, topo, 30, 40)
	// Peer shortcut: 10 peers 20, 20 is also a provider of 40... but then 20
	// learns from customer and exports to peer 10. Peer path: 10-20-40 (len 3)
	// vs customer path 10-30-40 (len 3). Make the customer path longer by
	// inserting 35: 10 → 30 → 35 → 40.
	topo2 := NewTopology()
	for _, n := range []ASN{10, 20, 30, 35, 40} {
		mustAS(t, topo2, n, ASInfo{})
	}
	mustPC(t, topo2, 10, 30)
	mustPC(t, topo2, 30, 35)
	mustPC(t, topo2, 35, 40)
	mustPC(t, topo2, 20, 40)
	mustPeer(t, topo2, 10, 20)
	_ = topo2.Originate(40, "x")
	rt := topo2.Converge()
	r := rt.Route(10, "x")
	if r.Learned != FromCustomer {
		t.Fatalf("learned = %v path = %v, want customer route", r.Learned, r.Path)
	}
	if !pathEq(r.Path, 10, 30, 35, 40) {
		t.Errorf("path = %v, want customer chain", r.Path)
	}
	_ = topo
}

func TestShorterPathTiebreakWithinSameClass(t *testing.T) {
	// Two provider routes to the same prefix; the shorter wins.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3, 9} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 9) // direct provider 1
	mustPC(t, topo, 2, 9) // provider 2...
	mustPC(t, topo, 3, 2) // ...whose provider is 3
	mustPC(t, topo, 3, 1)
	_ = topo.Originate(3, "t")
	rt := topo.Converge()
	// 9 sees "t" via 1 (9-1-3) and via 2 (9-2-3): equal length; lexicographic
	// tiebreak gives via 1.
	if !pathEq(rt.Path(9, "t"), 9, 1, 3) {
		t.Errorf("path = %v, want [9 1 3]", rt.Path(9, "t"))
	}
}

func TestMOASAnycastPicksNearest(t *testing.T) {
	// Prefix originated by 5 and 6; AS 7 (customer of 5) picks 5.
	topo := NewTopology()
	for _, n := range []ASN{5, 6, 7, 1} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 5, 7)
	mustPC(t, topo, 1, 5)
	mustPC(t, topo, 1, 6)
	_ = topo.Originate(5, "any")
	_ = topo.Originate(6, "any")
	rt := topo.Converge()
	if !pathEq(rt.Path(7, "any"), 7, 5) {
		t.Errorf("anycast path = %v, want [7 5]", rt.Path(7, "any"))
	}
}

func TestRemovePeerSeversPath(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPeer(t, topo, 1, 2)
	_ = topo.Originate(2, "p")
	rt := topo.Converge()
	if !rt.Reachable(1, "p") {
		t.Fatal("peer route missing")
	}
	topo.RemovePeer(1, 2)
	if topo.HasPeer(1, 2) {
		t.Error("peer not removed")
	}
	rt = topo.Converge()
	if rt.Reachable(1, "p") {
		t.Error("route survived peer removal")
	}
}

func TestUnreachableWithoutLinks(t *testing.T) {
	topo := NewTopology()
	mustAS(t, topo, 1, ASInfo{})
	mustAS(t, topo, 2, ASInfo{})
	_ = topo.Originate(2, "p")
	rt := topo.Converge()
	if rt.Reachable(1, "p") {
		t.Error("isolated AS should not reach prefix")
	}
	if rt.Path(1, "p") != nil {
		t.Error("path of unreachable should be nil")
	}
}

func TestInfoAndOrigins(t *testing.T) {
	topo := NewTopology()
	mustAS(t, topo, 64500, ASInfo{Name: "Telmex", Country: "MX", Org: "telmex"})
	info, ok := topo.Info(64500)
	if !ok || info.Country != "MX" || info.Org != "telmex" {
		t.Errorf("info = %+v ok=%v", info, ok)
	}
	if _, ok := topo.Info(1); ok {
		t.Error("unknown AS reported present")
	}
	_ = topo.Originate(64500, "a")
	_ = topo.Originate(64500, "b")
	if got := topo.Origins(64500); len(got) != 2 {
		t.Errorf("origins = %v", got)
	}
}

func TestValleyFreeChecker(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3, 4} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 3)
	mustPC(t, topo, 2, 4)
	mustPeer(t, topo, 1, 2)
	// 3 → 1 → 2 → 4: up, peer, down = valley-free.
	if !topo.ValleyFree([]ASN{3, 1, 2, 4}) {
		t.Error("up-peer-down rejected")
	}
	// 1 → 3 ... 3 has no edge to 4: not adjacent.
	if topo.ValleyFree([]ASN{1, 3, 4}) {
		t.Error("non-adjacent path accepted")
	}
	// down then up (valley): 1 → 3 requires 3 → ... back up; build 1→3 then 3→1 invalid (loop) — instead test down-then-peer.
	if topo.ValleyFree([]ASN{4, 2, 1, 3, 1}) {
		t.Error("garbage path accepted")
	}
}

// buildRandomHierarchy wraps the exported generator for the property tests.
func buildRandomHierarchy(r *rng.Rand, nMid, nStub int) (*Topology, []ASN) {
	h, err := BuildHierarchy(r, nMid, nStub)
	if err != nil {
		panic(err)
	}
	return h.Topo, h.Stubs
}

func TestPropertyConvergedPathsAreValleyFree(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := rng.New(seed)
		topo, stubs := buildRandomHierarchy(r, 6, 12)
		for i, s := range stubs {
			_ = topo.Originate(s, prefixName(i))
		}
		rt := topo.Converge()
		for _, n := range topo.ASNs() {
			for _, p := range rt.Prefixes(n) {
				path := rt.Path(n, p)
				if len(path) == 0 {
					continue
				}
				// Traffic flows from n toward the origin; check valley-free
				// in forwarding direction.
				if !topo.ValleyFree(path) {
					t.Fatalf("seed %d: non-valley-free path %v for %s at %d", seed, path, p, n)
				}
				// No loops.
				seen := make(map[ASN]bool)
				for _, hop := range path {
					if seen[hop] {
						t.Fatalf("loop in path %v", path)
					}
					seen[hop] = true
				}
			}
		}
	}
}

func TestPropertyFullReachabilityInHierarchy(t *testing.T) {
	// In a connected hierarchy every stub prefix is reachable from every AS:
	// stubs announce upward to tier1, tier1 peers exchange customer routes,
	// and routes flow down.
	r := rng.New(99)
	topo, stubs := buildRandomHierarchy(r, 5, 10)
	for i, s := range stubs {
		_ = topo.Originate(s, prefixName(i))
	}
	rt := topo.Converge()
	for _, n := range topo.ASNs() {
		for i := range stubs {
			if !rt.Reachable(n, prefixName(i)) {
				t.Errorf("AS %d cannot reach %s", n, prefixName(i))
			}
		}
	}
}

func prefixName(i int) string { return "10." + string(rune('a'+i%26)) + ".0.0/16" }

func TestConvergeDeterministic(t *testing.T) {
	build := func() *RoutingTables {
		r := rng.New(7)
		topo, stubs := buildRandomHierarchy(r, 6, 12)
		for i, s := range stubs {
			_ = topo.Originate(s, prefixName(i))
		}
		return topo.Converge()
	}
	a, b := build(), build()
	r := rng.New(7)
	topo, _ := buildRandomHierarchy(r, 6, 12)
	for _, n := range topo.ASNs() {
		for _, p := range a.Prefixes(n) {
			pa, pb := a.Path(n, p), b.Path(n, p)
			if !pathEq(pa, pb...) {
				t.Fatalf("nondeterministic path at %d for %s: %v vs %v", n, p, pa, pb)
			}
		}
	}
}

func TestRelationshipString(t *testing.T) {
	if FromCustomer.String() != "customer" || Origin.String() != "origin" {
		t.Error("relationship strings wrong")
	}
	if Relationship(42).String() == "" {
		t.Error("unknown relationship should still format")
	}
}

func BenchmarkConvergeHierarchy(b *testing.B) {
	r := rng.New(1)
	topo, stubs := buildRandomHierarchy(r, 20, 80)
	for i, s := range stubs {
		_ = topo.Originate(s, prefixName(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.Converge()
	}
}

func TestConvergeTerminatesOnProviderCycle(t *testing.T) {
	// A provider cycle (1 provides 2 provides 3 provides 1) violates the
	// Gao–Rexford acyclicity assumption; the round cap must still
	// terminate and produce loop-free paths.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	mustPC(t, topo, 2, 3)
	mustPC(t, topo, 3, 1)
	_ = topo.Originate(1, "p")
	done := make(chan *RoutingTables, 1)
	go func() { done <- topo.Converge() }()
	select {
	case rt := <-done:
		for _, n := range topo.ASNs() {
			path := rt.Path(n, "p")
			seen := make(map[ASN]bool)
			for _, hop := range path {
				if seen[hop] {
					t.Fatalf("loop in path %v", path)
				}
				seen[hop] = true
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Converge did not terminate on a provider cycle")
	}
}

func TestConvergeEmptyTopology(t *testing.T) {
	rt := NewTopology().Converge()
	if rt == nil {
		t.Fatal("nil tables for empty topology")
	}
}
