package bgpsim

import (
	"fmt"
	"testing"

	"repro/internal/proptest"
)

// engineEquivalent compares the incrementally patched engine against a fresh
// compile of the same topology, keyed by name/ASN (prefix column order may
// legitimately differ after announces).
func engineEquivalent(e *engine, t *Topology) error {
	f := t.compile()
	if len(e.asns) != len(f.asns) {
		return fmt.Errorf("asns: %d vs %d", len(e.asns), len(f.asns))
	}
	for i := range e.asns {
		if e.asns[i] != f.asns[i] {
			return fmt.Errorf("asns[%d]: %d vs %d", i, e.asns[i], f.asns[i])
		}
		if len(e.nbr[i]) != len(f.nbr[i]) {
			return fmt.Errorf("AS %d: %d edges vs %d", e.asns[i], len(e.nbr[i]), len(f.nbr[i]))
		}
		for j := range e.nbr[i] {
			if e.nbr[i][j] != f.nbr[i][j] {
				return fmt.Errorf("AS %d edge %d: %+v vs %+v", e.asns[i], j, e.nbr[i][j], f.nbr[i][j])
			}
		}
		if e.leaky[i] != f.leaky[i] {
			return fmt.Errorf("AS %d leaky: %v vs %v", e.asns[i], e.leaky[i], f.leaky[i])
		}
	}
	if e.nLeaky != f.nLeaky {
		return fmt.Errorf("nLeaky: %d vs %d", e.nLeaky, f.nLeaky)
	}
	if e.c2pAcyclic != f.c2pAcyclic {
		return fmt.Errorf("c2pAcyclic: %v vs %v", e.c2pAcyclic, f.c2pAcyclic)
	}
	// Per-prefix origins, keyed by prefix name.
	fIdx := f.pfxIdx
	for p, pi := range e.pfxIdx {
		fpi, ok := fIdx[p]
		if !ok {
			if len(e.origins[pi]) == 0 {
				continue // fully withdrawn prefix keeps an empty column
			}
			return fmt.Errorf("prefix %s with origins missing from fresh compile", p)
		}
		a, b := e.origins[pi], f.origins[fpi]
		if len(a) != len(b) {
			return fmt.Errorf("prefix %s origins: %v vs %v", p, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				return fmt.Errorf("prefix %s origins: %v vs %v", p, a, b)
			}
		}
	}
	return nil
}

func TestPropEngineStructuralEquivalence(t *testing.T) {
	proptest.Run(t, 311, 60, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, mids, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return err
		}
		c := topo.ConvergeState(1)
		var stack []*Patch
		extra := 0
		steps := g.IntRange(3, 8)
		for s := 0; s < steps; s++ {
			if len(stack) > 0 && g.Bool(0.25) {
				c.Revert(stack[len(stack)-1])
				stack = stack[:len(stack)-1]
			} else {
				d, ok := randomDelta(g, c, mids, stubs, &extra)
				if !ok {
					continue
				}
				p, err := c.Apply(d)
				if err != nil {
					return fmt.Errorf("step %d: Apply(%+v): %v", s, d, err)
				}
				stack = append(stack, p)
			}
			if err := engineEquivalent(c.e, c.Topology()); err != nil {
				return fmt.Errorf("step %d: engine drifted: %w", s, err)
			}
		}
		return nil
	})
}
