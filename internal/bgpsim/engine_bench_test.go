package bgpsim

// Benchmarks for the compiled routing engine at three topology scales,
// against the reference loop, and end-to-end through the leak sweep. Run
// them all with allocation stats via
//
//	make bench-json
//
// which records the results in BENCH_bgpsim.json (the committed perf
// baseline).

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// benchSizes are the three BuildHierarchy scales: ≈100, ≈1k, and ≈5k ASes
// (3 tier-1s + mids + stubs). At 5k the full all-stubs prefix set would make
// each table ~21M cells, so keepEvery thins the originations to every 16th
// stub — the benchmark then measures per-prefix convergence cost at large AS
// counts rather than sheer table size.
var benchSizes = []struct {
	name      string
	nMid      int
	nStub     int
	keepEvery int
}{
	{"as100", 16, 80, 1},
	{"as1k", 160, 840, 1},
	{"as5k", 800, 4200, 16},
}

func benchTopology(b *testing.B, nMid, nStub, keepEvery int) *Topology {
	b.Helper()
	h, err := BuildHierarchy(rng.New(1), nMid, nStub)
	if err != nil {
		b.Fatal(err)
	}
	if keepEvery > 1 {
		for i, s := range h.Stubs {
			if i%keepEvery != 0 {
				h.Topo.WithdrawOrigin(s, fmt.Sprintf("pfx-%d", s))
			}
		}
	}
	return h.Topo
}

func benchmarkConverge(b *testing.B, workers int) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			topo := benchTopology(b, s.nMid, s.nStub, s.keepEvery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = topo.ConvergeWorkers(workers)
			}
		})
	}
}

func BenchmarkConvergeSerial(b *testing.B)   { benchmarkConverge(b, 1) }
func BenchmarkConvergeParallel(b *testing.B) { benchmarkConverge(b, 0) }

// BenchmarkConvergeReference measures the original map-based loop for the
// allocation and time baseline. The 5k scale is omitted: the naive loop is
// prohibitively slow there, which is the point of the rewrite.
func BenchmarkConvergeReference(b *testing.B) {
	for _, s := range benchSizes {
		if s.name == "as5k" {
			continue
		}
		b.Run(s.name, func(b *testing.B) {
			topo := benchTopology(b, s.nMid, s.nStub, s.keepEvery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = topo.convergeReference()
			}
		})
	}
}

// BenchmarkLeakSweepEndToEnd measures the E14 pipeline at a larger scale
// than the recorded table (41 full convergences over a ~200-AS hierarchy):
// build, mark each leaker, converge, blast radius, clear.
func BenchmarkLeakSweepEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunLeakSweep(40, 160, 5); err != nil {
			b.Fatal(err)
		}
	}
}
