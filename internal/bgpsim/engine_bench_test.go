package bgpsim

// Benchmarks for the compiled routing engine: the classic three scales
// against the reference loop, the 10k/50k/100k-AS scale shapes, the
// incremental delta path against cold re-convergence, and the event-driven
// sweeps against their cold-per-event oracles. Run them all with allocation
// stats via
//
//	make bench-json
//
// which records the results in BENCH_bgpsim.json (the committed perf
// baseline), and gate a change against that baseline with
//
//	make bench-gate
//
// which fails on >25% ns/op regressions.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/rng"
)

// benchSizes are the three classic BuildHierarchy scales: ≈100, ≈1k, and
// ≈5k ASes (3 tier-1s + mids + stubs). At 5k the full all-stubs prefix set
// would make each table ~21M cells, so keepEvery thins the originations to
// every 16th stub — the benchmark then measures per-prefix convergence cost
// at large AS counts rather than sheer table size.
var benchSizes = []struct {
	name      string
	nMid      int
	nStub     int
	keepEvery int
}{
	{"as100", 16, 80, 1},
	{"as1k", 160, 840, 1},
	{"as5k", 800, 4200, 16},
}

// benchScales are the large shapes behind the scale benchmarks: the
// route-reflector-flavoured hierarchy (hubs between tier-1s and mids) with
// origination thinned so the prefix-column count grows sublinearly. The
// names are AS counts: 3 tier-1s + hubs + mids + stubs.
var benchScales = []struct {
	name string
	o    HierarchyOpts
}{
	{"as10k", HierarchyOpts{NMid: 1600, NStub: 8400, Hubs: 24, OriginEvery: 16}},
	{"as50k", HierarchyOpts{NMid: 8000, NStub: 42000, Hubs: 48, OriginEvery: 128}},
	{"as100k", HierarchyOpts{NMid: 16000, NStub: 84000, Hubs: 64, OriginEvery: 256}},
}

func benchTopology(b *testing.B, nMid, nStub, keepEvery int) *Topology {
	b.Helper()
	h, err := BuildHierarchy(rng.New(1), nMid, nStub)
	if err != nil {
		b.Fatal(err)
	}
	if keepEvery > 1 {
		for i, s := range h.Stubs {
			if i%keepEvery != 0 {
				h.Topo.WithdrawOrigin(s, fmt.Sprintf("pfx-%d", s))
			}
		}
	}
	return h.Topo
}

// benchHierarchyOpts builds one of the benchScales shapes with a fixed seed.
func benchHierarchyOpts(b *testing.B, o HierarchyOpts) *Hierarchy {
	b.Helper()
	h, err := BuildHierarchyOpts(rng.New(1), o)
	if err != nil {
		b.Fatal(err)
	}
	if len(h.OriginStubs) == 0 {
		b.Fatal("scale shape has no originating stubs")
	}
	return h
}

func benchmarkConverge(b *testing.B, workers int) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			topo := benchTopology(b, s.nMid, s.nStub, s.keepEvery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = topo.ConvergeWorkers(workers)
			}
		})
	}
}

func BenchmarkConvergeSerial(b *testing.B)   { benchmarkConverge(b, 1) }
func BenchmarkConvergeParallel(b *testing.B) { benchmarkConverge(b, 0) }

// BenchmarkConvergeParallelMP pins GOMAXPROCS to 4 for the duration so the
// chunked parallel path is measured with real OS-thread parallelism even
// when the recording machine (or CI) is single-core — on such hosts
// BenchmarkConvergeParallel collapses to the serial fallback and says
// nothing about the fan-out.
func BenchmarkConvergeParallelMP(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	benchmarkConverge(b, 4)
}

// BenchmarkConvergeReference measures the original map-based loop for the
// allocation and time baseline. The 5k scale is omitted: the naive loop is
// prohibitively slow there, which is the point of the rewrite.
func BenchmarkConvergeReference(b *testing.B) {
	for _, s := range benchSizes {
		if s.name == "as5k" {
			continue
		}
		b.Run(s.name, func(b *testing.B) {
			topo := benchTopology(b, s.nMid, s.nStub, s.keepEvery)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = topo.convergeReference()
			}
		})
	}
}

// BenchmarkConvergeScale is cold convergence at the 10k/50k/100k-AS shapes —
// the denominator the incremental path is judged against, and the proof that
// a 100k-AS table converges in bounded memory.
func BenchmarkConvergeScale(b *testing.B) {
	for _, s := range benchScales {
		b.Run(s.name, func(b *testing.B) {
			h := benchHierarchyOpts(b, s.o)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = h.Topo.Converge()
			}
		})
	}
}

// BenchmarkDeltaWithdraw measures one withdraw event applied and reverted
// against a converged 10k-AS state — the steady-state cost of the
// incremental path. Its cold counterpart below re-converges the whole
// topology for the same event; the ratio is the incremental speedup.
func BenchmarkDeltaWithdraw(b *testing.B) {
	b.Run("as10k", func(b *testing.B) {
		h := benchHierarchyOpts(b, benchScales[0].o)
		victim := h.OriginStubs[0]
		d := Delta{Kind: DeltaWithdraw, A: victim, Prefix: fmt.Sprintf("pfx-%d", victim)}
		c := h.Topo.ConvergeState(1)
		// One warm-up apply/revert: the first pays one-time arena growth,
		// which would dominate a single-iteration (BENCHTIME=1x) gate run.
		if p, err := c.Apply(d); err != nil {
			b.Fatal(err)
		} else {
			c.Revert(p)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := c.Apply(d)
			if err != nil {
				b.Fatal(err)
			}
			c.Revert(p)
		}
	})
}

// BenchmarkDeltaWithdrawCold is the pre-incremental cost of the same event:
// mutate the topology, converge everything from scratch.
func BenchmarkDeltaWithdrawCold(b *testing.B) {
	b.Run("as10k", func(b *testing.B) {
		h := benchHierarchyOpts(b, benchScales[0].o)
		victim := h.OriginStubs[0]
		h.Topo.WithdrawOrigin(victim, fmt.Sprintf("pfx-%d", victim))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = h.Topo.Converge()
		}
	})
}

// benchSweepShape is the ≥5k-AS shape the sweep benchmarks run on, with the
// victim drawn the way RunLeakSweepOpts/RunHijackSweepOpts draw it.
var benchSweepShape = HierarchyOpts{NMid: 80, NStub: 5000, OriginEvery: 16}

func benchSweepSetup(b *testing.B) (*Hierarchy, ASN) {
	b.Helper()
	r := rng.New(5)
	h, err := BuildHierarchyOpts(r.Split(), benchSweepShape)
	if err != nil {
		b.Fatal(err)
	}
	if len(h.OriginStubs) == 0 {
		b.Fatal("sweep shape has no originating stubs")
	}
	return h, h.OriginStubs[r.Intn(len(h.OriginStubs))]
}

// BenchmarkSweepLeakIncremental / BenchmarkSweepLeakFull are the two sides
// of the leak sweep at ~5k ASes: base converged once with each leaker an
// applied-and-reverted toggle, versus one cold convergence per leaker. Both
// produce identical rows (pinned by TestSweepsMatchFull).
func BenchmarkSweepLeakIncremental(b *testing.B) {
	b.Run("as5k", func(b *testing.B) {
		h, victim := benchSweepSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := leakSweepRows(context.Background(), h, victim, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSweepLeakFull(b *testing.B) {
	b.Run("as5k", func(b *testing.B) {
		h, victim := benchSweepSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := leakSweepRowsFull(h, victim, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepHijackIncremental / BenchmarkSweepHijackFull are the same
// pair for the hijack sweep; the announce rides the safe frontier path (one
// column reseeded) instead of the leak toggle's scoped cold recompute.
func BenchmarkSweepHijackIncremental(b *testing.B) {
	b.Run("as5k", func(b *testing.B) {
		h, victim := benchSweepSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hijackSweepRows(context.Background(), h, victim, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSweepHijackFull(b *testing.B) {
	b.Run("as5k", func(b *testing.B) {
		h, victim := benchSweepSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hijackSweepRowsFull(h, victim, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLeakSweepEndToEnd measures the E14 pipeline at a larger scale
// than the recorded table (41 leakers over a ~200-AS hierarchy): build,
// converge once, toggle/measure/revert each leaker.
func BenchmarkLeakSweepEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunLeakSweep(40, 160, 5); err != nil {
			b.Fatal(err)
		}
	}
}
