package bgpsim

import (
	"fmt"
	"testing"

	"repro/internal/proptest"
)

// Property suite for the BGP simulator. It lives in the internal package on
// purpose: the central invariant is that the compiled engine stays
// bit-identical to the preserved naive fixpoint (convergeReference), which
// is unexported. Topologies come from proptest's ASHierarchySpec, which is
// valley-free by construction, so every converged path must be valley-free,
// blast radii must stay inside the reachable set, and withdrawing and
// re-announcing a prefix must round-trip to the identical fixpoint.

// buildSpecTopology materializes an ASHierarchySpec with the repo's
// conventional ASN layout: tier-1s at 1.., mids at 100+i, stubs at 1000+i,
// each stub originating "pfx-<asn>". It returns the topology plus the tier
// ASN slices.
func buildSpecTopology(spec proptest.ASHierarchySpec) (*Topology, []ASN, []ASN, []ASN, error) {
	t := NewTopology()
	var tier1, mids, stubs []ASN
	for i := 0; i < spec.NTier1; i++ {
		n := ASN(1 + i)
		if err := t.AddAS(n, ASInfo{Name: fmt.Sprintf("Tier1-%d", n)}); err != nil {
			return nil, nil, nil, nil, err
		}
		tier1 = append(tier1, n)
	}
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			if err := t.AddPeer(tier1[i], tier1[j]); err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	for i, provs := range spec.MidProviders {
		n := ASN(100 + i)
		if err := t.AddAS(n, ASInfo{Name: fmt.Sprintf("Mid-%d", n)}); err != nil {
			return nil, nil, nil, nil, err
		}
		mids = append(mids, n)
		for _, p := range provs {
			if err := t.AddProviderCustomer(tier1[p], n); err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	for _, pr := range spec.MidPeers {
		if err := t.AddPeer(mids[pr[0]], mids[pr[1]]); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	for i, provs := range spec.StubProviders {
		n := ASN(1000 + i)
		if err := t.AddAS(n, ASInfo{Name: fmt.Sprintf("Stub-%d", n)}); err != nil {
			return nil, nil, nil, nil, err
		}
		stubs = append(stubs, n)
		for _, p := range provs {
			if err := t.AddProviderCustomer(mids[p], n); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		if err := t.Originate(n, fmt.Sprintf("pfx-%d", n)); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return t, tier1, mids, stubs, nil
}

// tablesMatchReference compares the engine's RoutingTables against the raw
// reference maps for every (AS, prefix) cell.
func tablesMatchReference(t *Topology, rt *RoutingTables, ref map[ASN]map[string]*Route, prefixes []string) error {
	for _, n := range t.ASNs() {
		for _, pfx := range prefixes {
			got := rt.Route(n, pfx)
			want := ref[n][pfx]
			if !routesEqual(got, want) {
				return fmt.Errorf("AS %d prefix %s: engine %+v, reference %+v", n, pfx, got, want)
			}
		}
	}
	return nil
}

func stubPrefixes(stubs []ASN) []string {
	out := make([]string, len(stubs))
	for i, s := range stubs {
		out[i] = fmt.Sprintf("pfx-%d", s)
	}
	return out
}

func TestPropConvergeMatchesReference(t *testing.T) {
	proptest.Run(t, 301, 40, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, _, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		rt := topo.Converge()
		if err := tablesMatchReference(topo, rt, topo.convergeReference(), stubPrefixes(stubs)); err != nil {
			return fmt.Errorf("engine diverged from reference on spec %+v: %w", spec, err)
		}
		return nil
	})
}

func TestPropConvergeWorkerInvariant(t *testing.T) {
	proptest.Run(t, 302, 40, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, _, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		workers := g.IntRange(2, 8)
		serial := topo.Converge()
		fanned := topo.ConvergeWorkers(workers)
		for _, n := range topo.ASNs() {
			for _, pfx := range stubPrefixes(stubs) {
				if !routesEqual(serial.Route(n, pfx), fanned.Route(n, pfx)) {
					return fmt.Errorf("workers=%d differs at AS %d prefix %s", workers, n, pfx)
				}
			}
		}
		return nil
	})
}

func TestPropConvergedPathsValleyFree(t *testing.T) {
	proptest.Run(t, 303, 40, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, _, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		rt := topo.Converge()
		for _, n := range topo.ASNs() {
			for _, pfx := range stubPrefixes(stubs) {
				path := rt.Path(n, pfx)
				if path == nil {
					continue
				}
				if !topo.ValleyFree(path) {
					return fmt.Errorf("AS %d reaches %s via valley path %v", n, pfx, path)
				}
			}
		}
		return nil
	})
}

func TestPropBlastRadiusWithinReachable(t *testing.T) {
	proptest.Run(t, 304, 40, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, mids, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		if len(stubs) == 0 {
			return nil
		}
		leaker := mids[g.Intn(len(mids))]
		if !topo.MarkLeaker(leaker) {
			return fmt.Errorf("MarkLeaker(%d) failed", leaker)
		}
		rt := topo.Converge()
		pfx := fmt.Sprintf("pfx-%d", stubs[g.Intn(len(stubs))])
		affected, reachable := BlastRadius(rt, leaker, pfx)
		if len(affected) >= reachable && len(affected) > 0 {
			return fmt.Errorf("affected %d >= reachable %d for %s", len(affected), reachable, pfx)
		}
		for _, n := range affected {
			if n == leaker {
				return fmt.Errorf("leaker %d counted in its own blast radius", leaker)
			}
			if !rt.Reachable(n, pfx) {
				return fmt.Errorf("affected AS %d has no route to %s", n, pfx)
			}
			path := rt.Path(n, pfx)
			through := false
			for _, hop := range path[1:] {
				if hop == leaker {
					through = true
				}
			}
			if !through {
				return fmt.Errorf("affected AS %d's path %v avoids leaker %d", n, path, leaker)
			}
		}
		return nil
	})
}

func TestPropWithdrawReannounceIdempotent(t *testing.T) {
	proptest.Run(t, 305, 30, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, _, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		if len(stubs) == 0 {
			return nil
		}
		prefixes := stubPrefixes(stubs)
		before := topo.Converge()
		victim := stubs[g.Intn(len(stubs))]
		pfx := fmt.Sprintf("pfx-%d", victim)
		topo.WithdrawOrigin(victim, pfx)
		gone := topo.Converge()
		for _, n := range topo.ASNs() {
			if gone.Reachable(n, pfx) {
				return fmt.Errorf("AS %d still reaches withdrawn %s", n, pfx)
			}
		}
		if err := topo.Originate(victim, pfx); err != nil {
			return fmt.Errorf("re-announcing %s: %w", pfx, err)
		}
		after := topo.Converge()
		for _, n := range topo.ASNs() {
			for _, p := range prefixes {
				if !routesEqual(before.Route(n, p), after.Route(n, p)) {
					return fmt.Errorf("withdraw/re-announce of %s changed AS %d's route to %s: %+v vs %+v",
						pfx, n, p, before.Route(n, p), after.Route(n, p))
				}
			}
		}
		return nil
	})
}
