package bgpsim

// The original synchronous whole-topology convergence loop, preserved
// verbatim in behavior as the reference implementation for the engine
// equivalence tests (engine_test.go) and the allocation-baseline benchmarks.
// It is intentionally naive: every round rebuilds every table, re-derives
// and re-sorts every neighbor list, and copies every candidate AS path. The
// production engine in engine.go must stay bit-identical to it.

import "sort"

// better reports whether candidate should replace incumbent under standard
// BGP decision order: higher local pref (relationship), then shorter path,
// then lexicographically smaller path for determinism.
func better(cand, inc *Route) bool {
	if inc == nil {
		return true
	}
	if cand.Learned != inc.Learned {
		return cand.Learned > inc.Learned
	}
	if len(cand.Path) != len(inc.Path) {
		return len(cand.Path) < len(inc.Path)
	}
	// Deterministic tiebreak: lexicographically smaller path wins.
	for i := range cand.Path {
		if cand.Path[i] != inc.Path[i] {
			return cand.Path[i] < inc.Path[i]
		}
	}
	return false
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Learned != b.Learned || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// convergeReference computes the Gao–Rexford fixpoint with the original
// synchronous Bellman–Ford over nested maps and returns the raw tables.
// Used only by tests and benchmarks.
func (t *Topology) convergeReference() map[ASN]map[string]*Route {
	asns := t.ASNs()
	// Collect the universe of prefixes.
	prefixSet := make(map[string]bool)
	for _, n := range asns {
		for _, p := range t.ases[n].origins {
			prefixSet[p] = true
		}
	}
	prefixes := make([]string, 0, len(prefixSet))
	for p := range prefixSet {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)

	tables := make(map[ASN]map[string]*Route, len(t.ases))
	originSet := make(map[ASN]map[string]bool, len(t.ases))
	for _, n := range asns {
		tables[n] = make(map[string]*Route)
		os := make(map[string]bool)
		for _, p := range t.ases[n].origins {
			os[p] = true
		}
		originSet[n] = os
	}

	maxRounds := 4*len(asns) + 16
	for round := 0; round < maxRounds; round++ {
		changed := false
		next := make(map[ASN]map[string]*Route, len(asns))
		for _, n := range asns {
			neighborRel := t.Neighbors(n)
			nbrs := make([]ASN, 0, len(neighborRel))
			for nb := range neighborRel {
				nbrs = append(nbrs, nb)
			}
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })

			tbl := make(map[string]*Route, len(prefixes))
			for _, p := range prefixes {
				var best *Route
				if originSet[n][p] {
					best = &Route{Prefix: p, Path: []ASN{n}, Learned: Origin}
				}
				for _, nb := range nbrs {
					nbRoute := tables[nb][p]
					if nbRoute == nil {
						continue
					}
					// Export policy from nb's side: we receive everything if
					// we are nb's customer; otherwise only origin/customer
					// routes (valley-free). A leaker ignores the policy.
					weAreCustomer := t.ases[nb].customers[n]
					if !weAreCustomer && !t.ases[nb].leaker &&
						nbRoute.Learned != Origin && nbRoute.Learned != FromCustomer {
						continue
					}
					// Loop prevention: reject paths already containing us.
					loop := false
					for _, hop := range nbRoute.Path {
						if hop == n {
							loop = true
							break
						}
					}
					if loop {
						continue
					}
					cand := &Route{
						Prefix:  p,
						Path:    append([]ASN{n}, nbRoute.Path...),
						Learned: neighborRel[nb],
					}
					if better(cand, best) {
						best = cand
					}
				}
				if best != nil {
					tbl[p] = best
					if !routesEqual(best, tables[n][p]) {
						changed = true
					}
				} else if tables[n][p] != nil {
					changed = true
				}
			}
			next[n] = tbl
		}
		tables = next
		if !changed {
			break
		}
	}
	return tables
}
