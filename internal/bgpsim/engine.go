package bgpsim

// The compiled routing engine behind Converge/ConvergeWorkers.
//
// The original fixpoint (kept as convergeReference in reference.go) is a
// synchronous Bellman–Ford over map[ASN]map[string]*Route: every round it
// rebuilds every table, re-derives and re-sorts every neighbor list, and
// copies every candidate AS path. This engine computes the exact same
// fixpoint — bit-identical tables, paths, and reachability — from a compiled
// form of the topology:
//
//   - ASNs and prefixes are interned to dense indices once, at convergence
//     start, and the routing state is a flat column of entries per prefix
//     instead of nested maps.
//   - Neighbor adjacency is precompiled once per convergence: for every AS a
//     sorted slice of (neighbor index, learned relationship, exports-all)
//     edges replaces the per-AS-per-round map iteration + sort.
//   - AS paths are immutable cons cells allocated from a block arena. A
//     candidate path is the routing AS consed onto the neighbor's current
//     path head — O(1), no slice copy — and comparisons (lexicographic
//     tie-break, loop check, change detection) walk the cells. Because cells
//     are snapshots, mid-convergence comparisons see exactly the paths the
//     reference engine would materialize.
//   - Rounds are change-driven: only ASes with a neighbor whose selection
//     changed in the previous round are re-evaluated. An AS's selection
//     depends only on its neighbors' previous-round selections (and its own
//     origins), so skipping quiescent ASes cannot alter any round's table,
//     and the work queue drains in a deterministic order derived from the
//     changed set — never from map iteration or goroutine scheduling.
//   - Updates are batched and applied at the end of each round, preserving
//     the synchronous-round semantics of the reference engine (round r reads
//     only round r-1 state), including its 4·|AS|+16 safety cap on malformed
//     (cyclic provider graph) topologies.
//
// Prefix columns never interact, so ConvergeWorkers fans independent
// prefixes across internal/parallel workers; each prefix's fixpoint is fully
// self-contained and lands at its own table offset, making the result
// bit-identical for every worker count.

import (
	"context"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// pathNode is one hop of an AS path stored as an immutable cons cell: the
// path of a route is its node's asn followed by the chain behind next, with
// the origin AS last (next == nil). Nodes are shared between the adopting AS
// and its neighbor's route, never mutated after allocation.
type pathNode struct {
	asn  ASN
	next *pathNode
}

// nodeArena hands out pathNodes from fixed-size blocks so a convergence run
// costs one allocation per block instead of one per selection change. Blocks
// stay alive for as long as any table entry references a node inside them.
type nodeArena struct {
	block []pathNode
	used  int
}

const arenaBlock = 256

func (a *nodeArena) alloc(asn ASN, next *pathNode) *pathNode {
	if a.used == len(a.block) {
		a.block = make([]pathNode, arenaBlock)
		a.used = 0
	}
	n := &a.block[a.used]
	a.used++
	n.asn = asn
	n.next = next
	return n
}

// chainContains reports whether asn appears anywhere in the chain.
func chainContains(c *pathNode, asn ASN) bool {
	for ; c != nil; c = c.next {
		if c.asn == asn {
			return true
		}
	}
	return false
}

// chainEqual reports whether two chains hold the same hops.
func chainEqual(a, b *pathNode) bool {
	for a != nil && b != nil {
		if a == b {
			return true // shared suffix: identical by construction
		}
		if a.asn != b.asn {
			return false
		}
		a, b = a.next, b.next
	}
	return a == nil && b == nil
}

// entry is one dense routing-table cell: the selected route of one AS for
// one prefix. head == nil means no route; otherwise head is the full path
// (self first, origin last) and plen its length.
type entry struct {
	head    *pathNode
	plen    int32
	learned Relationship
}

// neighborEdge is one precompiled adjacency edge from the perspective of the
// owning AS.
type neighborEdge struct {
	idx int32        // dense index of the neighbor
	rel Relationship // how the owning AS marks routes learned from this neighbor
	// receiveAll: the neighbor exports everything to us — either we are its
	// customer, or it is flagged as a leaker. Otherwise valley-free export
	// applies (origin/customer routes only).
	receiveAll bool
}

// engine is the compiled form of a Topology. A plain Converge discards it
// with the run; ConvergeState keeps it alive (together with the interning
// maps and safety statistics below) so Apply can patch the compiled form
// in place and re-converge only the blast radius of a delta.
type engine struct {
	asns      []ASN
	idx       map[ASN]int32 // ASN -> dense index
	prefixes  []string
	pfxIdx    map[string]int32 // prefix -> column index
	nbr       [][]neighborEdge // per AS, sorted by neighbor index ascending
	origins   [][]int32        // per prefix, origin AS indices ascending (deduped)
	maxRounds int

	// Safety statistics for incremental re-convergence (see incremental.go):
	// when the effective provider→customer digraph is acyclic and at most one
	// AS violates valley-free export, Gao–Rexford guarantees a unique stable
	// state, so a frontier-seeded fixpoint from the old tables lands on the
	// same state a cold run would. Outside that regime Apply falls back to
	// cold per-column recomputation.
	c2pAcyclic bool
	leaky      []bool // per AS: violates valley-free export somewhere
	nLeaky     int
}

// compileEdges builds the sorted adjacency of n. Neighbor relationship
// resolution matches Neighbors(): when an ASN is recorded under several link
// sets, customer overrides provider and peer overrides both.
func compileEdges(t *Topology, idx map[ASN]int32, n ASN) []neighborEdge {
	rels := t.Neighbors(n)
	edges := make([]neighborEdge, 0, len(rels))
	for nb, rel := range rels {
		other := t.ases[nb]
		edges = append(edges, neighborEdge{
			idx:        idx[nb],
			rel:        rel,
			receiveAll: other.customers[n] || other.leaker,
		})
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].idx < edges[b].idx })
	return edges
}

// leakyExporter reports whether a violates valley-free export toward some
// neighbor: a flagged leaker re-exports everything, and a customer edge
// overridden to peer still feeds the raw customer map into receiveAll while
// the effective relationship is lateral — the same kind of violation.
func leakyExporter(a *as) bool {
	if a.leaker {
		return true
	}
	for c := range a.customers {
		if a.peers[c] {
			return true
		}
	}
	return false
}

// computeC2PAcyclic reports whether the effective provider→customer digraph
// (post relationship-override resolution) is acyclic — the Gao–Rexford
// precondition for a unique routing fixpoint. Kahn's algorithm over the
// compiled adjacency.
func (e *engine) computeC2PAcyclic() bool {
	n := len(e.asns)
	indeg := make([]int32, n)
	for i := range e.nbr {
		for _, ed := range e.nbr[i] {
			if ed.rel == FromCustomer {
				indeg[ed.idx]++
			}
		}
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, ed := range e.nbr[i] {
			if ed.rel == FromCustomer {
				if indeg[ed.idx]--; indeg[ed.idx] == 0 {
					queue = append(queue, ed.idx)
				}
			}
		}
	}
	return done == n
}

// compile interns the topology into dense form.
func (t *Topology) compile() *engine {
	asns := t.ASNs()
	idx := make(map[ASN]int32, len(asns))
	for i, n := range asns {
		idx[n] = int32(i)
	}

	e := &engine{asns: asns, idx: idx, maxRounds: 4*len(asns) + 16}
	e.nbr = make([][]neighborEdge, len(asns))
	e.leaky = make([]bool, len(asns))
	for i, n := range asns {
		e.nbr[i] = compileEdges(t, idx, n)
		if leakyExporter(t.ases[n]) {
			e.leaky[i] = true
			e.nLeaky++
		}
	}
	e.c2pAcyclic = e.computeC2PAcyclic()

	pfxIdx := make(map[string]int32)
	for _, n := range asns {
		for _, p := range t.ases[n].origins {
			if _, ok := pfxIdx[p]; !ok {
				pfxIdx[p] = 0
				e.prefixes = append(e.prefixes, p)
			}
		}
	}
	sort.Strings(e.prefixes)
	for i, p := range e.prefixes {
		pfxIdx[p] = int32(i)
	}
	e.pfxIdx = pfxIdx
	e.origins = make([][]int32, len(e.prefixes))
	for i, n := range asns {
		for _, p := range t.ases[n].origins {
			pi := pfxIdx[p]
			lst := e.origins[pi]
			// ASes are visited in ascending index order, so the list stays
			// sorted; the tail check drops duplicate originations.
			if len(lst) == 0 || lst[len(lst)-1] != int32(i) {
				e.origins[pi] = append(lst, int32(i))
			}
		}
	}
	return e
}

// incrementalSafe reports whether frontier-seeded re-convergence from the
// current tables is guaranteed to reach the same fixpoint as a cold run:
// the classical Gao–Rexford uniqueness conditions — acyclic effective
// customer hierarchy and zero export violators. Even a single leaker
// admits multiple stable states (the leaked route and a loop-blocking
// alternative can each lock in the lexicographic tie at some AS depending
// on which arrived first), and then the state reached depends on the
// starting tables; property testing found exactly that divergence, so the
// bound is zero, not one.
func (e *engine) incrementalSafe() bool {
	return e.c2pAcyclic && e.nLeaky == 0
}

func (e *engine) originates(p int, i int32) bool {
	for _, o := range e.origins[p] {
		if o == i {
			return true
		}
		if o > i {
			return false
		}
	}
	return false
}

// colUpdate is a pending synchronous-round write: entry e lands at AS idx
// once the whole round has been evaluated against the previous round's
// column.
type colUpdate struct {
	idx int32
	e   entry
}

// convState is the reusable per-worker scratch of a prefix fixpoint. The
// arena is carried along so successive prefixes fill partially used blocks,
// but nodes themselves are never reused — finished tables keep their blocks
// alive.
type convState struct {
	inQueue []bool
	queue   []int32
	changed []int32
	updates []colUpdate
	arena   nodeArena
}

// convergePrefix runs the change-driven fixpoint for prefix p, writing the
// final column (one entry per AS, dense index order) into col. col must be
// zeroed on entry.
func (e *engine) convergePrefix(p int, col []entry, st *convState) {
	// Round 0 of the reference engine sees only empty tables, so exactly the
	// origin ASes obtain a route. Seed those and mark them changed.
	st.changed = st.changed[:0]
	for _, o := range e.origins[p] {
		col[o] = entry{head: st.arena.alloc(e.asns[o], nil), plen: 1, learned: Origin}
		st.changed = append(st.changed, o)
	}
	for round := 1; round < e.maxRounds && len(st.changed) > 0; round++ {
		// Queue exactly the ASes whose inputs changed last round: the
		// neighbors of every changed AS. The queue order is a deterministic
		// function of the changed set; evaluation order cannot affect the
		// outcome because all reads hit the previous round's column.
		st.queue = st.queue[:0]
		for _, c := range st.changed {
			for _, ed := range e.nbr[c] {
				if !st.inQueue[ed.idx] {
					st.inQueue[ed.idx] = true
					st.queue = append(st.queue, ed.idx)
				}
			}
		}
		st.updates = st.updates[:0]
		for _, i := range st.queue {
			st.inQueue[i] = false
			if ne, changed := e.selectBest(i, p, col, &st.arena); changed {
				st.updates = append(st.updates, colUpdate{idx: i, e: ne})
			}
		}
		// Apply the batch: the round was fully evaluated against round-1
		// state, matching the reference engine's synchronous semantics.
		st.changed = st.changed[:0]
		for _, u := range st.updates {
			col[u.idx] = u.e
			st.changed = append(st.changed, u.idx)
		}
	}
}

// undoCell records one overwritten table cell so Converged.Revert can
// restore the exact pre-Apply bytes without re-converging.
type undoCell struct {
	idx int32
	e   entry
}

// reconvergeColumn continues the synchronous fixpoint for prefix p from the
// current column state, evaluating exactly the seed ASes in the first round
// (the frontier whose inputs the delta changed) and then draining the usual
// change-driven queue. Every overwritten cell's previous value is appended
// to *log, oldest first. Returns false when the round cap was hit before
// quiescence — the caller must then recompute the column cold, which keeps
// malformed (non-converging) topologies bit-identical to the cold oracle.
func (e *engine) reconvergeColumn(p int, col []entry, st *convState, seeds []int32, log *[]undoCell) bool {
	st.updates = st.updates[:0]
	for _, i := range seeds {
		if ne, changed := e.selectBest(i, p, col, &st.arena); changed {
			st.updates = append(st.updates, colUpdate{idx: i, e: ne})
		}
	}
	for round := 1; round < e.maxRounds; round++ {
		if len(st.updates) == 0 {
			return true
		}
		// Apply the batch, logging prior values for revert, then queue the
		// neighbors of everything that changed — same synchronous-round
		// semantics as convergePrefix, just seeded from mid-flight state.
		st.changed = st.changed[:0]
		for _, u := range st.updates {
			*log = append(*log, undoCell{idx: u.idx, e: col[u.idx]})
			col[u.idx] = u.e
			st.changed = append(st.changed, u.idx)
		}
		st.queue = st.queue[:0]
		for _, c := range st.changed {
			for _, ed := range e.nbr[c] {
				if !st.inQueue[ed.idx] {
					st.inQueue[ed.idx] = true
					st.queue = append(st.queue, ed.idx)
				}
			}
		}
		st.updates = st.updates[:0]
		for _, i := range st.queue {
			st.inQueue[i] = false
			if ne, changed := e.selectBest(i, p, col, &st.arena); changed {
				st.updates = append(st.updates, colUpdate{idx: i, e: ne})
			}
		}
	}
	return len(st.updates) == 0
}

// coldColumn recomputes column p from scratch, first logging every cell —
// empty ones included, since the recompute may fill them and the caller's
// undo log must restore the exact pre-Apply state — and zeroing the column.
// Used when incremental re-convergence is not trusted (unsafe topology
// before or after the delta) or gave up (round cap).
func (e *engine) coldColumn(p int, col []entry, st *convState, log *[]undoCell) {
	for i := range col {
		*log = append(*log, undoCell{idx: int32(i), e: col[i]})
		col[i] = entry{}
	}
	e.convergePrefix(p, col, st)
}

// selectBest recomputes AS i's selection for prefix p from the current
// column and reports whether it differs from the incumbent entry. A best
// candidate is tracked as (relationship, length, tail) where the full path
// is self consed onto tail; the origin candidate has a nil tail. A node is
// allocated only when the selection actually changed.
func (e *engine) selectBest(i int32, p int, col []entry, arena *nodeArena) (entry, bool) {
	self := e.asns[i]
	var bestRel Relationship
	var bestLen int32
	var bestTail *pathNode
	has := false
	if e.originates(p, i) {
		bestRel, bestLen, bestTail, has = Origin, 1, nil, true
	}
	for _, ed := range e.nbr[i] {
		ne := &col[ed.idx]
		if ne.head == nil {
			continue
		}
		// Export policy from the neighbor's side: we receive everything if
		// we are its customer or it leaks; otherwise only origin/customer
		// routes (valley-free).
		if !ed.receiveAll && ne.learned != Origin && ne.learned != FromCustomer {
			continue
		}
		// Loop prevention: reject paths already containing us.
		if chainContains(ne.head, self) {
			continue
		}
		candLen := ne.plen + 1
		if has && !candBetter(ed.rel, candLen, ne.head, bestRel, bestLen, bestTail) {
			continue
		}
		bestRel, bestLen, bestTail, has = ed.rel, candLen, ne.head, true
	}
	old := &col[i]
	if !has {
		return entry{}, old.head != nil
	}
	if old.head != nil && old.learned == bestRel && old.plen == bestLen &&
		chainEqual(old.head.next, bestTail) {
		return *old, false
	}
	return entry{head: arena.alloc(self, bestTail), plen: bestLen, learned: bestRel}, true
}

// candBetter reports whether candidate a should replace incumbent b under
// the standard decision order — higher local pref, then shorter path, then
// lexicographically smaller path — mirroring better() in reference.go. Both
// paths start with the same AS (self), so only the tails are compared.
func candBetter(aRel Relationship, aLen int32, aTail *pathNode, bRel Relationship, bLen int32, bTail *pathNode) bool {
	if aRel != bRel {
		return aRel > bRel
	}
	if aLen != bLen {
		return aLen < bLen
	}
	for aTail != nil && bTail != nil {
		if aTail.asn != bTail.asn {
			return aTail.asn < bTail.asn
		}
		aTail, bTail = aTail.next, bTail.next
	}
	return false
}

// Converge computes the Gao–Rexford routing fixpoint and returns the
// resulting tables. Each (logical) round, an AS recomputes its best route
// per prefix from its neighbors' previous-round selections — synchronous
// Bellman–Ford over policies — but only ASes whose neighborhood actually
// changed are re-evaluated, and prefixes converge independently over flat
// interned tables (see the package comment of engine.go). The result is
// bit-identical to the original whole-topology loop, which survives as
// convergeReference for the equivalence tests.
//
// Valley-free export: a neighbor's route is a candidate only if that
// neighbor originated it or learned it from a customer, unless we are the
// neighbor's customer (customers receive everything).
//
// Gao–Rexford guarantees convergence when the provider–customer graph is
// acyclic; a safety cap of 4·|AS|+16 rounds guards malformed topologies.
func (t *Topology) Converge() *RoutingTables {
	return t.ConvergeWorkers(1)
}

// ConvergeWorkers is Converge with the independent per-prefix fixpoints
// fanned out across at most workers goroutines (workers <= 0 means
// GOMAXPROCS; 1 runs serially on the calling goroutine). Every prefix's
// column is self-contained and lands at its own table offset, so the result
// is bit-identical for every worker count. Prefer it over Converge when a
// single large topology converges on an otherwise idle machine; when many
// scenarios already run in parallel (the sweep entry points), the serial
// engine per scenario avoids oversubscription.
func (t *Topology) ConvergeWorkers(workers int) *RoutingTables {
	e := t.compile()
	rt := newRoutingTables(e.asns, e.prefixes)
	e.convergeAll(rt, workers)
	return rt
}

// ConvergeCtx is ConvergeWorkers with cooperative cancellation between
// prefix columns. On a cancelled context the partially-converged tables are
// discarded and ctx.Err() is returned; otherwise the tables are bit-identical
// to the Background variants.
func (t *Topology) ConvergeCtx(ctx context.Context, workers int) (*RoutingTables, error) {
	e := t.compile()
	rt := newRoutingTables(e.asns, e.prefixes)
	if err := e.convergeAllCtx(ctx, rt, workers); err != nil {
		return nil, err
	}
	return rt, nil
}

// serialWorkFloor is the table-cell count (prefixes × ASes) below which the
// fork-join machinery costs more than it saves and convergeAll runs the
// columns serially on the calling goroutine regardless of the worker knob.
const serialWorkFloor = 1 << 15

// convergeChunks splits nP prefix columns into coarse contiguous chunks,
// about four per worker, so each parallel task amortizes its dispatch and
// scratch-state checkout over many columns instead of paying them per
// prefix. Returns the chunk size.
func convergeChunks(nP, workers int) int {
	chunk := (nP + 4*workers - 1) / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// convergeAll runs the cold fixpoint for every column of rt. Columns are
// independent, so the fan-out chunks them coarsely across workers; below
// serialWorkFloor cells (or with one effective worker) it skips the
// parallel machinery entirely.
func (e *engine) convergeAll(rt *RoutingTables, workers int) {
	if err := e.convergeAllCtx(context.Background(), rt, workers); err != nil {
		// The tasks never return errors and Background never cancels, so
		// only a worker panic can land here; re-raise it.
		panic(err)
	}
}

// convergeAllCtx is convergeAll with cooperative cancellation between
// prefix columns. On a cancelled context the tables are left partially
// converged and ctx.Err() is returned — callers must discard them (cold
// convergence builds fresh tables, so there is no state to corrupt).
func (e *engine) convergeAllCtx(ctx context.Context, rt *RoutingTables, workers int) error {
	nAS, nP := len(e.asns), len(e.prefixes)
	if nAS == 0 || nP == 0 {
		return nil
	}
	w := parallel.Workers(workers, nP)
	if w == 1 || nAS*nP < serialWorkFloor {
		st := &convState{inQueue: make([]bool, nAS)}
		for p := 0; p < nP; p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			e.convergePrefix(p, rt.entries[p*nAS:(p+1)*nAS], st)
		}
		return nil
	}
	chunk := convergeChunks(nP, w)
	nChunks := (nP + chunk - 1) / chunk
	pool := sync.Pool{New: func() any {
		return &convState{inQueue: make([]bool, nAS)}
	}}
	return parallel.ForEach(ctx, nChunks, w, func(ci int) error {
		st := pool.Get().(*convState)
		hi := (ci + 1) * chunk
		if hi > nP {
			hi = nP
		}
		for p := ci * chunk; p < hi; p++ {
			e.convergePrefix(p, rt.entries[p*nAS:(p+1)*nAS], st)
		}
		pool.Put(st)
		return nil
	})
}
