package bgpsim

// The compiled routing engine behind Converge/ConvergeWorkers.
//
// The original fixpoint (kept as convergeReference in reference.go) is a
// synchronous Bellman–Ford over map[ASN]map[string]*Route: every round it
// rebuilds every table, re-derives and re-sorts every neighbor list, and
// copies every candidate AS path. This engine computes the exact same
// fixpoint — bit-identical tables, paths, and reachability — from a compiled
// form of the topology:
//
//   - ASNs and prefixes are interned to dense indices once, at convergence
//     start, and the routing state is a flat column of entries per prefix
//     instead of nested maps.
//   - Neighbor adjacency is precompiled once per convergence: for every AS a
//     sorted slice of (neighbor index, learned relationship, exports-all)
//     edges replaces the per-AS-per-round map iteration + sort.
//   - AS paths are immutable cons cells allocated from a block arena. A
//     candidate path is the routing AS consed onto the neighbor's current
//     path head — O(1), no slice copy — and comparisons (lexicographic
//     tie-break, loop check, change detection) walk the cells. Because cells
//     are snapshots, mid-convergence comparisons see exactly the paths the
//     reference engine would materialize.
//   - Rounds are change-driven: only ASes with a neighbor whose selection
//     changed in the previous round are re-evaluated. An AS's selection
//     depends only on its neighbors' previous-round selections (and its own
//     origins), so skipping quiescent ASes cannot alter any round's table,
//     and the work queue drains in a deterministic order derived from the
//     changed set — never from map iteration or goroutine scheduling.
//   - Updates are batched and applied at the end of each round, preserving
//     the synchronous-round semantics of the reference engine (round r reads
//     only round r-1 state), including its 4·|AS|+16 safety cap on malformed
//     (cyclic provider graph) topologies.
//
// Prefix columns never interact, so ConvergeWorkers fans independent
// prefixes across internal/parallel workers; each prefix's fixpoint is fully
// self-contained and lands at its own table offset, making the result
// bit-identical for every worker count.

import (
	"context"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// pathNode is one hop of an AS path stored as an immutable cons cell: the
// path of a route is its node's asn followed by the chain behind next, with
// the origin AS last (next == nil). Nodes are shared between the adopting AS
// and its neighbor's route, never mutated after allocation.
type pathNode struct {
	asn  ASN
	next *pathNode
}

// nodeArena hands out pathNodes from fixed-size blocks so a convergence run
// costs one allocation per block instead of one per selection change. Blocks
// stay alive for as long as any table entry references a node inside them.
type nodeArena struct {
	block []pathNode
	used  int
}

const arenaBlock = 256

func (a *nodeArena) alloc(asn ASN, next *pathNode) *pathNode {
	if a.used == len(a.block) {
		a.block = make([]pathNode, arenaBlock)
		a.used = 0
	}
	n := &a.block[a.used]
	a.used++
	n.asn = asn
	n.next = next
	return n
}

// chainContains reports whether asn appears anywhere in the chain.
func chainContains(c *pathNode, asn ASN) bool {
	for ; c != nil; c = c.next {
		if c.asn == asn {
			return true
		}
	}
	return false
}

// chainEqual reports whether two chains hold the same hops.
func chainEqual(a, b *pathNode) bool {
	for a != nil && b != nil {
		if a == b {
			return true // shared suffix: identical by construction
		}
		if a.asn != b.asn {
			return false
		}
		a, b = a.next, b.next
	}
	return a == nil && b == nil
}

// entry is one dense routing-table cell: the selected route of one AS for
// one prefix. head == nil means no route; otherwise head is the full path
// (self first, origin last) and plen its length.
type entry struct {
	head    *pathNode
	plen    int32
	learned Relationship
}

// neighborEdge is one precompiled adjacency edge from the perspective of the
// owning AS.
type neighborEdge struct {
	idx int32        // dense index of the neighbor
	rel Relationship // how the owning AS marks routes learned from this neighbor
	// receiveAll: the neighbor exports everything to us — either we are its
	// customer, or it is flagged as a leaker. Otherwise valley-free export
	// applies (origin/customer routes only).
	receiveAll bool
}

// engine is the compiled form of a Topology, valid for one convergence run
// (it snapshots origins, links, and leaker flags at compile time).
type engine struct {
	asns      []ASN
	prefixes  []string
	nbr       [][]neighborEdge // per AS, sorted by neighbor index ascending
	origins   [][]int32        // per prefix, origin AS indices ascending (deduped)
	maxRounds int
}

// compile interns the topology into dense form. Neighbor relationship
// resolution matches Neighbors(): when an ASN is recorded under several link
// sets, customer overrides provider and peer overrides both.
func (t *Topology) compile() *engine {
	asns := t.ASNs()
	idx := make(map[ASN]int32, len(asns))
	for i, n := range asns {
		idx[n] = int32(i)
	}

	e := &engine{asns: asns, maxRounds: 4*len(asns) + 16}
	e.nbr = make([][]neighborEdge, len(asns))
	for i, n := range asns {
		rels := t.Neighbors(n)
		edges := make([]neighborEdge, 0, len(rels))
		for nb, rel := range rels {
			other := t.ases[nb]
			edges = append(edges, neighborEdge{
				idx:        idx[nb],
				rel:        rel,
				receiveAll: other.customers[n] || other.leaker,
			})
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].idx < edges[b].idx })
		e.nbr[i] = edges
	}

	pfxIdx := make(map[string]int32)
	for _, n := range asns {
		for _, p := range t.ases[n].origins {
			if _, ok := pfxIdx[p]; !ok {
				pfxIdx[p] = 0
				e.prefixes = append(e.prefixes, p)
			}
		}
	}
	sort.Strings(e.prefixes)
	for i, p := range e.prefixes {
		pfxIdx[p] = int32(i)
	}
	e.origins = make([][]int32, len(e.prefixes))
	for i, n := range asns {
		for _, p := range t.ases[n].origins {
			pi := pfxIdx[p]
			lst := e.origins[pi]
			// ASes are visited in ascending index order, so the list stays
			// sorted; the tail check drops duplicate originations.
			if len(lst) == 0 || lst[len(lst)-1] != int32(i) {
				e.origins[pi] = append(lst, int32(i))
			}
		}
	}
	return e
}

func (e *engine) originates(p int, i int32) bool {
	for _, o := range e.origins[p] {
		if o == i {
			return true
		}
		if o > i {
			return false
		}
	}
	return false
}

// colUpdate is a pending synchronous-round write: entry e lands at AS idx
// once the whole round has been evaluated against the previous round's
// column.
type colUpdate struct {
	idx int32
	e   entry
}

// convState is the reusable per-worker scratch of a prefix fixpoint. The
// arena is carried along so successive prefixes fill partially used blocks,
// but nodes themselves are never reused — finished tables keep their blocks
// alive.
type convState struct {
	inQueue []bool
	queue   []int32
	changed []int32
	updates []colUpdate
	arena   nodeArena
}

// convergePrefix runs the change-driven fixpoint for prefix p, writing the
// final column (one entry per AS, dense index order) into col. col must be
// zeroed on entry.
func (e *engine) convergePrefix(p int, col []entry, st *convState) {
	// Round 0 of the reference engine sees only empty tables, so exactly the
	// origin ASes obtain a route. Seed those and mark them changed.
	st.changed = st.changed[:0]
	for _, o := range e.origins[p] {
		col[o] = entry{head: st.arena.alloc(e.asns[o], nil), plen: 1, learned: Origin}
		st.changed = append(st.changed, o)
	}
	for round := 1; round < e.maxRounds && len(st.changed) > 0; round++ {
		// Queue exactly the ASes whose inputs changed last round: the
		// neighbors of every changed AS. The queue order is a deterministic
		// function of the changed set; evaluation order cannot affect the
		// outcome because all reads hit the previous round's column.
		st.queue = st.queue[:0]
		for _, c := range st.changed {
			for _, ed := range e.nbr[c] {
				if !st.inQueue[ed.idx] {
					st.inQueue[ed.idx] = true
					st.queue = append(st.queue, ed.idx)
				}
			}
		}
		st.updates = st.updates[:0]
		for _, i := range st.queue {
			st.inQueue[i] = false
			if ne, changed := e.selectBest(i, p, col, &st.arena); changed {
				st.updates = append(st.updates, colUpdate{idx: i, e: ne})
			}
		}
		// Apply the batch: the round was fully evaluated against round-1
		// state, matching the reference engine's synchronous semantics.
		st.changed = st.changed[:0]
		for _, u := range st.updates {
			col[u.idx] = u.e
			st.changed = append(st.changed, u.idx)
		}
	}
}

// selectBest recomputes AS i's selection for prefix p from the current
// column and reports whether it differs from the incumbent entry. A best
// candidate is tracked as (relationship, length, tail) where the full path
// is self consed onto tail; the origin candidate has a nil tail. A node is
// allocated only when the selection actually changed.
func (e *engine) selectBest(i int32, p int, col []entry, arena *nodeArena) (entry, bool) {
	self := e.asns[i]
	var bestRel Relationship
	var bestLen int32
	var bestTail *pathNode
	has := false
	if e.originates(p, i) {
		bestRel, bestLen, bestTail, has = Origin, 1, nil, true
	}
	for _, ed := range e.nbr[i] {
		ne := &col[ed.idx]
		if ne.head == nil {
			continue
		}
		// Export policy from the neighbor's side: we receive everything if
		// we are its customer or it leaks; otherwise only origin/customer
		// routes (valley-free).
		if !ed.receiveAll && ne.learned != Origin && ne.learned != FromCustomer {
			continue
		}
		// Loop prevention: reject paths already containing us.
		if chainContains(ne.head, self) {
			continue
		}
		candLen := ne.plen + 1
		if has && !candBetter(ed.rel, candLen, ne.head, bestRel, bestLen, bestTail) {
			continue
		}
		bestRel, bestLen, bestTail, has = ed.rel, candLen, ne.head, true
	}
	old := &col[i]
	if !has {
		return entry{}, old.head != nil
	}
	if old.head != nil && old.learned == bestRel && old.plen == bestLen &&
		chainEqual(old.head.next, bestTail) {
		return *old, false
	}
	return entry{head: arena.alloc(self, bestTail), plen: bestLen, learned: bestRel}, true
}

// candBetter reports whether candidate a should replace incumbent b under
// the standard decision order — higher local pref, then shorter path, then
// lexicographically smaller path — mirroring better() in reference.go. Both
// paths start with the same AS (self), so only the tails are compared.
func candBetter(aRel Relationship, aLen int32, aTail *pathNode, bRel Relationship, bLen int32, bTail *pathNode) bool {
	if aRel != bRel {
		return aRel > bRel
	}
	if aLen != bLen {
		return aLen < bLen
	}
	for aTail != nil && bTail != nil {
		if aTail.asn != bTail.asn {
			return aTail.asn < bTail.asn
		}
		aTail, bTail = aTail.next, bTail.next
	}
	return false
}

// Converge computes the Gao–Rexford routing fixpoint and returns the
// resulting tables. Each (logical) round, an AS recomputes its best route
// per prefix from its neighbors' previous-round selections — synchronous
// Bellman–Ford over policies — but only ASes whose neighborhood actually
// changed are re-evaluated, and prefixes converge independently over flat
// interned tables (see the package comment of engine.go). The result is
// bit-identical to the original whole-topology loop, which survives as
// convergeReference for the equivalence tests.
//
// Valley-free export: a neighbor's route is a candidate only if that
// neighbor originated it or learned it from a customer, unless we are the
// neighbor's customer (customers receive everything).
//
// Gao–Rexford guarantees convergence when the provider–customer graph is
// acyclic; a safety cap of 4·|AS|+16 rounds guards malformed topologies.
func (t *Topology) Converge() *RoutingTables {
	return t.ConvergeWorkers(1)
}

// ConvergeWorkers is Converge with the independent per-prefix fixpoints
// fanned out across at most workers goroutines (workers <= 0 means
// GOMAXPROCS; 1 runs serially on the calling goroutine). Every prefix's
// column is self-contained and lands at its own table offset, so the result
// is bit-identical for every worker count. Prefer it over Converge when a
// single large topology converges on an otherwise idle machine; when many
// scenarios already run in parallel (the sweep entry points), the serial
// engine per scenario avoids oversubscription.
func (t *Topology) ConvergeWorkers(workers int) *RoutingTables {
	e := t.compile()
	rt := newRoutingTables(e.asns, e.prefixes)
	nAS := len(e.asns)
	if nAS == 0 || len(e.prefixes) == 0 {
		return rt
	}
	pool := sync.Pool{New: func() any {
		return &convState{inQueue: make([]bool, nAS)}
	}}
	err := parallel.ForEach(context.Background(), len(e.prefixes), workers, func(p int) error {
		st := pool.Get().(*convState)
		e.convergePrefix(p, rt.entries[p*nAS:(p+1)*nAS], st)
		pool.Put(st)
		return nil
	})
	if err != nil {
		// The tasks never return errors and the context is never cancelled,
		// so only a worker panic can land here; re-raise it.
		panic(err)
	}
	return rt
}
