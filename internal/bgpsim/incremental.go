package bgpsim

// Incremental re-convergence. The paper's routing case studies are deltas on
// a stable world — one ASN re-shuffled, one leaker appearing, one prefix
// hijacked — so re-running the full fixpoint per event wastes almost all of
// its work. ConvergeState keeps the compiled engine, the node arenas, and
// the dense tables alive; Apply patches the compiled form in place and
// re-converges only the affected prefix columns, seeding the change-driven
// work queue from the frontier of ASes whose inputs the delta touched
// instead of from every origin; Revert restores the exact pre-Apply state
// from a sparse undo log without re-converging at all.
//
// Contract: after every Apply, the live tables are observably identical
// (Route/Path/Prefixes on every AS) to a cold Converge of the mutated
// topology. That holds unconditionally, not just in expectation:
//
//   - When the effective provider→customer digraph is acyclic and no AS
//     violates valley-free export, Gao–Rexford guarantees a unique stable
//     state, so any quiescent state the frontier-seeded fixpoint reaches is
//     the cold one (engine.incrementalSafe). The gate is checked on both
//     sides of the delta: pre-delta safety certifies the live tables are a
//     true fixpoint to warm-start from, post-delta safety that the seeded
//     iteration can only quiesce on the unique stable state.
//   - Outside that regime — or if the seeded fixpoint hits the round cap —
//     Apply falls back to recomputing the affected columns cold, which is
//     bit-identical to the cold engine by construction, round cap included.
//     Leak toggles always take this path (a single leaker already admits
//     several stable states), which is why the leak sweep scopes its
//     applies to the one measured column (applyScoped).
//
// The frontier per delta kind: withdraw/announce touch one prefix column
// with the (ex-)origin AS as seed; a link add/remove touches every column
// with both endpoints as seeds (only their adjacency changed); a leak toggle
// touches every column with the leaker's neighbors as seeds (only the
// export edges toward the leaker changed). Everything further away changes
// only through its neighbors' tables, which the ordinary change-driven
// queue propagates.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// DeltaKind enumerates the topology mutations Apply understands.
type DeltaKind uint8

const (
	// DeltaWithdraw removes A's origination of Prefix.
	DeltaWithdraw DeltaKind = iota
	// DeltaAnnounce adds an origination of Prefix at A.
	DeltaAnnounce
	// DeltaLinkUp adds a link between A and B: provider(A)→customer(B)
	// transit, or settlement-free peering when Peer is set.
	DeltaLinkUp
	// DeltaLinkDown removes that link.
	DeltaLinkDown
	// DeltaLeakToggle flips A's route-leaker flag (see MarkLeaker).
	DeltaLeakToggle
)

// String returns the event-grammar keyword of the kind (see parse.go).
func (k DeltaKind) String() string {
	switch k {
	case DeltaWithdraw:
		return "withdraw"
	case DeltaAnnounce:
		return "announce"
	case DeltaLinkUp:
		return "link+"
	case DeltaLinkDown:
		return "link-"
	case DeltaLeakToggle:
		return "leak"
	default:
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
}

// Delta is one topology event. A and Prefix serve withdraw/announce, A and B
// (plus Peer) the link kinds, and A alone the leak toggle.
type Delta struct {
	Kind   DeltaKind
	A, B   ASN
	Prefix string
	Peer   bool
}

// inverse returns the delta that undoes d. Leak toggles are self-inverse.
func (d Delta) inverse() Delta {
	switch d.Kind {
	case DeltaWithdraw:
		d.Kind = DeltaAnnounce
	case DeltaAnnounce:
		d.Kind = DeltaWithdraw
	case DeltaLinkUp:
		d.Kind = DeltaLinkDown
	case DeltaLinkDown:
		d.Kind = DeltaLinkUp
	}
	return d
}

// ErrBadDelta reports a delta that does not apply to the current topology
// (unknown AS, withdrawing an absent origin, adding a present link, ...).
var ErrBadDelta = fmt.Errorf("bgpsim: inapplicable delta")

// applyDelta validates d against the current topology and mutates it.
// Validation is strict in both directions — a withdraw of an absent origin
// or a link-up of a present edge is an error, never a no-op — so every
// applied delta has a well-defined inverse, which Revert and the scenario
// parser both rely on.
func (t *Topology) applyDelta(d Delta) error {
	switch d.Kind {
	case DeltaWithdraw:
		if !t.hasOrigin(d.A, d.Prefix) {
			return fmt.Errorf("%w: withdraw %d %s: not originated", ErrBadDelta, d.A, d.Prefix)
		}
		t.WithdrawOrigin(d.A, d.Prefix)
	case DeltaAnnounce:
		if _, ok := t.ases[d.A]; !ok {
			return fmt.Errorf("%w: %d", ErrUnknownAS, d.A)
		}
		if t.hasOrigin(d.A, d.Prefix) {
			return fmt.Errorf("%w: announce %d %s: already originated", ErrBadDelta, d.A, d.Prefix)
		}
		return t.Originate(d.A, d.Prefix)
	case DeltaLinkUp:
		if d.Peer {
			if t.HasPeer(d.A, d.B) {
				return fmt.Errorf("%w: link+ peer %d %d: already present", ErrBadDelta, d.A, d.B)
			}
			return t.AddPeer(d.A, d.B)
		}
		if t.HasProviderCustomer(d.A, d.B) {
			return fmt.Errorf("%w: link+ p2c %d %d: already present", ErrBadDelta, d.A, d.B)
		}
		return t.AddProviderCustomer(d.A, d.B)
	case DeltaLinkDown:
		if d.Peer {
			if !t.HasPeer(d.A, d.B) {
				return fmt.Errorf("%w: link- peer %d %d: not present", ErrBadDelta, d.A, d.B)
			}
			t.RemovePeer(d.A, d.B)
			return nil
		}
		if !t.HasProviderCustomer(d.A, d.B) {
			return fmt.Errorf("%w: link- p2c %d %d: not present", ErrBadDelta, d.A, d.B)
		}
		t.RemoveProviderCustomer(d.A, d.B)
	case DeltaLeakToggle:
		a, ok := t.ases[d.A]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownAS, d.A)
		}
		a.leaker = !a.leaker
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadDelta, int(d.Kind))
	}
	return nil
}

// patchCol is the sparse undo log of one re-converged prefix column:
// every overwritten cell's previous value, oldest first.
type patchCol struct {
	p   int32
	log []undoCell
}

// Patch records everything needed to undo one Apply: the delta itself (its
// inverse undoes the structural mutation) and the overwritten table cells.
// Patches are strictly LIFO: only the most recent unreverted patch may be
// reverted.
type Patch struct {
	delta       Delta
	cols        []patchCol
	addedPrefix bool // Apply created a new prefix column (dropped on Revert)
	seq         int
}

// Delta returns the delta this patch applied.
func (p *Patch) Delta() Delta { return p.delta }

// Cells returns the number of table cells the apply overwrote — the measured
// blast radius of the delta.
func (p *Patch) Cells() int {
	n := 0
	for i := range p.cols {
		n += len(p.cols[i].log)
	}
	return n
}

// Converged is a reusable convergence state: the topology, its compiled
// engine, and the live routing tables, kept together so successive deltas
// re-converge incrementally instead of from scratch. Obtain one with
// ConvergeState; it is not safe for concurrent use.
type Converged struct {
	t       *Topology
	e       *engine
	rt      *RoutingTables
	workers int
	st      *convState
	applied int // LIFO depth, for Revert-order enforcement
}

// ConvergeState compiles t, converges it fully (fanning prefix columns over
// at most workers goroutines; <= 0 means GOMAXPROCS), and returns the live
// state. The topology is captured by reference: mutate it only through
// Apply/Revert while the state is in use, or the compiled form goes stale.
func (t *Topology) ConvergeState(workers int) *Converged {
	c, err := t.ConvergeStateCtx(context.Background(), workers)
	if err != nil {
		// Background never cancels; only a worker panic can land here.
		panic(err)
	}
	return c
}

// ConvergeStateCtx is ConvergeState with cooperative cancellation during
// the cold convergence: ctx is checked between prefix columns, and on
// cancellation the half-built tables are discarded and ctx.Err() returned.
// Once the state is returned, Apply/Revert events themselves run to
// completion — cancelling mid-event would leave the undo log inconsistent —
// so callers driving event sweeps check the context between events.
func (t *Topology) ConvergeStateCtx(ctx context.Context, workers int) (*Converged, error) {
	e := t.compile()
	rt := newRoutingTables(e.asns, e.prefixes)
	if err := e.convergeAllCtx(ctx, rt, workers); err != nil {
		return nil, err
	}
	return &Converged{
		t:       t,
		e:       e,
		rt:      rt,
		workers: workers,
		st:      &convState{inQueue: make([]bool, len(e.asns))},
	}, nil
}

// Tables returns the live routing tables. They mutate in place on every
// Apply/Revert; take copies (Route/Path materialize fresh slices) to keep
// results across events.
func (c *Converged) Tables() *RoutingTables { return c.rt }

// Topology returns the underlying topology (mutated by Apply/Revert).
func (c *Converged) Topology() *Topology { return c.t }

// Apply mutates the topology by d and re-converges exactly the affected
// prefix columns from the frontier of ASes the delta touched. On success
// the live tables are observably identical to a cold Converge of the
// mutated topology, and the returned patch undoes everything via Revert.
// On error nothing changed.
//
// Deltas that introduce or remove an AS are deliberately absent: the dense
// index space is fixed at ConvergeState time.
func (c *Converged) Apply(d Delta) (*Patch, error) {
	return c.applyScoped(d, nil)
}

// applyScoped is Apply with an optional column scope: when scope is non-nil
// only those prefix columns are re-converged, and every column outside the
// scope keeps its pre-delta state — deliberately stale until the patch is
// reverted. The sweeps use this to pay for exactly the one column they
// measure (a leak toggle would otherwise cold-recompute every column, since
// leakers void the uniqueness guarantee); it stays unexported because the
// partial-staleness contract is easy to misuse.
func (c *Converged) applyScoped(d Delta, scope []int32) (*Patch, error) {
	// The frontier-seeded path needs safety on BOTH sides of the delta:
	// pre-delta safety guarantees the live tables are a true fixpoint (an
	// unsafe era leaves cap-truncated tables whose non-seed cells are not
	// best responses), post-delta safety guarantees the seeded iteration
	// can only quiesce on the unique stable state.
	preSafe := c.e.incrementalSafe()
	addedPrefix, err := c.applyStructural(d)
	if err != nil {
		return nil, err
	}
	p := &Patch{delta: d, addedPrefix: addedPrefix, seq: c.applied + 1}
	cols, seeds := c.affected(d)
	if scope != nil {
		cols = scope
	}
	c.reconverge(p, cols, seeds, preSafe && c.e.incrementalSafe())
	c.applied++
	return p, nil
}

// Revert undoes the most recent unreverted Apply: replays the undo log in
// reverse (restoring the exact pre-Apply table bytes, shared path chains
// included) and applies the inverse delta to the topology and compiled
// engine. Patches are LIFO; reverting out of order panics.
func (c *Converged) Revert(p *Patch) {
	if p == nil || p.seq != c.applied {
		panic("bgpsim: Converged.Revert: patches must be reverted in LIFO order")
	}
	nAS := len(c.e.asns)
	for i := len(p.cols) - 1; i >= 0; i-- {
		pc := &p.cols[i]
		col := c.rt.entries[int(pc.p)*nAS : (int(pc.p)+1)*nAS]
		for j := len(pc.log) - 1; j >= 0; j-- {
			col[pc.log[j].idx] = pc.log[j].e
		}
	}
	if _, err := c.applyStructural(p.delta.inverse()); err != nil {
		// The inverse of a validated, applied delta always applies.
		panic("bgpsim: Converged.Revert: " + err.Error())
	}
	if p.addedPrefix {
		c.dropNewestPrefix()
	}
	c.applied--
}

// applyStructural mutates the topology and patches the compiled engine to
// match, without touching the tables. Returns whether a new prefix column
// was created.
func (c *Converged) applyStructural(d Delta) (addedPrefix bool, err error) {
	e := c.e
	if d.Kind == DeltaWithdraw || d.Kind == DeltaAnnounce {
		if _, ok := e.idx[d.A]; !ok {
			return false, fmt.Errorf("%w: %d", ErrUnknownAS, d.A)
		}
	}
	if err := c.t.applyDelta(d); err != nil {
		return false, err
	}
	switch d.Kind {
	case DeltaWithdraw:
		pi := e.pfxIdx[d.Prefix] // present: the origin existed, so compile/announce saw it
		e.origins[pi] = removeSorted(e.origins[pi], e.idx[d.A])
	case DeltaAnnounce:
		pi, ok := e.pfxIdx[d.Prefix]
		if !ok {
			pi = int32(len(e.prefixes))
			e.prefixes = append(e.prefixes, d.Prefix)
			e.pfxIdx[d.Prefix] = pi
			e.origins = append(e.origins, nil)
			c.rt.addPrefixColumn(d.Prefix)
			addedPrefix = true
		}
		e.origins[pi] = insertSorted(e.origins[pi], e.idx[d.A])
	case DeltaLinkUp, DeltaLinkDown:
		for _, n := range [2]ASN{d.A, d.B} {
			i := e.idx[n]
			e.nbr[i] = compileEdges(c.t, e.idx, n)
			c.updateLeaky(i)
		}
		// Relationship overrides mean even a peer link can change the
		// effective provider→customer digraph; recompute acyclicity.
		e.c2pAcyclic = e.computeC2PAcyclic()
	case DeltaLeakToggle:
		i := e.idx[d.A]
		a := c.t.ases[d.A]
		// Export policy lives on the receiving side: every neighbor's edge
		// toward the leaker carries the receiveAll flag. Patch those edges
		// in place (binary search; adjacency is sorted by index).
		for _, ed := range e.nbr[i] {
			nb := e.nbr[ed.idx]
			at := sort.Search(len(nb), func(k int) bool { return nb[k].idx >= i })
			nb[at].receiveAll = a.customers[e.asns[ed.idx]] || a.leaker
		}
		c.updateLeaky(i)
	}
	return addedPrefix, nil
}

// updateLeaky refreshes the per-AS export-violation flag and the global
// violator count after a structural change at index i.
func (c *Converged) updateLeaky(i int32) {
	now := leakyExporter(c.t.ases[c.e.asns[i]])
	if now != c.e.leaky[i] {
		c.e.leaky[i] = now
		if now {
			c.e.nLeaky++
		} else {
			c.e.nLeaky--
		}
	}
}

// dropNewestPrefix removes the prefix column Apply appended (LIFO, enforced
// by Revert's seq check).
func (c *Converged) dropNewestPrefix() {
	e := c.e
	last := len(e.prefixes) - 1
	delete(e.pfxIdx, e.prefixes[last])
	e.prefixes = e.prefixes[:last]
	e.origins = e.origins[:last]
	c.rt.dropLastPrefixColumn()
}

// affected returns the prefix columns a just-applied delta can influence and
// the seed frontier to re-evaluate first. nil cols means every column.
func (c *Converged) affected(d Delta) (cols []int32, seeds []int32) {
	e := c.e
	switch d.Kind {
	case DeltaWithdraw, DeltaAnnounce:
		return []int32{e.pfxIdx[d.Prefix]}, []int32{e.idx[d.A]}
	case DeltaLinkUp, DeltaLinkDown:
		seeds = []int32{e.idx[d.A], e.idx[d.B]}
		if seeds[0] > seeds[1] {
			seeds[0], seeds[1] = seeds[1], seeds[0]
		}
		return nil, seeds
	default: // DeltaLeakToggle
		i := e.idx[d.A]
		seeds = make([]int32, len(e.nbr[i]))
		for k, ed := range e.nbr[i] {
			seeds[k] = ed.idx
		}
		return nil, seeds
	}
}

// reconverge re-runs the fixpoint on the given columns (nil = all) from the
// seed frontier, recording every overwritten cell into the patch. When safe
// (see Apply), columns continue from the live tables; otherwise — and for
// any column whose seeded fixpoint hit the round cap — they are recomputed
// cold (see the package comment for why that preserves cold-identity).
func (c *Converged) reconverge(p *Patch, cols []int32, seeds []int32, safe bool) {
	e, rt := c.e, c.rt
	nAS, nP := len(e.asns), len(e.prefixes)
	if nAS == 0 || nP == 0 {
		return
	}
	if cols == nil {
		cols = make([]int32, nP)
		for i := range cols {
			cols[i] = int32(i)
		}
	}
	run := func(pi int32, st *convState) []undoCell {
		var log []undoCell
		col := rt.entries[int(pi)*nAS : (int(pi)+1)*nAS]
		if !safe || !e.reconvergeColumn(int(pi), col, st, seeds, &log) {
			e.coldColumn(int(pi), col, st, &log)
		}
		return log
	}

	logs := make([][]undoCell, len(cols))
	w := parallel.Workers(c.workers, len(cols))
	if w == 1 || nAS*len(cols) < serialWorkFloor {
		for i, pi := range cols {
			logs[i] = run(pi, c.st)
		}
	} else {
		chunk := convergeChunks(len(cols), w)
		nChunks := (len(cols) + chunk - 1) / chunk
		chunkLogs := make([][][]undoCell, nChunks) // each task writes only its own index
		pool := sync.Pool{New: func() any {
			return &convState{inQueue: make([]bool, nAS)}
		}}
		err := parallel.ForEach(context.Background(), nChunks, w, func(ci int) error {
			st := pool.Get().(*convState)
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > len(cols) {
				hi = len(cols)
			}
			out := make([][]undoCell, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, run(cols[i], st))
			}
			chunkLogs[ci] = out
			pool.Put(st)
			return nil
		})
		if err != nil {
			panic(err) // only worker panics can land here; re-raise
		}
		for ci, outs := range chunkLogs {
			copy(logs[ci*chunk:], outs)
		}
	}
	for i, pi := range cols {
		if len(logs[i]) > 0 {
			p.cols = append(p.cols, patchCol{p: pi, log: logs[i]})
		}
	}
}

// insertSorted adds v to a sorted int32 slice, keeping it sorted; duplicate
// inserts are impossible (applyDelta rejects duplicate originations).
func insertSorted(s []int32, v int32) []int32 {
	at := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = v
	return s
}

// removeSorted deletes v from a sorted int32 slice (v is present).
func removeSorted(s []int32, v int32) []int32 {
	at := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return append(s[:at], s[at+1:]...)
}
