package bgpsim

// Replay-support surface for the timeline engine (internal/timeline): the
// event-line grammar exported as standalone delta parsing/formatting, strict
// delta application on bare topologies (shadow validation), and two
// observation helpers — table-wide reachability counts for per-tick series
// and a pointer-identity fingerprint that certifies Revert restored the
// exact pre-Apply state, shared path chains included.

import "fmt"

// ParseDelta parses one event line — the directive keyword (a
// DeltaKind.String() value: withdraw, announce, link+, link-, leak) plus its
// space-split arguments — into a Delta. It is the single-line form of the
// ParseScenario event grammar; FormatDelta is its inverse.
func ParseDelta(directive string, args []string) (Delta, error) {
	return parseDelta(directive, args)
}

// FormatDelta renders d as its event-grammar line; inverse of ParseDelta.
func FormatDelta(d Delta) string { return formatDelta(d) }

// ApplyDelta validates d against the topology and mutates it. Validation is
// strict in both directions — withdrawing an absent origin or adding a
// present link is an error, never a no-op — so every applied delta has a
// well-defined inverse. Scenario parsers use this to test-apply event
// sequences on a Clone before replaying them through Converged.Apply.
func (t *Topology) ApplyDelta(d Delta) error { return t.applyDelta(d) }

// Size returns the table dimensions: the number of ASes and of prefix
// columns currently converged.
func (rt *RoutingTables) Size() (ases, prefixes int) {
	return len(rt.asns), len(rt.prefixes)
}

// ReachableCells counts the routed cells of the table — the (AS, prefix)
// pairs holding a selected route — alongside the total cell count. The ratio
// is the global reachability share the temporal experiments chart per tick.
func (rt *RoutingTables) ReachableCells() (reachable, total int) {
	for i := range rt.entries {
		if rt.entries[i].head != nil {
			reachable++
		}
	}
	return reachable, len(rt.entries)
}

// StateFingerprint hashes the live routing state including the identity of
// the shared path-chain nodes (their addresses, not just the hops they
// spell), the prefix interning order, and the LIFO depth. Equal fingerprints
// within one process therefore certify the tables are pointer-exactly
// identical — the guarantee Revert makes and the timeline unwind property
// pins. The value is meaningful only within a single process run; it is a
// test-support probe, not a cache key.
func (c *Converged) StateFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= uint64(len(s)) ^ 0xff
		h *= prime64
	}
	mixInt := func(v int64) { mixStr(fmt.Sprintf("%d", v)) }
	mixInt(int64(c.applied))
	mixInt(int64(len(c.rt.asns)))
	for _, n := range c.rt.asns {
		mixInt(int64(n))
	}
	mixInt(int64(len(c.rt.prefixes)))
	for _, p := range c.rt.prefixes {
		mixStr(p)
	}
	for _, o := range c.rt.order {
		mixInt(int64(o))
	}
	for i := range c.rt.entries {
		en := &c.rt.entries[i]
		// %p folds the node address in: chains rebuilt with identical hops at
		// different addresses fingerprint differently, which is the point.
		mixStr(fmt.Sprintf("%d|%d|%p", en.learned, en.plen, en.head))
	}
	return h
}
