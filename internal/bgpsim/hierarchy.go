package bgpsim

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Hierarchy describes a generated three-tier topology.
type Hierarchy struct {
	Topo  *Topology
	Tier1 []ASN
	Mids  []ASN
	Stubs []ASN
}

// BuildHierarchy generates a random three-tier Internet: a tier-1 clique of
// peers, a middle tier with one or two tier-1 providers and some lateral
// peering, and stubs with one or two mid providers. Every stub originates a
// /16-style prefix named "pfx-<asn>".
func BuildHierarchy(r *rng.Rand, nMid, nStub int) (*Hierarchy, error) {
	h := &Hierarchy{Topo: NewTopology()}
	h.Tier1 = []ASN{1, 2, 3}
	for _, n := range h.Tier1 {
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Tier1-%d", n)}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(h.Tier1); i++ {
		for j := i + 1; j < len(h.Tier1); j++ {
			if err := h.Topo.AddPeer(h.Tier1[i], h.Tier1[j]); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < nMid; i++ {
		n := ASN(100 + i)
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Mid-%d", n)}); err != nil {
			return nil, err
		}
		h.Mids = append(h.Mids, n)
		if err := h.Topo.AddProviderCustomer(h.Tier1[r.Intn(len(h.Tier1))], n); err != nil {
			return nil, err
		}
		if r.Bool(0.5) {
			// Multihoming; a duplicate pick is harmless (idempotent sets).
			_ = h.Topo.AddProviderCustomer(h.Tier1[r.Intn(len(h.Tier1))], n)
		}
	}
	for i := 0; i+1 < len(h.Mids); i += 2 {
		if r.Bool(0.6) {
			if err := h.Topo.AddPeer(h.Mids[i], h.Mids[i+1]); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < nStub; i++ {
		n := ASN(1000 + i)
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Stub-%d", n)}); err != nil {
			return nil, err
		}
		h.Stubs = append(h.Stubs, n)
		if err := h.Topo.AddProviderCustomer(h.Mids[r.Intn(len(h.Mids))], n); err != nil {
			return nil, err
		}
		if r.Bool(0.3) {
			_ = h.Topo.AddProviderCustomer(h.Mids[r.Intn(len(h.Mids))], n)
		}
		if err := h.Topo.Originate(n, fmt.Sprintf("pfx-%d", n)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// LeakRow is one measured point of the E14 leak experiment.
type LeakRow struct {
	LeakerKind    string // "stub" or "mid"
	LeakerASN     ASN
	Providers     int
	Affected      int
	AffectedShare float64 // affected / reachable ASes
}

// RunLeakSweep builds a hierarchy, then measures the blast radius of a leak
// by a representative stub and by each mid-tier AS, against a randomly
// chosen victim prefix. Rows are sorted by the order tried (stub first,
// then mids ascending). The per-scenario convergences run their prefixes on
// GOMAXPROCS workers; see RunLeakSweepWorkers for the knob.
func RunLeakSweep(nMid, nStub int, seed uint64) ([]LeakRow, error) {
	return RunLeakSweepWorkers(nMid, nStub, seed, 0)
}

// RunLeakSweepWorkers is RunLeakSweep with each convergence fanning its
// independent prefixes across at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Convergence is bit-identical for every worker count, so the
// rows are too.
func RunLeakSweepWorkers(nMid, nStub int, seed uint64, workers int) ([]LeakRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	prefix := fmt.Sprintf("pfx-%d", victim)

	measure := func(kind string, leaker ASN) LeakRow {
		h.Topo.MarkLeaker(leaker)
		rt := h.Topo.ConvergeWorkers(workers)
		affected, reachable := BlastRadius(rt, leaker, prefix)
		h.Topo.ClearLeaker(leaker)
		row := LeakRow{
			LeakerKind: kind,
			LeakerASN:  leaker,
			Providers:  len(providersOf(h.Topo, leaker)),
			Affected:   len(affected),
		}
		if reachable > 0 {
			row.AffectedShare = float64(row.Affected) / float64(reachable)
		}
		return row
	}

	var rows []LeakRow
	// One representative stub leaker that is not the victim.
	for _, s := range h.Stubs {
		if s != victim {
			rows = append(rows, measure("stub", s))
			break
		}
	}
	for _, m := range h.Mids {
		rows = append(rows, measure("mid", m))
	}
	return rows, nil
}

func providersOf(t *Topology, n ASN) []ASN {
	var out []ASN
	for nb, rel := range t.Neighbors(n) {
		if rel == FromProvider {
			out = append(out, nb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HijackRow is one measured point of the E16 prefix-hijack experiment.
type HijackRow struct {
	AttackerKind  string // "stub" or "mid"
	AttackerASN   ASN
	Captured      int     // ASes whose best route leads to the attacker
	CapturedShare float64 // captured / ASes with any route (excluding both principals)
}

// RunHijackSweep measures exact-prefix (MOAS) hijacks: the attacker
// originates the victim's prefix, and every AS picks whichever origin its
// policies prefer. Like leaks, the blast radius is economic: an attacker
// close to many customers captures more of the network. One representative
// stub and every mid-tier AS attack in turn. The per-scenario convergences
// run their prefixes on GOMAXPROCS workers; see RunHijackSweepWorkers.
func RunHijackSweep(nMid, nStub int, seed uint64) ([]HijackRow, error) {
	return RunHijackSweepWorkers(nMid, nStub, seed, 0)
}

// RunHijackSweepWorkers is RunHijackSweep with each convergence fanning its
// independent prefixes across at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Convergence is bit-identical for every worker count, so the
// rows are too.
func RunHijackSweepWorkers(nMid, nStub int, seed uint64, workers int) ([]HijackRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	prefix := fmt.Sprintf("pfx-%d", victim)

	measure := func(kind string, attacker ASN) (HijackRow, error) {
		if err := h.Topo.Originate(attacker, prefix); err != nil {
			return HijackRow{}, err
		}
		rt := h.Topo.ConvergeWorkers(workers)
		row := HijackRow{AttackerKind: kind, AttackerASN: attacker}
		total := 0
		for _, n := range h.Topo.ASNs() {
			if n == victim || n == attacker {
				continue
			}
			path := rt.Path(n, prefix)
			if path == nil {
				continue
			}
			total++
			if path[len(path)-1] == attacker {
				row.Captured++
			}
		}
		if total > 0 {
			row.CapturedShare = float64(row.Captured) / float64(total)
		}
		h.Topo.WithdrawOrigin(attacker, prefix)
		return row, nil
	}

	var rows []HijackRow
	for _, s := range h.Stubs {
		if s != victim {
			row, err := measure("stub", s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			break
		}
	}
	for _, m := range h.Mids {
		row, err := measure("mid", m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
