package bgpsim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Hierarchy describes a generated Internet-like topology.
type Hierarchy struct {
	Topo  *Topology
	Tier1 []ASN
	Hubs  []ASN // regional concentrators; empty for the classic three-tier shape
	Mids  []ASN
	Stubs []ASN
	// OriginStubs lists the stubs that originate a prefix ("pfx-<asn>"), in
	// ascending order. Equal to Stubs unless HierarchyOpts.OriginEvery thins
	// the prefix table for large-scale runs.
	OriginStubs []ASN
}

// HierarchyOpts parameterizes BuildHierarchyOpts. The zero value of every
// knob reproduces the classic BuildHierarchy shape exactly (same ASNs, same
// RNG draw sequence), so existing seeds keep their topologies.
type HierarchyOpts struct {
	NMid  int
	NStub int
	// Hubs > 0 inserts a route-reflector-flavoured tier between the tier-1
	// clique and the mids: Hubs regional concentrator ASes, each dual-homed
	// to tier-1 providers and peered in a ring (the reflector mesh), with the
	// mids homed to hubs instead of tier-1s (the client sessions). The shape
	// keeps path diversity per mid while cutting the tier-1 fan-out, which is
	// what makes 100k-AS tables tractable.
	Hubs int
	// OriginEvery k > 1 makes only every k-th stub originate a prefix, so the
	// prefix-column count — the dominant table dimension — scales sublinearly
	// with AS count. 0 or 1 means every stub originates.
	OriginEvery int
}

// BuildHierarchy generates a random three-tier Internet: a tier-1 clique of
// peers, a middle tier with one or two tier-1 providers and some lateral
// peering, and stubs with one or two mid providers. Every stub originates a
// /16-style prefix named "pfx-<asn>".
func BuildHierarchy(r *rng.Rand, nMid, nStub int) (*Hierarchy, error) {
	return BuildHierarchyOpts(r, HierarchyOpts{NMid: nMid, NStub: nStub})
}

// BuildHierarchyOpts is BuildHierarchy with the scale knobs exposed. With
// o.Hubs == 0 and o.OriginEvery <= 1 it draws exactly the same RNG sequence
// and assigns the same ASNs as the classic generator (for nMid <= 900),
// so seeded experiment topologies are stable across the two entry points.
func BuildHierarchyOpts(r *rng.Rand, o HierarchyOpts) (*Hierarchy, error) {
	if o.NStub > 0 && o.NMid <= 0 {
		return nil, fmt.Errorf("bgpsim: hierarchy needs mids to home %d stubs", o.NStub)
	}
	if o.Hubs < 0 || o.Hubs > 90 {
		return nil, fmt.Errorf("bgpsim: hub count %d outside [0, 90]", o.Hubs)
	}
	h := &Hierarchy{Topo: NewTopology()}
	h.Tier1 = []ASN{1, 2, 3}
	for _, n := range h.Tier1 {
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Tier1-%d", n)}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(h.Tier1); i++ {
		for j := i + 1; j < len(h.Tier1); j++ {
			if err := h.Topo.AddPeer(h.Tier1[i], h.Tier1[j]); err != nil {
				return nil, err
			}
		}
	}
	// Hub tier (route-reflector flavour): ASNs 10..99, dual-homed upward,
	// ring-peered sideways. midHomes is whatever tier the mids attach to.
	midHomes := h.Tier1
	for i := 0; i < o.Hubs; i++ {
		n := ASN(10 + i)
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Hub-%d", n)}); err != nil {
			return nil, err
		}
		h.Hubs = append(h.Hubs, n)
		if err := h.Topo.AddProviderCustomer(h.Tier1[r.Intn(len(h.Tier1))], n); err != nil {
			return nil, err
		}
		// Second upstream; a duplicate pick is harmless (idempotent sets).
		_ = h.Topo.AddProviderCustomer(h.Tier1[r.Intn(len(h.Tier1))], n)
	}
	for i := 0; i < len(h.Hubs); i++ {
		if j := (i + 1) % len(h.Hubs); j != i {
			if err := h.Topo.AddPeer(h.Hubs[i], h.Hubs[j]); err != nil && !h.Topo.HasPeer(h.Hubs[i], h.Hubs[j]) {
				return nil, err
			}
		}
	}
	if len(h.Hubs) > 0 {
		midHomes = h.Hubs
	}
	for i := 0; i < o.NMid; i++ {
		n := ASN(100 + i)
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Mid-%d", n)}); err != nil {
			return nil, err
		}
		h.Mids = append(h.Mids, n)
		if err := h.Topo.AddProviderCustomer(midHomes[r.Intn(len(midHomes))], n); err != nil {
			return nil, err
		}
		if r.Bool(0.5) {
			// Multihoming; a duplicate pick is harmless (idempotent sets).
			_ = h.Topo.AddProviderCustomer(midHomes[r.Intn(len(midHomes))], n)
		}
	}
	for i := 0; i+1 < len(h.Mids); i += 2 {
		if r.Bool(0.6) {
			if err := h.Topo.AddPeer(h.Mids[i], h.Mids[i+1]); err != nil {
				return nil, err
			}
		}
	}
	// Classic layout puts stubs at 1000+; past 900 mids that range is taken,
	// so large-scale shapes start stubs right after the mid block instead.
	stubBase := 1000
	if 100+o.NMid > stubBase {
		stubBase = 100 + o.NMid
	}
	every := o.OriginEvery
	if every < 1 {
		every = 1
	}
	for i := 0; i < o.NStub; i++ {
		n := ASN(stubBase + i)
		if err := h.Topo.AddAS(n, ASInfo{Name: fmt.Sprintf("Stub-%d", n)}); err != nil {
			return nil, err
		}
		h.Stubs = append(h.Stubs, n)
		if err := h.Topo.AddProviderCustomer(h.Mids[r.Intn(len(h.Mids))], n); err != nil {
			return nil, err
		}
		if r.Bool(0.3) {
			_ = h.Topo.AddProviderCustomer(h.Mids[r.Intn(len(h.Mids))], n)
		}
		if i%every == 0 {
			if err := h.Topo.Originate(n, fmt.Sprintf("pfx-%d", n)); err != nil {
				return nil, err
			}
			h.OriginStubs = append(h.OriginStubs, n)
		}
	}
	return h, nil
}

// LeakRow is one measured point of the E14 leak experiment.
type LeakRow struct {
	LeakerKind    string // "stub" or "mid"
	LeakerASN     ASN
	Providers     int
	Affected      int
	AffectedShare float64 // affected / reachable ASes
}

// RunLeakSweep builds a hierarchy, then measures the blast radius of a leak
// by a representative stub and by each mid-tier AS, against a randomly
// chosen victim prefix. Rows are sorted by the order tried (stub first,
// then mids ascending). The base topology converges once; each leaker is a
// single incremental toggle applied and reverted against that state. See
// RunLeakSweepWorkers for the parallelism knob.
func RunLeakSweep(nMid, nStub int, seed uint64) ([]LeakRow, error) {
	return RunLeakSweepWorkers(nMid, nStub, seed, 0)
}

// RunLeakSweepWorkers is RunLeakSweep with the convergences fanning
// independent prefix columns across at most workers goroutines (workers <= 0
// means GOMAXPROCS). Convergence is bit-identical for every worker count, so
// the rows are too.
func RunLeakSweepWorkers(nMid, nStub int, seed uint64, workers int) ([]LeakRow, error) {
	return RunLeakSweepCtx(context.Background(), nMid, nStub, seed, workers)
}

// RunLeakSweepCtx is RunLeakSweepWorkers with cooperative cancellation: ctx
// is checked during the base convergence and between leaker events (each
// scoped apply+revert runs to completion to keep the undo log consistent).
// Rows are identical to the Background variants when ctx never cancels.
func RunLeakSweepCtx(ctx context.Context, nMid, nStub int, seed uint64, workers int) ([]LeakRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	return leakSweepRows(ctx, h, victim, workers)
}

// RunLeakSweepOpts is the leak sweep over a BuildHierarchyOpts shape; the
// victim is drawn from the originating stubs.
func RunLeakSweepOpts(o HierarchyOpts, seed uint64, workers int) ([]LeakRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchyOpts(r.Split(), o)
	if err != nil {
		return nil, err
	}
	if len(h.OriginStubs) == 0 {
		return nil, fmt.Errorf("bgpsim: leak sweep needs at least one originating stub")
	}
	victim := h.OriginStubs[r.Intn(len(h.OriginStubs))]
	return leakSweepRows(context.Background(), h, victim, workers)
}

// leakSweepRows converges the base once and measures each leaker as an
// incremental toggle scoped to the one column BlastRadius reads: a leaker
// voids the unique-fixpoint guarantee, so the victim column is recomputed
// cold (bit-identical to the full-converge oracle), every other column is
// untouched, and Revert restores the base state from the undo log. ctx is
// honoured during the base convergence and between leaker events; each
// apply+revert pair runs to completion once started.
func leakSweepRows(ctx context.Context, h *Hierarchy, victim ASN, workers int) ([]LeakRow, error) {
	prefix := fmt.Sprintf("pfx-%d", victim)
	c, err := h.Topo.ConvergeStateCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	scope := []int32{c.rt.pfxIdx[prefix]}
	measure := func(kind string, leaker ASN) (LeakRow, error) {
		if err := ctx.Err(); err != nil {
			return LeakRow{}, err
		}
		//humnet:allow ctxflow -- scoped apply+revert must run to completion or the undo log is left inconsistent; ctx is honoured between sweep events
		p, err := c.applyScoped(Delta{Kind: DeltaLeakToggle, A: leaker}, scope)
		if err != nil {
			return LeakRow{}, err
		}
		affected, reachable := BlastRadius(c.Tables(), leaker, prefix)
		c.Revert(p)
		row := LeakRow{
			LeakerKind: kind,
			LeakerASN:  leaker,
			Providers:  len(providersOf(h.Topo, leaker)),
			Affected:   len(affected),
		}
		if reachable > 0 {
			row.AffectedShare = float64(row.Affected) / float64(reachable)
		}
		return row, nil
	}

	var rows []LeakRow
	// One representative stub leaker that is not the victim.
	for _, s := range h.Stubs {
		if s != victim {
			row, err := measure("stub", s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			break
		}
	}
	for _, m := range h.Mids {
		row, err := measure("mid", m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runLeakSweepFullWorkers is the pre-incremental sweep — one cold
// convergence per leaker — kept as the equality oracle for the incremental
// path and as the honest "before" side of the sweep benchmarks.
func runLeakSweepFullWorkers(nMid, nStub int, seed uint64, workers int) ([]LeakRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	return leakSweepRowsFull(h, victim, workers)
}

// leakSweepRowsFull is the cold-per-leaker counterpart of leakSweepRows over
// an already-built hierarchy, so benchmarks can run both sides on the same
// shape.
func leakSweepRowsFull(h *Hierarchy, victim ASN, workers int) ([]LeakRow, error) {
	prefix := fmt.Sprintf("pfx-%d", victim)

	measure := func(kind string, leaker ASN) LeakRow {
		h.Topo.MarkLeaker(leaker)
		rt := h.Topo.ConvergeWorkers(workers)
		affected, reachable := BlastRadius(rt, leaker, prefix)
		h.Topo.ClearLeaker(leaker)
		row := LeakRow{
			LeakerKind: kind,
			LeakerASN:  leaker,
			Providers:  len(providersOf(h.Topo, leaker)),
			Affected:   len(affected),
		}
		if reachable > 0 {
			row.AffectedShare = float64(row.Affected) / float64(reachable)
		}
		return row
	}

	var rows []LeakRow
	for _, s := range h.Stubs {
		if s != victim {
			rows = append(rows, measure("stub", s))
			break
		}
	}
	for _, m := range h.Mids {
		rows = append(rows, measure("mid", m))
	}
	return rows, nil
}

func providersOf(t *Topology, n ASN) []ASN {
	var out []ASN
	for nb, rel := range t.Neighbors(n) {
		if rel == FromProvider {
			out = append(out, nb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HijackRow is one measured point of the E16 prefix-hijack experiment.
type HijackRow struct {
	AttackerKind  string // "stub" or "mid"
	AttackerASN   ASN
	Captured      int     // ASes whose best route leads to the attacker
	CapturedShare float64 // captured / ASes with any route (excluding both principals)
}

// RunHijackSweep measures exact-prefix (MOAS) hijacks: the attacker
// originates the victim's prefix, and every AS picks whichever origin its
// policies prefer. Like leaks, the blast radius is economic: an attacker
// close to many customers captures more of the network. One representative
// stub and every mid-tier AS attack in turn; each attack is an incremental
// announce applied and reverted against the once-converged base. See
// RunHijackSweepWorkers for the parallelism knob.
func RunHijackSweep(nMid, nStub int, seed uint64) ([]HijackRow, error) {
	return RunHijackSweepWorkers(nMid, nStub, seed, 0)
}

// RunHijackSweepWorkers is RunHijackSweep with the convergences fanning
// independent prefix columns across at most workers goroutines (workers <= 0
// means GOMAXPROCS). Convergence is bit-identical for every worker count, so
// the rows are too.
func RunHijackSweepWorkers(nMid, nStub int, seed uint64, workers int) ([]HijackRow, error) {
	return RunHijackSweepCtx(context.Background(), nMid, nStub, seed, workers)
}

// RunHijackSweepCtx is RunHijackSweepWorkers with cooperative cancellation:
// ctx is checked during the base convergence and between attack events (each
// announce+revert pair runs to completion to keep the undo log consistent).
// Rows are identical to the Background variants when ctx never cancels.
func RunHijackSweepCtx(ctx context.Context, nMid, nStub int, seed uint64, workers int) ([]HijackRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	return hijackSweepRows(ctx, h, victim, workers)
}

// RunHijackSweepOpts is the hijack sweep over a BuildHierarchyOpts shape;
// the victim is drawn from the originating stubs.
func RunHijackSweepOpts(o HierarchyOpts, seed uint64, workers int) ([]HijackRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchyOpts(r.Split(), o)
	if err != nil {
		return nil, err
	}
	if len(h.OriginStubs) == 0 {
		return nil, fmt.Errorf("bgpsim: hijack sweep needs at least one originating stub")
	}
	victim := h.OriginStubs[r.Intn(len(h.OriginStubs))]
	return hijackSweepRows(context.Background(), h, victim, workers)
}

// hijackSweepRows converges the base once and measures each attacker as an
// incremental announce of the victim's prefix, reverted after measuring.
// ctx is honoured during the base convergence and between attack events;
// each announce+revert pair runs to completion once started.
func hijackSweepRows(ctx context.Context, h *Hierarchy, victim ASN, workers int) ([]HijackRow, error) {
	prefix := fmt.Sprintf("pfx-%d", victim)
	c, err := h.Topo.ConvergeStateCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	asns := h.Topo.ASNs()
	measure := func(kind string, attacker ASN) (HijackRow, error) {
		if err := ctx.Err(); err != nil {
			return HijackRow{}, err
		}
		//humnet:allow ctxflow -- announce+revert must run to completion or the undo log is left inconsistent; ctx is honoured between sweep events
		p, err := c.Apply(Delta{Kind: DeltaAnnounce, A: attacker, Prefix: prefix})
		if err != nil {
			return HijackRow{}, err
		}
		rt := c.Tables()
		row := HijackRow{AttackerKind: kind, AttackerASN: attacker}
		total := 0
		for _, n := range asns {
			if n == victim || n == attacker {
				continue
			}
			path := rt.Path(n, prefix)
			if path == nil {
				continue
			}
			total++
			if path[len(path)-1] == attacker {
				row.Captured++
			}
		}
		if total > 0 {
			row.CapturedShare = float64(row.Captured) / float64(total)
		}
		c.Revert(p)
		return row, nil
	}

	var rows []HijackRow
	for _, s := range h.Stubs {
		if s != victim {
			row, err := measure("stub", s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			break
		}
	}
	for _, m := range h.Mids {
		row, err := measure("mid", m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runHijackSweepFullWorkers is the pre-incremental hijack sweep — one cold
// convergence per attacker — kept as the equality oracle and benchmark
// baseline (see runLeakSweepFullWorkers).
func runHijackSweepFullWorkers(nMid, nStub int, seed uint64, workers int) ([]HijackRow, error) {
	r := rng.New(seed)
	h, err := BuildHierarchy(r.Split(), nMid, nStub)
	if err != nil {
		return nil, err
	}
	victim := h.Stubs[r.Intn(len(h.Stubs))]
	return hijackSweepRowsFull(h, victim, workers)
}

// hijackSweepRowsFull is the cold-per-attacker counterpart of
// hijackSweepRows over an already-built hierarchy (see leakSweepRowsFull).
func hijackSweepRowsFull(h *Hierarchy, victim ASN, workers int) ([]HijackRow, error) {
	prefix := fmt.Sprintf("pfx-%d", victim)

	measure := func(kind string, attacker ASN) (HijackRow, error) {
		if err := h.Topo.Originate(attacker, prefix); err != nil {
			return HijackRow{}, err
		}
		rt := h.Topo.ConvergeWorkers(workers)
		row := HijackRow{AttackerKind: kind, AttackerASN: attacker}
		total := 0
		for _, n := range h.Topo.ASNs() {
			if n == victim || n == attacker {
				continue
			}
			path := rt.Path(n, prefix)
			if path == nil {
				continue
			}
			total++
			if path[len(path)-1] == attacker {
				row.Captured++
			}
		}
		if total > 0 {
			row.CapturedShare = float64(row.Captured) / float64(total)
		}
		h.Topo.WithdrawOrigin(attacker, prefix)
		return row, nil
	}

	var rows []HijackRow
	for _, s := range h.Stubs {
		if s != victim {
			row, err := measure("stub", s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			break
		}
	}
	for _, m := range h.Mids {
		row, err := measure("mid", m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
