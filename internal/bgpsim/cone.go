package bgpsim

import (
	"sort"
)

// CustomerCone returns the set of ASes reachable from n by walking only
// provider→customer edges, including n itself. Cone size is the standard
// measure of an AS's market dominance — the "dominant players" whose
// priorities the paper says shape research agendas.
func (t *Topology) CustomerCone(n ASN) []ASN {
	if _, ok := t.ases[n]; !ok {
		return nil
	}
	seen := map[ASN]bool{n: true}
	queue := []ASN{n}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Visit customers in ASN order so the BFS frontier (and any future
		// consumer of traversal order) is independent of map iteration order.
		cs := make([]ASN, 0, len(t.ases[u].customers))
		for c := range t.ases[u].customers {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		for _, c := range cs {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConeSizes returns every AS's customer-cone size, keyed by ASN.
func (t *Topology) ConeSizes() map[ASN]int {
	out := make(map[ASN]int, len(t.ases))
	for n := range t.ases {
		out[n] = len(t.CustomerCone(n))
	}
	return out
}

// TransitDominance returns the share of all stub ASes (no customers) that
// lie inside n's customer cone — how much of the edge of the network
// depends on n for transit.
func (t *Topology) TransitDominance(n ASN) float64 {
	stubs := 0
	for _, a := range t.ases {
		if len(a.customers) == 0 {
			stubs++
		}
	}
	if stubs == 0 {
		return 0
	}
	inCone := 0
	for _, m := range t.CustomerCone(n) {
		if len(t.ases[m].customers) == 0 {
			inCone++
		}
	}
	return float64(inCone) / float64(stubs)
}
