package bgpsim

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/proptest"
	"repro/internal/rng"
)

// assertTablesMatchCold requires the live tables of c to be observably
// identical — reachability, learned relationship, full path, and per-AS
// prefix enumeration — to a cold Converge of the same (mutated) topology.
// This is the incremental engine's central contract.
func assertTablesMatchCold(t *testing.T, label string, c *Converged) {
	t.Helper()
	if err := tablesEqualCold(c); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

// tablesEqualCold is assertTablesMatchCold in error form, shared with the
// property suite.
func tablesEqualCold(c *Converged) error {
	cold := c.Topology().Converge()
	live := c.Tables()
	for _, n := range c.Topology().ASNs() {
		cp, lp := cold.Prefixes(n), live.Prefixes(n)
		if len(cp) != len(lp) {
			return fmt.Errorf("AS %d: live prefixes %v, cold %v", n, lp, cp)
		}
		for i := range cp {
			if cp[i] != lp[i] {
				return fmt.Errorf("AS %d: live prefixes %v, cold %v", n, lp, cp)
			}
		}
		for _, p := range cp {
			got, want := live.Route(n, p), cold.Route(n, p)
			if !routesEqual(got, want) {
				return fmt.Errorf("AS %d prefix %s: live %+v, cold %+v", n, p, got, want)
			}
		}
	}
	return nil
}

// snapshotEntries copies the raw table cells (shared path-chain pointers
// included) so a revert can be checked for exact restoration, not just
// observable equality.
func snapshotEntries(rt *RoutingTables) []entry {
	return append([]entry(nil), rt.entries...)
}

func assertEntriesRestored(t *testing.T, label string, rt *RoutingTables, snap []entry) {
	t.Helper()
	if len(rt.entries) != len(snap) {
		t.Fatalf("%s: %d cells after revert, want %d", label, len(rt.entries), len(snap))
	}
	for i := range snap {
		if rt.entries[i] != snap[i] {
			t.Fatalf("%s: cell %d = %+v after revert, want %+v (path chains must be pointer-identical)",
				label, i, rt.entries[i], snap[i])
		}
	}
}

func TestIncrementalWithdrawBitIdentical(t *testing.T) {
	h, err := BuildHierarchy(rng.New(7), 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	base := snapshotEntries(c.Tables())

	victim := h.Stubs[5]
	pfx := fmt.Sprintf("pfx-%d", victim)
	p, err := c.Apply(Delta{Kind: DeltaWithdraw, A: victim, Prefix: pfx})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tables().Reachable(h.Tier1[0], pfx) {
		t.Fatalf("tier1 still reaches withdrawn %s", pfx)
	}
	assertTablesMatchCold(t, "after withdraw", c)
	if p.Cells() == 0 {
		t.Fatal("withdraw of a live prefix overwrote no cells")
	}
	if p.Delta().Kind != DeltaWithdraw {
		t.Fatalf("patch delta = %+v", p.Delta())
	}

	c.Revert(p)
	assertEntriesRestored(t, "withdraw revert", c.Tables(), base)
	if !h.Topo.hasOrigin(victim, pfx) {
		t.Fatal("revert did not restore the origination")
	}
	assertTablesMatchCold(t, "after revert", c)
}

func TestIncrementalAnnounceNewPrefix(t *testing.T) {
	h, err := BuildHierarchy(rng.New(9), 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	base := snapshotEntries(c.Tables())
	basePrefixes := c.Tables().Prefixes(h.Tier1[0])

	// "pfx-0zzz" sorts before every "pfx-1xxx" stub prefix, so the spliced
	// order index — not the appended column position — must drive Prefixes.
	mid := h.Mids[2]
	p, err := c.Apply(Delta{Kind: DeltaAnnounce, A: mid, Prefix: "pfx-0zzz"})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Tables().Prefixes(h.Tier1[0])
	if len(got) != len(basePrefixes)+1 || got[0] != "pfx-0zzz" {
		t.Fatalf("prefix enumeration after announce = %v", got)
	}
	assertTablesMatchCold(t, "after announce", c)

	c.Revert(p)
	assertEntriesRestored(t, "announce revert", c.Tables(), base)
	if c.Tables().Reachable(mid, "pfx-0zzz") {
		t.Fatal("new prefix survived revert")
	}
	assertTablesMatchCold(t, "after revert", c)
}

func TestIncrementalLinkFlap(t *testing.T) {
	h, err := BuildHierarchy(rng.New(13), 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	base := snapshotEntries(c.Tables())

	// Down one stub's transit link, then add a rescue peering, strictly LIFO.
	stub := h.Stubs[3]
	provider := providersOf(h.Topo, stub)[0]
	p1, err := c.Apply(Delta{Kind: DeltaLinkDown, A: provider, B: stub})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatchCold(t, "after link-", c)

	p2, err := c.Apply(Delta{Kind: DeltaLinkUp, A: stub, B: h.Stubs[4], Peer: true})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatchCold(t, "after link+ peer", c)

	c.Revert(p2)
	c.Revert(p1)
	assertEntriesRestored(t, "link flap revert", c.Tables(), base)
	if !h.Topo.HasProviderCustomer(provider, stub) || h.Topo.HasPeer(stub, h.Stubs[4]) {
		t.Fatal("revert did not restore the link set")
	}
}

func TestIncrementalLeakToggle(t *testing.T) {
	h, err := BuildHierarchy(rng.New(17), 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	base := snapshotEntries(c.Tables())

	// Any leaker voids the unique-fixpoint guarantee (see incrementalSafe),
	// so these applies exercise the cold-column fallback and must still
	// match the cold oracle exactly.
	p1, err := c.Apply(Delta{Kind: DeltaLeakToggle, A: h.Mids[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Topo.IsLeaker(h.Mids[1]) {
		t.Fatal("toggle did not set the leaker flag")
	}
	if c.e.incrementalSafe() {
		t.Fatal("a leaker should not be incrementally safe")
	}
	assertTablesMatchCold(t, "one leaker", c)

	p2, err := c.Apply(Delta{Kind: DeltaLeakToggle, A: h.Mids[5]})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatchCold(t, "two leakers", c)

	c.Revert(p2)
	assertTablesMatchCold(t, "back to one leaker", c)
	c.Revert(p1)
	assertEntriesRestored(t, "leak toggle revert", c.Tables(), base)
	if h.Topo.IsLeaker(h.Mids[1]) {
		t.Fatal("revert left the leaker flag set")
	}
}

// TestIncrementalUnsafeCycleFallsBack pins the fallback on a topology where
// the cold engine itself only stops at the round cap: a provider cycle.
// Incremental and cold must agree cell for cell even there.
func TestIncrementalUnsafeCycleFallsBack(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3, 4} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	mustPC(t, topo, 2, 3)
	mustPC(t, topo, 3, 1) // cycle
	mustPC(t, topo, 3, 4)
	_ = topo.Originate(1, "p")

	c := topo.ConvergeState(1)
	if c.e.incrementalSafe() {
		t.Fatal("provider cycle reported as incrementally safe")
	}
	p, err := c.Apply(Delta{Kind: DeltaAnnounce, A: 4, Prefix: "q"})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatchCold(t, "announce on cycle", c)
	c.Revert(p)
	assertTablesMatchCold(t, "revert on cycle", c)
}

func TestIncrementalApplyErrors(t *testing.T) {
	h, err := BuildHierarchy(rng.New(19), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	base := snapshotEntries(c.Tables())
	stub := h.Stubs[0]
	pfx := fmt.Sprintf("pfx-%d", stub)
	provider := providersOf(h.Topo, stub)[0]

	cases := []struct {
		name string
		d    Delta
		want error
	}{
		{"withdraw absent", Delta{Kind: DeltaWithdraw, A: stub, Prefix: "nope"}, ErrBadDelta},
		{"withdraw unknown AS", Delta{Kind: DeltaWithdraw, A: 99999, Prefix: pfx}, ErrUnknownAS},
		{"announce duplicate", Delta{Kind: DeltaAnnounce, A: stub, Prefix: pfx}, ErrBadDelta},
		{"announce unknown AS", Delta{Kind: DeltaAnnounce, A: 99999, Prefix: "x"}, ErrUnknownAS},
		{"link+ present", Delta{Kind: DeltaLinkUp, A: provider, B: stub}, ErrBadDelta},
		{"link- absent", Delta{Kind: DeltaLinkDown, A: stub, B: h.Stubs[1], Peer: true}, ErrBadDelta},
		{"link+ unknown AS", Delta{Kind: DeltaLinkUp, A: stub, B: 99999}, ErrUnknownAS},
		{"link self", Delta{Kind: DeltaLinkUp, A: stub, B: stub}, ErrSelfLink},
		{"leak unknown AS", Delta{Kind: DeltaLeakToggle, A: 99999}, ErrUnknownAS},
	}
	for _, tc := range cases {
		p, err := c.Apply(tc.d)
		if p != nil || !errors.Is(err, tc.want) {
			t.Errorf("%s: Apply = (%v, %v), want error %v", tc.name, p, err, tc.want)
		}
	}
	// Failed applies must leave no trace.
	assertEntriesRestored(t, "after rejected deltas", c.Tables(), base)
	assertTablesMatchCold(t, "after rejected deltas", c)
}

func TestIncrementalRevertEnforcesLIFO(t *testing.T) {
	h, err := BuildHierarchy(rng.New(23), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Topo.ConvergeState(1)
	p1, err := c.Apply(Delta{Kind: DeltaLeakToggle, A: h.Mids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(Delta{Kind: DeltaLeakToggle, A: h.Mids[0]}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Revert did not panic")
		}
	}()
	c.Revert(p1) // p2 is still outstanding
}

// TestSweepsMatchFull pins the incremental sweep implementations to the
// preserved cold-per-event oracles at the E14/E16 experiment parameters, so
// REPORT.md cannot drift.
func TestSweepsMatchFull(t *testing.T) {
	for _, w := range []int{1, 4} {
		gotLeak, err := RunLeakSweepWorkers(8, 20, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		wantLeak, err := runLeakSweepFullWorkers(8, 20, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotLeak, wantLeak) {
			t.Fatalf("workers=%d: incremental leak sweep diverged:\n got %+v\nwant %+v", w, gotLeak, wantLeak)
		}
		gotHijack, err := RunHijackSweepWorkers(8, 20, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		wantHijack, err := runHijackSweepFullWorkers(8, 20, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotHijack, wantHijack) {
			t.Fatalf("workers=%d: incremental hijack sweep diverged:\n got %+v\nwant %+v", w, gotHijack, wantHijack)
		}
	}
}

func TestBuildHierarchyOptsClassicCompatible(t *testing.T) {
	classic, err := BuildHierarchy(rng.New(41), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := BuildHierarchyOpts(rng.New(41), HierarchyOpts{NMid: 8, NStub: 16})
	if err != nil {
		t.Fatal(err)
	}
	if FormatTopology(classic.Topo) != FormatTopology(opts.Topo) {
		t.Fatal("zero-valued HierarchyOpts changed the generated topology")
	}
	if !reflect.DeepEqual(classic.Stubs, opts.OriginStubs) {
		t.Fatalf("OriginStubs %v, want all stubs %v", opts.OriginStubs, classic.Stubs)
	}
}

func TestBuildHierarchyOptsVariants(t *testing.T) {
	h, err := BuildHierarchyOpts(rng.New(43), HierarchyOpts{NMid: 12, NStub: 40, Hubs: 4, OriginEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Hubs) != 4 || len(h.OriginStubs) != 5 {
		t.Fatalf("hubs %v, origin stubs %v", h.Hubs, h.OriginStubs)
	}
	// Hub shape: mids are homed to hubs, not tier-1s.
	for _, m := range h.Mids {
		for _, p := range providersOf(h.Topo, m) {
			if p < 10 || p > 99 {
				t.Fatalf("mid %d homed to %d, want a hub", m, p)
			}
		}
	}
	rt := h.Topo.Converge()
	for _, s := range h.OriginStubs {
		pfx := fmt.Sprintf("pfx-%d", s)
		for _, n := range h.Tier1 {
			if !rt.Reachable(n, pfx) {
				t.Fatalf("tier1 %d cannot reach %s through the hub tier", n, pfx)
			}
		}
	}
	// Stub ASNs must not collide with a wide mid tier.
	wide, err := BuildHierarchyOpts(rng.New(47), HierarchyOpts{NMid: 1200, NStub: 10})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stubs[0] != ASN(100+1200) {
		t.Fatalf("wide-mid stub base = %d", wide.Stubs[0])
	}
}

// randomDelta draws an applicable delta for the spec topology, or a zero
// delta when the generator picked a kind with no applicable instance.
func randomDelta(g *proptest.G, c *Converged, mids, stubs []ASN, extra *int) (Delta, bool) {
	topo := c.Topology()
	all := topo.ASNs()
	switch g.Intn(5) {
	case 0: // withdraw a live origination
		var live []Delta
		for _, n := range all {
			for _, p := range topo.Origins(n) {
				live = append(live, Delta{Kind: DeltaWithdraw, A: n, Prefix: p})
			}
		}
		if len(live) == 0 {
			return Delta{}, false
		}
		return live[g.Intn(len(live))], true
	case 1: // announce: fresh prefix or a hijack of an existing one
		n := all[g.Intn(len(all))]
		if g.Bool(0.5) && len(stubs) > 0 {
			victim := stubs[g.Intn(len(stubs))]
			pfx := fmt.Sprintf("pfx-%d", victim)
			if n == victim || topo.hasOrigin(n, pfx) {
				return Delta{}, false
			}
			return Delta{Kind: DeltaAnnounce, A: n, Prefix: pfx}, true
		}
		*extra++
		return Delta{Kind: DeltaAnnounce, A: n, Prefix: fmt.Sprintf("pfx-extra-%d", *extra)}, true
	case 2: // link up between two random ASes
		a, b := all[g.Intn(len(all))], all[g.Intn(len(all))]
		d := Delta{Kind: DeltaLinkUp, A: a, B: b, Peer: g.Bool(0.5)}
		if a == b {
			return Delta{}, false
		}
		if d.Peer && topo.HasPeer(a, b) {
			return Delta{}, false
		}
		if !d.Peer && topo.HasProviderCustomer(a, b) {
			return Delta{}, false
		}
		return d, true
	case 3: // link down an existing transit edge
		var live []Delta
		for _, n := range all {
			for nb, rel := range topo.Neighbors(n) {
				switch rel {
				case FromCustomer:
					live = append(live, Delta{Kind: DeltaLinkDown, A: n, B: nb})
				case FromPeer:
					if n < nb {
						live = append(live, Delta{Kind: DeltaLinkDown, A: n, B: nb, Peer: true})
					}
				}
			}
		}
		if len(live) == 0 {
			return Delta{}, false
		}
		return live[g.Intn(len(live))], true
	default: // leak toggle, biased toward mids where it bites
		if len(mids) > 0 && g.Bool(0.7) {
			return Delta{Kind: DeltaLeakToggle, A: mids[g.Intn(len(mids))]}, true
		}
		return Delta{Kind: DeltaLeakToggle, A: all[g.Intn(len(all))]}, true
	}
}

// TestPropIncrementalMatchesCold is the incremental engine's oracle suite:
// random event sequences (withdraw, announce/hijack, link flap, leak toggle)
// over generated hierarchies, asserting after every Apply that the live
// tables equal a cold convergence of the mutated topology, and after the
// final unwinding of the patch stack that the original tables come back
// cell-for-cell. Runs at 1, 4, and GOMAXPROCS workers.
func TestPropIncrementalMatchesCold(t *testing.T) {
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			proptest.Run(t, 306+uint64(w), 25, func(g *proptest.G) error {
				spec := g.ASHierarchy(5, 6)
				topo, _, mids, stubs, err := buildSpecTopology(spec)
				if err != nil {
					return fmt.Errorf("building topology: %w", err)
				}
				c := topo.ConvergeState(w)
				base := snapshotEntries(c.Tables())
				var stack []*Patch
				extra := 0
				steps := g.IntRange(3, 8)
				for s := 0; s < steps; s++ {
					// Occasionally pop instead of pushing, so sequences
					// interleave applies and reverts.
					if len(stack) > 0 && g.Bool(0.25) {
						c.Revert(stack[len(stack)-1])
						stack = stack[:len(stack)-1]
					} else {
						d, ok := randomDelta(g, c, mids, stubs, &extra)
						if !ok {
							continue
						}
						p, err := c.Apply(d)
						if err != nil {
							return fmt.Errorf("step %d: Apply(%+v): %w", s, d, err)
						}
						stack = append(stack, p)
					}
					if err := tablesEqualCold(c); err != nil {
						return fmt.Errorf("step %d: %w", s, err)
					}
				}
				for len(stack) > 0 {
					c.Revert(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
				}
				live := c.Tables()
				if len(live.entries) != len(base) {
					return fmt.Errorf("%d cells after unwind, want %d", len(live.entries), len(base))
				}
				for i := range base {
					if live.entries[i] != base[i] {
						return fmt.Errorf("cell %d differs after full unwind", i)
					}
				}
				return nil
			})
		})
	}
}

// TestPropApplyRevertRestoresTables drives a single random delta per case
// and checks exact (pointer-level) restoration, the cheapest high-yield
// slice of the oracle above.
func TestPropApplyRevertRestoresTables(t *testing.T) {
	proptest.Run(t, 309, 40, func(g *proptest.G) error {
		spec := g.ASHierarchy(5, 6)
		topo, _, mids, stubs, err := buildSpecTopology(spec)
		if err != nil {
			return fmt.Errorf("building topology: %w", err)
		}
		c := topo.ConvergeState(1)
		base := snapshotEntries(c.Tables())
		baseText := FormatTopology(topo)
		extra := 0
		d, ok := randomDelta(g, c, mids, stubs, &extra)
		if !ok {
			return nil
		}
		p, err := c.Apply(d)
		if err != nil {
			return fmt.Errorf("Apply(%+v): %w", d, err)
		}
		c.Revert(p)
		if got := FormatTopology(topo); got != baseText {
			return fmt.Errorf("revert of %+v did not restore the topology:\n%s", d, got)
		}
		live := c.Tables()
		if len(live.entries) != len(base) {
			return fmt.Errorf("%d cells after revert, want %d", len(live.entries), len(base))
		}
		for i := range base {
			if live.entries[i] != base[i] {
				return fmt.Errorf("delta %+v: cell %d not restored exactly", d, i)
			}
		}
		return nil
	})
}
