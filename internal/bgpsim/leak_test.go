package bgpsim

import (
	"testing"

	"repro/internal/rng"
)

// leakScenario builds the classic leak setup: providers P1 (10) and P2 (20)
// peer; L (30) is a customer of both; the victim prefix lives at V (40), a
// customer of P1; C (50) is another customer of P2.
func leakScenario(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, n := range []ASN{10, 20, 30, 40, 50} {
		if err := topo.AddAS(n, ASInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustLink(topo.AddPeer(10, 20))
	mustLink(topo.AddProviderCustomer(10, 30))
	mustLink(topo.AddProviderCustomer(20, 30))
	mustLink(topo.AddProviderCustomer(10, 40))
	mustLink(topo.AddProviderCustomer(20, 50))
	if err := topo.Originate(40, "victim"); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNoLeakBaseline(t *testing.T) {
	topo := leakScenario(t)
	rt := topo.Converge()
	// P2 reaches the victim via its peer P1, not via its customer L.
	if !pathEq(rt.Path(20, "victim"), 20, 10, 40) {
		t.Errorf("P2 path = %v, want via peer", rt.Path(20, "victim"))
	}
	affected, _ := BlastRadius(rt, 30, "victim")
	if len(affected) != 0 {
		t.Errorf("baseline blast radius = %v, want none", affected)
	}
}

func TestLeakPullsTrafficThroughLeaker(t *testing.T) {
	topo := leakScenario(t)
	if !topo.MarkLeaker(30) {
		t.Fatal("MarkLeaker failed")
	}
	if !topo.IsLeaker(30) {
		t.Fatal("IsLeaker false")
	}
	rt := topo.Converge()
	// P2 now hears the victim from its CUSTOMER L (leaked provider route)
	// and prefers it economically — the leak's whole mechanism.
	if !pathEq(rt.Path(20, "victim"), 20, 30, 10, 40) {
		t.Errorf("P2 path = %v, want sucked through the leaker", rt.Path(20, "victim"))
	}
	affected, reachable := BlastRadius(rt, 30, "victim")
	if len(affected) < 2 { // P2 and C at least
		t.Errorf("blast radius = %v (of %d reachable)", affected, reachable)
	}
	// C (customer of P2) is dragged along.
	found := false
	for _, n := range affected {
		if n == 50 {
			found = true
		}
	}
	if !found {
		t.Errorf("downstream customer not affected: %v", affected)
	}
}

func TestLeakPathsRemainLoopFree(t *testing.T) {
	topo := leakScenario(t)
	topo.MarkLeaker(30)
	rt := topo.Converge()
	for _, n := range topo.ASNs() {
		for _, p := range rt.Prefixes(n) {
			path := rt.Path(n, p)
			seen := make(map[ASN]bool)
			for _, hop := range path {
				if seen[hop] {
					t.Fatalf("loop in leaked path %v", path)
				}
				seen[hop] = true
			}
		}
	}
}

func TestClearLeakerRestoresBaseline(t *testing.T) {
	topo := leakScenario(t)
	topo.MarkLeaker(30)
	topo.ClearLeaker(30)
	rt := topo.Converge()
	if !pathEq(rt.Path(20, "victim"), 20, 10, 40) {
		t.Errorf("path after clearing = %v", rt.Path(20, "victim"))
	}
}

func TestMarkLeakerUnknown(t *testing.T) {
	topo := NewTopology()
	if topo.MarkLeaker(99) {
		t.Error("unknown AS markable")
	}
	if topo.IsLeaker(99) {
		t.Error("unknown AS is leaker")
	}
}

func TestLeakBlastGrowsWithLeakerConnectivity(t *testing.T) {
	// A leaker with more providers drags more of the world through itself.
	build := func(extraProviders int) int {
		topo := NewTopology()
		asn := func(i int) ASN { return ASN(i) }
		// Tier1 clique 1..3.
		for i := 1; i <= 3; i++ {
			_ = topo.AddAS(asn(i), ASInfo{})
		}
		_ = topo.AddPeer(1, 2)
		_ = topo.AddPeer(1, 3)
		_ = topo.AddPeer(2, 3)
		// Victim under tier1 1.
		_ = topo.AddAS(100, ASInfo{})
		_ = topo.AddProviderCustomer(1, 100)
		_ = topo.Originate(100, "v")
		// Leaker 200: customer of tier1 1 plus extraProviders more tier1s.
		_ = topo.AddAS(200, ASInfo{})
		_ = topo.AddProviderCustomer(1, 200)
		for i := 0; i < extraProviders; i++ {
			_ = topo.AddProviderCustomer(asn(2+i), 200)
		}
		// Stubs under tier1 2 and 3.
		for i := 0; i < 6; i++ {
			n := ASN(1000 + i)
			_ = topo.AddAS(n, ASInfo{})
			_ = topo.AddProviderCustomer(asn(2+i%2), n)
		}
		topo.MarkLeaker(200)
		rt := topo.Converge()
		affected, _ := BlastRadius(rt, 200, "v")
		return len(affected)
	}
	zero := build(0)
	two := build(2)
	if !(two > zero) {
		t.Errorf("blast radius should grow with leaker connectivity: %d vs %d", zero, two)
	}
}

func TestPropertyLeakedPathsLoopFreeAcrossTopologies(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		h, err := BuildHierarchy(r, 6, 12)
		if err != nil {
			t.Fatal(err)
		}
		// Random leaker among mids and stubs.
		candidates := append(append([]ASN{}, h.Mids...), h.Stubs...)
		leaker := candidates[r.Intn(len(candidates))]
		h.Topo.MarkLeaker(leaker)
		rt := h.Topo.Converge()
		for _, n := range h.Topo.ASNs() {
			for _, p := range rt.Prefixes(n) {
				path := rt.Path(n, p)
				seen := make(map[ASN]bool, len(path))
				for _, hop := range path {
					if seen[hop] {
						t.Fatalf("seed %d leaker %d: loop in %v", seed, leaker, path)
					}
					seen[hop] = true
				}
			}
		}
		// Reachability never shrinks under a leak (leaks add paths).
		h.Topo.ClearLeaker(leaker)
		base := h.Topo.Converge()
		for _, n := range h.Topo.ASNs() {
			for _, p := range base.Prefixes(n) {
				if !rt.Reachable(n, p) {
					t.Fatalf("seed %d: leak removed reachability of %s at %d", seed, p, n)
				}
			}
		}
	}
}
