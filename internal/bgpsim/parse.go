package bgpsim

// A line-oriented text format for topologies, so scenario files and fuzzers
// can describe an AS graph without Go code. The grammar is one directive per
// line, '#' starts a comment, blank lines are ignored:
//
//	as <asn> [name]          declare an AS (required before use)
//	p2c <provider> <customer>  provider-customer transit edge
//	peer <a> <b>             settlement-free peering edge
//	origin <asn> <prefix>    asn originates prefix
//	leaker <asn>             mark asn as violating export policy
//
// ParseScenario additionally accepts event lines after the base topology —
// the textual form of the incremental engine's deltas (see incremental.go):
//
//	withdraw <asn> <prefix>  asn stops originating prefix
//	announce <asn> <prefix>  asn originates prefix (a hijack when not its own)
//	link+ p2c <prov> <cust>  add a transit edge
//	link+ peer <a> <b>       add a peering edge
//	link- p2c <prov> <cust>  remove a transit edge
//	link- peer <a> <b>       remove a peering edge
//	leak <asn>               toggle asn's leaker flag
//
// Events are validated in sequence against a shadow copy of the base
// topology, and base directives after the first event line are rejected, so
// a parsed scenario always replays cleanly through Converged.Apply.
//
// Parsing is strict: unknown directives, malformed ASNs, references to
// undeclared ASes, inapplicable events, and oversized inputs are errors,
// never silent skips — a scenario file that drifts from the topology it
// claims to describe would otherwise corrupt an experiment quietly.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Parse limits. They bound the work a hostile (fuzzed) input can demand
// while staying far above any scenario the experiments use.
const (
	maxParseLine   = 1 << 10 // bytes per line
	maxParseASes   = 4096
	maxParseEvents = 4096
)

// ParseTopology reads the text format from r and returns the topology.
// Event lines are rejected; use ParseScenario for documents with events.
func ParseTopology(r io.Reader) (*Topology, error) {
	t, _, err := parseDoc(r, false)
	return t, err
}

// ParseTopologyString is ParseTopology over an in-memory document.
func ParseTopologyString(s string) (*Topology, error) {
	return ParseTopology(strings.NewReader(s))
}

// ParseScenario reads a base topology followed by event lines. The returned
// topology is the base (events NOT applied); the deltas replay in order
// through Converged.Apply or Topology mutators. Every event was validated
// against a shadow copy of the topology during parsing, so replaying the
// sequence on the base cannot fail.
func ParseScenario(r io.Reader) (*Topology, []Delta, error) {
	return parseDoc(r, true)
}

// ParseScenarioString is ParseScenario over an in-memory document.
func ParseScenarioString(s string) (*Topology, []Delta, error) {
	return ParseScenario(strings.NewReader(s))
}

// parseDoc is the shared line loop behind ParseTopology and ParseScenario.
// With allowEvents=false, event directives fall through to the unknown-
// directive error, keeping ParseTopology's strictness unchanged.
func parseDoc(r io.Reader, allowEvents bool) (*Topology, []Delta, error) {
	t := NewTopology()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxParseLine), maxParseLine)
	nAS := 0
	lineNo := 0
	var events []Delta
	// shadow is a clone of the base topology that events are test-applied
	// to as they parse; it exists from the first event line onward and
	// also marks that base directives are no longer allowed.
	var shadow *Topology
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		directive, args := fields[0], fields[1:]
		var err error
		switch directive {
		case "as":
			if shadow != nil {
				err = errBaseAfterEvent(directive)
				break
			}
			if len(args) < 1 || len(args) > 2 {
				err = fmt.Errorf("want `as <asn> [name]`, got %d args", len(args))
				break
			}
			if nAS >= maxParseASes {
				err = fmt.Errorf("more than %d ASes", maxParseASes)
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			info := ASInfo{}
			if len(args) == 2 {
				info.Name = args[1]
			}
			if err = t.AddAS(n, info); err == nil {
				nAS++
			}
		case "p2c", "peer":
			if shadow != nil {
				err = errBaseAfterEvent(directive)
				break
			}
			var a, b ASN
			if a, b, err = parseASNPair(args); err != nil {
				break
			}
			if directive == "p2c" {
				err = t.AddProviderCustomer(a, b)
			} else {
				err = t.AddPeer(a, b)
			}
		case "origin":
			if shadow != nil {
				err = errBaseAfterEvent(directive)
				break
			}
			if len(args) != 2 {
				err = fmt.Errorf("want `origin <asn> <prefix>`, got %d args", len(args))
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			err = t.Originate(n, args[1])
		case "leaker":
			if shadow != nil {
				err = errBaseAfterEvent(directive)
				break
			}
			if len(args) != 1 {
				err = fmt.Errorf("want `leaker <asn>`, got %d args", len(args))
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			if !t.MarkLeaker(n) {
				err = fmt.Errorf("unknown AS %d", n)
			}
		case "withdraw", "announce", "link+", "link-", "leak":
			if !allowEvents {
				err = fmt.Errorf("unknown directive %q", directive)
				break
			}
			if len(events) >= maxParseEvents {
				err = fmt.Errorf("more than %d events", maxParseEvents)
				break
			}
			var d Delta
			if d, err = parseDelta(directive, args); err != nil {
				break
			}
			if shadow == nil {
				shadow = t.Clone()
			}
			if err = shadow.applyDelta(d); err != nil {
				break
			}
			events = append(events, d)
		default:
			err = fmt.Errorf("unknown directive %q", directive)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("bgpsim: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("bgpsim: reading topology: %w", err)
	}
	return t, events, nil
}

func errBaseAfterEvent(directive string) error {
	return fmt.Errorf("base directive %q after first event line", directive)
}

// parseDelta parses one event line into a Delta. The directive keywords are
// exactly DeltaKind.String() values, so FormatScenario round-trips.
func parseDelta(directive string, args []string) (Delta, error) {
	var d Delta
	switch directive {
	case "withdraw", "announce":
		if len(args) != 2 {
			return d, fmt.Errorf("want `%s <asn> <prefix>`, got %d args", directive, len(args))
		}
		n, err := parseASN(args[0])
		if err != nil {
			return d, err
		}
		d.Kind = DeltaWithdraw
		if directive == "announce" {
			d.Kind = DeltaAnnounce
		}
		d.A, d.Prefix = n, args[1]
	case "link+", "link-":
		if len(args) != 3 || (args[0] != "p2c" && args[0] != "peer") {
			return d, fmt.Errorf("want `%s p2c|peer <a> <b>`, got %q", directive, strings.Join(args, " "))
		}
		a, b, err := parseASNPair(args[1:])
		if err != nil {
			return d, err
		}
		d.Kind = DeltaLinkUp
		if directive == "link-" {
			d.Kind = DeltaLinkDown
		}
		d.A, d.B, d.Peer = a, b, args[0] == "peer"
	case "leak":
		if len(args) != 1 {
			return d, fmt.Errorf("want `leak <asn>`, got %d args", len(args))
		}
		n, err := parseASN(args[0])
		if err != nil {
			return d, err
		}
		d.Kind = DeltaLeakToggle
		d.A = n
	default:
		return d, fmt.Errorf("unknown event directive %q", directive)
	}
	return d, nil
}

// FormatTopology renders t back into the text format, in deterministic
// order (ascending ASNs, providers/peers/origins sorted). ParseTopology ∘
// FormatTopology is the identity on topology structure.
func FormatTopology(t *Topology) string {
	var b strings.Builder
	asns := t.ASNs()
	for _, n := range asns {
		info, _ := t.Info(n)
		if info.Name != "" && len(strings.Fields(info.Name)) == 1 {
			fmt.Fprintf(&b, "as %d %s\n", n, info.Name)
		} else {
			fmt.Fprintf(&b, "as %d\n", n)
		}
	}
	// Emit each edge once: p2c from the provider side, peer from the lower
	// ASN side.
	for _, n := range asns {
		neighbors := t.Neighbors(n)
		for _, nb := range sortedNeighborASNs(neighbors) {
			switch neighbors[nb] {
			case FromCustomer:
				fmt.Fprintf(&b, "p2c %d %d\n", n, nb)
			case FromPeer:
				if n < nb {
					fmt.Fprintf(&b, "peer %d %d\n", n, nb)
				}
			}
		}
	}
	for _, n := range asns {
		for _, pfx := range t.Origins(n) {
			fmt.Fprintf(&b, "origin %d %s\n", n, pfx)
		}
	}
	for _, n := range asns {
		if t.IsLeaker(n) {
			fmt.Fprintf(&b, "leaker %d\n", n)
		}
	}
	return b.String()
}

// FormatScenario renders a base topology plus an ordered event sequence.
// ParseScenario ∘ FormatScenario is the identity on (topology, events)
// whenever the events actually apply to the base in order.
func FormatScenario(t *Topology, events []Delta) string {
	var b strings.Builder
	b.WriteString(FormatTopology(t))
	for _, d := range events {
		b.WriteString(formatDelta(d))
		b.WriteByte('\n')
	}
	return b.String()
}

// formatDelta renders one event line; inverse of parseDelta.
func formatDelta(d Delta) string {
	switch d.Kind {
	case DeltaWithdraw, DeltaAnnounce:
		return fmt.Sprintf("%s %d %s", d.Kind, d.A, d.Prefix)
	case DeltaLinkUp, DeltaLinkDown:
		mode := "p2c"
		if d.Peer {
			mode = "peer"
		}
		return fmt.Sprintf("%s %s %d %d", d.Kind, mode, d.A, d.B)
	case DeltaLeakToggle:
		return fmt.Sprintf("%s %d", d.Kind, d.A)
	}
	return fmt.Sprintf("# bad delta kind %d", int(d.Kind))
}

// sortedNeighborASNs is the collect-keys-then-sort idiom over a neighbor map.
func sortedNeighborASNs(neighbors map[ASN]Relationship) []ASN {
	out := make([]ASN, 0, len(neighbors))
	for nb := range neighbors {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func parseASN(s string) (ASN, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad ASN %q", s)
	}
	return ASN(v), nil
}

func parseASNPair(args []string) (ASN, ASN, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want two ASNs, got %d args", len(args))
	}
	a, err := parseASN(args[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := parseASN(args[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
