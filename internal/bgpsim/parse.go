package bgpsim

// A line-oriented text format for topologies, so scenario files and fuzzers
// can describe an AS graph without Go code. The grammar is one directive per
// line, '#' starts a comment, blank lines are ignored:
//
//	as <asn> [name]          declare an AS (required before use)
//	p2c <provider> <customer>  provider-customer transit edge
//	peer <a> <b>             settlement-free peering edge
//	origin <asn> <prefix>    asn originates prefix
//	leaker <asn>             mark asn as violating export policy
//
// Parsing is strict: unknown directives, malformed ASNs, references to
// undeclared ASes, and oversized inputs are errors, never silent skips —
// a scenario file that drifts from the topology it claims to describe
// would otherwise corrupt an experiment quietly.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Parse limits. They bound the work a hostile (fuzzed) input can demand
// while staying far above any scenario the experiments use.
const (
	maxParseLine = 1 << 10 // bytes per line
	maxParseASes = 4096
)

// ParseTopology reads the text format from r and returns the topology.
func ParseTopology(r io.Reader) (*Topology, error) {
	t := NewTopology()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxParseLine), maxParseLine)
	nAS := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		directive, args := fields[0], fields[1:]
		var err error
		switch directive {
		case "as":
			if len(args) < 1 || len(args) > 2 {
				err = fmt.Errorf("want `as <asn> [name]`, got %d args", len(args))
				break
			}
			if nAS >= maxParseASes {
				err = fmt.Errorf("more than %d ASes", maxParseASes)
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			info := ASInfo{}
			if len(args) == 2 {
				info.Name = args[1]
			}
			if err = t.AddAS(n, info); err == nil {
				nAS++
			}
		case "p2c", "peer":
			var a, b ASN
			if a, b, err = parseASNPair(args); err != nil {
				break
			}
			if directive == "p2c" {
				err = t.AddProviderCustomer(a, b)
			} else {
				err = t.AddPeer(a, b)
			}
		case "origin":
			if len(args) != 2 {
				err = fmt.Errorf("want `origin <asn> <prefix>`, got %d args", len(args))
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			err = t.Originate(n, args[1])
		case "leaker":
			if len(args) != 1 {
				err = fmt.Errorf("want `leaker <asn>`, got %d args", len(args))
				break
			}
			var n ASN
			if n, err = parseASN(args[0]); err != nil {
				break
			}
			if !t.MarkLeaker(n) {
				err = fmt.Errorf("unknown AS %d", n)
			}
		default:
			err = fmt.Errorf("unknown directive %q", directive)
		}
		if err != nil {
			return nil, fmt.Errorf("bgpsim: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgpsim: reading topology: %w", err)
	}
	return t, nil
}

// ParseTopologyString is ParseTopology over an in-memory document.
func ParseTopologyString(s string) (*Topology, error) {
	return ParseTopology(strings.NewReader(s))
}

// FormatTopology renders t back into the text format, in deterministic
// order (ascending ASNs, providers/peers/origins sorted). ParseTopology ∘
// FormatTopology is the identity on topology structure.
func FormatTopology(t *Topology) string {
	var b strings.Builder
	asns := t.ASNs()
	for _, n := range asns {
		info, _ := t.Info(n)
		if info.Name != "" && len(strings.Fields(info.Name)) == 1 {
			fmt.Fprintf(&b, "as %d %s\n", n, info.Name)
		} else {
			fmt.Fprintf(&b, "as %d\n", n)
		}
	}
	// Emit each edge once: p2c from the provider side, peer from the lower
	// ASN side.
	for _, n := range asns {
		neighbors := t.Neighbors(n)
		for _, nb := range sortedNeighborASNs(neighbors) {
			switch neighbors[nb] {
			case FromCustomer:
				fmt.Fprintf(&b, "p2c %d %d\n", n, nb)
			case FromPeer:
				if n < nb {
					fmt.Fprintf(&b, "peer %d %d\n", n, nb)
				}
			}
		}
	}
	for _, n := range asns {
		for _, pfx := range t.Origins(n) {
			fmt.Fprintf(&b, "origin %d %s\n", n, pfx)
		}
	}
	for _, n := range asns {
		if t.IsLeaker(n) {
			fmt.Fprintf(&b, "leaker %d\n", n)
		}
	}
	return b.String()
}

// sortedNeighborASNs is the collect-keys-then-sort idiom over a neighbor map.
func sortedNeighborASNs(neighbors map[ASN]Relationship) []ASN {
	out := make([]ASN, 0, len(neighbors))
	for nb := range neighbors {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func parseASN(s string) (ASN, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad ASN %q", s)
	}
	return ASN(v), nil
}

func parseASNPair(args []string) (ASN, ASN, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("want two ASNs, got %d args", len(args))
	}
	a, err := parseASN(args[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := parseASN(args[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
