package bgpsim

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func TestBuildHierarchyStructure(t *testing.T) {
	h, err := BuildHierarchy(rng.New(3), 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tier1) != 3 || len(h.Mids) != 8 || len(h.Stubs) != 20 {
		t.Fatalf("sizes = %d/%d/%d", len(h.Tier1), len(h.Mids), len(h.Stubs))
	}
	// Every stub's prefix is globally reachable.
	rt := h.Topo.Converge()
	for _, s := range h.Stubs {
		prefix := fmt.Sprintf("pfx-%d", s)
		for _, n := range h.Topo.ASNs() {
			if !rt.Reachable(n, prefix) {
				t.Errorf("AS %d cannot reach %s", n, prefix)
			}
		}
	}
}

func TestRunLeakSweepShapes(t *testing.T) {
	rows, err := RunLeakSweep(8, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 1 stub + 8 mids
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].LeakerKind != "stub" {
		t.Fatal("first row should be the stub leaker")
	}
	var stubBlast float64
	var midSum float64
	var midN int
	for _, r := range rows {
		if r.AffectedShare < 0 || r.AffectedShare > 1 {
			t.Errorf("share %g out of range", r.AffectedShare)
		}
		if r.LeakerKind == "stub" {
			stubBlast = float64(r.Affected)
		} else {
			midSum += float64(r.Affected)
			midN++
		}
	}
	midMean := midSum / float64(midN)
	// Mid-tier leakers, being better connected, drag more of the network
	// through themselves than a stub leaker on average.
	if !(midMean > stubBlast) {
		t.Errorf("mid mean blast %g should exceed stub %g", midMean, stubBlast)
	}
}

func TestRunLeakSweepDeterministic(t *testing.T) {
	a, err := RunLeakSweep(6, 15, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLeakSweep(6, 15, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func BenchmarkRunLeakSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunLeakSweep(8, 20, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWithdrawOrigin(t *testing.T) {
	topo := NewTopology()
	_ = topo.AddAS(1, ASInfo{})
	_ = topo.Originate(1, "a")
	_ = topo.Originate(1, "b")
	topo.WithdrawOrigin(1, "a")
	got := topo.Origins(1)
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("origins = %v", got)
	}
	topo.WithdrawOrigin(1, "missing") // no-op
	topo.WithdrawOrigin(99, "a")      // unknown AS no-op
	if len(topo.Origins(1)) != 1 {
		t.Error("no-op withdraw changed origins")
	}
}

func TestRunHijackSweepShapes(t *testing.T) {
	rows, err := RunHijackSweep(8, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var stubShare float64
	var midSum float64
	var midN int
	for _, r := range rows {
		if r.CapturedShare < 0 || r.CapturedShare > 1 {
			t.Errorf("share %g out of range", r.CapturedShare)
		}
		if r.AttackerKind == "stub" {
			stubShare = r.CapturedShare
		} else {
			midSum += r.CapturedShare
			midN++
		}
	}
	// Every attacker captures at least its own corner of the network (its
	// providers prefer the customer route), and mids capture more than a
	// stub on average.
	if !(midSum/float64(midN) > stubShare) {
		t.Errorf("mid mean capture %g should exceed stub %g", midSum/float64(midN), stubShare)
	}
	for _, r := range rows {
		if r.Captured == 0 {
			t.Errorf("attacker %d captured nothing — its own providers should prefer it", r.AttackerASN)
		}
	}
}

func TestHijackSweepRestoresTopology(t *testing.T) {
	// After the sweep, converging again must route everything to the true
	// victim (all attacker originations withdrawn).
	rows, err := RunHijackSweep(6, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	// Rebuild the same hierarchy and confirm single-origin state matches a
	// fresh run (the sweep mutated a topology we no longer hold, so just
	// re-running deterministically is the check).
	again, err := RunHijackSweep(6, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("sweep not deterministic/state-leaking at row %d", i)
		}
	}
}
