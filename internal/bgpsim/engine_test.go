package bgpsim

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/rng"
)

// equivalenceWorkers are the worker counts every engine equivalence test
// pins against the reference implementation. 0 means GOMAXPROCS inside
// ConvergeWorkers; the explicit GOMAXPROCS entry keeps the intent visible
// even if the normalization changes.
func equivalenceWorkers() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// topoPrefixes returns the sorted universe of prefixes originated anywhere
// in the topology.
func topoPrefixes(t *Topology) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range t.ASNs() {
		for _, p := range t.Origins(n) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// assertEngineMatchesReference converges topo with the compiled engine at
// several worker counts and requires the result to be bitwise-identical to
// the reference loop: same reachability, same learned relationship, same
// path, for every AS and every prefix, plus identical per-AS prefix lists.
func assertEngineMatchesReference(t *testing.T, label string, topo *Topology) {
	t.Helper()
	ref := topo.convergeReference()
	prefixes := topoPrefixes(topo)
	for _, w := range equivalenceWorkers() {
		rt := topo.ConvergeWorkers(w)
		for _, n := range topo.ASNs() {
			refTbl := ref[n]
			var wantPrefixes []string
			for _, p := range prefixes {
				want := refTbl[p]
				got := rt.Route(n, p)
				if (want == nil) != (got == nil) {
					t.Fatalf("%s workers=%d: AS %d prefix %s: reference route %v, engine route %v", label, w, n, p, want, got)
				}
				if rt.Reachable(n, p) != (want != nil) {
					t.Fatalf("%s workers=%d: AS %d prefix %s: Reachable disagrees with reference", label, w, n, p)
				}
				if want == nil {
					if rt.Path(n, p) != nil {
						t.Fatalf("%s workers=%d: AS %d prefix %s: Path non-nil for unreachable", label, w, n, p)
					}
					continue
				}
				wantPrefixes = append(wantPrefixes, p)
				if got.Learned != want.Learned {
					t.Fatalf("%s workers=%d: AS %d prefix %s: learned %v, want %v", label, w, n, p, got.Learned, want.Learned)
				}
				if got.Prefix != p {
					t.Fatalf("%s workers=%d: AS %d prefix %s: route prefix %q", label, w, n, p, got.Prefix)
				}
				if !pathEq(got.Path, want.Path...) {
					t.Fatalf("%s workers=%d: AS %d prefix %s: path %v, want %v", label, w, n, p, got.Path, want.Path)
				}
				if !pathEq(rt.Path(n, p), want.Path...) {
					t.Fatalf("%s workers=%d: AS %d prefix %s: Path() %v, want %v", label, w, n, p, rt.Path(n, p), want.Path)
				}
			}
			gotPrefixes := rt.Prefixes(n)
			if len(gotPrefixes) != len(wantPrefixes) {
				t.Fatalf("%s workers=%d: AS %d: prefixes %v, want %v", label, w, n, gotPrefixes, wantPrefixes)
			}
			for i := range gotPrefixes {
				if gotPrefixes[i] != wantPrefixes[i] {
					t.Fatalf("%s workers=%d: AS %d: prefixes %v, want %v", label, w, n, gotPrefixes, wantPrefixes)
				}
			}
		}
	}
}

func TestEngineMatchesReferenceOnHierarchies(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.New(seed)
		h, err := BuildHierarchy(r, 6, 12)
		if err != nil {
			t.Fatal(err)
		}
		// Routes learned downhill too: originate from a tier-1 and a mid.
		_ = h.Topo.Originate(h.Tier1[0], "pfx-tier1")
		_ = h.Topo.Originate(h.Mids[len(h.Mids)/2], "pfx-mid")
		assertEngineMatchesReference(t, fmt.Sprintf("hierarchy-%d", seed), h.Topo)
	}
}

// circumventionTopology hand-builds the E1 interconnection scene at the
// bgpsim layer (the ixp package cannot be imported from here): an
// international transit AS, the incumbent, its empty shell ASNs, and
// competitor ISPs meshed at a domestic IXP via peering sessions.
func circumventionTopology(t *testing.T, shells int) *Topology {
	t.Helper()
	topo := NewTopology()
	mustAS(t, topo, 1, ASInfo{Name: "IntlTransit", Country: "US"})
	mustAS(t, topo, 100, ASInfo{Name: "Incumbent", Country: "MX", Org: "incumbent"})
	mustPC(t, topo, 1, 100)
	if err := topo.Originate(100, "pfx-incumbent"); err != nil {
		t.Fatal(err)
	}
	var members []ASN
	for i := 0; i < 6; i++ {
		n := ASN(1000 + i)
		mustAS(t, topo, n, ASInfo{Name: fmt.Sprintf("Comp%d", i), Country: "MX"})
		mustPC(t, topo, 1, n)
		if err := topo.Originate(n, fmt.Sprintf("pfx-comp%d", i)); err != nil {
			t.Fatal(err)
		}
		members = append(members, n)
	}
	for s := 0; s < shells; s++ {
		n := ASN(200 + s)
		mustAS(t, topo, n, ASInfo{Name: fmt.Sprintf("Shell%d", s), Org: "incumbent"})
		mustPC(t, topo, 100, n)
		if err := topo.Originate(n, fmt.Sprintf("pfx-shell%d", s)); err != nil {
			t.Fatal(err)
		}
		members = append(members, n)
	}
	// The IXP session mesh: every member pair peers.
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			mustPeer(t, topo, members[i], members[j])
		}
	}
	return topo
}

func TestEngineMatchesReferenceOnCircumvention(t *testing.T) {
	for _, shells := range []int{0, 1, 3} {
		assertEngineMatchesReference(t, fmt.Sprintf("circumvention-%d", shells), circumventionTopology(t, shells))
	}
}

func TestEngineMatchesReferenceOnLeaks(t *testing.T) {
	topo := leakScenario(t)
	topo.MarkLeaker(30)
	assertEngineMatchesReference(t, "leak-scenario", topo)

	for seed := uint64(1); seed <= 4; seed++ {
		r := rng.New(seed)
		h, err := BuildHierarchy(r, 6, 12)
		if err != nil {
			t.Fatal(err)
		}
		leaker := h.Mids[int(seed)%len(h.Mids)]
		h.Topo.MarkLeaker(leaker)
		assertEngineMatchesReference(t, fmt.Sprintf("leak-hierarchy-%d", seed), h.Topo)
	}
}

func TestEngineMatchesReferenceOnHijack(t *testing.T) {
	r := rng.New(11)
	h, err := BuildHierarchy(r, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	victim, attacker := h.Stubs[0], h.Stubs[len(h.Stubs)-1]
	if err := h.Topo.Originate(attacker, fmt.Sprintf("pfx-%d", victim)); err != nil {
		t.Fatal(err)
	}
	assertEngineMatchesReference(t, "hijack", h.Topo)
}

func TestEngineMatchesReferenceOnDegenerateTopologies(t *testing.T) {
	empty := NewTopology()
	assertEngineMatchesReference(t, "empty", empty)

	single := NewTopology()
	mustAS(t, single, 7, ASInfo{})
	if err := single.Originate(7, "p"); err != nil {
		t.Fatal(err)
	}
	// Duplicate origination of the same prefix must be harmless.
	if err := single.Originate(7, "p"); err != nil {
		t.Fatal(err)
	}
	assertEngineMatchesReference(t, "single", single)

	isolated := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, isolated, n, ASInfo{})
	}
	_ = isolated.Originate(3, "far")
	assertEngineMatchesReference(t, "isolated", isolated)

	// A provider cycle violates Gao–Rexford acyclicity; both engines must
	// stop at the same round cap with the same tables.
	cycle := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, cycle, n, ASInfo{})
	}
	mustPC(t, cycle, 1, 2)
	mustPC(t, cycle, 2, 3)
	mustPC(t, cycle, 3, 1)
	_ = cycle.Originate(1, "p")
	assertEngineMatchesReference(t, "provider-cycle", cycle)

	// Equal-length MOAS tie decided by the lexicographic path tiebreak.
	moas := NewTopology()
	for _, n := range []ASN{1, 5, 6} {
		mustAS(t, moas, n, ASInfo{})
	}
	mustPC(t, moas, 1, 5)
	mustPC(t, moas, 1, 6)
	_ = moas.Originate(5, "any")
	_ = moas.Originate(6, "any")
	assertEngineMatchesReference(t, "moas-tie", moas)
}

func TestConvergeWorkersDeterministicAcrossRuns(t *testing.T) {
	build := func() *Topology {
		h, err := BuildHierarchy(rng.New(21), 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		return h.Topo
	}
	topo := build()
	a := topo.ConvergeWorkers(4)
	b := topo.ConvergeWorkers(4)
	c := topo.ConvergeWorkers(1)
	for _, n := range topo.ASNs() {
		for _, p := range a.Prefixes(n) {
			pa, pb, pc := a.Path(n, p), b.Path(n, p), c.Path(n, p)
			if !pathEq(pa, pb...) || !pathEq(pa, pc...) {
				t.Fatalf("nondeterministic path at %d for %s: %v / %v / %v", n, p, pa, pb, pc)
			}
		}
	}
}

// TestConvergeWorkersParallelHierarchy exercises the parallel per-prefix
// fan-out on a larger topology; under -race this is the engine's data-race
// regression test.
func TestConvergeWorkersParallelHierarchy(t *testing.T) {
	h, err := BuildHierarchy(rng.New(33), 12, 40)
	if err != nil {
		t.Fatal(err)
	}
	rt := h.Topo.ConvergeWorkers(8)
	for _, s := range h.Stubs {
		prefix := fmt.Sprintf("pfx-%d", s)
		for _, n := range h.Topo.ASNs() {
			if !rt.Reachable(n, prefix) {
				t.Fatalf("AS %d cannot reach %s", n, prefix)
			}
		}
	}
}

func TestRouteReturnsCopy(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	if err := topo.Originate(2, "p"); err != nil {
		t.Fatal(err)
	}
	rt := topo.Converge()
	r := rt.Route(1, "p")
	if r == nil || !pathEq(r.Path, 1, 2) {
		t.Fatalf("route = %+v", r)
	}
	// Mutating the returned route must not corrupt the engine tables.
	r.Path[0] = 999
	r.Learned = FromPeer
	r.Prefix = "mutated"
	if got := rt.Route(1, "p"); !pathEq(got.Path, 1, 2) || got.Learned != FromCustomer {
		t.Errorf("table mutated through returned route: %+v", got)
	}
	if !pathEq(rt.Path(1, "p"), 1, 2) {
		t.Errorf("Path mutated through returned route: %v", rt.Path(1, "p"))
	}
	// Path must also hand out fresh slices every call.
	p1 := rt.Path(1, "p")
	p1[0] = 777
	if !pathEq(rt.Path(1, "p"), 1, 2) {
		t.Error("Path aliases internal state")
	}
}

func TestValleyFreeEdgeCases(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3, 4, 5} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)   // 1 provider of 2
	mustPC(t, topo, 3, 2)   // 3 provider of 2 (second provider)
	mustPeer(t, topo, 2, 4) // 2 peers 4
	mustPeer(t, topo, 1, 5) // 1 peers 5

	// Peer edge after the downhill segment has started: 1→2 is down
	// (provider to customer), then 2→4 is lateral — a valley.
	if topo.ValleyFree([]ASN{1, 2, 4}) {
		t.Error("peer edge after downhill accepted")
	}
	// Uphill after downhill: 1→2 down, then 2→3 back up — a valley.
	if topo.ValleyFree([]ASN{1, 2, 3}) {
		t.Error("uphill after downhill accepted")
	}
	// Uphill after a peer edge: 4→2 lateral, then 2→1 up — the peer edge
	// must be the apex, so this is rejected.
	if topo.ValleyFree([]ASN{4, 2, 1, 5}) {
		t.Error("uphill after peer edge accepted")
	}
	// Non-adjacent hops.
	if topo.ValleyFree([]ASN{1, 4}) {
		t.Error("non-adjacent hops accepted")
	}
	// Unknown AS on the path.
	if topo.ValleyFree([]ASN{99, 1}) {
		t.Error("unknown AS accepted")
	}
	// Single-node and empty paths are trivially valley-free.
	if !topo.ValleyFree([]ASN{3}) || !topo.ValleyFree(nil) {
		t.Error("trivial paths rejected")
	}
	// Up then peer then down — the canonical valid shape — still accepted.
	mustPC(t, topo, 5, 4)
	if !topo.ValleyFree([]ASN{2, 1, 5, 4}) {
		t.Error("up-peer-down rejected")
	}
}

func TestWithdrawOriginReconverges(t *testing.T) {
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		mustAS(t, topo, n, ASInfo{})
	}
	mustPC(t, topo, 1, 2)
	mustPC(t, topo, 1, 3)
	_ = topo.Originate(2, "p")
	_ = topo.Originate(3, "p") // MOAS
	rt := topo.Converge()
	if !pathEq(rt.Path(1, "p"), 1, 2) {
		t.Fatalf("pre-withdraw path = %v", rt.Path(1, "p"))
	}
	// Withdraw the preferred origin: routes must shift to the survivor.
	topo.WithdrawOrigin(2, "p")
	rt = topo.Converge()
	if !pathEq(rt.Path(1, "p"), 1, 3) {
		t.Errorf("post-withdraw path = %v, want via 3", rt.Path(1, "p"))
	}
	if rt.Reachable(2, "p") != true { // 2 still reaches it via provider 1
		t.Error("2 lost reachability via provider")
	}
	// Withdraw the last origin: the prefix disappears everywhere.
	topo.WithdrawOrigin(3, "p")
	rt = topo.Converge()
	for _, n := range topo.ASNs() {
		if rt.Reachable(n, "p") {
			t.Errorf("AS %d still reaches withdrawn prefix", n)
		}
	}
	assertEngineMatchesReference(t, "post-withdraw", topo)
}

func TestLeakerFlagReconverges(t *testing.T) {
	build := func() *Topology { return leakScenario(t) }
	clean := build().Converge()

	topo := build()
	topo.MarkLeaker(30)
	leaked := topo.Converge()
	if pathEq(leaked.Path(20, "victim"), clean.Path(20, "victim")...) {
		t.Fatal("leak did not change routing")
	}
	// Clearing the flag and reconverging must restore the exact baseline.
	topo.ClearLeaker(30)
	restored := topo.Converge()
	for _, n := range topo.ASNs() {
		for _, p := range clean.Prefixes(n) {
			if !pathEq(restored.Path(n, p), clean.Path(n, p)...) {
				t.Errorf("AS %d prefix %s: %v after clear, want %v", n, p, restored.Path(n, p), clean.Path(n, p))
			}
		}
	}
	// Mark → clear → mark again behaves like a fresh leak.
	topo.MarkLeaker(30)
	again := topo.Converge()
	for _, n := range topo.ASNs() {
		for _, p := range leaked.Prefixes(n) {
			if !pathEq(again.Path(n, p), leaked.Path(n, p)...) {
				t.Errorf("AS %d prefix %s: re-marked leak diverged", n, p)
			}
		}
	}
	assertEngineMatchesReference(t, "re-marked-leak", topo)
}
