package bgpsim

import (
	"math"
	"testing"
)

// chain builds 1 → 2 → 3 (providers above customers).
func chain(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		if err := topo.AddAS(n, ASInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddProviderCustomer(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddProviderCustomer(2, 3); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCustomerConeChain(t *testing.T) {
	topo := chain(t)
	cone := topo.CustomerCone(1)
	if len(cone) != 3 || cone[0] != 1 || cone[2] != 3 {
		t.Errorf("cone(1) = %v", cone)
	}
	if got := topo.CustomerCone(3); len(got) != 1 || got[0] != 3 {
		t.Errorf("stub cone = %v", got)
	}
	if topo.CustomerCone(99) != nil {
		t.Error("unknown AS should have nil cone")
	}
}

func TestConeIgnoresPeersAndProviders(t *testing.T) {
	topo := chain(t)
	_ = topo.AddAS(10, ASInfo{})
	_ = topo.AddPeer(1, 10)
	cone := topo.CustomerCone(1)
	for _, n := range cone {
		if n == 10 {
			t.Error("peer leaked into customer cone")
		}
	}
	// The customer's cone must not include its provider.
	for _, n := range topo.CustomerCone(2) {
		if n == 1 {
			t.Error("provider leaked into customer cone")
		}
	}
}

func TestConeSizes(t *testing.T) {
	topo := chain(t)
	sizes := topo.ConeSizes()
	if sizes[1] != 3 || sizes[2] != 2 || sizes[3] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestConeHandlesMultihoming(t *testing.T) {
	// 3 is a customer of both 1 and 2; cone counts it once.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3} {
		_ = topo.AddAS(n, ASInfo{})
	}
	_ = topo.AddProviderCustomer(1, 3)
	_ = topo.AddProviderCustomer(2, 3)
	_ = topo.AddProviderCustomer(1, 2)
	cone := topo.CustomerCone(1)
	if len(cone) != 3 {
		t.Errorf("cone = %v, want all three once", cone)
	}
}

func TestTransitDominance(t *testing.T) {
	// Tier1 (1) over two mids (2, 3); stubs 4,5 under 2 and 6 under 3.
	topo := NewTopology()
	for _, n := range []ASN{1, 2, 3, 4, 5, 6} {
		_ = topo.AddAS(n, ASInfo{})
	}
	_ = topo.AddProviderCustomer(1, 2)
	_ = topo.AddProviderCustomer(1, 3)
	_ = topo.AddProviderCustomer(2, 4)
	_ = topo.AddProviderCustomer(2, 5)
	_ = topo.AddProviderCustomer(3, 6)
	if d := topo.TransitDominance(1); math.Abs(d-1) > 1e-9 {
		t.Errorf("tier1 dominance = %g, want 1", d)
	}
	if d := topo.TransitDominance(2); math.Abs(d-2.0/3) > 1e-9 {
		t.Errorf("mid dominance = %g, want 2/3", d)
	}
	if d := topo.TransitDominance(6); math.Abs(d-1.0/3) > 1e-9 {
		// A stub's cone is itself; it is 1 of 3 stubs.
		t.Errorf("stub dominance = %g, want 1/3", d)
	}
}
