// Package bgpsim implements an AS-level BGP simulator with Gao–Rexford
// routing policies: customer/provider and peer business relationships,
// valley-free route export, and standard best-path selection (local
// preference by relationship, then AS-path length, then lowest neighbor ASN).
//
// The simulator exists to reproduce the interconnection case studies in the
// paper's ethnography section: an incumbent circumventing mandatory-peering
// regulation by shuffling prefixes across ASNs (Telmex in Mexico), and the
// gravity of giant IXPs over Global-South traffic (DE-CIX vs Brazilian IXPs).
// Both reduce to questions about which AS-level paths exist once peering
// edges are added or withheld, which is exactly what a Gao–Rexford fixpoint
// computes.
//
// Usage:
//
//	t := bgpsim.NewTopology()
//	t.AddAS(1, bgpsim.ASInfo{Name: "Transit", Country: "US"})
//	t.AddAS(64500, bgpsim.ASInfo{Name: "Eyeball", Country: "MX"})
//	t.AddProviderCustomer(1, 64500)
//	t.Originate(64500, "10.0.0.0/8")
//	rt := t.Converge()
//	path := rt.Path(1, "10.0.0.0/8") // [1 64500]
package bgpsim

import (
	"errors"
	"fmt"
	"sort"
)

// ASN identifies an autonomous system.
type ASN int

// Relationship classifies how a route was learned, which determines both
// local preference and export policy under Gao–Rexford. The underlying type
// is a byte so the engine's dense table cells stay 16 bytes (see entry in
// engine.go); the constant values and ordering are part of the public API.
type Relationship uint8

// Relationship values, ordered by local preference (higher is preferred).
const (
	FromProvider Relationship = iota // learned from a provider (pref 0)
	FromPeer                         // learned from a settlement-free peer (pref 1)
	FromCustomer                     // learned from a paying customer (pref 2)
	Origin                           // originated locally (pref 3)
)

// String returns a human-readable relationship name.
func (r Relationship) String() string {
	switch r {
	case FromProvider:
		return "provider"
	case FromPeer:
		return "peer"
	case FromCustomer:
		return "customer"
	case Origin:
		return "origin"
	default:
		return fmt.Sprintf("Relationship(%d)", int(r))
	}
}

// ASInfo carries the non-routing attributes of an AS that the experiments
// aggregate over: display name, ISO country, and the owning organization
// (several ASNs can belong to one org — the circumvention studies depend on
// exactly this).
type ASInfo struct {
	Name    string
	Country string
	Org     string
}

// as is the internal per-AS state.
type as struct {
	info      ASInfo
	providers map[ASN]bool
	customers map[ASN]bool
	peers     map[ASN]bool
	origins   []string
	// leaker marks an AS that re-exports everything to everyone (a route
	// leak); see leak.go.
	leaker bool
}

// Topology is a mutable AS-level interconnection graph. Add ASes and links,
// originate prefixes, then call Converge to compute routing tables. The zero
// value is not usable; call NewTopology.
type Topology struct {
	ases map[ASN]*as
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{ases: make(map[ASN]*as)}
}

// Errors returned by topology mutation.
var (
	ErrUnknownAS   = errors.New("bgpsim: unknown AS")
	ErrDuplicateAS = errors.New("bgpsim: duplicate AS")
	ErrSelfLink    = errors.New("bgpsim: link endpoints must differ")
)

// AddAS registers an AS. It fails if the ASN is already present.
func (t *Topology) AddAS(n ASN, info ASInfo) error {
	if _, ok := t.ases[n]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateAS, n)
	}
	t.ases[n] = &as{
		info:      info,
		providers: make(map[ASN]bool),
		customers: make(map[ASN]bool),
		peers:     make(map[ASN]bool),
	}
	return nil
}

// Info returns the attributes of an AS and whether it exists.
func (t *Topology) Info(n ASN) (ASInfo, bool) {
	a, ok := t.ases[n]
	if !ok {
		return ASInfo{}, false
	}
	return a.info, true
}

// ASNs returns all registered ASNs in ascending order.
func (t *Topology) ASNs() []ASN {
	out := make([]ASN, 0, len(t.ases))
	for n := range t.ases {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (t *Topology) pair(a, b ASN) (*as, *as, error) {
	if a == b {
		return nil, nil, ErrSelfLink
	}
	x, ok := t.ases[a]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownAS, a)
	}
	y, ok := t.ases[b]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownAS, b)
	}
	return x, y, nil
}

// AddProviderCustomer records that provider sells transit to customer.
func (t *Topology) AddProviderCustomer(provider, customer ASN) error {
	p, c, err := t.pair(provider, customer)
	if err != nil {
		return err
	}
	p.customers[customer] = true
	c.providers[provider] = true
	return nil
}

// AddPeer records a settlement-free peering between a and b.
func (t *Topology) AddPeer(a, b ASN) error {
	x, y, err := t.pair(a, b)
	if err != nil {
		return err
	}
	x.peers[b] = true
	y.peers[a] = true
	return nil
}

// RemoveProviderCustomer deletes a provider-customer edge if present.
func (t *Topology) RemoveProviderCustomer(provider, customer ASN) {
	if p, ok := t.ases[provider]; ok {
		delete(p.customers, customer)
	}
	if c, ok := t.ases[customer]; ok {
		delete(c.providers, provider)
	}
}

// HasProviderCustomer reports whether provider sells transit to customer.
func (t *Topology) HasProviderCustomer(provider, customer ASN) bool {
	p, ok := t.ases[provider]
	return ok && p.customers[customer]
}

// RemovePeer deletes a peering edge if present.
func (t *Topology) RemovePeer(a, b ASN) {
	if x, ok := t.ases[a]; ok {
		delete(x.peers, b)
	}
	if y, ok := t.ases[b]; ok {
		delete(y.peers, a)
	}
}

// HasPeer reports whether a and b peer.
func (t *Topology) HasPeer(a, b ASN) bool {
	x, ok := t.ases[a]
	return ok && x.peers[b]
}

// Originate announces prefix from AS n. Multiple ASes originating the same
// prefix is allowed (anycast / MOAS) — each router picks its best route.
func (t *Topology) Originate(n ASN, prefix string) error {
	a, ok := t.ases[n]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownAS, n)
	}
	a.origins = append(a.origins, prefix)
	return nil
}

// hasOrigin reports whether n currently originates prefix.
func (t *Topology) hasOrigin(n ASN, prefix string) bool {
	a, ok := t.ases[n]
	if !ok {
		return false
	}
	for _, p := range a.origins {
		if p == prefix {
			return true
		}
	}
	return false
}

// Origins returns the prefixes originated by n.
func (t *Topology) Origins(n ASN) []string {
	a, ok := t.ases[n]
	if !ok {
		return nil
	}
	return append([]string(nil), a.origins...)
}

// Clone returns a deep copy of the topology: mutating either copy (links,
// origins, leaker flags) never affects the other. Used by the scenario
// parser to validate event sequences without disturbing the base topology.
func (t *Topology) Clone() *Topology {
	out := &Topology{ases: make(map[ASN]*as, len(t.ases))}
	for n, a := range t.ases {
		c := &as{
			info:      a.info,
			providers: make(map[ASN]bool, len(a.providers)),
			customers: make(map[ASN]bool, len(a.customers)),
			peers:     make(map[ASN]bool, len(a.peers)),
			origins:   append([]string(nil), a.origins...),
			leaker:    a.leaker,
		}
		for p := range a.providers {
			c.providers[p] = true
		}
		for p := range a.customers {
			c.customers[p] = true
		}
		for p := range a.peers {
			c.peers[p] = true
		}
		out.ases[n] = c
	}
	return out
}

// Neighbors returns all neighbors of n with the relationship of each from
// n's perspective (what n would mark a route learned from that neighbor).
func (t *Topology) Neighbors(n ASN) map[ASN]Relationship {
	a, ok := t.ases[n]
	if !ok {
		return nil
	}
	out := make(map[ASN]Relationship, len(a.providers)+len(a.customers)+len(a.peers))
	for p := range a.providers {
		out[p] = FromProvider
	}
	for c := range a.customers {
		out[c] = FromCustomer
	}
	for p := range a.peers {
		out[p] = FromPeer
	}
	return out
}

// Route is a selected path to a prefix. Path[0] is the routing AS itself and
// Path[len-1] the origin AS.
type Route struct {
	Prefix  string
	Path    []ASN
	Learned Relationship
}

// RoutingTables holds the converged best route of every AS for every prefix.
// Internally the tables are dense: ASNs and prefixes are interned to indices
// and each (prefix, AS) cell stores the selected relationship, the path
// length, and the head of an immutable shared path chain (see engine.go).
// All accessors return copies; nothing handed out aliases engine state.
type RoutingTables struct {
	asns     []ASN
	asIdx    map[ASN]int32
	prefixes []string
	pfxIdx   map[string]int32
	entries  []entry // prefix-major: entries[p*len(asns)+a]
	// order lists column indices in ascending prefix-string order. A cold
	// compile sorts prefixes so order starts as the identity; incremental
	// announcements of new prefixes append their column at the end of
	// entries and splice the index here, keeping accessors that enumerate
	// prefixes (Prefixes) byte-identical to a cold convergence.
	order []int32
}

func newRoutingTables(asns []ASN, prefixes []string) *RoutingTables {
	rt := &RoutingTables{
		asns:     asns,
		asIdx:    make(map[ASN]int32, len(asns)),
		prefixes: prefixes,
		pfxIdx:   make(map[string]int32, len(prefixes)),
		entries:  make([]entry, len(asns)*len(prefixes)),
		order:    make([]int32, len(prefixes)),
	}
	for i, n := range asns {
		rt.asIdx[n] = int32(i)
	}
	for i, p := range prefixes {
		rt.pfxIdx[p] = int32(i)
		rt.order[i] = int32(i)
	}
	return rt
}

// addPrefixColumn appends a zeroed column for a new prefix and returns its
// dense index. The caller guarantees the prefix is not already present.
func (rt *RoutingTables) addPrefixColumn(prefix string) int32 {
	pi := int32(len(rt.prefixes))
	rt.prefixes = append(rt.prefixes, prefix)
	rt.pfxIdx[prefix] = pi
	rt.entries = append(rt.entries, make([]entry, len(rt.asns))...)
	at := sort.Search(len(rt.order), func(i int) bool {
		return rt.prefixes[rt.order[i]] >= prefix
	})
	rt.order = append(rt.order, 0)
	copy(rt.order[at+1:], rt.order[at:])
	rt.order[at] = pi
	return pi
}

// dropLastPrefixColumn removes the most recently added column. Only valid
// immediately after addPrefixColumn (LIFO), which Converged.Revert enforces.
func (rt *RoutingTables) dropLastPrefixColumn() {
	pi := int32(len(rt.prefixes) - 1)
	prefix := rt.prefixes[pi]
	rt.prefixes = rt.prefixes[:pi]
	delete(rt.pfxIdx, prefix)
	rt.entries = rt.entries[:int(pi)*len(rt.asns)]
	for i, o := range rt.order {
		if o == pi {
			rt.order = append(rt.order[:i], rt.order[i+1:]...)
			break
		}
	}
}

// lookup returns the cell for (n, prefix), or nil when either is unknown.
func (rt *RoutingTables) lookup(n ASN, prefix string) *entry {
	ai, ok := rt.asIdx[n]
	if !ok {
		return nil
	}
	pi, ok := rt.pfxIdx[prefix]
	if !ok {
		return nil
	}
	return &rt.entries[int(pi)*len(rt.asns)+int(ai)]
}

// materialize copies a path chain into a fresh slice.
func materialize(head *pathNode, plen int32) []ASN {
	out := make([]ASN, 0, plen)
	for c := head; c != nil; c = c.next {
		out = append(out, c.asn)
	}
	return out
}

// Route returns a copy of the best route at AS n for prefix, or nil if none.
// The caller owns the returned Route: mutating it, including its Path slice,
// never affects the converged tables or the result of other calls.
func (rt *RoutingTables) Route(n ASN, prefix string) *Route {
	en := rt.lookup(n, prefix)
	if en == nil || en.head == nil {
		return nil
	}
	return &Route{Prefix: prefix, Path: materialize(en.head, en.plen), Learned: en.learned}
}

// Path returns the AS path from n to prefix (n first, origin last), or nil
// when unreachable. The slice is a fresh copy owned by the caller.
func (rt *RoutingTables) Path(n ASN, prefix string) []ASN {
	en := rt.lookup(n, prefix)
	if en == nil || en.head == nil {
		return nil
	}
	return materialize(en.head, en.plen)
}

// Reachable reports whether n has any route to prefix.
func (rt *RoutingTables) Reachable(n ASN, prefix string) bool {
	en := rt.lookup(n, prefix)
	return en != nil && en.head != nil
}

// Prefixes returns the sorted prefixes in n's table.
func (rt *RoutingTables) Prefixes(n ASN) []string {
	ai, ok := rt.asIdx[n]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(rt.prefixes))
	for _, pi := range rt.order {
		if rt.entries[int(pi)*len(rt.asns)+int(ai)].head != nil {
			out = append(out, rt.prefixes[pi])
		}
	}
	return out
}

// ValleyFree reports whether path obeys the valley-free property in t:
// a (possibly empty) uphill customer→provider segment, at most one peer
// edge, then a (possibly empty) downhill provider→customer segment.
func (t *Topology) ValleyFree(path []ASN) bool {
	if len(path) < 2 {
		return true
	}
	// Phases: 0 = uphill, 1 = after the single peer edge or at apex,
	// edges from path[i] to path[i+1] in the *forward* (traffic) direction;
	// for route paths the traffic flows path[0] → origin.
	phase := 0
	for i := 0; i+1 < len(path); i++ {
		from, to := path[i], path[i+1]
		a, ok := t.ases[from]
		if !ok {
			return false
		}
		switch {
		case a.providers[to]: // going up
			if phase != 0 {
				return false
			}
		case a.peers[to]: // lateral: only once, ends uphill
			if phase != 0 {
				return false
			}
			phase = 1
		case a.customers[to]: // going down
			phase = 2
		default:
			return false // not adjacent
		}
	}
	return true
}

// WithdrawOrigin removes one origination of prefix from AS n (no-op when
// absent). Used by experiments that try attackers in turn.
func (t *Topology) WithdrawOrigin(n ASN, prefix string) {
	a, ok := t.ases[n]
	if !ok {
		return
	}
	out := a.origins[:0]
	for _, p := range a.origins {
		if p != prefix {
			out = append(out, p)
		}
	}
	a.origins = out
}
