package bgpsim

// Route-leak support. The paper's §6.2.2 points at BGP misconfiguration
// (Mahajan et al.) as the canonical example of "social and economic
// dynamics" encoded in a technically simple protocol: a single customer
// re-exporting its provider's routes — a one-line configuration mistake —
// redirects traffic economically, because everyone *prefers* customer
// routes. MarkLeaker turns an AS into such a leaker; ConvergeWithLeaks
// computes the resulting routing, and BlastRadius measures how many ASes
// were pulled through the leaker.

// MarkLeaker flags n as violating export policy: it re-exports every route
// (including provider- and peer-learned ones) to all neighbors. Returns
// false if the AS is unknown.
func (t *Topology) MarkLeaker(n ASN) bool {
	a, ok := t.ases[n]
	if !ok {
		return false
	}
	a.leaker = true
	return true
}

// ClearLeaker removes the flag.
func (t *Topology) ClearLeaker(n ASN) {
	if a, ok := t.ases[n]; ok {
		a.leaker = false
	}
}

// IsLeaker reports whether n is flagged.
func (t *Topology) IsLeaker(n ASN) bool {
	a, ok := t.ases[n]
	return ok && a.leaker
}

// BlastRadius returns the ASes (other than the leaker) whose converged best
// path to prefix traverses leaker, and the total AS count with a route to
// the prefix — the standard measure of a leak's reach.
func BlastRadius(rt *RoutingTables, leaker ASN, prefix string) (affected []ASN, reachable int) {
	for n, tbl := range rt.tables {
		r := tbl[prefix]
		if r == nil {
			continue
		}
		reachable++
		if n == leaker {
			continue
		}
		for _, hop := range r.Path[1:] { // skip self
			if hop == leaker {
				affected = append(affected, n)
				break
			}
		}
	}
	sortASNs(affected)
	return affected, reachable
}

func sortASNs(s []ASN) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}
