package bgpsim

// Route-leak support. The paper's §6.2.2 points at BGP misconfiguration
// (Mahajan et al.) as the canonical example of "social and economic
// dynamics" encoded in a technically simple protocol: a single customer
// re-exporting its provider's routes — a one-line configuration mistake —
// redirects traffic economically, because everyone *prefers* customer
// routes. MarkLeaker turns an AS into such a leaker; ConvergeWithLeaks
// computes the resulting routing, and BlastRadius measures how many ASes
// were pulled through the leaker.

// MarkLeaker flags n as violating export policy: it re-exports every route
// (including provider- and peer-learned ones) to all neighbors. Returns
// false if the AS is unknown.
func (t *Topology) MarkLeaker(n ASN) bool {
	a, ok := t.ases[n]
	if !ok {
		return false
	}
	a.leaker = true
	return true
}

// ClearLeaker removes the flag.
func (t *Topology) ClearLeaker(n ASN) {
	if a, ok := t.ases[n]; ok {
		a.leaker = false
	}
}

// IsLeaker reports whether n is flagged.
func (t *Topology) IsLeaker(n ASN) bool {
	a, ok := t.ases[n]
	return ok && a.leaker
}

// BlastRadius returns the ASes (other than the leaker) whose converged best
// path to prefix traverses leaker, sorted ascending, and the total AS count
// with a route to the prefix — the standard measure of a leak's reach.
func BlastRadius(rt *RoutingTables, leaker ASN, prefix string) (affected []ASN, reachable int) {
	pi, ok := rt.pfxIdx[prefix]
	if !ok {
		return nil, 0
	}
	col := rt.entries[int(pi)*len(rt.asns) : (int(pi)+1)*len(rt.asns)]
	// Dense indices are ascending ASNs, so affected comes out sorted.
	for i := range col {
		en := &col[i]
		if en.head == nil {
			continue
		}
		reachable++
		n := rt.asns[i]
		if n == leaker {
			continue
		}
		if chainContains(en.head.next, leaker) { // skip self hop
			affected = append(affected, n)
		}
	}
	return affected, reachable
}
