package parallel

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ReduceOrdered runs mapFn(i) for every i in [0, n) concurrently on at most
// workers goroutines and feeds each result to reduce exactly once, strictly
// in index order, from the calling goroutine. It is the engine's ordered
// fork-join primitive: because the reduction order is fixed by index, any
// reduction — including non-associative floating-point accumulation — yields
// bit-identical results for every worker count, matching a serial loop
//
//	for i := 0..n-1 { reduce(i, mapFn(i)) }
//
// At most 2*workers map results are in flight at once, so memory stays
// bounded even when one early task is slow.
//
// A mapFn error (or panic, surfaced as *PanicError) is reported when the
// reduction frontier reaches its index, so the returned error is that of the
// lowest failed index — deterministic across worker counts. A reduce error
// aborts immediately. Cancellation is checked between reductions.
func ReduceOrdered[T any](ctx context.Context, n, workers int, mapFn func(i int) (T, error), reduce func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := runMapTask(i, mapFn)
			if err != nil {
				return err
			}
			if err := reduce(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	type slot struct {
		v   T
		err error
	}
	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		done = make(map[int]slot, 2*workers)
		next atomic.Int64
		wg   sync.WaitGroup
	)
	// sem bounds started-but-unconsumed tasks. Workers acquire a slot before
	// taking an index and the reducer releases one per consumed index, so the
	// in-flight indices are always the window smallest unconsumed ones — the
	// reduction frontier is always being worked on and cannot deadlock.
	sem := make(chan struct{}, 2*workers)
	quit := make(chan struct{})

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-quit:
					return
				case sem <- struct{}{}:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				v, err := runMapTask(i, mapFn)
				mu.Lock()
				done[i] = slot{v: v, err: err}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}

	var retErr error
	for f := 0; f < n; f++ {
		if err := ctx.Err(); err != nil {
			retErr = err
			break
		}
		mu.Lock()
		s, ok := done[f]
		for !ok {
			cond.Wait()
			s, ok = done[f]
		}
		delete(done, f)
		mu.Unlock()
		if s.err != nil {
			retErr = s.err
			break
		}
		if err := reduce(f, s.v); err != nil {
			retErr = err
			break
		}
		<-sem
	}
	close(quit)
	wg.Wait()
	return retErr
}

// runMapTask invokes mapFn(i), converting a panic into a *PanicError.
func runMapTask[T any](i int, mapFn func(int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: debug.Stack()}
		}
	}()
	return mapFn(i)
}
