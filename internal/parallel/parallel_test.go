package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(4, 100); got != 4 {
		t.Errorf("Workers(4, 100) = %d, want 4", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 13} {
		const n = 257
		hits := make([]atomic.Int64, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Errorf("n=0: err=%v called=%v", err, called)
	}
	if err := ForEach(context.Background(), -5, 4, func(int) error { called = true; return nil }); err != nil || called {
		t.Errorf("n<0: err=%v called=%v", err, called)
	}
}

func TestForEachReturnsError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 6} {
		err := ForEach(context.Background(), 100, workers, func(i int) error {
			if i == 37 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 50, workers, func(i int) error {
			if i == 11 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 11 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError = {Index: %d, Value: %v, stack %d bytes}",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, 1000, workers, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// A pre-cancelled context may let a few already-dispatched tasks run, but
	// nowhere near all of them.
	if ran.Load() >= 2000 {
		t.Errorf("cancelled run executed all %d tasks", ran.Load())
	}
}

func TestMapResultsByIndex(t *testing.T) {
	want := make([]int, 300)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := Map(context.Background(), len(want), workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapSeededBitIdenticalAcrossWorkers(t *testing.T) {
	draw := func(workers int) []float64 {
		parent := rng.New(99)
		out, err := MapSeeded(context.Background(), 64, workers, parent, func(i int, r *rng.Rand) (float64, error) {
			s := 0.0
			for k := 0; k < 10+i%7; k++ {
				s += r.Float64()
			}
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := draw(1)
	for _, workers := range []int{4, 7, runtime.GOMAXPROCS(0)} {
		got := draw(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: stream %d diverged: %v != %v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestMapSeededStreamsIndependentOfTaskOrder(t *testing.T) {
	// The i-th task must see the i-th Split of the parent, exactly as a
	// serial pre-split would produce.
	parent := rng.New(7)
	want := make([]float64, 16)
	for i := range want {
		want[i] = parent.Split().Float64()
	}
	got, err := MapSeeded(context.Background(), 16, 5, rng.New(7), func(i int, r *rng.Rand) (float64, error) {
		return r.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReduceOrderedConsumesInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		const n = 400
		var order []int
		err := ReduceOrdered(context.Background(), n, workers,
			func(i int) (int, error) {
				// Uneven task cost to shuffle completion order.
				s := 0
				for k := 0; k < (i%13)*50; k++ {
					s += k
				}
				_ = s
				return 3 * i, nil
			},
			func(i, v int) error {
				if v != 3*i {
					return fmt.Errorf("value for %d = %d", i, v)
				}
				order = append(order, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(order) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(order), n)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: reduction order[%d] = %d", workers, i, got)
			}
		}
	}
}

func TestReduceOrderedDeterministicFloatSum(t *testing.T) {
	// Non-associative floating-point accumulation must be bit-identical for
	// every worker count.
	sum := func(workers int) float64 {
		acc := 0.0
		err := ReduceOrdered(context.Background(), 2000, workers,
			func(i int) (float64, error) { return 1.0 / float64(i+1), nil },
			func(_ int, v float64) error { acc += v; return nil })
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	base := sum(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := sum(workers); got != base {
			t.Fatalf("workers=%d: sum %v != serial %v", workers, got, base)
		}
	}
}

func TestReduceOrderedMapErrorReportedAtFrontier(t *testing.T) {
	sentinel := errors.New("map failed")
	for _, workers := range []int{1, 5} {
		var consumed []int
		err := ReduceOrdered(context.Background(), 100, workers,
			func(i int) (int, error) {
				if i == 42 {
					return 0, sentinel
				}
				return i, nil
			},
			func(i, _ int) error {
				consumed = append(consumed, i)
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(consumed) != 42 {
			t.Errorf("workers=%d: consumed %d indices before the failure, want 42", workers, len(consumed))
		}
	}
}

func TestReduceOrderedReduceErrorAborts(t *testing.T) {
	sentinel := errors.New("reduce failed")
	for _, workers := range []int{1, 5} {
		calls := 0
		err := ReduceOrdered(context.Background(), 500, workers,
			func(i int) (int, error) { return i, nil },
			func(i, _ int) error {
				calls++
				if i == 7 {
					return sentinel
				}
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if calls != 8 {
			t.Errorf("workers=%d: reduce ran %d times, want 8", workers, calls)
		}
	}
}

func TestReduceOrderedPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ReduceOrdered(context.Background(), 64, workers,
			func(i int) (int, error) {
				if i == 20 {
					panic("map panic")
				}
				return i, nil
			},
			func(int, int) error { return nil })
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 20 {
			t.Fatalf("workers=%d: err = %v, want *PanicError at 20", workers, err)
		}
	}
}

func TestReduceOrderedCancellationStopsBetweenReductions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	consumed := 0
	err := ReduceOrdered(ctx, 1000, 4,
		func(i int) (int, error) { return i, nil },
		func(i, _ int) error {
			consumed++
			if i == 10 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if consumed != 11 {
		t.Errorf("consumed %d reductions, want 11 (cancellation checked between reductions)", consumed)
	}
}
