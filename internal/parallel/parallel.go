// Package parallel implements a small deterministic fork-join engine: bounded
// worker pools over an index space [0, n) whose results are bit-identical to
// serial execution regardless of worker count.
//
// Determinism comes from three rules that every helper follows:
//
//   - Tasks are identified by index, and outputs land at their index (Map) or
//     are consumed strictly in index order (ReduceOrdered); scheduling order
//     never reaches the caller.
//   - Randomized tasks draw from per-index RNG streams split from a parent
//     generator before any task runs (MapSeeded), so stream assignment depends
//     only on the parent state and n.
//   - Worker panics are captured and converted into errors (PanicError), so a
//     buggy task fails the call instead of crashing the process.
//
// Cancellation is cooperative: the context is checked between tasks, never
// mid-task, so a cancelled call still returns only after in-flight tasks
// finish.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// PanicError wraps a panic recovered from a worker task. The engine converts
// panics into errors so one bad task cannot take down the whole process.
type PanicError struct {
	Index int         // index of the task that panicked
	Value interface{} // value passed to panic
	Stack []byte      // stack captured at recovery
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Workers normalizes a worker-count knob against n tasks: values <= 0 mean
// GOMAXPROCS, and the result never exceeds n (no idle goroutines) and is at
// least 1.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS; workers == 1 runs serially on the calling
// goroutine). fn must be safe for concurrent invocation on distinct indices.
//
// On failure, no new tasks are started and the error of the lowest-indexed
// failed task among those executed is returned; a panic inside fn is returned
// as a *PanicError. When ctx is cancelled, ForEach stops scheduling and
// returns ctx.Err() once in-flight tasks finish.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := runTask(i, fn); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runTask invokes fn(i), converting a panic into a *PanicError.
func runTask(i int, fn func(int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results indexed by task: out[i] = fn(i). Because each result
// lands at its own index, the output is bit-identical for every worker count.
// Error and cancellation semantics follow ForEach.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapSeeded is Map for randomized tasks: task i receives the i-th RNG stream
// split from parent. All n streams are split serially before any task runs,
// so the stream handed to task i depends only on parent's state and n — never
// on worker count or scheduling — and the output is bit-identical for every
// worker count. The parent generator advances by n Split calls.
func MapSeeded[T any](ctx context.Context, n, workers int, parent *rng.Rand, fn func(i int, r *rng.Rand) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	streams := make([]*rng.Rand, n)
	for i := range streams {
		streams[i] = parent.Split()
	}
	return Map(ctx, n, workers, func(i int) (T, error) {
		return fn(i, streams[i])
	})
}
