package standards

import (
	"context"
	"fmt"

	"repro/internal/experiment"
)

// Scenario registration for E11: practitioner engagement in the standards
// process.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E11",
		Title: "Practitioner engagement in standards",
		Claim: "Operator seats in open working groups slow standardization per RFC but raise final fit and deployment; closed consortia standardize fast and deploy narrowly.",
		Seed:  1,
		Params: experiment.Schema{
			{Name: "shares", Kind: experiment.String, Default: "0,0.15,0.3,0.45,0.6", Doc: "comma-separated practitioner seat shares to sweep"},
			{Name: "drafts", Kind: experiment.Int, Default: 40, Doc: "drafts entering the process"},
			{Name: "rounds", Kind: experiment.Int, Default: 30, Doc: "working-group cycles simulated"},
			{Name: "seats", Kind: experiment.Int, Default: 8, Doc: "per-round review capacity"},
			{Name: "operators", Kind: experiment.Int, Default: 200, Doc: "deployment population size"},
			{Name: "patience", Kind: experiment.Int, Default: 10, Doc: "rounds a draft survives without adoption"},
			{Name: "consortium-share", Kind: experiment.Float, Default: 0.25, Doc: "operator share inside the closed consortium"},
		},
		Run: runE11,
	})
}

// runE11 sweeps practitioner shares plus the closed-consortium
// counterfactual appended by Sweep.
func runE11(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	shares, err := experiment.ParseFloats(p.String("shares"))
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Drafts = p.Int("drafts")
	cfg.Rounds = p.Int("rounds")
	cfg.Seats = p.Int("seats")
	cfg.Operators = p.Int("operators")
	cfg.PatienceRounds = p.Int("patience")
	cfg.ConsortiumShare = p.Float("consortium-share")
	cfg.Seed = seed
	rows, err := Sweep(shares, cfg)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E11", "Practitioner engagement in standards",
		"process", "rfcs", "rounds-to-rfc", "final-fit", "deploy-per-rfc")
	for _, r := range rows {
		name := fmt.Sprintf("open %.0f%%", 100*r.PractitionerShare)
		if r.Closed {
			name = "closed consortium"
		}
		t.AddRow(experiment.S(name), experiment.I(r.RFCs), experiment.FP(r.MeanRoundsToRFC, 1),
			experiment.F3(r.MeanFinalFit), experiment.F3(r.MeanDeployPerRFC))
	}
	return res, nil
}
