package standards

import (
	"testing"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRunProducesRFCs(t *testing.T) {
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.RFCs == 0 {
		t.Fatal("no RFCs produced")
	}
	if res.RFCs+res.Abandoned != DefaultConfig().Drafts {
		t.Errorf("accounting: %d RFCs + %d abandoned != %d drafts",
			res.RFCs, res.Abandoned, DefaultConfig().Drafts)
	}
	if res.MeanRoundsToRFC <= 0 {
		t.Errorf("rounds to RFC = %g", res.MeanRoundsToRFC)
	}
	if res.DeploymentShare <= 0 || res.DeploymentShare > 1 {
		t.Errorf("deployment share = %g", res.DeploymentShare)
	}
}

func TestPractitionersRaiseFitAndDeployment(t *testing.T) {
	low := DefaultConfig()
	low.PractitionerShare = 0.05
	high := DefaultConfig()
	high.PractitionerShare = 0.6

	lowRes, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	highRes, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	if !(highRes.MeanFinalFit > lowRes.MeanFinalFit+0.1) {
		t.Errorf("fit: practitioner-rich %g should clearly beat poor %g",
			highRes.MeanFinalFit, lowRes.MeanFinalFit)
	}
	if !(highRes.MeanDeploymentPerRFC > lowRes.MeanDeploymentPerRFC) {
		t.Errorf("deployment per RFC: %g should beat %g",
			highRes.MeanDeploymentPerRFC, lowRes.MeanDeploymentPerRFC)
	}
}

func TestClosedProcessFastButNarrow(t *testing.T) {
	open := DefaultConfig()
	open.PractitionerShare = 0.4
	closed := DefaultConfig()
	closed.Closed = true

	openRes, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	closedRes, err := Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	// The consortium standardizes faster...
	if !(closedRes.MeanRoundsToRFC < openRes.MeanRoundsToRFC) {
		t.Errorf("closed rounds %g should be below open %g",
			closedRes.MeanRoundsToRFC, openRes.MeanRoundsToRFC)
	}
	// ...but deployment is capped by the consortium's reach.
	if !(closedRes.DeploymentShare <= closed.ConsortiumShare+1e-9) {
		t.Errorf("closed deployment %g exceeds consortium share %g",
			closedRes.DeploymentShare, closed.ConsortiumShare)
	}
	if !(openRes.DeploymentShare > 2*closedRes.DeploymentShare) {
		t.Errorf("open deployment %g should dwarf closed %g",
			openRes.DeploymentShare, closedRes.DeploymentShare)
	}
}

func TestSweepShape(t *testing.T) {
	shares := []float64{0, 0.15, 0.3, 0.45, 0.6}
	rows, err := Sweep(shares, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(shares)+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[len(rows)-1].Closed {
		t.Error("last row should be the closed counterfactual")
	}
	first, last := rows[0], rows[len(shares)-1]
	if !(last.MeanFinalFit > first.MeanFinalFit) {
		t.Errorf("fit should rise with practitioner share: %g -> %g",
			first.MeanFinalFit, last.MeanFinalFit)
	}
	if !(last.MeanDeployPerRFC > first.MeanDeployPerRFC) {
		t.Errorf("per-RFC deployment should rise with practitioner share: %g -> %g",
			first.MeanDeployPerRFC, last.MeanDeployPerRFC)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run(DefaultConfig())
	b, _ := Run(DefaultConfig())
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestStateString(t *testing.T) {
	if Individual.String() != "individual" || RFC.String() != "rfc" || Abandoned.String() != "abandoned" {
		t.Error("state strings wrong")
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
