// Package standards models the research-to-practice pipeline the paper's §2
// holds up as the Internet's own action-research history: drafts move
// through an IETF-like open process (individual draft → working-group
// adoption → RFC → operator deployment), and practitioner participation in
// the working group is what aligns a design with operator needs before it
// ships. The closed, consortium-style counterfactual ("the closed, rigid,
// and monopolistic 2G cellular world") standardizes without that feedback.
//
// The E11 experiment sweeps the practitioner share of working-group seats
// and measures time-to-RFC and eventual deployment breadth.
package standards

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// State is a draft's position in the pipeline.
type State int

// Draft states.
const (
	Individual State = iota
	WGAdopted
	RFC
	Abandoned
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Individual:
		return "individual"
	case WGAdopted:
		return "wg-adopted"
	case RFC:
		return "rfc"
	case Abandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Draft is one proposed protocol or mechanism.
type Draft struct {
	ID int
	// Quality is the intrinsic technical merit (0..1), fixed at birth.
	Quality float64
	// Fit is how well the current revision matches operator needs (0..1).
	// Open-process revisions with practitioners in the room raise it.
	Fit float64
	// TrueNeedFit is the fit a fully practitioner-informed revision would
	// reach — the ceiling revisions approach.
	TrueNeedFit float64

	State State
	// AdoptedRound / RFCRound record transitions (-1 if not reached).
	AdoptedRound, RFCRound int
	// Champions counts practitioners who reviewed it (they later drive
	// deployment).
	Champions int
}

// Config parameterizes a process run.
type Config struct {
	Drafts int
	// Rounds is the number of working-group cycles simulated.
	Rounds int
	// Seats is the working group's per-round review capacity (drafts
	// reviewed per round).
	Seats int
	// PractitionerShare is the fraction of seats held by operators (the
	// swept variable of E11).
	PractitionerShare float64
	// Closed switches to the consortium counterfactual: drafts skip open
	// review (fit never improves), standardize quickly, and deploy only
	// within the consortium's operator share.
	Closed bool
	// ConsortiumShare is the fraction of operators inside a closed
	// consortium.
	ConsortiumShare float64
	// Operators is the deployment population size.
	Operators int
	// PatienceRounds is how long an individual draft survives without
	// adoption before abandonment.
	PatienceRounds int
	Seed           uint64
}

// DefaultConfig returns the configuration used by tests and the harness.
func DefaultConfig() Config {
	return Config{
		Drafts:            40,
		Rounds:            30,
		Seats:             8,
		PractitionerShare: 0.3,
		ConsortiumShare:   0.25,
		Operators:         200,
		PatienceRounds:    10,
		Seed:              1,
	}
}

// Result summarizes one process run.
type Result struct {
	RFCs            int
	Abandoned       int
	MeanRoundsToRFC float64
	MeanFinalFit    float64 // over RFCs
	// DeploymentShare is the fraction of operators running at least one of
	// the produced RFCs after the deployment phase.
	DeploymentShare float64
	// MeanDeploymentPerRFC is the mean per-RFC operator adoption share.
	MeanDeploymentPerRFC float64
}

// Run simulates the process and the subsequent deployment phase.
func Run(cfg Config) (Result, error) {
	if cfg.Drafts <= 0 || cfg.Rounds <= 0 || cfg.Operators <= 0 {
		return Result{}, fmt.Errorf("standards: config incomplete")
	}
	r := rng.New(cfg.Seed)
	drafts := make([]*Draft, cfg.Drafts)
	for i := range drafts {
		q := 0.3 + 0.7*r.Float64()
		initialFit := 0.15 + 0.25*r.Float64()
		drafts[i] = &Draft{
			ID: i, Quality: q,
			Fit: initialFit, TrueNeedFit: 0.7 + 0.3*r.Float64(),
			State: Individual, AdoptedRound: -1, RFCRound: -1,
		}
	}

	if cfg.Closed {
		// Consortium: standardize by quality rank, no revision loop.
		ranked := append([]*Draft(nil), drafts...)
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].Quality > ranked[b].Quality })
		produce := cfg.Rounds * cfg.Seats / 4
		for i, d := range ranked {
			if i < produce {
				d.State = RFC
				// No revision loop: the consortium ratifies at full seat
				// capacity from the first round.
				d.RFCRound = 1 + i/maxi(cfg.Seats, 1)
			} else {
				d.State = Abandoned
			}
		}
	} else {
		for round := 0; round < cfg.Rounds; round++ {
			// Review queue: adopted drafts first (they are closest to RFC),
			// then individuals by quality.
			queue := make([]*Draft, 0, len(drafts))
			for _, d := range drafts {
				if d.State == WGAdopted {
					queue = append(queue, d)
				}
			}
			var individuals []*Draft
			for _, d := range drafts {
				if d.State == Individual {
					individuals = append(individuals, d)
				}
			}
			sort.Slice(individuals, func(a, b int) bool {
				return individuals[a].Quality > individuals[b].Quality
			})
			queue = append(queue, individuals...)

			seats := cfg.Seats
			for _, d := range queue {
				if seats == 0 {
					break
				}
				seats--
				practitionerReview := r.Bool(cfg.PractitionerShare)
				if practitionerReview {
					// Operators in the room pull the design toward real
					// needs — the action-research mechanism.
					d.Fit += 0.35 * (d.TrueNeedFit - d.Fit)
					d.Champions++
				}
				switch d.State {
				case Individual:
					if r.Bool(d.Quality * 0.5) {
						d.State = WGAdopted
						d.AdoptedRound = round
					}
				case WGAdopted:
					// RFC once quality and fit are both credible.
					if r.Bool(d.Quality * d.Fit) {
						d.State = RFC
						d.RFCRound = round
					}
				}
			}
			// Abandonment of stale individual drafts.
			for _, d := range drafts {
				if d.State == Individual && round >= cfg.PatienceRounds && r.Bool(0.15) {
					d.State = Abandoned
				}
			}
		}
		for _, d := range drafts {
			if d.State != RFC {
				d.State = Abandoned
			}
		}
	}

	// Deployment phase: each operator considers each RFC once; adoption
	// probability is the RFC's fit, boosted by champions, and — in the
	// closed world — gated to consortium members.
	deployedAny := make([]bool, cfg.Operators)
	var res Result
	var roundsSum, fitSum, deploySum float64
	for _, d := range drafts {
		switch d.State {
		case RFC:
			res.RFCs++
			roundsSum += float64(d.RFCRound + 1)
			fitSum += d.Fit
			adopters := 0
			for op := 0; op < cfg.Operators; op++ {
				if cfg.Closed && float64(op) >= cfg.ConsortiumShare*float64(cfg.Operators) {
					continue
				}
				p := d.Fit * (1 + 0.1*float64(mini(d.Champions, 5)))
				if p > 1 {
					p = 1
				}
				if r.Bool(p) {
					adopters++
					deployedAny[op] = true
				}
			}
			deploySum += float64(adopters) / float64(cfg.Operators)
		case Abandoned:
			res.Abandoned++
		}
	}
	if res.RFCs > 0 {
		res.MeanRoundsToRFC = roundsSum / float64(res.RFCs)
		res.MeanFinalFit = fitSum / float64(res.RFCs)
		res.MeanDeploymentPerRFC = deploySum / float64(res.RFCs)
	}
	n := 0
	for _, d := range deployedAny {
		if d {
			n++
		}
	}
	res.DeploymentShare = float64(n) / float64(cfg.Operators)
	return res, nil
}

// E11Row is one point of the practitioner-share sweep.
type E11Row struct {
	PractitionerShare float64
	Closed            bool
	RFCs              int
	MeanRoundsToRFC   float64
	MeanFinalFit      float64
	// DeploymentShare is the fraction of operators running any RFC; it
	// saturates quickly when many RFCs ship, so MeanDeployPerRFC is the
	// discriminative per-standard adoption measure.
	DeploymentShare  float64
	MeanDeployPerRFC float64
}

// Sweep runs E11: the open process across practitioner shares, plus the
// closed consortium counterfactual as the final row.
func Sweep(shares []float64, base Config) ([]E11Row, error) {
	rows := make([]E11Row, 0, len(shares)+1)
	for _, s := range shares {
		cfg := base
		cfg.PractitionerShare = s
		cfg.Closed = false
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E11Row{
			PractitionerShare: s,
			RFCs:              res.RFCs,
			MeanRoundsToRFC:   res.MeanRoundsToRFC,
			MeanFinalFit:      res.MeanFinalFit,
			DeploymentShare:   res.DeploymentShare,
			MeanDeployPerRFC:  res.MeanDeploymentPerRFC,
		})
	}
	closed := base
	closed.Closed = true
	res, err := Run(closed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, E11Row{
		Closed:           true,
		RFCs:             res.RFCs,
		MeanRoundsToRFC:  res.MeanRoundsToRFC,
		MeanFinalFit:     res.MeanFinalFit,
		DeploymentShare:  res.DeploymentShare,
		MeanDeployPerRFC: res.MeanDeploymentPerRFC,
	})
	return rows, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
