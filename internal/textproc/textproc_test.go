package textproc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokenize("Hello, World! It's a BGP-based test.")
	want := []string{"hello", "world", "its", "bgp", "based", "test"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeDropsShort(t *testing.T) {
	got := Tokenize("a b c ab")
	if len(got) != 1 || got[0] != "ab" {
		t.Errorf("tokens = %v, want [ab]", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("tokens of empty = %v", got)
	}
}

func TestTokenizeFiltered(t *testing.T) {
	got := TokenizeFiltered("the network is the computer")
	want := []string{"network", "computer"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("filtered = %v, want %v", got, want)
	}
}

func TestStemConflatesMethodVocabulary(t *testing.T) {
	cases := [][2]string{
		{"interviews", "interview"},
		{"interviewing", "interview"},
		{"interviewed", "interview"},
		{"measurements", "measurement"},
		{"ethnographies", "ethnography"},
		{"communities", "community"},
		{"peering", "peer"},
		{"networks", "network"},
	}
	for _, c := range cases {
		if got := Stem(c[0]); got != c[1] {
			t.Errorf("Stem(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"as", "bgp", "ix"} {
		if Stem(w) != w {
			t.Errorf("Stem(%q) changed short word", w)
		}
	}
}

func TestStemIdempotentOnCommonForms(t *testing.T) {
	words := []string{"interviews", "measurements", "peering", "coding", "networks"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		// Stemming twice may further strip, but must never grow or panic.
		if len(twice) > len(once) {
			t.Errorf("Stem grew: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"community", "network", "congestion"}
	bi := NGrams(toks, 2)
	if len(bi) != 2 || bi[0] != "community network" || bi[1] != "network congestion" {
		t.Errorf("bigrams = %v", bi)
	}
	if NGrams(toks, 4) != nil || NGrams(toks, 0) != nil {
		t.Error("degenerate n-grams should be nil")
	}
}

func TestTermFreq(t *testing.T) {
	tf := TermFreq([]string{"x", "y", "x"})
	if tf["x"] != 2 || tf["y"] != 1 {
		t.Errorf("tf = %v", tf)
	}
}

func TestTFIDFDistinguishesRareTerms(t *testing.T) {
	var c Corpus
	c.Add("measurement measurement latency")
	c.Add("measurement throughput")
	c.Add("ethnography fieldwork interview")
	v0 := c.TFIDF(0)
	// "measurement" appears in 2/3 docs; "latency" in 1/3. After stemming,
	// per-occurrence weight of latency must exceed measurement's.
	lat := v0[Stem("latency")]
	meas := v0[Stem("measurement")] / 2 // tf was 2
	if lat <= meas {
		t.Errorf("rare term weight %g should exceed common term per-occurrence weight %g", lat, meas)
	}
}

func TestTFIDFOutOfRange(t *testing.T) {
	var c Corpus
	if c.TFIDF(0) != nil {
		t.Error("TFIDF on empty corpus should be nil")
	}
}

func TestCosineIdenticalAndOrthogonal(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("self cosine = %g, want 1", got)
	}
	b := map[string]float64{"z": 3}
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal cosine = %g, want 0", got)
	}
	if got := Cosine(a, nil); got != 0 {
		t.Errorf("nil cosine = %g, want 0", got)
	}
}

func TestCorpusSimilarityGrouping(t *testing.T) {
	var c Corpus
	i0 := c.Add("we conducted interviews with network operators and coded the transcripts")
	i1 := c.Add("interview transcripts were coded by two researchers for themes")
	i2 := c.Add("we measured packet loss and latency across vantage points with traceroute")
	simQual := Cosine(c.TFIDF(i0), c.TFIDF(i1))
	simCross := Cosine(c.TFIDF(i0), c.TFIDF(i2))
	if simQual <= simCross {
		t.Errorf("qualitative docs similarity %g should exceed cross-method %g", simQual, simCross)
	}
}

func TestTopTermsDeterministicOrder(t *testing.T) {
	vec := map[string]float64{"b": 1, "a": 1, "c": 2}
	top := TopTerms(vec, 3)
	if top[0].Term != "c" || top[1].Term != "a" || top[2].Term != "b" {
		t.Errorf("top terms = %v", top)
	}
	if got := TopTerms(vec, 1); len(got) != 1 {
		t.Errorf("k=1 returned %d terms", len(got))
	}
}

func TestJaccard(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"y", "z"}
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("jaccard = %g, want 1/3", got)
	}
	if got := Jaccard(nil, nil); got != 0 {
		t.Errorf("empty jaccard = %g", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self jaccard = %g", got)
	}
}

func TestQuickTokenizeLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) || len(tok) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCosineBounds(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := make(map[string]float64)
		b := make(map[string]float64)
		for i, v := range av {
			a[strings.Repeat("a", i%5+1)] += float64(v)
		}
		for i, v := range bv {
			b[strings.Repeat("a", i%7+1)] += float64(v)
		}
		c := Cosine(a, b)
		return c >= -1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("Networking research often abstracts away the people who build, operate, and experience the Internet. ", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(text)
	}
}

func BenchmarkTFIDF(b *testing.B) {
	var c Corpus
	for i := 0; i < 100; i++ {
		c.Add("participatory action research ethnographic methods positionality networking measurement " + strings.Repeat("community network ", i%7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.TFIDF(i % c.Len())
	}
}
