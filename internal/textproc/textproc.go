// Package textproc provides the lightweight text-processing primitives used
// by the qualitative-coding engine (internal/qualcode) and the corpus method
// classifier (internal/biblio): tokenization, stopword filtering, a small
// suffix-stripping stemmer, n-grams, TF-IDF vectors, and cosine similarity.
//
// The goal is not linguistic fidelity but deterministic, dependency-free
// feature extraction adequate for classifying method vocabulary ("interview",
// "ethnograph...", "measurement", "benchmark") and for clustering coded
// segments by theme.
package textproc

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// defaultStopwords is the small English stopword list applied by Tokenize
// when filtering is requested.
var defaultStopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "he": true, "her": true, "his": true,
	"in": true, "is": true, "it": true, "its": true, "not": true,
	"of": true, "on": true, "or": true, "our": true, "she": true,
	"that": true, "the": true, "their": true, "them": true, "they": true,
	"this": true, "to": true, "was": true, "we": true, "were": true,
	"which": true, "who": true, "will": true, "with": true, "you": true,
	"i": true, "my": true, "me": true, "so": true, "do": true, "did": true,
	"what": true, "when": true, "how": true, "if": true, "then": true,
}

// IsStopword reports whether w (lowercase) is in the default stopword list.
func IsStopword(w string) bool { return defaultStopwords[w] }

// Tokenize splits text into lowercase word tokens, dropping punctuation.
// Tokens of length < 2 are discarded.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if r != '\'' {
				b.WriteRune(r)
			}
			continue
		}
		flush()
	}
	flush()
	return tokens
}

// TokenizeFiltered tokenizes and removes stopwords.
func TokenizeFiltered(text string) []string {
	raw := Tokenize(text)
	out := raw[:0]
	for _, t := range raw {
		if !defaultStopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a small suffix-stripping stemmer (a Porter-lite) sufficient to
// conflate the method vocabulary used by the classifier: plurals, -ing, -ed,
// -tion/-sion, -ies, -ness, -ment. Words of length <= 3 are returned as-is.
func Stem(w string) string {
	if len(w) <= 3 {
		return w
	}
	type rule struct{ suffix, replace string }
	rules := []rule{
		{"izations", "ize"},
		{"ization", "ize"},
		{"ational", "ate"},
		{"fulness", "ful"},
		{"ousness", "ous"},
		{"iveness", "ive"},
		{"tional", "tion"},
		{"biliti", "ble"},
		{"graphies", "graphy"},
		{"ements", "ement"},
		{"ingly", ""},
		{"ments", "ment"},
		{"ness", ""},
		{"ations", "ate"},
		{"ation", "ate"},
		{"ities", "ity"},
		{"ies", "y"},
		{"ing", ""},
		{"edly", ""},
		{"eds", ""},
		{"ed", ""},
		{"ly", ""},
		{"es", ""},
		{"s", ""},
	}
	for _, r := range rules {
		if strings.HasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)] + r.replace
			if len(stem) >= 3 {
				return stem
			}
		}
	}
	return w
}

// StemAll maps Stem over tokens.
func StemAll(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Stem(t)
	}
	return out
}

// NGrams returns the contiguous n-grams of tokens joined by spaces. n <= 0 or
// n > len(tokens) yields nil.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || n > len(tokens) {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// TermFreq returns the term-frequency map of tokens.
func TermFreq(tokens []string) map[string]float64 {
	tf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// Corpus accumulates documents and computes TF-IDF vectors against the
// accumulated document frequencies. The zero value is ready to use.
type Corpus struct {
	docs []map[string]float64 // term frequency per doc
	df   map[string]int       // document frequency per term
}

// Add tokenizes, filters, and stems text, appends it as a document, and
// returns its index.
func (c *Corpus) Add(text string) int {
	tokens := StemAll(TokenizeFiltered(text))
	tf := TermFreq(tokens)
	if c.df == nil {
		c.df = make(map[string]int)
	}
	for term := range tf {
		c.df[term]++
	}
	c.docs = append(c.docs, tf)
	return len(c.docs) - 1
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// TFIDF returns the TF-IDF vector of document i (smoothed IDF:
// log((1+N)/(1+df)) + 1). Returns nil for out-of-range i.
func (c *Corpus) TFIDF(i int) map[string]float64 {
	if i < 0 || i >= len(c.docs) {
		return nil
	}
	n := float64(len(c.docs))
	vec := make(map[string]float64, len(c.docs[i]))
	for term, tf := range c.docs[i] {
		idf := math.Log((1+n)/(1+float64(c.df[term]))) + 1
		vec[term] = tf * idf
	}
	return vec
}

// Cosine returns the cosine similarity of two sparse vectors (0 when either
// is empty or zero).
func Cosine(a, b map[string]float64) float64 {
	// Accumulate in sorted term order: float addition is not associative,
	// so summing in map order would change the similarity's low bits
	// run-to-run.
	var dot, na, nb float64
	for _, k := range sortedTerms(a) {
		va := a[k]
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, k := range sortedTerms(b) {
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// sortedTerms returns the keys of a sparse vector in sorted order.
func sortedTerms(v map[string]float64) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Keyword is a term with a score, as returned by TopTerms.
type Keyword struct {
	Term  string
	Score float64
}

// TopTerms returns the k highest-scoring terms of a sparse vector, ties
// broken alphabetically for determinism.
func TopTerms(vec map[string]float64, k int) []Keyword {
	kws := make([]Keyword, 0, len(vec))
	for t, s := range vec {
		kws = append(kws, Keyword{Term: t, Score: s})
	}
	sort.Slice(kws, func(i, j int) bool {
		if kws[i].Score != kws[j].Score {
			return kws[i].Score > kws[j].Score
		}
		return kws[i].Term < kws[j].Term
	})
	if k < len(kws) {
		kws = kws[:k]
	}
	return kws
}

// Jaccard returns the Jaccard similarity of two token sets.
func Jaccard(a, b []string) float64 {
	sa := make(map[string]bool, len(a))
	for _, t := range a {
		sa[t] = true
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}
