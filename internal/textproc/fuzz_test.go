package textproc

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "BGP-based peering at IXPs!",
		"données réseau 日本語 text", "a b c", strings.Repeat("x", 10000),
		"it's a test's tests", "\x00\xff broken \xf0 utf8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		for _, tok := range tokens {
			if len(tok) < 2 {
				t.Fatalf("token %q shorter than 2", tok)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercase", tok)
			}
			if !utf8.ValidString(tok) {
				t.Fatalf("token %q invalid UTF-8", tok)
			}
		}
		// Stemming must never panic or grow unreasonably.
		for _, tok := range tokens {
			stem := Stem(tok)
			if len(stem) > len(tok) {
				t.Fatalf("Stem grew %q -> %q", tok, stem)
			}
		}
	})
}

func FuzzStem(f *testing.F) {
	for _, seed := range []string{"", "a", "running", "ethnographies", "ミーティング", "xxxxs"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Stem(s)
		if len(s) <= 3 && out != s {
			t.Fatalf("short word changed: %q -> %q", s, out)
		}
	})
}
