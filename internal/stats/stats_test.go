package stats

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4.571428571, 1e-6) {
		t.Errorf("Variance = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value should be NaN")
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(4.571428571), 1e-6) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEq(got, 1.5, 1e-9) {
		t.Errorf("interpolated median = %g, want 1.5", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %g", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-9) {
		t.Errorf("perfect correlation = %g", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-9) {
		t.Errorf("perfect anticorrelation = %g", got)
	}
	flat := []float64{1, 1, 1, 1, 1}
	if !math.IsNaN(Pearson(xs, flat)) {
		t.Error("zero-variance correlation should be NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-9) {
		t.Errorf("Spearman of monotone = %g, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-9) {
		t.Errorf("Spearman with ties = %g, want 1", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almostEq(got, 0, 1e-9) {
		t.Errorf("equal Gini = %g, want 0", got)
	}
	// One person owns everything among n=4: Gini = (n-1)/n = 0.75.
	if got := Gini([]float64{0, 0, 0, 10}); !almostEq(got, 0.75, 1e-9) {
		t.Errorf("concentrated Gini = %g, want 0.75", got)
	}
	if !math.IsNaN(Gini(nil)) || !math.IsNaN(Gini([]float64{0, 0})) {
		t.Error("degenerate Gini should be NaN")
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{5, 5, 5}); !almostEq(got, 1, 1e-9) {
		t.Errorf("fair Jain = %g, want 1", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); !almostEq(got, 0.25, 1e-9) {
		t.Errorf("unfair Jain = %g, want 0.25", got)
	}
}

func TestTheil(t *testing.T) {
	if got := Theil([]float64{2, 2, 2}); !almostEq(got, 0, 1e-9) {
		t.Errorf("equal Theil = %g, want 0", got)
	}
	if Theil([]float64{1, 100}) <= 0 {
		t.Error("unequal Theil should be positive")
	}
	if !math.IsNaN(Theil([]float64{0, -1})) {
		t.Error("no positive entries should yield NaN")
	}
}

func TestTopKShare(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := TopKShare(xs, 1); !almostEq(got, 0.4, 1e-9) {
		t.Errorf("top-1 share = %g, want 0.4", got)
	}
	if got := TopKShare(xs, 10); !almostEq(got, 1, 1e-9) {
		t.Errorf("top-10 of 4 = %g, want 1", got)
	}
	if got := TopKShare(xs, 0); got != 0 {
		t.Errorf("top-0 = %g, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := Histogram(xs, 5)
	for i, c := range h {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	same := Histogram([]float64{3, 3, 3}, 4)
	if same[0] != 3 {
		t.Errorf("constant data should land in first bin, got %v", same)
	}
	if Histogram(nil, 3) != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestHistogramSkipsNaN(t *testing.T) {
	// Regression: a NaN poisoned Min/Max, made the bin width NaN, and
	// int(NaN) produced a negative index that panicked at counts[b]++.
	h := Histogram([]float64{1, math.NaN(), 2}, 4)
	if len(h) != 4 {
		t.Fatalf("histogram = %v, want 4 bins", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 2 {
		t.Errorf("histogram %v counts %d values, want 2 (NaN skipped)", h, total)
	}
	if h[0] != 1 || h[3] != 1 {
		t.Errorf("histogram = %v, want value 1 in first bin and 2 in last", h)
	}
}

func TestHistogramAllNaN(t *testing.T) {
	if h := Histogram([]float64{math.NaN(), math.NaN()}, 3); h != nil {
		t.Errorf("all-NaN histogram = %v, want nil", h)
	}
}

func TestHistogramNaNWithConstantRest(t *testing.T) {
	h := Histogram([]float64{5, math.NaN(), 5}, 3)
	if h == nil || h[0] != 2 {
		t.Errorf("constant-plus-NaN histogram = %v, want [2 0 0]", h)
	}
}

func TestChiSquare(t *testing.T) {
	obs := []float64{10, 20, 30}
	if got := ChiSquare(obs, obs); got != 0 {
		t.Errorf("identical chi-square = %g, want 0", got)
	}
	got := ChiSquare([]float64{12, 18}, []float64{15, 15})
	if !almostEq(got, 9.0/15+9.0/15, 1e-9) {
		t.Errorf("chi-square = %g", got)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Errorf("fit = (%g, %g, %g), want (1, 2, 1)", a, b, r2)
	}
}

func TestBootstrapCIContainsMean(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64() + 10
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.95, r)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("95%% CI [%g, %g] should contain the sample mean %g", lo, hi, m)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI [%g, %g] too wide for n=500", lo, hi)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestQuantileNaNPropagates(t *testing.T) {
	// Regression: sort.Float64s leaves NaNs in unspecified positions, so a
	// NaN-bearing input used to yield arbitrary garbage quantiles.
	xs := []float64{1, math.NaN(), 2}
	if got := Quantile(xs, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile with NaN = %g, want NaN", got)
	}
	if got := Median(xs); !math.IsNaN(got) {
		t.Errorf("Median with NaN = %g, want NaN", got)
	}
}

func TestSummarizeNaNPropagates(t *testing.T) {
	s := Summarize([]float64{3, math.NaN(), 1})
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
	// A slice keeps failure output in a stable order run-to-run; a map
	// literal would report cases in random iteration order.
	for _, tc := range []struct {
		name string
		v    float64
	}{
		{"Mean", s.Mean}, {"Std", s.Std}, {"Min", s.Min}, {"P25", s.P25},
		{"Median", s.Median}, {"P75", s.P75}, {"P95", s.P95}, {"Max", s.Max},
	} {
		if !math.IsNaN(tc.v) {
			t.Errorf("%s = %g, want NaN for NaN-bearing input", tc.name, tc.v)
		}
	}
}

func TestSummarizeMatchesQuantiles(t *testing.T) {
	// The single-sort fast path must agree with the public one-off calls.
	r := rng.New(17)
	xs := make([]float64, 401)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.5)
	}
	s := Summarize(xs)
	if s.Min != Min(xs) || s.Max != Max(xs) {
		t.Errorf("Min/Max = %g/%g, want %g/%g", s.Min, s.Max, Min(xs), Max(xs))
	}
	for _, c := range []struct {
		name string
		got  float64
		q    float64
	}{
		{"P25", s.P25, 0.25}, {"Median", s.Median, 0.5},
		{"P75", s.P75, 0.75}, {"P95", s.P95, 0.95},
	} {
		if want := Quantile(xs, c.q); c.got != want {
			t.Errorf("%s = %v, want Quantile(%g) = %v", c.name, c.got, c.q, want)
		}
	}
}

func TestBootstrapCINaNPropagates(t *testing.T) {
	lo, hi := BootstrapCI([]float64{1, math.NaN(), 2}, Mean, 50, 0.95, rng.New(1))
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("NaN-bearing bootstrap CI = [%g, %g], want NaNs", lo, hi)
	}
}

func TestBootstrapCIWorkersBitIdentical(t *testing.T) {
	xs := make([]float64, 300)
	gen := rng.New(5)
	for i := range xs {
		xs[i] = gen.Pareto(1, 1.3)
	}
	// 130 resamples spans three batches, the last one partial.
	run := func(workers int) (float64, float64) {
		return BootstrapCIWorkers(xs, Median, 130, 0.9, rng.New(23), workers)
	}
	baseLo, baseHi := run(1)
	serialLo, serialHi := BootstrapCI(xs, Median, 130, 0.9, rng.New(23))
	if baseLo != serialLo || baseHi != serialHi {
		t.Fatalf("BootstrapCI [%v, %v] != BootstrapCIWorkers(1) [%v, %v]", serialLo, serialHi, baseLo, baseHi)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		lo, hi := run(workers)
		if lo != baseLo || hi != baseHi {
			t.Errorf("workers=%d: CI [%v, %v] != serial [%v, %v] (not bit-identical)",
				workers, lo, hi, baseLo, baseHi)
		}
	}
}

func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		j := Jain(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGiniBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Quantile(xs, 0.25) <= Quantile(xs, 0.75)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGini(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gini(xs)
	}
}

func TestCronbachParallelItems(t *testing.T) {
	// Items = latent trait + small independent noise → high alpha.
	r := rng.New(55)
	const n = 400
	latent := make([]float64, n)
	for j := range latent {
		latent[j] = r.NormFloat64()
	}
	items := make([][]float64, 4)
	for i := range items {
		items[i] = make([]float64, n)
		for j := range items[i] {
			items[i][j] = latent[j] + 0.3*r.NormFloat64()
		}
	}
	if a := Cronbach(items); a < 0.85 {
		t.Errorf("parallel-items alpha = %g, want high", a)
	}
}

func TestCronbachIndependentItems(t *testing.T) {
	r := rng.New(56)
	const n = 400
	items := make([][]float64, 4)
	for i := range items {
		items[i] = make([]float64, n)
		for j := range items[i] {
			items[i][j] = r.NormFloat64()
		}
	}
	a := Cronbach(items)
	if a > 0.3 {
		t.Errorf("independent-items alpha = %g, want near 0", a)
	}
}

func TestCronbachDegenerate(t *testing.T) {
	if !math.IsNaN(Cronbach(nil)) {
		t.Error("nil should be NaN")
	}
	if !math.IsNaN(Cronbach([][]float64{{1, 2}})) {
		t.Error("single item should be NaN")
	}
	if !math.IsNaN(Cronbach([][]float64{{1, 2}, {1}})) {
		t.Error("ragged matrix should be NaN")
	}
	if !math.IsNaN(Cronbach([][]float64{{1, 1}, {2, 2}})) {
		t.Error("zero total variance should be NaN")
	}
}

func TestMannWhitneyShifted(t *testing.T) {
	r := rng.New(71)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64() + 1
		ys[i] = r.NormFloat64()
	}
	_, z := MannWhitneyU(xs, ys)
	if z < 3 {
		t.Errorf("z = %g, want strongly positive for shifted sample", z)
	}
	_, zRev := MannWhitneyU(ys, xs)
	if zRev > -3 {
		t.Errorf("reversed z = %g, want strongly negative", zRev)
	}
}

func TestMannWhitneyNull(t *testing.T) {
	r := rng.New(73)
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	_, z := MannWhitneyU(xs, ys)
	if math.Abs(z) > 3 {
		t.Errorf("null z = %g, want near 0", z)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	u, z := MannWhitneyU(nil, []float64{1})
	if !math.IsNaN(u) || !math.IsNaN(z) {
		t.Error("empty sample should be NaN")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(same, same); d > 1e-9 {
		t.Errorf("identical D = %g", d)
	}
	disjoint := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{10, 11, 12})
	if math.Abs(disjoint-1) > 1e-9 {
		t.Errorf("disjoint D = %g, want 1", disjoint)
	}
	if !math.IsNaN(KolmogorovSmirnov(nil, same)) {
		t.Error("empty KS should be NaN")
	}
}

func TestKSDetectsVarianceChange(t *testing.T) {
	r := rng.New(79)
	narrow := make([]float64, 400)
	wide := make([]float64, 400)
	for i := range narrow {
		narrow[i] = r.NormFloat64()
		wide[i] = 3 * r.NormFloat64()
	}
	if d := KolmogorovSmirnov(narrow, wide); d < 0.15 {
		t.Errorf("variance-change D = %g, want detectable", d)
	}
}
