package stats_test

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/stats"
)

// Fuzz targets for the statistics kernels most exposed to hostile float
// input: Quantile (NaN propagation, bounds) and Histogram (bin conservation,
// no panics on extreme ranges). Seeds cover the IEEE corner values the
// property suite's Float64Corners generator injects, which is where past
// NaN-handling bugs lived.

// floatsFromBytes decodes the fuzz payload as little-endian float64s.
func floatsFromBytes(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

func bytesFromFloats(xs ...float64) []byte {
	out := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

func FuzzQuantile(f *testing.F) {
	f.Add(bytesFromFloats(1, 2, 3), 0.5)
	f.Add(bytesFromFloats(math.NaN(), 1), 0.25)
	f.Add(bytesFromFloats(math.Inf(1), math.Inf(-1), 0), 0.75)
	f.Add(bytesFromFloats(math.Copysign(0, -1), math.MaxFloat64, -math.MaxFloat64), 1.0)
	f.Add(bytesFromFloats(math.SmallestNonzeroFloat64), 0.0)
	f.Add([]byte{}, 0.5)
	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		if len(data) > 1<<14 {
			return
		}
		xs := floatsFromBytes(data)
		v := stats.Quantile(xs, q)
		anyNaN := false
		for _, x := range xs {
			if math.IsNaN(x) {
				anyNaN = true
			}
		}
		switch {
		case len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) || anyNaN:
			if !math.IsNaN(v) {
				t.Fatalf("Quantile(%v, %v) = %v, want NaN for invalid/NaN input", xs, q, v)
			}
		default:
			lo, hi := stats.Min(xs), stats.Max(xs)
			// ±Inf inputs make the interpolation arithmetic produce NaN
			// (Inf - Inf); anything else must land inside [Min, Max] up to
			// rounding.
			if math.IsNaN(v) {
				if !math.IsInf(lo, 0) && !math.IsInf(hi, 0) {
					t.Fatalf("Quantile(%v, %v) = NaN for finite input", xs, q)
				}
				return
			}
			pad := math.Abs(lo)/1e9 + math.Abs(hi)/1e9 + 1e-9
			if v < lo-pad || v > hi+pad {
				t.Fatalf("Quantile(%v, %v) = %v outside [%v, %v]", xs, q, v, lo, hi)
			}
		}
	})
}

func FuzzHistogram(f *testing.F) {
	f.Add(bytesFromFloats(1, 2, 3), 4)
	f.Add(bytesFromFloats(math.NaN(), math.NaN()), 3)
	f.Add(bytesFromFloats(math.Inf(1), math.Inf(-1)), 2)
	f.Add(bytesFromFloats(0, math.Copysign(0, -1)), 1)
	f.Add(bytesFromFloats(math.MaxFloat64, -math.MaxFloat64, 0), 5)
	f.Add([]byte{}, 3)
	f.Fuzz(func(t *testing.T, data []byte, nbins int) {
		if len(data) > 1<<14 || nbins > 1<<16 {
			return // bound allocation, not coverage
		}
		xs := floatsFromBytes(data)
		counts := stats.Histogram(xs, nbins)
		kept := 0
		for _, x := range xs {
			if !math.IsNaN(x) {
				kept++
			}
		}
		if len(xs) == 0 || nbins <= 0 || kept == 0 {
			if counts != nil {
				t.Fatalf("Histogram(%v, %d) = %v, want nil", xs, nbins, counts)
			}
			return
		}
		if len(counts) != nbins {
			t.Fatalf("Histogram(%v, %d) has %d bins", xs, nbins, len(counts))
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative bin count in %v", counts)
			}
			total += c
		}
		if total != kept {
			t.Fatalf("Histogram(%v, %d) places %d values, kept %d", xs, nbins, total, kept)
		}
	})
}
