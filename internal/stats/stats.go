// Package stats provides the descriptive and inferential statistics used by
// the humnet experiments: moments, quantiles, correlation, inequality and
// fairness indices, bootstrap confidence intervals, and simple regression.
//
// All functions are pure and operate on float64 slices. Functions that
// require non-empty input document that requirement and return NaN (never
// panic) when it is violated, so that callers composing pipelines can
// propagate missing data explicitly.
package stats

import (
	"context"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// hasNaN reports whether xs contains a NaN.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance of xs, or NaN for fewer than
// two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN if empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). Returns NaN
// for empty input, q outside [0, 1], or any NaN in xs: sort.Float64s leaves
// NaNs in unspecified positions, so rather than interpolate over a corrupted
// order the missing data propagates explicitly.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || hasNaN(xs) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted returns the type-7 q-quantile of s, which must be sorted
// ascending and NaN-free. It lets callers that need several quantiles of the
// same sample (Summarize, BootstrapCI) sort once.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	v := s[lo]*(1-frac) + s[hi]*frac
	// The interpolation can round one ulp outside [s[lo], s[hi]] (e.g. both
	// products of a negative value round upward), which would let a low
	// quantile exceed a high one on near-constant samples. Clamp into the
	// bracketing order statistics so quantiles stay monotone across segments.
	if v < s[lo] {
		v = s[lo]
	} else if v > s[hi] {
		v = s[hi]
	}
	return v
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Pearson returns the Pearson correlation coefficient between xs and ys, or
// NaN if lengths differ, are < 2, or either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks returns mid-ranks (ties get the average rank), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// Gini returns the Gini coefficient of xs (0 = perfect equality, →1 =
// concentration). Values must be non-negative; returns NaN for empty input or
// an all-zero vector.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return math.NaN()
	}
	nf := float64(n)
	return (2*cum)/(nf*total) - (nf+1)/nf
}

// Jain returns Jain's fairness index of xs: (sum x)^2 / (n * sum x^2).
// 1 means perfectly fair; 1/n means maximally unfair. Returns NaN for empty
// or all-zero input.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	if sq == 0 {
		return math.NaN()
	}
	return s * s / (float64(len(xs)) * sq)
}

// Theil returns the Theil-T inequality index of xs (0 = equality). Values
// must be positive; non-positive entries are skipped. Returns NaN if no
// positive entries remain.
func Theil(xs []float64) float64 {
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return math.NaN()
	}
	m := Mean(pos)
	t := 0.0
	for _, x := range pos {
		t += (x / m) * math.Log(x/m)
	}
	return t / float64(len(pos))
}

// TopKShare returns the fraction of the total held by the k largest entries.
// Returns NaN for empty input, 1 if k >= len(xs), and NaN if total is 0.
func TopKShare(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if k <= 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	total := Sum(s)
	if total == 0 {
		return math.NaN()
	}
	if k > len(s) {
		k = len(s)
	}
	return Sum(s[:k]) / total
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// counts. Values exactly at max land in the last bin. NaN entries are skipped
// (a NaN would poison the bin width and turn int(NaN) into a panicking
// negative index); the range is taken over the remaining values. Returns nil
// for empty input, nbins <= 0, or all-NaN input.
func Histogram(xs []float64, nbins int) []int {
	if len(xs) == 0 || nbins <= 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	kept := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		kept++
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if kept == 0 {
		return nil
	}
	counts := make([]int, nbins)
	if hi == lo {
		counts[0] = kept
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// ChiSquare returns the chi-square statistic for observed vs expected counts.
// Expected entries must be positive; pairs with expected <= 0 are skipped.
func ChiSquare(observed, expected []float64) float64 {
	n := len(observed)
	if len(expected) < n {
		n = len(expected)
	}
	stat := 0.0
	for i := 0; i < n; i++ {
		if expected[i] <= 0 {
			continue
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	return stat
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b, and coefficient of determination r2. Returns NaNs for
// fewer than two points or zero x-variance.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// bootstrapBatch is the number of resamples drawn from one RNG stream split
// from the caller's generator. The batch structure depends only on
// nresamples — never on worker count — so serial and parallel execution
// consume identical random streams.
const bootstrapBatch = 64

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic fn over xs at the given confidence level (e.g. 0.95), using
// nresamples resamples seeded from r. Returns NaNs for empty input, and
// propagates NaN (NaN, NaN) when any resample estimate is NaN — e.g. when xs
// itself carries NaNs. Equivalent to BootstrapCIWorkers with workers == 1.
func BootstrapCI(xs []float64, fn func([]float64) float64, nresamples int, level float64, r *rng.Rand) (lo, hi float64) {
	return BootstrapCIWorkers(xs, fn, nresamples, level, r, 1)
}

// BootstrapCIWorkers is BootstrapCI with the resampling fanned out across at
// most workers goroutines (workers <= 0 means GOMAXPROCS, workers == 1 runs
// serially). Resamples are grouped into fixed batches; batch i always draws
// from the i-th stream split from r and writes its estimates at fixed
// indices, so the interval is bit-identical for every worker count. fn must
// be safe for concurrent calls on distinct slices (any pure statistic, such
// as Mean or Median, is).
func BootstrapCIWorkers(xs []float64, fn func([]float64) float64, nresamples int, level float64, r *rng.Rand, workers int) (lo, hi float64) {
	if len(xs) == 0 || nresamples <= 0 {
		return math.NaN(), math.NaN()
	}
	nbatches := (nresamples + bootstrapBatch - 1) / bootstrapBatch
	streams := make([]*rng.Rand, nbatches)
	for i := range streams {
		streams[i] = r.Split()
	}
	est := make([]float64, nresamples)
	_ = parallel.ForEach(context.Background(), nbatches, workers, func(bi int) error {
		br := streams[bi]
		start := bi * bootstrapBatch
		end := start + bootstrapBatch
		if end > nresamples {
			end = nresamples
		}
		buf := make([]float64, len(xs))
		for i := start; i < end; i++ {
			for j := range buf {
				buf[j] = xs[br.Intn(len(xs))]
			}
			//humnet:allow paraccum -- batch bi owns the disjoint index range [start,end); no two tasks touch the same est element
			est[i] = fn(buf)
		}
		return nil
	})
	if hasNaN(est) {
		return math.NaN(), math.NaN()
	}
	sort.Float64s(est)
	alpha := (1 - level) / 2
	lo = quantileSorted(est, alpha)
	hi = quantileSorted(est, 1-alpha)
	// When alpha and 1-alpha fall in the same inter-order-statistic segment
	// (tiny samples, level near 0), interpolation rounding can still invert
	// the endpoints by an ulp; the interval contract is lo <= hi.
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// Summary captures the standard five-number-plus summary of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, P25      float64
	Median        float64
	P75, P95, Max float64
}

// Summarize computes a Summary of xs. The order statistics come from a
// single sorted copy rather than one copy+sort per quantile. Empty or
// NaN-bearing input yields NaN order statistics (missing data propagates).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs)}
	if len(xs) == 0 || hasNaN(xs) {
		nan := math.NaN()
		s.Min, s.P25, s.Median, s.P75, s.P95, s.Max = nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.P25 = quantileSorted(sorted, 0.25)
	s.Median = quantileSorted(sorted, 0.5)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P95 = quantileSorted(sorted, 0.95)
	s.Max = sorted[len(sorted)-1]
	return s
}

// Cronbach returns Cronbach's alpha for an item matrix: items[i][j] is
// respondent j's score on item i. All items must have the same number of
// respondents (>= 2) and there must be >= 2 items; otherwise NaN. Alpha is
// the standard internal-consistency reliability of a multi-item scale.
func Cronbach(items [][]float64) float64 {
	k := len(items)
	if k < 2 {
		return math.NaN()
	}
	n := len(items[0])
	if n < 2 {
		return math.NaN()
	}
	for _, it := range items {
		if len(it) != n {
			return math.NaN()
		}
	}
	totals := make([]float64, n)
	var itemVarSum float64
	for _, it := range items {
		itemVarSum += Variance(it)
		for j, v := range it {
			totals[j] += v
		}
	}
	totalVar := Variance(totals)
	if totalVar == 0 {
		return math.NaN()
	}
	return float64(k) / float64(k-1) * (1 - itemVarSum/totalVar)
}

// MannWhitneyU returns the Mann–Whitney U statistic for sample xs against
// ys and the normal-approximation z-score (positive z means xs tends to
// exceed ys). NaNs for empty samples. Ties are handled with mid-ranks; the
// z-score uses the no-ties variance, adequate for the continuous synthetic
// data in this repository.
func MannWhitneyU(xs, ys []float64) (u, z float64) {
	n1, n2 := float64(len(xs)), float64(len(ys))
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	combined := make([]float64, 0, len(xs)+len(ys))
	combined = append(combined, xs...)
	combined = append(combined, ys...)
	r := ranks(combined)
	var r1 float64
	for i := range xs {
		r1 += r[i]
	}
	u = r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	sigma := math.Sqrt(n1 * n2 * (n1 + n2 + 1) / 12)
	if sigma == 0 {
		return u, math.NaN()
	}
	z = (u - mu) / sigma
	return u, z
}

// KolmogorovSmirnov returns the two-sample KS statistic D — the maximum
// distance between the empirical CDFs of xs and ys. NaN for empty samples.
func KolmogorovSmirnov(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		// Advance both CDFs past the next value so ties step together.
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
