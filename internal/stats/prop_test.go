package stats_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/proptest"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Property suite for the descriptive-statistics layer: order-statistic
// monotonicity, the classic invariances of the inequality indices
// (permutation, scale, bounds), summary self-consistency, NaN propagation,
// and bit-identical bootstrap output across worker counts.

// fpTol absorbs the one-ulp-level wobble of reassociated float arithmetic in
// relations that hold exactly over the reals.
const fpTol = 1e-9

func TestPropQuantileMonotoneAndBounded(t *testing.T) {
	proptest.Run(t, 101, 200, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 30, -1e6, 1e6)
		q1 := g.Float64()
		q2 := g.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1 := stats.Quantile(xs, q1)
		v2 := stats.Quantile(xs, q2)
		if math.IsNaN(v1) || math.IsNaN(v2) {
			return fmt.Errorf("Quantile of finite input is NaN: q1=%v->%v q2=%v->%v", q1, v1, q2, v2)
		}
		if v1 > v2 && !proptest.ApproxEq(v1, v2, fpTol) {
			return fmt.Errorf("Quantile not monotone: q(%v)=%v > q(%v)=%v", q1, v1, q2, v2)
		}
		lo, hi := stats.Min(xs), stats.Max(xs)
		if v1 < lo-fpTol || v2 > hi+math.Abs(hi)*fpTol+fpTol {
			return fmt.Errorf("Quantile escapes [Min,Max]=[%v,%v]: %v, %v", lo, hi, v1, v2)
		}
		return nil
	})
}

func TestPropQuantileNaNPropagates(t *testing.T) {
	proptest.Run(t, 102, 200, func(g *proptest.G) error {
		xs := g.FloatsWithCorners(1, 20)
		q := g.Float64()
		v := stats.Quantile(xs, q)
		anyNaN := false
		for _, x := range xs {
			if math.IsNaN(x) {
				anyNaN = true
			}
		}
		if anyNaN && !math.IsNaN(v) {
			return fmt.Errorf("NaN in input but Quantile=%v", v)
		}
		if !anyNaN && math.IsNaN(v) {
			return fmt.Errorf("no NaN in input but Quantile is NaN (xs=%v q=%v)", xs, q)
		}
		return nil
	})
}

func TestPropGiniInvariances(t *testing.T) {
	proptest.Run(t, 103, 200, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 30, 0.01, 1e4)
		gi := stats.Gini(xs)
		if math.IsNaN(gi) || gi < -fpTol || gi >= 1 {
			return fmt.Errorf("Gini(%v) = %v out of [0,1)", xs, gi)
		}
		// Permutation invariance is exact: Gini sorts its own copy.
		if gp := stats.Gini(g.Permuted(xs)); !proptest.SameFloat(gi, gp) {
			return fmt.Errorf("Gini permutation-variant: %v vs %v", gi, gp)
		}
		// Scale invariance up to rounding, for a positive factor.
		c := g.Float64Range(0.1, 100)
		if gs := stats.Gini(proptest.Scaled(xs, c)); !proptest.ApproxEq(gi, gs, fpTol) {
			return fmt.Errorf("Gini scale-variant under c=%v: %v vs %v", c, gi, gs)
		}
		return nil
	})
}

func TestPropJainInvariances(t *testing.T) {
	proptest.Run(t, 104, 200, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 30, 0.01, 1e4)
		j := stats.Jain(xs)
		n := float64(len(xs))
		if math.IsNaN(j) || j < 1/n-fpTol || j > 1+fpTol {
			return fmt.Errorf("Jain(%v) = %v out of [1/n, 1]", xs, j)
		}
		if jp := stats.Jain(g.Permuted(xs)); !proptest.ApproxEq(j, jp, fpTol) {
			return fmt.Errorf("Jain permutation-variant: %v vs %v", j, jp)
		}
		c := g.Float64Range(0.1, 100)
		if js := stats.Jain(proptest.Scaled(xs, c)); !proptest.ApproxEq(j, js, fpTol) {
			return fmt.Errorf("Jain scale-variant under c=%v: %v vs %v", c, j, js)
		}
		return nil
	})
}

func TestPropTheilInvariances(t *testing.T) {
	proptest.Run(t, 105, 200, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 30, 0.01, 1e4)
		th := stats.Theil(xs)
		if math.IsNaN(th) || th < -fpTol {
			return fmt.Errorf("Theil(%v) = %v, want >= 0", xs, th)
		}
		if tp := stats.Theil(g.Permuted(xs)); !proptest.ApproxEq(th, tp, fpTol) {
			return fmt.Errorf("Theil permutation-variant: %v vs %v", th, tp)
		}
		c := g.Float64Range(0.1, 100)
		if ts := stats.Theil(proptest.Scaled(xs, c)); !proptest.ApproxEq(th, ts, 1e-7) {
			return fmt.Errorf("Theil scale-variant under c=%v: %v vs %v", c, th, ts)
		}
		return nil
	})
}

func TestPropSummarizeConsistent(t *testing.T) {
	proptest.Run(t, 106, 200, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 40, -1e6, 1e6)
		s := stats.Summarize(xs)
		if s.N != len(xs) {
			return fmt.Errorf("Summarize.N = %d, want %d", s.N, len(xs))
		}
		if !proptest.SameFloat(s.Min, stats.Min(xs)) || !proptest.SameFloat(s.Max, stats.Max(xs)) {
			return fmt.Errorf("Summarize min/max %v/%v disagree with Min/Max %v/%v",
				s.Min, s.Max, stats.Min(xs), stats.Max(xs))
		}
		if !proptest.SameFloat(s.Median, stats.Median(xs)) {
			return fmt.Errorf("Summarize.Median = %v, Median = %v", s.Median, stats.Median(xs))
		}
		order := []float64{s.Min, s.P25, s.Median, s.P75, s.P95, s.Max}
		for i := 1; i < len(order); i++ {
			if order[i-1] > order[i] && !proptest.ApproxEq(order[i-1], order[i], fpTol) {
				return fmt.Errorf("summary order statistics not sorted: %v", order)
			}
		}
		return nil
	})
}

func TestPropSummarizeNaNPropagates(t *testing.T) {
	proptest.Run(t, 107, 150, func(g *proptest.G) error {
		xs := g.FloatsWithCorners(1, 20)
		anyNaN := false
		for _, x := range xs {
			if math.IsNaN(x) {
				anyNaN = true
			}
		}
		if !anyNaN {
			xs = append(xs, math.NaN())
		}
		s := stats.Summarize(xs)
		for name, v := range map[string]float64{
			"Min": s.Min, "P25": s.P25, "Median": s.Median,
			"P75": s.P75, "P95": s.P95, "Max": s.Max,
		} {
			if !math.IsNaN(v) {
				return fmt.Errorf("NaN input but Summarize.%s = %v", name, v)
			}
		}
		return nil
	})
}

func TestPropBootstrapCIOrderedAndWorkerInvariant(t *testing.T) {
	proptest.Run(t, 108, 60, func(g *proptest.G) error {
		xs := g.FloatsIn(1, 25, -100, 100)
		level := g.Float64Range(0.5, 0.99)
		nres := g.IntRange(1, 150)
		seed := g.Uint64()
		lo, hi := stats.BootstrapCI(xs, stats.Mean, nres, level, rng.New(seed))
		if math.IsNaN(lo) != math.IsNaN(hi) {
			return fmt.Errorf("half-NaN interval [%v, %v]", lo, hi)
		}
		if !math.IsNaN(lo) && lo > hi {
			return fmt.Errorf("inverted interval [%v, %v]", lo, hi)
		}
		workers := g.IntRange(2, 8)
		lo2, hi2 := stats.BootstrapCIWorkers(xs, stats.Mean, nres, level, rng.New(seed), workers)
		if !proptest.SameFloat(lo, lo2) || !proptest.SameFloat(hi, hi2) {
			return fmt.Errorf("workers=%d interval [%v, %v] differs from serial [%v, %v]",
				workers, lo2, hi2, lo, hi)
		}
		return nil
	})
}

func TestPropHistogramConserves(t *testing.T) {
	proptest.Run(t, 109, 200, func(g *proptest.G) error {
		xs := g.FloatsWithCorners(0, 30)
		nbins := g.IntRange(1, 12)
		counts := stats.Histogram(xs, nbins)
		kept := 0
		for _, x := range xs {
			if !math.IsNaN(x) {
				kept++
			}
		}
		if kept == 0 {
			if counts != nil {
				return fmt.Errorf("no finite values but Histogram = %v", counts)
			}
			return nil
		}
		if len(counts) != nbins {
			return fmt.Errorf("Histogram has %d bins, want %d", len(counts), nbins)
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return fmt.Errorf("negative bin count in %v", counts)
			}
			total += c
		}
		if total != kept {
			return fmt.Errorf("Histogram counts %d values, kept %d (xs=%v)", total, kept, xs)
		}
		return nil
	})
}

// TestRegressionBootstrapCINotInverted pins the counterexample that
// TestPropBootstrapCIOrderedAndWorkerInvariant shrank at PROPTEST_N=2000
// (replay token pt1.7ca30686.AJqRhP_r1IalLoDwgvbX3wXbiomA7t2PlAI): a
// single-element sample makes every bootstrap estimate the same float, and
// the interpolation in quantileSorted rounded the alpha-quantile one ulp
// above the (1-alpha)-quantile, returning an inverted interval.
func TestRegressionBootstrapCINotInverted(t *testing.T) {
	c := -63.83635221284221
	lo, hi := stats.BootstrapCI([]float64{c}, stats.Mean, 84, 0.5000006714585733, rng.New(0))
	if lo > hi {
		t.Fatalf("BootstrapCI inverted: lo=%v > hi=%v", lo, hi)
	}
	if lo != c || hi != c {
		t.Fatalf("BootstrapCI on a constant sample = [%v, %v], want exactly [%v, %v]", lo, hi, c, c)
	}
	// The underlying quantile must return the constant exactly for every q:
	// the interpolation of two equal values may not round away from them.
	for _, q := range []float64{0, 0.25, 0.2500003357292866, 0.5, 0.7499996642707134, 0.75, 1} {
		if v := stats.Quantile([]float64{c, c, c}, q); v != c {
			t.Fatalf("Quantile(const %v, %v) = %v, want exact %v", c, q, v, c)
		}
	}
}
