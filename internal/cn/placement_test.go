package cn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBestGatewayOnLine(t *testing.T) {
	// Path 0-1-2-3-4: the median node 2 minimizes mean distance.
	g := graph.New(5, false)
	for i := 0; i+1 < 5; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	node, mean := BestGateway(g)
	if node != 2 {
		t.Errorf("best gateway = %d, want 2", node)
	}
	if math.Abs(mean-1.5) > 1e-9 {
		t.Errorf("mean = %g, want 1.5", mean)
	}
}

func TestBestGatewayBeatsArbitraryRoot(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		net, err := BuildMesh(30, 0.35, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		defaultMean := net.MeanPathETX()
		opt, err := BuildOptimizedMesh(30, 0.35, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if opt.MeanPathETX() > defaultMean+1e-9 {
			t.Errorf("seed %d: optimized mean %g worse than default %g",
				seed, opt.MeanPathETX(), defaultMean)
		}
	}
}

func TestBestSecondGatewayImproves(t *testing.T) {
	net, err := BuildOptimizedMesh(40, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	first := net.Gateway
	firstMean := net.MeanPathETX()
	second, combinedMean := BestSecondGateway(net.G, first)
	if second == -1 || second == first {
		t.Fatalf("second gateway = %d", second)
	}
	if !(combinedMean < firstMean) {
		t.Errorf("second gateway should improve mean: %g vs %g", combinedMean, firstMean)
	}
}

func TestBestSecondGatewayOnLine(t *testing.T) {
	// Path 0..6 with first gateway at 0: the best complement sits in the
	// far half.
	g := graph.New(7, false)
	for i := 0; i+1 < 7; i++ {
		_ = g.AddEdge(i, i+1, 1)
	}
	second, _ := BestSecondGateway(g, 0)
	if second < 3 {
		t.Errorf("second gateway = %d, want in the far half", second)
	}
}

func TestBestGatewayDisconnected(t *testing.T) {
	g := graph.New(3, false)
	_ = g.AddEdge(0, 1, 1)
	// Node 2 isolated: candidates reach only their own component; the best
	// is within the 0-1 pair.
	node, _ := BestGateway(g)
	if node != 0 && node != 1 {
		t.Errorf("best gateway = %d", node)
	}
}
