package cn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// lineNetwork hand-builds a path mesh 0-1-2-...-k with unit-ETX links and
// gateway 0.
func lineNetwork(t *testing.T, k int) *Network {
	t.Helper()
	g := graph.New(k+1, false)
	for i := 0; i < k; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	dist, prev := g.Dijkstra(0)
	return &Network{G: g, Gateway: 0, PathETX: dist, parent: prev}
}

func TestMaxMinRatesStar(t *testing.T) {
	// Star with 3 leaves, unit ETX: each leaf's own access link is its
	// bottleneck → rate = capacity each.
	g := graph.New(4, false)
	for i := 1; i <= 3; i++ {
		if err := g.AddEdge(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	dist, prev := g.Dijkstra(0)
	n := &Network{G: g, Gateway: 0, PathETX: dist, parent: prev}
	rates, err := n.MaxMinRates(1)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0 {
		t.Errorf("gateway rate = %g", rates[0])
	}
	for i := 1; i <= 3; i++ {
		if math.Abs(rates[i]-1) > 1e-9 {
			t.Errorf("leaf %d rate = %g, want 1", i, rates[i])
		}
	}
}

func TestMaxMinRatesLineSharedBottleneck(t *testing.T) {
	// Line 0-1-2: link (0,1) carries both members 1 and 2 → they share it
	// equally: r1 = r2 = 0.5. Member 2 additionally uses (1,2), which has
	// slack.
	n := lineNetwork(t, 2)
	rates, err := n.MaxMinRates(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[1]-0.5) > 1e-9 || math.Abs(rates[2]-0.5) > 1e-9 {
		t.Errorf("rates = %v, want 0.5 each", rates)
	}
}

func TestMaxMinRatesRespectCapacities(t *testing.T) {
	net, err := BuildMesh(25, 0.35, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const cap = 2.0
	rates, err := net.MaxMinRates(cap)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute per-link load and check feasibility.
	load := make(map[linkKey]float64)
	for i := 0; i < net.G.N(); i++ {
		if i == net.Gateway {
			continue
		}
		route := net.RouteToGateway(i)
		for h := 0; h+1 < len(route); h++ {
			etx, err := net.linkETX(route[h], route[h+1])
			if err != nil {
				t.Fatal(err)
			}
			load[mkLink(route[h], route[h+1])] += rates[i] * etx
		}
	}
	for k, l := range load {
		if l > cap+1e-6 {
			t.Errorf("link %v overloaded: %g > %g", k, l, cap)
		}
	}
	// Every member gets something.
	for i, r := range rates {
		if i != net.Gateway && r <= 0 {
			t.Errorf("member %d starved", i)
		}
	}
}

func TestMaxMinRatesDepthInequality(t *testing.T) {
	// Structural claim: nodes farther from the gateway cannot out-rate
	// nearer ones under fair sharing — hop count correlates negatively
	// with rate.
	net, err := BuildMesh(40, 0.3, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rates, err := net.MaxMinRates(1)
	if err != nil {
		t.Fatal(err)
	}
	var hops, rs []float64
	for i := 0; i < net.G.N(); i++ {
		if i == net.Gateway {
			continue
		}
		hops = append(hops, float64(net.HopsToGateway(i)))
		rs = append(rs, rates[i])
	}
	if corr := stats.Spearman(hops, rs); !(corr < -0.2) {
		t.Errorf("hop/rate correlation = %g, want clearly negative", corr)
	}
}

func TestAggregateCapacityScalesWithLinkCapacity(t *testing.T) {
	net, err := BuildMesh(20, 0.35, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := net.AggregateCapacity(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.AggregateCapacity(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2-2*c1) > 1e-6 {
		t.Errorf("capacity should scale linearly: %g vs 2x%g", c2, c1)
	}
}

func TestOptimizedGatewayRaisesAggregateCapacity(t *testing.T) {
	wins := 0
	for seed := uint64(1); seed <= 6; seed++ {
		def, err := BuildMesh(30, 0.32, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := BuildOptimizedMesh(30, 0.32, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		cd, err := def.AggregateCapacity(1)
		if err != nil {
			t.Fatal(err)
		}
		co, err := opt.AggregateCapacity(1)
		if err != nil {
			t.Fatal(err)
		}
		if co >= cd-1e-9 {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("optimized gateway matched/beat default only %d/6 times", wins)
	}
}

func TestMaxMinRatesValidation(t *testing.T) {
	n := lineNetwork(t, 2)
	if _, err := n.MaxMinRates(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func BenchmarkMaxMinRates(b *testing.B) {
	net, err := BuildMesh(50, 0.3, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.MaxMinRates(1); err != nil {
			b.Fatal(err)
		}
	}
}
