package cn

import (
	"testing"
)

func TestTopoGapValidation(t *testing.T) {
	if _, err := TopoGapExperiment(3, 0.3, 1, 1); err == nil {
		t.Error("tiny mesh accepted")
	}
}

func TestTopoGapShapes(t *testing.T) {
	rows, err := TopoGapExperiment(40, 0.3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 quartiles x 2 placements)", len(rows))
	}
	// Hops increase across quartiles for both placements.
	for _, placement := range []string{"default", "optimized"} {
		var prev float64 = -1
		for q := 1; q <= 4; q++ {
			for _, r := range rows {
				if r.Placement == placement && r.Quartile == q {
					if r.MeanHops < prev {
						t.Errorf("%s quartile %d hops %g below previous %g", placement, q, r.MeanHops, prev)
					}
					prev = r.MeanHops
					if r.MeanRate <= 0 {
						t.Errorf("%s quartile %d starved", placement, q)
					}
				}
			}
		}
	}
	// The near/far rate gap exists under both placements (topology is
	// topology) but is real and measurable.
	gapDefault := NearFarGap(rows, "default")
	gapOpt := NearFarGap(rows, "optimized")
	if gapDefault < 1 || gapOpt < 1 {
		t.Errorf("gaps should be >= 1: default %g optimized %g", gapDefault, gapOpt)
	}
}

func TestOptimizedPlacementRaisesFarQuartile(t *testing.T) {
	// Across several meshes, the 1-median placement should raise the
	// farthest quartile's mean rate more often than not.
	wins := 0
	for seed := uint64(1); seed <= 7; seed++ {
		rows, err := TopoGapExperiment(40, 0.3, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		var defFar, optFar float64
		for _, r := range rows {
			if r.Quartile == 4 {
				if r.Placement == "default" {
					defFar = r.MeanRate
				} else {
					optFar = r.MeanRate
				}
			}
		}
		if optFar >= defFar-1e-12 {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("optimized placement helped the far quartile only %d/7 times", wins)
	}
}
