package cn

// Churn-aware congestion simulation for the timeline engine: the same mesh,
// demand model, and scheduler discipline as Simulate, but held open as a
// stateful machine so an external event stream can fail and repair members
// between epochs. The demand process draws one sample per member per epoch
// regardless of who is up — churn masks demand, it never perturbs the RNG —
// so two replays of the same seed stay identical even when their failure
// schedules differ only in timing, and an empty stream reproduces the
// all-up trajectory exactly.

import (
	"fmt"

	"repro/internal/rng"
)

// ChurnConfig parameterizes a churn-aware run. It mirrors SimConfig minus
// the epoch count (the replaying stream's horizon decides that).
type ChurnConfig struct {
	Members   int
	HeavyFrac float64
	// CapacityFactor scales the gateway capacity relative to the mean
	// offered airtime load of the full (all-up) membership.
	CapacityFactor float64
	MeshRadius     float64
	Seed           uint64
}

// ChurnSim is the live state: mesh, demand model, scheduler, and the up/down
// member set. Not safe for concurrent use.
type ChurnSim struct {
	cfg       ChurnConfig
	net       *Network
	model     DemandModel
	sched     Scheduler
	capacity  float64
	demandRNG *rng.Rand
	up        []bool
	nUp       int
	// scale multiplies every member's demand draw (1 = baseline). It scales
	// the draw after the RNG consumes it, so changing the scale mid-run never
	// perturbs the demand process itself — the same churn-independence
	// guarantee SetUp keeps.
	scale float64
}

// NewChurnSim builds the mesh and demand model exactly as Simulate does for
// the same (Members, HeavyFrac, MeshRadius, Seed) and starts every member
// up. Member i maps to mesh node i+1 (node 0 is the gateway).
func NewChurnSim(cfg ChurnConfig, sched Scheduler) (*ChurnSim, error) {
	if cfg.Members < 2 {
		return nil, fmt.Errorf("cn: need at least 2 members, got %d", cfg.Members)
	}
	r := rng.New(cfg.Seed)
	radius := cfg.MeshRadius
	if radius == 0 {
		radius = 0.35
	}
	net, err := BuildMesh(cfg.Members+1, radius, r.Split())
	if err != nil {
		return nil, err
	}
	model := NewDemandModel(cfg.Members, cfg.HeavyFrac)
	demandRNG := r.Split()

	meanBytes := 0.0
	for _, k := range model.Kinds {
		if k == HeavyUser {
			meanBytes += model.HeavyBase
		} else {
			meanBytes += model.LightBase * (1 + model.BurstProb*(model.BurstFactor-1))
		}
	}
	capacity := cfg.CapacityFactor * meanBytes * net.MeanPathETX()

	sched.Reset(cfg.Members)
	up := make([]bool, cfg.Members)
	for i := range up {
		up[i] = true
	}
	return &ChurnSim{
		cfg:       cfg,
		net:       net,
		model:     model,
		sched:     sched,
		capacity:  capacity,
		demandRNG: demandRNG,
		up:        up,
		nUp:       cfg.Members,
		scale:     1,
	}, nil
}

// SetDemandScale sets the absolute demand multiplier applied to every
// member's draw from now on. Idempotent — re-asserting the current scale is
// a no-op — so an external controller (a timeline cascade) can set it every
// epoch. The factor must be finite and in (0, 64].
func (s *ChurnSim) SetDemandScale(f float64) error {
	if !(f > 0) || f > 64 {
		return fmt.Errorf("cn: demand scale %v outside (0, 64]", f)
	}
	s.scale = f
	return nil
}

// DemandScale returns the current demand multiplier.
func (s *ChurnSim) DemandScale() float64 { return s.scale }

// SetUp marks member m up or down. It is strict in both directions — failing
// a down member or repairing an up one is an error, never a no-op — so every
// churn event in a stream is observable and invertible.
func (s *ChurnSim) SetUp(m int, up bool) error {
	if m < 0 || m >= s.cfg.Members {
		return fmt.Errorf("cn: member %d outside [0, %d)", m, s.cfg.Members)
	}
	if s.up[m] == up {
		state := "down"
		if up {
			state = "up"
		}
		return fmt.Errorf("cn: member %d already %s", m, state)
	}
	s.up[m] = up
	if up {
		s.nUp++
	} else {
		s.nUp--
	}
	return nil
}

// Up reports whether member m is currently up.
func (s *ChurnSim) Up(m int) bool { return m >= 0 && m < len(s.up) && s.up[m] }

// EpochStats summarizes one epoch of the churn-aware run. Offered and Served
// are airtime (ETX-weighted bytes) over the up members only.
type EpochStats struct {
	Up      int
	Offered float64
	Served  float64
	// LightSat is the mean granted/demanded over up light users this epoch.
	LightSat float64
}

// Epoch draws one demand sample for every member (down members' draws are
// discarded, keeping the process churn-independent), runs the scheduler over
// the up members' airtime demands, and returns the epoch summary.
func (s *ChurnSim) Epoch() EpochStats {
	bytesDemand, _ := s.model.Sample(s.demandRNG)
	airDemand := make([]float64, s.cfg.Members)
	offered := 0.0
	for i := range bytesDemand {
		if !s.up[i] {
			continue
		}
		airDemand[i] = bytesDemand[i] * s.scale * s.net.PathETX[i+1]
		offered += airDemand[i]
	}
	alloc := s.sched.Allocate(airDemand, s.capacity)

	served := 0.0
	lightSum, lightN := 0.0, 0
	for i := range alloc {
		served += alloc[i]
		if !s.up[i] || s.model.Kinds[i] != LightUser || airDemand[i] <= 0 {
			continue
		}
		lightSum += alloc[i] / airDemand[i]
		lightN++
	}
	st := EpochStats{Up: s.nUp, Offered: offered, Served: served}
	if lightN > 0 {
		st.LightSat = lightSum / float64(lightN)
	}
	return st
}
