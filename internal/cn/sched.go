package cn

import (
	"math"
	"sort"
)

// Scheduler allocates scarce backhaul airtime among members each epoch.
// Allocate receives the members' airtime demands (bytes already scaled by
// their path ETX) and the epoch's airtime capacity, and returns the airtime
// granted to each member. Implementations may keep cross-epoch state (the
// credit scheme does); call Reset to clear it between runs.
type Scheduler interface {
	Name() string
	Allocate(demand []float64, capacity float64) []float64
	Reset(members int)
}

// Proportional is the unmanaged baseline: everyone grabs airtime in
// proportion to offered demand, so heavy users crowd out light ones. This is
// what an unconfigured shared uplink does.
type Proportional struct{}

// Name implements Scheduler.
func (Proportional) Name() string { return "proportional" }

// Reset implements Scheduler (stateless).
func (Proportional) Reset(int) {}

// Allocate implements Scheduler.
func (Proportional) Allocate(demand []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demand))
	total := 0.0
	for _, d := range demand {
		total += d
	}
	if total <= capacity {
		copy(alloc, demand)
		return alloc
	}
	for i, d := range demand {
		alloc[i] = d / total * capacity
	}
	return alloc
}

// MaxMin is the technical-fairness baseline: progressive water-filling that
// satisfies small demands fully and splits the remainder equally. It has no
// memory across epochs.
type MaxMin struct{}

// Name implements Scheduler.
func (MaxMin) Name() string { return "maxmin" }

// Reset implements Scheduler (stateless).
func (MaxMin) Reset(int) {}

// Allocate implements Scheduler.
func (MaxMin) Allocate(demand []float64, capacity float64) []float64 {
	return waterfill(demand, capacity)
}

// waterfill computes the max-min fair allocation with per-user caps equal to
// demand.
func waterfill(caps []float64, capacity float64) []float64 {
	n := len(caps)
	alloc := make([]float64, n)
	if n == 0 || capacity <= 0 {
		return alloc
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return caps[idx[a]] < caps[idx[b]] })
	remaining := capacity
	active := n
	for _, i := range idx {
		share := remaining / float64(active)
		grant := math.Min(caps[i], share)
		alloc[i] = grant
		remaining -= grant
		active--
	}
	return alloc
}

// CPR is the common-pool-resource credit scheme used by community networks
// to manage congestion socially. Every member receives an equal credit
// income each epoch; spending airtime under congestion costs credits, and
// unspent credits roll over up to RolloverCap incomes. Under congestion the
// allocation is max-min fair subject to each member's credit balance, so a
// member who saved credits can burst past the instantaneous fair share —
// the inter-temporal fairness that distinguishes community management from
// per-epoch fair queueing. When the network is uncongested, usage is free
// (the community only enforces during scarcity).
type CPR struct {
	// RolloverCap bounds the balance to this many epochs of income
	// (default 3 when zero).
	RolloverCap float64
	balance     []float64
	income      float64
}

// Name implements Scheduler.
func (c *CPR) Name() string { return "cpr-credits" }

// Reset implements Scheduler: clears balances for a run with the given
// member count.
func (c *CPR) Reset(members int) {
	c.balance = make([]float64, members)
	c.income = 0
}

// Balances returns a copy of the members' current credit balances.
func (c *CPR) Balances() []float64 {
	return append([]float64(nil), c.balance...)
}

// Allocate implements Scheduler.
func (c *CPR) Allocate(demand []float64, capacity float64) []float64 {
	n := len(demand)
	if c.balance == nil || len(c.balance) != n {
		c.Reset(n)
	}
	rollCap := c.RolloverCap
	if rollCap <= 0 {
		rollCap = 3
	}
	// Equal income per epoch; cap balances.
	income := capacity / float64(n)
	c.income = income
	for i := range c.balance {
		c.balance[i] += income
		if c.balance[i] > rollCap*income {
			c.balance[i] = rollCap * income
		}
	}

	total := 0.0
	for _, d := range demand {
		total += d
	}
	alloc := make([]float64, n)
	if total <= capacity {
		// Uncongested: grant everything, charge nothing.
		copy(alloc, demand)
		return alloc
	}
	// Congested: divide capacity in proportion to credit balances, capped
	// by demand (weighted water-fill). A member who saved credits holds a
	// larger weight and can burst past the instantaneous equal share.
	alloc = weightedFill(demand, c.balance, capacity)
	for i := range alloc {
		c.balance[i] -= math.Min(alloc[i], c.balance[i])
	}
	return alloc
}

// weightedFill splits capacity in proportion to weights, capping each
// member at its demand and redistributing the excess among unsaturated
// members until the capacity or all demand is exhausted. Zero total weight
// among unsaturated members falls back to equal weights.
func weightedFill(demand, weight []float64, capacity float64) []float64 {
	n := len(demand)
	alloc := make([]float64, n)
	remaining := capacity
	saturated := make([]bool, n)
	for iter := 0; iter < n+1 && remaining > 1e-12; iter++ {
		var w float64
		activeAny := false
		for i := 0; i < n; i++ {
			if !saturated[i] && demand[i]-alloc[i] > 1e-12 {
				w += weight[i]
				activeAny = true
			}
		}
		if !activeAny {
			break
		}
		equal := w <= 1e-12
		var activeN float64
		if equal {
			for i := 0; i < n; i++ {
				if !saturated[i] && demand[i]-alloc[i] > 1e-12 {
					activeN++
				}
			}
		}
		capped := false
		grantTotal := 0.0
		for i := 0; i < n; i++ {
			if saturated[i] || demand[i]-alloc[i] <= 1e-12 {
				continue
			}
			var share float64
			if equal {
				share = remaining / activeN
			} else {
				share = remaining * weight[i] / w
			}
			room := demand[i] - alloc[i]
			if share >= room {
				share = room
				saturated[i] = true
				capped = true
			}
			alloc[i] += share
			grantTotal += share
		}
		remaining -= grantTotal
		if !capped {
			break
		}
	}
	return alloc
}
