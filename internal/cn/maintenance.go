package cn

import (
	"repro/internal/rng"
)

// MaintenanceConfig models the volunteer-labour side of a community network:
// nodes fail stochastically and volunteers repair them. The community-
// network literature the paper cites identifies maintenance capacity, not
// equipment, as the binding constraint on sustainability.
type MaintenanceConfig struct {
	Nodes int
	// FailProb is each up node's per-epoch failure probability.
	FailProb float64
	// Volunteers is the number of active maintainers; each can repair one
	// node per epoch.
	Volunteers int
	// TravelLimit caps how many epochs a repair may be deferred before the
	// member churns (their node is abandoned). 0 disables churn.
	TravelLimit int
	Epochs      int
	Seed        uint64
}

// MaintenanceResult summarizes a maintenance run.
type MaintenanceResult struct {
	// Availability is the mean fraction of nodes up across epochs.
	Availability float64
	// MeanRepairDelay is the average epochs a failed node waited.
	MeanRepairDelay float64
	// Abandoned counts nodes lost to churn (TravelLimit exceeded).
	Abandoned int
}

// SimulateMaintenance runs the failure/repair process. Repairs are FIFO:
// the longest-failed node is fixed first.
func SimulateMaintenance(cfg MaintenanceConfig) MaintenanceResult {
	r := rng.New(cfg.Seed)
	const (
		up = iota
		down
		gone
	)
	state := make([]int, cfg.Nodes)
	downSince := make([]int, cfg.Nodes)

	var upSum float64
	var delays []float64
	abandoned := 0

	for e := 0; e < cfg.Epochs; e++ {
		// Failures.
		for i := range state {
			if state[i] == up && r.Bool(cfg.FailProb) {
				state[i] = down
				downSince[i] = e
			}
		}
		// Churn.
		if cfg.TravelLimit > 0 {
			for i := range state {
				if state[i] == down && e-downSince[i] >= cfg.TravelLimit {
					state[i] = gone
					abandoned++
				}
			}
		}
		// Repairs: volunteers fix the longest-down nodes first.
		for v := 0; v < cfg.Volunteers; v++ {
			best, bestSince := -1, e+1
			for i := range state {
				if state[i] == down && downSince[i] < bestSince {
					best, bestSince = i, downSince[i]
				}
			}
			if best == -1 {
				break
			}
			state[best] = up
			delays = append(delays, float64(e-downSince[best]))
		}
		upCount := 0
		for _, s := range state {
			if s == up {
				upCount++
			}
		}
		upSum += float64(upCount) / float64(cfg.Nodes)
	}

	res := MaintenanceResult{Abandoned: abandoned}
	if cfg.Epochs > 0 {
		res.Availability = upSum / float64(cfg.Epochs)
	}
	if len(delays) > 0 {
		sum := 0.0
		for _, d := range delays {
			sum += d
		}
		res.MeanRepairDelay = sum / float64(len(delays))
	}
	return res
}
