package cn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestBuildMeshConnected(t *testing.T) {
	net, err := BuildMesh(30, 0.35, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if net.G.N() != 30 {
		t.Fatalf("nodes = %d", net.G.N())
	}
	for i := 0; i < 30; i++ {
		if math.IsInf(net.PathETX[i], 1) {
			t.Errorf("node %d unreachable from gateway", i)
		}
	}
	if net.PathETX[net.Gateway] != 0 {
		t.Errorf("gateway ETX = %g", net.PathETX[net.Gateway])
	}
}

func TestBuildMeshTooSmall(t *testing.T) {
	if _, err := BuildMesh(1, 0.3, rng.New(1)); err == nil {
		t.Error("1-node mesh accepted")
	}
}

func TestBuildMeshDisconnectedFails(t *testing.T) {
	// Radius so small no 40-node placement connects.
	if _, err := BuildMesh(40, 0.01, rng.New(1)); err == nil {
		t.Error("expected ErrDisconnected for tiny radius")
	}
}

func TestRouteToGateway(t *testing.T) {
	net, err := BuildMesh(25, 0.4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 25; i++ {
		p := net.RouteToGateway(i)
		if len(p) < 2 {
			t.Fatalf("node %d path = %v", i, p)
		}
		if p[0] != i || p[len(p)-1] != net.Gateway {
			t.Errorf("path endpoints wrong: %v", p)
		}
		if net.HopsToGateway(i) != len(p)-1 {
			t.Errorf("hops mismatch for %d", i)
		}
	}
	if net.RouteToGateway(net.Gateway) != nil {
		t.Error("gateway route should be nil")
	}
}

func TestMeshETXAtLeastHopCount(t *testing.T) {
	net, err := BuildMesh(25, 0.4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 25; i++ {
		if net.PathETX[i] < float64(net.HopsToGateway(i))-1e-9 {
			t.Errorf("node %d: ETX %g below hop count %d", i, net.PathETX[i], net.HopsToGateway(i))
		}
	}
	if net.MeanPathETX() <= 0 {
		t.Error("mean path ETX should be positive")
	}
}

func TestProportionalUncongested(t *testing.T) {
	alloc := Proportional{}.Allocate([]float64{1, 2, 3}, 10)
	for i, want := range []float64{1, 2, 3} {
		if alloc[i] != want {
			t.Errorf("alloc[%d] = %g, want %g", i, alloc[i], want)
		}
	}
}

func TestProportionalCongested(t *testing.T) {
	alloc := Proportional{}.Allocate([]float64{1, 3}, 2)
	if math.Abs(alloc[0]-0.5) > 1e-9 || math.Abs(alloc[1]-1.5) > 1e-9 {
		t.Errorf("alloc = %v", alloc)
	}
}

func TestMaxMinProtectsSmallDemands(t *testing.T) {
	alloc := MaxMin{}.Allocate([]float64{1, 100}, 10)
	if alloc[0] != 1 {
		t.Errorf("small demand got %g, want 1", alloc[0])
	}
	if math.Abs(alloc[1]-9) > 1e-9 {
		t.Errorf("large demand got %g, want 9", alloc[1])
	}
}

func TestMaxMinEqualSplit(t *testing.T) {
	alloc := MaxMin{}.Allocate([]float64{50, 50, 50}, 30)
	for _, a := range alloc {
		if math.Abs(a-10) > 1e-9 {
			t.Errorf("alloc = %v, want equal 10s", alloc)
		}
	}
}

func TestWaterfillConservation(t *testing.T) {
	demand := []float64{5, 1, 7, 2}
	alloc := waterfill(demand, 8)
	sum := 0.0
	for i, a := range alloc {
		if a < 0 || a > demand[i]+1e-9 {
			t.Errorf("alloc[%d] = %g out of [0, %g]", i, a, demand[i])
		}
		sum += a
	}
	if math.Abs(sum-8) > 1e-9 {
		t.Errorf("allocated %g, want 8", sum)
	}
}

func TestCPRUncongestedFree(t *testing.T) {
	c := &CPR{}
	c.Reset(2)
	alloc := c.Allocate([]float64{1, 2}, 10)
	if alloc[0] != 1 || alloc[1] != 2 {
		t.Errorf("uncongested alloc = %v", alloc)
	}
	// Balances should be untouched by uncongested epochs (income only).
	b := c.Balances()
	if b[0] != 5 || b[1] != 5 {
		t.Errorf("balances = %v, want [5 5]", b)
	}
}

func TestCPRSaverCanBurst(t *testing.T) {
	c := &CPR{RolloverCap: 3}
	c.Reset(2)
	// Epoch 1-2: member 0 idle (saves credits), member 1 hogs.
	for e := 0; e < 2; e++ {
		c.Allocate([]float64{0, 100}, 10)
	}
	// Epoch 3: member 0 bursts. Its balance (15, capped) beats member 1's.
	alloc := c.Allocate([]float64{12, 100}, 10)
	if alloc[0] <= alloc[1] {
		t.Errorf("saver got %g, hog got %g; saver should win", alloc[0], alloc[1])
	}
	if alloc[0] < 7 {
		t.Errorf("saver burst allocation %g too small", alloc[0])
	}
}

func TestCPRNeverExceedsCapacity(t *testing.T) {
	c := &CPR{}
	c.Reset(3)
	r := rng.New(9)
	for e := 0; e < 50; e++ {
		demand := []float64{r.Pareto(1, 1.2), r.Pareto(1, 1.2), r.Pareto(1, 1.2)}
		alloc := c.Allocate(demand, 4)
		sum := 0.0
		for i, a := range alloc {
			if a > demand[i]+1e-9 || a < 0 {
				t.Fatalf("epoch %d: alloc %g vs demand %g", e, a, demand[i])
			}
			sum += a
		}
		if sum > 4+1e-9 {
			t.Fatalf("epoch %d: allocated %g > capacity", e, sum)
		}
	}
}

func TestCPRLeftoverRedistributed(t *testing.T) {
	c := &CPR{RolloverCap: 1}
	c.Reset(2)
	// Congested epoch where member 0's balance caps it below fair share:
	// income=5 each, balances 5/5. demand 20/20, capacity 10: both capped
	// at 5+5=10 → full utilization.
	alloc := c.Allocate([]float64{20, 20}, 10)
	if math.Abs(alloc[0]+alloc[1]-10) > 1e-9 {
		t.Errorf("capacity wasted: %v", alloc)
	}
}

func TestSimulateShapesE3(t *testing.T) {
	cfg := SimConfig{
		Members: 30, HeavyFrac: 0.2, CapacityFactor: 0.6,
		Epochs: 300, Seed: 42,
	}
	results, err := CompareSchedulers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prop, maxmin, cpr := results[0], results[1], results[2]

	if prop.Scheduler != "proportional" || maxmin.Scheduler != "maxmin" || cpr.Scheduler != "cpr-credits" {
		t.Fatalf("scheduler order wrong: %v %v %v", prop.Scheduler, maxmin.Scheduler, cpr.Scheduler)
	}
	// Claim shape (paper §4 [28]): managed sharing protects light users'
	// small demands from heavy hitters, and the credit scheme additionally
	// beats per-epoch fair queueing on light users' burst satisfaction
	// (inter-temporal fairness).
	if !(maxmin.LightProtected > prop.LightProtected) {
		t.Errorf("maxmin light protection %g should beat proportional %g", maxmin.LightProtected, prop.LightProtected)
	}
	if !(cpr.LightProtected > prop.LightProtected) {
		t.Errorf("cpr light protection %g should beat proportional %g", cpr.LightProtected, prop.LightProtected)
	}
	if maxmin.LightProtected < 0.95 || cpr.LightProtected < 0.95 {
		t.Errorf("managed schemes should nearly always protect light users: maxmin %g cpr %g",
			maxmin.LightProtected, cpr.LightProtected)
	}
	if !(cpr.BurstSatisfaction > maxmin.BurstSatisfaction) {
		t.Errorf("cpr burst satisfaction %g should beat maxmin %g", cpr.BurstSatisfaction, maxmin.BurstSatisfaction)
	}
	if !(cpr.LightSatisfaction > prop.LightSatisfaction) {
		t.Errorf("cpr light satisfaction %g should beat proportional %g", cpr.LightSatisfaction, prop.LightSatisfaction)
	}
	if prop.CongestedEpochs == 0 {
		t.Error("scenario should be congested")
	}
	for _, res := range results {
		if res.Utilization < 0.5 || res.Utilization > 1+1e-9 {
			t.Errorf("%s utilization = %g out of range", res.Scheduler, res.Utilization)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{Members: 20, HeavyFrac: 0.25, CapacityFactor: 0.7, Epochs: 100, Seed: 5}
	a, err := Simulate(cfg, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{Members: 1, Epochs: 10}, MaxMin{}); err == nil {
		t.Error("1-member sim accepted")
	}
}

func TestDemandModelKinds(t *testing.T) {
	m := NewDemandModel(10, 0.3)
	heavy := 0
	for _, k := range m.Kinds {
		if k == HeavyUser {
			heavy++
		}
	}
	if heavy != 3 {
		t.Errorf("heavy users = %d, want 3", heavy)
	}
	if LightUser.String() != "light" || HeavyUser.String() != "heavy" {
		t.Error("kind strings wrong")
	}
}

func TestDemandModelHeavyExceedsLight(t *testing.T) {
	m := NewDemandModel(40, 0.5)
	r := rng.New(17)
	var lightSum, heavySum float64
	var lightN, heavyN int
	for e := 0; e < 200; e++ {
		d, _ := m.Sample(r)
		for i, k := range m.Kinds {
			if k == HeavyUser {
				heavySum += d[i]
				heavyN++
			} else {
				lightSum += d[i]
				lightN++
			}
		}
	}
	if heavySum/float64(heavyN) < 3*lightSum/float64(lightN) {
		t.Error("heavy users should demand much more than light users on average")
	}
}

func TestMaintenanceMoreVolunteersMoreAvailability(t *testing.T) {
	base := MaintenanceConfig{Nodes: 50, FailProb: 0.05, Epochs: 400, Seed: 21}
	few := base
	few.Volunteers = 1
	many := base
	many.Volunteers = 5
	rFew := SimulateMaintenance(few)
	rMany := SimulateMaintenance(many)
	if !(rMany.Availability > rFew.Availability) {
		t.Errorf("availability: %g volunteers=5 vs %g volunteers=1", rMany.Availability, rFew.Availability)
	}
	if !(rMany.MeanRepairDelay < rFew.MeanRepairDelay) {
		t.Errorf("repair delay: %g vs %g", rMany.MeanRepairDelay, rFew.MeanRepairDelay)
	}
}

func TestMaintenanceChurn(t *testing.T) {
	cfg := MaintenanceConfig{
		Nodes: 30, FailProb: 0.2, Volunteers: 1, TravelLimit: 3,
		Epochs: 200, Seed: 8,
	}
	res := SimulateMaintenance(cfg)
	if res.Abandoned == 0 {
		t.Error("under-maintained network should churn members")
	}
	noChurn := cfg
	noChurn.TravelLimit = 0
	if SimulateMaintenance(noChurn).Abandoned != 0 {
		t.Error("TravelLimit=0 should disable churn")
	}
}

func TestJainOfEqualSatisfactions(t *testing.T) {
	// Sanity link to the stats package used in scoring.
	if stats.Jain([]float64{0.5, 0.5, 0.5}) != 1 {
		t.Error("stats.Jain miswired")
	}
}

func BenchmarkSimulateCPR(b *testing.B) {
	cfg := SimConfig{Members: 30, HeavyFrac: 0.2, CapacityFactor: 0.6, Epochs: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, &CPR{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaintenanceZeroVolunteersCollapses(t *testing.T) {
	res := SimulateMaintenance(MaintenanceConfig{
		Nodes: 40, FailProb: 0.05, Volunteers: 0, Epochs: 400, Seed: 13,
	})
	if res.Availability > 0.3 {
		t.Errorf("availability without volunteers = %g, want collapse", res.Availability)
	}
}

func TestMaintenanceNoFailuresPerfect(t *testing.T) {
	res := SimulateMaintenance(MaintenanceConfig{
		Nodes: 20, FailProb: 0, Volunteers: 1, Epochs: 100, Seed: 1,
	})
	if res.Availability != 1 || res.Abandoned != 0 {
		t.Errorf("failure-free network degraded: %+v", res)
	}
}
