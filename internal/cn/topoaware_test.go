package cn

import (
	"testing"
)

func TestSimulateTopologyAwareValidation(t *testing.T) {
	if _, err := SimulateTopologyAware(SimConfig{Members: 2, Epochs: 5}, MaxMin{}); err == nil {
		t.Error("tiny config accepted")
	}
}

func TestTopologyAwareFarMembersSufferEverywhere(t *testing.T) {
	cfg := SimConfig{
		Members: 30, HeavyFrac: 0.2, CapacityFactor: 0.6,
		Epochs: 200, Seed: 21,
	}
	for _, sched := range []Scheduler{Proportional{}, MaxMin{}, &CPR{}} {
		res, err := SimulateTopologyAware(cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.NearSat <= 0 || res.FarSat <= 0 {
			t.Fatalf("%s: degenerate satisfactions %+v", res.Scheduler, res)
		}
		// The structural claim: no gateway discipline closes the near/far
		// gap, because the cap is the path, not the policy.
		if !(res.Gap > 1.05) {
			t.Errorf("%s: near/far gap %g should persist under topology caps", res.Scheduler, res.Gap)
		}
	}
}

func TestTopologyAwareDeterministic(t *testing.T) {
	cfg := SimConfig{Members: 20, HeavyFrac: 0.2, CapacityFactor: 0.7, Epochs: 100, Seed: 4}
	a, err := SimulateTopologyAware(cfg, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTopologyAware(cfg, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}
