package cn

import (
	"context"

	"repro/internal/experiment"
	"repro/internal/parallel"
)

// Scenario registrations for the community-network experiments: E3
// (congestion management as a common-pool resource) plus the auxiliary
// cnsim studies — the volunteer-maintenance sweep and the topology-aware
// scheduler comparison — which are resolvable by ID but stay out of the
// standard report.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E3",
		Title: "Community congestion management",
		Claim: "CPR-style credit scheduling protects light users through congestion while keeping utilization on par with proportional and max-min baselines.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "members", Kind: experiment.Int, Default: 30, Doc: "community members sharing the uplink"},
			{Name: "heavy-frac", Kind: experiment.Float, Default: 0.2, Doc: "fraction of heavy users"},
			{Name: "capacity-factor", Kind: experiment.Float, Default: 0.6, Doc: "capacity / mean offered load"},
			{Name: "epochs", Kind: experiment.Int, Default: 300, Doc: "epochs to simulate"},
		},
		Run: runE3,
	})
	experiment.Register(experiment.Def{
		ID:    "cn-maintenance",
		Title: "Volunteer maintenance sweep",
		Claim: "Mesh availability saturates with a handful of volunteers; below that, repair delay and member churn explode.",
		Seed:  42,
		Aux:   true,
		Params: experiment.Schema{
			{Name: "nodes", Kind: experiment.Int, Default: 50, Doc: "mesh nodes"},
			{Name: "failprob", Kind: experiment.Float, Default: 0.05, Doc: "per-node failure probability per epoch"},
			{Name: "epochs", Kind: experiment.Int, Default: 400, Doc: "epochs to simulate"},
			{Name: "max-volunteers", Kind: experiment.Int, Default: 6, Doc: "sweep volunteers 1..N"},
			{Name: "travel-limit", Kind: experiment.Int, Default: 0, Doc: "epochs before an unrepaired member churns (0 = never)"},
		},
		Run: runMaintenance,
	})
	experiment.Register(experiment.Def{
		ID:    "cn-topology",
		Title: "Topology-aware scheduling",
		Claim: "Hop-distance inequity persists under fair schedulers: far members see systematically lower max-min rates than near ones.",
		Seed:  42,
		Aux:   true,
		Params: experiment.Schema{
			{Name: "members", Kind: experiment.Int, Default: 30, Doc: "community members"},
			{Name: "heavy-frac", Kind: experiment.Float, Default: 0.2, Doc: "fraction of heavy users"},
			{Name: "capacity-factor", Kind: experiment.Float, Default: 0.6, Doc: "capacity / mean offered load"},
			{Name: "epochs", Kind: experiment.Int, Default: 300, Doc: "epochs to simulate"},
			{Name: "radius", Kind: experiment.Float, Default: 0.35, Doc: "gateway placement radius for the hop-quartile table"},
		},
		Run: runTopology,
	})
}

// runE3 compares the three schedulers on one congestion configuration.
func runE3(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	rows, err := CompareSchedulers(SimConfig{
		Members:        p.Int("members"),
		HeavyFrac:      p.Float("heavy-frac"),
		CapacityFactor: p.Float("capacity-factor"),
		Epochs:         p.Int("epochs"),
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E3", "Community congestion management",
		"scheduler", "light-protected", "light-sat", "burst-sat", "heavy-sat", "utilization")
	for _, r := range rows {
		t.AddRow(experiment.S(r.Scheduler), experiment.F3(r.LightProtected), experiment.F3(r.LightSatisfaction),
			experiment.F3(r.BurstSatisfaction), experiment.F3(r.HeavySatisfaction), experiment.F3(r.Utilization))
	}
	return res, nil
}

// runMaintenance sweeps volunteer counts; each count is an independent
// simulation seeded from the config alone, so the sweep fans out and rows
// land at their index.
func runMaintenance(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	n := p.Int("max-volunteers")
	results, err := parallel.Map(ctx, n, experiment.WorkersFrom(ctx),
		func(i int) (MaintenanceResult, error) {
			return SimulateMaintenance(MaintenanceConfig{
				Nodes:       p.Int("nodes"),
				FailProb:    p.Float("failprob"),
				Volunteers:  i + 1,
				TravelLimit: p.Int("travel-limit"),
				Epochs:      p.Int("epochs"),
				Seed:        seed,
			}), nil
		})
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("cn-maintenance", "Volunteer maintenance sweep",
		"volunteers", "availability", "mean-repair-delay", "abandoned")
	for i, r := range results {
		t.AddRow(experiment.I(i+1), experiment.F3(r.Availability),
			experiment.FP(r.MeanRepairDelay, 2), experiment.I(r.Abandoned))
	}
	return res, nil
}

// runTopology renders the topology-aware scheduler comparison and the
// hop-quartile rate table.
func runTopology(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	cfg := SimConfig{
		Members:        p.Int("members"),
		HeavyFrac:      p.Float("heavy-frac"),
		CapacityFactor: p.Float("capacity-factor"),
		Epochs:         p.Int("epochs"),
		Seed:           seed,
	}
	res := &experiment.Result{}
	t := res.AddTable("cn-topology", "Topology-aware scheduler comparison",
		"scheduler", "near-sat", "far-sat", "gap")
	for _, s := range []Scheduler{Proportional{}, MaxMin{}, &CPR{}} {
		r, err := SimulateTopologyAware(cfg, s)
		if err != nil {
			return nil, err
		}
		t.AddRow(experiment.S(r.Scheduler), experiment.F3(r.NearSat), experiment.F3(r.FarSat),
			experiment.FP(r.Gap, 2))
	}
	rows, err := TopoGapExperiment(p.Int("members"), p.Float("radius"), 1, seed)
	if err != nil {
		return nil, err
	}
	tb := res.AddTable("cn-topology-quartiles", "Max-min rate by hop quartile",
		"placement", "quartile", "mean-hops", "mean-rate")
	for _, r := range rows {
		tb.AddRow(experiment.S(r.Placement), experiment.I(r.Quartile),
			experiment.FP(r.MeanHops, 2), experiment.FP(r.MeanRate, 4))
	}
	return res, nil
}
