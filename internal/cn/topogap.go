package cn

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TopoGapRow summarizes achievable max-min rates for one hop-distance
// quartile of the mesh under one gateway placement.
type TopoGapRow struct {
	Placement string // "default" or "optimized"
	Quartile  int    // 1 = nearest members, 4 = farthest
	MeanRate  float64
	MeanHops  float64
}

// TopoGapExperiment quantifies the layer the scheduler experiments cannot
// see: even a perfectly fair gateway discipline can only deliver what each
// member's multi-hop path supports. It computes max-min rates by hop
// quartile under the arbitrary (node-0) gateway and under the 1-median
// placement, showing that placement — a community decision, not a protocol
// — is what narrows the near/far gap.
func TopoGapExperiment(members int, radius float64, linkCapacity float64, seed uint64) ([]TopoGapRow, error) {
	if members < 8 {
		return nil, fmt.Errorf("cn: topology gap needs >= 8 members")
	}
	var rows []TopoGapRow
	for _, placement := range []string{"default", "optimized"} {
		var net *Network
		var err error
		if placement == "default" {
			net, err = BuildMesh(members, radius, rng.New(seed))
		} else {
			net, err = BuildOptimizedMesh(members, radius, rng.New(seed))
		}
		if err != nil {
			return nil, err
		}
		rates, err := net.MaxMinRates(linkCapacity)
		if err != nil {
			return nil, err
		}
		type mh struct {
			hops int
			rate float64
		}
		var ms []mh
		for i := 0; i < net.G.N(); i++ {
			if i == net.Gateway {
				continue
			}
			ms = append(ms, mh{hops: net.HopsToGateway(i), rate: rates[i]})
		}
		sort.Slice(ms, func(a, b int) bool { return ms[a].hops < ms[b].hops })
		per := (len(ms) + 3) / 4
		for q := 0; q < 4; q++ {
			lo := q * per
			hi := lo + per
			if lo >= len(ms) {
				break
			}
			if hi > len(ms) {
				hi = len(ms)
			}
			var rs, hs []float64
			for _, m := range ms[lo:hi] {
				rs = append(rs, m.rate)
				hs = append(hs, float64(m.hops))
			}
			rows = append(rows, TopoGapRow{
				Placement: placement,
				Quartile:  q + 1,
				MeanRate:  stats.Mean(rs),
				MeanHops:  stats.Mean(hs),
			})
		}
	}
	return rows, nil
}

// NearFarGap returns, for one placement's rows, the ratio of the nearest
// quartile's mean rate to the farthest quartile's (>= 1; 1 = no gap).
func NearFarGap(rows []TopoGapRow, placement string) float64 {
	var near, far float64
	for _, r := range rows {
		if r.Placement != placement {
			continue
		}
		switch r.Quartile {
		case 1:
			near = r.MeanRate
		case 4:
			far = r.MeanRate
		}
	}
	if far == 0 {
		return 0
	}
	return near / far
}
