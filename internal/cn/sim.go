package cn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// MemberKind distinguishes the two behavioural classes in the congestion
// experiment: light users with occasional bursts, and heavy users with
// sustained high demand.
type MemberKind int

// Member kinds.
const (
	LightUser MemberKind = iota
	HeavyUser
)

// String returns the kind name.
func (k MemberKind) String() string {
	if k == HeavyUser {
		return "heavy"
	}
	return "light"
}

// DemandModel generates per-epoch byte demands for each member.
type DemandModel struct {
	// Kinds assigns each member a behaviour class.
	Kinds []MemberKind
	// LightBase is the mean of a light user's everyday demand.
	LightBase float64
	// BurstProb is the chance a light user bursts in an epoch.
	BurstProb float64
	// BurstFactor multiplies LightBase during a burst.
	BurstFactor float64
	// HeavyBase is the mean sustained demand of a heavy user.
	HeavyBase float64
}

// NewDemandModel assigns the first n*heavyFrac members HeavyUser and the
// rest LightUser, with the standard parameters used by experiment E3.
func NewDemandModel(n int, heavyFrac float64) DemandModel {
	kinds := make([]MemberKind, n)
	heavy := int(float64(n) * heavyFrac)
	for i := 0; i < heavy; i++ {
		kinds[i] = HeavyUser
	}
	return DemandModel{
		Kinds:       kinds,
		LightBase:   1,
		BurstProb:   0.05,
		BurstFactor: 20,
		HeavyBase:   15,
	}
}

// Sample returns one epoch of byte demands and a parallel slice marking
// which light users burst this epoch.
func (m DemandModel) Sample(r *rng.Rand) (demand []float64, burst []bool) {
	demand = make([]float64, len(m.Kinds))
	burst = make([]bool, len(m.Kinds))
	for i, k := range m.Kinds {
		switch k {
		case HeavyUser:
			demand[i] = m.HeavyBase * (0.5 + r.Float64())
		default:
			demand[i] = m.LightBase * (0.5 + r.Float64())
			if r.Bool(m.BurstProb) {
				demand[i] *= m.BurstFactor
				burst[i] = true
			}
		}
	}
	return demand, burst
}

// SimConfig parameterizes a congestion-management run.
type SimConfig struct {
	Members   int
	HeavyFrac float64
	// CapacityFactor scales the gateway capacity relative to mean offered
	// airtime load; < 1 means chronic congestion.
	CapacityFactor float64
	Epochs         int
	MeshRadius     float64
	Seed           uint64
}

// SimResult summarizes one run of one scheduler.
type SimResult struct {
	Scheduler string
	// LightProtected is the fraction of light-user observations during
	// congested epochs whose demand was (essentially) fully served — the
	// "small demands are protected from heavy hitters" guarantee that
	// distinguishes managed sharing from an unmanaged uplink.
	LightProtected float64
	// LightSatisfaction is light users' mean granted/demanded.
	LightSatisfaction float64
	// HeavySatisfaction is heavy users' mean granted/demanded.
	HeavySatisfaction float64
	// BurstSatisfaction is light users' mean granted/demanded during their
	// burst epochs only — the inter-temporal fairness measure where the
	// credit scheme should shine.
	BurstSatisfaction float64
	// Utilization is allocated/capacity averaged over epochs.
	Utilization float64
	// CongestedEpochs counts epochs where offered load exceeded capacity.
	CongestedEpochs int
}

// Simulate runs the demand process through sched over a freshly built mesh
// and returns the summary. Member 0 of the behavioural model maps to mesh
// node 1 (node 0 is the gateway).
func Simulate(cfg SimConfig, sched Scheduler) (SimResult, error) {
	if cfg.Members < 2 {
		return SimResult{}, fmt.Errorf("cn: need at least 2 members, got %d", cfg.Members)
	}
	r := rng.New(cfg.Seed)
	radius := cfg.MeshRadius
	if radius == 0 {
		radius = 0.35
	}
	net, err := BuildMesh(cfg.Members+1, radius, r.Split())
	if err != nil {
		return SimResult{}, err
	}
	model := NewDemandModel(cfg.Members, cfg.HeavyFrac)
	demandRNG := r.Split()

	// Estimate mean offered airtime to size capacity.
	meanBytes := 0.0
	for _, k := range model.Kinds {
		if k == HeavyUser {
			meanBytes += model.HeavyBase
		} else {
			meanBytes += model.LightBase * (1 + model.BurstProb*(model.BurstFactor-1))
		}
	}
	meanETX := net.MeanPathETX()
	capacity := cfg.CapacityFactor * meanBytes * meanETX

	sched.Reset(cfg.Members)
	var (
		lights, heavies, bursts []float64
		utils                   []float64
		congested               int
		lightObs, lightFull     int
	)
	for e := 0; e < cfg.Epochs; e++ {
		bytesDemand, burst := model.Sample(demandRNG)
		airDemand := make([]float64, cfg.Members)
		offered := 0.0
		for i := range bytesDemand {
			airDemand[i] = bytesDemand[i] * net.PathETX[i+1]
			offered += airDemand[i]
		}
		alloc := sched.Allocate(airDemand, capacity)

		granted := 0.0
		sat := make([]float64, cfg.Members)
		for i := range alloc {
			granted += alloc[i]
			if airDemand[i] > 0 {
				sat[i] = alloc[i] / airDemand[i]
			}
		}
		utils = append(utils, granted/capacity)
		epochCongested := offered > capacity
		if epochCongested {
			congested++
		}
		for i, k := range model.Kinds {
			switch {
			case k == HeavyUser:
				heavies = append(heavies, sat[i])
			case burst[i]:
				bursts = append(bursts, sat[i])
				lights = append(lights, sat[i])
			default:
				lights = append(lights, sat[i])
			}
			if k == LightUser && epochCongested && !burst[i] {
				lightObs++
				if sat[i] >= 0.99 {
					lightFull++
				}
			}
		}
	}
	protected := 0.0
	if lightObs > 0 {
		protected = float64(lightFull) / float64(lightObs)
	}
	return SimResult{
		Scheduler:         sched.Name(),
		LightProtected:    protected,
		LightSatisfaction: stats.Mean(lights),
		HeavySatisfaction: stats.Mean(heavies),
		BurstSatisfaction: stats.Mean(bursts),
		Utilization:       stats.Mean(utils),
		CongestedEpochs:   congested,
	}, nil
}

// CompareSchedulers runs the same configuration through the unmanaged,
// max-min, and CPR disciplines (same seed, hence identical demand and mesh)
// and returns the three results in that order.
func CompareSchedulers(cfg SimConfig) ([]SimResult, error) {
	scheds := []Scheduler{Proportional{}, MaxMin{}, &CPR{}}
	out := make([]SimResult, 0, len(scheds))
	for _, s := range scheds {
		res, err := Simulate(cfg, s)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
