package cn

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// BestGateway evaluates every node as the backhaul site and returns the one
// minimizing the mean ETX cost to all other nodes (the 1-median), together
// with that mean. Community networks place their backhaul where a building
// with wired service happens to volunteer; this computes how much better a
// deliberate choice could do.
func BestGateway(g *graph.Graph) (node int, meanETX float64) {
	best, bestMean := -1, math.Inf(1)
	for cand := 0; cand < g.N(); cand++ {
		dist, _ := g.Dijkstra(cand)
		m, ok := meanFinite(dist, cand)
		if !ok {
			continue
		}
		if m < bestMean {
			best, bestMean = cand, m
		}
	}
	return best, bestMean
}

// BestSecondGateway, given an existing gateway, returns the node whose
// addition as a second backhaul minimizes the mean of min(d(first), d(c))
// over all nodes, with that mean. It answers the community's most common
// upgrade question: where should the second uplink go?
func BestSecondGateway(g *graph.Graph, first int) (node int, meanETX float64) {
	base, _ := g.Dijkstra(first)
	best, bestMean := -1, math.Inf(1)
	for cand := 0; cand < g.N(); cand++ {
		if cand == first {
			continue
		}
		dist, _ := g.Dijkstra(cand)
		var sum float64
		cnt := 0
		for v := 0; v < g.N(); v++ {
			if v == first || v == cand {
				continue
			}
			d := math.Min(base[v], dist[v])
			if math.IsInf(d, 1) {
				continue
			}
			sum += d
			cnt++
		}
		if cnt == 0 {
			continue
		}
		m := sum / float64(cnt)
		if m < bestMean {
			best, bestMean = cand, m
		}
	}
	return best, bestMean
}

func meanFinite(dist []float64, skip int) (float64, bool) {
	var sum float64
	cnt := 0
	for v, d := range dist {
		if v == skip || math.IsInf(d, 1) {
			continue
		}
		sum += d
		cnt++
	}
	if cnt == 0 {
		return 0, false
	}
	return sum / float64(cnt), true
}

// BuildOptimizedMesh builds a connected mesh like BuildMesh and then
// re-roots it at the 1-median gateway instead of node 0.
func BuildOptimizedMesh(n int, radius float64, r *rng.Rand) (*Network, error) {
	net, err := BuildMesh(n, radius, r)
	if err != nil {
		return nil, err
	}
	best, _ := BestGateway(net.G)
	if best == net.Gateway {
		return net, nil
	}
	dist, prev := net.G.Dijkstra(best)
	net.Gateway = best
	net.PathETX = dist
	net.parent = prev
	return net, nil
}
