package cn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TopoAwareResult extends the scheduler comparison with the topology layer:
// each member's granted airtime is additionally capped by what its multi-hop
// path can carry (the max-min rate from the airtime model), and satisfaction
// is reported separately for the near and far halves of the mesh.
type TopoAwareResult struct {
	Scheduler string
	NearSat   float64 // mean satisfaction, nearest half by hops
	FarSat    float64 // mean satisfaction, farthest half
	// Gap is NearSat/FarSat (>= 1 when far members do worse).
	Gap float64
}

// SimulateTopologyAware runs the same demand process as Simulate but clamps
// every member's allocation at its topology-supported rate (scaled so the
// mesh's aggregate matches the gateway capacity). It exposes the inequality
// the gateway-only model hides: even a fair scheduler cannot serve a member
// past what its path supports.
func SimulateTopologyAware(cfg SimConfig, sched Scheduler) (TopoAwareResult, error) {
	if cfg.Members < 4 {
		return TopoAwareResult{}, fmt.Errorf("cn: topology-aware sim needs >= 4 members")
	}
	r := rng.New(cfg.Seed)
	radius := cfg.MeshRadius
	if radius == 0 {
		radius = 0.35
	}
	net, err := BuildMesh(cfg.Members+1, radius, r.Split())
	if err != nil {
		return TopoAwareResult{}, err
	}
	model := NewDemandModel(cfg.Members, cfg.HeavyFrac)
	demandRNG := r.Split()

	meanBytes := 0.0
	for _, k := range model.Kinds {
		if k == HeavyUser {
			meanBytes += model.HeavyBase
		} else {
			meanBytes += model.LightBase * (1 + model.BurstProb*(model.BurstFactor-1))
		}
	}
	meanETX := net.MeanPathETX()
	capacity := cfg.CapacityFactor * meanBytes * meanETX

	// Topology rates, rescaled so their sum equals the gateway capacity —
	// the two layers then describe the same total resource.
	rawRates, err := net.MaxMinRates(1)
	if err != nil {
		return TopoAwareResult{}, err
	}
	var rateSum float64
	for _, x := range rawRates {
		rateSum += x
	}
	caps := make([]float64, cfg.Members)
	for i := range caps {
		caps[i] = rawRates[i+1] / rateSum * capacity
	}

	// Near/far split by hop count.
	hops := make([]int, cfg.Members)
	maxHop := 0
	for i := range hops {
		hops[i] = net.HopsToGateway(i + 1)
		if hops[i] > maxHop {
			maxHop = hops[i]
		}
	}
	median := medianInt(hops)

	sched.Reset(cfg.Members)
	var nearSats, farSats []float64
	for e := 0; e < cfg.Epochs; e++ {
		bytesDemand, _ := model.Sample(demandRNG)
		airDemand := make([]float64, cfg.Members)
		for i := range bytesDemand {
			airDemand[i] = bytesDemand[i] * net.PathETX[i+1]
		}
		alloc := sched.Allocate(airDemand, capacity)
		for i := range alloc {
			if alloc[i] > caps[i] {
				alloc[i] = caps[i] // the path cannot carry more
			}
			if airDemand[i] <= 0 {
				continue
			}
			sat := alloc[i] / airDemand[i]
			if sat > 1 {
				sat = 1
			}
			if hops[i] <= median {
				nearSats = append(nearSats, sat)
			} else {
				farSats = append(farSats, sat)
			}
		}
	}
	res := TopoAwareResult{
		Scheduler: sched.Name(),
		NearSat:   stats.Mean(nearSats),
		FarSat:    stats.Mean(farSats),
	}
	if res.FarSat > 0 {
		res.Gap = res.NearSat / res.FarSat
	}
	return res, nil
}

func medianInt(xs []int) int {
	cp := append([]int(nil), xs...)
	for i := 0; i < len(cp); i++ {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
