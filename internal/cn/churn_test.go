package cn

import (
	"math"
	"testing"
)

// TestChurnSimDemandScale pins the cross-domain demand-scale hook: the scale
// defaults to the identity, sets within (0, 64], rejects everything else,
// and never perturbs the demand RNG (scaling is applied to the drawn bytes,
// so churn and demand stay decoupled).
func TestChurnSimDemandScale(t *testing.T) {
	s, err := NewChurnSim(ChurnConfig{Members: 6, Seed: 1}, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DemandScale(); got != 1 {
		t.Fatalf("initial demand scale = %v, want 1", got)
	}
	for _, bad := range []float64{0, -1, 64.5, math.NaN(), math.Inf(1)} {
		if err := s.SetDemandScale(bad); err == nil {
			t.Errorf("SetDemandScale(%v) accepted", bad)
		}
	}
	if err := s.SetDemandScale(2.5); err != nil {
		t.Fatal(err)
	}
	if got := s.DemandScale(); got != 2.5 {
		t.Fatalf("demand scale = %v, want 2.5", got)
	}

	// Exact scaling: two sims with identical seeds, one at scale 2, run one
	// epoch; offered airtime doubles bit-exactly because the multiplier
	// applies outside the RNG draw.
	a, err := NewChurnSim(ChurnConfig{Members: 6, Seed: 7}, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurnSim(ChurnConfig{Members: 6, Seed: 7}, &CPR{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetDemandScale(2); err != nil {
		t.Fatal(err)
	}
	ra := a.Epoch()
	rb := b.Epoch()
	if rb.Offered != 2*ra.Offered {
		t.Fatalf("scaled offered = %v, want exactly 2x %v", rb.Offered, ra.Offered)
	}
}
