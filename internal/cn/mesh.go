// Package cn simulates a community wireless mesh network: a geometric mesh
// topology with lossy links (ETX link metrics), a single scarce backhaul
// gateway, per-member demand, and three capacity-sharing disciplines —
// unmanaged proportional sharing, max-min fair queueing, and the
// common-pool-resource credit scheme community networks use to manage
// congestion socially (Johnson et al., CSCW 2021; paper §4).
//
// The simulator also includes the volunteer-maintenance model that the
// community-network literature identifies as the other scarce resource
// ("The Network Is an Excuse": hardware maintenance sustains the community).
package cn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Network is a connected mesh with a designated gateway node. PathETX[i] is
// the cumulative expected-transmission-count cost of node i's route to the
// gateway: the airtime multiplier every byte from i pays on the shared
// medium.
type Network struct {
	G       *graph.Graph
	Pos     [][2]float64
	Gateway int
	PathETX []float64
	parent  []int
}

// ErrDisconnected is returned when a connected mesh cannot be built.
var ErrDisconnected = errors.New("cn: could not build a connected mesh")

// BuildMesh places n nodes uniformly in the unit square, connects nodes
// within radius, converts link distance into an ETX metric in [1, 3] (longer
// links lose more frames), and routes every node to the gateway (node 0) via
// minimum-ETX paths. It retries placement up to 32 times before giving up.
func BuildMesh(n int, radius float64, r *rng.Rand) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("cn: mesh needs at least 2 nodes, got %d", n)
	}
	for attempt := 0; attempt < 32; attempt++ {
		g, pos := graph.RandomGeometric(n, radius, r.Split())
		if g.GiantComponentSize() != n {
			continue
		}
		// Re-weight edges: ETX grows quadratically from 1 (adjacent) to 3
		// (at max radius), a standard loss-vs-distance shape.
		etxG := graph.New(n, false)
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				if e.To > u {
					frac := e.Weight / radius
					etx := 1 + 2*frac*frac
					if err := etxG.AddEdge(u, e.To, etx); err != nil {
						return nil, err
					}
				}
			}
		}
		dist, prev := etxG.Dijkstra(0)
		net := &Network{G: etxG, Pos: pos, Gateway: 0, PathETX: dist, parent: prev}
		return net, nil
	}
	return nil, ErrDisconnected
}

// RouteToGateway returns node i's path to the gateway (i first), or nil for
// the gateway itself.
func (n *Network) RouteToGateway(i int) []int {
	if i == n.Gateway {
		return nil
	}
	p := graph.Path(n.parent, n.Gateway, i)
	if p == nil {
		return nil
	}
	// graph.Path runs gateway→i; reverse to i→gateway.
	for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
	return p
}

// HopsToGateway returns the hop count of node i's gateway route.
func (n *Network) HopsToGateway(i int) int {
	p := n.RouteToGateway(i)
	if p == nil {
		return 0
	}
	return len(p) - 1
}

// MeanPathETX returns the average gateway-path ETX over non-gateway nodes,
// a one-number summary of mesh quality.
func (n *Network) MeanPathETX() float64 {
	sum, cnt := 0.0, 0
	for i, d := range n.PathETX {
		if i == n.Gateway || math.IsInf(d, 1) {
			continue
		}
		sum += d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
