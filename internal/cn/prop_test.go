package cn_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/cn"
	"repro/internal/proptest"
)

// Property suite for the community-network scheduling layer. The scheduler
// contract — never exceed demand or capacity, stay non-negative, conserve
// work under congestion — is checked directly on random demand vectors for
// every discipline, and the two simulators are checked for bounded outputs,
// determinism, and the topology-aware capacity clamp. (Gap >= 1 is
// deliberately NOT asserted: random demand can leave a lightly-loaded far
// member better served than the near quartile.)

// allocTol absorbs waterfill/credit float accumulation error.
const allocTol = 1e-9

func schedulers() []cn.Scheduler {
	return []cn.Scheduler{cn.Proportional{}, cn.MaxMin{}, &cn.CPR{}}
}

func TestPropAllocateRespectsDemandAndCapacity(t *testing.T) {
	proptest.Run(t, 501, 120, func(g *proptest.G) error {
		demand := g.FloatsIn(1, 20, 0, 1000)
		capacity := g.Float64Range(0.1, 3000)
		for _, s := range schedulers() {
			s.Reset(len(demand))
			alloc := s.Allocate(demand, capacity)
			if len(alloc) != len(demand) {
				return fmt.Errorf("%s: alloc len %d != demand len %d", s.Name(), len(alloc), len(demand))
			}
			total := 0.0
			offered := 0.0
			for i, a := range alloc {
				if math.IsNaN(a) || a < -allocTol {
					return fmt.Errorf("%s: negative/NaN allocation %v at %d", s.Name(), a, i)
				}
				if a > demand[i]*(1+allocTol)+allocTol {
					return fmt.Errorf("%s: alloc %v exceeds demand %v at %d", s.Name(), a, demand[i], i)
				}
				total += a
				offered += demand[i]
			}
			if total > capacity*(1+allocTol)+allocTol {
				return fmt.Errorf("%s: total alloc %v exceeds capacity %v", s.Name(), total, capacity)
			}
			// Work conservation: when offered load fits, everyone is served.
			if offered <= capacity {
				for i, a := range alloc {
					if !proptest.ApproxEq(a, demand[i], allocTol) {
						return fmt.Errorf("%s: uncongested but alloc %v < demand %v at %d",
							s.Name(), a, demand[i], i)
					}
				}
			}
		}
		return nil
	})
}

func TestPropMaxMinProtectsSmallDemands(t *testing.T) {
	proptest.Run(t, 502, 120, func(g *proptest.G) error {
		demand := g.FloatsIn(2, 20, 0, 1000)
		capacity := g.Float64Range(0.1, 1500)
		alloc := cn.MaxMin{}.Allocate(demand, capacity)
		// Max-min: a member whose demand is below the equal share is fully
		// served.
		share := capacity / float64(len(demand))
		for i, d := range demand {
			if d <= share && !proptest.ApproxEq(alloc[i], d, allocTol) {
				return fmt.Errorf("demand %v below equal share %v but alloc %v", d, share, alloc[i])
			}
		}
		return nil
	})
}

func TestPropSimulateBoundedAndDeterministic(t *testing.T) {
	proptest.Run(t, 503, 25, func(g *proptest.G) error {
		cfg := cn.SimConfig{
			Members:        g.IntRange(2, 10),
			HeavyFrac:      g.Float64Range(0, 0.6),
			CapacityFactor: g.Float64Range(0.3, 2),
			Epochs:         g.IntRange(1, 20),
			Seed:           g.Uint64(),
		}
		for _, s := range []cn.Scheduler{cn.MaxMin{}, &cn.CPR{}} {
			res, err := cn.Simulate(cfg, s)
			if errors.Is(err, cn.ErrDisconnected) {
				// Documented outcome: BuildMesh retries 32 placements at the
				// default radius and may legitimately give up on unlucky
				// seeds (TestBuildMeshDisconnectedFails pins this contract).
				return nil
			}
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
			for name, v := range map[string]float64{
				"LightProtected":    res.LightProtected,
				"LightSatisfaction": res.LightSatisfaction,
				"HeavySatisfaction": res.HeavySatisfaction,
			} {
				// Mean of an empty observation set is NaN by design.
				if !math.IsNaN(v) && (v < -allocTol || v > 1+allocTol) {
					return fmt.Errorf("%s: %s = %v out of [0,1]", s.Name(), name, v)
				}
			}
			if res.CongestedEpochs < 0 || res.CongestedEpochs > cfg.Epochs {
				return fmt.Errorf("%s: CongestedEpochs %d out of [0,%d]", s.Name(), res.CongestedEpochs, cfg.Epochs)
			}
			if !math.IsNaN(res.Utilization) && res.Utilization < -allocTol {
				return fmt.Errorf("%s: negative utilization %v", s.Name(), res.Utilization)
			}
			s.Reset(cfg.Members)
			res2, err := cn.Simulate(cfg, s)
			if err != nil {
				return err
			}
			if !proptest.SameFloat(res.LightSatisfaction, res2.LightSatisfaction) ||
				!proptest.SameFloat(res.Utilization, res2.Utilization) ||
				res.CongestedEpochs != res2.CongestedEpochs {
				return fmt.Errorf("%s: same seed, different result: %+v vs %+v", s.Name(), res, res2)
			}
		}
		return nil
	})
}

func TestPropTopologyAwareClampAndGap(t *testing.T) {
	proptest.Run(t, 504, 25, func(g *proptest.G) error {
		cfg := cn.SimConfig{
			Members:        g.IntRange(4, 10),
			HeavyFrac:      g.Float64Range(0, 0.6),
			CapacityFactor: g.Float64Range(0.3, 2),
			Epochs:         g.IntRange(1, 15),
			Seed:           g.Uint64(),
		}
		res, err := cn.SimulateTopologyAware(cfg, cn.MaxMin{})
		if errors.Is(err, cn.ErrDisconnected) {
			return nil // unlucky placement; see TestPropSimulateBoundedAndDeterministic
		}
		if err != nil {
			return err
		}
		// Per-epoch satisfaction is clamped to [0,1] by the path-capacity
		// cap, so the near/far means must stay there too (NaN = no
		// observations). Gap >= 1 is NOT an invariant — random demand can
		// leave a lightly-loaded far member better served — only the
		// ratio's consistency is.
		for name, v := range map[string]float64{"NearSat": res.NearSat, "FarSat": res.FarSat} {
			if !math.IsNaN(v) && (v < -allocTol || v > 1+allocTol) {
				return fmt.Errorf("%s = %v out of [0,1]", name, v)
			}
		}
		if res.FarSat > 0 {
			if !proptest.SameFloat(res.Gap, res.NearSat/res.FarSat) {
				return fmt.Errorf("Gap = %v inconsistent with NearSat/FarSat = %v", res.Gap, res.NearSat/res.FarSat)
			}
		} else if res.Gap != 0 {
			return fmt.Errorf("FarSat = %v but Gap = %v, want 0", res.FarSat, res.Gap)
		}
		res2, err := cn.SimulateTopologyAware(cfg, cn.MaxMin{})
		if err != nil {
			return err
		}
		if !proptest.SameFloat(res.NearSat, res2.NearSat) || !proptest.SameFloat(res.FarSat, res2.FarSat) {
			return fmt.Errorf("same seed, different topology-aware result: %+v vs %+v", res, res2)
		}
		return nil
	})
	if _, err := cn.SimulateTopologyAware(cn.SimConfig{Members: 3, Epochs: 1, CapacityFactor: 1}, cn.MaxMin{}); err == nil {
		t.Error("SimulateTopologyAware accepted Members=3, want error for < 4")
	}
}
