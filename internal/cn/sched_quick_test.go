package cn

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// quickDemands turns fuzz bytes into a plausible demand vector.
func quickDemands(raw []uint8) []float64 {
	if len(raw) == 0 {
		return nil
	}
	if len(raw) > 24 {
		raw = raw[:24]
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = float64(v) / 8
	}
	return out
}

func TestQuickWaterfillInvariants(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		demand := quickDemands(raw)
		if demand == nil {
			return true
		}
		capacity := float64(capRaw) / 4
		alloc := waterfill(demand, capacity)
		var sum, total float64
		for i, a := range alloc {
			if a < -1e-9 || a > demand[i]+1e-9 {
				return false
			}
			sum += a
			total += demand[i]
		}
		// Either capacity or demand is exhausted (within epsilon).
		want := capacity
		if total < capacity {
			want = total
		}
		return sum <= want+1e-6 && sum >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightedFillInvariants(t *testing.T) {
	f := func(raw []uint8, wRaw []uint8, capRaw uint8) bool {
		demand := quickDemands(raw)
		if demand == nil {
			return true
		}
		weight := make([]float64, len(demand))
		for i := range weight {
			if i < len(wRaw) {
				weight[i] = float64(wRaw[i])
			}
		}
		capacity := float64(capRaw) / 4
		alloc := weightedFill(demand, weight, capacity)
		var sum, total float64
		for i, a := range alloc {
			if a < -1e-9 || a > demand[i]+1e-9 {
				return false
			}
			sum += a
			total += demand[i]
		}
		want := capacity
		if total < capacity {
			want = total
		}
		return sum <= want+1e-6 && sum >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightedFillMonotoneInWeight(t *testing.T) {
	// With identical demands and binding capacity, a member with strictly
	// larger weight never receives less.
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 3 + r.Intn(6)
		demand := make([]float64, n)
		weight := make([]float64, n)
		for i := range demand {
			demand[i] = 100 // non-binding caps
			weight[i] = 1 + 10*r.Float64()
		}
		capacity := 10.0
		alloc := weightedFill(demand, weight, capacity)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if weight[i] > weight[j]+1e-9 && alloc[i] < alloc[j]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickCPRAllocationsBounded(t *testing.T) {
	f := func(seed uint32, epochs uint8) bool {
		r := rng.New(uint64(seed))
		c := &CPR{}
		n := 4
		c.Reset(n)
		for e := 0; e < int(epochs%40)+1; e++ {
			demand := make([]float64, n)
			for i := range demand {
				demand[i] = r.Pareto(0.5, 1.3)
			}
			alloc := c.Allocate(demand, 3)
			sum := 0.0
			for i, a := range alloc {
				if a < -1e-9 || a > demand[i]+1e-9 {
					return false
				}
				sum += a
			}
			if sum > 3+1e-6 {
				// Uncongested epochs may grant all demand below capacity.
				total := 0.0
				for _, d := range demand {
					total += d
				}
				if total > 3 {
					return false
				}
			}
			// Balances never go negative.
			for _, b := range c.Balances() {
				if b < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
