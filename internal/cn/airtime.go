package cn

import (
	"fmt"
	"math"
)

// linkKey identifies an undirected mesh link.
type linkKey struct{ a, b int }

func mkLink(u, v int) linkKey {
	if u > v {
		u, v = v, u
	}
	return linkKey{a: u, b: v}
}

// linkETX returns the ETX weight of the (u,v) edge, or an error if absent.
func (n *Network) linkETX(u, v int) (float64, error) {
	for _, e := range n.G.Neighbors(u) {
		if e.To == v {
			return e.Weight, nil
		}
	}
	return 0, fmt.Errorf("cn: no link %d-%d", u, v)
}

// MaxMinRates computes the max-min fair per-member byte rates when every
// member's traffic follows its gateway route and each link can carry
// linkCapacity units of airtime per epoch (one unit = one ETX-weighted
// byte). Member i consumes w_e airtime on every link e of its path per
// byte, where w_e is the link's ETX, so lossier and longer paths are more
// expensive. The allocation is progressive filling: all rates grow together
// until a link saturates, members crossing it freeze, and the rest
// continue. rates[gateway] is 0.
//
// This is the topology-level truth underneath the scheduler experiments:
// no gateway-side discipline can give a member more than its path supports.
func (n *Network) MaxMinRates(linkCapacity float64) ([]float64, error) {
	if linkCapacity <= 0 {
		return nil, fmt.Errorf("cn: link capacity must be positive")
	}
	nNodes := n.G.N()
	// Per-member path links and their weights.
	type memberPath struct {
		links []linkKey
		w     map[linkKey]float64
	}
	paths := make([]memberPath, nNodes)
	for i := 0; i < nNodes; i++ {
		if i == n.Gateway {
			continue
		}
		route := n.RouteToGateway(i)
		if route == nil {
			return nil, fmt.Errorf("cn: node %d unrouted", i)
		}
		mp := memberPath{w: make(map[linkKey]float64)}
		for h := 0; h+1 < len(route); h++ {
			etx, err := n.linkETX(route[h], route[h+1])
			if err != nil {
				return nil, err
			}
			k := mkLink(route[h], route[h+1])
			mp.links = append(mp.links, k)
			mp.w[k] = etx
		}
		paths[i] = mp
	}

	// Progressive filling with an absolute common rate t: every active
	// member holds rate t; a link's constraint is
	// fixedLoad_e + t·coeff_e <= capacity, where fixedLoad_e is frozen
	// members' consumption.
	rates := make([]float64, nNodes)
	frozen := make([]bool, nNodes)
	frozen[n.Gateway] = true
	fixedLoad := make(map[linkKey]float64)
	t := 0.0

	for {
		coeff := make(map[linkKey]float64)
		activeAny := false
		for i := 0; i < nNodes; i++ {
			if frozen[i] {
				continue
			}
			activeAny = true
			for _, k := range paths[i].links {
				coeff[k] += paths[i].w[k]
			}
		}
		if !activeAny {
			break
		}
		tNext := math.Inf(1)
		var bottleneck linkKey
		haveBottleneck := false
		for k, c := range coeff {
			if c <= 0 {
				continue
			}
			slack := linkCapacity - fixedLoad[k]
			if slack < 0 {
				slack = 0
			}
			tm := slack / c
			if tm < tNext {
				tNext = tm
				bottleneck = k
				haveBottleneck = true
			}
		}
		if !haveBottleneck || math.IsInf(tNext, 1) {
			break
		}
		if tNext < t {
			tNext = t // numeric guard: rates never shrink
		}
		for i := 0; i < nNodes; i++ {
			if !frozen[i] {
				rates[i] = tNext
			}
		}
		for i := 0; i < nNodes; i++ {
			if frozen[i] {
				continue
			}
			if _, uses := paths[i].w[bottleneck]; uses {
				frozen[i] = true
				for _, k := range paths[i].links {
					fixedLoad[k] += rates[i] * paths[i].w[k]
				}
			}
		}
		t = tNext
	}
	return rates, nil
}

// AggregateCapacity returns the sum of max-min rates — the mesh's total
// deliverable goodput under fair sharing.
func (n *Network) AggregateCapacity(linkCapacity float64) (float64, error) {
	rates, err := n.MaxMinRates(linkCapacity)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	return total, nil
}
