// Package ethno models ethnographic fieldwork as a planned, budgeted
// research activity: field sites, visits, field notes (observations,
// interviews, artifacts), and the insight-accrual economics behind the
// paper's §3 discussion of traditional, patchwork, and rapid ethnography.
//
// The accrual model makes one mechanism explicit: a continuous stay mines a
// site's remaining insight with diminishing returns, while the reflection
// gaps of patchwork ethnography ("no reason ... the time must be spent in
// its bulk in a physical fieldsite") improve the ethnographer's extraction
// rate before the next visit. The E7 experiment compares scheduling
// strategies under a fixed researcher-day budget.
//
// The package also implements triangulation: joining field notes against a
// quantitative trace to measure how many measured anomalies the fieldwork
// can explain — ethnography as "measurement of the human systems".
package ethno

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NoteKind classifies a field note.
type NoteKind int

// Field note kinds.
const (
	Observation NoteKind = iota
	Interview
	Artifact
	Reflection
)

// String returns the kind name.
func (k NoteKind) String() string {
	switch k {
	case Observation:
		return "observation"
	case Interview:
		return "interview"
	case Artifact:
		return "artifact"
	case Reflection:
		return "reflection"
	default:
		return fmt.Sprintf("NoteKind(%d)", int(k))
	}
}

// Site is a field site with the parameters of the insight-accrual model.
type Site struct {
	ID string
	// MaxInsight is the total insight the site can yield.
	MaxInsight float64
	// Tau is the e-folding time (days) of extraction: a visit of length L
	// extracts 1-exp(-L/Tau) of the remaining insight.
	Tau float64
	// TravelDays is the overhead paid per visit before observing starts.
	TravelDays float64
}

// FieldNote is one dated record from a site.
type FieldNote struct {
	SiteID string
	Day    float64
	Kind   NoteKind
	Text   string
	Tags   []string
}

// Study is a mutable field study: sites plus accumulated notes. The zero
// value is not usable; call NewStudy.
type Study struct {
	sites map[string]Site
	notes []FieldNote
}

// NewStudy returns an empty study.
func NewStudy() *Study {
	return &Study{sites: make(map[string]Site)}
}

// Errors returned by study operations.
var (
	ErrUnknownSite   = errors.New("ethno: unknown site")
	ErrDuplicateSite = errors.New("ethno: duplicate site")
)

// AddSite registers a field site.
func (s *Study) AddSite(site Site) error {
	if site.ID == "" {
		return fmt.Errorf("ethno: site needs an ID")
	}
	if _, ok := s.sites[site.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateSite, site.ID)
	}
	if site.MaxInsight <= 0 || site.Tau <= 0 {
		return fmt.Errorf("ethno: site %s needs positive MaxInsight and Tau", site.ID)
	}
	s.sites[site.ID] = site
	return nil
}

// Site returns a site by ID.
func (s *Study) Site(id string) (Site, bool) {
	site, ok := s.sites[id]
	return site, ok
}

// SiteIDs returns the registered site IDs sorted.
func (s *Study) SiteIDs() []string {
	out := make([]string, 0, len(s.sites))
	for id := range s.sites {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Record appends a field note; the site must exist.
func (s *Study) Record(n FieldNote) error {
	if _, ok := s.sites[n.SiteID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSite, n.SiteID)
	}
	s.notes = append(s.notes, n)
	return nil
}

// Notes returns all notes, optionally filtered by site ("" for all).
func (s *Study) Notes(siteID string) []FieldNote {
	var out []FieldNote
	for _, n := range s.notes {
		if siteID == "" || n.SiteID == siteID {
			out = append(out, n)
		}
	}
	return out
}

// Visit is one planned stay at a site.
type Visit struct {
	SiteID string
	// Days is the total days allocated, including the site's travel
	// overhead; observation time is Days - TravelDays (floored at 0).
	Days float64
}

// Schedule is an ordered sequence of visits.
type Schedule []Visit

// TotalDays returns the budget the schedule consumes.
func (sc Schedule) TotalDays() float64 {
	t := 0.0
	for _, v := range sc {
		t += v.Days
	}
	return t
}

// AccrualParams tunes the insight model.
type AccrualParams struct {
	// ReflectGain is the fractional improvement of extraction rate per
	// between-visit reflection gap (Tau shrinks by this factor). The
	// patchwork-ethnography benefit; 0 disables it.
	ReflectGain float64
	// RapidPenalty multiplies Tau for visits shorter than ShortVisit days,
	// modelling the reduced depth of rapid ethnography. 1 disables it.
	RapidPenalty float64
	// ShortVisit is the threshold (days) below which RapidPenalty applies.
	ShortVisit float64
}

// DefaultParams returns the parameters used by the E7 experiment.
func DefaultParams() AccrualParams {
	return AccrualParams{ReflectGain: 0.15, RapidPenalty: 1.6, ShortVisit: 5}
}

// ScheduleResult summarizes simulating one schedule.
type ScheduleResult struct {
	Insight         float64
	ObservationDays float64
	TravelDays      float64
	Reflections     int
	SitesCovered    int
	// InsightBySite breaks the total down per site.
	InsightBySite map[string]float64
}

// Simulate runs the accrual model over the schedule. Visits to unknown
// sites return an error. The per-site remaining-insight state and the
// researcher's per-site extraction rate evolve across visits.
func (s *Study) Simulate(plan Schedule, params AccrualParams) (ScheduleResult, error) {
	remaining := make(map[string]float64, len(s.sites))
	tau := make(map[string]float64, len(s.sites))
	for id, site := range s.sites {
		remaining[id] = site.MaxInsight
		tau[id] = site.Tau
	}
	res := ScheduleResult{InsightBySite: make(map[string]float64)}
	visited := make(map[string]bool)
	prevVisit := false
	for _, v := range plan {
		site, ok := s.sites[v.SiteID]
		if !ok {
			return ScheduleResult{}, fmt.Errorf("%w: %s", ErrUnknownSite, v.SiteID)
		}
		if prevVisit && params.ReflectGain > 0 {
			// Reflection between visits sharpens every site's extraction.
			res.Reflections++
			for id := range tau {
				tau[id] *= 1 - params.ReflectGain
			}
		}
		obs := v.Days - site.TravelDays
		if obs < 0 {
			obs = 0
		}
		res.TravelDays += math.Min(v.Days, site.TravelDays)
		res.ObservationDays += obs
		effTau := tau[v.SiteID]
		if params.RapidPenalty > 1 && obs < params.ShortVisit {
			effTau *= params.RapidPenalty
		}
		extracted := remaining[v.SiteID] * (1 - math.Exp(-obs/effTau))
		remaining[v.SiteID] -= extracted
		res.Insight += extracted
		res.InsightBySite[v.SiteID] += extracted
		if obs > 0 {
			visited[v.SiteID] = true
		}
		prevVisit = true
	}
	res.SitesCovered = len(visited)
	return res, nil
}
