package ethno

import (
	"math"
	"testing"
)

func newStudy(t *testing.T, sites ...Site) *Study {
	t.Helper()
	s := NewStudy()
	for _, site := range sites {
		if err := s.AddSite(site); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func basicSite(id string) Site {
	return Site{ID: id, MaxInsight: 100, Tau: 20, TravelDays: 2}
}

func TestAddSiteValidation(t *testing.T) {
	s := NewStudy()
	if err := s.AddSite(Site{}); err == nil {
		t.Error("empty site accepted")
	}
	if err := s.AddSite(Site{ID: "a", MaxInsight: 0, Tau: 1}); err == nil {
		t.Error("zero insight accepted")
	}
	if err := s.AddSite(basicSite("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSite(basicSite("a")); err == nil {
		t.Error("duplicate accepted")
	}
	if _, ok := s.Site("a"); !ok {
		t.Error("site lookup failed")
	}
}

func TestRecordAndNotes(t *testing.T) {
	s := newStudy(t, basicSite("a"), basicSite("b"))
	if err := s.Record(FieldNote{SiteID: "nope", Day: 1}); err == nil {
		t.Error("note at unknown site accepted")
	}
	_ = s.Record(FieldNote{SiteID: "a", Day: 1, Kind: Observation, Text: "x"})
	_ = s.Record(FieldNote{SiteID: "b", Day: 2, Kind: Interview, Text: "y"})
	_ = s.Record(FieldNote{SiteID: "a", Day: 3, Kind: Artifact, Text: "z"})
	if got := len(s.Notes("")); got != 3 {
		t.Errorf("all notes = %d", got)
	}
	if got := len(s.Notes("a")); got != 2 {
		t.Errorf("site-a notes = %d", got)
	}
}

func TestNoteKindString(t *testing.T) {
	if Observation.String() != "observation" || Reflection.String() != "reflection" {
		t.Error("kind strings wrong")
	}
}

func TestSimulateDiminishingReturns(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	short, err := s.Simulate(Schedule{{SiteID: "a", Days: 12}}, AccrualParams{})
	if err != nil {
		t.Fatal(err)
	}
	long, err := s.Simulate(Schedule{{SiteID: "a", Days: 22}}, AccrualParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !(long.Insight > short.Insight) {
		t.Error("longer visit should extract more")
	}
	// Doubling observation time should NOT double insight (diminishing).
	if long.Insight >= 2*short.Insight {
		t.Errorf("no diminishing returns: %g vs %g", long.Insight, short.Insight)
	}
}

func TestSimulateTravelOverhead(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	// A visit shorter than travel time observes nothing.
	res, err := s.Simulate(Schedule{{SiteID: "a", Days: 1}}, AccrualParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insight != 0 || res.ObservationDays != 0 {
		t.Errorf("sub-travel visit yielded insight: %+v", res)
	}
	if res.SitesCovered != 0 {
		t.Error("site with zero observation should not count as covered")
	}
}

func TestSimulateUnknownSite(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	if _, err := s.Simulate(Schedule{{SiteID: "zz", Days: 5}}, AccrualParams{}); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestSimulateReflectionImprovesExtraction(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	// Same observation time; with reflection gain, two visits beat one
	// despite extra travel, when the gain is large enough.
	params := AccrualParams{ReflectGain: 0.3}
	one, err := s.Simulate(Schedule{{SiteID: "a", Days: 42}}, params)
	if err != nil {
		t.Fatal(err)
	}
	two, err := s.Simulate(Schedule{{SiteID: "a", Days: 21}, {SiteID: "a", Days: 21}}, params)
	if err != nil {
		t.Fatal(err)
	}
	if two.Reflections != 1 {
		t.Fatalf("reflections = %d, want 1", two.Reflections)
	}
	if !(two.Insight > one.Insight) {
		t.Errorf("patchwork with strong reflection %g should beat continuous %g", two.Insight, one.Insight)
	}
}

func TestSimulateNoReflectionMeansContinuousWins(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	params := AccrualParams{} // no reflection benefit
	one, _ := s.Simulate(Schedule{{SiteID: "a", Days: 42}}, params)
	two, _ := s.Simulate(Schedule{{SiteID: "a", Days: 21}, {SiteID: "a", Days: 21}}, params)
	if !(one.Insight > two.Insight) {
		t.Errorf("without reflection, continuous %g should beat split %g (travel paid twice)", one.Insight, two.Insight)
	}
}

func TestSimulateInsightBounded(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	res, _ := s.Simulate(Schedule{{SiteID: "a", Days: 10000}}, AccrualParams{})
	if res.Insight > 100+1e-9 {
		t.Errorf("insight %g exceeds site maximum", res.Insight)
	}
	if res.Insight < 99 {
		t.Errorf("arbitrarily long stay should nearly exhaust the site: %g", res.Insight)
	}
}

func TestRapidPenalty(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	slow := AccrualParams{}
	fast := AccrualParams{RapidPenalty: 2, ShortVisit: 5}
	// 4 observation days (6 total - 2 travel) is below the threshold.
	a, _ := s.Simulate(Schedule{{SiteID: "a", Days: 6}}, slow)
	b, _ := s.Simulate(Schedule{{SiteID: "a", Days: 6}}, fast)
	if !(b.Insight < a.Insight) {
		t.Errorf("rapid penalty should reduce insight: %g vs %g", b.Insight, a.Insight)
	}
}

func TestE7Shapes(t *testing.T) {
	rows, err := RunE7(DefaultE7Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStrategy := map[Strategy]E7Row{}
	for _, r := range rows {
		byStrategy[r.Strategy] = r
	}
	cont := byStrategy[StrategyContinuous]
	patch := byStrategy[StrategyPatchwork]
	rapid := byStrategy[StrategyRapid]

	// Paper claim (§3): patchwork sustains depth under limited time — under
	// the default parameters it matches or beats a single continuous stay
	// while covering more sites.
	if !(patch.Insight > cont.Insight) {
		t.Errorf("patchwork insight %g should beat continuous %g", patch.Insight, cont.Insight)
	}
	if !(patch.SitesCovered > cont.SitesCovered) {
		t.Errorf("patchwork coverage %d should beat continuous %d", patch.SitesCovered, cont.SitesCovered)
	}
	if patch.Reflections == 0 || rapid.Reflections == 0 {
		t.Error("multi-visit strategies should reflect")
	}
	// Rapid pays more travel overhead per budget than patchwork.
	if !(rapid.TravelOverhead > patch.TravelOverhead) {
		t.Errorf("rapid travel overhead %g should exceed patchwork %g", rapid.TravelOverhead, patch.TravelOverhead)
	}
	// Rapid's depth penalty keeps it below patchwork.
	if !(rapid.Insight < patch.Insight) {
		t.Errorf("rapid insight %g should trail patchwork %g", rapid.Insight, patch.Insight)
	}
	for _, r := range rows {
		if math.Abs(r.BudgetDays-60) > 1e-9 {
			t.Errorf("budget = %g", r.BudgetDays)
		}
		if r.Insight <= 0 {
			t.Errorf("%s extracted nothing", r.Strategy)
		}
	}
}

func TestE7Deterministic(t *testing.T) {
	a, err := RunE7(DefaultE7Config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE7(DefaultE7Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Insight != b[i].Insight || a[i].SitesCovered != b[i].SitesCovered {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestTriangulate(t *testing.T) {
	notes := []FieldNote{
		{SiteID: "a", Day: 10, Kind: Observation, Text: "storm damaged the relay antenna"},
		{SiteID: "a", Day: 30, Kind: Interview, Text: "operator described a fiber cut"},
	}
	anomalies := []Anomaly{
		{Day: 11, Label: "throughput collapse"},
		{Day: 29, Label: "loss spike"},
		{Day: 50, Label: "latency shift"},
	}
	res := Triangulate(notes, anomalies, 2)
	if res.Anomalies != 3 || res.Explained != 2 {
		t.Fatalf("triangulation = %+v", res)
	}
	if math.Abs(res.ExplainedShare()-2.0/3) > 1e-9 {
		t.Errorf("explained share = %g", res.ExplainedShare())
	}
	if len(res.Matches[0]) != 1 || res.Matches[0][0] != 0 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestTriangulateEmpty(t *testing.T) {
	res := Triangulate(nil, nil, 5)
	if res.ExplainedShare() != 0 || res.Anomalies != 0 {
		t.Errorf("empty triangulation = %+v", res)
	}
}

func TestScheduleTotalDays(t *testing.T) {
	sc := Schedule{{SiteID: "a", Days: 3}, {SiteID: "b", Days: 4.5}}
	if sc.TotalDays() != 7.5 {
		t.Errorf("total = %g", sc.TotalDays())
	}
}

func BenchmarkE7(b *testing.B) {
	cfg := DefaultE7Config()
	for i := 0; i < b.N; i++ {
		if _, err := RunE7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
