package ethno

import (
	"fmt"
	"math"
)

// Strategy names the fieldwork scheduling strategies compared by E7.
type Strategy string

// The strategies of experiment E7.
const (
	StrategyContinuous Strategy = "continuous"
	StrategyPatchwork  Strategy = "patchwork"
	StrategyRapid      Strategy = "rapid"
)

// E7Row is one strategy's outcome under a fixed researcher-day budget.
type E7Row struct {
	Strategy        Strategy
	Visits          int
	BudgetDays      float64
	Insight         float64
	InsightPerDay   float64
	SitesCovered    int
	Reflections     int
	TravelOverhead  float64 // travel days / budget
	ObservationDays float64
}

// E7Config parameterizes the patchwork experiment.
type E7Config struct {
	// Sites is the number of comparable field sites available.
	Sites int
	// BudgetDays is the researcher-day budget each strategy gets.
	BudgetDays float64
	// PatchworkVisits is the visit count of the patchwork plan.
	PatchworkVisits int
	// RapidVisits is the visit count of the rapid plan.
	RapidVisits int
	Params      AccrualParams
}

// DefaultE7Config returns the configuration used by the benchmark harness.
func DefaultE7Config() E7Config {
	return E7Config{
		Sites:           4,
		BudgetDays:      60,
		PatchworkVisits: 4,
		RapidVisits:     10,
		Params:          DefaultParams(),
	}
}

// buildStudy creates cfg.Sites identical sites so strategy differences are
// attributable to scheduling alone.
func buildStudy(cfg E7Config) (*Study, error) {
	s := NewStudy()
	for i := 0; i < cfg.Sites; i++ {
		if err := s.AddSite(Site{
			ID:         fmt.Sprintf("site-%d", i),
			MaxInsight: 100,
			Tau:        25,
			TravelDays: 2,
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RunE7 simulates the three strategies on identical sites under the same
// budget and returns one row per strategy, in the order continuous,
// patchwork, rapid.
func RunE7(cfg E7Config) ([]E7Row, error) {
	study, err := buildStudy(cfg)
	if err != nil {
		return nil, err
	}
	ids := study.SiteIDs()

	plans := []struct {
		strategy Strategy
		plan     Schedule
	}{
		{StrategyContinuous, continuousPlan(ids[0], cfg.BudgetDays)},
		{StrategyPatchwork, roundRobinPlan(ids, cfg.BudgetDays, cfg.PatchworkVisits)},
		{StrategyRapid, roundRobinPlan(ids, cfg.BudgetDays, cfg.RapidVisits)},
	}
	rows := make([]E7Row, 0, len(plans))
	for _, p := range plans {
		res, err := study.Simulate(p.plan, cfg.Params)
		if err != nil {
			return nil, err
		}
		row := E7Row{
			Strategy:        p.strategy,
			Visits:          len(p.plan),
			BudgetDays:      cfg.BudgetDays,
			Insight:         res.Insight,
			SitesCovered:    res.SitesCovered,
			Reflections:     res.Reflections,
			ObservationDays: res.ObservationDays,
		}
		if cfg.BudgetDays > 0 {
			row.InsightPerDay = res.Insight / cfg.BudgetDays
			row.TravelOverhead = res.TravelDays / cfg.BudgetDays
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// continuousPlan spends the whole budget in one stay at a single site.
func continuousPlan(siteID string, budget float64) Schedule {
	return Schedule{{SiteID: siteID, Days: budget}}
}

// roundRobinPlan splits the budget into visits spread round-robin across
// sites.
func roundRobinPlan(siteIDs []string, budget float64, visits int) Schedule {
	if visits < 1 {
		visits = 1
	}
	per := budget / float64(visits)
	plan := make(Schedule, 0, visits)
	for v := 0; v < visits; v++ {
		plan = append(plan, Visit{SiteID: siteIDs[v%len(siteIDs)], Days: per})
	}
	return plan
}

// Anomaly is one event in a quantitative trace that wants an explanation.
type Anomaly struct {
	Day   float64
	Label string
}

// TriangulationResult reports how well field notes explain a trace.
type TriangulationResult struct {
	Anomalies int
	Explained int
	// Matches maps anomaly index to the indices of notes within the window.
	Matches map[int][]int
}

// ExplainedShare returns Explained/Anomalies (0 when no anomalies).
func (t TriangulationResult) ExplainedShare() float64 {
	if t.Anomalies == 0 {
		return 0
	}
	return float64(t.Explained) / float64(t.Anomalies)
}

// Triangulate matches each anomaly against field notes taken within
// windowDays of it (any site). This is the mixed-methods join the paper
// argues for: traces tell you when something happened; field notes tell you
// what it was.
func Triangulate(notes []FieldNote, anomalies []Anomaly, windowDays float64) TriangulationResult {
	res := TriangulationResult{
		Anomalies: len(anomalies),
		Matches:   make(map[int][]int),
	}
	for ai, a := range anomalies {
		for ni, n := range notes {
			if math.Abs(n.Day-a.Day) <= windowDays {
				res.Matches[ai] = append(res.Matches[ai], ni)
			}
		}
		if len(res.Matches[ai]) > 0 {
			res.Explained++
		}
	}
	return res
}
