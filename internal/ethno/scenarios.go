package ethno

import (
	"context"

	"repro/internal/experiment"
)

// Scenario registration for E7: patchwork vs rapid vs immersive fieldwork
// scheduling under a fixed researcher-day budget.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E7",
		Title: "Fieldwork scheduling",
		Claim: "Under a fixed day budget, patchwork scheduling covers more sites with more between-visit reflection at modest travel overhead, trading depth per visit.",
		Params: experiment.Schema{
			{Name: "sites", Kind: experiment.Int, Default: 4, Doc: "comparable field sites available"},
			{Name: "budget-days", Kind: experiment.Float, Default: 60.0, Doc: "researcher-day budget per strategy"},
			{Name: "patchwork-visits", Kind: experiment.Int, Default: 4, Doc: "visit count of the patchwork plan"},
			{Name: "rapid-visits", Kind: experiment.Int, Default: 10, Doc: "visit count of the rapid plan"},
		},
		Run: runE7,
	})
}

// runE7 compares the scheduling strategies. The model is deterministic given
// its configuration; the seed is unused.
func runE7(_ context.Context, p experiment.Values, _ uint64) (*experiment.Result, error) {
	cfg := DefaultE7Config()
	cfg.Sites = p.Int("sites")
	cfg.BudgetDays = p.Float("budget-days")
	cfg.PatchworkVisits = p.Int("patchwork-visits")
	cfg.RapidVisits = p.Int("rapid-visits")
	rows, err := RunE7(cfg)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E7", "Fieldwork scheduling",
		"strategy", "visits", "insight", "sites", "reflections", "travel-overhead")
	for _, r := range rows {
		t.AddRow(experiment.S(string(r.Strategy)), experiment.I(r.Visits), experiment.FP(r.Insight, 1),
			experiment.I(r.SitesCovered), experiment.I(r.Reflections), experiment.F3(r.TravelOverhead))
	}
	return res, nil
}
