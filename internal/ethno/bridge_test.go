package ethno

import (
	"testing"

	"repro/internal/qualcode"
)

func TestAsCodingDocuments(t *testing.T) {
	s := newStudy(t, basicSite("a"), basicSite("b"), basicSite("empty"))
	_ = s.Record(FieldNote{SiteID: "a", Day: 5, Kind: Interview, Text: "second"})
	_ = s.Record(FieldNote{SiteID: "a", Day: 1, Kind: Observation, Text: "first"})
	_ = s.Record(FieldNote{SiteID: "b", Day: 2, Kind: Artifact, Text: "photo of mast"})
	docs := s.AsCodingDocuments()
	if len(docs) != 2 {
		t.Fatalf("docs = %d, want 2 (empty site skipped)", len(docs))
	}
	a := docs[0]
	if a.ID != "field-a" || len(a.Segments) != 2 {
		t.Fatalf("doc a = %+v", a)
	}
	// Day order, not record order.
	if a.Segments[0].Text != "first" || a.Segments[1].Text != "second" {
		t.Errorf("segments out of day order: %+v", a.Segments)
	}
	if a.Segments[0].Speaker != "observation" || a.Segments[1].Speaker != "interview" {
		t.Errorf("kinds not carried: %+v", a.Segments)
	}
}

func TestNewCodingProjectAnnotatable(t *testing.T) {
	s := newStudy(t, basicSite("a"))
	_ = s.Record(FieldNote{SiteID: "a", Day: 1, Kind: Observation, Text: "volunteers repaired the mast"})
	cb := qualcode.NewCodebook()
	if err := cb.Add(qualcode.Code{ID: "maintenance"}); err != nil {
		t.Fatal(err)
	}
	p, err := s.NewCodingProject(cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Annotate(qualcode.Annotation{
		DocID: "field-a", SegmentID: 0, CodeID: "maintenance", Coder: "me",
	}); err != nil {
		t.Fatalf("field-note annotation failed: %v", err)
	}
	if got := p.CodeCounts()["maintenance"]; got != 1 {
		t.Errorf("count = %d", got)
	}
}
