package ethno

import (
	"fmt"
	"math"
)

// OptimizeResult is the best schedule found by OptimizeSchedule.
type OptimizeResult struct {
	Plan    Schedule
	Insight float64
	Visits  int
	Sites   int
}

// OptimizeSchedule searches round-robin schedules (1..maxVisits visits over
// 1..len(sites) sites, equal visit lengths) under the budget and returns
// the insight-maximizing plan. It is a design aid for the fieldwork-
// planning question E7 poses: how should a team split limited time?
//
// The search space is deliberately the space a real team would consider —
// uniform plans — rather than arbitrary unequal splits; it is exhaustive
// over that space and deterministic.
func (s *Study) OptimizeSchedule(budget float64, maxVisits int, params AccrualParams) (OptimizeResult, error) {
	ids := s.SiteIDs()
	if len(ids) == 0 {
		return OptimizeResult{}, fmt.Errorf("ethno: no sites to schedule")
	}
	if budget <= 0 || maxVisits < 1 {
		return OptimizeResult{}, fmt.Errorf("ethno: need positive budget and visits")
	}
	best := OptimizeResult{Insight: math.Inf(-1)}
	for nSites := 1; nSites <= len(ids); nSites++ {
		for visits := nSites; visits <= maxVisits; visits++ {
			plan := roundRobinPlan(ids[:nSites], budget, visits)
			res, err := s.Simulate(plan, params)
			if err != nil {
				return OptimizeResult{}, err
			}
			if res.Insight > best.Insight {
				best = OptimizeResult{
					Plan:    plan,
					Insight: res.Insight,
					Visits:  visits,
					Sites:   nSites,
				}
			}
		}
	}
	return best, nil
}
