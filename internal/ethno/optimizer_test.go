package ethno

import (
	"testing"
)

func TestOptimizeScheduleValidation(t *testing.T) {
	s := NewStudy()
	if _, err := s.OptimizeSchedule(60, 5, DefaultParams()); err == nil {
		t.Error("no sites accepted")
	}
	_ = s.AddSite(basicSite("a"))
	if _, err := s.OptimizeSchedule(0, 5, DefaultParams()); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := s.OptimizeSchedule(60, 0, DefaultParams()); err == nil {
		t.Error("zero visits accepted")
	}
}

func TestOptimizeScheduleBeatsFixedStrategies(t *testing.T) {
	cfg := DefaultE7Config()
	study, err := buildStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunE7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := study.OptimizeSchedule(cfg.BudgetDays, 12, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if best.Insight+1e-9 < r.Insight {
			t.Errorf("optimizer insight %g below %s strategy %g", best.Insight, r.Strategy, r.Insight)
		}
	}
	if best.Plan.TotalDays() > cfg.BudgetDays+1e-9 {
		t.Errorf("plan exceeds budget: %g", best.Plan.TotalDays())
	}
	if best.Sites < 1 || best.Visits < best.Sites {
		t.Errorf("degenerate plan: %+v", best)
	}
}

func TestOptimizeSchedulePrefersOneSiteWhenTravelIsRuinous(t *testing.T) {
	s := NewStudy()
	// One site, huge travel cost: the optimum is a single long stay.
	_ = s.AddSite(Site{ID: "far", MaxInsight: 100, Tau: 10, TravelDays: 20})
	best, err := s.OptimizeSchedule(50, 6, AccrualParams{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Visits != 1 {
		t.Errorf("visits = %d, want 1 when travel dominates", best.Visits)
	}
}
