package ethno

import (
	"fmt"
	"sort"

	"repro/internal/qualcode"
)

// AsCodingDocuments converts the study's field notes into qualcode
// documents — one document per site, one segment per note in day order —
// so fieldwork can be formally coded with the same machinery as interview
// transcripts (the §5.2 pipeline applied to §3's data). The segment speaker
// records the note kind; segment IDs are the note's index within its site.
func (s *Study) AsCodingDocuments() []qualcode.Document {
	bySite := make(map[string][]FieldNote)
	for _, n := range s.notes {
		bySite[n.SiteID] = append(bySite[n.SiteID], n)
	}
	var out []qualcode.Document
	for _, siteID := range s.SiteIDs() {
		notes := bySite[siteID]
		if len(notes) == 0 {
			continue
		}
		sort.SliceStable(notes, func(a, b int) bool { return notes[a].Day < notes[b].Day })
		doc := qualcode.Document{
			ID:    "field-" + siteID,
			Title: fmt.Sprintf("Field notes: %s", siteID),
		}
		for i, n := range notes {
			doc.Segments = append(doc.Segments, qualcode.Segment{
				ID:      i,
				Speaker: n.Kind.String(),
				Text:    n.Text,
			})
		}
		out = append(out, doc)
	}
	return out
}

// NewCodingProject builds a qualcode project over the study's field notes
// with the given codebook, ready for annotation.
func (s *Study) NewCodingProject(cb *qualcode.Codebook) (*qualcode.Project, error) {
	p := qualcode.NewProject(cb)
	for _, d := range s.AsCodingDocuments() {
		if err := p.AddDocument(d); err != nil {
			return nil, err
		}
	}
	return p, nil
}
