package measure

import (
	"math"
	"testing"
	"testing/quick"
)

func genLatency(t *testing.T, events []Event) Series {
	t.Helper()
	s, err := Generate(GenConfig{
		Metric: LatencyMs, Days: 200, Base: 40, Noise: 2,
		Events: events, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestGenerateBaseline(t *testing.T) {
	s := genLatency(t, nil)
	if len(s.Values) != 200 {
		t.Fatalf("len = %d", len(s.Values))
	}
	mean, std := meanStd(s.Values)
	if math.Abs(mean-40) > 1 {
		t.Errorf("mean = %g, want ~40", mean)
	}
	if std > 4 {
		t.Errorf("std = %g, want ~2", std)
	}
}

func TestGenerateEventShift(t *testing.T) {
	s := genLatency(t, []Event{{Day: 100, Duration: 5, Magnitude: 50, Label: "spike"}})
	if s.Values[102] < 70 {
		t.Errorf("event day value %g not elevated", s.Values[102])
	}
	if s.Values[50] > 60 {
		t.Errorf("non-event day value %g elevated", s.Values[50])
	}
}

func TestThroughputDipsAndFloors(t *testing.T) {
	s, err := Generate(GenConfig{
		Metric: ThroughputMbps, Days: 50, Base: 10, Noise: 1,
		Events: []Event{{Day: 20, Duration: 3, Magnitude: 100, Label: "outage"}},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[21] != 0 {
		t.Errorf("outage throughput = %g, want floored at 0", s.Values[21])
	}
	if s.Values[5] < 5 {
		t.Errorf("baseline throughput = %g", s.Values[5])
	}
}

func TestZScoreDetectsInjectedEvents(t *testing.T) {
	events := []Event{
		{Day: 60, Duration: 4, Magnitude: 30, Label: "a"},
		{Day: 140, Duration: 4, Magnitude: 30, Label: "b"},
	}
	s := genLatency(t, events)
	det := ZScoreDetect(s, 14, 4)
	ev := Evaluate(events, det, 2)
	if ev.Recall < 1 {
		t.Errorf("recall = %g, detections %v", ev.Recall, det)
	}
	if ev.Precision < 0.5 {
		t.Errorf("precision = %g (false alarms %d)", ev.Precision, ev.FalseAlarms)
	}
}

func TestZScoreQuietSeriesNoAlarms(t *testing.T) {
	s := genLatency(t, nil)
	det := ZScoreDetect(s, 14, 6)
	if len(det) > 1 {
		t.Errorf("quiet series raised %d alarms", len(det))
	}
}

func TestZScoreDegenerateInputs(t *testing.T) {
	if ZScoreDetect(Series{Values: []float64{1, 2}}, 14, 3) != nil {
		t.Error("short series should detect nothing")
	}
	if ZScoreDetect(Series{Values: make([]float64, 100)}, 1, 3) != nil {
		t.Error("window < 2 should detect nothing")
	}
}

func TestCUSUMDetectsSlowDrift(t *testing.T) {
	// A small sustained shift that a 4-sigma z-test misses but CUSUM
	// accumulates.
	events := []Event{{Day: 100, Duration: 60, Magnitude: 3, Label: "drift"}}
	s := genLatency(t, events)
	z := ZScoreDetect(s, 14, 4)
	zEval := Evaluate(events, z, 2)
	c := CUSUMDetect(s, 50, 0.5, 5)
	cEval := Evaluate(events, c, 2)
	if cEval.Recall < 1 {
		t.Errorf("CUSUM missed the drift: %+v", cEval)
	}
	if zEval.Recall >= cEval.Recall && len(z) > 0 && zEval.MeanDelay <= cEval.MeanDelay {
		// Not a hard failure shape, but CUSUM should not be strictly worse.
		t.Logf("note: z-score matched CUSUM on drift (z=%+v, c=%+v)", zEval, cEval)
	}
}

func TestEvaluateCounts(t *testing.T) {
	events := []Event{{Day: 10, Duration: 2}, {Day: 50, Duration: 2}}
	det := []Detection{{Day: 11}, {Day: 30}, {Day: 12}}
	ev := Evaluate(events, det, 0)
	if ev.Detected != 1 || ev.Missed != 1 {
		t.Errorf("eval = %+v", ev)
	}
	if ev.FalseAlarms != 1 {
		t.Errorf("false alarms = %d (day-12 should match the already-matched event)", ev.FalseAlarms)
	}
	if ev.Recall != 0.5 {
		t.Errorf("recall = %g", ev.Recall)
	}
}

func TestTopAnomalousDays(t *testing.T) {
	s := genLatency(t, []Event{{Day: 77, Duration: 1, Magnitude: 100, Label: "x"}})
	days := TopAnomalousDays(s, 3)
	found := false
	for _, d := range days {
		if d == 77 {
			found = true
		}
	}
	if !found {
		t.Errorf("top days %v miss the injected spike", days)
	}
	if len(TopAnomalousDays(s, 1000)) != len(s.Values) {
		t.Error("k larger than series should clamp")
	}
}

func TestMetricString(t *testing.T) {
	if LatencyMs.String() != "latency-ms" || LossRate.String() != "loss-rate" {
		t.Error("metric strings wrong")
	}
}

func TestQuickGenerateLength(t *testing.T) {
	f := func(seed uint16, days uint8) bool {
		d := int(days%100) + 1
		s, err := Generate(GenConfig{Metric: LatencyMs, Days: d, Base: 10, Noise: 1, Seed: uint64(seed)})
		return err == nil && len(s.Values) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkZScoreDetect(b *testing.B) {
	s, err := Generate(GenConfig{Metric: LatencyMs, Days: 2000, Base: 40, Noise: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ZScoreDetect(s, 14, 4)
	}
}

func TestEWMADetectsModerateShift(t *testing.T) {
	events := []Event{{Day: 100, Duration: 20, Magnitude: 4, Label: "shift"}}
	s := genLatency(t, events)
	det := EWMADetect(s, 50, 0.2, 5)
	ev := Evaluate(events, det, 3)
	if ev.Recall < 1 {
		t.Errorf("EWMA missed the shift: %+v (detections %v)", ev, det)
	}
}

func TestEWMAQuietSeries(t *testing.T) {
	s := genLatency(t, nil)
	if det := EWMADetect(s, 50, 0.2, 6); len(det) > 1 {
		t.Errorf("quiet series alarms: %v", det)
	}
}

func TestEWMADegenerate(t *testing.T) {
	s := genLatency(t, nil)
	if EWMADetect(s, 1, 0.2, 5) != nil {
		t.Error("window < 2 should detect nothing")
	}
	if EWMADetect(s, 50, 0, 5) != nil || EWMADetect(s, 50, 1.5, 5) != nil {
		t.Error("invalid lambda should detect nothing")
	}
}
