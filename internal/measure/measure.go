// Package measure is the quantitative-trace substrate of the toolkit: it
// generates the network time series (latency, throughput, loss) that
// classical measurement work studies, injects labelled anomalies, and
// detects them with standard detectors (rolling z-score and CUSUM).
//
// Its role in the reproduction is to give the qualitative methods something
// real to triangulate against: the paper argues measurement shows *when*
// something happened while fieldwork explains *what* it was, and
// core.TriangulationReport joins this package's detections with
// internal/ethno field notes.
package measure

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Metric names what a series measures.
type Metric int

// Metrics.
const (
	LatencyMs Metric = iota
	ThroughputMbps
	LossRate
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case LatencyMs:
		return "latency-ms"
	case ThroughputMbps:
		return "throughput-mbps"
	case LossRate:
		return "loss-rate"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Series is a regularly-sampled time series (one sample per day, matching
// the day-granular field notes in internal/ethno).
type Series struct {
	Metric Metric
	Values []float64
}

// Event is a ground-truth disturbance injected into a series.
type Event struct {
	Day      int
	Duration int
	// Magnitude is the shift in the series' units (positive latency/loss
	// spike; negative throughput dip is applied automatically for
	// ThroughputMbps).
	Magnitude float64
	Label     string
}

// GenConfig parameterizes series generation.
type GenConfig struct {
	Metric Metric
	Days   int
	// Base is the series' steady level; Noise the per-day Gaussian sigma;
	// Diurnal an optional weekly-cycle amplitude.
	Base, Noise, Diurnal float64
	Events               []Event
	Seed                 uint64
}

// Generate builds the series with its events applied.
func Generate(cfg GenConfig) (Series, error) {
	if cfg.Days <= 0 {
		return Series{}, fmt.Errorf("measure: need positive days, got %d", cfg.Days)
	}
	r := rng.New(cfg.Seed)
	vals := make([]float64, cfg.Days)
	for d := range vals {
		v := cfg.Base + cfg.Noise*r.NormFloat64()
		if cfg.Diurnal > 0 {
			v += cfg.Diurnal * math.Sin(2*math.Pi*float64(d)/7)
		}
		vals[d] = v
	}
	for _, e := range cfg.Events {
		mag := e.Magnitude
		if cfg.Metric == ThroughputMbps {
			mag = -mag
		}
		for d := e.Day; d < e.Day+e.Duration && d < cfg.Days; d++ {
			if d >= 0 {
				vals[d] += mag
			}
		}
	}
	// Loss rates and throughputs cannot go negative.
	if cfg.Metric == LossRate || cfg.Metric == ThroughputMbps {
		for i, v := range vals {
			if v < 0 {
				vals[i] = 0
			}
		}
	}
	return Series{Metric: cfg.Metric, Values: vals}, nil
}

// Detection is one detected anomaly.
type Detection struct {
	Day   int
	Score float64
}

// ZScoreDetect flags days whose value deviates from the trailing-window
// mean by more than threshold standard deviations. The first window days
// cannot alarm. Consecutive alarm days are collapsed to the first.
func ZScoreDetect(s Series, window int, threshold float64) []Detection {
	if window < 2 || len(s.Values) <= window {
		return nil
	}
	var out []Detection
	inAlarm := false
	for d := window; d < len(s.Values); d++ {
		mean, std := meanStd(s.Values[d-window : d])
		if std < 1e-12 {
			std = 1e-12
		}
		z := math.Abs(s.Values[d]-mean) / std
		if z > threshold {
			if !inAlarm {
				out = append(out, Detection{Day: d, Score: z})
			}
			inAlarm = true
		} else {
			inAlarm = false
		}
	}
	return out
}

// CUSUMDetect runs a two-sided CUSUM with reference value k (in sigmas) and
// decision threshold h (in sigmas), using the first window days to estimate
// the in-control mean and sigma. The statistic resets after each alarm.
func CUSUMDetect(s Series, window int, k, h float64) []Detection {
	if window < 2 || len(s.Values) <= window {
		return nil
	}
	mean, std := meanStd(s.Values[:window])
	if std < 1e-12 {
		std = 1e-12
	}
	var out []Detection
	var pos, neg float64
	for d := window; d < len(s.Values); d++ {
		z := (s.Values[d] - mean) / std
		pos = math.Max(0, pos+z-k)
		neg = math.Max(0, neg-z-k)
		if pos > h || neg > h {
			out = append(out, Detection{Day: d, Score: math.Max(pos, neg)})
			pos, neg = 0, 0
		}
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var s float64
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	std = math.Sqrt(s / float64(len(xs)))
	return mean, std
}

// Eval scores detections against ground-truth events: a detection matches
// an event if it falls within [Day, Day+Duration+slack]. Returns recall
// (events detected), precision (detections matching some event), and mean
// detection delay in days over detected events.
type Eval struct {
	Recall, Precision, MeanDelay float64
	Detected, Missed             int
	FalseAlarms                  int
}

// Evaluate computes Eval for a detection set.
func Evaluate(events []Event, detections []Detection, slack int) Eval {
	matchedEvent := make([]bool, len(events))
	delays := make([]float64, 0, len(events))
	false_ := 0
	for _, det := range detections {
		matched := false
		for i, e := range events {
			if det.Day >= e.Day && det.Day <= e.Day+e.Duration+slack {
				if !matchedEvent[i] {
					matchedEvent[i] = true
					delays = append(delays, float64(det.Day-e.Day))
				}
				matched = true
				break
			}
		}
		if !matched {
			false_++
		}
	}
	ev := Eval{FalseAlarms: false_}
	for _, m := range matchedEvent {
		if m {
			ev.Detected++
		} else {
			ev.Missed++
		}
	}
	if len(events) > 0 {
		ev.Recall = float64(ev.Detected) / float64(len(events))
	}
	if len(detections) > 0 {
		ev.Precision = float64(len(detections)-false_) / float64(len(detections))
	}
	if len(delays) > 0 {
		s := 0.0
		for _, d := range delays {
			s += d
		}
		ev.MeanDelay = s / float64(len(delays))
	}
	return ev
}

// TopAnomalousDays returns the k most anomalous days by |deviation from the
// series median|, sorted by day — a model-free summary used by examples.
func TopAnomalousDays(s Series, k int) []int {
	type scored struct {
		day   int
		score float64
	}
	med := median(s.Values)
	ss := make([]scored, len(s.Values))
	for d, v := range s.Values {
		ss[d] = scored{day: d, score: math.Abs(v - med)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].day < ss[b].day
	})
	if k > len(ss) {
		k = len(ss)
	}
	days := make([]int, k)
	for i := 0; i < k; i++ {
		days[i] = ss[i].day
	}
	sort.Ints(days)
	return days
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// EWMADetect runs an exponentially-weighted moving-average control chart:
// the EWMA statistic z_t = lambda*x_t + (1-lambda)*z_{t-1} alarms when it
// leaves the band mean ± width*sigma_z, with mean and sigma estimated from
// the first window days. The statistic re-centers after each alarm.
// EWMA sits between the z-score (fast, spiky) and CUSUM (slow, drifty)
// detectors: lambda near 1 approaches the former, near 0 the latter.
func EWMADetect(s Series, window int, lambda, width float64) []Detection {
	if window < 2 || len(s.Values) <= window || lambda <= 0 || lambda > 1 {
		return nil
	}
	mean, std := meanStd(s.Values[:window])
	if std < 1e-12 {
		std = 1e-12
	}
	// Asymptotic EWMA standard deviation.
	sigmaZ := std * math.Sqrt(lambda/(2-lambda))
	z := mean
	var out []Detection
	for d := window; d < len(s.Values); d++ {
		z = lambda*s.Values[d] + (1-lambda)*z
		dev := math.Abs(z - mean)
		if dev > width*sigmaZ {
			out = append(out, Detection{Day: d, Score: dev / sigmaZ})
			z = mean // re-center after alarm
		}
	}
	return out
}
