package timeline

// The E20 configuration sweep: ~a thousand distinct parameterizations of the
// coupled-rollout scenario driven through the batch runner and the
// content-addressed disk cache. Pins that the composed path scales past
// single goldens — every configuration runs, re-running is pure cache hits,
// and the warm bytes match the cold bytes for the whole sweep.

import (
	"context"
	"testing"

	"repro/internal/experiment"
)

// e20SweepJobs enumerates the sweep grid over a deliberately small world
// (the sweep pins breadth, not depth — golden and property tests pin depth).
func e20SweepJobs(t testing.TB) []experiment.Job {
	t.Helper()
	sc, ok := experiment.Get("E20")
	if !ok {
		t.Fatal("E20 not registered")
	}
	small := experiment.Values{
		"mids": 2, "stubs": 5, "ticks": 8, "competitors": 3,
		"start": 1, "wave-size": 1,
	}
	var jobs []experiment.Job
	for _, pressBelow := range []float64{0.5, 0.7, 0.85, 0.9, 0.99} {
		for _, perTick := range []int{1, 2} {
			for _, hold := range []int{1, 2, 3} {
				for _, regulateAt := range []int{3, 5, 7} {
					for _, waveEvery := range []int{1, 2, 3} {
						for _, seed := range []uint64{1, 2, 3, 4} {
							p := experiment.Values{}
							for k, v := range small {
								p[k] = v
							}
							p["press-below"] = pressBelow
							p["per-tick"] = perTick
							p["hold"] = hold
							p["regulate-at"] = regulateAt
							p["wave-every"] = waveEvery
							jobs = append(jobs, experiment.Job{Scenario: sc, Params: p, Seed: seed})
						}
					}
				}
			}
		}
	}
	return jobs
}

// TestE20SweepThroughRunnerAndCache: the full grid (1080 configurations;
// trimmed under -short) runs cold through the runner with a disk cache, then
// warm — all hits, byte-identical renders.
func TestE20SweepThroughRunnerAndCache(t *testing.T) {
	jobs := e20SweepJobs(t)
	if testing.Short() {
		jobs = jobs[:48]
	}
	cache, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func() (string, experiment.CacheStats) {
		runner := &experiment.Runner{Workers: 0, ScenarioWorkers: 1, Cache: cache}
		results, err := runner.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		return experiment.RenderMarkdown(results), runner.Stats()
	}
	cold, coldStats := run()
	if coldStats.Misses != int64(len(jobs)) || coldStats.Hits != 0 {
		t.Fatalf("cold sweep stats = %+v, want %d pure misses", coldStats, len(jobs))
	}
	warm, warmStats := run()
	if warmStats.Hits != int64(len(jobs)) || warmStats.Misses != 0 {
		t.Fatalf("warm sweep stats = %+v, want %d pure hits", warmStats, len(jobs))
	}
	if cold != warm {
		t.Fatal("warm sweep render differs from cold")
	}
	// Distinct configurations must produce distinct cache keys: the runner
	// executed every job once, so the cache now holds exactly len(jobs)
	// entries' worth of misses (no silent key collisions folding configs).
	if coldStats.Misses+coldStats.Shared != int64(len(jobs)) {
		t.Fatalf("sweep coalesced %d jobs unexpectedly: %+v", coldStats.Shared, coldStats)
	}
}
