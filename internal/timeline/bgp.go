package timeline

// BGPMachine replays KindBGP events through bgpsim's incremental engine. Each
// applied delta produces a Patch, kept on a LIFO stack so Unwind can restore
// the initial converged state pointer-exactly; the incremental-vs-cold
// fallback decision (the uniqueness gate) happens inside Converged.Apply,
// so observations here are identical to cold re-convergence by contract.

import (
	"context"
	"fmt"

	"repro/internal/bgpsim"
)

// BGPMachine is live converged BGP state. Not safe for concurrent use.
type BGPMachine struct {
	c       *bgpsim.Converged
	patches []*bgpsim.Patch
	// Per-tick accumulators, reset by Observe.
	tickEvents int
	tickCells  int
}

// NewBGPMachine converges t (fanning prefix columns over workers goroutines;
// <= 0 means GOMAXPROCS — the tables are bit-identical for any value) and
// wraps the live state; ctx cancels the initial convergence. The topology is
// captured by reference: mutate it only through replayed events while the
// machine is in use.
func NewBGPMachine(ctx context.Context, t *bgpsim.Topology, workers int) (*BGPMachine, error) {
	c, err := t.ConvergeStateCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	return &BGPMachine{c: c}, nil
}

// Cols: events and cells count this tick's applied deltas and the table
// cells they overwrote (the measured blast radius); reachable/reach-share
// and prefixes snapshot the table after the tick's events.
func (m *BGPMachine) Cols() []Col {
	return []Col{
		{Name: "events", Prec: -1},
		{Name: "cells", Prec: -1},
		{Name: "reachable", Prec: -1},
		{Name: "reach-share", Prec: 3},
		{Name: "prefixes", Prec: -1},
	}
}

// Kinds: BGP deltas only.
func (m *BGPMachine) Kinds() []Kind { return []Kind{KindBGP} }

// Apply applies one BGP delta incrementally and records its undo patch.
func (m *BGPMachine) Apply(ev Event) error {
	if ev.Kind != KindBGP {
		return fmt.Errorf("BGP machine cannot apply %s events", ev.Kind)
	}
	p, err := m.c.Apply(ev.Delta)
	if err != nil {
		return err
	}
	m.patches = append(m.patches, p)
	m.tickEvents++
	m.tickCells += p.Cells()
	return nil
}

// Observe reports the tick row and resets the per-tick accumulators.
func (m *BGPMachine) Observe(int) ([]float64, error) {
	rt := m.c.Tables()
	reach, total := rt.ReachableCells()
	share := 0.0
	if total > 0 {
		share = float64(reach) / float64(total)
	}
	_, prefixes := rt.Size()
	row := []float64{
		float64(m.tickEvents),
		float64(m.tickCells),
		float64(reach),
		share,
		float64(prefixes),
	}
	m.tickEvents, m.tickCells = 0, 0
	return row, nil
}

// Unwind reverts every applied event in LIFO order, restoring the machine —
// topology, tables, and shared path chains — to its pre-replay state
// pointer-exactly (the bgpsim Revert guarantee, pinned by the property
// suite via StateFingerprint).
func (m *BGPMachine) Unwind() {
	for i := len(m.patches) - 1; i >= 0; i-- {
		m.c.Revert(m.patches[i])
	}
	m.patches = m.patches[:0]
	m.tickEvents, m.tickCells = 0, 0
}

// Applied returns the number of events applied and not yet unwound.
func (m *BGPMachine) Applied() int { return len(m.patches) }

// State exposes the live converged state for oracles and fingerprinting.
func (m *BGPMachine) State() *bgpsim.Converged { return m.c }
