package timeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bgpsim"
)

// tablesEqualCold compares the live incremental tables of c against a cold
// full convergence of its (mutated) topology — the replay oracle, cell by
// cell through the exported accessors.
func tablesEqualCold(c *bgpsim.Converged) error {
	live := c.Tables()
	cold := c.Topology().Converge()
	for _, n := range c.Topology().ASNs() {
		lp, cp := live.Prefixes(n), cold.Prefixes(n)
		if len(lp) != len(cp) {
			return fmt.Errorf("AS %d: live reaches %d prefixes, cold %d", n, len(lp), len(cp))
		}
		for i := range lp {
			if lp[i] != cp[i] {
				return fmt.Errorf("AS %d: prefix list diverges at %d: %q vs %q", n, i, lp[i], cp[i])
			}
		}
		for _, pfx := range lp {
			lr, cr := live.Route(n, pfx), cold.Route(n, pfx)
			if lr.Learned != cr.Learned || len(lr.Path) != len(cr.Path) {
				return fmt.Errorf("AS %d prefix %s: live %+v, cold %+v", n, pfx, lr, cr)
			}
			for i := range lr.Path {
				if lr.Path[i] != cr.Path[i] {
					return fmt.Errorf("AS %d prefix %s: path diverges at hop %d: %v vs %v", n, pfx, i, lr.Path, cr.Path)
				}
			}
		}
	}
	return nil
}

// readTestdata returns every .timeline script in testdata, keyed by filename.
func readTestdata(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.timeline"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata timeline scripts found")
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(data)
	}
	return out
}

func TestParseDocRoundTripsTestdata(t *testing.T) {
	for name, text := range readTestdata(t) {
		doc, err := ParseDocString(text)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		formatted := FormatDoc(doc)
		doc2, err := ParseDocString(formatted)
		if err != nil {
			t.Errorf("%s: canonical form does not re-parse: %v\n%s", name, err, formatted)
			continue
		}
		if again := FormatDoc(doc2); again != formatted {
			t.Errorf("%s: format not stable:\n--- first ---\n%s\n--- second ---\n%s", name, formatted, again)
		}
	}
}

func TestParseDocFlapstormReplays(t *testing.T) {
	scripts := readTestdata(t)
	doc, err := ParseDocString(scripts["flapstorm.timeline"])
	if err != nil {
		t.Fatal(err)
	}
	if doc.Topo == nil {
		t.Fatal("flapstorm script lost its base topology")
	}
	m, err := NewBGPMachine(context.Background(), doc.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Replay(doc.Stream, m, func(int) error { return tablesEqualCold(m.State()) })
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Rows) != doc.Stream.Horizon {
		t.Fatalf("replay produced %d rows, want %d", len(series.Rows), doc.Stream.Horizon)
	}
}

func TestParseStreamErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":    "frob 1\n",
		"base in stream":       "as 1\n",
		"bad tick":             "@x fail 1\n",
		"negative tick":        "@-1 fail 1\n",
		"huge tick":            fmt.Sprintf("@%d fail 1\n", MaxHorizon),
		"decreasing ticks":     "@3 fail 1\n@2 fail 2\n",
		"bare tick":            "@3\n",
		"bad node":             "@1 fail x\n",
		"negative node":        "@1 fail -4\n",
		"fail arity":           "@1 fail 1 2\n",
		"join arity":           "@1 join IX 5\n",
		"bad policy":           "@1 join IX 5 sometimes\n",
		"bad ASN":              "@1 leave IX notanasn\n",
		"regulate arity":       "@1 regulate MX US\n",
		"duplicate horizon":    "horizon 5\nhorizon 6\n",
		"horizon after event":  "@1 fail 1\nhorizon 5\n",
		"bad horizon":          "horizon 0\n",
		"huge horizon":         fmt.Sprintf("horizon %d\n", MaxHorizon+1),
		"horizon arity":        "horizon 5 6\n",
		"event past horizon":   "horizon 2\n@2 fail 1\n",
		"empty document":       "# only a comment\n",
		"long line":            "@1 regulate " + strings.Repeat("x", maxLineBytes) + "\n",
		"bad delta arity":      "@1 withdraw 5\n",
		"unknown delta signal": "@1 link~ p2c 1 2\n",
		"demand arity":         "@1 demand\n",
		"demand extra arg":     "@1 demand 2 3\n",
		"demand not a number":  "@1 demand much\n",
		"demand zero":          "@1 demand 0\n",
		"demand negative":      "@1 demand -2\n",
		"demand oversized":     "@1 demand 65\n",
		"demand NaN":           "@1 demand NaN\n",
		"stake-shift arity":    "@1 stake-shift\n",
		"stake-shift bad":      "@1 stake-shift sour\n",
		"stake-shift above":    "@1 stake-shift 1.5\n",
		"stake-shift below":    "@1 stake-shift -1.5\n",
		"pressure arity":       "@1 pressure IX 5\n",
		"pressure bad policy":  "@1 pressure IX 5 sometimes\n",
		"pressure bad ASN":     "@1 pressure IX x open\n",
	}
	for name, in := range cases {
		if _, err := ParseStreamString(in); err == nil {
			t.Errorf("%s: ParseStreamString(%q) succeeded, want error", name, in)
		}
	}
}

func TestParseDocShadowValidatesBGPEvents(t *testing.T) {
	base := "as 1\nas 2\np2c 1 2\norigin 2 p\n"
	if _, err := ParseDocString(base + "@1 withdraw 1 p\n"); err == nil {
		t.Error("withdraw by a non-origin passed shadow validation")
	}
	if _, err := ParseDocString(base + "@1 link- p2c 2 1\n"); err == nil {
		t.Error("tearing down a reversed link passed shadow validation")
	}
	// The shadow applies in canonical order: a same-tick migration is valid
	// even written announce-first.
	if _, err := ParseDocString(base + "@1 announce 1 p\n@1 withdraw 2 p\n"); err != nil {
		t.Errorf("same-tick migration rejected: %v", err)
	}
}

func TestParseDocInfersHorizon(t *testing.T) {
	st, err := ParseStreamString("@4 fail 2\n@7 repair 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if st.Horizon != 8 {
		t.Fatalf("inferred horizon = %d, want 8 (last tick + 1)", st.Horizon)
	}
}

// FuzzParseStream drives the document parser with arbitrary text. Whatever
// parses must round-trip: format and reparse to the identical canonical form.
// Documents carrying a base topology additionally replay their BGP events
// through the incremental engine with a cold-convergence oracle after every
// tick — the parser doubles as a scenario generator for the engine oracle,
// mirroring bgpsim's FuzzParseTopology.
func FuzzParseStream(f *testing.F) {
	for _, text := range readTestdata(f) {
		f.Add(text)
	}
	f.Add("horizon 4\n@0 fail 0\n@0 repair 1\n@3 regulate MX\n")
	f.Add("@0 join IX 0 open\n@0 leave IX 1\n")
	f.Add("as 1\nas 2\np2c 1 2\norigin 2 p\nhorizon 3\n@1 withdraw 2 p\n@2 announce 2 p\n")
	f.Add("as 1\nas 2\nas 3\np2c 1 2\np2c 1 3\norigin 3 q\n@1 leak 2\n@1 link- p2c 1 3\n@2 link+ p2c 1 3\n")
	f.Add("horizon 65536\n@65535 fail 1\n")
	f.Add("@0 demand 0.30000000000000004\n@1 pressure IX 9 open\n@2 stake-shift -0.999\n")
	f.Add("horizon 9\n@3 demand 64\n@4 stake-shift 1\n@5 stake-shift -1\n@8 pressure IXP-MX 1000 restrictive\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 2048 {
			return // bound convergence cost, not parser coverage
		}
		doc, err := ParseDocString(text)
		if err != nil {
			return
		}
		formatted := FormatDoc(doc)
		doc2, err := ParseDocString(formatted)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, formatted)
		}
		if again := FormatDoc(doc2); again != formatted {
			t.Fatalf("format not stable on:\n%s\n--- first ---\n%s\n--- second ---\n%s", text, formatted, again)
		}
		// Stream-only round-trip must agree with the document one.
		st, err := ParseStreamString(FormatStream(doc.Stream))
		if err != nil {
			t.Fatalf("formatted stream does not re-parse: %v", err)
		}
		if FormatStream(st) != FormatStream(doc.Stream) {
			t.Fatalf("stream round-trip drifted on:\n%s", text)
		}
		if doc.Topo == nil || doc.Stream.Horizon > 128 {
			return
		}
		// Parse promised every BGP event applies in canonical order; replay
		// the BGP subset and hold the incremental engine to the cold oracle
		// after every tick.
		sub := Stream{Horizon: doc.Stream.Horizon}
		for _, e := range doc.Stream.Events {
			if e.Kind == KindBGP {
				sub.Events = append(sub.Events, e)
			}
		}
		m, err := NewBGPMachine(context.Background(), doc.Topo, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(sub, m, func(int) error { return tablesEqualCold(m.State()) }); err != nil {
			t.Fatalf("validated document failed replay: %v\n%s", err, text)
		}
	})
}
