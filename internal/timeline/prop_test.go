package timeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/cn"
	"repro/internal/experiment"
	"repro/internal/proptest"
	"repro/internal/rng"
)

// Property suite for the timeline engine. The invariants it pins:
//
//   - replay determinism: the same (world seed, stream) renders byte-equal
//     observation tables at every worker count;
//   - canonicalization: any permutation of a stream's events replays to the
//     same bytes, and the canonical form is a fixpoint;
//   - the incremental oracle: after every tick the live incremental tables
//     are cell-identical to a cold convergence of the mutated topology
//     (extending bgpsim's per-delta oracle to whole streams, PR 7 pattern);
//   - revert: unwinding a replayed machine restores the pre-replay state
//     pointer-exactly, as certified by the chain-head fingerprint.

// worldSpec describes a rebuildable BGP world plus one generated stream over
// it. Building from a seed (rather than drawing the topology edge by edge)
// keeps worlds rebuildable: determinism properties need several identical
// copies of the same world. Each iteration exercises ONE generator — a flap
// storm or a prefix migration — because applicability is a per-generator
// guarantee: two generators merged over the same prefixes can contradict
// each other (Merge unions events, it does not reconcile them).
type worldSpec struct {
	seed    uint64
	mids    int
	stubs   int
	ticks   int
	perTick int
	hold    int
	migrate bool
}

func drawWorldSpec(g *proptest.G) worldSpec {
	return worldSpec{
		seed:    g.Uint64(),
		mids:    g.IntRange(2, 4),
		stubs:   g.IntRange(3, 8),
		ticks:   g.IntRange(4, 12),
		perTick: g.IntRange(1, 2),
		hold:    g.IntRange(1, 3),
		migrate: g.Bool(0.3),
	}
}

func (w worldSpec) build() (*bgpsim.Hierarchy, Stream, error) {
	h, err := bgpsim.BuildHierarchy(rng.New(w.seed), w.mids, w.stubs)
	if err != nil {
		return nil, Stream{}, err
	}
	var st Stream
	if w.migrate {
		st, err = GenPrefixMigration(h, w.seed^streamSalt, w.ticks, w.hold+1)
	} else {
		st, err = GenFlapStorm(h, w.seed^streamSalt, w.ticks, w.perTick, w.hold)
	}
	if err != nil {
		return nil, Stream{}, err
	}
	return h, st, nil
}

// renderStream replays s over a fresh copy of w's world at the given worker
// count and returns the rendered observation table.
func renderStream(w worldSpec, s Stream, workers int) (string, error) {
	h, err := bgpsim.BuildHierarchy(rng.New(w.seed), w.mids, w.stubs)
	if err != nil {
		return "", err
	}
	m, err := NewBGPMachine(context.Background(), h.Topo, workers)
	if err != nil {
		return "", err
	}
	series, err := Replay(s, m)
	if err != nil {
		return "", err
	}
	res := &experiment.Result{ID: "P", Title: "prop series"}
	series.Table(res, "P", "prop series")
	return experiment.RenderMarkdown([]*experiment.Result{res}), nil
}

// TestPropReplayDeterministicAcrossWorkers: same seed + stream, any worker
// count, byte-identical observation tables — the contract that lets the
// batch runner, disk cache, and humnetd treat temporal scenarios like
// equilibrium ones.
func TestPropReplayDeterministicAcrossWorkers(t *testing.T) {
	proptest.Run(t, 901, 15, func(g *proptest.G) error {
		w := drawWorldSpec(g)
		_, stream, err := w.build()
		if err != nil {
			return err
		}
		base, err := renderStream(w, stream, 1)
		if err != nil {
			return fmt.Errorf("workers=1: %w", err)
		}
		for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
			got, err := renderStream(w, stream, workers)
			if err != nil {
				return fmt.Errorf("workers=%d: %w", workers, err)
			}
			if got != base {
				return fmt.Errorf("workers=%d table differs from workers=1 on %+v", workers, w)
			}
		}
		return nil
	})
}

// TestPropCanonicalizationInvariance: replay is a function of the event
// multiset, not the order events were generated in.
func TestPropCanonicalizationInvariance(t *testing.T) {
	proptest.Run(t, 902, 20, func(g *proptest.G) error {
		w := drawWorldSpec(g)
		_, stream, err := w.build()
		if err != nil {
			return err
		}
		base, err := renderStream(w, stream, 1)
		if err != nil {
			return err
		}
		perm := g.Perm(len(stream.Events))
		shuffled := Stream{Horizon: stream.Horizon, Events: make([]Event, len(stream.Events))}
		for i, j := range perm {
			shuffled.Events[i] = stream.Events[j]
		}
		got, err := renderStream(w, shuffled, 1)
		if err != nil {
			return fmt.Errorf("shuffled replay failed: %w", err)
		}
		if got != base {
			return fmt.Errorf("shuffled stream replays differently on %+v", w)
		}
		if FormatStream(shuffled) != FormatStream(stream) {
			return fmt.Errorf("shuffled stream formats differently on %+v", w)
		}
		canon := shuffled.Canonicalize()
		again := canon.Canonicalize()
		for i := range canon.Events {
			if canon.Events[i] != again.Events[i] {
				return fmt.Errorf("canonicalize not a fixpoint at event %d", i)
			}
		}
		return nil
	})
}

// TestPropIncrementalMatchesColdEveryTick: the replay hook runs the cold
// oracle after each tick, so any divergence between the incremental engine
// (with its uniqueness-gate fallback) and full recomputation is pinned to
// the first tick it appears.
func TestPropIncrementalMatchesColdEveryTick(t *testing.T) {
	proptest.Run(t, 903, 10, func(g *proptest.G) error {
		w := drawWorldSpec(g)
		h, stream, err := w.build()
		if err != nil {
			return err
		}
		m, err := NewBGPMachine(context.Background(), h.Topo, 1)
		if err != nil {
			return err
		}
		_, err = Replay(stream, m, func(tick int) error {
			if err := tablesEqualCold(m.State()); err != nil {
				return fmt.Errorf("tick %d diverges from cold oracle: %w", tick, err)
			}
			return nil
		})
		return err
	})
}

// TestPropUnwindRestoresStatePointerExactly: after a full replay, reverting
// every patch in LIFO order restores the converged state — tables, applied
// depth, and shared path-chain heads — to the pre-replay fingerprint.
func TestPropUnwindRestoresStatePointerExactly(t *testing.T) {
	proptest.Run(t, 904, 20, func(g *proptest.G) error {
		w := drawWorldSpec(g)
		h, stream, err := w.build()
		if err != nil {
			return err
		}
		m, err := NewBGPMachine(context.Background(), h.Topo, 1)
		if err != nil {
			return err
		}
		before := m.State().StateFingerprint()
		if _, err := Replay(stream, m); err != nil {
			return err
		}
		if len(stream.Events) > 0 && m.Applied() != len(stream.Events) {
			return fmt.Errorf("machine recorded %d patches for %d events", m.Applied(), len(stream.Events))
		}
		m.Unwind()
		if m.Applied() != 0 {
			return fmt.Errorf("unwound machine still holds %d patches", m.Applied())
		}
		if after := m.State().StateFingerprint(); after != before {
			return fmt.Errorf("fingerprint %#x after unwind, %#x before on %+v", after, before, w)
		}
		// The unwound machine is live: the same stream replays again to the
		// same place.
		if _, err := Replay(stream, m); err != nil {
			return fmt.Errorf("re-replay after unwind failed: %w", err)
		}
		return nil
	})
}

// TestPropCNReplayDeterministic: the CN machine's demand process is a pure
// function of the config seed, so equal configs and streams produce equal
// tables, and generated churn always replays.
func TestPropCNReplayDeterministic(t *testing.T) {
	proptest.Run(t, 905, 20, func(g *proptest.G) error {
		seed := g.Uint64()
		members := g.IntRange(3, 16)
		ticks := g.IntRange(3, 20)
		failProb := g.Float64Range(0, 0.4)
		repairAfter := g.IntRange(1, 4)
		stream, err := GenCNChurn(members, seed^streamSalt, ticks, failProb, repairAfter)
		if err != nil {
			return err
		}
		// Some seeds cannot place a connected mesh at the default radius;
		// that is a world-construction precondition, not a replay property —
		// discard those draws.
		if _, err := NewCNMachine(cn.ChurnConfig{Members: members, Seed: seed}, &cn.CPR{}); errors.Is(err, cn.ErrDisconnected) {
			return nil
		}
		render := func() (string, error) {
			m, err := NewCNMachine(cn.ChurnConfig{Members: members, Seed: seed}, &cn.CPR{})
			if err != nil {
				return "", err
			}
			series, err := Replay(stream, m)
			if err != nil {
				return "", err
			}
			res := &experiment.Result{ID: "C", Title: "cn series"}
			series.Table(res, "C", "cn series")
			return experiment.RenderMarkdown([]*experiment.Result{res}), nil
		}
		a, err := render()
		if err != nil {
			return err
		}
		b, err := render()
		if err != nil {
			return err
		}
		if a != b {
			return fmt.Errorf("two replays of the same churn differ (members=%d ticks=%d)", members, ticks)
		}
		return nil
	})
}
