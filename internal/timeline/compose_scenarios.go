package timeline

// Composed mega-scenarios: E20 (mandatory-peering rollout under routing
// pressure: timeline → bgpsim → ixp), E21 (regional outage cascade: bgpsim
// reach-loss driving cn demand under a scheduler discipline), and E22
// (stakeholder response closing the loop through survey/par). Each couples
// two domains through Compose with cascade rules, replays one merged stream,
// and renders per-part time series plus the cascade injection log — the
// cross-domain dynamics the paper's §3–§4 describe, flowing through the same
// registry/runner/cache/daemon path as every other scenario.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bgpsim"
	"repro/internal/cn"
	"repro/internal/experiment"
	"repro/internal/ixp"
	"repro/internal/rng"
)

// The fixed cast of the Mexican-market scenarios (E19, E20, E22): one
// foreign transit, one restrictive incumbent, and competitors rolling onto
// the domestic exchange.
const (
	transitASN   = bgpsim.ASN(1)
	incumbentASN = bgpsim.ASN(100)
	compBase     = bgpsim.ASN(1000)
	mxIXP        = "IXP-MX"
)

// buildMXWorld constructs the Mexican attachment world: a US transit over a
// restrictive incumbent and nComp competitors (all MX, each originating one
// prefix), one domestic exchange, and the all-pairs domestic demand matrix
// whose locality the scenarios measure. Pure construction — no RNG — so
// every scenario sharing it builds the identical world.
func buildMXWorld(nComp int) (*ixp.Fabric, []ixp.Demand, []bgpsim.ASN, error) {
	topo := bgpsim.NewTopology()
	if err := topo.AddAS(transitASN, bgpsim.ASInfo{Name: "Transit", Country: "US"}); err != nil {
		return nil, nil, nil, err
	}
	if err := topo.AddAS(incumbentASN, bgpsim.ASInfo{Name: "Incumbent", Country: "MX", Org: "incumbent"}); err != nil {
		return nil, nil, nil, err
	}
	if err := topo.AddProviderCustomer(transitASN, incumbentASN); err != nil {
		return nil, nil, nil, err
	}
	if err := topo.Originate(incumbentASN, "pfx-incumbent"); err != nil {
		return nil, nil, nil, err
	}
	comps := make([]bgpsim.ASN, nComp)
	for i := range comps {
		comps[i] = compBase + bgpsim.ASN(i)
		if err := topo.AddAS(comps[i], bgpsim.ASInfo{Name: fmt.Sprintf("Comp-%d", i), Country: "MX"}); err != nil {
			return nil, nil, nil, err
		}
		if err := topo.AddProviderCustomer(transitASN, comps[i]); err != nil {
			return nil, nil, nil, err
		}
		if err := topo.Originate(comps[i], fmt.Sprintf("pfx-comp%d", i)); err != nil {
			return nil, nil, nil, err
		}
	}
	f := ixp.NewFabric(topo)
	if _, err := f.AddIXP(mxIXP, "MX"); err != nil {
		return nil, nil, nil, err
	}
	mxASes := append([]bgpsim.ASN{incumbentASN}, comps...)
	prefixes := map[bgpsim.ASN]string{incumbentASN: "pfx-incumbent"}
	for i, c := range comps {
		prefixes[c] = fmt.Sprintf("pfx-comp%d", i)
	}
	var demands []ixp.Demand
	for _, src := range mxASes {
		for _, dst := range mxASes {
			if src == dst {
				continue
			}
			demands = append(demands, ixp.Demand{Src: src, Prefix: prefixes[dst], Volume: 1})
		}
	}
	return f, demands, comps, nil
}

func init() {
	experiment.Register(experiment.Def{
		ID:    "E20",
		Title: "Coupled rollout: routing pressure joins the exchange",
		Claim: "When a flap storm degrades transit reachability, cascade pressure pushes competitors onto the exchange ahead of the staged rollout schedule: the coupled economy reaches full membership and higher domestic share earlier than the uncoupled control.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "mids", Kind: experiment.Int, Default: 4, Doc: "mid-tier ASes in the routing hierarchy"},
			{Name: "stubs", Kind: experiment.Int, Default: 10, Doc: "stub ASes (each originates a prefix)"},
			{Name: "per-tick", Kind: experiment.Int, Default: 2, Doc: "flap attempts per tick"},
			{Name: "hold", Kind: experiment.Int, Default: 3, Doc: "ticks a flapped link/prefix stays down"},
			{Name: "competitors", Kind: experiment.Int, Default: 6, Doc: "competitor ASes rolling onto the IXP"},
			{Name: "start", Kind: experiment.Int, Default: 2, Doc: "tick of the first scheduled join wave"},
			{Name: "wave-every", Kind: experiment.Int, Default: 3, Doc: "ticks between join waves"},
			{Name: "wave-size", Kind: experiment.Int, Default: 1, Doc: "joins per wave"},
			{Name: "regulate-at", Kind: experiment.Int, Default: 12, Doc: "tick mandatory peering takes effect"},
			{Name: "press-below", Kind: experiment.Float, Default: 0.97, Doc: "reach-share below which routing pressure fires"},
			{Name: "ticks", Kind: experiment.Int, Default: 16, Doc: "ticks to replay"},
		},
		Run: runE20,
	})
	experiment.Register(experiment.Def{
		ID:    "E21",
		Title: "Regional outage cascade into the community network",
		Claim: "A regional transit outage propagates across domains: BGP reach-loss triggers a demand surge in the community network, and the CPR discipline holds light-user satisfaction through the surge that proportional sharing would sacrifice.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "mids", Kind: experiment.Int, Default: 4, Doc: "mid-tier ASes in the routing hierarchy"},
			{Name: "stubs", Kind: experiment.Int, Default: 10, Doc: "stub ASes (each originates a prefix)"},
			{Name: "region", Kind: experiment.Int, Default: 3, Doc: "stubs in the outage region"},
			{Name: "out-at", Kind: experiment.Int, Default: 6, Doc: "tick the regional outage begins"},
			{Name: "out-len", Kind: experiment.Int, Default: 8, Doc: "ticks the outage lasts"},
			{Name: "members", Kind: experiment.Int, Default: 24, Doc: "community members sharing the uplink"},
			{Name: "fail-prob", Kind: experiment.Float, Default: 0.04, Doc: "per-member background failure probability per tick"},
			{Name: "repair-after", Kind: experiment.Int, Default: 4, Doc: "ticks until a failed member is repaired"},
			{Name: "heavy-frac", Kind: experiment.Float, Default: 0.2, Doc: "fraction of heavy users"},
			{Name: "capacity-factor", Kind: experiment.Float, Default: 0.6, Doc: "capacity / mean offered load"},
			{Name: "scheduler", Kind: experiment.String, Default: "cpr", Doc: "scheduling discipline: proportional, maxmin, or cpr"},
			{Name: "surge", Kind: experiment.Float, Default: 2.5, Doc: "demand scale while reachability is degraded"},
			{Name: "reach-thr", Kind: experiment.Float, Default: 0.95, Doc: "reach-share below which demand surges"},
			{Name: "ticks", Kind: experiment.Int, Default: 28, Doc: "ticks to replay"},
		},
		Run: runE21,
	})
	experiment.Register(experiment.Def{
		ID:    "E22",
		Title: "Stakeholder response closes the loop",
		Claim: "Poor traffic locality depresses community-operator attitudes; the stratified survey — biased toward visible operators — still detects the drop, a one-shot regulation follows, and forced incumbent peering restores both locality and attitude while marginal stakeholders enter the evaluation phase.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "competitors", Kind: experiment.Int, Default: 6, Doc: "competitor ASes rolling onto the IXP"},
			{Name: "start", Kind: experiment.Int, Default: 1, Doc: "tick of the first join wave"},
			{Name: "wave-every", Kind: experiment.Int, Default: 2, Doc: "ticks between join waves"},
			{Name: "wave-size", Kind: experiment.Int, Default: 2, Doc: "joins per wave"},
			{Name: "sample-per-stratum", Kind: experiment.Int, Default: 25, Doc: "survey contacts per stratum per tick"},
			{Name: "noise", Kind: experiment.Float, Default: 0.05, Doc: "survey response noise"},
			{Name: "respond-below", Kind: experiment.Float, Default: 0.45, Doc: "measured attitude below which regulation fires"},
			{Name: "mood-spread", Kind: experiment.Float, Default: 0.6, Doc: "attitude shift per unit of domestic-share deviation from 0.5"},
			{Name: "ticks", Kind: experiment.Int, Default: 12, Doc: "ticks to replay"},
		},
		Run: runE22,
	})
}

// runE20 replays the coupled rollout (flap storm + staged joins + cascade
// pressure) and an uncoupled control of the same world and stream, then
// compares them.
func runE20(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	nComp, ticks := p.Int("competitors"), p.Int("ticks")
	if nComp < 1 || nComp > 64 {
		return nil, fmt.Errorf("timeline: competitors %d outside [1, 64]", nComp)
	}
	pressBelow := p.Float("press-below")

	// The merged stream is shared by both runs; the worlds must be fresh per
	// run (replay mutates them). The control composes the same parts with no
	// cascade rules — the uncoupled economy.
	build := func(coupled bool) (*Composition, error) {
		h, err := bgpsim.BuildHierarchy(rng.New(seed), p.Int("mids"), p.Int("stubs"))
		if err != nil {
			return nil, err
		}
		routing, err := NewBGPMachine(ctx, h.Topo, experiment.WorkersFrom(ctx))
		if err != nil {
			return nil, err
		}
		f, demands, comps, err := buildMXWorld(nComp)
		if err != nil {
			return nil, err
		}
		attachment, err := NewIXPMachine(ctx, f, demands, "MX", experiment.WorkersFrom(ctx))
		if err != nil {
			return nil, err
		}
		var rules []CascadeRule
		if coupled {
			rules = []CascadeRule{{
				Name:  "outage-pressure",
				From:  "routing",
				Delay: 1,
				Once:  true,
				Fire: func(o Obs) []Event {
					share, ok := o.Value("reach-share")
					if !ok || share >= pressBelow {
						return nil
					}
					evs := make([]Event, 0, len(comps))
					for _, c := range comps {
						evs = append(evs, Event{Kind: KindIXPPressure, Name: mxIXP, ASN: c, Policy: ixp.Open})
					}
					return evs
				},
			}}
		}
		return Compose([]Part{{Name: "routing", M: routing}, {Name: "attachment", M: attachment}}, rules)
	}

	// Stream: the storm over the hierarchy, the staged rollout and scheduled
	// regulation over the exchange.
	h, err := bgpsim.BuildHierarchy(rng.New(seed), p.Int("mids"), p.Int("stubs"))
	if err != nil {
		return nil, err
	}
	storm, err := GenFlapStorm(h, seed^streamSalt, ticks, p.Int("per-tick"), p.Int("hold"))
	if err != nil {
		return nil, err
	}
	comps := make([]bgpsim.ASN, nComp)
	for i := range comps {
		comps[i] = compBase + bgpsim.ASN(i)
	}
	rollout, err := GenStagedRollout(mxIXP, comps, ixp.Open, seed^streamSalt,
		p.Int("start"), p.Int("wave-every"), p.Int("wave-size"), ticks)
	if err != nil {
		return nil, err
	}
	// The schedule is a plan, not a guarantee: cascade pressure may get a
	// competitor onto the exchange before its wave. Soften the scheduled
	// joins to pressure events (idempotent joins) so the plan and the
	// cascade compose.
	for i, e := range rollout.Events {
		if e.Kind == KindIXPJoin {
			rollout.Events[i].Kind = KindIXPPressure
		}
	}
	fixed := Stream{Horizon: ticks, Events: []Event{
		{At: 0, Kind: KindIXPJoin, Name: mxIXP, ASN: incumbentASN, Policy: ixp.Restrictive},
		{At: p.Int("regulate-at"), Kind: KindRegulate, Name: "MX"},
	}}
	st, err := Merge(storm, rollout, fixed)
	if err != nil {
		return nil, err
	}

	coupled, err := build(true)
	if err != nil {
		return nil, err
	}
	coupledOut, err := coupled.ReplayCtx(ctx, st)
	if err != nil {
		return nil, err
	}
	control, err := build(false)
	if err != nil {
		return nil, err
	}
	controlOut, err := control.ReplayCtx(ctx, st)
	if err != nil {
		return nil, err
	}

	res := &experiment.Result{}
	coupledOut.Tables(res, "E20", "Coupled rollout")
	sum := res.AddTable("E20-vs-control", "Coupled vs. uncoupled rollout",
		"run", "members-final", "sessions-final", "domestic-final", "pressure-events")
	for _, r := range []struct {
		name string
		out  *ComposedSeries
	}{{"coupled", coupledOut}, {"control", controlOut}} {
		att := r.out.Series[1]
		last := att.Rows[len(att.Rows)-1]
		sum.AddRow(experiment.S(r.name), experiment.I(int(last[0])), experiment.I(int(last[1])),
			experiment.F3(last[2]), experiment.I(len(r.out.Injected)))
	}
	return res, nil
}

// runE21 replays a scripted regional outage through the routing part while a
// cascade rule re-asserts the community network's demand scale every tick:
// surge while reachability is degraded, baseline otherwise.
func runE21(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	ticks := p.Int("ticks")
	region, outAt, outLen := p.Int("region"), p.Int("out-at"), p.Int("out-len")
	h, err := bgpsim.BuildHierarchy(rng.New(seed), p.Int("mids"), p.Int("stubs"))
	if err != nil {
		return nil, err
	}
	if region < 1 || region > len(h.Stubs) {
		return nil, fmt.Errorf("timeline: region %d outside [1, %d]", region, len(h.Stubs))
	}
	if outAt < 0 || outLen < 1 || outAt+outLen >= ticks {
		return nil, fmt.Errorf("timeline: outage [%d, %d) does not fit before tick %d", outAt, outAt+outLen, ticks)
	}
	surge, reachThr := p.Float("surge"), p.Float("reach-thr")
	if surge <= 0 || surge > MaxDemandScale {
		return nil, fmt.Errorf("timeline: surge %v outside (0, %d]", surge, MaxDemandScale)
	}
	sched, err := schedulerByName(p.String("scheduler"))
	if err != nil {
		return nil, err
	}

	// The outage: every provider link of the region's stubs goes down at
	// out-at and is restored out-len ticks later.
	outage := Stream{Horizon: ticks}
	for _, stub := range h.Stubs[:region] {
		for _, prov := range providerList(h.Topo, stub) {
			down := bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: prov, B: stub}
			up := bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: prov, B: stub}
			outage.Events = append(outage.Events,
				Event{At: outAt, Kind: KindBGP, Delta: down},
				Event{At: outAt + outLen, Kind: KindBGP, Delta: up})
		}
	}
	churn, err := GenCNChurn(p.Int("members"), seed^streamSalt, ticks,
		p.Float("fail-prob"), p.Int("repair-after"))
	if err != nil {
		return nil, err
	}
	st, err := Merge(outage, churn)
	if err != nil {
		return nil, err
	}

	routing, err := NewBGPMachine(ctx, h.Topo, experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	community, err := NewCNMachine(cn.ChurnConfig{
		Members:        p.Int("members"),
		HeavyFrac:      p.Float("heavy-frac"),
		CapacityFactor: p.Float("capacity-factor"),
		Seed:           seed,
	}, sched)
	if err != nil {
		return nil, err
	}
	// The rule tracks the scale it last asserted so the injection log records
	// transitions (surge onset, recovery) instead of a per-tick drumbeat; the
	// demand scale is sticky in the community machine, so asserting only the
	// changes replays identically.
	lastScale := 1.0
	comp, err := Compose(
		[]Part{{Name: "routing", M: routing}, {Name: "community", M: community}},
		[]CascadeRule{{
			Name:  "demand-coupling",
			From:  "routing",
			Delay: 1,
			Fire: func(o Obs) []Event {
				share, ok := o.Value("reach-share")
				if !ok {
					return nil
				}
				scale := 1.0
				if share < reachThr {
					scale = surge
				}
				if scale == lastScale {
					return nil
				}
				lastScale = scale
				return []Event{{Kind: KindCNDemand, Value: scale}}
			},
		}},
	)
	if err != nil {
		return nil, err
	}
	out, err := comp.ReplayCtx(ctx, st)
	if err != nil {
		return nil, err
	}

	res := &experiment.Result{}
	out.Tables(res, "E21", "Regional outage cascade")
	comm := out.Series[1]
	minSat, minShare := 1.0, 1.0
	for _, row := range comm.Rows {
		if row[4] < minSat {
			minSat = row[4]
		}
		if row[3] < minShare {
			minShare = row[3]
		}
	}
	surgeOnsets := 0
	for _, e := range out.Injected {
		if e.Kind == KindCNDemand && e.Value > 1 {
			surgeOnsets++
		}
	}
	sum := res.AddTable("E21-totals", "Outage cascade summary",
		"scheduler", "surge-onsets", "min-served-share", "min-light-sat")
	sum.AddRow(experiment.S(sched.Name()), experiment.I(surgeOnsets),
		experiment.F3(minShare), experiment.F3(minSat))
	return res, nil
}

// runE22 replays the closed loop: attachment locality moves stakeholder
// attitudes; the measured attitude, once below the response threshold, fires
// a one-shot regulation back into the attachment domain.
func runE22(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	nComp, ticks := p.Int("competitors"), p.Int("ticks")
	if nComp < 1 || nComp > 64 {
		return nil, fmt.Errorf("timeline: competitors %d outside [1, 64]", nComp)
	}
	f, demands, comps, err := buildMXWorld(nComp)
	if err != nil {
		return nil, err
	}
	attachment, err := NewIXPMachine(ctx, f, demands, "MX", experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	stakeholders, err := NewStakeholderMachine(seed^streamSalt,
		p.Int("sample-per-stratum"), p.Float("noise"), p.Float("respond-below"))
	if err != nil {
		return nil, err
	}

	rollout, err := GenStagedRollout(mxIXP, comps, ixp.Open, seed^streamSalt,
		p.Int("start"), p.Int("wave-every"), p.Int("wave-size"), ticks)
	if err != nil {
		return nil, err
	}
	fixed := Stream{Horizon: ticks, Events: []Event{
		{At: 0, Kind: KindIXPJoin, Name: mxIXP, ASN: incumbentASN, Policy: ixp.Restrictive},
	}}
	st, err := Merge(rollout, fixed)
	if err != nil {
		return nil, err
	}

	spread, respondBelow := p.Float("mood-spread"), p.Float("respond-below")
	// The mood shift is quantized to millis (legible logs, exact replay) and
	// only re-asserted when it changes — the shift is sticky in the
	// stakeholder machine, so transitions replay identically to a drumbeat.
	lastShift := math.NaN()
	comp, err := Compose(
		[]Part{{Name: "attachment", M: attachment}, {Name: "stakeholders", M: stakeholders}},
		[]CascadeRule{
			{
				Name:  "service-mood",
				From:  "attachment",
				Delay: 1,
				Fire: func(o Obs) []Event {
					domestic, ok := o.Value("domestic")
					if !ok {
						return nil
					}
					shift := math.Round(spread*(domestic-0.5)*1000) / 1000
					if shift < -1 {
						shift = -1
					}
					if shift > 1 {
						shift = 1
					}
					if shift == lastShift {
						return nil
					}
					lastShift = shift
					return []Event{{Kind: KindStakeShift, Value: shift}}
				},
			},
			{
				Name:  "backlash-regulation",
				From:  "stakeholders",
				Delay: 1,
				Once:  true,
				Fire: func(o Obs) []Event {
					measured, ok := o.Value("measured")
					if !ok || measured >= respondBelow {
						return nil
					}
					return []Event{{Kind: KindRegulate, Name: "MX"}}
				},
			},
		},
	)
	if err != nil {
		return nil, err
	}
	out, err := comp.ReplayCtx(ctx, st)
	if err != nil {
		return nil, err
	}

	res := &experiment.Result{}
	out.Tables(res, "E22", "Stakeholder response loop")
	att, stake := out.Series[0], out.Series[1]
	attitudeMin := 1.0
	for _, row := range stake.Rows {
		if row[0] < attitudeMin {
			attitudeMin = row[0]
		}
	}
	regulateTick := -1
	for _, e := range out.Injected {
		if e.Kind == KindRegulate {
			regulateTick = e.At
			break
		}
	}
	lastAtt := att.Rows[len(att.Rows)-1]
	firstStake, lastStake := stake.Rows[0], stake.Rows[len(stake.Rows)-1]
	sum := res.AddTable("E22-totals", "Loop summary",
		"attitude-initial", "attitude-min", "attitude-final",
		"regulate-tick", "domestic-final", "engagement-final")
	sum.AddRow(experiment.F3(firstStake[0]), experiment.F3(attitudeMin), experiment.F3(lastStake[0]),
		experiment.I(regulateTick), experiment.F3(lastAtt[2]), experiment.F3(lastStake[3]))
	return res, nil
}
