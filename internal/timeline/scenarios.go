package timeline

// Scenario registrations for the temporal experiments: E17 (flap storm vs.
// incremental convergence), E18 (CN churn under a maintenance policy), and
// E19 (staged mandatory-peering rollout). Each builds its world and stream
// from the scenario seed alone and replays through the matching machine, so
// the registry, batch runner, disk cache, and humnetd serve them like any
// equilibrium scenario — the rows just happen to be ticks.

import (
	"context"
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/cn"
	"repro/internal/experiment"
	"repro/internal/ixp"
	"repro/internal/rng"
)

// streamSalt decorrelates the stream generator's seed from the world
// builder's: both derive from the scenario seed, but through different
// mixes, so the failure schedule never echoes the topology draw.
const streamSalt = 0x74696d656c696e65 // "timeline"

func init() {
	experiment.Register(experiment.Def{
		ID:    "E17",
		Title: "Flap storm vs. incremental convergence",
		Claim: "Under a sustained link/prefix flap storm, the incremental engine tracks cold convergence tick for tick: reachability dips and recovers with each flap window while per-event blast radius stays far below full-table recomputation.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "mids", Kind: experiment.Int, Default: 6, Doc: "mid-tier ASes in the generated hierarchy"},
			{Name: "stubs", Kind: experiment.Int, Default: 12, Doc: "stub ASes (each originates a prefix)"},
			{Name: "ticks", Kind: experiment.Int, Default: 24, Doc: "ticks to replay"},
			{Name: "per-tick", Kind: experiment.Int, Default: 2, Doc: "flap attempts per tick"},
			{Name: "hold", Kind: experiment.Int, Default: 3, Doc: "ticks a flapped link/prefix stays down"},
		},
		Run: runE17,
	})
	experiment.Register(experiment.Def{
		ID:    "E18",
		Title: "CN churn under maintenance policy",
		Claim: "With a fixed repair delay, served demand degrades gracefully under node churn — the CPR discipline keeps light users near full satisfaction even as the up-set shrinks.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "members", Kind: experiment.Int, Default: 24, Doc: "community members sharing the uplink"},
			{Name: "ticks", Kind: experiment.Int, Default: 36, Doc: "ticks (demand epochs) to replay"},
			{Name: "fail-prob", Kind: experiment.Float, Default: 0.06, Doc: "per-member failure probability per tick"},
			{Name: "repair-after", Kind: experiment.Int, Default: 4, Doc: "ticks until a failed member is repaired"},
			{Name: "heavy-frac", Kind: experiment.Float, Default: 0.2, Doc: "fraction of heavy users"},
			{Name: "capacity-factor", Kind: experiment.Float, Default: 0.6, Doc: "capacity / mean offered load"},
			{Name: "scheduler", Kind: experiment.String, Default: "cpr", Doc: "scheduling discipline: proportional, maxmin, or cpr"},
		},
		Run: runE18,
	})
	experiment.Register(experiment.Def{
		ID:    "E19",
		Title: "Staged mandatory-peering rollout",
		Claim: "Competitor IXP joins lift domestic traffic share stepwise, but incumbent-bound volume stays on foreign transit until the regulation tick forces the incumbent's sessions — membership alone does not localize traffic.",
		Seed:  42,
		Params: experiment.Schema{
			{Name: "competitors", Kind: experiment.Int, Default: 6, Doc: "competitor ASes rolling onto the IXP"},
			{Name: "start", Kind: experiment.Int, Default: 1, Doc: "tick of the first join wave"},
			{Name: "wave-every", Kind: experiment.Int, Default: 2, Doc: "ticks between join waves"},
			{Name: "wave-size", Kind: experiment.Int, Default: 2, Doc: "joins per wave"},
			{Name: "regulate-at", Kind: experiment.Int, Default: 10, Doc: "tick mandatory peering takes effect"},
			{Name: "ticks", Kind: experiment.Int, Default: 14, Doc: "ticks to replay"},
		},
		Run: runE19,
	})
}

// runE17 replays a flap storm through the incremental BGP engine.
func runE17(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	h, err := bgpsim.BuildHierarchy(rng.New(seed), p.Int("mids"), p.Int("stubs"))
	if err != nil {
		return nil, err
	}
	st, err := GenFlapStorm(h, seed^streamSalt, p.Int("ticks"), p.Int("per-tick"), p.Int("hold"))
	if err != nil {
		return nil, err
	}
	m, err := NewBGPMachine(ctx, h.Topo, experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	series, err := ReplayCtx(ctx, st, m)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	series.Table(res, "E17", "Flap storm vs. incremental convergence")
	totEvents, totCells, minShare := 0.0, 0.0, 1.0
	for _, row := range series.Rows {
		totEvents += row[0]
		totCells += row[1]
		if row[3] < minShare {
			minShare = row[3]
		}
	}
	_, totalCells := m.State().Tables().ReachableCells()
	sum := res.AddTable("E17-totals", "Flap storm totals",
		"events", "cells-touched", "table-cells", "min-reach-share")
	sum.AddRow(experiment.I(int(totEvents)), experiment.I(int(totCells)),
		experiment.I(totalCells), experiment.F3(minShare))
	return res, nil
}

// runE18 replays member churn through the community-network machine.
func runE18(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	sched, err := schedulerByName(p.String("scheduler"))
	if err != nil {
		return nil, err
	}
	st, err := GenCNChurn(p.Int("members"), seed^streamSalt, p.Int("ticks"),
		p.Float("fail-prob"), p.Int("repair-after"))
	if err != nil {
		return nil, err
	}
	m, err := NewCNMachine(cn.ChurnConfig{
		Members:        p.Int("members"),
		HeavyFrac:      p.Float("heavy-frac"),
		CapacityFactor: p.Float("capacity-factor"),
		Seed:           seed,
	}, sched)
	if err != nil {
		return nil, err
	}
	series, err := ReplayCtx(ctx, st, m)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	series.Table(res, "E18", "CN churn under maintenance policy")
	minUp, minShare, satSum := float64(p.Int("members")), 1.0, 0.0
	for _, row := range series.Rows {
		if row[0] < minUp {
			minUp = row[0]
		}
		if row[3] < minShare {
			minShare = row[3]
		}
		satSum += row[4]
	}
	sum := res.AddTable("E18-totals", "Churn summary",
		"scheduler", "min-up", "min-served-share", "mean-light-sat")
	sum.AddRow(experiment.S(sched.Name()), experiment.I(int(minUp)),
		experiment.F3(minShare), experiment.F3(satSum/float64(len(series.Rows))))
	return res, nil
}

// schedulerByName maps the E18 scheduler parameter to a discipline.
func schedulerByName(name string) (cn.Scheduler, error) {
	switch name {
	case "proportional":
		return cn.Proportional{}, nil
	case "maxmin":
		return cn.MaxMin{}, nil
	case "cpr":
		return &cn.CPR{}, nil
	default:
		return nil, fmt.Errorf("timeline: unknown scheduler %q (want proportional, maxmin, or cpr)", name)
	}
}

// runE19 replays a staged rollout plus regulation through the IXP machine.
func runE19(ctx context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	nComp, ticks := p.Int("competitors"), p.Int("ticks")
	if nComp < 1 || nComp > 64 {
		return nil, fmt.Errorf("timeline: competitors %d outside [1, 64]", nComp)
	}
	f, demands, comps, err := buildMXWorld(nComp)
	if err != nil {
		return nil, err
	}

	rollout, err := GenStagedRollout("IXP-MX", comps, ixp.Open, seed^streamSalt,
		p.Int("start"), p.Int("wave-every"), p.Int("wave-size"), ticks)
	if err != nil {
		return nil, err
	}
	fixed := Stream{Horizon: ticks, Events: []Event{
		{At: 0, Kind: KindIXPJoin, Name: "IXP-MX", ASN: incumbentASN, Policy: ixp.Restrictive},
		{At: p.Int("regulate-at"), Kind: KindRegulate, Name: "MX"},
	}}
	// One competitor churns off and back onto the exchange after regulation,
	// exercising session retraction mid-stream — but only if the staged
	// rollout actually got that competitor onto the exchange by then.
	joinedAt := -1
	for _, e := range rollout.Events {
		if e.Kind == KindIXPJoin && e.ASN == comps[0] {
			joinedAt = e.At
			break
		}
	}
	if at := p.Int("regulate-at") + 2; joinedAt >= 0 && at > joinedAt && at+1 < ticks {
		fixed.Events = append(fixed.Events,
			Event{At: at, Kind: KindIXPLeave, Name: "IXP-MX", ASN: comps[0]},
			Event{At: at + 1, Kind: KindIXPJoin, Name: "IXP-MX", ASN: comps[0], Policy: ixp.Open})
	}

	m, err := NewIXPMachine(ctx, f, demands, "MX", experiment.WorkersFrom(ctx))
	if err != nil {
		return nil, err
	}
	st, err := Merge(rollout, fixed)
	if err != nil {
		return nil, err
	}
	series, err := ReplayCtx(ctx, st, m)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	series.Table(res, "E19", "Staged mandatory-peering rollout")
	first, last := series.Rows[0], series.Rows[len(series.Rows)-1]
	sum := res.AddTable("E19-totals", "Rollout summary",
		"domestic-initial", "domestic-final", "sessions-final", "members-final")
	sum.AddRow(experiment.F3(first[2]), experiment.F3(last[2]),
		experiment.I(int(last[1])), experiment.I(int(last[0])))
	return res, nil
}
