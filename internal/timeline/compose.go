package timeline

// The cross-domain composition layer: several Machines running under one
// merged event stream, coupled by cascade rules that turn one machine's
// per-tick observations into events injected into another machine's future
// ticks. This is where the paper's §3–§4 interplay becomes executable — a
// regulation event reshapes attachment economics, a routing outage shifts
// community-network demand, a locality collapse moves stakeholder attitudes
// — with the same determinism contract as single-machine replay.
//
// Determinism argument. Composed replay is bit-identical for any worker
// count because every source of order is pinned:
//
//  1. The input stream is canonicalized once (Canonicalize), so the scripted
//     events of a tick arrive in the documented application order.
//  2. Cascade rules fire serially, in declaration order, from observation
//     rows that are themselves deterministic (the Machine contract); worker
//     counts only parallelize machine internals, which are bit-identical by
//     those machines' own contracts.
//  3. Injected events are stamped with provenance (Event.Prov = rule name)
//     and a fixed landing tick (tick + Delay, Delay >= 1 — never the current
//     tick, so firing order cannot feed back into the tick that fired), then
//     merged into the due set of their landing tick through the same
//     canonical order, with provenance as the final tie-break.
//  4. Each event is routed to exactly one part: Compose rejects parts with
//     overlapping Kinds() up front, so routing never depends on part order.
//
// Replaying the same canonical stream through the same freshly built parts
// therefore yields byte-identical series, injection logs, and tables.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/experiment"
)

// Part is one named machine inside a composition. The name appears in
// rendered tables, injection provenance errors, and cascade rules' From.
type Part struct {
	Name string
	M    Machine
}

// Obs is the observation a cascade rule fires from: one part's row for the
// tick just completed, with named-column access.
type Obs struct {
	// Part and Tick locate the observation.
	Part string
	Tick int
	cols []Col
	row  []float64
}

// Value returns the named column's value, or false if the part has no such
// column.
func (o Obs) Value(name string) (float64, bool) {
	for i, c := range o.cols {
		if c.Name == name {
			return o.row[i], true
		}
	}
	return 0, false
}

// CascadeRule couples two domains: after every tick, Fire sees the From
// part's observation and may return events to inject at tick+Delay. Rules
// are the composition's only cross-machine channel — machines never see
// each other.
type CascadeRule struct {
	// Name tags injected events' provenance (Event.Prov); one token.
	Name string
	// From names the part whose observation feeds Fire.
	From string
	// Delay is the injection distance in ticks, >= 1: a cascade reacts to a
	// tick, it cannot rewrite it.
	Delay int
	// Once disarms the rule after the first firing that returns events —
	// e.g. a regulation enacted exactly once, however long the pressure
	// lasts.
	Once bool
	// Fire inspects the observation and returns events to inject (nil for
	// none). It must be deterministic in o; the At and Prov fields of
	// returned events are overwritten by the composition.
	Fire func(o Obs) []Event
}

// Composition is a set of parts wired by cascade rules, ready to replay.
// Build it with Compose. Not safe for concurrent use; like machines, parts
// are mutated by replay, so a fresh composition replays one stream once.
type Composition struct {
	parts  []Part
	byKind map[Kind]int // event kind -> index into parts
	rules  []CascadeRule

	fired    []bool
	pending  []Event // injected, not yet due, in injection order
	injected []Event // every injected event, in injection order
	dropped  int     // injected events whose landing tick was past the horizon
}

// Compose validates the wiring and returns a composition. Part names must be
// unique tokens and the parts' Kinds() disjoint (each event kind has exactly
// one consumer); every rule needs a token name unique among rules, a From
// naming a part, Delay >= 1, and a Fire hook.
func Compose(parts []Part, rules []CascadeRule) (*Composition, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("timeline: compose needs at least one part")
	}
	c := &Composition{parts: parts, rules: rules, byKind: make(map[Kind]int)}
	partIdx := make(map[string]int, len(parts))
	for i, p := range parts {
		if err := validateName(p.Name); err != nil {
			return nil, fmt.Errorf("timeline: part %d: %w", i, err)
		}
		if _, dup := partIdx[p.Name]; dup {
			return nil, fmt.Errorf("timeline: duplicate part %q", p.Name)
		}
		if p.M == nil {
			return nil, fmt.Errorf("timeline: part %q has no machine", p.Name)
		}
		partIdx[p.Name] = i
		for _, k := range p.M.Kinds() {
			if j, taken := c.byKind[k]; taken {
				return nil, fmt.Errorf("timeline: parts %q and %q both consume %s events",
					parts[j].Name, p.Name, k)
			}
			c.byKind[k] = i
		}
	}
	ruleNames := make(map[string]bool, len(rules))
	for i, r := range rules {
		if err := validateName(r.Name); err != nil {
			return nil, fmt.Errorf("timeline: rule %d: %w", i, err)
		}
		if ruleNames[r.Name] {
			return nil, fmt.Errorf("timeline: duplicate rule %q", r.Name)
		}
		ruleNames[r.Name] = true
		if _, ok := partIdx[r.From]; !ok {
			return nil, fmt.Errorf("timeline: rule %q fires from unknown part %q", r.Name, r.From)
		}
		if r.Delay < 1 {
			return nil, fmt.Errorf("timeline: rule %q has delay %d (want >= 1)", r.Name, r.Delay)
		}
		if r.Fire == nil {
			return nil, fmt.Errorf("timeline: rule %q has no Fire hook", r.Name)
		}
	}
	c.fired = make([]bool, len(rules))
	return c, nil
}

// ComposedSeries is a composed replay's output: one series per part (same
// order as the parts), the full injection log in injection order, and the
// count of injected events dropped for landing at or past the horizon.
type ComposedSeries struct {
	Parts    []string
	Series   []*Series
	Injected []Event
	Dropped  int
}

// Replay is ReplayCtx under a background context, for callers with no
// context to thread.
func (c *Composition) Replay(s Stream) (*ComposedSeries, error) {
	return c.ReplayCtx(context.Background(), s)
}

// ReplayCtx canonicalizes and validates the stream, then runs it through the
// composition: for each tick, apply the tick's due events (scripted plus
// cascade-injected, in canonical order) each to its consuming part, observe
// every part in part order, then fire the cascade rules in declaration order
// against the new observations. Injected events land at tick+Delay; events
// that would land at or past the horizon are counted in Dropped instead (a
// cascade cannot extend the story), and the total injection count shares the
// stream's MaxEvents budget so a rule mis-firing every tick cannot run away.
func (c *Composition) ReplayCtx(ctx context.Context, s Stream) (*ComposedSeries, error) {
	cs := s.Canonicalize()
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	for i, e := range cs.Events {
		if _, ok := c.byKind[e.Kind]; !ok {
			return nil, fmt.Errorf("timeline: event %d (tick %d): no part consumes %s events", i, e.At, e.Kind)
		}
	}
	out := &ComposedSeries{}
	for _, p := range c.parts {
		out.Parts = append(out.Parts, p.Name)
		out.Series = append(out.Series, &Series{Cols: p.M.Cols()})
	}
	next := 0
	for tick := 0; tick < cs.Horizon; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("timeline: tick %d: %w", tick, err)
		}
		due := make([]Event, 0, 4)
		for next < len(cs.Events) && cs.Events[next].At == tick {
			due = append(due, cs.Events[next])
			next++
		}
		keep := c.pending[:0]
		for _, e := range c.pending {
			if e.At == tick {
				due = append(due, e)
			} else {
				keep = append(keep, e)
			}
		}
		c.pending = keep
		sort.SliceStable(due, func(i, j int) bool { return less(due[i], due[j]) })
		for _, e := range due {
			p := c.parts[c.byKind[e.Kind]]
			if err := p.M.Apply(e); err != nil {
				if e.Prov != "" {
					return nil, fmt.Errorf("timeline: tick %d: part %s: apply %s (injected by %s): %w",
						tick, p.Name, e.Kind, e.Prov, err)
				}
				return nil, fmt.Errorf("timeline: tick %d: part %s: apply %s: %w", tick, p.Name, e.Kind, err)
			}
		}
		obs := make([]Obs, len(c.parts))
		for i, p := range c.parts {
			row, err := p.M.Observe(tick)
			if err != nil {
				return nil, fmt.Errorf("timeline: tick %d: part %s: observe: %w", tick, p.Name, err)
			}
			if len(row) != len(out.Series[i].Cols) {
				return nil, fmt.Errorf("timeline: tick %d: part %s: observation has %d values, want %d",
					tick, p.Name, len(row), len(out.Series[i].Cols))
			}
			out.Series[i].Rows = append(out.Series[i].Rows, row)
			obs[i] = Obs{Part: p.Name, Tick: tick, cols: out.Series[i].Cols, row: row}
		}
		for ri := range c.rules {
			r := &c.rules[ri]
			if r.Once && c.fired[ri] {
				continue
			}
			evs := r.Fire(obs[c.partIndex(r.From)])
			if len(evs) == 0 {
				continue
			}
			c.fired[ri] = true
			for _, e := range evs {
				e.At = tick + r.Delay
				e.Prov = r.Name
				if err := e.validate(); err != nil {
					return nil, fmt.Errorf("timeline: tick %d: rule %s: %w", tick, r.Name, err)
				}
				if _, ok := c.byKind[e.Kind]; !ok {
					return nil, fmt.Errorf("timeline: tick %d: rule %s: no part consumes %s events", tick, r.Name, e.Kind)
				}
				if len(cs.Events)+len(c.injected) >= MaxEvents {
					return nil, fmt.Errorf("timeline: tick %d: rule %s: cascade exceeded the %d-event budget",
						tick, r.Name, MaxEvents)
				}
				if e.At >= cs.Horizon {
					c.dropped++
					continue
				}
				c.pending = append(c.pending, e)
				c.injected = append(c.injected, e)
			}
		}
	}
	out.Injected = append([]Event(nil), c.injected...)
	out.Dropped = c.dropped
	return out, nil
}

// partIndex resolves a part name Compose already validated.
func (c *Composition) partIndex(name string) int {
	for i, p := range c.parts {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Tables renders every part's series into res as "<id>-<part>" tables plus,
// when any event was injected, an "<id>-cascade" table logging each injected
// event (landing tick, firing rule, the event in grammar form) and the
// dropped count as trailing rows. Deterministic, like Series.Table.
func (cs *ComposedSeries) Tables(res *experiment.Result, id, title string) {
	for i, name := range cs.Parts {
		cs.Series[i].Table(res, fmt.Sprintf("%s-%s", id, name), fmt.Sprintf("%s — %s", title, name))
	}
	if len(cs.Injected) == 0 && cs.Dropped == 0 {
		return
	}
	t := res.AddTable(id+"-cascade", title+" — cascade log", "tick", "rule", "event")
	for _, e := range cs.Injected {
		t.AddRow(experiment.I(e.At), experiment.S(e.Prov), experiment.S(formatEvent(e)))
	}
	if cs.Dropped > 0 {
		t.AddRow(experiment.I(-1), experiment.S("(dropped)"), experiment.S(fmt.Sprintf("%d past horizon", cs.Dropped)))
	}
}
