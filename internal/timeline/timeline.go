// Package timeline is the deterministic event-timeline engine: ordered
// streams of at-tick events replayed against live simulation state, emitting
// one observation row per tick. It turns the repository's single-equilibrium
// simulators into the stories the paper actually tells — Telmex re-juggling
// ASNs as regulators respond, community-network nodes failing and being
// repaired, IXP membership shifting under a staged mandatory-peering law.
//
// The engine is three small pieces:
//
//   - Event / Stream (this file): a tick-stamped event with one payload per
//     kind, and an ordered sequence of them with a horizon. Same-tick events
//     apply in a documented canonical order (see Canonicalize), so a stream
//     is a set of (tick, event) pairs with fully deterministic semantics —
//     the order they were generated or written in a file never matters.
//   - Machines (machine.go, bgp.go, cnmachine.go, ixpmachine.go): live state
//     that knows how to apply the events it understands and to observe a row
//     of per-tick metrics. The BGP machine drives bgpsim's incremental
//     engine (falling back to cold column re-convergence exactly where the
//     uniqueness gate demands — that logic lives in bgpsim, not here); the
//     CN and IXP machines drive the churn hooks those packages expose.
//   - Replay (machine.go): the loop — canonicalize, validate, apply each
//     tick's events, observe, collect a time-series that converts to an
//     experiment.Result table.
//
// Streams have a text format (parse.go): `@<tick> <event>` lines after an
// optional base BGP topology, strictly parsed, with FormatStream/FormatDoc
// as exact inverses — every timeline is a replayable artifact.
package timeline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
)

// Kind enumerates the event kinds a stream can carry.
type Kind uint8

const (
	// KindBGP applies a bgpsim delta (withdraw/announce/link+/link-/leak)
	// through the incremental engine. Payload: Delta.
	KindBGP Kind = iota
	// KindCNFail takes a community-network member down. Payload: Node.
	KindCNFail
	// KindCNRepair brings a failed member back up. Payload: Node.
	KindCNRepair
	// KindIXPJoin adds an AS to an exchange. Payload: Name, ASN, Policy.
	KindIXPJoin
	// KindIXPLeave removes an AS from an exchange, retracting its sessions
	// there. Payload: Name, ASN.
	KindIXPLeave
	// KindRegulate enacts mandatory peering at the IXPs of a country.
	// Payload: Name (the country code).
	KindRegulate
	// KindCNDemand sets the community network's demand scale to an absolute
	// factor (1 = baseline). Idempotent: replaying the same factor twice is a
	// no-op, which lets cascade rules re-assert it every tick. Payload: Value.
	KindCNDemand
	// KindIXPPressure is the soft form of KindIXPJoin: the AS joins the
	// exchange if it is not already a member, and the event is a no-op if it
	// is. Cascade rules use it so repeated cross-domain pressure (e.g. a
	// routing outage pushing competitors toward an IXP) never trips the
	// strict-membership error a second join would. Payload: Name, ASN, Policy.
	KindIXPPressure
	// KindStakeShift sets the stakeholder population's attitude shift to an
	// absolute offset in [-1, 1] added to every true score (0 = baseline).
	// Idempotent, like KindCNDemand. Payload: Value.
	KindStakeShift
)

// String returns the event-grammar keyword of the kind. BGP events have no
// single keyword — they render as their delta line (see FormatStream).
func (k Kind) String() string {
	switch k {
	case KindBGP:
		return "bgp"
	case KindCNFail:
		return "fail"
	case KindCNRepair:
		return "repair"
	case KindIXPJoin:
		return "join"
	case KindIXPLeave:
		return "leave"
	case KindRegulate:
		return "regulate"
	case KindCNDemand:
		return "demand"
	case KindIXPPressure:
		return "pressure"
	case KindStakeShift:
		return "stake-shift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one tick-stamped occurrence. Exactly the payload fields of its
// Kind are meaningful; the rest stay zero.
type Event struct {
	At     int
	Kind   Kind
	Delta  bgpsim.Delta      // KindBGP
	Node   int               // KindCNFail, KindCNRepair
	Name   string            // KindIXPJoin/Leave/Pressure: IXP name; KindRegulate: country
	ASN    bgpsim.ASN        // KindIXPJoin, KindIXPLeave, KindIXPPressure
	Policy ixp.PeeringPolicy // KindIXPJoin, KindIXPPressure
	Value  float64           // KindCNDemand, KindStakeShift
	// Prov tags cascade-injected events with the name of the rule that fired
	// them. It is runtime provenance, not grammar: FormatStream drops it, and
	// hand-written streams leave it empty. It participates in the canonical
	// order as the final tie-break so injected events replay deterministically.
	Prov string
}

// validate checks the event's fields independent of any stream or state.
func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("timeline: negative tick %d", e.At)
	}
	switch e.Kind {
	case KindBGP:
		if e.Delta.Kind > bgpsim.DeltaLeakToggle {
			return fmt.Errorf("timeline: bad delta kind %d", int(e.Delta.Kind))
		}
	case KindCNFail, KindCNRepair:
		if e.Node < 0 {
			return fmt.Errorf("timeline: negative node %d", e.Node)
		}
	case KindIXPJoin, KindIXPLeave, KindIXPPressure:
		if err := validateName(e.Name); err != nil {
			return err
		}
		if e.ASN < 0 {
			return fmt.Errorf("timeline: negative ASN %d", e.ASN)
		}
		if e.Kind != KindIXPLeave && (e.Policy < ixp.Open || e.Policy > ixp.Restrictive) {
			return fmt.Errorf("timeline: bad peering policy %d", int(e.Policy))
		}
	case KindRegulate:
		if err := validateName(e.Name); err != nil {
			return err
		}
	case KindCNDemand:
		if math.IsNaN(e.Value) || e.Value <= 0 || e.Value > MaxDemandScale {
			return fmt.Errorf("timeline: demand scale %v outside (0, %d]", e.Value, MaxDemandScale)
		}
	case KindStakeShift:
		if math.IsNaN(e.Value) || e.Value < -1 || e.Value > 1 {
			return fmt.Errorf("timeline: stake shift %v outside [-1, 1]", e.Value)
		}
	default:
		return fmt.Errorf("timeline: unknown event kind %d", int(e.Kind))
	}
	if e.Prov != "" {
		if err := validateName(e.Prov); err != nil {
			return err
		}
	}
	return nil
}

// validateName bounds the free-text token of join/leave/regulate events so
// it survives the one-token-per-field text format.
func validateName(s string) error {
	if s == "" || len(s) > 64 || strings.ContainsAny(s, " \t\r\n#") || strings.Fields(s)[0] != s {
		return fmt.Errorf("timeline: bad name %q (one token, <= 64 bytes, no '#')", s)
	}
	return nil
}

// less is the canonical event order: ascending tick, then kind, then the
// kind's payload fields, then provenance. Within a tick this is the order
// events APPLY in — the documented semantics, not a display convention. BGP
// deltas sort withdraws before announces (so a prefix can migrate between
// ASes in one tick), link-ups before link-downs, leak toggles last; CN fails
// precede repairs; IXP joins precede leaves; regulation applies after
// membership settles; cross-domain sets (demand, pressure, stake-shift)
// apply after the strict kinds they soften or scale. Ties beyond these
// fields are broken stably by input order.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	switch a.Kind {
	case KindBGP:
		if a.Delta != b.Delta {
			return deltaLess(a.Delta, b.Delta)
		}
	case KindCNFail, KindCNRepair:
		if a.Node != b.Node {
			return a.Node < b.Node
		}
	case KindIXPJoin, KindIXPLeave, KindIXPPressure:
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
	case KindRegulate:
		if a.Name != b.Name {
			return a.Name < b.Name
		}
	case KindCNDemand, KindStakeShift:
		if a.Value != b.Value {
			return a.Value < b.Value
		}
	}
	return a.Prov < b.Prov
}

// deltaLess orders BGP deltas: kind (withdraw < announce < link+ < link- <
// leak), then A, B, Prefix, Peer.
func deltaLess(a, b bgpsim.Delta) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.Prefix != b.Prefix {
		return a.Prefix < b.Prefix
	}
	return !a.Peer && b.Peer
}

// Stream limits, bounding what a hostile (fuzzed) document can demand.
// MaxDemandScale bounds KindCNDemand factors — enough for any surge story,
// small enough that scaled demand stays far from float trouble.
const (
	MaxHorizon     = 1 << 16
	MaxEvents      = 4096
	MaxDemandScale = 64
)

// Stream is an ordered event sequence with a horizon: replay covers ticks
// 0..Horizon-1, applying each tick's events before observing it.
type Stream struct {
	Horizon int
	Events  []Event
}

// Canonicalize returns a copy of the stream with events stably sorted into
// the canonical application order (see less). Replay canonicalizes
// internally, so any permutation of the same event multiset replays
// identically; Canonicalize exists for code that wants the normal form
// itself (FormatStream emits it).
func (s Stream) Canonicalize() Stream {
	out := Stream{Horizon: s.Horizon, Events: append([]Event(nil), s.Events...)}
	sort.SliceStable(out.Events, func(i, j int) bool { return less(out.Events[i], out.Events[j]) })
	return out
}

// Validate checks bounds and per-event fields. It does not require canonical
// order (Canonicalize establishes that) and does not check applicability
// against any state — machines are strict about that at replay time.
func (s Stream) Validate() error {
	if s.Horizon <= 0 || s.Horizon > MaxHorizon {
		return fmt.Errorf("timeline: horizon %d outside [1, %d]", s.Horizon, MaxHorizon)
	}
	if len(s.Events) > MaxEvents {
		return fmt.Errorf("timeline: %d events exceed limit %d", len(s.Events), MaxEvents)
	}
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("timeline: event %d: %w", i, err)
		}
		if e.At >= s.Horizon {
			return fmt.Errorf("timeline: event %d at tick %d >= horizon %d", i, e.At, s.Horizon)
		}
	}
	return nil
}

// ErrStreamConflict reports that merged streams carry same-tick events with
// contradictory semantics (see Merge). Returned errors wrap it.
var ErrStreamConflict = errors.New("timeline: conflicting events")

// Merge reconciles streams into one: the set union of their events under the
// longest horizon, canonicalized. Scenario builders use it to overlay
// generated sub-streams (e.g. staged joins plus a regulation date), and
// composed scenarios use it to weave several domains' sub-streams into the
// single stream a Composition replays.
//
// Reconciliation is not a blind union. Exact duplicate events collapse to
// one (streams are sets of (tick, event) pairs), and same-tick events that
// contradict each other — orders no canonical application order can make
// unambiguous — are an error wrapping ErrStreamConflict:
//
//   - fail vs repair of one CN node (the node's up-state after the tick
//     depends on which stream "wins");
//   - withdraw vs announce of one prefix by one origin (a migration between
//     two origins is fine — same origin is a flap with no defined outcome);
//   - link+ vs link- of one edge (peer edges compare undirected);
//   - two leak toggles of one AS (toggles compose by parity, so even the
//     exact-duplicate pair is a contradiction, not a redundancy);
//   - join vs leave of one AS at one exchange;
//   - two demand or stake-shift sets with different values (both are
//     absolute sets — last-writer-wins would depend on merge order);
//   - two regulations of different countries (regulation is modeled as one
//     country's regime per fabric).
func Merge(streams ...Stream) (Stream, error) {
	var out Stream
	for _, s := range streams {
		if s.Horizon > out.Horizon {
			out.Horizon = s.Horizon
		}
		out.Events = append(out.Events, s.Events...)
	}
	out = out.Canonicalize()
	seen := make(map[Event]bool, len(out.Events))
	uniq := out.Events[:0]
	for _, e := range out.Events {
		if e.Kind != KindBGP || e.Delta.Kind != bgpsim.DeltaLeakToggle {
			if seen[e] {
				continue
			}
			seen[e] = true
		}
		uniq = append(uniq, e)
	}
	out.Events = uniq
	if err := findConflict(out.Events); err != nil {
		return Stream{}, err
	}
	return out, nil
}

// findConflict scans canonically ordered events for the same-tick
// contradictions Merge documents. Events are grouped per tick; each group is
// small (MaxEvents bounds the whole stream), so the quadratic pair scan is
// fine and keeps the conflict table readable.
func findConflict(events []Event) error {
	for lo := 0; lo < len(events); {
		hi := lo
		for hi < len(events) && events[hi].At == events[lo].At {
			hi++
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				if conflicts(events[i], events[j]) {
					return fmt.Errorf("%w: tick %d: %s vs %s",
						ErrStreamConflict, events[i].At, describeEvent(events[i]), describeEvent(events[j]))
				}
			}
		}
		lo = hi
	}
	return nil
}

// conflicts reports whether two same-tick events contradict each other.
// Provenance is ignored: a cascade-injected event contradicts a scripted one
// just as hard.
func conflicts(a, b Event) bool {
	if a.Kind == KindBGP && b.Kind == KindBGP {
		return deltaConflicts(a.Delta, b.Delta)
	}
	switch {
	case a.Kind == KindCNFail && b.Kind == KindCNRepair,
		a.Kind == KindCNRepair && b.Kind == KindCNFail:
		return a.Node == b.Node
	case a.Kind == KindIXPJoin && b.Kind == KindIXPLeave,
		a.Kind == KindIXPLeave && b.Kind == KindIXPJoin:
		return a.Name == b.Name && a.ASN == b.ASN
	case a.Kind == KindCNDemand && b.Kind == KindCNDemand,
		a.Kind == KindStakeShift && b.Kind == KindStakeShift:
		return a.Value != b.Value
	case a.Kind == KindRegulate && b.Kind == KindRegulate:
		return a.Name != b.Name
	}
	return false
}

// deltaConflicts reports contradictory same-tick BGP deltas.
func deltaConflicts(a, b bgpsim.Delta) bool {
	switch {
	case a.Kind == bgpsim.DeltaWithdraw && b.Kind == bgpsim.DeltaAnnounce,
		a.Kind == bgpsim.DeltaAnnounce && b.Kind == bgpsim.DeltaWithdraw:
		return a.A == b.A && a.Prefix == b.Prefix
	case a.Kind == bgpsim.DeltaLinkUp && b.Kind == bgpsim.DeltaLinkDown,
		a.Kind == bgpsim.DeltaLinkDown && b.Kind == bgpsim.DeltaLinkUp:
		if a.Peer != b.Peer {
			return false
		}
		if a.Peer {
			// Peer edges are undirected; compare both orientations.
			return (a.A == b.A && a.B == b.B) || (a.A == b.B && a.B == b.A)
		}
		return a.A == b.A && a.B == b.B
	case a.Kind == bgpsim.DeltaLeakToggle && b.Kind == bgpsim.DeltaLeakToggle:
		return a.A == b.A
	}
	return false
}

// describeEvent renders an event for conflict errors: the grammar form where
// one exists, a compact kind+payload form otherwise.
func describeEvent(e Event) string {
	switch e.Kind {
	case KindBGP:
		d := e.Delta
		switch d.Kind {
		case bgpsim.DeltaWithdraw, bgpsim.DeltaAnnounce:
			return fmt.Sprintf("%s %d %s", d.Kind, d.A, d.Prefix)
		case bgpsim.DeltaLeakToggle:
			return fmt.Sprintf("leak %d", d.A)
		default:
			kind := "p2c"
			if d.Peer {
				kind = "peer"
			}
			return fmt.Sprintf("%s %s %d %d", d.Kind, kind, d.A, d.B)
		}
	case KindCNFail, KindCNRepair:
		return fmt.Sprintf("%s %d", e.Kind, e.Node)
	case KindIXPJoin, KindIXPPressure:
		return fmt.Sprintf("%s %s %d", e.Kind, e.Name, e.ASN)
	case KindIXPLeave:
		return fmt.Sprintf("leave %s %d", e.Name, e.ASN)
	case KindRegulate:
		return fmt.Sprintf("regulate %s", e.Name)
	default: // KindCNDemand, KindStakeShift
		return fmt.Sprintf("%s %v", e.Kind, e.Value)
	}
}
