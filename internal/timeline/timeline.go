// Package timeline is the deterministic event-timeline engine: ordered
// streams of at-tick events replayed against live simulation state, emitting
// one observation row per tick. It turns the repository's single-equilibrium
// simulators into the stories the paper actually tells — Telmex re-juggling
// ASNs as regulators respond, community-network nodes failing and being
// repaired, IXP membership shifting under a staged mandatory-peering law.
//
// The engine is three small pieces:
//
//   - Event / Stream (this file): a tick-stamped event with one payload per
//     kind, and an ordered sequence of them with a horizon. Same-tick events
//     apply in a documented canonical order (see Canonicalize), so a stream
//     is a set of (tick, event) pairs with fully deterministic semantics —
//     the order they were generated or written in a file never matters.
//   - Machines (machine.go, bgp.go, cnmachine.go, ixpmachine.go): live state
//     that knows how to apply the events it understands and to observe a row
//     of per-tick metrics. The BGP machine drives bgpsim's incremental
//     engine (falling back to cold column re-convergence exactly where the
//     uniqueness gate demands — that logic lives in bgpsim, not here); the
//     CN and IXP machines drive the churn hooks those packages expose.
//   - Replay (machine.go): the loop — canonicalize, validate, apply each
//     tick's events, observe, collect a time-series that converts to an
//     experiment.Result table.
//
// Streams have a text format (parse.go): `@<tick> <event>` lines after an
// optional base BGP topology, strictly parsed, with FormatStream/FormatDoc
// as exact inverses — every timeline is a replayable artifact.
package timeline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
)

// Kind enumerates the event kinds a stream can carry.
type Kind uint8

const (
	// KindBGP applies a bgpsim delta (withdraw/announce/link+/link-/leak)
	// through the incremental engine. Payload: Delta.
	KindBGP Kind = iota
	// KindCNFail takes a community-network member down. Payload: Node.
	KindCNFail
	// KindCNRepair brings a failed member back up. Payload: Node.
	KindCNRepair
	// KindIXPJoin adds an AS to an exchange. Payload: Name, ASN, Policy.
	KindIXPJoin
	// KindIXPLeave removes an AS from an exchange, retracting its sessions
	// there. Payload: Name, ASN.
	KindIXPLeave
	// KindRegulate enacts mandatory peering at the IXPs of a country.
	// Payload: Name (the country code).
	KindRegulate
)

// String returns the event-grammar keyword of the kind. BGP events have no
// single keyword — they render as their delta line (see FormatStream).
func (k Kind) String() string {
	switch k {
	case KindBGP:
		return "bgp"
	case KindCNFail:
		return "fail"
	case KindCNRepair:
		return "repair"
	case KindIXPJoin:
		return "join"
	case KindIXPLeave:
		return "leave"
	case KindRegulate:
		return "regulate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one tick-stamped occurrence. Exactly the payload fields of its
// Kind are meaningful; the rest stay zero.
type Event struct {
	At     int
	Kind   Kind
	Delta  bgpsim.Delta      // KindBGP
	Node   int               // KindCNFail, KindCNRepair
	Name   string            // KindIXPJoin/Leave: IXP name; KindRegulate: country
	ASN    bgpsim.ASN        // KindIXPJoin, KindIXPLeave
	Policy ixp.PeeringPolicy // KindIXPJoin
}

// validate checks the event's fields independent of any stream or state.
func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("timeline: negative tick %d", e.At)
	}
	switch e.Kind {
	case KindBGP:
		if e.Delta.Kind > bgpsim.DeltaLeakToggle {
			return fmt.Errorf("timeline: bad delta kind %d", int(e.Delta.Kind))
		}
	case KindCNFail, KindCNRepair:
		if e.Node < 0 {
			return fmt.Errorf("timeline: negative node %d", e.Node)
		}
	case KindIXPJoin, KindIXPLeave:
		if err := validateName(e.Name); err != nil {
			return err
		}
		if e.ASN < 0 {
			return fmt.Errorf("timeline: negative ASN %d", e.ASN)
		}
		if e.Kind == KindIXPJoin && (e.Policy < ixp.Open || e.Policy > ixp.Restrictive) {
			return fmt.Errorf("timeline: bad peering policy %d", int(e.Policy))
		}
	case KindRegulate:
		if err := validateName(e.Name); err != nil {
			return err
		}
	default:
		return fmt.Errorf("timeline: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// validateName bounds the free-text token of join/leave/regulate events so
// it survives the one-token-per-field text format.
func validateName(s string) error {
	if s == "" || len(s) > 64 || strings.ContainsAny(s, " \t\r\n#") || strings.Fields(s)[0] != s {
		return fmt.Errorf("timeline: bad name %q (one token, <= 64 bytes, no '#')", s)
	}
	return nil
}

// less is the canonical event order: ascending tick, then kind, then the
// kind's payload fields. Within a tick this is the order events APPLY in —
// the documented semantics, not a display convention. BGP deltas sort
// withdraws before announces (so a prefix can migrate between ASes in one
// tick), link-ups before link-downs, leak toggles last; CN fails precede
// repairs; IXP joins precede leaves; regulation applies after membership
// settles. Ties beyond these fields are broken stably by input order.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	switch a.Kind {
	case KindBGP:
		return deltaLess(a.Delta, b.Delta)
	case KindCNFail, KindCNRepair:
		return a.Node < b.Node
	case KindIXPJoin, KindIXPLeave:
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Policy < b.Policy
	default: // KindRegulate
		return a.Name < b.Name
	}
}

// deltaLess orders BGP deltas: kind (withdraw < announce < link+ < link- <
// leak), then A, B, Prefix, Peer.
func deltaLess(a, b bgpsim.Delta) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.Prefix != b.Prefix {
		return a.Prefix < b.Prefix
	}
	return !a.Peer && b.Peer
}

// Stream limits, bounding what a hostile (fuzzed) document can demand.
const (
	MaxHorizon = 1 << 16
	MaxEvents  = 4096
)

// Stream is an ordered event sequence with a horizon: replay covers ticks
// 0..Horizon-1, applying each tick's events before observing it.
type Stream struct {
	Horizon int
	Events  []Event
}

// Canonicalize returns a copy of the stream with events stably sorted into
// the canonical application order (see less). Replay canonicalizes
// internally, so any permutation of the same event multiset replays
// identically; Canonicalize exists for code that wants the normal form
// itself (FormatStream emits it).
func (s Stream) Canonicalize() Stream {
	out := Stream{Horizon: s.Horizon, Events: append([]Event(nil), s.Events...)}
	sort.SliceStable(out.Events, func(i, j int) bool { return less(out.Events[i], out.Events[j]) })
	return out
}

// Validate checks bounds and per-event fields. It does not require canonical
// order (Canonicalize establishes that) and does not check applicability
// against any state — machines are strict about that at replay time.
func (s Stream) Validate() error {
	if s.Horizon <= 0 || s.Horizon > MaxHorizon {
		return fmt.Errorf("timeline: horizon %d outside [1, %d]", s.Horizon, MaxHorizon)
	}
	if len(s.Events) > MaxEvents {
		return fmt.Errorf("timeline: %d events exceed limit %d", len(s.Events), MaxEvents)
	}
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("timeline: event %d: %w", i, err)
		}
		if e.At >= s.Horizon {
			return fmt.Errorf("timeline: event %d at tick %d >= horizon %d", i, e.At, s.Horizon)
		}
	}
	return nil
}

// Merge concatenates streams into one: the union of events under the longest
// horizon, canonicalized. Scenario builders use it to overlay generated
// sub-streams (e.g. staged joins plus a regulation date).
func Merge(streams ...Stream) Stream {
	var out Stream
	for _, s := range streams {
		if s.Horizon > out.Horizon {
			out.Horizon = s.Horizon
		}
		out.Events = append(out.Events, s.Events...)
	}
	return out.Canonicalize()
}
