package timeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/cn"
	"repro/internal/experiment"
	"repro/internal/ixp"
	"repro/internal/rng"
)

// buildTestHierarchy is the shared small world for engine tests.
func buildTestHierarchy(t *testing.T, seed uint64, mids, stubs int) *bgpsim.Hierarchy {
	t.Helper()
	h, err := bgpsim.BuildHierarchy(rng.New(seed), mids, stubs)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// renderSeries renders a series the way scenarios do, so byte comparisons in
// tests see exactly what reports and served responses see.
func renderSeries(t *testing.T, s *Series) string {
	t.Helper()
	res := &experiment.Result{ID: "T", Title: "test series"}
	s.Table(res, "T", "test series")
	return experiment.RenderMarkdown([]*experiment.Result{res})
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindBGP:         "bgp",
		KindCNFail:      "fail",
		KindCNRepair:    "repair",
		KindIXPJoin:     "join",
		KindIXPLeave:    "leave",
		KindRegulate:    "regulate",
		KindCNDemand:    "demand",
		KindIXPPressure: "pressure",
		KindStakeShift:  "stake-shift",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders as %q", got)
	}
}

func TestEventValidateRejects(t *testing.T) {
	cases := map[string]Event{
		"negative tick": {At: -1, Kind: KindCNFail},
		"bad kind":      {Kind: Kind(42)},
		"bad delta":     {Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaKind(9)}},
		"negative node": {Kind: KindCNFail, Node: -2},
		"empty name":    {Kind: KindIXPJoin, Policy: ixp.Open},
		"spacey name":   {Kind: KindRegulate, Name: "two words"},
		"hash name":     {Kind: KindRegulate, Name: "a#b"},
		"long name":     {Kind: KindIXPLeave, Name: strings.Repeat("x", 65)},
		"negative ASN":  {Kind: KindIXPLeave, Name: "IX", ASN: -1},
		"bad policy":    {Kind: KindIXPJoin, Name: "IX", Policy: ixp.PeeringPolicy(7)},
	}
	for name, ev := range cases {
		if err := ev.validate(); err == nil {
			t.Errorf("%s: event %+v validated, want error", name, ev)
		}
	}
}

func TestCanonicalizeOrdersWithinTick(t *testing.T) {
	in := Stream{Horizon: 4, Events: []Event{
		{At: 2, Kind: KindRegulate, Name: "MX"},
		{At: 2, Kind: KindIXPLeave, Name: "IX", ASN: 5},
		{At: 2, Kind: KindIXPJoin, Name: "IX", ASN: 9, Policy: ixp.Open},
		{At: 1, Kind: KindCNRepair, Node: 3},
		{At: 1, Kind: KindCNFail, Node: 7},
		{At: 0, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaAnnounce, A: 2, Prefix: "p"}},
		{At: 0, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: 1, Prefix: "p"}},
	}}
	got := in.Canonicalize().Events
	wantKinds := []Kind{KindBGP, KindBGP, KindCNFail, KindCNRepair, KindIXPJoin, KindIXPLeave, KindRegulate}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("position %d: kind %s, want %s (full: %+v)", i, got[i].Kind, k, got)
		}
	}
	// Within-tick BGP order: the withdraw applies before the announce, which
	// is what makes a same-tick prefix migration replayable.
	if got[0].Delta.Kind != bgpsim.DeltaWithdraw || got[1].Delta.Kind != bgpsim.DeltaAnnounce {
		t.Fatalf("BGP deltas out of order: %+v then %+v", got[0].Delta, got[1].Delta)
	}
	// Canonicalize is idempotent.
	once := in.Canonicalize()
	twice := once.Canonicalize()
	for i := range once.Events {
		if once.Events[i] != twice.Events[i] {
			t.Fatalf("canonicalize not idempotent at %d: %+v vs %+v", i, once.Events[i], twice.Events[i])
		}
	}
}

func TestStreamValidateBounds(t *testing.T) {
	if err := (Stream{Horizon: 0}).Validate(); err == nil {
		t.Error("zero horizon validated")
	}
	if err := (Stream{Horizon: MaxHorizon + 1}).Validate(); err == nil {
		t.Error("oversized horizon validated")
	}
	if err := (Stream{Horizon: 1, Events: make([]Event, MaxEvents+1)}).Validate(); err == nil {
		t.Error("oversized event list validated")
	}
	past := Stream{Horizon: 2, Events: []Event{{At: 2, Kind: KindCNFail, Node: 1}}}
	if err := past.Validate(); err == nil {
		t.Error("event at tick >= horizon validated")
	}
	ok := Stream{Horizon: 3, Events: []Event{{At: 2, Kind: KindCNFail, Node: 1}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}

func TestMergeUnionsUnderLongestHorizon(t *testing.T) {
	a := Stream{Horizon: 3, Events: []Event{{At: 2, Kind: KindCNFail, Node: 1}}}
	b := Stream{Horizon: 7, Events: []Event{{At: 1, Kind: KindCNRepair, Node: 0}}}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Horizon != 7 || len(m.Events) != 2 {
		t.Fatalf("merge = horizon %d, %d events; want 7, 2", m.Horizon, len(m.Events))
	}
	if m.Events[0].At != 1 || m.Events[1].At != 2 {
		t.Fatalf("merged events not canonical: %+v", m.Events)
	}
}

// TestGenFlapStormIsNetZero pins the generator contract: every down has a
// matching restore inside the horizon, so the storm leaves the world as it
// found it, and the whole stream replays through the incremental engine.
func TestGenFlapStormIsNetZero(t *testing.T) {
	h := buildTestHierarchy(t, 11, 4, 9)
	st, err := GenFlapStorm(h, 99, 16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) == 0 {
		t.Fatal("storm generated no events")
	}
	counts := map[bgpsim.DeltaKind]int{}
	for _, e := range st.Events {
		if e.Kind != KindBGP {
			t.Fatalf("flap storm emitted non-BGP event %+v", e)
		}
		counts[e.Delta.Kind]++
	}
	if counts[bgpsim.DeltaWithdraw] != counts[bgpsim.DeltaAnnounce] {
		t.Fatalf("unbalanced prefix flaps: %d withdraws, %d announces",
			counts[bgpsim.DeltaWithdraw], counts[bgpsim.DeltaAnnounce])
	}
	if counts[bgpsim.DeltaLinkDown] != counts[bgpsim.DeltaLinkUp] {
		t.Fatalf("unbalanced link flaps: %d downs, %d ups",
			counts[bgpsim.DeltaLinkDown], counts[bgpsim.DeltaLinkUp])
	}
	m, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	series, err := Replay(st, m)
	if err != nil {
		t.Fatal(err)
	}
	// Net-zero: the last tick's reachability equals a fresh build's.
	fresh := buildTestHierarchy(t, 11, 4, 9)
	wantReach, _ := fresh.Topo.Converge().ReachableCells()
	last := series.Rows[len(series.Rows)-1]
	if int(last[2]) != wantReach {
		t.Fatalf("final reachable = %d, fresh topology has %d", int(last[2]), wantReach)
	}
}

func TestGenPrefixMigrationTracksHolder(t *testing.T) {
	h := buildTestHierarchy(t, 7, 4, 9)
	st, err := GenPrefixMigration(h, 5, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) == 0 {
		t.Fatal("migration generated no events")
	}
	m, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(st, m); err != nil {
		t.Fatalf("generated migration does not replay: %v", err)
	}
}

func TestGenCNChurnReplaysStrictly(t *testing.T) {
	st, err := GenCNChurn(12, 3, 20, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) == 0 {
		t.Fatal("churn generated no events")
	}
	m, err := NewCNMachine(cn.ChurnConfig{Members: 12, Seed: 3}, &cn.CPR{})
	if err != nil {
		t.Fatal(err)
	}
	series, err := Replay(st, m)
	if err != nil {
		t.Fatalf("generated churn does not replay: %v", err)
	}
	for i, row := range series.Rows {
		if row[0] < 1 || row[0] > 12 {
			t.Fatalf("tick %d: up count %v outside [1, 12]", i, row[0])
		}
	}
}

func TestGenStagedRolloutWaves(t *testing.T) {
	members := []bgpsim.ASN{10, 11, 12, 13, 14}
	st, err := GenStagedRollout("IX", members, ixp.Open, 2, 1, 3, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) != len(members) {
		t.Fatalf("rollout scheduled %d joins, want %d", len(st.Events), len(members))
	}
	seen := map[bgpsim.ASN]bool{}
	for i, e := range st.Events {
		if e.Kind != KindIXPJoin || e.Name != "IX" {
			t.Fatalf("event %d is %+v, want an IX join", i, e)
		}
		if seen[e.ASN] {
			t.Fatalf("AS %d joined twice", e.ASN)
		}
		seen[e.ASN] = true
		if wave := (e.At - 1) / 3; e.At != 1+wave*3 {
			t.Fatalf("event %d at tick %d, not on the wave grid", i, e.At)
		}
	}
}

func TestMachinesRejectForeignEvents(t *testing.T) {
	h := buildTestHierarchy(t, 1, 3, 6)
	bm, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.Apply(Event{Kind: KindCNFail, Node: 1}); err == nil {
		t.Error("BGP machine applied a CN event")
	}
	cm, err := NewCNMachine(cn.ChurnConfig{Members: 4, Seed: 1}, cn.Proportional{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Apply(Event{Kind: KindRegulate, Name: "MX"}); err == nil {
		t.Error("CN machine applied a regulate event")
	}
	if err := cm.Apply(Event{Kind: KindCNFail, Node: 2}); err != nil {
		t.Fatalf("first fail: %v", err)
	}
	if err := cm.Apply(Event{Kind: KindCNFail, Node: 2}); err == nil {
		t.Error("CN machine failed an already-down member")
	}
}

func TestIXPMachineStrictMembership(t *testing.T) {
	topo := bgpsim.NewTopology()
	for _, n := range []bgpsim.ASN{1, 2} {
		if err := topo.AddAS(n, bgpsim.ASInfo{Country: "MX"}); err != nil {
			t.Fatal(err)
		}
	}
	f := ixp.NewFabric(topo)
	if _, err := f.AddIXP("IX", "MX"); err != nil {
		t.Fatal(err)
	}
	m, err := NewIXPMachine(context.Background(), f, nil, "MX", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Event{Kind: KindIXPJoin, Name: "nope", ASN: 1, Policy: ixp.Open}); err == nil {
		t.Error("join of unknown IXP applied")
	}
	if err := m.Apply(Event{Kind: KindIXPLeave, Name: "IX", ASN: 1}); err == nil {
		t.Error("leave by a non-member applied")
	}
	if err := m.Apply(Event{Kind: KindIXPJoin, Name: "IX", ASN: 1, Policy: ixp.Open}); err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := m.Apply(Event{Kind: KindIXPJoin, Name: "IX", ASN: 1, Policy: ixp.Open}); err == nil {
		t.Error("double join applied")
	}
}

func TestSeriesTableRendersPrecision(t *testing.T) {
	s := &Series{
		Cols: []Col{{Name: "count", Prec: -1}, {Name: "share", Prec: 3}},
		Rows: [][]float64{{4, 0.5}, {7, 0.125}},
	}
	md := renderSeries(t, s)
	for _, want := range []string{"| tick | count | share |", "| 0 | 4 | 0.500 |", "| 1 | 7 | 0.125 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("rendered table missing %q:\n%s", want, md)
		}
	}
}

func TestReplayRejectsUnknownTickEvents(t *testing.T) {
	h := buildTestHierarchy(t, 2, 3, 6)
	m, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := Stream{Horizon: 2, Events: []Event{
		{At: 1, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: 1, Prefix: "no-such"}},
	}}
	if _, err := Replay(bad, m); err == nil {
		t.Fatal("replay of an inapplicable delta succeeded")
	}
	// The failed replay must not leave the machine half-applied.
	if m.Applied() != 0 {
		t.Fatalf("failed replay left %d applied patches", m.Applied())
	}
}
