package timeline

// Seeded stream generators. Each is a pure function of its arguments — all
// randomness flows from the explicit seed through internal/rng — and returns
// a canonical stream whose events are guaranteed applicable in canonical
// order (flaps never overlap on one link, migrations track the live prefix
// holder, churn never double-fails a member), so generated streams replay
// without error and round-trip through the text format.

import (
	"fmt"
	"sort"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
	"repro/internal/rng"
)

// genAttempts bounds the retries when sampling a flap/migration target whose
// resources are busy; a slot that stays busy is skipped, never blocks.
const genAttempts = 8

// GenFlapStorm generates a link/prefix flap storm over a hierarchy: perTick
// flap attempts per tick, each taking a random stub's provider link down (or
// its prefix withdrawn) at tick t and restoring it at t+hold. Flaps whose
// restore would land at or past the horizon are skipped, so the stream is
// net-zero: the final tick's topology equals the initial one.
func GenFlapStorm(h *bgpsim.Hierarchy, seed uint64, ticks, perTick, hold int) (Stream, error) {
	if ticks < 1 || ticks > MaxHorizon {
		return Stream{}, fmt.Errorf("timeline: ticks %d outside [1, %d]", ticks, MaxHorizon)
	}
	if perTick < 0 || hold < 1 {
		return Stream{}, fmt.Errorf("timeline: bad flap storm shape (per-tick %d, hold %d)", perTick, hold)
	}
	if n := 2 * ticks * perTick; n > MaxEvents {
		return Stream{}, fmt.Errorf("timeline: up to %d events exceed limit %d", n, MaxEvents)
	}
	if len(h.Stubs) == 0 {
		return Stream{}, fmt.Errorf("timeline: hierarchy has no stubs to flap")
	}
	origin := make(map[bgpsim.ASN]bool, len(h.OriginStubs))
	for _, n := range h.OriginStubs {
		origin[n] = true
	}
	r := rng.New(seed)
	type link struct{ p, c bgpsim.ASN }
	linkBusy := make(map[link]int) // busy through this tick
	pfxBusy := make(map[bgpsim.ASN]int)
	var evs []Event
	for t := 0; t < ticks; t++ {
		for k := 0; k < perTick; k++ {
			if t+hold >= ticks {
				continue
			}
			for attempt := 0; attempt < genAttempts; attempt++ {
				stub := h.Stubs[r.Intn(len(h.Stubs))]
				if r.Bool(0.5) {
					provs := providerList(h.Topo, stub)
					if len(provs) == 0 {
						continue
					}
					p := provs[r.Intn(len(provs))]
					key := link{p, stub}
					if until, busy := linkBusy[key]; busy && t <= until {
						continue
					}
					linkBusy[key] = t + hold
					down := bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: p, B: stub}
					up := bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: p, B: stub}
					evs = append(evs,
						Event{At: t, Kind: KindBGP, Delta: down},
						Event{At: t + hold, Kind: KindBGP, Delta: up})
				} else {
					if !origin[stub] {
						continue
					}
					if until, busy := pfxBusy[stub]; busy && t <= until {
						continue
					}
					pfxBusy[stub] = t + hold
					pfx := fmt.Sprintf("pfx-%d", stub)
					evs = append(evs,
						Event{At: t, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: stub, Prefix: pfx}},
						Event{At: t + hold, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaAnnounce, A: stub, Prefix: pfx}})
				}
				break
			}
		}
	}
	return Stream{Horizon: ticks, Events: evs}.Canonicalize(), nil
}

// GenPrefixMigration models an incumbent re-juggling prefixes across ASNs:
// every `every` ticks, one originated prefix moves from its current holder
// to a random other stub — a same-tick withdraw+announce pair, applied
// withdraw-first by the canonical event order.
func GenPrefixMigration(h *bgpsim.Hierarchy, seed uint64, ticks, every int) (Stream, error) {
	if ticks < 1 || ticks > MaxHorizon || every < 1 {
		return Stream{}, fmt.Errorf("timeline: bad migration shape (ticks %d, every %d)", ticks, every)
	}
	if len(h.OriginStubs) == 0 || len(h.Stubs) < 2 {
		return Stream{}, fmt.Errorf("timeline: hierarchy too small to migrate prefixes")
	}
	holder := make([]bgpsim.ASN, len(h.OriginStubs))
	copy(holder, h.OriginStubs)
	r := rng.New(seed)
	var evs []Event
	for t := every; t < ticks; t += every {
		if len(evs)+2 > MaxEvents {
			break
		}
		i := r.Intn(len(holder))
		pfx := fmt.Sprintf("pfx-%d", h.OriginStubs[i])
		for attempt := 0; attempt < genAttempts; attempt++ {
			next := h.Stubs[r.Intn(len(h.Stubs))]
			if next == holder[i] {
				continue
			}
			evs = append(evs,
				Event{At: t, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: holder[i], Prefix: pfx}},
				Event{At: t, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaAnnounce, A: next, Prefix: pfx}})
			holder[i] = next
			break
		}
	}
	return Stream{Horizon: ticks, Events: evs}.Canonicalize(), nil
}

// GenCNChurn generates member fail/repair churn: each up member fails with
// failProb per tick and is repaired repairAfter ticks later (members whose
// repair would land past the horizon stay down). A member repaired at tick t
// is never re-failed at t — the canonical order applies fails before
// repairs, so a same-tick fail of a just-repaired (still down) member could
// not replay.
func GenCNChurn(members int, seed uint64, ticks int, failProb float64, repairAfter int) (Stream, error) {
	if members < 1 || ticks < 1 || ticks > MaxHorizon || repairAfter < 1 {
		return Stream{}, fmt.Errorf("timeline: bad churn shape (members %d, ticks %d, repair-after %d)", members, ticks, repairAfter)
	}
	if failProb < 0 || failProb > 1 {
		return Stream{}, fmt.Errorf("timeline: fail probability %v outside [0, 1]", failProb)
	}
	r := rng.New(seed)
	up := make([]bool, members)
	repairAt := make([]int, members)
	for m := range up {
		up[m] = true
		repairAt[m] = -1
	}
	var evs []Event
	for t := 0; t < ticks; t++ {
		repaired := make([]bool, members)
		for m := 0; m < members; m++ {
			if repairAt[m] == t {
				evs = append(evs, Event{At: t, Kind: KindCNRepair, Node: m})
				up[m], repairAt[m], repaired[m] = true, -1, true
			}
		}
		for m := 0; m < members; m++ {
			if !up[m] || repaired[m] || !r.Bool(failProb) {
				continue
			}
			if len(evs) >= MaxEvents {
				break
			}
			evs = append(evs, Event{At: t, Kind: KindCNFail, Node: m})
			up[m] = false
			if t+repairAfter < ticks {
				repairAt[m] = t + repairAfter
			}
		}
	}
	return Stream{Horizon: ticks, Events: evs}.Canonicalize(), nil
}

// GenStagedRollout schedules IXP joins in waves: members join ixpName in a
// seed-shuffled order, waveSize at a time, a wave every waveEvery ticks
// starting at startAt. Members whose wave lands at or past the horizon never
// join (the staged rollout simply hasn't reached them).
func GenStagedRollout(ixpName string, members []bgpsim.ASN, policy ixp.PeeringPolicy, seed uint64, startAt, waveEvery, waveSize, ticks int) (Stream, error) {
	if ticks < 1 || ticks > MaxHorizon || startAt < 0 || waveEvery < 1 || waveSize < 1 {
		return Stream{}, fmt.Errorf("timeline: bad rollout shape (start %d, wave-every %d, wave-size %d, ticks %d)", startAt, waveEvery, waveSize, ticks)
	}
	if len(members) > MaxEvents {
		return Stream{}, fmt.Errorf("timeline: %d members exceed event limit %d", len(members), MaxEvents)
	}
	r := rng.New(seed)
	order := r.Perm(len(members))
	var evs []Event
	for i, idx := range order {
		t := startAt + (i/waveSize)*waveEvery
		if t >= ticks {
			break
		}
		evs = append(evs, Event{At: t, Kind: KindIXPJoin, Name: ixpName, ASN: members[idx], Policy: policy})
	}
	return Stream{Horizon: ticks, Events: evs}.Canonicalize(), nil
}

// providerList returns n's providers in ascending order (collect-then-sort
// over the neighbor map, so generation never depends on map order).
func providerList(t *bgpsim.Topology, n bgpsim.ASN) []bgpsim.ASN {
	neighbors := t.Neighbors(n)
	out := make([]bgpsim.ASN, 0, len(neighbors))
	for nb, rel := range neighbors {
		if rel == bgpsim.FromProvider {
			out = append(out, nb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
