package timeline

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite testdata/scenarios.golden.md from the current scenario output")

// temporalIDs are the registered timeline experiments, in report order —
// the single-machine replays E17–E19 and the composed scenarios E20–E22.
var temporalIDs = []string{"E17", "E18", "E19", "E20", "E21", "E22"}

// runTemporal executes the temporal scenarios through the batch runner
// (optionally cached)
// and renders them.
func runTemporal(t *testing.T, cache *experiment.Cache) (string, experiment.CacheStats) {
	t.Helper()
	jobs := make([]experiment.Job, 0, len(temporalIDs))
	for _, id := range temporalIDs {
		sc, ok := experiment.Get(id)
		if !ok {
			t.Fatalf("scenario %s not registered", id)
		}
		jobs = append(jobs, experiment.NewJob(sc))
	}
	runner := &experiment.Runner{Workers: 2, ScenarioWorkers: 2, Cache: cache}
	results, err := runner.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return experiment.RenderMarkdown(results), runner.Stats()
}

// TestGoldenTemporalScenarios pins the E17–E19 tables byte for byte. The
// golden is rewritten deliberately with
// `go test ./internal/timeline -run TestGoldenTemporalScenarios -update`.
func TestGoldenTemporalScenarios(t *testing.T) {
	got, _ := runTemporal(t, nil)
	path := filepath.Join("testdata", "scenarios.golden.md")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("temporal scenario output drifted from %s (re-run with -update only if the change is intended)", path)
	}
}

// TestTemporalScenariosCacheByteIdentical runs E17–E19 cold through the disk
// cache and again warm: the multi-table time-series results must survive the
// encode/decode round trip byte-identically, with zero warm executions.
func TestTemporalScenariosCacheByteIdentical(t *testing.T) {
	cache, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := runTemporal(t, cache)
	if coldStats.Misses != int64(len(temporalIDs)) || coldStats.Hits != 0 {
		t.Fatalf("cold stats = %+v, want %d pure misses", coldStats, len(temporalIDs))
	}
	warm, warmStats := runTemporal(t, cache)
	if warmStats.Hits != int64(len(temporalIDs)) || warmStats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want %d pure hits", warmStats, len(temporalIDs))
	}
	if cold != warm {
		t.Fatal("warm-cache temporal report differs from cold run")
	}
}
