package timeline

// Tests for the composition layer: wiring validation, event routing, cascade
// injection mechanics (landing tick, provenance, Once, the horizon drop
// counter, the shared event budget), the composed determinism properties the
// tentpole promises (worker invariance, input-canonicalization invariance),
// the per-tick incremental-vs-cold pin for the IXP machine, and the
// cross-domain machines' own semantics.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/cn"
	"repro/internal/experiment"
	"repro/internal/ixp"
	"repro/internal/proptest"
	"repro/internal/rng"
)

// fakeMachine records every applied event and emits a scripted signal, so
// routing and cascade tests can assert exact delivery without simulator
// noise.
type fakeMachine struct {
	kinds   []Kind
	applied []Event
	signal  func(tick int) float64
}

func (m *fakeMachine) Cols() []Col {
	return []Col{{Name: "applied", Prec: -1}, {Name: "signal", Prec: 3}}
}
func (m *fakeMachine) Kinds() []Kind { return m.kinds }
func (m *fakeMachine) Apply(e Event) error {
	m.applied = append(m.applied, e)
	return nil
}
func (m *fakeMachine) Observe(tick int) ([]float64, error) {
	sig := 0.0
	if m.signal != nil {
		sig = m.signal(tick)
	}
	return []float64{float64(len(m.applied)), sig}, nil
}

func TestComposeValidation(t *testing.T) {
	okPart := func(name string, kinds ...Kind) Part {
		return Part{Name: name, M: &fakeMachine{kinds: kinds}}
	}
	fire := func(Obs) []Event { return nil }
	cases := map[string]struct {
		parts []Part
		rules []CascadeRule
		want  string
	}{
		"no parts": {nil, nil, "at least one part"},
		"bad part name": {
			[]Part{okPart("two words", KindCNFail)}, nil, "part 0"},
		"duplicate part": {
			[]Part{okPart("a", KindCNFail), okPart("a", KindCNDemand)}, nil, "duplicate part"},
		"nil machine": {
			[]Part{{Name: "a"}}, nil, "no machine"},
		"overlapping kinds": {
			[]Part{okPart("a", KindCNFail), okPart("b", KindCNFail)}, nil, "both consume"},
		"bad rule name": {
			[]Part{okPart("a", KindCNFail)},
			[]CascadeRule{{Name: "", From: "a", Delay: 1, Fire: fire}}, "rule 0"},
		"duplicate rule": {
			[]Part{okPart("a", KindCNFail)},
			[]CascadeRule{
				{Name: "r", From: "a", Delay: 1, Fire: fire},
				{Name: "r", From: "a", Delay: 2, Fire: fire},
			}, "duplicate rule"},
		"unknown from": {
			[]Part{okPart("a", KindCNFail)},
			[]CascadeRule{{Name: "r", From: "b", Delay: 1, Fire: fire}}, "unknown part"},
		"zero delay": {
			[]Part{okPart("a", KindCNFail)},
			[]CascadeRule{{Name: "r", From: "a", Delay: 0, Fire: fire}}, "delay 0"},
		"nil fire": {
			[]Part{okPart("a", KindCNFail)},
			[]CascadeRule{{Name: "r", From: "a", Delay: 1}}, "no Fire"},
	}
	for name, tc := range cases {
		_, err := Compose(tc.parts, tc.rules)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compose error = %v, want substring %q", name, err, tc.want)
		}
	}
}

// TestComposeRoutesAndInjects pins the cascade mechanics end to end on fake
// machines: events route by kind, injections land at tick+Delay with the
// rule's provenance, Once disarms after the first non-empty firing, and
// past-horizon injections count as dropped.
func TestComposeRoutesAndInjects(t *testing.T) {
	nodes := &fakeMachine{kinds: []Kind{KindCNFail, KindCNRepair}}
	demand := &fakeMachine{kinds: []Kind{KindCNDemand}}
	comp, err := Compose(
		[]Part{{Name: "nodes", M: nodes}, {Name: "demand", M: demand}},
		[]CascadeRule{
			{
				// Fires whenever the nodes part has applied an odd number of
				// events; the injected demand value encodes the firing tick.
				Name: "surge", From: "nodes", Delay: 2,
				Fire: func(o Obs) []Event {
					applied, ok := o.Value("applied")
					if !ok {
						t.Fatal("applied column missing from observation")
					}
					if int(applied)%2 == 0 {
						return nil
					}
					return []Event{{Kind: KindCNDemand, Value: float64(o.Tick) + 1}}
				},
			},
			{
				Name: "alarm", From: "nodes", Delay: 1, Once: true,
				Fire: func(o Obs) []Event {
					if v, _ := o.Value("applied"); v == 0 {
						return nil
					}
					return []Event{{Kind: KindCNDemand, Value: 64}}
				},
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Node events at ticks 1 (odd count -> surge fires at 1, 2) and 2 (even
	// count -> silent), then 6 (odd; lands 8 >= horizon -> dropped).
	st := Stream{Horizon: 8, Events: []Event{
		{At: 1, Kind: KindCNFail, Node: 3},
		{At: 2, Kind: KindCNRepair, Node: 3},
		{At: 6, Kind: KindCNFail, Node: 4},
	}}
	out, err := comp.Replay(st)
	if err != nil {
		t.Fatal(err)
	}
	// surge fires at ticks 1 (lands 3), 6 (lands 8: dropped), 7 (odd count
	// persists, lands 9: dropped); alarm fires once at tick 1 (lands 2).
	wantInjected := []Event{
		{At: 3, Kind: KindCNDemand, Value: 2, Prov: "surge"},
		{At: 2, Kind: KindCNDemand, Value: 64, Prov: "alarm"},
	}
	if len(out.Injected) != len(wantInjected) {
		t.Fatalf("injected %d events %+v, want %d", len(out.Injected), out.Injected, len(wantInjected))
	}
	for i, want := range wantInjected {
		if out.Injected[i] != want {
			t.Errorf("injected[%d] = %+v, want %+v", i, out.Injected[i], want)
		}
	}
	if out.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", out.Dropped)
	}
	// The demand part saw exactly the two landed injections, in tick order,
	// provenance intact; the nodes part saw only node events.
	if len(demand.applied) != 2 || demand.applied[0].Prov != "alarm" || demand.applied[1].Prov != "surge" {
		t.Fatalf("demand part applied %+v", demand.applied)
	}
	for _, e := range nodes.applied {
		if e.Kind == KindCNDemand {
			t.Fatalf("node part received a demand event: %+v", e)
		}
	}
	// Series shape: one row per tick per part.
	if len(out.Series) != 2 || len(out.Series[0].Rows) != 8 || len(out.Series[1].Rows) != 8 {
		t.Fatalf("series shape wrong: %d parts, %d/%d rows",
			len(out.Series), len(out.Series[0].Rows), len(out.Series[1].Rows))
	}
}

func TestComposeReplayErrors(t *testing.T) {
	newComp := func(rules ...CascadeRule) *Composition {
		c, err := Compose([]Part{{Name: "nodes", M: &fakeMachine{kinds: []Kind{KindCNFail}}}}, rules)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// A stream event no part consumes is rejected before the first tick.
	c := newComp()
	_, err := c.Replay(Stream{Horizon: 2, Events: []Event{{At: 0, Kind: KindRegulate, Name: "MX"}}})
	if err == nil || !strings.Contains(err.Error(), "no part consumes") {
		t.Errorf("unroutable stream event: %v", err)
	}
	// An injected event no part consumes fails at the firing tick.
	c = newComp(CascadeRule{Name: "r", From: "nodes", Delay: 1,
		Fire: func(Obs) []Event { return []Event{{Kind: KindStakeShift, Value: 0.1}} }})
	_, err = c.Replay(Stream{Horizon: 2})
	if err == nil || !strings.Contains(err.Error(), "no part consumes") {
		t.Errorf("unroutable injection: %v", err)
	}
	// An injected event that fails validation names the rule.
	c = newComp(CascadeRule{Name: "bad-demand", From: "nodes", Delay: 1,
		Fire: func(Obs) []Event { return []Event{{Kind: KindCNFail, Node: -5}} }})
	_, err = c.Replay(Stream{Horizon: 2})
	if err == nil || !strings.Contains(err.Error(), "bad-demand") {
		t.Errorf("invalid injection: %v", err)
	}
	// A rule that floods events hits the shared MaxEvents budget, not OOM.
	c = newComp(CascadeRule{Name: "flood", From: "nodes", Delay: 1,
		Fire: func(Obs) []Event {
			evs := make([]Event, 256)
			for i := range evs {
				evs[i] = Event{Kind: KindCNFail, Node: i}
			}
			return evs
		}})
	_, err = c.Replay(Stream{Horizon: 64})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget overflow: %v", err)
	}
}

// renderTemporalAt runs the composed scenarios through the batch runner at a
// given worker count and renders them — the byte surface reports and humnetd
// serve.
func renderTemporalAt(t *testing.T, ids []string, workers int) string {
	t.Helper()
	jobs := make([]experiment.Job, 0, len(ids))
	for _, id := range ids {
		sc, ok := experiment.Get(id)
		if !ok {
			t.Fatalf("scenario %s not registered", id)
		}
		jobs = append(jobs, experiment.NewJob(sc))
	}
	runner := &experiment.Runner{Workers: workers, ScenarioWorkers: workers}
	results, err := runner.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return experiment.RenderMarkdown(results)
}

// TestComposedScenariosWorkerInvariance: E20–E22 render byte-identically at
// worker counts {1, 4, GOMAXPROCS} — the composed-replay determinism the
// cache and daemon depend on.
func TestComposedScenariosWorkerInvariance(t *testing.T) {
	ids := []string{"E20", "E21", "E22"}
	base := renderTemporalAt(t, ids, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := renderTemporalAt(t, ids, workers); got != base {
			t.Errorf("workers=%d: composed scenario bytes differ from workers=1", workers)
		}
	}
}

// composedFixture builds a fresh two-domain composition (routing hierarchy +
// community network) with a demand-coupling cascade, plus its merged stream.
// Rebuildable from the seed, for invariance properties that need several
// identical copies.
func composedFixture(seed uint64) (*Composition, Stream, error) {
	h, err := bgpsim.BuildHierarchy(rng.New(seed), 3, 6)
	if err != nil {
		return nil, Stream{}, err
	}
	storm, err := GenFlapStorm(h, seed^streamSalt, 10, 1, 2)
	if err != nil {
		return nil, Stream{}, err
	}
	churn, err := GenCNChurn(10, seed^streamSalt, 10, 0.2, 2)
	if err != nil {
		return nil, Stream{}, err
	}
	st, err := Merge(storm, churn)
	if err != nil {
		return nil, Stream{}, err
	}
	routing, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		return nil, Stream{}, err
	}
	community, err := NewCNMachine(cn.ChurnConfig{Members: 10, Seed: seed}, &cn.CPR{})
	if err != nil {
		return nil, Stream{}, err
	}
	comp, err := Compose(
		[]Part{{Name: "routing", M: routing}, {Name: "community", M: community}},
		[]CascadeRule{{
			Name: "demand-coupling", From: "routing", Delay: 1,
			Fire: func(o Obs) []Event {
				share, _ := o.Value("reach-share")
				if share < 0.9 {
					return []Event{{Kind: KindCNDemand, Value: 2}}
				}
				return []Event{{Kind: KindCNDemand, Value: 1}}
			},
		}},
	)
	if err != nil {
		return nil, Stream{}, err
	}
	return comp, st, nil
}

// renderComposed renders every table of a composed replay.
func renderComposed(out *ComposedSeries) string {
	res := &experiment.Result{ID: "C", Title: "composed"}
	out.Tables(res, "C", "composed")
	return experiment.RenderMarkdown([]*experiment.Result{res})
}

// TestPropComposedReplayInputOrderInvariance: composed replay (including the
// cascade injection log) is a function of the stream's event multiset, not
// the order events were written in — input canonicalization quotients away
// generator order before rules ever see a tick.
func TestPropComposedReplayInputOrderInvariance(t *testing.T) {
	proptest.Run(t, 905, 10, func(g *proptest.G) error {
		seed := g.Uint64()
		comp, st, err := composedFixture(seed)
		if err != nil {
			return err
		}
		base, err := comp.Replay(st)
		if err != nil {
			return err
		}
		perm := g.Perm(len(st.Events))
		shuffled := Stream{Horizon: st.Horizon, Events: make([]Event, len(st.Events))}
		for i, j := range perm {
			shuffled.Events[i] = st.Events[j]
		}
		comp2, _, err := composedFixture(seed)
		if err != nil {
			return err
		}
		got, err := comp2.Replay(shuffled)
		if err != nil {
			return fmt.Errorf("shuffled composed replay failed: %w", err)
		}
		if renderComposed(got) != renderComposed(base) {
			return fmt.Errorf("shuffled stream composes differently (seed %d)", seed)
		}
		if len(got.Injected) != len(base.Injected) {
			return fmt.Errorf("injection logs differ: %d vs %d events", len(got.Injected), len(base.Injected))
		}
		for i := range got.Injected {
			if got.Injected[i] != base.Injected[i] {
				return fmt.Errorf("injection %d differs: %+v vs %+v", i, got.Injected[i], base.Injected[i])
			}
		}
		return nil
	})
}

// coldIXPMachine is the per-tick oracle for IXPMachine's incremental session
// path: the same fabric semantics, but after every event it re-establishes
// all sessions from scratch and every observation re-converges cold.
type coldIXPMachine struct {
	f       *ixp.Fabric
	reg     ixp.Regulation
	demands []ixp.Demand
	country string
}

func (m *coldIXPMachine) Cols() []Col   { return (&IXPMachine{}).Cols() }
func (m *coldIXPMachine) Kinds() []Kind { return (&IXPMachine{}).Kinds() }

func (m *coldIXPMachine) Apply(ev Event) error {
	switch ev.Kind {
	case KindIXPJoin, KindIXPPressure:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if x.HasMember(ev.ASN) {
			if ev.Kind == KindIXPPressure {
				return nil
			}
			return fmt.Errorf("AS %d already a member of %s", ev.ASN, ev.Name)
		}
		if err := m.f.Join(ev.Name, ev.ASN, ev.Policy); err != nil {
			return err
		}
	case KindIXPLeave:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if !x.HasMember(ev.ASN) {
			return fmt.Errorf("AS %d not a member of %s", ev.ASN, ev.Name)
		}
		m.f.RetractMemberSessions(ev.Name, ev.ASN)
		m.f.Leave(ev.Name, ev.ASN)
	case KindRegulate:
		m.reg = ixp.Regulation{Country: ev.Name, MandatoryPeering: true}
	default:
		return fmt.Errorf("IXP machine cannot apply %s events", ev.Kind)
	}
	m.f.EstablishSessions(m.reg)
	return nil
}

func (m *coldIXPMachine) Observe(int) ([]float64, error) {
	members := 0
	for _, name := range m.f.IXPNames() {
		if x, ok := m.f.IXP(name); ok {
			members += len(x.Members())
		}
	}
	rt := m.f.Topo.Converge()
	loc := m.f.Locality(rt, m.demands, m.country)
	reachShare := 0.0
	if loc.TotalVolume > 0 {
		reachShare = loc.ReachableVolume / loc.TotalVolume
	}
	return []float64{
		float64(members),
		float64(m.f.Sessions()),
		loc.DomesticShare(),
		reachShare,
	}, nil
}

// TestIXPMachineIncrementalMatchesColdPerTick drives joins, pressure joins,
// leaves (with re-homing), and a regulation rewire through the incremental
// IXP machine, pinning two equalities after every tick: the live incremental
// BGP tables match a cold convergence of the mutated topology, and the
// observation series matches a cold-path replica that rebuilds sessions from
// scratch at every event.
func TestIXPMachineIncrementalMatchesColdPerTick(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindIXPJoin, Name: mxIXP, ASN: incumbentASN, Policy: ixp.Restrictive},
		{At: 1, Kind: KindIXPJoin, Name: mxIXP, ASN: compBase, Policy: ixp.Open},
		{At: 1, Kind: KindIXPJoin, Name: mxIXP, ASN: compBase + 1, Policy: ixp.Open},
		{At: 2, Kind: KindIXPPressure, Name: mxIXP, ASN: compBase + 2, Policy: ixp.Open},
		{At: 3, Kind: KindIXPPressure, Name: mxIXP, ASN: compBase, Policy: ixp.Open}, // member: no-op
		{At: 4, Kind: KindIXPLeave, Name: mxIXP, ASN: compBase + 1},
		{At: 5, Kind: KindIXPJoin, Name: mxIXP, ASN: compBase + 1, Policy: ixp.Selective},
		{At: 6, Kind: KindRegulate, Name: "MX"},
		{At: 7, Kind: KindIXPPressure, Name: mxIXP, ASN: compBase + 3, Policy: ixp.Open},
		{At: 8, Kind: KindIXPLeave, Name: mxIXP, ASN: compBase},
	}
	st := Stream{Horizon: 10, Events: events}

	f, demands, _, err := buildMXWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIXPMachine(context.Background(), f, demands, "MX", 1)
	if err != nil {
		t.Fatal(err)
	}
	incSeries, err := Replay(st, inc, func(tick int) error {
		if err := tablesEqualCold(inc.State()); err != nil {
			return fmt.Errorf("incremental tables diverge from cold at tick %d: %w", tick, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cf, cdemands, _, err := buildMXWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	cold := &coldIXPMachine{f: cf, demands: cdemands, country: "MX"}
	cold.f.EstablishSessions(cold.reg)
	coldSeries, err := Replay(st, cold)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderSeries(t, incSeries), renderSeries(t, coldSeries); got != want {
		t.Errorf("incremental observation series differs from cold replica:\n--- incremental\n%s--- cold\n%s", got, want)
	}
}

func TestStakeholderMachineBiasAndEscalation(t *testing.T) {
	newM := func() *StakeholderMachine {
		m, err := NewStakeholderMachine(7, 25, 0.05, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := newM()
	row0, err := m.Observe(0)
	if err != nil {
		t.Fatal(err)
	}
	attitude0, measured0 := row0[0], row0[1]
	if attitude0 < 0.4 || attitude0 > 0.6 {
		t.Fatalf("baseline attitude %v outside [0.4, 0.6]", attitude0)
	}
	// The sampling frame under-covers the low-attitude strata, so the
	// measured estimate runs high — the "not in the room" bias.
	if measured0 <= attitude0 {
		t.Fatalf("measured %v not above true attitude %v: frame bias missing", measured0, attitude0)
	}
	if m.Escalated() {
		t.Fatal("escalated at baseline")
	}
	// A hard negative shift drags the measurement below the threshold; the
	// machine escalates once and engagement coverage rises.
	if err := m.Apply(Event{Kind: KindStakeShift, Value: -0.45}); err != nil {
		t.Fatal(err)
	}
	row1, err := m.Observe(1)
	if err != nil {
		t.Fatal(err)
	}
	if row1[0] >= attitude0 {
		t.Fatalf("attitude did not drop under a -0.45 shift: %v -> %v", attitude0, row1[0])
	}
	if !m.Escalated() {
		t.Fatalf("measured %v did not trigger escalation below 0.5", row1[1])
	}
	if row1[3] <= row0[3] {
		t.Fatalf("engagement coverage did not rise on escalation: %v -> %v", row0[3], row1[3])
	}
	// Escalation is one-shot: another low tick leaves coverage unchanged.
	row2, err := m.Observe(2)
	if err != nil {
		t.Fatal(err)
	}
	if row2[3] != row1[3] {
		t.Fatalf("coverage moved again after the one-shot escalation: %v -> %v", row1[3], row2[3])
	}
	// Determinism: a fresh machine replaying the same events produces the
	// identical rows.
	m2 := newM()
	r0, _ := m2.Observe(0)
	if err := m2.Apply(Event{Kind: KindStakeShift, Value: -0.45}); err != nil {
		t.Fatal(err)
	}
	r1, _ := m2.Observe(1)
	for i := range row0 {
		if row0[i] != r0[i] || row1[i] != r1[i] {
			t.Fatalf("stakeholder machine not deterministic at column %d", i)
		}
	}
	// Foreign events are rejected; constructor bounds hold.
	if err := m.Apply(Event{Kind: KindRegulate, Name: "MX"}); err == nil {
		t.Error("stakeholder machine applied a regulate event")
	}
	if _, err := NewStakeholderMachine(1, 0, 0.1, 0.5); err == nil {
		t.Error("per-stratum 0 accepted")
	}
	if _, err := NewStakeholderMachine(1, 5, -0.1, 0.5); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewStakeholderMachine(1, 5, 0.1, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestCNMachineDemandScale(t *testing.T) {
	newM := func() *CNMachine {
		m, err := NewCNMachine(cn.ChurnConfig{Members: 8, Seed: 9}, &cn.CPR{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, scaled := newM(), newM()
	if err := scaled.Apply(Event{Kind: KindCNDemand, Value: 2}); err != nil {
		t.Fatal(err)
	}
	b, err := base.Observe(0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := scaled.Observe(0)
	if err != nil {
		t.Fatal(err)
	}
	// Offered load (column 1) scales exactly: the multiplier applies after
	// the RNG draw, so doubling the scale doubles the offered airtime without
	// perturbing the demand process.
	if s[1] != 2*b[1] {
		t.Fatalf("offered at scale 2 = %v, want exactly 2x %v", s[1], b[1])
	}
	// Out-of-range scales are rejected through the event path.
	for _, v := range []float64{0, -1, MaxDemandScale + 1} {
		if err := newM().Apply(Event{Kind: KindCNDemand, Value: v}); err == nil {
			t.Errorf("demand scale %v accepted", v)
		}
	}
	// Scale 1 is the exact identity: series bytes match an unscaled machine.
	ident := newM()
	if err := ident.Apply(Event{Kind: KindCNDemand, Value: 1}); err != nil {
		t.Fatal(err)
	}
	b1, _ := newM().Observe(0)
	i1, _ := ident.Observe(0)
	for j := range b1 {
		if b1[j] != i1[j] {
			t.Fatalf("scale 1 is not the identity at column %d: %v vs %v", j, b1[j], i1[j])
		}
	}
}

// TestComposedReplayContextCancel: a canceled context stops a composed
// replay at the next tick boundary with a wrapped context error.
func TestComposedReplayContextCancel(t *testing.T) {
	comp, st, err := composedFixture(17)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = comp.ReplayCtx(ctx, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled composed replay returned %v", err)
	}
}
