package timeline

// StakeholderMachine replays attitude shifts through the survey and PAR
// models: a synthetic operator population whose latent attitudes move with
// the infrastructure story (KindStakeShift events, usually cascade-injected
// from another domain's observations), measured each tick by a stratified
// survey whose frame under-covers exactly the hard-to-reach strata. The
// measurement is therefore biased toward the visible operators — the paper's
// "not in the room" effect — which delays any response a cascade rule keys
// off the measured value. When its own measurement crosses the response
// threshold the machine escalates the PAR project once: the marginal
// stakeholders move to collaborating in the evaluation phase, visible in the
// engagement column.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/survey"
)

// stakeholderTies is the social-tie count of the synthetic population; the
// ties only matter to snowball sampling, which this machine does not field,
// but they keep the population draw identical to the E8 construction.
const stakeholderTies = 3

// StakeholderMachine is live population + project state. Not safe for
// concurrent use.
type StakeholderMachine struct {
	pop        *survey.Population
	proj       *par.Project
	seed       uint64
	perStratum int
	noise      float64
	threshold  float64

	shift     float64
	escalated bool
	// lastMeasured carries the estimate over ticks where no one responds,
	// so the measured column never goes undefined; starts at the neutral
	// midpoint.
	lastMeasured float64
}

// NewStakeholderMachine draws the default-strata population from seed and
// opens a PAR project with one stakeholder per stratum, all merely informed
// at problem formation. perStratum is the stratified sample's allocation per
// stratum per tick; noise the response noise; threshold the measured
// attitude below which the project escalates.
func NewStakeholderMachine(seed uint64, perStratum int, noise, threshold float64) (*StakeholderMachine, error) {
	if perStratum < 1 {
		return nil, fmt.Errorf("timeline: per-stratum sample %d < 1", perStratum)
	}
	if !(noise >= 0) || !(threshold >= 0) || threshold > 1 {
		return nil, fmt.Errorf("timeline: bad noise %v or threshold %v", noise, threshold)
	}
	specs := survey.DefaultStrata()
	pop := survey.SynthPopulation(specs, stakeholderTies, rng.New(seed))
	proj := par.NewProject("stakeholder-response")
	for _, spec := range specs {
		marginal := spec.FrameCoverage < 0.5
		if err := proj.AddStakeholder(par.Stakeholder{
			ID: spec.Name, Name: spec.Name, Role: "operator",
			Marginal: marginal, ConsentRecorded: true,
		}); err != nil {
			return nil, err
		}
		if err := proj.Engage(par.Engagement{
			StakeholderID: spec.Name, Phase: par.ProblemFormation,
			Level: par.Informed, Notes: "baseline briefing",
		}); err != nil {
			return nil, err
		}
	}
	return &StakeholderMachine{
		pop: pop, proj: proj, seed: seed,
		perStratum: perStratum, noise: noise, threshold: threshold,
		lastMeasured: 0.5,
	}, nil
}

// Cols: the true population attitude (shift applied), the survey's measured
// estimate, the responding sample size, and the PAR coverage score.
func (m *StakeholderMachine) Cols() []Col {
	return []Col{
		{Name: "attitude", Prec: 3},
		{Name: "measured", Prec: 3},
		{Name: "respondents", Prec: -1},
		{Name: "engagement", Prec: 3},
	}
}

// Kinds: attitude shifts only.
func (m *StakeholderMachine) Kinds() []Kind { return []Kind{KindStakeShift} }

// Apply handles stake-shift events: an absolute, idempotent set of the
// population-wide attitude offset.
func (m *StakeholderMachine) Apply(ev Event) error {
	if ev.Kind != KindStakeShift {
		return fmt.Errorf("stakeholder machine cannot apply %s events", ev.Kind)
	}
	m.shift = ev.Value
	return nil
}

// Observe fields one stratified survey wave. The per-tick RNG derives from
// (seed, tick) alone, so the measurement at tick t is identical whatever
// happened at other ticks — sampling never couples ticks, only the shift
// does.
func (m *StakeholderMachine) Observe(tick int) ([]float64, error) {
	attitude := 0.0
	for _, p := range m.pop.People {
		attitude += clamp01(p.TrueScore + m.shift)
	}
	attitude /= float64(len(m.pop.People))

	r := rng.New(m.seed ^ (0x9e3779b97f4a7c15 * uint64(tick+1)))
	sr := survey.StratifiedSample(m.pop, m.perStratum, r)
	measured := m.lastMeasured
	if len(sr.Respondents) > 0 {
		sum := 0.0
		for _, id := range sr.Respondents {
			sum += clamp01(clamp01(m.pop.People[id].TrueScore+m.shift) + m.noise*r.NormFloat64())
		}
		measured = sum / float64(len(sr.Respondents))
		m.lastMeasured = measured
	}

	if !m.escalated && measured < m.threshold {
		m.escalated = true
		for _, id := range m.proj.StakeholderIDs() {
			s, _ := m.proj.Stakeholder(id)
			if !s.Marginal {
				continue
			}
			if err := m.proj.Engage(par.Engagement{
				StakeholderID: id, Phase: par.Evaluation,
				Level: par.Collaborating, Notes: "convened after the measured-attitude drop",
			}); err != nil {
				return nil, err
			}
		}
		m.proj.Reflect(par.Evaluation, "measured attitude crossed the response threshold; brought marginal operators into evaluation")
	}

	return []float64{
		attitude,
		measured,
		float64(len(sr.Respondents)),
		m.proj.CoverageScore(),
	}, nil
}

// Escalated reports whether the measured attitude has crossed the threshold.
func (m *StakeholderMachine) Escalated() bool { return m.escalated }

// clamp01 clips v into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
