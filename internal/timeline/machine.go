package timeline

// The replay loop. A Machine is live simulation state that can apply the
// events it understands and observe one row of metrics per tick; Replay
// drives a stream through it and collects the time series. Determinism
// contract: a Machine's Apply/Observe must be pure functions of its
// construction arguments and the event sequence — no wall clock, no global
// RNG, no map-iteration-order dependence — so Replay(stream, machine) is
// byte-stable for a fixed seed at any worker count.

import (
	"context"
	"fmt"

	"repro/internal/experiment"
)

// Col describes one observation column. Prec >= 0 renders as a fixed-
// precision float cell; Prec < 0 renders as an integer cell (the value is
// truncated, which is exact for counters).
type Col struct {
	Name string
	Prec int
}

// Machine is replayable simulation state.
type Machine interface {
	// Cols declares the observation columns, fixed for the machine's life.
	Cols() []Col
	// Kinds declares the event kinds the machine consumes, fixed for the
	// machine's life. It is the routing contract of the composition layer
	// (compose.go): Compose requires the parts' kind sets to be disjoint and
	// directs each merged-stream or cascade-injected event to the one part
	// that claims its kind. Single-machine Replay ignores it — the stream is
	// the machine's own, and Apply stays strict about every event in it.
	Kinds() []Kind
	// Apply applies one event. Machines are strict: an event of a kind the
	// machine does not model, or one inapplicable to the current state
	// (failing a down node, withdrawing an absent origin), is an error.
	Apply(Event) error
	// Observe returns the metric row for the tick just completed, parallel
	// to Cols. It may advance machine-internal processes (e.g. one demand
	// epoch) but must not depend on anything outside the machine.
	Observe(tick int) ([]float64, error)
}

// Series is a replay's output: one row per tick, parallel to Cols. The tick
// itself is implicit in the row index.
type Series struct {
	Cols []Col
	Rows [][]float64
}

// Replay runs the stream through m with no cancellation point; it is
// ReplayCtx under a background context, kept for callers (generators' tests,
// benchmarks) with no context to thread.
func Replay(s Stream, m Machine, hooks ...func(tick int) error) (*Series, error) {
	return ReplayCtx(context.Background(), s, m, hooks...)
}

// ReplayCtx canonicalizes and validates the stream, then runs it through m:
// for each tick in [0, Horizon), apply that tick's events in canonical
// order, then observe. Optional hooks run after each tick's observation —
// the property suite uses one to compare live state against a cold oracle
// without re-implementing the loop. The context is checked once per tick and
// passed implicitly to nothing: machines capture their own context at
// construction if their internals fan out.
func ReplayCtx(ctx context.Context, s Stream, m Machine, hooks ...func(tick int) error) (*Series, error) {
	cs := s.Canonicalize()
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	out := &Series{Cols: m.Cols()}
	i := 0
	for tick := 0; tick < cs.Horizon; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("timeline: tick %d: %w", tick, err)
		}
		for i < len(cs.Events) && cs.Events[i].At == tick {
			if err := m.Apply(cs.Events[i]); err != nil {
				return nil, fmt.Errorf("timeline: tick %d: apply %s: %w", tick, cs.Events[i].Kind, err)
			}
			i++
		}
		row, err := m.Observe(tick)
		if err != nil {
			return nil, fmt.Errorf("timeline: tick %d: observe: %w", tick, err)
		}
		if len(row) != len(out.Cols) {
			return nil, fmt.Errorf("timeline: tick %d: observation has %d values, want %d", tick, len(row), len(out.Cols))
		}
		out.Rows = append(out.Rows, row)
		for _, h := range hooks {
			if err := h(tick); err != nil {
				return nil, fmt.Errorf("timeline: tick %d: %w", tick, err)
			}
		}
	}
	return out, nil
}

// Table renders the series into res as a table with a leading "tick" column,
// applying each Col's precision. The rendering is deterministic, so equal
// series produce byte-equal experiment results.
func (s *Series) Table(res *experiment.Result, id, title string) *experiment.Table {
	cols := make([]string, 0, len(s.Cols)+1)
	cols = append(cols, "tick")
	for _, c := range s.Cols {
		cols = append(cols, c.Name)
	}
	t := res.AddTable(id, title, cols...)
	for tick, row := range s.Rows {
		cells := make([]experiment.Cell, 0, len(row)+1)
		cells = append(cells, experiment.I(tick))
		for j, v := range row {
			if s.Cols[j].Prec < 0 {
				cells = append(cells, experiment.I64(int64(v)))
			} else {
				cells = append(cells, experiment.FP(v, s.Cols[j].Prec))
			}
		}
		t.AddRow(cells...)
	}
	return t
}
