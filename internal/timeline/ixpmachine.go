package timeline

// IXPMachine replays exchange-membership and regulation events against an
// ixp.Fabric, keeping live converged BGP state between ticks. Membership
// events take the incremental session-delta path: a join (or soft pressure
// join) establishes only the new member's sessions as link+ peer deltas
// through bgpsim's incremental engine, and a leave retracts only the
// departing member's sessions (then re-homes them at the member's remaining
// exchanges, exactly as a cold re-establishment would). Regulation is the
// one wholesale rewire — it force-peers entire exchanges — so it rebuilds:
// full session establishment plus a fresh convergence. Equivalence with the
// cold path (re-establish everything, re-converge cold, every tick) is
// pinned per tick by the property suite; the incremental-vs-cold fallback
// inside Converged.Apply makes the tables themselves bit-identical by
// contract.

import (
	"context"
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
)

// IXPMachine is live fabric state plus a demand set to classify each tick.
// Not safe for concurrent use.
type IXPMachine struct {
	f       *ixp.Fabric
	reg     ixp.Regulation
	country string
	demands []ixp.Demand
	workers int
	conv    *bgpsim.Converged
}

// NewIXPMachine wraps a fabric: it establishes the initial sessions (no
// regulation) and converges once, the state every later event patches
// incrementally. country scopes the locality observation (and regulation
// events name their own country); demands are classified against the
// converged tables every tick. workers fans the convergences (<= 0 means
// GOMAXPROCS; observations are identical for any value); ctx cancels the
// initial convergence only — machines have no per-tick context.
func NewIXPMachine(ctx context.Context, f *ixp.Fabric, demands []ixp.Demand, country string, workers int) (*IXPMachine, error) {
	m := &IXPMachine{f: f, country: country, demands: demands, workers: workers}
	m.f.EstablishSessions(m.reg)
	conv, err := f.Topo.ConvergeStateCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	m.conv = conv
	return m, nil
}

// Kinds: membership (strict join/leave and soft pressure) plus regulation.
func (m *IXPMachine) Kinds() []Kind {
	return []Kind{KindIXPJoin, KindIXPLeave, KindRegulate, KindIXPPressure}
}

// Apply handles join, leave, pressure, and regulate events. Joins and leaves
// are strict: joining an exchange the AS is already a member of, or leaving
// one it is not, is an error. Pressure is the soft join cascade rules emit —
// a no-op when the AS is already a member.
func (m *IXPMachine) Apply(ev Event) error {
	switch ev.Kind {
	case KindIXPJoin, KindIXPPressure:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if x.HasMember(ev.ASN) {
			if ev.Kind == KindIXPPressure {
				return nil
			}
			return fmt.Errorf("AS %d already a member of %s", ev.ASN, ev.Name)
		}
		if err := m.f.Join(ev.Name, ev.ASN, ev.Policy); err != nil {
			return err
		}
		return m.establishMember(ev.ASN)
	case KindIXPLeave:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if !x.HasMember(ev.ASN) {
			return fmt.Errorf("AS %d not a member of %s", ev.ASN, ev.Name)
		}
		if _, err := m.f.RetractMemberSessionsVia(ev.Name, ev.ASN, func(a, b bgpsim.ASN) error {
			_, err := m.conv.Apply(bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: a, B: b, Peer: true})
			return err
		}); err != nil {
			return err
		}
		m.f.Leave(ev.Name, ev.ASN)
		// Re-home: sessions the member held through this exchange may be
		// re-established at its remaining exchanges, as a cold
		// re-establishment after the leave would.
		return m.establishMember(ev.ASN)
	case KindRegulate:
		m.reg = ixp.Regulation{Country: ev.Name, MandatoryPeering: true}
		m.f.EstablishSessions(m.reg)
		m.conv = m.f.Topo.ConvergeState(m.workers)
	default:
		return fmt.Errorf("IXP machine cannot apply %s events", ev.Kind)
	}
	return nil
}

// establishMember adds n's missing sessions under the current regulation as
// incremental link+ peer deltas.
func (m *IXPMachine) establishMember(n bgpsim.ASN) error {
	m.f.EstablishMemberSessionsVia(n, m.reg, func(a, b bgpsim.ASN) error {
		_, err := m.conv.Apply(bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: a, B: b, Peer: true})
		return err
	})
	return nil
}

// Cols: total memberships across exchanges, IXP-attributed sessions, the
// domestic share of reachable demand volume, and the reachable share of
// total demand volume.
func (m *IXPMachine) Cols() []Col {
	return []Col{
		{Name: "members", Prec: -1},
		{Name: "sessions", Prec: -1},
		{Name: "domestic", Prec: 3},
		{Name: "reach-share", Prec: 3},
	}
}

// Observe classifies the demand set against the live converged tables; the
// tables are always current (events patch them as they apply).
func (m *IXPMachine) Observe(int) ([]float64, error) {
	members := 0
	for _, name := range m.f.IXPNames() {
		if x, ok := m.f.IXP(name); ok {
			members += len(x.Members())
		}
	}
	loc := m.f.Locality(m.conv.Tables(), m.demands, m.country)
	reachShare := 0.0
	if loc.TotalVolume > 0 {
		reachShare = loc.ReachableVolume / loc.TotalVolume
	}
	return []float64{
		float64(members),
		float64(m.f.Sessions()),
		loc.DomesticShare(),
		reachShare,
	}, nil
}

// State exposes the live converged state for oracles and fingerprinting.
func (m *IXPMachine) State() *bgpsim.Converged { return m.conv }
