package timeline

// IXPMachine replays exchange-membership and regulation events against an
// ixp.Fabric. Membership mutation marks the machine dirty; the next Observe
// re-establishes sessions under the current regulation and re-converges the
// topology cold (membership changes rewire peering wholesale, so this is the
// honest cost model — the incremental path belongs to single-delta BGP
// streams). Ticks without membership events reuse the converged tables.

import (
	"fmt"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
)

// IXPMachine is live fabric state plus a demand set to classify each tick.
// Not safe for concurrent use.
type IXPMachine struct {
	f       *ixp.Fabric
	reg     ixp.Regulation
	country string
	demands []ixp.Demand
	workers int
	rt      *bgpsim.RoutingTables
	dirty   bool
}

// NewIXPMachine wraps a fabric. country scopes the locality observation (and
// regulation events name their own country); demands are classified against
// the converged tables every tick. workers fans the cold re-convergences
// (<= 0 means GOMAXPROCS; observations are identical for any value).
func NewIXPMachine(f *ixp.Fabric, demands []ixp.Demand, country string, workers int) *IXPMachine {
	return &IXPMachine{f: f, country: country, demands: demands, workers: workers, dirty: true}
}

// Apply handles join, leave, and regulate events. Joins and leaves are
// strict: joining an exchange the AS is already a member of, or leaving one
// it is not, is an error.
func (m *IXPMachine) Apply(ev Event) error {
	switch ev.Kind {
	case KindIXPJoin:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if x.HasMember(ev.ASN) {
			return fmt.Errorf("AS %d already a member of %s", ev.ASN, ev.Name)
		}
		if err := m.f.Join(ev.Name, ev.ASN, ev.Policy); err != nil {
			return err
		}
	case KindIXPLeave:
		x, ok := m.f.IXP(ev.Name)
		if !ok {
			return fmt.Errorf("%w: %s", ixp.ErrUnknownIXP, ev.Name)
		}
		if !x.HasMember(ev.ASN) {
			return fmt.Errorf("AS %d not a member of %s", ev.ASN, ev.Name)
		}
		m.f.RetractMemberSessions(ev.Name, ev.ASN)
		m.f.Leave(ev.Name, ev.ASN)
	case KindRegulate:
		m.reg = ixp.Regulation{Country: ev.Name, MandatoryPeering: true}
	default:
		return fmt.Errorf("IXP machine cannot apply %s events", ev.Kind)
	}
	m.dirty = true
	return nil
}

// Cols: total memberships across exchanges, IXP-attributed sessions, the
// domestic share of reachable demand volume, and the reachable share of
// total demand volume.
func (m *IXPMachine) Cols() []Col {
	return []Col{
		{Name: "members", Prec: -1},
		{Name: "sessions", Prec: -1},
		{Name: "domestic", Prec: 3},
		{Name: "reach-share", Prec: 3},
	}
}

// Observe re-establishes sessions and re-converges if membership or
// regulation changed this tick, then classifies the demand set.
func (m *IXPMachine) Observe(int) ([]float64, error) {
	if m.dirty {
		m.f.EstablishSessions(m.reg)
		m.rt = m.f.Topo.ConvergeWorkers(m.workers)
		m.dirty = false
	}
	members := 0
	for _, name := range m.f.IXPNames() {
		if x, ok := m.f.IXP(name); ok {
			members += len(x.Members())
		}
	}
	loc := m.f.Locality(m.rt, m.demands, m.country)
	reachShare := 0.0
	if loc.TotalVolume > 0 {
		reachShare = loc.ReachableVolume / loc.TotalVolume
	}
	return []float64{
		float64(members),
		float64(m.f.Sessions()),
		loc.DomesticShare(),
		reachShare,
	}, nil
}
