package timeline

// Replay throughput benchmarks, the source of BENCH_timeline.json. Both
// report events/sec (end-to-end replay throughput) and cells/event (mean
// table blast radius per applied delta) via b.ReportMetric so the baseline
// records the workload's shape alongside its speed.

import (
	"context"
	"testing"

	"repro/internal/bgpsim"
	"repro/internal/rng"
)

// BenchmarkReplayFlapStorm: a single BGP machine replaying a generated flap
// storm. Unwind restores the converged state pointer-exactly between
// iterations, so each iteration replays against identical initial tables
// without paying a re-convergence.
func BenchmarkReplayFlapStorm(b *testing.B) {
	h, err := bgpsim.BuildHierarchy(rng.New(11), 6, 20)
	if err != nil {
		b.Fatal(err)
	}
	storm, err := GenFlapStorm(h, 11^streamSalt, 24, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewBGPMachine(context.Background(), h.Topo, 1)
	if err != nil {
		b.Fatal(err)
	}
	var events, cells float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := Replay(storm, m)
		if err != nil {
			b.Fatal(err)
		}
		m.Unwind()
		for _, row := range series.Rows {
			events += row[0]
			cells += row[1]
		}
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(cells/events, "cells/event")
		b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	}
}

// BenchmarkComposedReplay: the two-domain composition (routing + community
// network with a demand-coupling cascade) replayed end to end. The cascade
// leaves sticky state in the CN machine, so each iteration rebuilds the
// composition outside the timer and the measurement is replay alone.
func BenchmarkComposedReplay(b *testing.B) {
	var events, cells float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		comp, st, err := composedFixture(17)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		out, err := comp.Replay(st)
		if err != nil {
			b.Fatal(err)
		}
		events += float64(len(st.Events) + len(out.Injected))
		for _, row := range out.Series[0].Rows {
			cells += row[1]
		}
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(cells/events, "cells/event")
		b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	}
}
