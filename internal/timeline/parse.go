package timeline

// The timeline text format: a replayable artifact for event streams,
// extending the bgpsim scenario grammar direction with tick-stamped lines.
// One directive per line, '#' starts a comment, blank lines are ignored:
//
//	horizon <n>              ticks to replay (optional; inferred as the
//	                         last event tick + 1 when omitted)
//	<base directives>        a bgpsim topology (as/p2c/peer/origin/leaker),
//	                         only in documents (ParseDoc), only before the
//	                         first event line
//	@<tick> <event>          an event at a tick; ticks must be nondecreasing
//
// Events:
//
//	@3 withdraw 64500 pfx-a      BGP deltas — exactly the bgpsim event
//	@3 announce 64501 pfx-a      grammar (withdraw/announce/link+/link-/
//	@4 link- p2c 10 64500        leak), applied through the incremental
//	@7 leak 20                   engine
//	@2 fail 5                    community-network member churn
//	@6 repair 5
//	@1 join IXP-MX 1000 open     exchange membership (policy: open,
//	@5 leave IXP-MX 1000         selective, restrictive)
//	@9 regulate MX               mandatory peering at MX's exchanges
//	@4 demand 2.5                cross-domain sets: CN demand scale,
//	@6 pressure IXP-MX 1000 open soft (idempotent) exchange join, and
//	@8 stake-shift -0.25         stakeholder attitude shift
//
// Float payloads (demand, stake-shift) render via strconv.FormatFloat 'g'
// with -1 precision, so format ∘ parse round-trips them bit-exactly. Event
// provenance (Event.Prov) is runtime-only and has no grammar: cascade-
// injected events format like hand-written ones.
//
// Parsing is strict — unknown directives, malformed ticks or ASNs,
// out-of-order ticks, oversized inputs, and (when a base topology is
// present) BGP events that do not apply to it in canonical order are all
// errors, never silent skips. FormatStream/FormatDoc emit the canonical
// form; parse ∘ format is the identity on it.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bgpsim"
	"repro/internal/ixp"
)

// maxLineBytes bounds one line of input, mirroring the bgpsim parser.
const maxLineBytes = 1 << 10

// Doc is a parsed timeline document: an optional base BGP topology (nil when
// the document had no base directives) and the event stream. A document with
// a base is self-contained — reportgen -timeline replays it end to end.
type Doc struct {
	Topo   *bgpsim.Topology
	Stream Stream
}

// ParseDoc reads a timeline document: optional base topology, optional
// horizon, events. When a base is present, every BGP event is validated
// against a shadow copy in canonical order, so replaying the stream through
// a BGPMachine over the base cannot fail.
func ParseDoc(r io.Reader) (*Doc, error) { return parseTimeline(r, true) }

// ParseDocString is ParseDoc over an in-memory document.
func ParseDocString(s string) (*Doc, error) { return ParseDoc(strings.NewReader(s)) }

// ParseStream reads a stream-only document (horizon + events); base topology
// directives are rejected. BGP events parse but are not validated against
// any topology — the machine is strict at replay time.
func ParseStream(r io.Reader) (Stream, error) {
	d, err := parseTimeline(r, false)
	if err != nil {
		return Stream{}, err
	}
	return d.Stream, nil
}

// ParseStreamString is ParseStream over an in-memory document.
func ParseStreamString(s string) (Stream, error) { return ParseStream(strings.NewReader(s)) }

// parseTimeline is the shared line loop.
func parseTimeline(r io.Reader, allowBase bool) (*Doc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLineBytes), maxLineBytes)
	var (
		baseLines []string
		events    []Event
		horizon   = -1
		lastAt    = 0
		lineNo    = 0
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		directive := fields[0]
		var err error
		switch {
		case strings.HasPrefix(directive, "@"):
			var at int
			if at, err = strconv.Atoi(directive[1:]); err != nil || at < 0 || at >= MaxHorizon {
				err = fmt.Errorf("bad tick %q (want @0..@%d)", directive, MaxHorizon-1)
				break
			}
			if at < lastAt {
				err = fmt.Errorf("tick %d after tick %d (ticks must be nondecreasing)", at, lastAt)
				break
			}
			if len(events) >= MaxEvents {
				err = fmt.Errorf("more than %d events", MaxEvents)
				break
			}
			if len(fields) < 2 {
				err = fmt.Errorf("want `@<tick> <event>`, got bare tick")
				break
			}
			var ev Event
			if ev, err = parseEvent(at, fields[1], fields[2:]); err != nil {
				break
			}
			lastAt = at
			events = append(events, ev)
		case directive == "horizon":
			if len(events) > 0 {
				err = fmt.Errorf("horizon after first event line")
				break
			}
			if horizon >= 0 {
				err = fmt.Errorf("duplicate horizon directive")
				break
			}
			if len(fields) != 2 {
				err = fmt.Errorf("want `horizon <n>`, got %d args", len(fields)-1)
				break
			}
			var h int
			if h, err = strconv.Atoi(fields[1]); err != nil || h < 1 || h > MaxHorizon {
				err = fmt.Errorf("bad horizon %q (want 1..%d)", fields[1], MaxHorizon)
				break
			}
			horizon = h
		case directive == "as" || directive == "p2c" || directive == "peer" ||
			directive == "origin" || directive == "leaker":
			if !allowBase {
				err = fmt.Errorf("base directive %q not allowed in a stream document", directive)
				break
			}
			if len(events) > 0 {
				err = fmt.Errorf("base directive %q after first event line", directive)
				break
			}
			baseLines = append(baseLines, strings.Join(fields, " "))
		default:
			err = fmt.Errorf("unknown directive %q", directive)
		}
		if err != nil {
			return nil, fmt.Errorf("timeline: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeline: reading document: %w", err)
	}

	if horizon < 0 {
		if len(events) == 0 {
			return nil, fmt.Errorf("timeline: empty document (no horizon, no events)")
		}
		horizon = lastAt + 1
	}
	doc := &Doc{Stream: Stream{Horizon: horizon, Events: events}.Canonicalize()}
	if err := doc.Stream.Validate(); err != nil {
		return nil, err
	}
	if len(baseLines) > 0 {
		// Base errors carry bgpsim's line numbers within the collected base
		// block, not the document; the message names the offending directive.
		t, err := bgpsim.ParseTopologyString(strings.Join(baseLines, "\n") + "\n")
		if err != nil {
			return nil, fmt.Errorf("timeline: base topology: %w", err)
		}
		doc.Topo = t
		shadow := t.Clone()
		for i, e := range doc.Stream.Events {
			if e.Kind != KindBGP {
				continue
			}
			if err := shadow.ApplyDelta(e.Delta); err != nil {
				return nil, fmt.Errorf("timeline: event %d (tick %d): %w", i, e.At, err)
			}
		}
	}
	return doc, nil
}

// parseEvent parses one event directive with its arguments.
func parseEvent(at int, directive string, args []string) (Event, error) {
	ev := Event{At: at}
	switch directive {
	case "withdraw", "announce", "link+", "link-", "leak":
		d, err := bgpsim.ParseDelta(directive, args)
		if err != nil {
			return ev, err
		}
		ev.Kind, ev.Delta = KindBGP, d
	case "fail", "repair":
		if len(args) != 1 {
			return ev, fmt.Errorf("want `%s <node>`, got %d args", directive, len(args))
		}
		node, err := strconv.Atoi(args[0])
		if err != nil || node < 0 {
			return ev, fmt.Errorf("bad node %q", args[0])
		}
		ev.Kind, ev.Node = KindCNFail, node
		if directive == "repair" {
			ev.Kind = KindCNRepair
		}
	case "join":
		if len(args) != 3 {
			return ev, fmt.Errorf("want `join <ixp> <asn> <policy>`, got %d args", len(args))
		}
		n, err := parseASN(args[1])
		if err != nil {
			return ev, err
		}
		pol, err := parsePolicy(args[2])
		if err != nil {
			return ev, err
		}
		ev.Kind, ev.Name, ev.ASN, ev.Policy = KindIXPJoin, args[0], n, pol
	case "leave":
		if len(args) != 2 {
			return ev, fmt.Errorf("want `leave <ixp> <asn>`, got %d args", len(args))
		}
		n, err := parseASN(args[1])
		if err != nil {
			return ev, err
		}
		ev.Kind, ev.Name, ev.ASN = KindIXPLeave, args[0], n
	case "regulate":
		if len(args) != 1 {
			return ev, fmt.Errorf("want `regulate <country>`, got %d args", len(args))
		}
		ev.Kind, ev.Name = KindRegulate, args[0]
	case "pressure":
		if len(args) != 3 {
			return ev, fmt.Errorf("want `pressure <ixp> <asn> <policy>`, got %d args", len(args))
		}
		n, err := parseASN(args[1])
		if err != nil {
			return ev, err
		}
		pol, err := parsePolicy(args[2])
		if err != nil {
			return ev, err
		}
		ev.Kind, ev.Name, ev.ASN, ev.Policy = KindIXPPressure, args[0], n, pol
	case "demand", "stake-shift":
		if len(args) != 1 {
			return ev, fmt.Errorf("want `%s <value>`, got %d args", directive, len(args))
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return ev, fmt.Errorf("bad %s value %q", directive, args[0])
		}
		ev.Kind, ev.Value = KindCNDemand, v
		if directive == "stake-shift" {
			ev.Kind = KindStakeShift
		}
	default:
		return ev, fmt.Errorf("unknown event directive %q", directive)
	}
	return ev, ev.validate()
}

func parseASN(s string) (bgpsim.ASN, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad ASN %q", s)
	}
	return bgpsim.ASN(v), nil
}

func parsePolicy(s string) (ixp.PeeringPolicy, error) {
	switch s {
	case "open":
		return ixp.Open, nil
	case "selective":
		return ixp.Selective, nil
	case "restrictive":
		return ixp.Restrictive, nil
	default:
		return 0, fmt.Errorf("bad peering policy %q (want open, selective, or restrictive)", s)
	}
}

// FormatStream renders the stream in canonical form: the horizon line, then
// one `@<tick> <event>` line per event in canonical order. ParseStream ∘
// FormatStream is the identity on canonical streams.
func FormatStream(s Stream) string {
	cs := s.Canonicalize()
	var b strings.Builder
	fmt.Fprintf(&b, "horizon %d\n", cs.Horizon)
	for _, e := range cs.Events {
		fmt.Fprintf(&b, "@%d %s\n", e.At, formatEvent(e))
	}
	return b.String()
}

// FormatDoc renders base topology (if any) then stream; inverse of ParseDoc
// on canonical documents.
func FormatDoc(d *Doc) string {
	var b strings.Builder
	if d.Topo != nil {
		b.WriteString(bgpsim.FormatTopology(d.Topo))
	}
	b.WriteString(FormatStream(d.Stream))
	return b.String()
}

// formatEvent renders the event portion of a line; inverse of parseEvent.
func formatEvent(e Event) string {
	switch e.Kind {
	case KindBGP:
		return bgpsim.FormatDelta(e.Delta)
	case KindCNFail:
		return fmt.Sprintf("fail %d", e.Node)
	case KindCNRepair:
		return fmt.Sprintf("repair %d", e.Node)
	case KindIXPJoin:
		return fmt.Sprintf("join %s %d %s", e.Name, e.ASN, e.Policy)
	case KindIXPLeave:
		return fmt.Sprintf("leave %s %d", e.Name, e.ASN)
	case KindRegulate:
		return fmt.Sprintf("regulate %s", e.Name)
	case KindCNDemand:
		return fmt.Sprintf("demand %s", strconv.FormatFloat(e.Value, 'g', -1, 64))
	case KindIXPPressure:
		return fmt.Sprintf("pressure %s %d %s", e.Name, e.ASN, e.Policy)
	case KindStakeShift:
		return fmt.Sprintf("stake-shift %s", strconv.FormatFloat(e.Value, 'g', -1, 64))
	}
	return fmt.Sprintf("# bad event kind %d", int(e.Kind))
}
