package timeline

// Table-driven tests for Merge's reconciliation semantics: exact duplicates
// collapse (except leak toggles, whose parity makes even duplicates a
// contradiction), and same-tick contradictory events fail with
// ErrStreamConflict instead of replaying into an order-dependent outcome.

import (
	"errors"
	"testing"

	"repro/internal/bgpsim"
)

func TestMergeConflictTable(t *testing.T) {
	ev := func(kind Kind, mut func(*Event)) Event {
		e := Event{At: 3, Kind: kind}
		if mut != nil {
			mut(&e)
		}
		return e
	}
	cases := []struct {
		name       string
		a, b       Event
		conflict   bool
		wantEvents int // merged event count when no conflict
	}{
		{
			name:     "fail vs repair same node",
			a:        ev(KindCNFail, func(e *Event) { e.Node = 5 }),
			b:        ev(KindCNRepair, func(e *Event) { e.Node = 5 }),
			conflict: true,
		},
		{
			name:       "fail vs repair different nodes",
			a:          ev(KindCNFail, func(e *Event) { e.Node = 5 }),
			b:          ev(KindCNRepair, func(e *Event) { e.Node = 6 }),
			wantEvents: 2,
		},
		{
			name:       "fail vs repair same node different ticks",
			a:          Event{At: 3, Kind: KindCNFail, Node: 5},
			b:          Event{At: 4, Kind: KindCNRepair, Node: 5},
			wantEvents: 2,
		},
		{
			name:     "withdraw vs announce same origin same prefix",
			a:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: 10, Prefix: "p"}},
			b:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaAnnounce, A: 10, Prefix: "p"}},
			conflict: true,
		},
		{
			name:       "prefix migration between origins",
			a:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaWithdraw, A: 10, Prefix: "p"}},
			b:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaAnnounce, A: 11, Prefix: "p"}},
			wantEvents: 2,
		},
		{
			name:     "link up vs down same p2c edge",
			a:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: 1, B: 2}},
			b:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: 1, B: 2}},
			conflict: true,
		},
		{
			name:     "link up vs down same peer edge reversed orientation",
			a:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: 1, B: 2, Peer: true}},
			b:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: 2, B: 1, Peer: true}},
			conflict: true,
		},
		{
			name:       "link up vs down reversed p2c is a different edge",
			a:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkUp, A: 1, B: 2}},
			b:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLinkDown, A: 2, B: 1}},
			wantEvents: 2,
		},
		{
			name:     "two leak toggles same AS",
			a:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLeakToggle, A: 7}},
			b:        Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLeakToggle, A: 7}},
			conflict: true, // parity: duplicates are a contradiction, not a redundancy
		},
		{
			name:       "leak toggles of different ASes",
			a:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLeakToggle, A: 7}},
			b:          Event{At: 3, Kind: KindBGP, Delta: bgpsim.Delta{Kind: bgpsim.DeltaLeakToggle, A: 8}},
			wantEvents: 2,
		},
		{
			name:     "join vs leave same AS same exchange",
			a:        ev(KindIXPJoin, func(e *Event) { e.Name = "IX"; e.ASN = 9 }),
			b:        ev(KindIXPLeave, func(e *Event) { e.Name = "IX"; e.ASN = 9 }),
			conflict: true,
		},
		{
			name:       "join vs leave different exchanges",
			a:          ev(KindIXPJoin, func(e *Event) { e.Name = "IX-A"; e.ASN = 9 }),
			b:          ev(KindIXPLeave, func(e *Event) { e.Name = "IX-B"; e.ASN = 9 }),
			wantEvents: 2,
		},
		{
			name:     "two demand sets with different values",
			a:        ev(KindCNDemand, func(e *Event) { e.Value = 2 }),
			b:        ev(KindCNDemand, func(e *Event) { e.Value = 3 }),
			conflict: true,
		},
		{
			name:       "identical demand sets dedup",
			a:          ev(KindCNDemand, func(e *Event) { e.Value = 2 }),
			b:          ev(KindCNDemand, func(e *Event) { e.Value = 2 }),
			wantEvents: 1,
		},
		{
			name:     "two stake shifts with different values",
			a:        ev(KindStakeShift, func(e *Event) { e.Value = 0.2 }),
			b:        ev(KindStakeShift, func(e *Event) { e.Value = -0.2 }),
			conflict: true,
		},
		{
			name:     "two regulations of different countries",
			a:        ev(KindRegulate, func(e *Event) { e.Name = "MX" }),
			b:        ev(KindRegulate, func(e *Event) { e.Name = "BR" }),
			conflict: true,
		},
		{
			name:       "identical regulations dedup",
			a:          ev(KindRegulate, func(e *Event) { e.Name = "MX" }),
			b:          ev(KindRegulate, func(e *Event) { e.Name = "MX" }),
			wantEvents: 1,
		},
		{
			name:       "exact duplicate fail dedups",
			a:          ev(KindCNFail, func(e *Event) { e.Node = 5 }),
			b:          ev(KindCNFail, func(e *Event) { e.Node = 5 }),
			wantEvents: 1,
		},
	}
	for _, tc := range cases {
		sa := Stream{Horizon: 6, Events: []Event{tc.a}}
		sb := Stream{Horizon: 6, Events: []Event{tc.b}}
		merged, err := Merge(sa, sb)
		if tc.conflict {
			if !errors.Is(err, ErrStreamConflict) {
				t.Errorf("%s: Merge error = %v, want ErrStreamConflict", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: Merge failed: %v", tc.name, err)
			continue
		}
		if len(merged.Events) != tc.wantEvents {
			t.Errorf("%s: merged %d events, want %d", tc.name, len(merged.Events), tc.wantEvents)
		}
	}
	// Conflicts are found within one stream too: Merge canonicalizes the
	// union first, so a single stream carrying the contradiction fails the
	// same way.
	_, err := Merge(Stream{Horizon: 6, Events: []Event{
		{At: 2, Kind: KindCNFail, Node: 1},
		{At: 2, Kind: KindCNRepair, Node: 1},
	}})
	if !errors.Is(err, ErrStreamConflict) {
		t.Errorf("single-stream conflict not detected: %v", err)
	}
}
