package timeline

// CNMachine replays community-network churn (fail/repair) through
// cn.ChurnSim. Each Observe advances the demand process one epoch; the
// demand draws are identical whatever the churn schedule, so served demand
// responds to failures without the random process itself shifting.

import (
	"fmt"

	"repro/internal/cn"
)

// CNMachine is a live churn-aware mesh simulation. Not safe for concurrent
// use.
type CNMachine struct {
	sim *cn.ChurnSim
}

// NewCNMachine builds the mesh and demand model from cfg and starts every
// member up.
func NewCNMachine(cfg cn.ChurnConfig, sched cn.Scheduler) (*CNMachine, error) {
	sim, err := cn.NewChurnSim(cfg, sched)
	if err != nil {
		return nil, err
	}
	return &CNMachine{sim: sim}, nil
}

// Cols: up members, offered/served airtime this epoch, the served share, and
// mean light-user satisfaction.
func (m *CNMachine) Cols() []Col {
	return []Col{
		{Name: "up", Prec: -1},
		{Name: "offered", Prec: 1},
		{Name: "served", Prec: 1},
		{Name: "served-share", Prec: 3},
		{Name: "light-sat", Prec: 3},
	}
}

// Kinds: churn plus the cross-domain demand-scale set.
func (m *CNMachine) Kinds() []Kind { return []Kind{KindCNFail, KindCNRepair, KindCNDemand} }

// Apply handles fail and repair events, strictly (see cn.ChurnSim.SetUp),
// and demand events, idempotently (an absolute scale set).
func (m *CNMachine) Apply(ev Event) error {
	switch ev.Kind {
	case KindCNFail:
		return m.sim.SetUp(ev.Node, false)
	case KindCNRepair:
		return m.sim.SetUp(ev.Node, true)
	case KindCNDemand:
		return m.sim.SetDemandScale(ev.Value)
	default:
		return fmt.Errorf("CN machine cannot apply %s events", ev.Kind)
	}
}

// Observe runs one demand epoch over the current up set.
func (m *CNMachine) Observe(int) ([]float64, error) {
	st := m.sim.Epoch()
	share := 0.0
	if st.Offered > 0 {
		share = st.Served / st.Offered
	}
	return []float64{float64(st.Up), st.Offered, st.Served, share, st.LightSat}, nil
}
