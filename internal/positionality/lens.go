package positionality

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Lens is a researcher's evaluative stance: per-topic multiplicative biases
// applied when scoring candidate research problems. Positive values make a
// topic's problems look more worthwhile to this researcher; negative values
// less.
type Lens map[string]float64

// AgendaItem is one candidate research problem in the E9 experiment.
type AgendaItem struct {
	ID        int
	Topics    []string
	BaseValue float64
}

// SelectAgenda scores items under the lens and returns the IDs of the top-k
// (score = BaseValue * (1 + sum of lens weights over the item's topics),
// floored at 0). Ties break by ID for determinism.
func SelectAgenda(items []AgendaItem, lens Lens, k int) []int {
	type scored struct {
		id    int
		score float64
	}
	ss := make([]scored, len(items))
	for i, it := range items {
		mult := 1.0
		for _, t := range it.Topics {
			mult += lens[t]
		}
		if mult < 0 {
			mult = 0
		}
		ss[i] = scored{id: it.ID, score: it.BaseValue * mult}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].id < ss[b].id
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].id
	}
	sort.Ints(out)
	return out
}

// JaccardDivergence returns 1 - |A∩B|/|A∪B| over two ID sets.
func JaccardDivergence(a, b []int) float64 {
	sa := make(map[int]bool, len(a))
	for _, x := range a {
		sa[x] = true
	}
	sb := make(map[int]bool, len(b))
	for _, x := range b {
		sb[x] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return 1 - float64(inter)/float64(union)
}

// LensConfig parameterizes E9.
type LensConfig struct {
	// Items is the candidate-problem population size.
	Items int
	// ContestedTopicFrac is the fraction of items touching the contested
	// topic (e.g. "bitcoin"/decentralization).
	ContestedTopicFrac float64
	// Select is the agenda size each researcher picks.
	Select int
	// Strengths is the sweep of lens strengths to evaluate.
	Strengths []float64
	Seed      uint64
}

// DefaultLensConfig returns the configuration used by the benchmark harness.
func DefaultLensConfig() LensConfig {
	return LensConfig{
		Items:              300,
		ContestedTopicFrac: 0.35,
		Select:             30,
		Strengths:          []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Seed:               1,
	}
}

// LensRow is one strength level of the E9 sweep.
type LensRow struct {
	Strength float64
	// Divergence is the Jaccard divergence between the proponent's and the
	// skeptic's selected agendas.
	Divergence float64
	// ContestedShareProponent is the contested-topic fraction of the
	// proponent's agenda; ContestedShareSkeptic likewise.
	ContestedShareProponent float64
	ContestedShareSkeptic   float64
}

// RunLens executes E9: the same candidate problems scored by a proponent
// lens (+strength on the contested topic) and a skeptic lens (-strength).
// The paper's claim is qualitative — different stances yield very different
// works — and the sweep quantifies how fast agendas diverge as conviction
// strengthens.
func RunLens(cfg LensConfig) ([]LensRow, error) {
	if cfg.Items <= 0 || cfg.Select <= 0 || len(cfg.Strengths) == 0 {
		return nil, fmt.Errorf("positionality: lens config incomplete")
	}
	r := rng.New(cfg.Seed)
	const contested = "contested-topic"
	items := make([]AgendaItem, cfg.Items)
	for i := range items {
		topics := []string{"networking"}
		if r.Bool(cfg.ContestedTopicFrac) {
			topics = append(topics, contested)
		}
		items[i] = AgendaItem{ID: i, Topics: topics, BaseValue: 0.2 + 0.8*r.Float64()}
	}
	share := func(agenda []int) float64 {
		if len(agenda) == 0 {
			return 0
		}
		inAgenda := make(map[int]bool, len(agenda))
		for _, id := range agenda {
			inAgenda[id] = true
		}
		n := 0
		for _, it := range items {
			if !inAgenda[it.ID] {
				continue
			}
			for _, t := range it.Topics {
				if t == contested {
					n++
					break
				}
			}
		}
		return float64(n) / float64(len(agenda))
	}
	rows := make([]LensRow, 0, len(cfg.Strengths))
	for _, s := range cfg.Strengths {
		prop := SelectAgenda(items, Lens{contested: s}, cfg.Select)
		skep := SelectAgenda(items, Lens{contested: -s}, cfg.Select)
		rows = append(rows, LensRow{
			Strength:                s,
			Divergence:              JaccardDivergence(prop, skep),
			ContestedShareProponent: share(prop),
			ContestedShareSkeptic:   share(skep),
		})
	}
	return rows, nil
}
