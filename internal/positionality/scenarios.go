package positionality

import (
	"context"

	"repro/internal/experiment"
)

// Scenario registration for E9: how lens strength shifts the research
// agenda.

func init() {
	experiment.Register(experiment.Def{
		ID:    "E9",
		Title: "Agenda divergence vs lens strength",
		Claim: "As researcher lens strength grows, proponent and skeptic agendas diverge, concentrated in the contested topic's share of each agenda.",
		Seed:  1,
		Params: experiment.Schema{
			{Name: "items", Kind: experiment.Int, Default: 300, Doc: "candidate-problem population size"},
			{Name: "contested-frac", Kind: experiment.Float, Default: 0.35, Doc: "fraction of items touching the contested topic"},
			{Name: "select", Kind: experiment.Int, Default: 30, Doc: "agenda size each researcher picks"},
			{Name: "strengths", Kind: experiment.String, Default: "0,0.2,0.4,0.6,0.8,1", Doc: "comma-separated lens strengths to sweep"},
		},
		Run: runE9,
	})
}

// runE9 sweeps lens strengths.
func runE9(_ context.Context, p experiment.Values, seed uint64) (*experiment.Result, error) {
	strengths, err := experiment.ParseFloats(p.String("strengths"))
	if err != nil {
		return nil, err
	}
	rows, err := RunLens(LensConfig{
		Items:              p.Int("items"),
		ContestedTopicFrac: p.Float("contested-frac"),
		Select:             p.Int("select"),
		Strengths:          strengths,
		Seed:               seed,
	})
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{}
	t := res.AddTable("E9", "Agenda divergence vs lens strength",
		"strength", "divergence", "contested-prop", "contested-skep")
	for _, r := range rows {
		t.AddRow(experiment.F3(r.Strength), experiment.F3(r.Divergence),
			experiment.F3(r.ContestedShareProponent), experiment.F3(r.ContestedShareSkeptic))
	}
	return res, nil
}
