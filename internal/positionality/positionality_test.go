package positionality

import (
	"strings"
	"testing"
)

func sampleResearcher() Researcher {
	return Researcher{
		Name: "Dr. Example",
		Attributes: []Attribute{
			{Kind: Expertise, Value: "network engineering expert", Topics: []string{"routing"}, Disclosed: true},
			{Kind: Location, Value: "the Global North", Topics: []string{"access"}, Disclosed: true},
			{Kind: Belief, Value: "decentralization is a natural good", Topics: []string{"decentralization"}, Disclosed: false},
			{Kind: Membership, Value: "a community network collective", Topics: []string{"community-networks"}, Disclosed: true},
			{Kind: Affiliation, Value: "Vendor X research lab", Topics: []string{"datacenter"}, Disclosed: false},
		},
	}
}

func TestStatementIncludesOnlyDisclosed(t *testing.T) {
	s := sampleResearcher().Statement()
	for _, want := range []string{"Dr. Example", "network engineering expert", "the Global North", "community network collective"} {
		if !strings.Contains(s, want) {
			t.Errorf("statement missing %q: %s", want, s)
		}
	}
	for _, hidden := range []string{"decentralization is a natural good", "Vendor X"} {
		if strings.Contains(s, hidden) {
			t.Errorf("statement leaked undisclosed %q", hidden)
		}
	}
}

func TestStatementDeterministic(t *testing.T) {
	r := sampleResearcher()
	if r.Statement() != r.Statement() {
		t.Error("statement not deterministic")
	}
}

func TestStatementEmpty(t *testing.T) {
	r := Researcher{Name: "Anon"}
	if !strings.Contains(r.Statement(), "no positionality statement") {
		t.Errorf("empty statement = %q", r.Statement())
	}
}

func TestAttrKindString(t *testing.T) {
	if Belief.String() != "belief" || Expertise.String() != "expertise" {
		t.Error("kind strings wrong")
	}
}

func TestRelevanceAuditFlagsUndisclosed(t *testing.T) {
	r := sampleResearcher()
	claims := []Claim{
		{ID: "c1", Text: "Decentralized designs are preferable", Topics: []string{"decentralization"}},
		{ID: "c2", Text: "Routing converges quickly", Topics: []string{"routing"}},
		{ID: "c3", Text: "Unrelated", Topics: []string{"quantum"}},
	}
	entries := RelevanceAudit(r, claims)
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].ClaimID != "c1" || !entries[0].Undisclosed {
		t.Errorf("first entry = %+v, want undisclosed belief on c1", entries[0])
	}
	if entries[1].ClaimID != "c2" || entries[1].Undisclosed {
		t.Errorf("second entry = %+v, want disclosed expertise on c2", entries[1])
	}
	gaps := DisclosureGaps(entries)
	if len(gaps) != 1 || gaps[0].Attribute.Value != "decentralization is a natural good" {
		t.Errorf("gaps = %+v", gaps)
	}
}

func TestSelectAgendaLensShiftsSelection(t *testing.T) {
	items := []AgendaItem{
		{ID: 0, Topics: []string{"x"}, BaseValue: 0.5},
		{ID: 1, Topics: []string{"y"}, BaseValue: 0.6},
		{ID: 2, Topics: []string{"x"}, BaseValue: 0.55},
	}
	neutral := SelectAgenda(items, Lens{}, 2)
	if len(neutral) != 2 || neutral[0] != 1 || neutral[1] != 2 {
		t.Errorf("neutral agenda = %v, want [1 2]", neutral)
	}
	biased := SelectAgenda(items, Lens{"x": 0.5}, 2)
	if biased[0] != 0 || biased[1] != 2 {
		t.Errorf("biased agenda = %v, want [0 2]", biased)
	}
}

func TestSelectAgendaNegativeMultiplierFloors(t *testing.T) {
	items := []AgendaItem{{ID: 0, Topics: []string{"x"}, BaseValue: 1}}
	got := SelectAgenda(items, Lens{"x": -5}, 1)
	if len(got) != 1 {
		t.Fatal("selection size wrong")
	}
}

func TestJaccardDivergence(t *testing.T) {
	if d := JaccardDivergence([]int{1, 2}, []int{1, 2}); d != 0 {
		t.Errorf("identical divergence = %g", d)
	}
	if d := JaccardDivergence([]int{1}, []int{2}); d != 1 {
		t.Errorf("disjoint divergence = %g", d)
	}
	if d := JaccardDivergence(nil, nil); d != 0 {
		t.Errorf("empty divergence = %g", d)
	}
	if d := JaccardDivergence([]int{1, 2, 3}, []int{2, 3, 4}); d != 0.5 {
		t.Errorf("half-overlap divergence = %g, want 0.5", d)
	}
}

func TestE9LensDivergenceGrowsWithStrength(t *testing.T) {
	rows, err := RunLens(DefaultLensConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Strength != 0 || rows[0].Divergence != 0 {
		t.Errorf("zero-strength row = %+v, want zero divergence", rows[0])
	}
	last := rows[len(rows)-1]
	if !(last.Divergence > 0.5) {
		t.Errorf("strong-lens divergence = %g, want substantial", last.Divergence)
	}
	// Weak monotonicity across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].Divergence+1e-9 < rows[i-1].Divergence {
			t.Errorf("divergence not monotone at %g: %g < %g",
				rows[i].Strength, rows[i].Divergence, rows[i-1].Divergence)
		}
	}
	// The proponent's agenda should be saturated with the contested topic
	// and the skeptic's nearly free of it at full strength.
	if !(last.ContestedShareProponent > last.ContestedShareSkeptic+0.5) {
		t.Errorf("contested shares: proponent %g vs skeptic %g",
			last.ContestedShareProponent, last.ContestedShareSkeptic)
	}
}

func TestE9Validation(t *testing.T) {
	if _, err := RunLens(LensConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestE9Deterministic(t *testing.T) {
	a, _ := RunLens(DefaultLensConfig())
	b, _ := RunLens(DefaultLensConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func BenchmarkE9Lens(b *testing.B) {
	cfg := DefaultLensConfig()
	for i := 0; i < b.N; i++ {
		if _, err := RunLens(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
