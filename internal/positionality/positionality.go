// Package positionality operationalizes the paper's §4 and §5.3: modelling
// a researcher's situated attributes (location, affiliations, beliefs,
// community memberships, expertise), generating positionality statements,
// auditing which attributes are relevant to which claims of a paper, and —
// via the E9 experiment — measuring how much a researcher's lens shifts the
// research agenda they would select ("a blockchain researcher being a
// staunch proponent of Bitcoin versus being a skeptic could produce very
// different works").
package positionality

import (
	"fmt"
	"sort"
	"strings"
)

// AttrKind classifies a positionality attribute.
type AttrKind int

// Attribute kinds, following the paper's examples: geographic location,
// institutional affiliation, beliefs (political/social/theoretical),
// community membership, and domain expertise.
const (
	Location AttrKind = iota
	Affiliation
	Belief
	Membership
	Expertise
)

// String returns the kind name.
func (k AttrKind) String() string {
	switch k {
	case Location:
		return "location"
	case Affiliation:
		return "affiliation"
	case Belief:
		return "belief"
	case Membership:
		return "membership"
	case Expertise:
		return "expertise"
	default:
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
}

// Attribute is one situated fact about a researcher, tagged with the
// research topics it is relevant to.
type Attribute struct {
	Kind   AttrKind
	Value  string
	Topics []string
	// Disclosed marks whether the researcher included it in a statement.
	Disclosed bool
}

// Researcher is an author with positionality attributes.
type Researcher struct {
	Name       string
	Attributes []Attribute
}

// Statement renders a positionality statement in the style the paper
// describes ("one of the authors might situate themselves as a network
// engineering expert, located in the Global North, with a feminist,
// democratic, rural, community-based focus"). Only disclosed attributes
// appear. The output is deterministic: attributes are grouped by kind in
// kind order and sorted within groups.
func (r Researcher) Statement() string {
	groups := make(map[AttrKind][]string)
	for _, a := range r.Attributes {
		if !a.Disclosed {
			continue
		}
		groups[a.Kind] = append(groups[a.Kind], a.Value)
	}
	if len(groups) == 0 {
		return fmt.Sprintf("%s provides no positionality statement.", r.Name)
	}
	var parts []string
	for _, k := range []AttrKind{Expertise, Location, Affiliation, Belief, Membership} {
		vals := groups[k]
		if len(vals) == 0 {
			continue
		}
		sort.Strings(vals)
		var lead string
		switch k {
		case Expertise:
			lead = "works as"
		case Location:
			lead = "is located in"
		case Affiliation:
			lead = "is affiliated with"
		case Belief:
			lead = "holds the view(s):"
		case Membership:
			lead = "is a member of"
		}
		parts = append(parts, fmt.Sprintf("%s %s", lead, strings.Join(vals, ", ")))
	}
	return fmt.Sprintf("%s %s.", r.Name, strings.Join(parts, "; "))
}

// Claim is one research claim or design decision, tagged by topic.
type Claim struct {
	ID     string
	Text   string
	Topics []string
}

// AuditEntry flags one attribute as relevant to one claim.
type AuditEntry struct {
	ClaimID   string
	Attribute Attribute
	// Undisclosed marks relevant attributes missing from the statement —
	// the reflexivity gap the audit exists to surface.
	Undisclosed bool
}

// RelevanceAudit cross-references the researcher's attributes against the
// claims' topics and returns every (claim, attribute) pair that shares a
// topic, flagging undisclosed ones. Entries are ordered by claim ID then
// attribute value for determinism.
func RelevanceAudit(r Researcher, claims []Claim) []AuditEntry {
	var out []AuditEntry
	for _, c := range claims {
		topicSet := make(map[string]bool, len(c.Topics))
		for _, t := range c.Topics {
			topicSet[t] = true
		}
		for _, a := range r.Attributes {
			relevant := false
			for _, t := range a.Topics {
				if topicSet[t] {
					relevant = true
					break
				}
			}
			if relevant {
				out = append(out, AuditEntry{
					ClaimID:     c.ID,
					Attribute:   a,
					Undisclosed: !a.Disclosed,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClaimID != out[j].ClaimID {
			return out[i].ClaimID < out[j].ClaimID
		}
		return out[i].Attribute.Value < out[j].Attribute.Value
	})
	return out
}

// DisclosureGaps returns only the undisclosed-but-relevant entries of an
// audit.
func DisclosureGaps(entries []AuditEntry) []AuditEntry {
	var out []AuditEntry
	for _, e := range entries {
		if e.Undisclosed {
			out = append(out, e)
		}
	}
	return out
}
