package graph

import (
	"context"
	"testing"

	"repro/internal/rng"
)

// TestCentralityCtxMatchesWorkers pins the ctxflow remediation: the Ctx
// variants with a Background context must return exactly the rows the
// Workers wrappers do, for serial and parallel paths alike.
func TestCentralityCtxMatchesWorkers(t *testing.T) {
	g := ErdosRenyi(120, 0.05, rng.New(7))
	for _, workers := range []int{1, 3} {
		bw := g.BetweennessCentralityWorkers(workers)
		bc, err := g.BetweennessCentralityCtx(context.Background(), workers)
		if err != nil {
			t.Fatalf("BetweennessCentralityCtx(workers=%d): %v", workers, err)
		}
		cw := g.ClosenessCentralityWorkers(workers)
		cc, err := g.ClosenessCentralityCtx(context.Background(), workers)
		if err != nil {
			t.Fatalf("ClosenessCentralityCtx(workers=%d): %v", workers, err)
		}
		for i := range bw {
			if bc[i] != bw[i] {
				t.Fatalf("workers=%d: betweenness Ctx[%d]=%v != Workers %v", workers, i, bc[i], bw[i])
			}
			if cc[i] != cw[i] {
				t.Fatalf("workers=%d: closeness Ctx[%d]=%v != Workers %v", workers, i, cc[i], cw[i])
			}
		}
	}
}

// TestCentralityCtxCancelled checks both centrality variants stop and
// surface ctx.Err() instead of returning half-accumulated scores.
func TestCentralityCtxCancelled(t *testing.T) {
	g := ErdosRenyi(120, 0.05, rng.New(7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3} {
		if got, err := g.BetweennessCentralityCtx(ctx, workers); err == nil {
			t.Errorf("workers=%d: BetweennessCentralityCtx on a cancelled context returned %d scores, want error",
				workers, len(got))
		}
		if got, err := g.ClosenessCentralityCtx(ctx, workers); err == nil {
			t.Errorf("workers=%d: ClosenessCentralityCtx on a cancelled context returned %d scores, want error",
				workers, len(got))
		}
	}
}
