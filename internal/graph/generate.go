package graph

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// ErdosRenyi returns an undirected G(n, p) random graph.
func ErdosRenyi(n int, p float64, r *rng.Rand) *Graph {
	g := New(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(p) {
				_ = g.AddEdge(u, v, 1)
			}
		}
	}
	return g
}

// BarabasiAlbert returns an undirected preferential-attachment graph where
// each new node attaches m edges to existing nodes with probability
// proportional to their degree. Used to model the skewed collaboration and
// citation structures the paper describes ("the priorities of large moneyed
// interests"). n must be > m and m >= 1.
func BarabasiAlbert(n, m int, r *rng.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m {
		n = m + 1
	}
	g := New(n, false)
	// Seed clique of m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			_ = g.AddEdge(u, v, 1)
		}
	}
	// Repeated-endpoint list implements preferential attachment in O(1).
	var endpoints []int
	for u := 0; u <= m; u++ {
		for range g.Neighbors(u) {
			endpoints = append(endpoints, u)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool)
		for len(chosen) < m {
			t := endpoints[r.Intn(len(endpoints))]
			chosen[t] = true
		}
		// Attach in sorted order: the endpoints list feeds later random
		// draws, so map iteration order here would make the whole topology
		// differ run-to-run despite a fixed seed.
		targets := make([]int, 0, m)
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			_ = g.AddEdge(u, t, 1)
			endpoints = append(endpoints, u, t)
		}
	}
	return g
}

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within the given radius; the edge weight is the Euclidean distance
// (minimum 1e-9). This models the physical layout of community wireless
// meshes. It returns the graph and node coordinates.
func RandomGeometric(n int, radius float64, r *rng.Rand) (*Graph, [][2]float64) {
	g := New(n, false)
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{r.Float64(), r.Float64()}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := pos[u][0] - pos[v][0]
			dy := pos[u][1] - pos[v][1]
			d2 := dx*dx + dy*dy
			if d2 <= radius*radius {
				d := math.Sqrt(d2)
				if d < 1e-9 {
					d = 1e-9
				}
				_ = g.AddEdge(u, v, d)
			}
		}
	}
	return g, pos
}
